package vscsistats_test

import (
	"strings"
	"testing"

	"vscsistats"
)

// TestQuickstartFlow exercises the doc-comment example end to end through
// the public facade.
func TestQuickstartFlow(t *testing.T) {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("sym", vscsistats.Symmetrix(1))
	vd, err := host.CreateVM("vm1").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "sym", CapacitySectors: 6 << 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	vd.Collector.Enable()
	gen := vscsistats.NewIometer(eng, vd.Disk, vscsistats.FourKSeqRead(32))
	gen.Start()
	eng.RunUntil(10 * vscsistats.Second)
	gen.Stop()
	s := vd.Collector.Snapshot()
	if s.Commands == 0 {
		t.Fatal("no commands recorded")
	}
	sum := s.Summary()
	if !strings.Contains(sum, "vm1") || !strings.Contains(sum, "ioLength") {
		t.Errorf("summary:\n%s", sum)
	}
	fp := vscsistats.FingerprintOf(s)
	if fp.AccessPattern != "sequential" {
		t.Errorf("fingerprint: %v", fp)
	}
	if gen.Stats().Ops == 0 {
		t.Error("generator stats empty")
	}
}

// TestFilesystemAndTraceFlow exercises the fs + trace + offline analysis
// surface of the facade.
func TestFilesystemAndTraceFlow(t *testing.T) {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("local", vscsistats.LocalDisk(2))
	vd, err := host.CreateVM("guest").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "local", CapacitySectors: 1 << 22,
		TraceCapacity: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	vd.Collector.Enable()
	vd.Tracer.Enable()
	fsys := vscsistats.NewUFS(eng, vd.Disk)
	f, err := fsys.Create("data", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	f.Prefill()
	done := 0
	for i := int64(0); i < 50; i++ {
		f.Read(i*8192, 4096, func(error) { done++ })
	}
	// RunUntil, not Run: the filesystem's background flusher ticks forever.
	eng.RunUntil(10 * vscsistats.Second)
	if done != 50 {
		t.Fatalf("reads completed: %d", done)
	}
	recs := vd.Tracer.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	rep := vscsistats.Analyze(recs)
	if rep.Commands == 0 || rep.Latency.Count == 0 {
		t.Errorf("analysis: %+v", rep)
	}
	// Replaying the trace reproduces the online histograms.
	col := vscsistats.NewCollector("guest", "scsi0:0")
	col.Enable()
	vscsistats.Replay(recs, col)
	if col.Snapshot().Commands != vd.Collector.Snapshot().Commands {
		t.Error("replay diverged from online collection")
	}
	if corr := vscsistats.SeekLatencyCorrelation(recs); corr.Total == 0 {
		t.Error("2-D correlation empty")
	}
}

// TestModelLanguageFlow parses and runs a custom model via the facade.
func TestModelLanguageFlow(t *testing.T) {
	m, err := vscsistats.ParseModel(`
define file name=hot,size=64m
define process name=p {
  thread name=t,instances=4 {
    flowop read name=r,file=hot,iosize=8k,random
    flowop delay name=d,value=1ms
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("local", vscsistats.LocalDisk(3))
	vd, _ := host.CreateVM("g").AddDisk(vscsistats.DiskSpec{
		Name: "d", Datastore: "local", CapacitySectors: 1 << 22,
	})
	vd.Collector.Enable()
	fb := vscsistats.NewFilebench(eng, vscsistats.NewExt3(eng, vd.Disk), m, 4)
	if err := fb.Setup(); err != nil {
		t.Fatal(err)
	}
	fb.Start()
	eng.RunUntil(5 * vscsistats.Second)
	fb.Stop()
	if vd.Collector.Snapshot().Commands == 0 {
		t.Error("model generated no I/O")
	}
}

func TestVersion(t *testing.T) {
	if vscsistats.Version == "" {
		t.Error("version empty")
	}
}

// TestScenarioDatastoreOverride runs a scenario on the cache-less CX3 and
// checks it behaves differently from the Symmetrix default.
func TestScenarioDatastoreOverride(t *testing.T) {
	run := func(ds *vscsistats.ArrayConfig) float64 {
		sc, err := vscsistats.NewScenario("iometer-8k-rand", vscsistats.ScenarioConfig{
			Seed: 3, DataBytes: 512 << 20, Datastore: ds,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := sc.Run(10 * vscsistats.Second)
		return s.Latency[vscsistats.All].Mean()
	}
	symLat := run(nil)
	noCache := vscsistats.CX3NoCache(3)
	cx3Lat := run(&noCache)
	if cx3Lat <= symLat {
		t.Errorf("cache-off latency %.0f should exceed big-cache latency %.0f", cx3Lat, symLat)
	}
}

// TestCatalogViaFacade classifies one scenario against two references.
func TestCatalogViaFacade(t *testing.T) {
	snap := func(name string, seed int64) *vscsistats.Snapshot {
		sc, err := vscsistats.NewScenario(name, vscsistats.ScenarioConfig{Seed: seed, DataBytes: 256 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return sc.Run(6 * vscsistats.Second)
	}
	catalog, err := vscsistats.NewWorkloadCatalog(
		vscsistats.WorkloadReference{Name: "random", Snap: snap("iometer-8k-rand", 1)},
		vscsistats.WorkloadReference{Name: "sequential", Snap: snap("iometer-8k-seq", 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := catalog.Classify(snap("iometer-8k-rand", 99))
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Name != "random" {
		t.Errorf("classified as %v", matches)
	}
}

// TestBurstinessViaFacade checks the arrival analysis over a captured trace.
func TestBurstinessViaFacade(t *testing.T) {
	sc, err := vscsistats.NewScenario("dbt2", vscsistats.ScenarioConfig{Seed: 2, DataBytes: 512 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sc.Run(15 * vscsistats.Second)
	b := vscsistats.BurstinessOf(sc.VD.Tracer.Records(), 1000)
	if b.Windows == 0 || b.PeakToMean < 1 {
		t.Errorf("burstiness: %+v", b)
	}
	// DBT-2's checkpoint bursts make arrivals super-Poisson.
	if b.IndexOfDisp <= 1 {
		t.Errorf("dispersion = %.2f, want > 1 for checkpointed DB", b.IndexOfDisp)
	}
}
