// Repository-level benchmarks: one per table and figure in the paper's
// evaluation (§4–§5). Each benchmark regenerates its experiment end to end
// on the deterministic engine, so ns/op measures the full simulation cost
// and the reported custom metrics carry the experiment's headline numbers.
//
// Run with: go test -bench=. -benchmem
package vscsistats_test

import (
	"fmt"
	"testing"

	"vscsistats"
	"vscsistats/internal/core"
	"vscsistats/internal/report"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// benchOptions keeps each regeneration around a second of wall time.
func benchOptions() report.Options {
	return report.Options{
		Duration:  15 * simclock.Second,
		DataBytes: 512 << 20,
		Seed:      1,
	}
}

// BenchmarkFig2FilebenchUFS regenerates Figure 2 (Filebench OLTP on UFS).
func BenchmarkFig2FilebenchUFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := report.Fig2FilebenchUFS(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Charts) != 4 {
			b.Fatal("missing panels")
		}
	}
}

// BenchmarkFig3FilebenchZFS regenerates Figure 3 (the same OLTP on ZFS).
func BenchmarkFig3FilebenchZFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig3FilebenchZFS(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4DBT2 regenerates Figure 4 (DBT-2/PostgreSQL on ext3).
func BenchmarkFig4DBT2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig4DBT2(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5FileCopy regenerates Figure 5 (XP vs Vista file copy).
func BenchmarkFig5FileCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Fig5FileCopy(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6MultiVM regenerates Figure 6 (multi-VM interference) and
// reports the headline interference ratios as custom metrics.
func BenchmarkFig6MultiVM(b *testing.B) {
	var m *report.MultiVMResult
	var err error
	for i := 0; i < b.N; i++ {
		m, err = report.Fig6MultiVM(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	if m != nil {
		b.ReportMetric(m.SeqDualLatency/m.SeqSoloLatency, "seq-latency-x")
		b.ReportMetric(m.RandDualLatency/m.RandSoloLatency, "rand-latency-x")
		b.ReportMetric(100*(1-m.SeqDualIOps/m.SeqSoloIOps), "seq-iops-loss-%")
	}
}

// BenchmarkTable1Provisioning exercises the testbed construction path
// (Table 1 is configuration, not measurement: building the reference
// arrays, VMs and virtual disks).
func BenchmarkTable1Provisioning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := vscsistats.NewEngine()
		host := vscsistats.NewHost(eng)
		host.AddDatastore("sym", vscsistats.Symmetrix(1))
		host.AddDatastore("cx3", vscsistats.CX3(2))
		if _, err := host.CreateVM("vm").AddDisk(vscsistats.DiskSpec{
			Name: "scsi0:0", Datastore: "sym", CapacitySectors: 6 << 21,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2StatsOff and BenchmarkTable2StatsOn are Table 2's CPU
// rows: the wall-clock cost of one command through the vSCSI fast path with
// the characterization service disabled versus enabled. The difference is
// the service's per-I/O overhead.
func benchFastPath(b *testing.B, enabled bool) {
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
		VM: "bench", Name: "d", CapacitySectors: 1 << 30,
	})
	col := core.NewCollector("bench", "d")
	d.AddObserver(col)
	if enabled {
		col.Enable()
	}
	cmd := scsi.Read(0, 8) // the paper's 4 KB worst case
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd.LBA = uint64(i) * 8 % (1 << 29)
		if _, err := d.Issue(cmd, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2StatsOff(b *testing.B) { benchFastPath(b, false) }
func BenchmarkTable2StatsOn(b *testing.B)  { benchFastPath(b, true) }

// BenchmarkCacheSweep regenerates the §5.3 intermediate results (Symmetrix
// and cached CX3 interference).
func BenchmarkCacheSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.CacheSweep(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindow measures the windowed-seek design-point sweep.
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.AblationWindow(8, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorInsertWindow16 vs 64 quantifies the windowed
// seek-distance scan cost (§3.1's O(N) bounded term on the fast path).
func benchWindow(b *testing.B, n int) {
	col := core.NewCollectorWindow("v", "d", n)
	col.Enable()
	r := &vscsi.Request{Cmd: scsi.Read(0, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Cmd.LBA = uint64(i) * 997 % (1 << 30)
		r.IssueTime = simclock.Time(i) * simclock.Microsecond
		col.OnIssue(r)
	}
}

func BenchmarkCollectorInsertWindow1(b *testing.B)  { benchWindow(b, 1) }
func BenchmarkCollectorInsertWindow16(b *testing.B) { benchWindow(b, 16) }
func BenchmarkCollectorInsertWindow64(b *testing.B) { benchWindow(b, 64) }

// BenchmarkMultiVM{Sequential,Parallel} compare the single-threaded
// baseline against the parallel multi-VM driver on an 8-world consolidation
// scenario (one VM + local-disk datastore + 8K random-read Iometer per
// world, 2 virtual seconds each). The worlds share no simulated state, so
// the parallel driver's results are bit-identical and the ratio of the two
// ns/op figures is pure multi-core speedup.
func buildMultiVMSim(b *testing.B, worlds int) *vscsistats.ParallelSim {
	b.Helper()
	return vscsistats.NewParallelSim(worlds, func(w *vscsistats.SimWorld) {
		w.Host.AddDatastore("ds", vscsistats.LocalDisk(int64(w.Index)+1))
		vd, err := w.Host.CreateVM(fmt.Sprintf("vm%d", w.Index)).AddDisk(vscsistats.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 21,
		})
		if err != nil {
			b.Fatal(err)
		}
		vd.Collector.Enable()
		spec := vscsistats.EightKRandomRead()
		spec.Seed = int64(w.Index) + 100
		gen := vscsistats.NewIometer(w.Engine, vd.Disk, spec)
		w.Engine.At(0, func(vscsistats.Time) { gen.Start() })
	})
}

func benchMultiVM(b *testing.B, parallel bool) {
	const worlds = 8
	var total int64
	for i := 0; i < b.N; i++ {
		p := buildMultiVMSim(b, worlds)
		if parallel {
			p.RunUntil(2 * vscsistats.Second)
		} else {
			p.RunSequential(2 * vscsistats.Second)
		}
		total = 0
		for _, s := range p.Registry().Snapshots() {
			total += s.Commands
		}
		if total == 0 {
			b.Fatal("no I/O simulated")
		}
	}
	b.ReportMetric(float64(total), "cmds/run")
}

func BenchmarkMultiVMSequential(b *testing.B) { benchMultiVM(b, false) }
func BenchmarkMultiVMParallel(b *testing.B)   { benchMultiVM(b, true) }
