module vscsistats

go 1.22
