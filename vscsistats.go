// Package vscsistats is a from-scratch reproduction of "Easy and Efficient
// Disk I/O Workload Characterization in VMware ESX Server" (IISWC 2007) —
// the system that shipped as VMware's vscsiStats.
//
// The package is a facade over the implementation packages:
//
//   - a deterministic discrete-event engine (virtual time),
//   - a virtual SCSI device layer with observer hooks,
//   - the online histogram characterization service (the paper's
//     contribution): I/O length, seek distance (plain and windowed),
//     outstanding I/Os, latency and inter-arrival histograms, split by
//     reads/writes, in O(1) time and O(m) space per command,
//   - a vSCSI command tracing framework with offline analysis,
//   - behavioural filesystem models (UFS, ZFS, ext3, NTFS),
//   - workload generators (a Filebench-style model language with the OLTP
//     personality, a DBT-2/TPC-C engine, file-copy pipelines, Iometer),
//   - storage array models (Symmetrix-like, CLARiiON CX3-like), and
//   - an experiment harness regenerating every table and figure in the
//     paper's evaluation.
//
// Quick start:
//
//	eng := vscsistats.NewEngine()
//	host := vscsistats.NewHost(eng)
//	host.AddDatastore("sym", vscsistats.Symmetrix(1))
//	vd, _ := host.CreateVM("vm1").AddDisk(vscsistats.DiskSpec{
//		Name: "scsi0:0", Datastore: "sym", CapacitySectors: 6 << 21,
//	})
//	vd.Collector.Enable()
//	gen := vscsistats.NewIometer(eng, vd.Disk, vscsistats.FourKSeqRead(32))
//	gen.Start()
//	eng.RunUntil(10 * vscsistats.Second)
//	fmt.Println(vd.Collector.Snapshot().Summary())
package vscsistats

import (
	"io"
	"net/http"
	"time"

	"vscsistats/internal/analysis"
	"vscsistats/internal/core"
	"vscsistats/internal/fleet"
	"vscsistats/internal/fleetobs"
	"vscsistats/internal/fs"
	"vscsistats/internal/histogram"
	"vscsistats/internal/httpstats"
	"vscsistats/internal/hypervisor"
	"vscsistats/internal/report"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/telemetry"
	"vscsistats/internal/trace"
	"vscsistats/internal/vscsi"
	"vscsistats/internal/vscsim"
	"vscsistats/internal/workload"
)

// Version identifies the library release.
const Version = "1.0.0"

// --- Simulation engine ---

// Time is virtual time in nanoseconds; Engine is the discrete-event
// simulator every scenario runs on.
type (
	Time   = simclock.Time
	Engine = simclock.Engine
)

// Virtual time units.
const (
	Microsecond = simclock.Microsecond
	Millisecond = simclock.Millisecond
	Second      = simclock.Second
)

// NewEngine returns a fresh simulation engine with the clock at zero.
func NewEngine() *Engine { return simclock.NewEngine() }

// --- The characterization service (the paper's contribution) ---

// Collector is the per-virtual-disk online histogram service; Snapshot is
// an immutable copy of everything it has gathered.
type (
	Collector        = core.Collector
	Snapshot         = core.Snapshot
	Metric           = core.Metric
	Class            = core.Class
	Fingerprint      = core.Fingerprint
	Registry         = core.Registry
	IntervalRecorder = core.IntervalRecorder
)

// Metric and class selectors.
const (
	MetricIOLength     = core.MetricIOLength
	MetricSeekDistance = core.MetricSeekDistance
	MetricSeekWindowed = core.MetricSeekWindowed
	MetricOutstanding  = core.MetricOutstanding
	MetricLatency      = core.MetricLatency
	MetricInterarrival = core.MetricInterarrival

	All    = core.All
	Reads  = core.Reads
	Writes = core.Writes
)

// NewCollector creates a disabled collector for one virtual disk; attach it
// with Disk.AddObserver and toggle it with Enable/Disable.
func NewCollector(vm, disk string) *Collector { return core.NewCollector(vm, disk) }

// NewCollectorWindow sets an explicit windowed-seek look-behind (§3.1's N,
// default 16).
func NewCollectorWindow(vm, disk string, n int) *Collector {
	return core.NewCollectorWindow(vm, disk, n)
}

// NewRegistry creates the host-wide collector registry behind the
// enable/disable command-line utility.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewIntervalRecorder snapshots a collector every interval, producing the
// paper's "histogram over time" series (Figures 4(d), 6(c)).
func NewIntervalRecorder(eng *Engine, col *Collector, interval Time) *IntervalRecorder {
	return core.NewIntervalRecorder(eng, col, interval)
}

// FingerprintOf classifies a snapshot and derives placement recommendations
// (the §7 future-work feature).
func FingerprintOf(s *Snapshot) Fingerprint { return core.FingerprintOf(s) }

// Collector2D is the online seek-distance x latency correlation collector —
// the 2-D extension §3.6 leaves to future work, implemented.
type Collector2D = core.Collector2D

// NewCollector2D creates a disabled 2-D collector; attach it with
// Disk.AddObserver alongside (or instead of) the 1-D Collector.
func NewCollector2D(vm, disk string) *Collector2D { return core.NewCollector2D(vm, disk) }

// --- Histograms ---

// Histogram is an online histogram; HistogramSnapshot an immutable copy.
type (
	Histogram         = histogram.Histogram
	HistogramSnapshot = histogram.Snapshot
	Histogram2D       = histogram.Hist2D
	Series            = histogram.Series
)

// NewHistogram builds a histogram over arbitrary strictly-increasing bin
// upper edges.
func NewHistogram(name, unit string, edges []int64) *Histogram {
	return histogram.New(name, unit, edges)
}

// RenderHistogramComparison renders snapshots side by side (the layout of
// the paper's overlaid figures).
func RenderHistogramComparison(title string, snaps ...*HistogramSnapshot) string {
	return histogram.RenderCompare(title, snaps...)
}

// HistogramDistance is the total-variation distance between two snapshots'
// normalized distributions, in [0,1].
func HistogramDistance(a, b *HistogramSnapshot) float64 { return analysis.Distance(a, b) }

// --- SCSI and the virtual SCSI layer ---

// Command is a decoded SCSI CDB; Disk is a virtual SCSI disk; Request is a
// command in flight.
type (
	Command    = scsi.Command
	Disk       = vscsi.Disk
	Request    = vscsi.Request
	Observer   = vscsi.Observer
	Backend    = vscsi.Backend
	DiskConfig = vscsi.DiskConfig
)

// BatchObserver is an Observer that additionally accepts whole bursts of
// issued requests through OnIssueBatch; Disk.IssueBatch delivers a burst to
// it in one call, amortizing per-command dispatch. The built-in Collector
// implements it.
type BatchObserver = vscsi.BatchObserver

// Read and Write build block I/O commands (LBA and length in 512-byte
// sectors).
func Read(lba uint64, blocks uint32) Command { return scsi.Read(lba, blocks) }

// Write builds a block write command.
func Write(lba uint64, blocks uint32) Command { return scsi.Write(lba, blocks) }

// NewDisk creates a stand-alone virtual disk over a custom backend; most
// callers provision disks through a Host instead.
func NewDisk(eng *Engine, backend Backend, cfg DiskConfig) *Disk {
	return vscsi.NewDisk(eng, backend, cfg)
}

// --- Hypervisor host ---

// Host assembles datastores, VMs and virtual disks; Vdisk bundles a disk
// with its collector and optional tracer.
type (
	Host     = hypervisor.Host
	VM       = hypervisor.VM
	Vdisk    = hypervisor.Vdisk
	DiskSpec = hypervisor.DiskSpec
)

// SharedDatastore lets several hosts mount the same SAN volume (§3.7's
// unrelated-initiators caveat): export with Host.ExportDatastore, mount
// with Host.AddSharedDatastore.
type SharedDatastore = hypervisor.SharedDatastore

// NewHost creates an empty host on the engine.
func NewHost(eng *Engine) *Host { return hypervisor.NewHost(eng) }

// NewHostOn creates a host whose collectors register into a shared
// registry, pooling several hosts behind one control plane.
func NewHostOn(eng *Engine, reg *Registry) *Host { return hypervisor.NewHostOn(eng, reg) }

// --- Parallel multi-VM driver ---

// ParallelSim runs N independent simulation worlds (engine + host each) on
// separate goroutines with one shared collector registry; SimWorld is one
// such world. Use it for embarrassingly parallel multi-VM studies where
// each VM has its own datastore; VMs contending on one array still belong
// on a single engine.
type (
	ParallelSim = hypervisor.ParallelSim
	SimWorld    = hypervisor.World
)

// NewParallelSim creates n worlds and provisions each via setup. VM names
// must be unique across worlds (derive them from w.Index).
func NewParallelSim(n int, setup func(w *SimWorld)) *ParallelSim {
	return hypervisor.NewParallelSim(n, setup)
}

// --- Storage models ---

// ArrayConfig describes a storage array; the presets mirror the paper's
// testbeds (Table 1, §5.3).
type ArrayConfig = storage.ArrayConfig

// Symmetrix returns the big-cache RAID-5 reference array preset.
func Symmetrix(seed int64) ArrayConfig { return storage.SymmetrixConfig(seed) }

// CX3 returns the 2.5 GB-cache RAID-0 preset; CX3NoCache the same array
// with caching off (the Figure 6 worst case); LocalDisk a single spindle.
func CX3(seed int64) ArrayConfig { return storage.CX3Config(seed) }

// CX3NoCache is the CX3 with caching off (the Figure 6 worst case).
func CX3NoCache(seed int64) ArrayConfig { return storage.CX3NoCacheConfig(seed) }

// LocalDisk is a single direct-attached spindle with no array cache.
func LocalDisk(seed int64) ArrayConfig { return storage.LocalDiskConfig(seed) }

// --- Filesystem models ---

// FS is a mounted filesystem model; File an open file on it.
type (
	FS   = fs.FS
	File = fs.File
)

// Snapshotter is implemented by filesystems with point-in-time snapshots
// (of the bundled models, only ZFS): assert `fsys.(vscsistats.Snapshotter)`.
type Snapshotter = fs.Snapshotter

// Filesystem constructors: update-in-place models (UFS, ext3, NTFS) and the
// copy-on-write ZFS model.
func NewUFS(eng *Engine, d *Disk) FS { return fs.NewPlain(eng, d, fs.UFSConfig()) }

// NewExt3 formats d with the Linux ext3 model (4 KB blocks + journal).
func NewExt3(eng *Engine, d *Disk) FS { return fs.NewPlain(eng, d, fs.Ext3Config()) }

// NewNTFSXP formats d with the Windows XP NTFS model (64 KB transfers).
func NewNTFSXP(eng *Engine, d *Disk) FS {
	return fs.NewPlain(eng, d, fs.NTFSXPConfig())
}

// NewNTFSVista formats d with the Vista NTFS model (1 MB transfers).
func NewNTFSVista(eng *Engine, d *Disk) FS {
	return fs.NewPlain(eng, d, fs.NTFSVistaConfig())
}

// NewZFS formats d with the copy-on-write ZFS model (128 KB records).
func NewZFS(eng *Engine, d *Disk) FS { return fs.NewZFS(eng, d, fs.DefaultZFSConfig()) }

// --- Workload generators ---

// Generator is a runnable workload; the concrete generators mirror §4–§5.
type (
	Generator      = workload.Generator
	WorkloadStats  = workload.Stats
	Model          = workload.Model
	Filebench      = workload.Filebench
	DBT2           = workload.DBT2
	DBT2Config     = workload.DBT2Config
	FileCopy       = workload.FileCopy
	FileCopyConfig = workload.FileCopyConfig
	Iometer        = workload.Iometer
	AccessSpec     = workload.AccessSpec
)

// ParseModel parses the Filebench-style model language; OLTPModel returns
// the paper's OLTP personality at the given data/log sizes, and
// WebServerModel/VarmailModel the classic read-heavy and fsync-heavy
// personalities.
func ParseModel(src string) (*Model, error) { return workload.ParseModel(src) }

// OLTPModel is the paper's Filebench OLTP personality.
func OLTPModel(dataBytes, logBytes int64) *Model {
	return workload.OLTPModel(dataBytes, logBytes)
}

// WebServerModel is the read-heavy webserver personality (docset + log).
func WebServerModel(docSetBytes int64) *Model { return workload.WebServerModel(docSetBytes) }

// VarmailModel is the fsync-heavy mail-spool personality.
func VarmailModel(spoolBytes int64) *Model { return workload.VarmailModel(spoolBytes) }

// NewFilebench interprets a model against a filesystem.
func NewFilebench(eng *Engine, fsys FS, m *Model, seed int64) *Filebench {
	return workload.NewFilebench(eng, fsys, m, seed)
}

// NewDBT2 builds the DBT-2/PostgreSQL model; DefaultDBT2Config mirrors the
// paper's setup.
func NewDBT2(eng *Engine, fsys FS, cfg DBT2Config) *DBT2 {
	return workload.NewDBT2(eng, fsys, cfg)
}

// DefaultDBT2Config mirrors the paper's DBT-2 setup, scaled.
func DefaultDBT2Config() DBT2Config { return workload.DefaultDBT2Config() }

// NewFileCopy builds a chunk-pipelined copy; the XP/Vista configs differ
// only in transfer size (64 KB vs 1 MB).
func NewFileCopy(eng *Engine, fsys FS, cfg FileCopyConfig) *FileCopy {
	return workload.NewFileCopy(eng, fsys, cfg)
}

// XPCopy is the Windows XP 64 KB copy-engine profile.
func XPCopy(fileBytes int64) FileCopyConfig { return workload.XPCopyConfig(fileBytes) }

// VistaCopy is the Windows Vista 1 MB copy-engine profile.
func VistaCopy(fileBytes int64) FileCopyConfig { return workload.VistaCopyConfig(fileBytes) }

// NewIometer drives a raw virtual disk with an access specification.
func NewIometer(eng *Engine, d *Disk, spec AccessSpec) *Iometer {
	return workload.NewIometer(eng, d, spec)
}

// Standard access specifications from the paper's evaluation.
func FourKSeqRead(outstanding int) AccessSpec { return workload.FourKSeqRead(outstanding) }

// EightKRandomRead is the §5.3 8 KB random-read spec at 32 OIO.
func EightKRandomRead() AccessSpec { return workload.EightKRandomRead() }

// EightKSeqRead is the §5.3 8 KB sequential-read spec at 32 OIO.
func EightKSeqRead() AccessSpec { return workload.EightKSeqRead() }

// Synth generates an I/O stream matching a collected snapshot's
// distributions — synthesizing a workload from its characterization rather
// than from a trace (the §6 "synthetic workloads require detailed
// knowledge" gap, closed).
type Synth = workload.Synth

// NewSynthFromSnapshot builds a snapshot-driven generator against a raw
// virtual disk.
func NewSynthFromSnapshot(eng *Engine, d *Disk, s *Snapshot, seed int64) (*Synth, error) {
	return workload.NewSynth(eng, d, s, seed)
}

// NewStatsHandler exposes a registry over HTTP (list, JSON snapshots,
// per-histogram queries, fingerprints, enable/disable/reset).
func NewStatsHandler(reg *Registry) http.Handler { return httpstats.New(reg) }

// --- Observability (internal/telemetry) ---

// MetricsExporter serves GET /metrics in the Prometheus text format;
// LifecycleTracer keeps a ring of issue/complete/control events with
// Chrome trace JSON export (GET /debug/trace); SnapshotStreamer samples
// the registry on an interval and serves per-disk time series plus a live
// SSE feed (GET /watch). SelfSnapshot is a collector's self-telemetry:
// the live version of Table 2's overhead measurement.
type (
	MetricsExporter  = telemetry.Exporter
	LifecycleTracer  = telemetry.LifecycleTracer
	SnapshotStreamer = telemetry.Streamer
	SelfSnapshot     = core.SelfSnapshot
	DiskStatsSource  = telemetry.DiskStatsSource
	StatsOptions     = httpstats.Options
)

// NewMetricsExporter builds a Prometheus exporter over a registry. Chain
// .WithDiskStats(host or parallel sim) to add vSCSI-layer disk counters.
func NewMetricsExporter(reg *Registry) *MetricsExporter { return telemetry.NewExporter(reg) }

// NewLifecycleTracer builds a ring tracer retaining the last capacity
// events; attach it with Disk.AddObserver and feed control-plane verbs to
// Control.
func NewLifecycleTracer(capacity int) *LifecycleTracer {
	return telemetry.NewLifecycleTracer(capacity)
}

// NewSnapshotStreamer samples reg every interval (wall clock), retaining
// depth interval deltas per disk. Call Start/Stop, or Tick directly for
// deterministic sampling.
func NewSnapshotStreamer(reg *Registry, interval time.Duration, depth int) *SnapshotStreamer {
	return telemetry.NewStreamer(reg, interval, depth)
}

// NewStatsHandlerWith exposes a registry over HTTP with the observability
// surfaces mounted: /metrics, /debug/trace, /watch and per-disk /series.
func NewStatsHandlerWith(reg *Registry, opts StatsOptions) http.Handler {
	return httpstats.NewWith(reg, opts)
}

// --- Fleet federation (internal/fleet) ---

// FleetAgent pushes a registry's snapshots to an aggregator on an
// interval (with timeout, backoff + jitter and a bounded retry queue) —
// full state first, then interval deltas against the last acknowledged
// push, resyncing automatically when the aggregator loses the chain;
// FleetAggregator ingests pushes, scatter-gathers pulls, tracks per-host
// liveness and merges per-host snapshots into per-VM and cluster-wide
// histograms, bin-exact, sharded by consistent host hash with per-shard
// merge memoization. SnapshotBatch is the unit both speak on the wire.
type (
	FleetAgent            = fleet.Agent
	FleetAgentConfig      = fleet.AgentConfig
	FleetAgentStats       = fleet.AgentStats
	FleetAggregator       = fleet.Aggregator
	FleetAggregatorConfig = fleet.AggregatorConfig
	FleetAggregatorStats  = fleet.AggregatorStats
	FleetHostStatus       = fleet.HostStatus
	FleetShardStatus      = fleet.ShardStatus
	FleetTierStatus       = fleet.TierStatus
	FleetLogStats         = fleet.LogStats
	FleetReplayStats      = fleet.ReplayStats
	FleetHistoryResult    = fleet.HistoryResult
	FleetCatalogResult    = fleet.CatalogResult
	FleetCatalogVM        = fleet.CatalogVM
	SnapshotBatch         = fleet.Batch
)

// ErrFleetResyncRequired is returned by FleetAggregator.Ingest for a delta
// batch it cannot apply (unknown host, base-sequence gap); the HTTP push
// surface maps it to 409 and agents answer it with a full-state push.
var ErrFleetResyncRequired = fleet.ErrResyncRequired

// ErrFleetTruncatedFrame matches the subset of wire-decode failures where
// the stream simply ended inside a frame (crash mid-write) rather than
// carrying bytes that contradict the format; segment-log replay truncates
// on it and refuses to start on anything else.
var ErrFleetTruncatedFrame = fleet.ErrTruncatedFrame

// NewFleetAgent builds a fleet agent over the registry; Start launches the
// push loop, PushNow pushes synchronously.
func NewFleetAgent(reg *Registry, cfg FleetAgentConfig) *FleetAgent {
	return fleet.NewAgent(reg, cfg)
}

// NewFleetAggregator builds a memory-only fleet aggregator; mount it via
// StatsOptions.Fleet and chain MetricsExporter.WithFleet for the merged
// fleet_* Prometheus series.
func NewFleetAggregator(cfg FleetAggregatorConfig) *FleetAggregator {
	return fleet.NewAggregator(cfg)
}

// OpenFleetAggregator builds a fleet aggregator backed by the crash-safe
// segment log under cfg.DataDir: existing segments replay on boot (so a
// restart recovers the fleet without agent resyncs, truncating a crash-torn
// tail frame), every state-changing batch is appended from then on, and
// the retained log answers GET /fleet/history range queries. With an empty
// DataDir this is exactly NewFleetAggregator.
func OpenFleetAggregator(cfg FleetAggregatorConfig) (*FleetAggregator, FleetReplayStats, error) {
	return fleet.OpenAggregator(cfg)
}

// FleetReExporter makes aggregators composable into trees of arbitrary
// depth (agents → region → global): it re-exports an aggregator's merged
// per-shard state upstream through the same push protocol the aggregator
// ingests — one synthetic host per region by default, or every leaf by
// name with PerHostPassthrough. Upstream wire bytes and ingest scale with
// regions changed, not leaf hosts; quiet intervals send liveness-only
// heartbeats, and a restarted tier resyncs through the boot-incarnation
// 409 protocol exactly like an agent.
type (
	FleetReExporter       = fleet.ReExporter
	FleetReExporterConfig = fleet.ReExporterConfig
	FleetReExporterStats  = fleet.ReExporterStats
)

// NewFleetReExporter wraps the aggregator with an upstream re-export
// loop; Start launches it, ReExportNow flushes synchronously, Stop ends
// it with one final flush. Chain MetricsExporter.WithFleetReExport for
// the vscsistats_fleet_tier_reexport_* series.
func NewFleetReExporter(agg *FleetAggregator, cfg FleetReExporterConfig) *FleetReExporter {
	return fleet.NewReExporter(agg, cfg)
}

// EncodeSnapshotBatch and DecodeSnapshotBatch are the fleet wire codec:
// versioned, length-prefixed, gzip-framed — any number of frames can be
// concatenated on one stream.
func EncodeSnapshotBatch(w io.Writer, b *SnapshotBatch) error { return fleet.EncodeBatch(w, b) }

// DecodeSnapshotBatch reads one frame; it never panics on corrupt input.
func DecodeSnapshotBatch(r io.Reader) (*SnapshotBatch, error) { return fleet.DecodeBatch(r) }

// FleetResyncCause classifies why an aggregator demanded a full resync
// (seq-gap, unknown-host, unknown-disk, layout-mismatch); it rides the
// 409 body as resync_cause and is counted per cause in
// FleetAggregatorStats. FleetResyncError is the typed form — it still
// matches errors.Is(err, ErrFleetResyncRequired).
type (
	FleetResyncCause = fleet.ResyncCause
	FleetResyncError = fleet.ResyncError
)

// --- Fleet pipeline observability (internal/fleetobs) ---

// FleetObsTracker characterizes the characterizer: per-stage latency
// histograms over the fleet pipeline (capture, encode, push, decode,
// ingest, log append, fsync, compaction, replay, …), a bounded ring of
// structural events (rotations, resyncs with cause, torn tails,
// compactions), and a top-K slowest-operations ring. Hand one to
// FleetAgentConfig.Obs or FleetAggregatorConfig.Obs, chain
// MetricsExporter.WithFleetObs for the vscsistats_fleetobs_* series,
// and mount ChromeTraceHandler at StatsOptions.FleetTrace. A nil
// tracker is fully inert.
type (
	FleetObsTracker = fleetobs.Tracker
	FleetObsConfig  = fleetobs.Config
	FleetObsEvent   = fleetobs.Event
	FleetObsStage   = fleetobs.Stage
)

// NewFleetObsTracker builds a tracker; the zero config gives a
// 1024-event ring, a top-64 slow ring and 1-in-64 hot-path sampling.
func NewFleetObsTracker(cfg FleetObsConfig) *FleetObsTracker {
	return fleetobs.New(cfg)
}

// --- Datacenter simulation (internal/vscsim) ---

// SimInventory is a deterministic synthetic datacenter generated from a
// single seed: hosts × VMs × disks, each VM assigned a workload
// personality from the fleet population with heavy-tailed intensity.
// DatacenterSim runs every host in the inventory as its own wall-paced
// simulated world — engine, hypervisor, open-loop generators and a real
// fleet agent — multiplexed across worker goroutines in one process, so
// a thousand and more hosts exercise a real sharded aggregator.
// FleetPersonality is one named class in the workload population.
type (
	SimInventory        = vscsim.Inventory
	SimInventoryConfig  = vscsim.Config
	SimHostSpec         = vscsim.HostSpec
	SimVMSpec           = vscsim.VMSpec
	DatacenterSim       = vscsim.Sim
	DatacenterSimConfig = vscsim.SimConfig
	DatacenterSimStats  = vscsim.SimStats
	FleetPersonality    = workload.FleetPersonality
	PacedSpec           = workload.PacedSpec
	PacedGenerator      = workload.Paced
)

// ErrSimRunning rejects deterministic sim operations (RunVirtual,
// PushAll) while wall-paced execution owns the host engines.
var ErrSimRunning = vscsim.ErrRunning

// NewSimInventory generates the synthetic datacenter described by cfg —
// a pure function of cfg.Seed.
func NewSimInventory(cfg SimInventoryConfig) *SimInventory { return vscsim.NewInventory(cfg) }

// NewDatacenterSim builds every host world in the inventory; Start runs
// them wall-paced at cfg.Speed, RunVirtual advances them deterministically.
func NewDatacenterSim(inv *SimInventory, cfg DatacenterSimConfig) (*DatacenterSim, error) {
	return vscsim.New(inv, cfg)
}

// SimReferenceCatalog builds a §7 classification catalog with one
// reference snapshot per personality, each from a short deterministic
// single-VM simulation — install it on an aggregator (SetCatalog) to
// serve GET /fleet/catalog.
func SimReferenceCatalog(seed int64, personalities ...FleetPersonality) (*WorkloadCatalog, error) {
	return vscsim.ReferenceCatalog(seed, personalities...)
}

// FleetPersonalities returns the built-in datacenter workload population.
func FleetPersonalities() []FleetPersonality { return workload.FleetPersonalities() }

// NewPacedGenerator builds the open-loop Poisson-arrival generator the
// simulator drives each virtual disk with.
func NewPacedGenerator(eng *Engine, disk *Disk, spec PacedSpec) *PacedGenerator {
	return workload.NewPaced(eng, disk, spec)
}

// --- Tracing and offline analysis ---

// Tracer captures completed commands; TraceRecord is one command.
type (
	Tracer      = trace.Tracer
	TraceRecord = trace.Record
)

// NewTracer creates a bounded-ring command tracer; attach it with
// Disk.AddObserver.
func NewTracer(capacity int) *Tracer { return trace.NewTracer(capacity) }

// Replay feeds a trace back through a collector; Analyze computes exact
// (unbinned) statistics; SeekLatencyCorrelation builds the §3.6 2-D view.
func Replay(records []TraceRecord, col *Collector) { trace.Replay(records, col) }

// The streaming replay engine: bounded-memory, parallel, format-agnostic.
// RecordSource streams records (io.EOF at end); OpenTrace sniffs the
// encoding (native capture, stream frames, MSR Cambridge CSV, Alibaba
// cloud-trace CSV) and returns a streaming source over it.
type (
	RecordSource = trace.RecordSource
	TraceFormat  = trace.Format
	ReplayConfig = trace.ReplayConfig
	ReplayStats  = trace.ReplayStats
	ReplayResult = trace.ReplayResult
)

// The trace encodings OpenTrace understands.
const (
	TraceFormatAuto    = trace.FormatUnknown
	TraceFormatNative  = trace.FormatNative
	TraceFormatStream  = trace.FormatStream
	TraceFormatMSR     = trace.FormatMSR
	TraceFormatAlibaba = trace.FormatAlibaba
)

// OpenTrace wraps r as a streaming RecordSource, sniffing the format when
// f is TraceFormatAuto; the resolved format is returned alongside.
func OpenTrace(r io.Reader, f TraceFormat) (RecordSource, TraceFormat, error) {
	return trace.Open(r, f)
}

// NewSliceSource adapts an in-memory trace to RecordSource.
func NewSliceSource(records []TraceRecord) RecordSource { return trace.NewSliceSource(records) }

// ReplayParallel replays a source into one collector per (VM, disk)
// substream across a worker pool — bin-exact against Replay per disk, in
// one pass with bounded memory.
func ReplayParallel(src RecordSource, cfg ReplayConfig) (*ReplayResult, error) {
	return trace.ReplayParallel(src, cfg)
}

// ReplayMerged replays a source into one collector with the legacy
// single-stream semantics via a bounded k-way issue-order merge.
func ReplayMerged(src RecordSource, col *Collector, cfg ReplayConfig) (ReplayStats, error) {
	return trace.ReplayMerged(src, col, cfg)
}

// SynthesizeTrace generates a seed-deterministic synthetic trace, so
// benchmarks and tests need no checked-in fixtures.
func SynthesizeTrace(seed int64, n int) []TraceRecord { return trace.Synthesize(seed, n) }

// Analyze recomputes exact (unbinned) workload statistics from a trace.
func Analyze(records []TraceRecord) *analysis.Report {
	return analysis.Analyze(records)
}

// SeekLatencyCorrelation builds the §3.6 seek-distance x latency view.
func SeekLatencyCorrelation(records []TraceRecord) *histogram.Snapshot2D {
	return analysis.SeekLatency(records)
}

// Burstiness summarizes a trace's arrival process (peak-to-mean, index of
// dispersion, Hurst-exponent estimate) at the given window size.
type Burstiness = analysis.Burstiness

// BurstinessOf computes the arrival-process summary over a trace.
func BurstinessOf(records []TraceRecord, windowMicros int64) Burstiness {
	return analysis.BurstinessOf(records, windowMicros)
}

// AggregateSnapshots merges per-disk snapshots into one rollup view.
func AggregateSnapshots(vm, disk string, snaps ...*Snapshot) *Snapshot {
	return core.Aggregate(vm, disk, snaps...)
}

// WorkloadCatalog classifies snapshots against named reference
// characterizations by histogram distance (§7's automatic categorization).
type (
	WorkloadCatalog   = analysis.Catalog
	WorkloadReference = analysis.Reference
	WorkloadMatch     = analysis.Match
)

// NewWorkloadCatalog builds a classification catalog.
func NewWorkloadCatalog(refs ...WorkloadReference) (*WorkloadCatalog, error) {
	return analysis.NewCatalog(refs...)
}

// --- Experiments ---

// ExperimentOptions scales the paper-reproduction experiments;
// ExperimentResult is one regenerated table or figure.
type (
	ExperimentOptions = report.Options
	ExperimentResult  = report.Result
)

// DefaultExperimentOptions returns the standard experiment scale.
func DefaultExperimentOptions() ExperimentOptions { return report.DefaultOptions() }

// RunAllExperiments regenerates every table and figure in paper order.
func RunAllExperiments(opts ExperimentOptions) ([]*ExperimentResult, error) {
	return report.All(opts)
}
