package vscsistats_test

import (
	"encoding/json"
	"testing"

	"vscsistats"
)

// TestScenarioInvariants runs every catalog scenario briefly and checks the
// cross-module invariants that must hold regardless of workload: histogram
// mass conservation, counter consistency, error-free operation, and JSON
// round-tripping of the snapshot.
func TestScenarioInvariants(t *testing.T) {
	for _, name := range vscsistats.Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := vscsistats.NewScenario(name, vscsistats.ScenarioConfig{
				Seed: 7, DataBytes: 256 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := sc.Run(8 * vscsistats.Second)
			if s.Commands == 0 {
				t.Fatal("scenario generated no block I/O")
			}
			if s.Errors != 0 {
				t.Errorf("errors: %d", s.Errors)
			}
			if s.NumReads+s.NumWrites != s.Commands {
				t.Errorf("reads %d + writes %d != commands %d", s.NumReads, s.NumWrites, s.Commands)
			}
			// Arrival-side histograms hold exactly one sample per command.
			for _, m := range []vscsistats.Metric{vscsistats.MetricIOLength, vscsistats.MetricOutstanding} {
				if got := s.Histogram(m, vscsistats.All).Total; got != s.Commands {
					t.Errorf("%s total %d != commands %d", m, got, s.Commands)
				}
			}
			// Class histograms partition the all-class histogram.
			all := s.Histogram(vscsistats.MetricIOLength, vscsistats.All)
			reads := s.Histogram(vscsistats.MetricIOLength, vscsistats.Reads)
			writes := s.Histogram(vscsistats.MetricIOLength, vscsistats.Writes)
			for i := range all.Counts {
				if all.Counts[i] != reads.Counts[i]+writes.Counts[i] {
					t.Errorf("bin %d not partitioned: %d != %d+%d",
						i, all.Counts[i], reads.Counts[i], writes.Counts[i])
					break
				}
			}
			// Seek distance has one sample per command after the first.
			if got := s.Histogram(vscsistats.MetricSeekDistance, vscsistats.All).Total; got != s.Commands-1 {
				t.Errorf("seek total %d != commands-1 %d", got, s.Commands-1)
			}
			// Snapshot JSON round-trips.
			raw, err := json.Marshal(s)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back vscsistats.Snapshot
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if back.Commands != s.Commands {
				t.Errorf("round trip lost commands: %d != %d", back.Commands, s.Commands)
			}
			// Tracer captured the same commands the collector counted
			// (the tracer sees completions; in-flight tails may differ by
			// the still-outstanding window).
			recs := sc.VD.Tracer.Records()
			if int64(len(recs)) == 0 {
				t.Error("tracer empty")
			}
			// Generator made progress and agrees something happened.
			if sc.Gen.Stats().Ops == 0 {
				t.Error("generator reports no ops")
			}
		})
	}
}
