// Large file copy on Windows XP vs Vista NTFS: reproduces §4.3 — the two
// OSes copy the same file through 64 KB vs 1 MB pipelines, so Vista issues
// far fewer, larger, longer-latency, more sequential commands (Figure 5).
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

func run(name string, mkFS func(*vscsistats.Engine, *vscsistats.Disk) vscsistats.FS,
	cfg vscsistats.FileCopyConfig) *vscsistats.Snapshot {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("sym", vscsistats.Symmetrix(1))
	vd, err := host.CreateVM("windows").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "sym", CapacitySectors: 8 << 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fc := vscsistats.NewFileCopy(eng, mkFS(eng, vd.Disk), cfg)
	if err := fc.Setup(); err != nil {
		log.Fatal(err)
	}
	vd.Collector.Enable()
	fc.Start()
	eng.RunUntil(10 * vscsistats.Second) // "10 sec duration", as in Figure 5
	fc.Stop()
	s := vd.Collector.Snapshot()
	fmt.Printf("\n================ %s file copy (10 s) ================\n", name)
	fmt.Println(s.Histogram(vscsistats.MetricIOLength, vscsistats.All).Render(46))
	fmt.Println(s.Histogram(vscsistats.MetricLatency, vscsistats.All).Render(46))
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.All).Render(46))
	return s
}

func main() {
	const fileBytes = 512 << 20
	xp := run("Windows XP Pro (64 KB engine)", vscsistats.NewNTFSXP,
		vscsistats.XPCopy(fileBytes))
	vista := run("Windows Vista Enterprise (1 MB engine)", vscsistats.NewNTFSVista,
		vscsistats.VistaCopy(fileBytes))

	fmt.Println("================ Comparison (paper Figure 5) ================")
	fmt.Printf("%-28s %12s %12s\n", "", "XP Pro", "Vista")
	fmt.Printf("%-28s %12d %12d\n", "commands", xp.Commands, vista.Commands)
	fmt.Printf("%-28s %12.0f %12.0f\n", "mean I/O size (bytes)",
		xp.IOLength[vscsistats.All].Mean(), vista.IOLength[vscsistats.All].Mean())
	fmt.Printf("%-28s %12.0f %12.0f\n", "mean latency (us)",
		xp.Latency[vscsistats.All].Mean(), vista.Latency[vscsistats.All].Mean())
	fmt.Println("\nVista issues 1 MB I/Os: higher per-command latency, far fewer")
	fmt.Println("commands, and less seeking — exactly the paper's observation.")
}
