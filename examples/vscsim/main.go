// A datacenter in one process: a seed-driven synthetic inventory of hosts,
// VMs and disks with a heavy-tailed workload population, every host run as
// its own simulated world through the real fleet agent path into a real
// sharded aggregator. A reference catalog built from the same personality
// population (different seed) then classifies the merged per-VM views the
// §7 way — closing the loop from "generate a fleet" to "the fleet tells
// you what it is running".
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	"vscsistats"
)

func main() {
	// Aggregator with a reference catalog: one catalog entry per built-in
	// personality, each characterized in a clean single-VM world.
	catalog, err := vscsistats.SimReferenceCatalog(1234)
	if err != nil {
		log.Fatal(err)
	}
	agg := vscsistats.NewFleetAggregator(vscsistats.FleetAggregatorConfig{
		StaleAfter: time.Minute,
		Catalog:    catalog,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: agg}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("aggregator on http://%s (catalog: %v)\n", ln.Addr(), catalog.Names())

	// The synthetic datacenter: 64 hosts × 6 VMs, personalities drawn from
	// the built-in population, per-VM intensity heavy-tailed. Same seed,
	// same fleet — bit-identical, every run, on any machine.
	inv := vscsistats.NewSimInventory(vscsistats.SimInventoryConfig{
		Seed: 42, Hosts: 64, VMsPerHost: 6, Intensity: 4,
	})
	fmt.Printf("inventory: %d hosts, %d VMs, %d disks; generated mix %v\n",
		len(inv.Hosts), inv.VMCount(), inv.DiskCount(), inv.PersonalityMix())

	sim, err := vscsistats.NewDatacenterSim(inv, vscsistats.DatacenterSimConfig{
		Push:         fmt.Sprintf("http://%s/fleet/push", ln.Addr()),
		PushInterval: time.Second,
		Speed:        100, // 100 virtual seconds per wall second
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run wall-paced for a few seconds — agents push on their own clocks,
	// exactly as a real fleet would — then settle deterministically.
	sim.Start()
	time.Sleep(3 * time.Second)
	sim.Stop()
	if err := sim.PushAll(); err != nil {
		log.Fatal(err)
	}
	st := sim.Stats()
	fmt.Printf("simulated %v of fleet time in %v wall (%.0fx): %d guest commands, %d pushes\n",
		st.Virtual.Round(time.Second), st.Wall.Round(time.Millisecond), st.Speed, st.Ops, st.Agent.Pushes)

	// Ask the aggregator what the fleet is running and compare against the
	// generating truth the inventory knows.
	res := agg.ClassifyVMs(false)
	truth := make(map[string]string)
	for _, h := range inv.Hosts {
		for _, vm := range h.VMs {
			truth[vm.Name] = vm.Personality
		}
	}
	correct := 0
	for _, v := range res.VMs {
		if v.Personality == truth[v.VM] {
			correct++
		}
	}
	names := make([]string, 0, len(res.Mix))
	for name := range res.Mix {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("classified %d/%d VMs back to their generating personality (%d unclassified)\n",
		correct, len(res.VMs), res.Unclassified)
	for _, name := range names {
		fmt.Printf("  %-10s classified %3d, generated %3d\n", name, res.Mix[name], inv.PersonalityMix()[name])
	}
}
