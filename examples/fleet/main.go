// Fleet federation end to end: four simulated hosts each run their own
// engine, workload and registry; a fleet agent on each pushes snapshots to
// one aggregator, which serves the merged cluster view over HTTP. Midway
// through, one agent is killed. The aggregator never errors: the dead host
// simply ages past the staleness horizon and drops out of the merge, and
// the cluster histogram becomes the bin-exact sum of the three survivors —
// the graceful-degradation property the whole design leans on.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"vscsistats"
)

const (
	hosts        = 4
	pushInterval = 100 * time.Millisecond
	staleAfter   = 400 * time.Millisecond
)

// simHost is one simulated "ESX host": engine, host, workload, agent.
type simHost struct {
	name  string
	eng   *vscsistats.Engine
	reg   *vscsistats.Registry
	agent *vscsistats.FleetAgent
}

func main() {
	// The aggregator and its HTTP surface, up front so agents have a target.
	agg := vscsistats.NewFleetAggregator(vscsistats.FleetAggregatorConfig{StaleAfter: staleAfter})
	reg := vscsistats.NewRegistry() // the aggregator node has no local disks
	handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
		Metrics: vscsistats.NewMetricsExporter(reg).WithFleet(agg),
		Fleet:   agg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("aggregator on %s (stale after %s)\n", base, staleAfter)

	// Four hosts, each fully independent: own engine, datastore, VM,
	// workload — and a fleet agent pushing its registry.
	sims := make([]*simHost, hosts)
	for i := range sims {
		eng := vscsistats.NewEngine()
		h := vscsistats.NewHost(eng)
		h.AddDatastore("ds", vscsistats.LocalDisk(int64(i)+1))
		vd, err := h.CreateVM(fmt.Sprintf("vm%d", i)).AddDisk(vscsistats.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		vd.Collector.Enable()
		spec := vscsistats.EightKRandomRead()
		spec.Seed = int64(i) + 7
		gen := vscsistats.NewIometer(eng, vd.Disk, spec)
		eng.At(0, func(vscsistats.Time) { gen.Start() })

		name := fmt.Sprintf("esx-%02d", i)
		sims[i] = &simHost{
			name: name, eng: eng, reg: h.Registry(),
			agent: vscsistats.NewFleetAgent(h.Registry(), vscsistats.FleetAgentConfig{
				Host: name, Endpoint: base + "/fleet/push", Interval: pushInterval,
			}),
		}
		sims[i].agent.Start()
	}

	// Wall-paced simulation: every 25 ms of wall time advances each world
	// 100 ms of virtual time, while the agents push concurrently.
	stopSim := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range sims {
		wg.Add(1)
		go func(s *simHost) {
			defer wg.Done()
			t := time.NewTicker(25 * time.Millisecond)
			defer t.Stop()
			now := vscsistats.Time(0)
			for {
				select {
				case <-stopSim:
					return
				case <-t.C:
					now += 100 * vscsistats.Millisecond
					s.eng.RunUntil(now)
				}
			}
		}(s)
	}

	time.Sleep(6 * pushInterval)
	fmt.Printf("\nall %d hosts reporting:\n", hosts)
	printHosts(base)

	// Kill one agent mid-run: its host keeps simulating, but nothing
	// reaches the aggregator anymore — exactly what a crashed or
	// partitioned host looks like from the control plane.
	victim := sims[1]
	victim.agent.Stop()
	fmt.Printf("\nkilled the fleet agent on %s; waiting out the staleness horizon...\n", victim.name)
	time.Sleep(staleAfter + 3*pushInterval)

	// Freeze the world and flush the survivors, so the aggregator's view
	// and the hosts' registries can be compared exactly.
	close(stopSim)
	wg.Wait()
	var survivors []*vscsistats.Snapshot
	for _, s := range sims {
		if s == victim {
			continue
		}
		if err := s.agent.PushNow(); err != nil {
			log.Fatalf("final push from %s: %v", s.name, err)
		}
		survivors = append(survivors, s.reg.Snapshots()...)
		s.agent.Stop()
	}

	printHosts(base)

	// The merged cluster view must equal the survivors' sum, bin for bin.
	var cluster vscsistats.Snapshot
	getJSON(base+"/fleet/snapshot", &cluster)
	want := vscsistats.AggregateSnapshots("cluster", "*", survivors...)
	fmt.Printf("\ncluster after the kill: %d commands across %d surviving hosts (want %d)\n",
		cluster.Commands, len(survivors), want.Commands)
	exact := cluster.Commands == want.Commands
	for _, m := range []vscsistats.Metric{
		vscsistats.MetricIOLength, vscsistats.MetricSeekDistance, vscsistats.MetricLatency,
	} {
		got, expect := cluster.Histogram(m, vscsistats.All), want.Histogram(m, vscsistats.All)
		for i := range expect.Counts {
			if got.Counts[i] != expect.Counts[i] {
				exact = false
			}
		}
	}
	fmt.Printf("cluster histograms bin-exact against the 3 survivors: %v\n", exact)

	// And the dead host's data is still there — just flagged stale and
	// excluded; ?include_stale=1 folds it back in for post-mortems.
	var all vscsistats.Snapshot
	getJSON(base+"/fleet/snapshot?include_stale=1", &all)
	fmt.Printf("with include_stale=1 the view regains %s: %d commands (> %d)\n",
		victim.name, all.Commands, cluster.Commands)
}

func printHosts(base string) {
	var hosts []vscsistats.FleetHostStatus
	getJSON(base+"/fleet/hosts", &hosts)
	for _, h := range hosts {
		state := "fresh"
		if h.Stale {
			state = "STALE"
		}
		fmt.Printf("  %-8s %-5s seq=%-3d batches=%-3d disks=%d age=%.2fs\n",
			h.Host, state, h.Seq, h.Batches, h.Snapshots, h.AgeSeconds)
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
}
