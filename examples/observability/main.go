// Observability end to end: eight parallel VM worlds simulate I/O while
// the full telemetry surface serves live — a Prometheus /metrics scrape
// (including the collectors' own overhead histograms, Table 2 as a live
// metric), an SSE /watch feed of per-interval deltas, a per-disk /series
// time series, and a Chrome-traceable /debug/trace ring.
//
// The example runs self-contained: it starts the HTTP control plane on a
// loopback listener, scrapes itself while the worlds run, and prints what
// an operator would see.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"vscsistats"
)

const worlds = 8

func main() {
	// One lifecycle tracer shared by every world's disks: the mutex-guarded
	// ring is built for exactly this fan-in.
	tracer := vscsistats.NewLifecycleTracer(4096)

	sim := vscsistats.NewParallelSim(worlds, func(w *vscsistats.SimWorld) {
		w.Host.AddDatastore("ds", vscsistats.LocalDisk(int64(w.Index)+1))
		vd, err := w.Host.CreateVM(fmt.Sprintf("vm%d", w.Index)).AddDisk(vscsistats.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		vd.Collector.Enable()
		vd.Disk.AddObserver(tracer)
		spec := vscsistats.EightKRandomRead()
		spec.Seed = int64(w.Index) + 100
		gen := vscsistats.NewIometer(w.Engine, vd.Disk, spec)
		w.Engine.At(0, func(vscsistats.Time) { gen.Start() })
	})
	reg := sim.Registry()

	// The full control plane: stats routes + /metrics + /watch + /debug/trace.
	streamer := vscsistats.NewSnapshotStreamer(reg, 200*time.Millisecond, 64)
	streamer.Start()
	defer streamer.Stop()
	handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
		Metrics:   vscsistats.NewMetricsExporter(reg).WithDiskStats(sim),
		Trace:     tracer,
		Series:    streamer,
		OnControl: tracer.ControlVerb,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("control plane on %s (routes: /disks, /metrics, /watch, /debug/trace)\n\n", base)

	// Subscribe to the SSE feed before the worlds start.
	events := make(chan string, 16)
	go func() {
		resp, err := http.Get(base + "/watch")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				events <- strings.TrimPrefix(line, "data: ")
			}
		}
	}()

	// Run the worlds while the operator-side goroutines watch.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sim.RunUntil(5 * vscsistats.Second)
	}()

	// The virtual run can finish before the first wall-clock tick, so keep
	// listening briefly after it ends to show at least one interval.
	ticks := 0
	deadline := time.After(2 * time.Second)
	waiting := true
	for running := true; running || (waiting && ticks == 0); {
		select {
		case <-done:
			running = false
			done = nil
		case <-deadline:
			waiting = false
		case ev := <-events:
			if ticks < 3 { // show the first few live intervals
				fmt.Printf("SSE interval: %.120s...\n", ev)
			}
			ticks++
		}
	}
	fmt.Printf("\nreceived %d SSE intervals around a %d-world simulation\n\n", ticks, worlds)

	// Scrape /metrics like Prometheus would and pick out the headlines.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var commands, selfObs int
	sc := bufio.NewScanner(resp.Body)
	interesting := []string{
		`vscsistats_commands_total{vm="vm0"`,
		`vscsistats_self_observe_nanoseconds_sum{vm="vm0"`,
		`vscsistats_self_observe_nanoseconds_count{vm="vm0"`,
		"vscsistats_collectors ",
	}
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "vscsistats_commands_total") {
			commands++
		}
		if strings.HasPrefix(line, "vscsistats_self_observations_total") {
			selfObs++
		}
		for _, p := range interesting {
			if strings.HasPrefix(line, p) {
				fmt.Println("  " + line)
			}
		}
	}
	fmt.Printf("\n/metrics: %d per-disk command counters, %d self-telemetry series\n",
		commands, selfObs)
	fmt.Printf("/debug/trace ring: %d of last %d events retained (%d seen)\n",
		tracer.Len(), tracer.Cap(), tracer.Total())
}
