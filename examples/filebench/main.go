// Filebench OLTP on UFS vs ZFS: reproduces the paper's §4.1 headline — the
// same database workload produces a radically different disk workload
// depending on the filesystem, because ZFS's copy-on-write turns random
// application writes into large sequential device writes.
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

func run(name string, mkFS func(*vscsistats.Engine, *vscsistats.Disk) vscsistats.FS) *vscsistats.Snapshot {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("sym", vscsistats.Symmetrix(1))
	vd, err := host.CreateVM("solaris").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "sym", CapacitySectors: 16 << 21, // 16 GB
	})
	if err != nil {
		log.Fatal(err)
	}
	fsys := mkFS(eng, vd.Disk)

	// The paper's parameters, scaled: "total filesize is 10GB, logfilesize
	// is 1GB" becomes 2 GB / 200 MB to keep the demo fast.
	model := vscsistats.OLTPModel(2<<30, 200<<20)
	fb := vscsistats.NewFilebench(eng, fsys, model, 7)
	if err := fb.Setup(); err != nil {
		log.Fatal(err)
	}
	fb.Start()
	eng.RunUntil(10 * vscsistats.Second) // warm up
	vd.Collector.Enable()
	eng.RunUntil(70 * vscsistats.Second) // measure 60 s
	fb.Stop()

	s := vd.Collector.Snapshot()
	fmt.Printf("\n================ Filebench OLTP on %s ================\n", name)
	fmt.Println(s.Histogram(vscsistats.MetricIOLength, vscsistats.All).Render(46))
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.Writes).Render(46))
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.Reads).Render(46))
	fmt.Println(vscsistats.FingerprintOf(s).Report())
	return s
}

func main() {
	ufs := run("UFS", vscsistats.NewUFS)
	zfs := run("ZFS", vscsistats.NewZFS)

	fmt.Println("================ Comparison ================")
	fmt.Printf("UFS: %d commands, mean I/O %.0f bytes\n",
		ufs.Commands, ufs.IOLength[vscsistats.All].Mean())
	fmt.Printf("ZFS: %d commands, mean I/O %.0f bytes\n",
		zfs.Commands, zfs.IOLength[vscsistats.All].Mean())
	fmt.Println("ZFS issues far larger I/Os (record-sized, 80-128 KB) and its")
	fmt.Println("writes are sequential on disk despite the random workload (COW),")
	fmt.Println("matching the paper's Figures 2 and 3.")
}
