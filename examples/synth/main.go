// Synth: characterize a workload with the online histogram service, then
// regenerate a statistically matching workload from the histograms alone —
// no trace required. This closes the gap the paper identifies in §6:
// synthetic generators like Iometer "require detailed knowledge of the
// characteristics of the workload being simulated"; the collector's
// histograms are exactly that knowledge, compressed into ~3 KB.
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

// characterize runs the DBT-2 database workload and returns its snapshot.
func characterize() *vscsistats.Snapshot {
	sc, err := vscsistats.NewScenario("dbt2", vscsistats.ScenarioConfig{
		Seed: 1, DataBytes: 1 << 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sc.Run(30 * vscsistats.Second)
}

func main() {
	original := characterize()
	fmt.Println("=== original workload (DBT-2) ===")
	fmt.Println(original.Summary())

	// Rebuild a workload on a *different* host from the histograms alone.
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("cx3", vscsistats.CX3(9))
	vd, err := host.CreateVM("synth-vm").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "cx3", CapacitySectors: 8 << 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	vd.Collector.Enable()
	sy, err := vscsistats.NewSynthFromSnapshot(eng, vd.Disk, original, 42)
	if err != nil {
		log.Fatal(err)
	}
	sy.Start()
	eng.RunUntil(30 * vscsistats.Second)
	sy.Stop()

	clone := vd.Collector.Snapshot()
	fmt.Println("=== synthesized workload ===")
	fmt.Println(clone.Summary())

	fmt.Println("=== side-by-side I/O length ===")
	a := original.Histogram(vscsistats.MetricIOLength, vscsistats.All)
	b := clone.Histogram(vscsistats.MetricIOLength, vscsistats.All)
	for i := range a.Counts {
		fmt.Printf("%12s %10.1f%% %10.1f%%\n", a.BinLabel(i),
			100*a.Fraction(i), 100*b.Fraction(i))
	}
	fmt.Println("\nThe environment-independent distributions (size, seek, R/W mix)")
	fmt.Println("carry over; latency differs because the synthetic host's array does.")
}
