// DBT-2 (TPC-C on PostgreSQL) over ext3: reproduces §4.2 — an 8 KB-
// dominated mixed workload whose writes arrive in deep checkpointer bursts
// while reads stay shallow, with the I/O rate breathing across 6-second
// intervals.
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

func main() {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("sym", vscsistats.Symmetrix(1))
	vd, err := host.CreateVM("ubuntu").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "sym", CapacitySectors: 24 << 21, // 24 GB
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := vscsistats.DefaultDBT2Config()
	cfg.DatabaseBytes = 4 << 30 // paper: 50 GB, scaled
	cfg.WALBytes = 512 << 20
	cfg.CheckpointInterval = 15 * vscsistats.Second
	db := vscsistats.NewDBT2(eng, vscsistats.NewExt3(eng, vd.Disk), cfg)
	if err := db.Setup(); err != nil {
		log.Fatal(err)
	}
	db.Start()
	eng.RunUntil(10 * vscsistats.Second) // warm up

	vd.Collector.Enable()
	rec := vscsistats.NewIntervalRecorder(eng, vd.Collector, 6*vscsistats.Second)
	eng.RunUntil(130 * vscsistats.Second) // measure ~2 min, as in the paper
	rec.Stop()
	db.Stop()

	s := vd.Collector.Snapshot()
	txns, byType := db.Transactions()
	fmt.Printf("DBT-2: %d transactions over 2 min (%v)\n\n", txns, byType)
	fmt.Println(s.Histogram(vscsistats.MetricIOLength, vscsistats.All).Render(50))
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.Writes).Render(50))
	fmt.Println("Outstanding I/Os (reads vs writes):")
	fmt.Println(s.Histogram(vscsistats.MetricOutstanding, vscsistats.Reads).Render(50))
	fmt.Println(s.Histogram(vscsistats.MetricOutstanding, vscsistats.Writes).Render(50))

	fmt.Println("Outstanding I/Os over time (6-second intervals, Figure 4(d)):")
	fmt.Println(rec.Series(vscsistats.MetricOutstanding, vscsistats.All).String())

	rates := rec.Rates()
	lo, hi := rates[0], rates[0]
	for _, r := range rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	fmt.Printf("I/O rate per 6s interval: min %d, max %d (%.0f%% variation; paper: ~15%%)\n",
		lo, hi, 100*float64(hi-lo)/float64(hi))
}
