// Parallel multi-VM characterization: eight independent VM worlds — each
// with its own datastore and an 8 KB random-read Iometer — advanced across
// CPU cores by the parallel simulation driver, while their collectors pool
// into one registry behind a single (optional) HTTP stats endpoint.
//
// This is the embarrassingly parallel consolidation case; VMs that contend
// on one shared array (examples/multivm) still run on a single engine.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"vscsistats"
)

const worlds = 8

func build() *vscsistats.ParallelSim {
	return vscsistats.NewParallelSim(worlds, func(w *vscsistats.SimWorld) {
		w.Host.AddDatastore("ds", vscsistats.LocalDisk(int64(w.Index)+1))
		vd, err := w.Host.CreateVM(fmt.Sprintf("vm%d", w.Index)).AddDisk(vscsistats.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		vd.Collector.Enable()
		spec := vscsistats.EightKRandomRead()
		spec.Seed = int64(w.Index) + 100
		gen := vscsistats.NewIometer(w.Engine, vd.Disk, spec)
		w.Engine.At(0, func(vscsistats.Time) { gen.Start() })
	})
}

func main() {
	const horizon = 5 * vscsistats.Second

	t0 := time.Now()
	seq := build()
	seq.RunSequential(horizon)
	seqWall := time.Since(t0)

	t0 = time.Now()
	par := build()
	par.RunUntil(horizon)
	parWall := time.Since(t0)

	fmt.Printf("%d worlds x %v virtual on %d CPUs:\n", worlds, horizon, runtime.NumCPU())
	fmt.Printf("  sequential driver: %v\n", seqWall)
	fmt.Printf("  parallel driver:   %v  (%.2fx)\n", parWall, float64(seqWall)/float64(parWall))

	// Same worlds, same seeds => same characterization, whichever driver ran.
	fmt.Println("\nPer-VM characterization (shared registry):")
	for _, s := range par.Registry().Snapshots() {
		fmt.Printf("  %-5s %-8s %6d cmds, %3.0f%% reads, mean latency %.0f us\n",
			s.VM, s.Disk, s.Commands, 100*s.ReadFraction(),
			s.Latency[vscsistats.All].Mean())
	}

	// The pooled registry serves one control plane for every world:
	// srv := http.ListenAndServe(":8080", vscsistats.NewStatsHandler(par.Registry()))
	fmt.Println("\nesxtop view across all worlds:")
	fmt.Print(par.Top())
}
