// Quickstart: provision a virtual disk on a simulated array, run an
// Iometer-style workload against it, and print the online histograms the
// characterization service collected — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

func main() {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("sym", vscsistats.Symmetrix(1))

	vm := host.CreateVM("demo-vm")
	vd, err := vm.AddDisk(vscsistats.DiskSpec{
		Name:            "scsi0:0",
		Datastore:       "sym",
		CapacitySectors: 6 << 21, // 6 GB
	})
	if err != nil {
		log.Fatal(err)
	}

	// Turn the characterization service on (it is off — and free — by
	// default, exactly like the paper's ESX service).
	vd.Collector.Enable()

	// Drive the disk with 8 KB random reads at queue depth 32 for 30
	// virtual seconds.
	gen := vscsistats.NewIometer(eng, vd.Disk, vscsistats.EightKRandomRead())
	gen.Start()
	eng.RunUntil(30 * vscsistats.Second)
	gen.Stop()

	s := vd.Collector.Snapshot()
	fmt.Println(s.Summary())
	fmt.Println(s.Histogram(vscsistats.MetricIOLength, vscsistats.All).Render(50))
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.All).Render(50))
	fmt.Println(s.Histogram(vscsistats.MetricLatency, vscsistats.All).Render(50))
	fmt.Println(s.Histogram(vscsistats.MetricOutstanding, vscsistats.All).Render(50))

	// Automatic workload categorization (§7 future work, implemented).
	fmt.Println(vscsistats.FingerprintOf(s).Report())

	fmt.Printf("generator: %s over 30s -> %.0f IOps, %.1f MB/s\n",
		gen.Stats(), gen.Stats().Rate(30*vscsistats.Second),
		gen.Stats().Throughput(30*vscsistats.Second)/(1<<20))
}
