// Backup from a ZFS snapshot while OLTP keeps running: copy-on-write means
// the snapshot pins the old on-disk layout for free, and the backup scan
// reads those pinned extents while live writes stream to the COW frontier.
// The characterization service shows both workloads' signatures mixed on
// one virtual disk — exactly the "complex workloads may benefit from
// splitting across virtual disks" situation of §3.6.
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

func main() {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("sym", vscsistats.Symmetrix(1))
	vd, err := host.CreateVM("db").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "sym", CapacitySectors: 16 << 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	zfsFS := vscsistats.NewZFS(eng, vd.Disk)

	// OLTP runs against the dataset.
	fb := vscsistats.NewFilebench(eng, zfsFS, vscsistats.OLTPModel(1<<30, 128<<20), 7)
	if err := fb.Setup(); err != nil {
		log.Fatal(err)
	}
	fb.Start()
	eng.RunUntil(10 * vscsistats.Second)

	// Take a snapshot mid-run (forces a txg), then enable stats and start
	// the backup scan of the snapshot alongside the live workload.
	snapper := zfsFS.(vscsistats.Snapshotter)
	var snapErr error
	snapDone := false
	snapper.TakeSnapshot("backup-point", func(err error) { snapErr, snapDone = err, true })
	for !snapDone && eng.Step() {
	}
	if snapErr != nil {
		log.Fatal(snapErr)
	}
	vd.Collector.Enable()

	snapFile, err := snapper.OpenSnapshot("backup-point", "datafile")
	if err != nil {
		log.Fatal(err)
	}
	// Sequential backup scan: 1 MB chunks through the snapshot view.
	var scanned int64
	const chunk = 1 << 20
	var scan func(off int64)
	scan = func(off int64) {
		if off+chunk > snapFile.Size() {
			return
		}
		snapFile.Read(off, chunk, func(error) {
			scanned += chunk
			scan(off + chunk)
		})
	}
	scan(0)
	eng.RunUntil(40 * vscsistats.Second)
	fb.Stop()

	s := vd.Collector.Snapshot()
	fmt.Printf("backup scanned %d MB while OLTP ran; disk saw %d commands\n",
		scanned>>20, s.Commands)
	fmt.Println(s.Histogram(vscsistats.MetricIOLength, vscsistats.Reads).Render(46))
	fmt.Println("The read-size histogram shows both signatures at once: the")
	fmt.Println("backup's 128 KB record scans plus the OLTP reads. The seek")
	fmt.Println("histogram mixes the scan's sequential run with OLTP randomness:")
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.Reads).Render(46))
	fmt.Println(vscsistats.FingerprintOf(s).Report())
}
