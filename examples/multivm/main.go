// Multi-VM interference (§5.3 / Figure 6): an 8 KB sequential reader and an
// 8 KB random reader on separate virtual disks of the same cache-disabled
// array. The environment-dependent metrics (latency, inter-arrival) shift
// dramatically for the sequential reader; the environment-independent ones
// (size, seek distance, OIO) do not — the paper's §3.7 distinction.
package main

import (
	"fmt"
	"log"

	"vscsistats"
)

const diskSectors = 6 << 21 // 6 GB virtual disks, as in the paper

func provision(host *vscsistats.Host, vm string) *vscsistats.Vdisk {
	vd, err := host.CreateVM(vm).AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "cx3", CapacitySectors: diskSectors,
	})
	if err != nil {
		log.Fatal(err)
	}
	vd.Collector.Enable()
	return vd
}

func main() {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	// "we had to turn off the CX3 read cache forcing all I/Os to hit the
	// disk ... the extreme worst case for this workload combination."
	host.AddDatastore("cx3", vscsistats.CX3NoCache(1))

	seqVD := provision(host, "seq-vm")
	randVD := provision(host, "rand-vm")

	seq := vscsistats.NewIometer(eng, seqVD.Disk, vscsistats.EightKSeqRead())
	random := vscsistats.NewIometer(eng, randVD.Disk, vscsistats.EightKRandomRead())

	// The sequential reader runs for 90 s; the random reader runs only
	// during the middle 30 s, shifting the latency histogram (Figure 6(c)).
	rec := vscsistats.NewIntervalRecorder(eng, seqVD.Collector, 6*vscsistats.Second)
	seq.Start()
	eng.At(30*vscsistats.Second, func(vscsistats.Time) { random.Start() })
	eng.At(60*vscsistats.Second, func(vscsistats.Time) { random.Stop() })
	eng.RunUntil(90 * vscsistats.Second)
	rec.Stop()
	seq.Stop()

	fmt.Println("Sequential reader latency histogram over time (6 s intervals):")
	fmt.Println("(the random VM is active during intervals S6-S10)")
	fmt.Println(rec.Series(vscsistats.MetricLatency, vscsistats.All).String())

	var soloLat, dualLat, soloCmds, dualCmds int64
	for i, s := range rec.Intervals {
		h := s.Latency[vscsistats.All]
		if i >= 5 && i < 10 {
			dualLat += h.Sum
			dualCmds += h.Total
		} else {
			soloLat += h.Sum
			soloCmds += h.Total
		}
	}
	if soloCmds > 0 && dualCmds > 0 {
		solo := float64(soloLat) / float64(soloCmds)
		dual := float64(dualLat) / float64(dualCmds)
		fmt.Printf("sequential reader: solo %.0f us -> dual %.0f us (%.0fx latency)\n",
			solo, dual, dual/solo)
		fmt.Printf("IOps during interference: %.0f%% of solo rate\n",
			100*float64(dualCmds)/5/(float64(soloCmds)/float64(len(rec.Intervals)-5)))
	}

	s := seqVD.Collector.Snapshot()
	fmt.Println("\nDevice-independent metrics are unaffected (§3.7):")
	fmt.Println(s.Histogram(vscsistats.MetricIOLength, vscsistats.All).Render(40))
	fmt.Println(s.Histogram(vscsistats.MetricSeekDistance, vscsistats.All).Render(40))
}
