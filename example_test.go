package vscsistats_test

import (
	"fmt"

	"vscsistats"
)

// Example_characterize shows the core loop: drive a virtual disk and read
// back the histograms. The simulation is deterministic, so this output is
// exact.
func Example_characterize() {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("local", vscsistats.LocalDisk(1))
	vd, err := host.CreateVM("guest").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "local", CapacitySectors: 1 << 22,
	})
	if err != nil {
		panic(err)
	}
	vd.Collector.Enable()

	// Eight sequential 4 KB reads.
	for i := uint64(0); i < 8; i++ {
		if _, err := vd.Disk.Issue(vscsistats.Read(i*8, 8), nil); err != nil {
			panic(err)
		}
	}
	eng.Run()

	s := vd.Collector.Snapshot()
	fmt.Printf("commands: %d\n", s.Commands)
	length := s.Histogram(vscsistats.MetricIOLength, vscsistats.All)
	fmt.Printf("all 4K: %v\n", length.Min == 4096 && length.Max == 4096)
	seeks := s.Histogram(vscsistats.MetricSeekDistance, vscsistats.All)
	fmt.Printf("sequential seeks: %d of %d at distance 1\n", seeks.Counts[9], seeks.Total)
	// Output:
	// commands: 8
	// all 4K: true
	// sequential seeks: 7 of 7 at distance 1
}

// Example_fingerprint classifies a workload from its histograms alone.
func Example_fingerprint() {
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("local", vscsistats.LocalDisk(2))
	vd, _ := host.CreateVM("guest").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "local", CapacitySectors: 1 << 24,
	})
	vd.Collector.Enable()
	gen := vscsistats.NewIometer(eng, vd.Disk, vscsistats.EightKSeqRead())
	gen.Start()
	eng.RunUntil(2 * vscsistats.Second)
	gen.Stop()

	f := vscsistats.FingerprintOf(vd.Collector.Snapshot())
	fmt.Printf("%s, %.0f%% reads, dominant %d bytes\n",
		f.AccessPattern, 100*f.ReadFraction, f.DominantIOBytes)
	// Output:
	// sequential, 100% reads, dominant 8192 bytes
}

// Example_model runs a hand-written Filebench-style model.
func Example_model() {
	model, err := vscsistats.ParseModel(`
define file name=data,size=8m
define process name=app {
  thread name=t,instances=2 {
    flowop read name=r,file=data,iosize=4k,random
    flowop delay name=think,value=10ms
  }
}
`)
	if err != nil {
		panic(err)
	}
	eng := vscsistats.NewEngine()
	host := vscsistats.NewHost(eng)
	host.AddDatastore("local", vscsistats.LocalDisk(3))
	vd, _ := host.CreateVM("guest").AddDisk(vscsistats.DiskSpec{
		Name: "scsi0:0", Datastore: "local", CapacitySectors: 1 << 22,
	})
	vd.Collector.Enable()
	fb := vscsistats.NewFilebench(eng, vscsistats.NewUFS(eng, vd.Disk), model, 4)
	if err := fb.Setup(); err != nil {
		panic(err)
	}
	fb.Start()
	eng.RunUntil(1 * vscsistats.Second)
	fb.Stop()
	fmt.Printf("two 10ms-paced threads for 1s: %v\n",
		fb.Stats().Ops >= 100 && fb.Stats().Ops <= 200)
	// Output:
	// two 10ms-paced threads for 1s: true
}
