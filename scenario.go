package vscsistats

import (
	"fmt"
	"sort"

	"vscsistats/internal/hypervisor"
	"vscsistats/internal/workload"
)

// Scenario is a pre-wired stack — array, VM, virtual disk with collector
// and tracer, filesystem (when applicable) and workload generator — for one
// of the paper's named workloads. It backs the command-line tools and gives
// library users a one-call way to generate realistic traffic.
type Scenario struct {
	Name string
	Eng  *Engine
	Host *Host
	VD   *Vdisk
	Gen  Generator

	// Warmup is run (with stats disabled) before measurement.
	Warmup Time
}

// ScenarioConfig tunes scenario construction.
type ScenarioConfig struct {
	// Seed drives all randomness.
	Seed int64
	// DataBytes scales the scenario's primary dataset (default 1 GB).
	DataBytes int64
	// TraceCapacity bounds the attached command tracer (default 1M).
	TraceCapacity int
	// Datastore overrides the backing array preset (default Symmetrix).
	Datastore *ArrayConfig
}

// scenarioBuilders maps names to constructors.
var scenarioBuilders = map[string]func(*Scenario, ScenarioConfig) error{
	"iometer-4k-seq":  buildIometer(func(ScenarioConfig) AccessSpec { return workload.FourKSeqRead(32) }),
	"iometer-8k-rand": buildIometer(func(ScenarioConfig) AccessSpec { return workload.EightKRandomRead() }),
	"iometer-8k-seq":  buildIometer(func(ScenarioConfig) AccessSpec { return workload.EightKSeqRead() }),
	"oltp-ufs":        buildFilebench(oltpModel, func(eng *Engine, d *Disk) FS { return NewUFS(eng, d) }),
	"oltp-zfs":        buildFilebench(oltpModel, func(eng *Engine, d *Disk) FS { return NewZFS(eng, d) }),
	"webserver-ufs":   buildFilebench(webModel, func(eng *Engine, d *Disk) FS { return NewUFS(eng, d) }),
	"varmail-ufs":     buildFilebench(mailModel, func(eng *Engine, d *Disk) FS { return NewUFS(eng, d) }),
	"dbt2":            buildDBT2,
	"copy-xp": buildCopy(func(eng *Engine, d *Disk) FS { return NewNTFSXP(eng, d) },
		func(b int64) FileCopyConfig { return XPCopy(b) }),
	"copy-vista": buildCopy(func(eng *Engine, d *Disk) FS { return NewNTFSVista(eng, d) },
		func(b int64) FileCopyConfig { return VistaCopy(b) }),
}

// Scenarios lists the available scenario names.
func Scenarios() []string {
	names := make([]string, 0, len(scenarioBuilders))
	for n := range scenarioBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewScenario builds a named scenario. See Scenarios for the catalog.
func NewScenario(name string, cfg ScenarioConfig) (*Scenario, error) {
	build, ok := scenarioBuilders[name]
	if !ok {
		return nil, fmt.Errorf("vscsistats: unknown scenario %q (have %v)", name, Scenarios())
	}
	if cfg.DataBytes <= 0 {
		cfg.DataBytes = 1 << 30
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 1 << 20
	}
	ds := Symmetrix(cfg.Seed)
	if cfg.Datastore != nil {
		ds = *cfg.Datastore
	}
	s := &Scenario{Name: name, Eng: NewEngine()}
	s.Host = NewHost(s.Eng)
	s.Host.AddDatastore("ds", ds)
	vd, err := s.Host.CreateVM(name).AddDisk(hypervisor.DiskSpec{
		Name:            "scsi0:0",
		Datastore:       "ds",
		CapacitySectors: uint64(4 * cfg.DataBytes / 512),
		TraceCapacity:   cfg.TraceCapacity,
	})
	if err != nil {
		return nil, err
	}
	s.VD = vd
	if err := build(s, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Run warms the scenario up, enables the collector and tracer, runs the
// measured duration, and returns the snapshot.
func (s *Scenario) Run(duration Time) *Snapshot {
	s.Gen.Start()
	s.Eng.RunUntil(s.Warmup)
	s.VD.Collector.Enable()
	if s.VD.Tracer != nil {
		s.VD.Tracer.Enable()
	}
	s.Eng.RunUntil(s.Warmup + duration)
	s.Gen.Stop()
	return s.VD.Collector.Snapshot()
}

func buildIometer(spec func(ScenarioConfig) AccessSpec) func(*Scenario, ScenarioConfig) error {
	return func(s *Scenario, cfg ScenarioConfig) error {
		sp := spec(cfg)
		sp.Seed = cfg.Seed + 11
		s.Gen = NewIometer(s.Eng, s.VD.Disk, sp)
		s.Warmup = 2 * Second
		return nil
	}
}

func oltpModel(dataBytes int64) *Model { return OLTPModel(dataBytes, dataBytes/10) }
func webModel(dataBytes int64) *Model  { return workload.WebServerModel(dataBytes) }
func mailModel(dataBytes int64) *Model { return workload.VarmailModel(dataBytes) }

func buildFilebench(mkModel func(int64) *Model, mkFS func(*Engine, *Disk) FS) func(*Scenario, ScenarioConfig) error {
	return func(s *Scenario, cfg ScenarioConfig) error {
		fb := NewFilebench(s.Eng, mkFS(s.Eng, s.VD.Disk), mkModel(cfg.DataBytes), cfg.Seed)
		if err := fb.Setup(); err != nil {
			return err
		}
		s.Gen = fb
		s.Warmup = 10 * Second
		return nil
	}
}

func buildDBT2(s *Scenario, cfg ScenarioConfig) error {
	dc := DefaultDBT2Config()
	dc.DatabaseBytes = cfg.DataBytes
	dc.WALBytes = cfg.DataBytes / 8
	dc.Seed = cfg.Seed
	dc.CheckpointInterval = 15 * Second
	db := NewDBT2(s.Eng, NewExt3(s.Eng, s.VD.Disk), dc)
	if err := db.Setup(); err != nil {
		return err
	}
	s.Gen = db
	s.Warmup = 10 * Second
	return nil
}

func buildCopy(mkFS func(*Engine, *Disk) FS, mkCfg func(int64) FileCopyConfig) func(*Scenario, ScenarioConfig) error {
	return func(s *Scenario, cfg ScenarioConfig) error {
		fc := NewFileCopy(s.Eng, mkFS(s.Eng, s.VD.Disk), mkCfg(cfg.DataBytes/2))
		if err := fc.Setup(); err != nil {
			return err
		}
		s.Gen = fc
		s.Warmup = Second
		return nil
	}
}
