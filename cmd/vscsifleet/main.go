// Command vscsifleet federates characterization across hosts: the same
// constant-space histograms the paper keeps per virtual disk, merged
// bin-exactly into per-VM and cluster-wide views.
//
// Aggregator mode — accept pushes, serve the merged views:
//
//	vscsifleet -mode aggregator -listen :9108 -stale 6s
//
// Agent mode — simulate one host's workload and push its registry:
//
//	vscsifleet -mode agent -host esx-01 -workload iometer-8k-rand \
//	    -push http://127.0.0.1:9108/fleet/push -interval 2s
//
// The aggregator serves /fleet/hosts, /fleet/snapshot and /fleet/push,
// plus /metrics (with the merged fleet_* series) and /healthz; agents
// additionally expose their own full stats surface (-listen) so an
// aggregator can scatter-gather pull them instead of waiting for pushes.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"vscsistats"
)

func main() {
	var (
		mode   = flag.String("mode", "", "aggregator or agent")
		listen = flag.String("listen", "", "HTTP listen address (aggregator default :9108; agents serve their stats surface when set)")

		// Aggregator flags.
		stale        = flag.Duration("stale", 6*time.Second, "aggregator: mark a host stale after this silence")
		pull         = flag.String("pull", "", "aggregator: comma-separated host=url pull endpoints to scrape")
		pullInterval = flag.Duration("pull-interval", 0, "aggregator: scatter-gather the -pull endpoints this often (0 = pushes only)")

		// Agent flags.
		host     = flag.String("host", "", "agent: host name reported to the aggregator (default: hostname)")
		push     = flag.String("push", "", "agent: aggregator push URL, e.g. http://aggr:9108/fleet/push")
		interval = flag.Duration("interval", 2*time.Second, "agent: push interval")
		workload = flag.String("workload", "iometer-8k-rand", "agent: scenario to simulate (see vscsistats -list)")
		seed     = flag.Int64("seed", 1, "agent: simulation seed")
		speed    = flag.Int("speed", 1, "agent: virtual seconds simulated per wall second")
		duration = flag.Duration("duration", 0, "agent: stop after this wall-clock time (0 = run until interrupted)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "aggregator":
		err = runAggregator(*listen, *stale, *pull, *pullInterval)
	case "agent":
		err = runAgent(*listen, *host, *push, *interval, *workload, *seed, *speed, *duration)
	default:
		err = fmt.Errorf("vscsifleet: -mode must be aggregator or agent")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runAggregator(listen string, stale time.Duration, pull string, pullInterval time.Duration) error {
	if listen == "" {
		listen = ":9108"
	}
	agg := vscsistats.NewFleetAggregator(vscsistats.FleetAggregatorConfig{StaleAfter: stale})
	if pull != "" {
		for _, spec := range strings.Split(pull, ",") {
			host, url, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				return fmt.Errorf("vscsifleet: -pull entry %q is not host=url", spec)
			}
			agg.Watch(host, url)
		}
	}
	if pullInterval > 0 {
		go func() {
			for range time.Tick(pullInterval) {
				for host, err := range agg.PullAll() {
					fmt.Fprintf(os.Stderr, "pull %s: %v\n", host, err)
				}
			}
		}()
	}

	// The aggregator has no local disks; its registry exists so the stats
	// surface (and /healthz) comes up uniform with every other node.
	reg := vscsistats.NewRegistry()
	handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
		Metrics: vscsistats.NewMetricsExporter(reg).WithFleet(agg),
		Fleet:   agg,
	})
	fmt.Fprintf(os.Stderr, "aggregator on %s (/fleet/hosts, /fleet/snapshot, /fleet/push, /metrics, /healthz; stale after %s)\n",
		listen, stale)
	return http.ListenAndServe(listen, handler)
}

func runAgent(listen, host, push string, interval time.Duration, workload string, seed int64, speed int, duration time.Duration) error {
	if host == "" {
		host, _ = os.Hostname()
		if host == "" {
			host = "host"
		}
	}
	if speed < 1 {
		speed = 1
	}
	sc, err := vscsistats.NewScenario(workload, vscsistats.ScenarioConfig{Seed: seed})
	if err != nil {
		return err
	}
	sc.Gen.Start()
	sc.Eng.RunUntil(sc.Warmup)
	sc.VD.Collector.Enable()
	reg := sc.Host.Registry()

	agent := vscsistats.NewFleetAgent(reg, vscsistats.FleetAgentConfig{
		Host: host, Endpoint: push, Interval: interval,
	})
	if push != "" {
		agent.Start()
		defer agent.Stop()
	}
	if listen != "" {
		handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
			Metrics: vscsistats.NewMetricsExporter(reg).WithDiskStats(sc.Host),
		})
		go http.ListenAndServe(listen, handler)
		fmt.Fprintf(os.Stderr, "agent %s stats on %s\n", host, listen)
	}
	fmt.Fprintf(os.Stderr, "agent %s simulating %s at %dx realtime, pushing to %s every %s\n",
		host, workload, speed, orNone(push), interval)

	// Advance virtual time in wall-paced steps so the histograms keep
	// accumulating while the agent pushes from its own goroutine.
	var stop <-chan time.Time
	if duration > 0 {
		stop = time.After(duration)
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	now := sc.Eng.Now()
	for {
		select {
		case <-tick.C:
			now += vscsistats.Time(speed) * vscsistats.Second
			sc.Eng.RunUntil(now)
		case <-stop:
			if push != "" {
				agent.PushNow()
				st := agent.Stats()
				fmt.Fprintf(os.Stderr, "agent %s done: %d pushes, %d errors, %d dropped\n",
					host, st.Pushes, st.Errors, st.Dropped)
			}
			return nil
		}
	}
}

func orNone(s string) string {
	if s == "" {
		return "(nowhere)"
	}
	return s
}
