// Command vscsifleet federates characterization across hosts: the same
// constant-space histograms the paper keeps per virtual disk, merged
// bin-exactly into per-VM and cluster-wide views.
//
// Aggregator mode — accept pushes, serve the merged views; with -data-dir
// every accepted batch also lands in a crash-safe segment log that is
// replayed on the next boot (no agent resyncs needed) and answers
// /fleet/history range queries:
//
//	vscsifleet -mode aggregator -listen :9108 -stale 6s \
//	    -data-dir /var/lib/vscsifleet -retention 24h
//
// Federation — a mid-tier aggregator re-exports its merged state to a
// parent through the same push protocol it ingests, so trees compose to
// any depth (agents → region → global). The default renders the region
// as one synthetic upstream host whose deltas carry only the shards that
// changed; -passthrough forwards every leaf by name instead:
//
//	vscsifleet -mode aggregator -listen :9109 -region region-west \
//	    -upstream http://global:9108/fleet/push -reexport-interval 2s
//
// Agent mode — simulate one host's workload and push its registry:
//
//	vscsifleet -mode agent -host esx-01 -workload iometer-8k-rand \
//	    -push http://127.0.0.1:9108/fleet/push -interval 2s
//
// Sim mode — a synthetic datacenter in one process: -hosts wall-paced
// simulated hosts (each with -vms-per-host VMs drawn from the fleet
// personality population at heavy-tailed intensities, all derived from
// one -seed), every host pushing through a real fleet agent:
//
//	vscsifleet -mode sim -hosts 1000 -vms-per-host 8 -seed 42 -speed 100 \
//	    -push http://127.0.0.1:9108/fleet/push -interval 2s
//
// Pair it with an aggregator started with -catalog, and /fleet/catalog
// (or `vscsictl catalog`) classifies every simulated VM back to the
// personality that generated it — the paper's §7 loop at fleet scope.
//
// The aggregator serves /fleet/hosts, /fleet/snapshot, /fleet/shards,
// /fleet/history, /fleet/log and /fleet/push, plus /metrics (with the
// merged fleet_* series) and /healthz; agents additionally expose their
// own full stats surface (-listen) so an aggregator can scatter-gather
// pull them instead of waiting for pushes.
//
// The aggregator shards its host space by consistent name hash (-shards)
// and memoizes per-shard merges; agents push interval deltas once a full
// push has been acknowledged (disable with -full-push) and resync
// automatically across aggregator restarts. Pulls spread across the
// -pull-interval in hashed phases with bounded concurrency.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vscsistats"
)

func main() {
	var (
		mode   = flag.String("mode", "", "aggregator, agent or sim")
		listen = flag.String("listen", "", "HTTP listen address (aggregator default :9108; agent/sim serve their stats surface when set)")

		// Aggregator flags.
		stale        = flag.Duration("stale", 6*time.Second, "aggregator: mark a host stale after this silence")
		shards       = flag.Int("shards", 0, "aggregator: shard count for the host space (0 = default 16)")
		pull         = flag.String("pull", "", "aggregator: comma-separated host=url pull endpoints to scrape")
		pullInterval = flag.Duration("pull-interval", 0, "aggregator: scrape the -pull endpoints once per interval, phase-spread (0 = pushes only)")
		dataDir      = flag.String("data-dir", "", "aggregator: persist ingested state to a segment log here and replay it on boot (empty = memory-only)")
		retention    = flag.Duration("retention", 0, "aggregator: drop log segments older than this (0 = keep everything; requires -data-dir)")
		catalog      = flag.Bool("catalog", false, "aggregator: build the fleet-personality reference catalog (from -seed) and serve /fleet/catalog")

		// Federation flags: a mid-tier aggregator re-exports its merged
		// state to a parent aggregator through the same push protocol it
		// ingests, so trees (agents → region → global) compose freely.
		upstream         = flag.String("upstream", "", "aggregator: re-export merged state to this parent push URL (e.g. http://global:9108/fleet/push)")
		region           = flag.String("region", "", "aggregator: name this tier reports upstream as (default: hostname; requires -upstream)")
		reexportInterval = flag.Duration("reexport-interval", 2*time.Second, "aggregator: re-export period (also the upstream staleness horizon)")
		passthrough      = flag.Bool("passthrough", false, "aggregator: re-export every fresh downstream host by name instead of one region rollup")

		// Shared simulation flags (agent and sim modes; -seed also feeds
		// the aggregator's -catalog references).
		push     = flag.String("push", "", "aggregator push URL, e.g. http://aggr:9108/fleet/push")
		interval = flag.Duration("interval", 2*time.Second, "push interval per agent")
		fullPush = flag.Bool("full-push", false, "always push full state instead of interval deltas")
		seed     = flag.Int64("seed", 1, "master simulation seed: every workload RNG derives from it")
		speed    = flag.Int("speed", 1, "virtual seconds simulated per wall second")
		duration = flag.Duration("duration", 0, "stop after this wall-clock time (0 = run until interrupted)")

		// Agent flags.
		host     = flag.String("host", "", "agent: host name reported to the aggregator (default: hostname)")
		workload = flag.String("workload", "iometer-8k-rand", "agent: scenario to simulate (see vscsistats -list)")

		// Sim flags.
		simHosts   = flag.Int("hosts", 64, "sim: simulated host count")
		vmsPerHost = flag.Int("vms-per-host", 8, "sim: VMs per simulated host")
		disksPerVM = flag.Int("disks-per-vm", 1, "sim: virtual disks per VM")
		intensity  = flag.Float64("intensity", 1, "sim: global intensity multiplier on the heavy-tailed per-VM draws")
		workers    = flag.Int("workers", 0, "sim: goroutines hosts are multiplexed onto (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "aggregator":
		err = runAggregator(*listen, *stale, *shards, *pull, *pullInterval, *dataDir, *retention, *catalog, *seed,
			*upstream, *region, *reexportInterval, *passthrough)
	case "agent":
		err = runAgent(*listen, *host, *push, *interval, *workload, *fullPush, *seed, *speed, *duration)
	case "sim":
		err = runSim(*listen, *push, *interval, *fullPush, *seed, *speed, *duration,
			*simHosts, *vmsPerHost, *disksPerVM, *intensity, *workers)
	default:
		err = fmt.Errorf("vscsifleet: -mode must be aggregator, agent or sim")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runAggregator(listen string, stale time.Duration, shards int, pull string, pullInterval time.Duration, dataDir string, retention time.Duration, catalog bool, seed int64, upstream, region string, reexportInterval time.Duration, passthrough bool) error {
	if listen == "" {
		listen = ":9108"
	}
	obs := vscsistats.NewFleetObsTracker(vscsistats.FleetObsConfig{})
	agg, replay, err := vscsistats.OpenFleetAggregator(vscsistats.FleetAggregatorConfig{
		StaleAfter: stale, Shards: shards, DataDir: dataDir, Retention: retention, Obs: obs,
	})
	if err != nil {
		return err
	}
	defer agg.Close()
	if catalog {
		cat, err := vscsistats.SimReferenceCatalog(seed)
		if err != nil {
			return err
		}
		agg.SetCatalog(cat)
		fmt.Fprintf(os.Stderr, "reference catalog (seed %d): %s\n", seed, strings.Join(cat.Names(), ", "))
	}
	if dataDir != "" {
		fmt.Fprintf(os.Stderr, "segment log %s: replayed %d frames (%d hosts, %d skipped, %d torn tails) in %s\n",
			dataDir, replay.Frames, replay.Hosts, replay.Skipped, replay.TornTails, replay.Duration.Round(time.Millisecond))
	}
	if pull != "" {
		for _, spec := range strings.Split(pull, ",") {
			host, url, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				return fmt.Errorf("vscsifleet: -pull entry %q is not host=url", spec)
			}
			agg.Watch(host, url)
		}
	}
	if pullInterval > 0 {
		// PullLoop spreads the watched hosts across the interval in hashed
		// phases and bounds in-flight pulls, so a large or slow fleet never
		// produces a thundering herd (or a goroutine pile-up) here.
		go agg.PullLoop(nil, pullInterval)
	}
	var rex *vscsistats.FleetReExporter
	if upstream != "" {
		if region == "" {
			region, _ = os.Hostname()
			if region == "" {
				region = "region"
			}
		}
		rex = vscsistats.NewFleetReExporter(agg, vscsistats.FleetReExporterConfig{
			Region: region, Upstream: upstream, Interval: reexportInterval,
			PerHostPassthrough: passthrough, Obs: obs,
		})
		rex.Start()
		defer rex.Stop()
		mode := "rollup"
		if passthrough {
			mode = "passthrough"
		}
		fmt.Fprintf(os.Stderr, "re-exporting as %q (%s) to %s every %s\n", region, mode, upstream, reexportInterval)
	}

	// The aggregator has no local disks; its registry exists so the stats
	// surface (and /healthz) comes up uniform with every other node.
	reg := vscsistats.NewRegistry()
	metrics := vscsistats.NewMetricsExporter(reg).WithFleet(agg).WithFleetObs(obs)
	if rex != nil {
		metrics = metrics.WithFleetReExport(rex)
	}
	handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
		Metrics:    metrics,
		Fleet:      agg,
		FleetTrace: obs.ChromeTraceHandler(),
	})
	fmt.Fprintf(os.Stderr, "aggregator on %s (%d shards; /fleet/hosts, /fleet/snapshot, /fleet/shards, /fleet/history, /fleet/catalog, /fleet/log, /fleet/events, /fleet/slow, /fleet/push, /metrics, /debug/fleettrace, /healthz; stale after %s)\n",
		listen, agg.NumShards(), stale)

	// Serve until SIGINT/SIGTERM, then close the segment log so the final
	// fsync lands before exit — a signal must not look like a crash.
	srv := &http.Server{Addr: listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "aggregator: %s: syncing segment log and shutting down\n", sig)
		srv.Close()
		return agg.Close()
	}
}

func runAgent(listen, host, push string, interval time.Duration, workload string, fullPush bool, seed int64, speed int, duration time.Duration) error {
	if host == "" {
		host, _ = os.Hostname()
		if host == "" {
			host = "host"
		}
	}
	if speed < 1 {
		speed = 1
	}
	sc, err := vscsistats.NewScenario(workload, vscsistats.ScenarioConfig{Seed: seed})
	if err != nil {
		return err
	}
	sc.Gen.Start()
	sc.Eng.RunUntil(sc.Warmup)
	sc.VD.Collector.Enable()
	reg := sc.Host.Registry()

	obs := vscsistats.NewFleetObsTracker(vscsistats.FleetObsConfig{})
	agent := vscsistats.NewFleetAgent(reg, vscsistats.FleetAgentConfig{
		Host: host, Endpoint: push, Interval: interval, DisableDeltas: fullPush, Obs: obs,
	})
	if push != "" {
		agent.Start()
		defer agent.Stop()
	}
	if listen != "" {
		handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
			Metrics:    vscsistats.NewMetricsExporter(reg).WithDiskStats(sc.Host).WithFleetObs(obs),
			FleetTrace: obs.ChromeTraceHandler(),
		})
		go http.ListenAndServe(listen, handler)
		fmt.Fprintf(os.Stderr, "agent %s stats on %s\n", host, listen)
	}
	fmt.Fprintf(os.Stderr, "agent %s simulating %s at %dx realtime, pushing to %s every %s\n",
		host, workload, speed, orNone(push), interval)

	// Advance virtual time in wall-paced steps so the histograms keep
	// accumulating while the agent pushes from its own goroutine. A
	// SIGINT/SIGTERM ends the run like -duration does: one final push
	// drains the queue before exit.
	var stop <-chan time.Time
	if duration > 0 {
		stop = time.After(duration)
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	now := sc.Eng.Now()
	for {
		select {
		case <-tick.C:
			now += vscsistats.Time(speed) * vscsistats.Second
			sc.Eng.RunUntil(now)
			continue
		case <-stop:
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "agent %s: %s: draining final push\n", host, sig)
		}
		if push != "" {
			agent.PushNow()
			agent.Stop()
			st := agent.Stats()
			fmt.Fprintf(os.Stderr, "agent %s done: %d pushes (%d deltas, %d resyncs), %d errors, %d dropped\n",
				host, st.Pushes, st.DeltaPushes, st.Resyncs, st.Errors, st.Dropped)
		}
		return nil
	}
}

// runSim generates a deterministic synthetic datacenter from seed and
// runs every host wall-paced at -speed, each pushing through a real fleet
// agent. Status lines report the achieved multiplier so a CPU-bound run
// is visible rather than silently behind.
func runSim(listen, push string, interval time.Duration, fullPush bool, seed int64, speed int, duration time.Duration, hosts, vmsPerHost, disksPerVM int, intensity float64, workers int) error {
	if speed < 1 {
		speed = 1
	}
	inv := vscsistats.NewSimInventory(vscsistats.SimInventoryConfig{
		Seed: seed, Hosts: hosts, VMsPerHost: vmsPerHost, DisksPerVM: disksPerVM, Intensity: intensity,
	})
	build := time.Now()
	sim, err := vscsistats.NewDatacenterSim(inv, vscsistats.DatacenterSimConfig{
		Push: push, PushInterval: interval, Speed: float64(speed),
		Workers: workers, DisableDeltas: fullPush,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sim: %d hosts × %d VMs × %d disks (seed %d) built in %s; mix %v\n",
		hosts, vmsPerHost, disksPerVM, seed, time.Since(build).Round(time.Millisecond), inv.PersonalityMix())
	if listen != "" {
		// The sim has no registry of its own to serve — its collectors live
		// inside the per-host worlds — but /metrics with the vscsim_* series
		// makes the world's size, pacing and push health scrapable.
		reg := vscsistats.NewRegistry()
		handler := vscsistats.NewStatsHandlerWith(reg, vscsistats.StatsOptions{
			Metrics: vscsistats.NewMetricsExporter(reg).WithSim(sim),
		})
		go http.ListenAndServe(listen, handler)
		fmt.Fprintf(os.Stderr, "sim: metrics on %s\n", listen)
	}
	fmt.Fprintf(os.Stderr, "sim: running at %dx realtime, pushing to %s every %s\n",
		speed, orNone(push), interval)

	sim.Start()
	var stop <-chan time.Time
	if duration > 0 {
		stop = time.After(duration)
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	status := time.NewTicker(5 * time.Second)
	defer status.Stop()
	for {
		select {
		case <-status.C:
			st := sim.Stats()
			fmt.Fprintf(os.Stderr, "sim: virtual %s (%.1fx), %d ops, %d pushes (%d errors), %d throttled\n",
				st.Virtual.Round(time.Second), st.Speed, st.Ops, st.Agent.Pushes, st.Agent.Errors, st.Throttled)
			continue
		case <-stop:
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "sim: %s: stopping (each agent drains a final push)\n", sig)
		}
		sim.Stop()
		st := sim.Stats()
		fmt.Fprintf(os.Stderr, "sim done: %d hosts, virtual %s in wall %s (%.1fx), %d ops (%d errors), %d pushes (%d deltas, %d push errors, %d resyncs)\n",
			st.Hosts, st.Virtual.Round(time.Second), st.Wall.Round(time.Second), st.Speed,
			st.Ops, st.Errors, st.Agent.Pushes, st.Agent.DeltaPushes, st.Agent.Errors, st.Agent.Resyncs)
		return nil
	}
}

func orNone(s string) string {
	if s == "" {
		return "(nowhere)"
	}
	return s
}
