package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleet"
	"vscsistats/internal/fleetobs"
	"vscsistats/internal/histogram"
)

// newFlags builds a per-command FlagSet that reports usage to errw.
func (c *ctl) newFlags(name string) *flag.FlagSet {
	fs := flag.NewFlagSet("vscsictl "+name, flag.ContinueOnError)
	fs.SetOutput(c.errw)
	return fs
}

// table starts an aligned writer; callers must Flush.
func (c *ctl) table() *tabwriter.Writer {
	return tabwriter.NewWriter(c.out, 2, 8, 2, ' ', 0)
}

// --- hosts ---

func (c *ctl) cmdHosts(args []string) error {
	fs := c.newFlags("hosts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var hosts []fleet.HostStatus
	if done, err := c.getJSON("/fleet/hosts", &hosts); done || err != nil {
		return err
	}
	tw := c.table()
	fmt.Fprintln(tw, "HOST\tSOURCE\tLVL\tLEAVES\tSEQ\tBATCHES\tDISKS\tAGE\tSTALE")
	stale, leaves := 0, 0
	for _, h := range hosts {
		if h.Stale {
			stale++
		} else {
			leaves += h.Leaves
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%v\n",
			h.Host, h.Source, h.Level, h.Leaves, h.Seq, h.Batches, h.Snapshots, fmtAge(h.AgeSeconds), h.Stale)
	}
	tw.Flush()
	fmt.Fprintf(c.out, "%d hosts (%d stale), %d leaves folded\n", len(hosts), stale, leaves)
	return nil
}

// --- shards ---

func (c *ctl) cmdShards(args []string) error {
	fs := c.newFlags("shards")
	host := fs.String("host", "", "probe which shard this host name routes to instead of listing all shards")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *host != "" {
		var probe struct {
			Host   string `json:"host"`
			Shard  int    `json:"shard"`
			Shards int    `json:"shards"`
		}
		if done, err := c.getJSON("/fleet/shards?host="+url.QueryEscape(*host), &probe); done || err != nil {
			return err
		}
		fmt.Fprintf(c.out, "%s routes to shard %d of %d\n", probe.Host, probe.Shard, probe.Shards)
		return nil
	}
	var shards []fleet.ShardStatus
	if done, err := c.getJSON("/fleet/shards", &shards); done || err != nil {
		return err
	}
	tw := c.table()
	fmt.Fprintln(tw, "SHARD\tHOSTS\tSTALE\tBATCHES\tDELTAS\tDUPES\tRESYNCS\tCACHE-HITS\tCACHE-MISSES")
	var hosts, stale int
	var batches int64
	for _, s := range shards {
		hosts += s.Hosts
		stale += s.StaleHosts
		batches += s.Batches
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Shard, s.Hosts, s.StaleHosts, s.Batches, s.DeltasApplied, s.Duplicates,
			s.Resyncs, s.MergeCacheHits, s.MergeCacheMisses)
	}
	tw.Flush()
	fmt.Fprintf(c.out, "%d shards: %d hosts (%d stale), %d batches\n", len(shards), hosts, stale, batches)
	return nil
}

// --- log ---

func (c *ctl) cmdLog(args []string) error {
	fs := c.newFlags("log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var st fleet.LogStats
	if done, err := c.getJSON("/fleet/log", &st); done || err != nil {
		return err
	}
	if !st.Enabled {
		fmt.Fprintln(c.out, "segment log disabled (memory-only aggregator)")
		return nil
	}
	tw := c.table()
	fmt.Fprintf(tw, "segments\t%d (%s)\n", st.Segments, fmtBytes(st.Bytes))
	fmt.Fprintf(tw, "appends\t%d (%s, %d errors)\n", st.Appends, fmtBytes(st.AppendBytes), st.AppendErrors)
	fmt.Fprintf(tw, "fsyncs\t%d\n", st.Fsyncs)
	fmt.Fprintf(tw, "rotations\t%d\n", st.Rotations)
	fmt.Fprintf(tw, "compactions\t%d\n", st.Compactions)
	fmt.Fprintf(tw, "retired\t%d segments\n", st.SegmentsRetired)
	fmt.Fprintf(tw, "boot replay\t%d frames (%d torn tails)\n", st.FramesReplayed, st.TornTails)
	tw.Flush()
	return nil
}

// --- vms ---

func (c *ctl) cmdVMs(args []string) error {
	fs := c.newFlags("vms")
	stale := fs.Bool("stale", false, "include stale hosts in the merge")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/fleet/snapshot?view=vms"
	if *stale {
		path += "&include_stale=1"
	}
	var vms []*core.Snapshot
	if done, err := c.getJSON(path, &vms); done || err != nil {
		return err
	}
	tw := c.table()
	fmt.Fprintln(tw, "VM\tCOMMANDS\tREAD%\tAVG-IO\tAVG-LAT\tREAD-BYTES\tWRITE-BYTES\tERRORS")
	for _, s := range vms {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%s\t%s\t%s\t%s\t%d\n",
			s.VM, s.Commands, 100*s.ReadFraction(),
			fmtBytes(int64(meanOf(s.IOLength[core.All]))),
			fmtMicros(meanOf(s.Latency[core.All])),
			fmtBytes(s.ReadBytes), fmtBytes(s.WriteBytes), s.Errors)
	}
	tw.Flush()
	fmt.Fprintf(c.out, "%d VMs\n", len(vms))
	return nil
}

// --- snapshot ---

func (c *ctl) cmdSnapshot(args []string) error {
	fs := c.newFlags("snapshot")
	vm := fs.String("vm", "", "one VM's merged view instead of the whole cluster")
	stale := fs.Bool("stale", false, "include stale hosts in the merge")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/fleet/snapshot"
	q := url.Values{}
	if *vm != "" {
		q.Set("vm", *vm)
	}
	if *stale {
		q.Set("include_stale", "1")
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var s core.Snapshot
	if done, err := c.getJSON(path, &s); done || err != nil {
		return err
	}
	c.printSnapshot(&s)
	return nil
}

// printSnapshot renders one merged view: the counter header plus a
// per-metric summary table over the all-commands class.
func (c *ctl) printSnapshot(s *core.Snapshot) {
	fmt.Fprintf(c.out, "%s (disk %s): %d commands, %d reads / %d writes (%.0f%% reads), %d errors\n",
		s.VM, s.Disk, s.Commands, s.NumReads, s.NumWrites, 100*s.ReadFraction(), s.Errors)
	fmt.Fprintf(c.out, "bytes: %s read, %s written\n", fmtBytes(s.ReadBytes), fmtBytes(s.WriteBytes))
	tw := c.table()
	fmt.Fprintln(tw, "METRIC\tUNIT\tSAMPLES\tMEAN\tMIN\tMAX")
	for _, m := range core.Metrics() {
		h := s.Histogram(m, core.All)
		if h == nil || h.Total == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%d\t%d\n", m, h.Unit, h.Total, h.Mean(), h.Min, h.Max)
	}
	tw.Flush()
}

// --- history ---

func (c *ctl) cmdHistory(args []string) error {
	fs := c.newFlags("history")
	from := fs.String("from", "", "window start (RFC3339, unix seconds/nanos, or relative like -15m; default log start)")
	to := fs.String("to", "", "window end (same formats; default now)")
	vm := fs.String("vm", "", "narrow to one VM")
	vms := fs.Bool("vms", false, "per-VM windowed merges instead of the cluster view")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *from != "" {
		q.Set("from", c.windowTime(*from))
	}
	if *to != "" {
		q.Set("to", c.windowTime(*to))
	}
	if *vm != "" {
		q.Set("vm", *vm)
	}
	if *vms {
		q.Set("view", "vms")
	}
	path := "/fleet/history"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var res fleet.HistoryResult
	if done, err := c.getJSON(path, &res); done || err != nil {
		return err
	}
	fmt.Fprintf(c.out, "window %s .. %s: %d hosts changed, %d frames scanned\n",
		fmtTime(res.FromUnixNano), fmtTime(res.ToUnixNano), res.Hosts, res.Frames)
	switch {
	case res.Cluster != nil:
		c.printSnapshot(res.Cluster)
	case len(res.VMs) > 0:
		tw := c.table()
		fmt.Fprintln(tw, "VM\tCOMMANDS\tREAD%\tREAD-BYTES\tWRITE-BYTES\tERRORS")
		for _, s := range res.VMs {
			fmt.Fprintf(tw, "%s\t%d\t%.0f\t%s\t%s\t%d\n",
				s.VM, s.Commands, 100*s.ReadFraction(), fmtBytes(s.ReadBytes), fmtBytes(s.WriteBytes), s.Errors)
		}
		tw.Flush()
	default:
		fmt.Fprintln(c.out, "no state changed inside the window")
	}
	return nil
}

// --- catalog ---

func (c *ctl) cmdCatalog(args []string) error {
	fs := c.newFlags("catalog")
	vm := fs.String("vm", "", "one VM's full ranking instead of the fleet-wide view")
	stale := fs.Bool("stale", false, "classify stale hosts' VMs too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *vm != "" {
		q.Set("vm", *vm)
	}
	if *stale {
		q.Set("include_stale", "1")
	}
	path := "/fleet/catalog"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	if *vm != "" {
		var one fleet.CatalogVM
		if done, err := c.getJSON(path, &one); done || err != nil {
			return err
		}
		fmt.Fprintf(c.out, "%s: %s (distance %.4f over %d commands)\n",
			one.VM, one.Personality, one.Distance, one.Commands)
		tw := c.table()
		fmt.Fprintln(tw, "RANK\tPERSONALITY\tSCORE\tCOMPONENTS")
		for i, r := range one.Ranking {
			fmt.Fprintf(tw, "%d\t%s\t%.4f\t%s\n", i+1, r.Name, r.Score, fmtComponents(r.Components))
		}
		tw.Flush()
		return nil
	}
	var res fleet.CatalogResult
	if done, err := c.getJSON(path, &res); done || err != nil {
		return err
	}
	fmt.Fprintf(c.out, "references: %s\n", strings.Join(res.References, ", "))
	tw := c.table()
	fmt.Fprintln(tw, "VM\tPERSONALITY\tDISTANCE\tCOMMANDS")
	for _, v := range res.VMs {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%d\n", v.VM, v.Personality, v.Distance, v.Commands)
	}
	tw.Flush()
	mix := make([]string, 0, len(res.Mix))
	for name, n := range res.Mix {
		mix = append(mix, fmt.Sprintf("%s=%d", name, n))
	}
	sort.Strings(mix)
	fmt.Fprintf(c.out, "mix: %s\n", strings.Join(mix, " "))
	fmt.Fprintf(c.out, "%d classified, %d unclassified\n", len(res.VMs), res.Unclassified)
	return nil
}

// fmtComponents renders per-metric distance components sorted by name.
func fmtComponents(comp map[string]float64) string {
	keys := make([]string, 0, len(comp))
	for k := range comp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.3f", k, comp[k])
	}
	return strings.Join(parts, " ")
}

// --- events ---

func (c *ctl) cmdEvents(args []string) error {
	fs := c.newFlags("events")
	kind := fs.String("kind", "", "filter by event kind")
	host := fs.String("host", "", "filter by host")
	limit := fs.Int("limit", 0, "cap the number of events returned")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if *host != "" {
		q.Set("host", *host)
	}
	if *limit > 0 {
		q.Set("limit", fmt.Sprint(*limit))
	}
	path := "/fleet/events"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var res struct {
		Total  int64            `json:"total"`
		Events []fleetobs.Event `json:"events"`
	}
	if done, err := c.getJSON(path, &res); done || err != nil {
		return err
	}
	tw := c.table()
	fmt.Fprintln(tw, "SEQ\tTIME\tKIND\tSTAGE\tHOST\tCAUSE\tDURATION\tDETAIL")
	for _, e := range res.Events {
		dur := ""
		if e.DurationNanos > 0 {
			dur = time.Duration(e.DurationNanos).String()
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			e.Seq, fmtTime(e.UnixNano), e.Kind, e.Stage, e.Host, e.Cause, dur, e.Detail)
	}
	tw.Flush()
	fmt.Fprintf(c.out, "%d shown of %d recorded\n", len(res.Events), res.Total)
	return nil
}

// --- watch ---

// watchTick is the composed per-tick status; in -json mode watch emits one
// of these per line (NDJSON) rather than passing server bodies through.
type watchTick struct {
	UnixNano   int64   `json:"unix_nano"`
	Hosts      int     `json:"hosts"`
	StaleHosts int     `json:"stale_hosts"`
	Commands   int64   `json:"commands"`
	Errors     int64   `json:"errors"`
	RatePerSec float64 `json:"rate_per_sec"`
}

func (c *ctl) cmdWatch(args []string) error {
	fs := c.newFlags("watch")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "stop after this many ticks (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("watch: interval must be positive")
	}
	var prev int64
	var prevAt time.Time
	for i := 0; ; i++ {
		tick, err := c.watchOnce()
		if err != nil {
			return err
		}
		now := c.now()
		if !prevAt.IsZero() {
			if dt := now.Sub(prevAt).Seconds(); dt > 0 {
				tick.RatePerSec = float64(tick.Commands-prev) / dt
			}
		}
		tick.UnixNano = now.UnixNano()
		prev, prevAt = tick.Commands, now
		if c.json {
			b, err := json.Marshal(tick)
			if err != nil {
				return err
			}
			c.out.Write(b)
			fmt.Fprintln(c.out)
		} else {
			fmt.Fprintf(c.out, "%s  hosts=%d (%d stale)  commands=%d  errors=%d  rate=%.0f/s\n",
				now.Format("15:04:05"), tick.Hosts, tick.StaleHosts, tick.Commands, tick.Errors, tick.RatePerSec)
		}
		if *n > 0 && i+1 >= *n {
			return nil
		}
		c.sleep(*interval)
	}
}

// watchOnce polls host liveness and, when any host is fresh, the cluster
// merge. A fleet where every host has gone stale is a valid watch state,
// not an error — the tick just reports zero commands.
func (c *ctl) watchOnce() (watchTick, error) {
	var tick watchTick
	body, err := c.get("/fleet/hosts")
	if err != nil {
		return tick, err
	}
	var hosts []fleet.HostStatus
	if err := json.Unmarshal(body, &hosts); err != nil {
		return tick, err
	}
	tick.Hosts = len(hosts)
	for _, h := range hosts {
		if h.Stale {
			tick.StaleHosts++
		}
	}
	if tick.Hosts == tick.StaleHosts {
		return tick, nil
	}
	body, err = c.get("/fleet/snapshot")
	if err != nil {
		return tick, err
	}
	var s core.Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return tick, err
	}
	tick.Commands, tick.Errors = s.Commands, s.Errors
	return tick, nil
}

// --- formatting helpers ---

func meanOf(h *histogram.Snapshot) float64 {
	if h == nil || h.Total == 0 {
		return 0
	}
	return h.Mean()
}

func fmtAge(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(100 * time.Millisecond).String()
}

func fmtTime(unixNano int64) string {
	return time.Unix(0, unixNano).UTC().Format(time.RFC3339)
}

// windowTime resolves a -from/-to value: a Go duration ("-15m", "1h30m")
// becomes an absolute RFC3339 instant relative to now; anything else is
// passed through for the server to parse as RFC3339 or unix time.
func (c *ctl) windowTime(v string) string {
	if d, err := time.ParseDuration(v); err == nil {
		return c.now().Add(d).UTC().Format(time.RFC3339Nano)
	}
	return v
}

func fmtMicros(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(time.Microsecond).String()
}

// fmtBytes renders a byte count with a binary-prefix unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
