// Command vscsictl is the fleet operator's CLI — govc for the
// characterization control plane. Every subcommand is a thin client over
// the aggregator's /fleet HTTP API, rendered as aligned tables for humans
// or raw JSON (-json) for scripts:
//
//	vscsictl -server http://aggr:9108 hosts          # per-host liveness + tier
//	vscsictl shards                                  # per-shard ingest health
//	vscsictl shards -host esx-0001                   # where does a host route
//	vscsictl log                                     # segment-log counters
//	vscsictl vms                                     # merged per-VM views
//	vscsictl snapshot                                # cluster-wide merge
//	vscsictl snapshot -vm esx-0001-vm01              # one VM's merge
//	vscsictl history -from 2026-08-08T12:00:00Z -vms # windowed, off the log
//	vscsictl catalog                                 # §7 classification
//	vscsictl events -kind resync                     # pipeline event ring
//	vscsictl watch                                   # live status ticks
//
// -server defaults to $VSCSICTL_SERVER, then http://127.0.0.1:9108 — the
// vscsifleet aggregator's default listen address.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// ctl carries one invocation's context; commands are methods on it so
// tests can run them against an httptest server and capture the output.
type ctl struct {
	server string
	json   bool
	client *http.Client
	out    io.Writer
	errw   io.Writer
	// now and sleep are injectable for deterministic watch tests.
	now   func() time.Time
	sleep func(time.Duration)
}

var commands = []struct {
	name, help string
}{
	{"hosts", "list every known host with liveness and tier level"},
	{"shards", "per-shard ingest and merge-cache health (-host probes routing)"},
	{"vms", "list the merged per-VM views"},
	{"snapshot", "show the cluster-wide merge (or -vm NAME)"},
	{"history", "windowed merge over the segment log (-from, -to)"},
	{"catalog", "classify VMs against the reference catalog"},
	{"log", "segment-log persistence counters"},
	{"events", "dump the pipeline event ring"},
	{"watch", "poll fleet status until interrupted"},
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("vscsictl", flag.ContinueOnError)
	fs.SetOutput(errw)
	server := fs.String("server", defaultServer(), "aggregator base URL (env VSCSICTL_SERVER)")
	jsonOut := fs.Bool("json", false, "emit the server's raw JSON instead of tables")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: vscsictl [-server URL] [-json] <command> [flags]\n\ncommands:\n")
		for _, c := range commands {
			fmt.Fprintf(errw, "  %-10s %s\n", c.name, c.help)
		}
		fmt.Fprintf(errw, "\nglobal flags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	c := &ctl{
		server: strings.TrimRight(*server, "/"),
		json:   *jsonOut,
		client: &http.Client{Timeout: 30 * time.Second},
		out:    out,
		errw:   errw,
		now:    time.Now,
		sleep:  time.Sleep,
	}
	var err error
	switch cmd, cmdArgs := rest[0], rest[1:]; cmd {
	case "hosts":
		err = c.cmdHosts(cmdArgs)
	case "shards":
		err = c.cmdShards(cmdArgs)
	case "log":
		err = c.cmdLog(cmdArgs)
	case "vms":
		err = c.cmdVMs(cmdArgs)
	case "snapshot":
		err = c.cmdSnapshot(cmdArgs)
	case "history":
		err = c.cmdHistory(cmdArgs)
	case "catalog":
		err = c.cmdCatalog(cmdArgs)
	case "events":
		err = c.cmdEvents(cmdArgs)
	case "watch":
		err = c.cmdWatch(cmdArgs)
	default:
		fmt.Fprintf(errw, "vscsictl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(errw, "vscsictl: %v\n", err)
		return 1
	}
	return 0
}

func defaultServer() string {
	if s := os.Getenv("VSCSICTL_SERVER"); s != "" {
		return s
	}
	return "http://127.0.0.1:9108"
}

// get fetches server+path and returns the body. Non-200 responses carry
// JSON {"error": ...} bodies on every /fleet route; surface that message.
func (c *ctl) get(path string) ([]byte, error) {
	resp, err := c.client.Get(c.server + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, e.Error)
		}
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return body, nil
}

// getJSON fetches path, and either passes the raw body through (-json,
// returning done=true) or decodes it into v for table rendering.
func (c *ctl) getJSON(path string, v any) (done bool, err error) {
	body, err := c.get(path)
	if err != nil {
		return false, err
	}
	if c.json {
		c.out.Write(bytes.TrimRight(body, "\n"))
		fmt.Fprintln(c.out)
		return true, nil
	}
	return false, json.Unmarshal(body, v)
}
