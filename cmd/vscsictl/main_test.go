package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleet"
	"vscsistats/internal/fleetobs"
	"vscsistats/internal/vscsim"
)

// startFleet boots a fully-featured aggregator (segment log, event ring,
// reference catalog) and populates it by running a small simulated
// datacenter through the real push path.
func startFleet(t *testing.T) (*httptest.Server, *vscsim.Inventory) {
	t.Helper()
	cat, err := vscsim.ReferenceCatalog(1234)
	if err != nil {
		t.Fatal(err)
	}
	agg, _, err := fleet.OpenAggregator(fleet.AggregatorConfig{
		StaleAfter: time.Hour,
		DataDir:    t.TempDir(),
		Catalog:    cat,
		Obs:        fleetobs.New(fleetobs.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(agg)
	t.Cleanup(srv.Close)

	inv := vscsim.NewInventory(vscsim.Config{Seed: 42, Hosts: 4, VMsPerHost: 3, Intensity: 4})
	sim, err := vscsim.New(inv, vscsim.SimConfig{Push: srv.URL + "/fleet/push"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunVirtual(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sim.PushAll(); err != nil {
		t.Fatal(err)
	}
	return srv, inv
}

// runCtl invokes the CLI entry point with -server prepended.
func runCtl(srv *httptest.Server, args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(append([]string{"-server", srv.URL}, args...), &out, &errw)
	return code, out.String(), errw.String()
}

// mustRun fails the test unless the invocation exits 0.
func mustRun(t *testing.T, srv *httptest.Server, args ...string) string {
	t.Helper()
	code, out, errw := runCtl(srv, args...)
	if code != 0 {
		t.Fatalf("vscsictl %v exited %d: %s", args, code, errw)
	}
	return out
}

func TestVscsictl(t *testing.T) {
	srv, inv := startFleet(t)
	someVM := inv.Hosts[1].VMs[2].Name

	t.Run("hosts", func(t *testing.T) {
		out := mustRun(t, srv, "hosts")
		for _, want := range []string{"HOST", "LVL", "LEAVES", "esx-0001", "esx-0004", "push", "4 hosts (0 stale), 4 leaves folded"} {
			if !strings.Contains(out, want) {
				t.Errorf("hosts output missing %q:\n%s", want, out)
			}
		}
		var hosts []fleet.HostStatus
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "hosts")), &hosts); err != nil {
			t.Fatal(err)
		}
		if len(hosts) != 4 || hosts[0].Host != "esx-0001" || hosts[0].Snapshots == 0 {
			t.Fatalf("hosts -json: %+v", hosts)
		}
	})

	t.Run("shards", func(t *testing.T) {
		out := mustRun(t, srv, "shards")
		for _, want := range []string{"SHARD", "DELTAS", "CACHE-HITS", "16 shards: 4 hosts (0 stale)"} {
			if !strings.Contains(out, want) {
				t.Errorf("shards output missing %q:\n%s", want, out)
			}
		}
		var shards []fleet.ShardStatus
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "shards")), &shards); err != nil {
			t.Fatal(err)
		}
		hosts := 0
		for _, s := range shards {
			hosts += s.Hosts
		}
		if len(shards) != 16 || hosts != 4 {
			t.Fatalf("shards -json: %d shards, %d hosts", len(shards), hosts)
		}
		out = mustRun(t, srv, "shards", "-host", "esx-0001")
		if !strings.Contains(out, "esx-0001 routes to shard") {
			t.Errorf("shards -host output:\n%s", out)
		}
	})

	t.Run("log", func(t *testing.T) {
		out := mustRun(t, srv, "log")
		for _, want := range []string{"segments", "appends", "boot replay"} {
			if !strings.Contains(out, want) {
				t.Errorf("log output missing %q:\n%s", want, out)
			}
		}
		var st fleet.LogStats
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "log")), &st); err != nil {
			t.Fatal(err)
		}
		if !st.Enabled || st.Appends == 0 {
			t.Fatalf("log -json: %+v", st)
		}
	})

	t.Run("vms", func(t *testing.T) {
		out := mustRun(t, srv, "vms")
		for _, want := range []string{"VM", "COMMANDS", someVM, "12 VMs"} {
			if !strings.Contains(out, want) {
				t.Errorf("vms output missing %q:\n%s", want, out)
			}
		}
		var vms []*core.Snapshot
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "vms")), &vms); err != nil {
			t.Fatal(err)
		}
		if len(vms) != 12 {
			t.Fatalf("vms -json: got %d VMs", len(vms))
		}
	})

	t.Run("snapshot", func(t *testing.T) {
		out := mustRun(t, srv, "snapshot")
		for _, want := range []string{"cluster", "commands", "ioLength", "latency", "microseconds"} {
			if !strings.Contains(out, want) {
				t.Errorf("snapshot output missing %q:\n%s", want, out)
			}
		}
		out = mustRun(t, srv, "snapshot", "-vm", someVM)
		if !strings.Contains(out, someVM) {
			t.Errorf("snapshot -vm output missing %q:\n%s", someVM, out)
		}
		var s core.Snapshot
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "snapshot")), &s); err != nil {
			t.Fatal(err)
		}
		if s.VM != "cluster" || s.Commands == 0 {
			t.Fatalf("snapshot -json: VM=%q Commands=%d", s.VM, s.Commands)
		}
		code, _, errw := runCtl(srv, "snapshot", "-vm", "nope")
		if code != 1 || !strings.Contains(errw, "unknown vm") {
			t.Fatalf("unknown vm: exit %d, stderr %q", code, errw)
		}
	})

	t.Run("history", func(t *testing.T) {
		out := mustRun(t, srv, "history")
		if !strings.Contains(out, "window") || !strings.Contains(out, "cluster") {
			t.Errorf("history output:\n%s", out)
		}
		out = mustRun(t, srv, "history", "-vms")
		if !strings.Contains(out, someVM) {
			t.Errorf("history -vms missing %q:\n%s", someVM, out)
		}
		var res fleet.HistoryResult
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "history")), &res); err != nil {
			t.Fatal(err)
		}
		if res.Hosts != 4 || res.Cluster == nil || res.Cluster.Commands == 0 {
			t.Fatalf("history -json: hosts=%d cluster=%+v", res.Hosts, res.Cluster)
		}
		// Relative windows resolve client-side: -from -1h covers the whole
		// log, -to -1h precedes it entirely.
		out = mustRun(t, srv, "history", "-from", "-1h")
		if !strings.Contains(out, "cluster") {
			t.Errorf("history -from -1h output:\n%s", out)
		}
		out = mustRun(t, srv, "history", "-to", "-1h")
		if !strings.Contains(out, "no state changed") {
			t.Errorf("history -to -1h output:\n%s", out)
		}
	})

	t.Run("catalog", func(t *testing.T) {
		out := mustRun(t, srv, "catalog")
		for _, want := range []string{"references:", "PERSONALITY", "mix:", "unclassified"} {
			if !strings.Contains(out, want) {
				t.Errorf("catalog output missing %q:\n%s", want, out)
			}
		}
		out = mustRun(t, srv, "catalog", "-vm", someVM)
		if !strings.Contains(out, "RANK") || !strings.Contains(out, someVM) {
			t.Errorf("catalog -vm output:\n%s", out)
		}
		var res fleet.CatalogResult
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "catalog")), &res); err != nil {
			t.Fatal(err)
		}
		if len(res.References) == 0 || len(res.VMs)+res.Unclassified != 12 {
			t.Fatalf("catalog -json: %+v", res)
		}
	})

	t.Run("events", func(t *testing.T) {
		out := mustRun(t, srv, "events")
		if !strings.Contains(out, "KIND") || !strings.Contains(out, "shown of") {
			t.Errorf("events output:\n%s", out)
		}
		var res struct {
			Total  int64            `json:"total"`
			Events []fleetobs.Event `json:"events"`
		}
		if err := json.Unmarshal([]byte(mustRun(t, srv, "-json", "events", "-limit", "5")), &res); err != nil {
			t.Fatal(err)
		}
		if res.Total == 0 || len(res.Events) == 0 || len(res.Events) > 5 {
			t.Fatalf("events -json: total=%d shown=%d", res.Total, len(res.Events))
		}
	})

	t.Run("watch", func(t *testing.T) {
		out := mustRun(t, srv, "watch", "-n", "2", "-interval", "1ms")
		if n := strings.Count(out, "hosts=4 (0 stale)"); n != 2 {
			t.Errorf("watch printed %d status lines, want 2:\n%s", n, out)
		}
		out = mustRun(t, srv, "-json", "watch", "-n", "2", "-interval", "1ms")
		sc := bufio.NewScanner(strings.NewReader(out))
		lines := 0
		for sc.Scan() {
			var tick watchTick
			if err := json.Unmarshal(sc.Bytes(), &tick); err != nil {
				t.Fatalf("watch NDJSON line %q: %v", sc.Text(), err)
			}
			if tick.Hosts != 4 || tick.Commands == 0 {
				t.Errorf("watch tick: %+v", tick)
			}
			lines++
		}
		if lines != 2 {
			t.Errorf("watch -json emitted %d lines, want 2", lines)
		}
	})

	t.Run("env-default-server", func(t *testing.T) {
		t.Setenv("VSCSICTL_SERVER", srv.URL)
		var out, errw bytes.Buffer
		if code := run([]string{"hosts"}, &out, &errw); code != 0 {
			t.Fatalf("exit %d: %s", code, errw.String())
		}
		if !strings.Contains(out.String(), "4 hosts") {
			t.Errorf("env server output:\n%s", out.String())
		}
	})
}

func TestVscsictlUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	for _, c := range commands {
		if !strings.Contains(errw.String(), c.name) {
			t.Errorf("usage missing command %q:\n%s", c.name, errw.String())
		}
	}
	errw.Reset()
	if code := run([]string{"bogus"}, &out, &errw); code != 2 || !strings.Contains(errw.String(), "unknown command") {
		t.Fatalf("bogus command: exit %d, stderr %q", code, errw.String())
	}
	errw.Reset()
	if code := run([]string{"-server", "http://127.0.0.1:1", "hosts"}, &out, &errw); code != 1 {
		t.Fatalf("unreachable server: exit %d", code)
	}
}
