// Command vscsistats is the paper's "command line utility to enable and
// disable these stats", adapted to the simulated stack: it runs a named
// workload scenario with the online characterization service attached and
// prints the collected histograms.
//
// Usage:
//
//	vscsistats -list
//	vscsistats -workload oltp-zfs -duration 60 -metric seekDistance -class writes
//	vscsistats -workload dbt2 -duration 120 -csv -interval 6
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"vscsistats"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available workload scenarios and exit")
		name       = flag.String("workload", "iometer-4k-seq", "scenario to run (see -list)")
		duration   = flag.Int("duration", 30, "measured duration in virtual seconds")
		data       = flag.Int64("data", 1<<30, "primary dataset size in bytes")
		seed       = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		metric     = flag.String("metric", "", "print a single metric (ioLength, seekDistance, seekDistanceWindowed, outstandingIOs, latency, interarrival)")
		class      = flag.String("class", "all", "operation class: all, reads or writes")
		csv        = flag.Bool("csv", false, "emit CSV instead of ASCII charts")
		interval   = flag.Int("interval", 0, "also record per-interval histograms every N seconds")
		serve      = flag.String("serve", "", "after the run, serve the results over HTTP at this address (e.g. :8080)")
		withPprof  = flag.Bool("pprof", false, "with -serve, also mount Go profiling endpoints at /debug/pprof (off by default)")
		lifetrace  = flag.Int("lifetrace", 0, "attach a lifecycle tracer retaining the last N events; exported at /debug/trace with -serve")
		compare    = flag.String("compare", "", "second scenario to run and compare against -workload")
		categorize = flag.Bool("categorize", false, "classify -workload against short reference runs of every other scenario")
	)
	flag.Parse()

	if *list {
		fmt.Println("available scenarios:")
		for _, s := range vscsistats.Scenarios() {
			fmt.Println("  " + s)
		}
		return
	}

	sc, err := vscsistats.NewScenario(*name, vscsistats.ScenarioConfig{
		Seed: *seed, DataBytes: *data,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *compare != "" {
		if err := runCompare(sc, *compare, *duration, *data, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *categorize {
		if err := runCategorize(sc, *name, *duration, *data, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cl, err := parseClass(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var tracer *vscsistats.LifecycleTracer
	if *lifetrace > 0 {
		tracer = vscsistats.NewLifecycleTracer(*lifetrace)
		sc.VD.Disk.AddObserver(tracer)
	}

	var rec *vscsistats.IntervalRecorder
	if *interval > 0 {
		// The recorder needs an enabled collector; Run enables it after
		// warmup, so pre-enable here and accept warmup samples in S1.
		sc.VD.Collector.Enable()
		rec = vscsistats.NewIntervalRecorder(sc.Eng, sc.VD.Collector,
			vscsistats.Time(*interval)*vscsistats.Second)
	}

	snap := sc.Run(vscsistats.Time(*duration) * vscsistats.Second)
	if rec != nil {
		rec.Stop()
	}

	if *metric != "" {
		h := snap.Histogram(vscsistats.Metric(*metric), cl)
		if h == nil {
			fmt.Fprintf(os.Stderr, "unknown metric %q\n", *metric)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(h.CSV())
		} else {
			fmt.Print(h.Render(50))
		}
	} else {
		fmt.Println(snap.Summary())
		for _, m := range []vscsistats.Metric{
			vscsistats.MetricIOLength, vscsistats.MetricSeekDistance,
			vscsistats.MetricSeekWindowed, vscsistats.MetricOutstanding,
			vscsistats.MetricLatency, vscsistats.MetricInterarrival,
		} {
			h := snap.Histogram(m, cl)
			if *csv {
				fmt.Printf("# %s (%s)\n%s", m, cl, h.CSV())
			} else {
				fmt.Println(h.Render(50))
			}
		}
		fmt.Println(vscsistats.FingerprintOf(snap).Report())
	}

	if rec != nil && !*csv {
		fmt.Printf("\nlatency over time (%ds intervals):\n", *interval)
		fmt.Println(rec.Series(vscsistats.MetricLatency, cl).String())
	} else if rec != nil {
		fmt.Printf("# latency over time\n%s", rec.Series(vscsistats.MetricLatency, cl).CSV())
	}

	st := sc.Gen.Stats()
	dur := vscsistats.Time(*duration) * vscsistats.Second
	fmt.Fprintf(os.Stderr, "workload %s: %s (%.0f ops/s, %.1f MB/s)\n",
		sc.Name, st, st.Rate(dur), st.Throughput(dur)/(1<<20))

	if *serve != "" {
		reg := sc.Host.Registry()
		streamer := vscsistats.NewSnapshotStreamer(reg, 2*time.Second, 300)
		streamer.Start()
		defer streamer.Stop()
		opts := vscsistats.StatsOptions{
			Metrics: vscsistats.NewMetricsExporter(reg).WithDiskStats(sc.Host),
			Series:  streamer,
			Pprof:   *withPprof,
		}
		if tracer != nil {
			opts.Trace = tracer
			opts.OnControl = tracer.ControlVerb
		}
		fmt.Fprintf(os.Stderr, "serving stats on http://%s/disks (also /metrics, /watch", *serve)
		if tracer != nil {
			fmt.Fprint(os.Stderr, ", /debug/trace")
		}
		if *withPprof {
			fmt.Fprint(os.Stderr, ", /debug/pprof")
		}
		fmt.Fprintln(os.Stderr, ")")
		if err := http.ListenAndServe(*serve, vscsistats.NewStatsHandlerWith(reg, opts)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runCompare runs a second scenario and prints the two characterizations
// side by side with their distribution distances.
func runCompare(a *vscsistats.Scenario, otherName string, duration int, data, seed int64) error {
	b, err := vscsistats.NewScenario(otherName, vscsistats.ScenarioConfig{Seed: seed, DataBytes: data})
	if err != nil {
		return err
	}
	dur := vscsistats.Time(duration) * vscsistats.Second
	sa := a.Run(dur)
	sb := b.Run(dur)
	for _, m := range []vscsistats.Metric{
		vscsistats.MetricIOLength, vscsistats.MetricSeekDistance, vscsistats.MetricOutstanding,
	} {
		ha := sa.Histogram(m, vscsistats.All).Clone()
		hb := sb.Histogram(m, vscsistats.All).Clone()
		ha.Name, hb.Name = a.Name, b.Name
		fmt.Println(vscsistats.RenderHistogramComparison(string(m), ha, hb))
		fmt.Printf("distribution distance: %.3f\n\n", vscsistats.HistogramDistance(ha, hb))
	}
	fmt.Printf("%s: %s\n%s: %s\n", a.Name, vscsistats.FingerprintOf(sa), b.Name, vscsistats.FingerprintOf(sb))
	return nil
}

// runCategorize builds a reference catalog from brief runs of every other
// scenario and classifies the probe workload against it.
func runCategorize(probe *vscsistats.Scenario, probeName string, duration int, data, seed int64) error {
	catalog, err := vscsistats.NewWorkloadCatalog()
	if err != nil {
		return err
	}
	refDur := 10 * vscsistats.Second
	for _, name := range vscsistats.Scenarios() {
		if name == probeName {
			continue
		}
		ref, err := vscsistats.NewScenario(name, vscsistats.ScenarioConfig{
			Seed: seed + 1000, DataBytes: data,
		})
		if err != nil {
			return err
		}
		if err := catalog.Add(name, ref.Run(refDur)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "reference %s collected\n", name)
	}
	snap := probe.Run(vscsistats.Time(duration) * vscsistats.Second)
	report, err := catalog.Report(snap)
	if err != nil {
		return err
	}
	fmt.Printf("probe: %s\n%s", probeName, report)
	return nil
}

func parseClass(s string) (vscsistats.Class, error) {
	switch strings.ToLower(s) {
	case "all", "":
		return vscsistats.All, nil
	case "reads", "read":
		return vscsistats.Reads, nil
	case "writes", "write":
		return vscsistats.Writes, nil
	}
	return vscsistats.All, fmt.Errorf("unknown class %q (all, reads, writes)", s)
}
