// Command benchfastpath measures the observation fast path and maintains
// BENCH_fastpath.json, the committed before/after record for the striped
// histogram + bin LUT + batched observer work.
//
// It shells out to `go test -bench` for the suite's fast-path benchmarks —
// Table2StatsOn/Off and MultiVMParallel at the root, Insert/InsertParallel
// in internal/histogram (at -cpu 1,4), FleetMerge in internal/fleet —
// takes the minimum ns/op over -count runs (min-of-N discards scheduler
// noise; the floor is the honest cost), and prints a table.
//
//	go run ./cmd/benchfastpath                         # measure and print
//	go run ./cmd/benchfastpath -update -label current  # also record in the JSON
//	go run ./cmd/benchfastpath -check                  # CI regression fence
//
// -check re-measures BenchmarkTable2StatsOn only and fails (exit 1) if it
// regressed more than -tolerance percent over the entry named by -against,
// so CI catches fast-path regressions without re-running the full suite.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchFile is the on-disk shape of BENCH_fastpath.json.
type benchFile struct {
	Note    string       `json:"note"`
	Entries []benchEntry `json:"entries"`
}

// benchEntry is one labelled measurement set (e.g. "baseline", "current").
type benchEntry struct {
	Label      string             `json:"label"`
	Date       string             `json:"date,omitempty"`
	GoVersion  string             `json:"go,omitempty"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Count      int                `json:"count"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
}

// suite lists what to measure: package path, -bench regex, extra args.
var suite = []struct {
	pkg   string
	bench string
	extra []string
}{
	{".", "Table2Stats|MultiVMParallel", nil},
	{"./internal/histogram", "^BenchmarkInsert$|^BenchmarkInsertParallel$", []string{"-cpu", "1,4"}},
	{"./internal/fleet", "^BenchmarkFleetMerge$", nil},
}

func main() {
	var (
		file      = flag.String("file", "BENCH_fastpath.json", "benchmark record to read/update")
		label     = flag.String("label", "current", "entry label to record under with -update")
		update    = flag.Bool("update", false, "record the measurements into -file (replaces an entry with the same label)")
		count     = flag.Int("count", 5, "runs per benchmark; the minimum is kept")
		benchtime = flag.String("benchtime", "", "per-run -benchtime (default: go test's 1s)")
		check     = flag.Bool("check", false, "regression fence: re-measure Table2StatsOn and compare against -against")
		against   = flag.String("against", "baseline", "entry label -check compares against")
		tolerance = flag.Float64("tolerance", 25, "percent regression -check tolerates")
	)
	flag.Parse()

	if *check {
		os.Exit(runCheck(*file, *against, *count, *benchtime, *tolerance))
	}

	results := make(map[string]float64)
	for _, s := range suite {
		if err := runBench(s.pkg, s.bench, *count, *benchtime, s.extra, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	printTable(results)

	if !*update {
		return
	}
	entry := benchEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Count:      *count,
		NsPerOp:    results,
	}
	if err := record(*file, entry); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "recorded %q in %s\n", *label, *file)
}

// runBench executes one `go test -bench` invocation and folds min ns/op per
// benchmark name into results. Names keep go test's -N GOMAXPROCS suffix
// (absent at cpu=1), so "BenchmarkInsertParallel" and
// "BenchmarkInsertParallel-4" record separately.
func runBench(pkg, bench string, count int, benchtime string, extra []string, results map[string]float64) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, extra...)
	args = append(args, pkg)
	fmt.Fprintf(os.Stderr, "go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchfastpath: %s: %v\n%s", pkg, err, out.String())
	}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		name, ns, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := results[name]; !seen || ns < prev {
			results[name] = ns
		}
	}
	return sc.Err()
}

// parseBenchLine extracts (name, ns/op) from a `go test -bench` result line:
//
//	BenchmarkInsertParallel-4   43503771   25.17 ns/op
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	f := strings.Fields(line)
	for i := 2; i < len(f); i++ {
		if f[i] == "ns/op" {
			ns, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				return "", 0, false
			}
			return f[0], ns, true
		}
	}
	return "", 0, false
}

func printTable(results map[string]float64) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	// Stable order: suite order is lost in the map, lexical is fine here.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		fmt.Printf("%-34s %12.2f ns/op (min)\n", n, results[n])
	}
}

// record loads the JSON file (if any), replaces or appends the entry, and
// writes it back.
func record(path string, entry benchEntry) error {
	var f benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("benchfastpath: %s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if f.Note == "" {
		f.Note = "min-of-N ns/op for the observation fast path; maintained by cmd/benchfastpath"
	}
	replaced := false
	for i := range f.Entries {
		if f.Entries[i].Label == entry.Label {
			f.Entries[i] = entry
			replaced = true
		}
	}
	if !replaced {
		f.Entries = append(f.Entries, entry)
	}
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// runCheck is the CI fence: measure Table2StatsOn fresh, compare against
// the recorded entry, and report pass/fail.
func runCheck(path, against string, count int, benchtime string, tolerance float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfastpath: %v\n", err)
		return 1
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchfastpath: %s: %v\n", path, err)
		return 1
	}
	var ref float64
	for _, e := range f.Entries {
		if e.Label == against {
			ref = e.NsPerOp["BenchmarkTable2StatsOn"]
		}
	}
	if ref == 0 {
		fmt.Fprintf(os.Stderr, "benchfastpath: no BenchmarkTable2StatsOn under entry %q in %s\n", against, path)
		return 1
	}
	results := make(map[string]float64)
	if err := runBench(".", "^BenchmarkTable2StatsOn$", count, benchtime, nil, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	got, ok := results["BenchmarkTable2StatsOn"]
	if !ok {
		fmt.Fprintln(os.Stderr, "benchfastpath: benchmark produced no result")
		return 1
	}
	limit := ref * (1 + tolerance/100)
	fmt.Printf("Table2StatsOn: %.2f ns/op, %s %q: %.2f ns/op, limit +%.0f%%: %.2f ns/op\n",
		got, path, against, ref, tolerance, limit)
	if got > limit {
		fmt.Printf("FAIL: fast path regressed %.1f%% over %q\n", (got/ref-1)*100, against)
		return 1
	}
	fmt.Println("OK")
	return 0
}
