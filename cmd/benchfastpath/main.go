// Command benchfastpath measures the suite's performance-critical paths and
// maintains their committed before/after records:
//
//   - default: the observation fast path (BENCH_fastpath.json) — the striped
//     histogram + bin LUT + batched observer work. Table2StatsOn/Off and
//     MultiVMParallel at the root, Insert/InsertParallel in
//     internal/histogram (at -cpu 1,4), FleetMerge in internal/fleet, and
//     the 1M-record trace-replay engine (legacy vs streaming vs parallel,
//     the streaming ones at -cpu 1,4) in internal/trace.
//   - -fleet: the fleet tier (BENCH_fleet.json) — sharded ingest+scrape at
//     256/1024 simulated hosts against the monolithic single-mutex
//     configuration, full vs delta wire bytes per push interval, cached
//     vs uncached cluster merges, segment-log boot replay at 1024 hosts,
//     whole-fleet history window queries, simulated-datacenter ingest
//     (256 vscsim hosts' full state through the wire codec per op), and
//     the 10240-host federation tree vs flat fan-in (global-tier wire
//     bytes and churn-interval cost, tree re-export vs per-host push).
//
// It shells out to `go test -bench`, takes the minimum over -count runs
// (min-of-N discards scheduler noise; the floor is the honest cost), and
// prints a table. Secondary metrics a benchmark reports (wire_bytes/op)
// are captured alongside ns/op.
//
//	go run ./cmd/benchfastpath                         # measure and print
//	go run ./cmd/benchfastpath -fleet -update          # refresh BENCH_fleet.json
//	go run ./cmd/benchfastpath -check                  # CI regression fence
//	go run ./cmd/benchfastpath -check -fleet           # CI fence, fleet ingest
//
// -check re-measures the fence benchmarks only (BenchmarkTable2StatsOn
// and BenchmarkTraceReplay1M, or BenchmarkFleetIngest1024,
// BenchmarkFleetReplay1024 and BenchmarkFleetTreeIngest10k with -fleet)
// and fails (exit 1) if any regressed more than -tolerance percent over
// the entry named by -against, so CI catches regressions without
// re-running the full suite. Relative fences measure both sides fresh in
// the same session so machine speed cancels out: streaming trace replay
// must stay at or below half the legacy materialize-and-sort cost
// (maxPct -50, i.e. the >=2x speedup claim), and with -fleet the
// traced-ingest variant (BenchmarkFleetIngest1024Traced) must cost no
// more than 5% over the untraced fence.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// benchFile is the on-disk shape of BENCH_fastpath.json.
type benchFile struct {
	Note    string       `json:"note"`
	Entries []benchEntry `json:"entries"`
}

// benchEntry is one labelled measurement set (e.g. "baseline", "current").
type benchEntry struct {
	Label      string             `json:"label"`
	Date       string             `json:"date,omitempty"`
	GoVersion  string             `json:"go,omitempty"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Count      int                `json:"count"`
	NsPerOp    map[string]float64 `json:"ns_per_op"`
	// Metrics holds any secondary per-op metrics the benchmarks reported,
	// keyed "BenchmarkName:unit/op" (e.g. wire_bytes/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchSpec is one `go test -bench` invocation: package path, -bench regex,
// extra args.
type benchSpec struct {
	pkg   string
	bench string
	extra []string
}

// suite lists the observation fast-path benchmarks.
var suite = []benchSpec{
	{".", "Table2Stats|MultiVMParallel", nil},
	{"./internal/histogram", "^BenchmarkInsert$|^BenchmarkInsertParallel$", []string{"-cpu", "1,4"}},
	{"./internal/fleet", "^BenchmarkFleetMerge$", nil},
	{"./internal/trace", "^BenchmarkTraceReplay(Legacy1M|1MMerged)$", nil},
	{"./internal/trace", "^BenchmarkTraceReplay1M(Parallel)?$", []string{"-cpu", "1,4"}},
}

// fleetSuite lists the fleet-tier benchmarks -fleet runs. The Mono
// configurations reproduce the pre-shard single-mutex aggregator, so one
// entry holds both the "before" and "after" numbers.
var fleetSuite = []benchSpec{
	{"./internal/fleet", "^BenchmarkFleetIngestScrape(Mono|Sharded)(256|1024)$|^BenchmarkFleetIngest1024(Traced)?$", nil},
	{"./internal/fleet", "^BenchmarkFleetWireBytes(Full|Delta)$", nil},
	{"./internal/fleet", "^BenchmarkFleetMerge(Cached|Uncached)$", nil},
	{"./internal/fleet", "^BenchmarkFleetReplay1024$|^BenchmarkFleetHistoryQuery$", nil},
	{"./internal/vscsim", "^BenchmarkSimPushAll256$", nil},
	{"./internal/vscsim", "^BenchmarkFleet(Tree|Flat)Ingest10k$", nil},
}

func main() {
	var (
		file      = flag.String("file", "", "benchmark record to read/update (default BENCH_fastpath.json, or BENCH_fleet.json with -fleet)")
		label     = flag.String("label", "current", "entry label to record under with -update")
		update    = flag.Bool("update", false, "record the measurements into -file (replaces an entry with the same label)")
		count     = flag.Int("count", 5, "runs per benchmark; the minimum is kept")
		benchtime = flag.String("benchtime", "", "per-run -benchtime (default: go test's 1s)")
		fleet     = flag.Bool("fleet", false, "run the fleet-tier suite instead of the fast-path suite")
		check     = flag.Bool("check", false, "regression fence: re-measure the fence benchmark and compare against -against")
		against   = flag.String("against", "baseline", "entry label -check compares against")
		tolerance = flag.Float64("tolerance", 25, "percent regression -check tolerates")
	)
	flag.Parse()

	// Two fast-path fences: the observation hot path, and the streaming
	// trace-replay engine (absolute, against the recorded entry). Plus one
	// relative fence: streaming replay must stay at or below half the
	// legacy materialize-and-sort cost — a negative maxPct, meaning the
	// claimed >=2x single-core speedup is re-proven on every -check, with
	// both sides measured fresh so machine speed cancels out.
	benches := suite
	fences := []fence{
		{"BenchmarkTable2StatsOn", "."},
		{"BenchmarkTraceReplay1M", "./internal/trace"},
	}
	relFences := []relFence{{
		bench:   "BenchmarkTraceReplay1M",
		against: "BenchmarkTraceReplayLegacy1M",
		pkg:     "./internal/trace",
		maxPct:  -50,
	}}
	if *fleet {
		// Three fleet fences: the ingest fast path, the boot replay the
		// segment log added — a slow restart is a regression too — and the
		// 10k-host federation tree's churn interval. Plus one relative
		// fence: traced ingest must stay within 5% of untraced, both
		// measured fresh in this session.
		benches = fleetSuite
		fences = []fence{
			{"BenchmarkFleetIngest1024", "./internal/fleet"},
			{"BenchmarkFleetReplay1024", "./internal/fleet"},
			{"BenchmarkFleetTreeIngest10k", "./internal/vscsim"},
		}
		relFences = []relFence{{
			bench:   "BenchmarkFleetIngest1024Traced",
			against: "BenchmarkFleetIngest1024",
			pkg:     "./internal/fleet",
			maxPct:  5,
		}}
	}
	if *file == "" {
		*file = "BENCH_fastpath.json"
		if *fleet {
			*file = "BENCH_fleet.json"
		}
	}

	if *check {
		os.Exit(runCheck(*file, *against, fences, relFences, *count, *benchtime, *tolerance))
	}

	results := make(map[string]float64)
	for _, s := range benches {
		if err := runBench(s.pkg, s.bench, *count, *benchtime, s.extra, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	printTable(results)

	if !*update {
		return
	}
	ns, metrics := splitResults(results)
	entry := benchEntry{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Count:      *count,
		NsPerOp:    ns,
		Metrics:    metrics,
	}
	note := "min-of-N ns/op for the observation fast path; maintained by cmd/benchfastpath"
	if *fleet {
		note = "min-of-N fleet-tier numbers (Mono = pre-shard single-mutex aggregator; " +
			"measured on 1 CPU, so the sharded win is the merge cache, not parallel ingest); " +
			"maintained by cmd/benchfastpath -fleet"
	}
	if err := record(*file, note, entry); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "recorded %q in %s\n", *label, *file)
}

// runBench executes one `go test -bench` invocation and folds min ns/op per
// benchmark name into results. Names keep go test's -N GOMAXPROCS suffix
// (absent at cpu=1), so "BenchmarkInsertParallel" and
// "BenchmarkInsertParallel-4" record separately.
func runBench(pkg, bench string, count int, benchtime string, extra []string, results map[string]float64) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-count", strconv.Itoa(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, extra...)
	args = append(args, pkg)
	fmt.Fprintf(os.Stderr, "go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("benchfastpath: %s: %v\n%s", pkg, err, out.String())
	}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		for key, v := range parseBenchLine(sc.Text()) {
			if prev, seen := results[key]; !seen || v < prev {
				results[key] = v
			}
		}
	}
	return sc.Err()
}

// parseBenchLine extracts every per-op metric from a `go test -bench`
// result line:
//
//	BenchmarkFleetWireBytesFull   1226   970947 ns/op   3599 wire_bytes/op
//
// ns/op is keyed by the bare benchmark name (the historical shape of
// BENCH_fastpath.json); every other unit is keyed "name:unit/op".
func parseBenchLine(line string) map[string]float64 {
	if !strings.HasPrefix(line, "Benchmark") {
		return nil
	}
	f := strings.Fields(line)
	var out map[string]float64
	for i := 2; i < len(f); i++ {
		if !strings.HasSuffix(f[i], "/op") {
			continue
		}
		v, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			continue
		}
		key := f[0]
		if f[i] != "ns/op" {
			key = f[0] + ":" + f[i]
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[key] = v
	}
	return out
}

// splitResults separates bare-name ns/op entries from "name:unit/op"
// secondary metrics.
func splitResults(results map[string]float64) (ns, metrics map[string]float64) {
	ns = make(map[string]float64)
	for k, v := range results {
		if strings.Contains(k, ":") {
			if metrics == nil {
				metrics = make(map[string]float64)
			}
			metrics[k] = v
		} else {
			ns[k] = v
		}
	}
	return ns, metrics
}

func printTable(results map[string]float64) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	// Stable order: suite order is lost in the map, lexical is fine here.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		unit := "ns/op"
		name := n
		if i := strings.IndexByte(n, ':'); i >= 0 {
			name, unit = n[:i], n[i+1:]
		}
		fmt.Printf("%-40s %12.2f %s (min)\n", name, results[n], unit)
	}
}

// record loads the JSON file (if any), replaces or appends the entry, and
// writes it back.
func record(path, note string, entry benchEntry) error {
	var f benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("benchfastpath: %s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if f.Note == "" {
		f.Note = note
	}
	replaced := false
	for i := range f.Entries {
		if f.Entries[i].Label == entry.Label {
			f.Entries[i] = entry
			replaced = true
		}
	}
	if !replaced {
		f.Entries = append(f.Entries, entry)
	}
	raw, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// fence is one absolute regression fence: a benchmark name and the
// package it lives in. Fences span packages (the federation tree bench
// sits in internal/vscsim, the ingest fences in internal/fleet), so
// runCheck groups them by package and runs one `go test -bench` each.
type fence struct {
	name, pkg string
}

// relFence is a same-session comparison: bench must run within maxPct of
// against, both measured fresh in this runCheck — no recorded entry, so
// machine-speed differences cancel out. Used for the traced-ingest
// observability overhead bound. Both benchmarks must live in pkg.
type relFence struct {
	bench, against string
	pkg            string
	maxPct         float64
}

// runCheck is the CI fence: measure the fence benchmarks fresh (one
// `go test -bench` run per package), compare each against the recorded
// entry (and each relative fence against its in-session reference), and
// report pass/fail for the set.
func runCheck(path, against string, fences []fence, relFences []relFence, count int, benchtime string, tolerance float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfastpath: %v\n", err)
		return 1
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchfastpath: %s: %v\n", path, err)
		return 1
	}
	refs := make(map[string]float64, len(fences))
	for _, e := range f.Entries {
		if e.Label == against {
			for _, fc := range fences {
				refs[fc.name] = e.NsPerOp[fc.name]
			}
		}
	}
	for _, fc := range fences {
		if refs[fc.name] == 0 {
			fmt.Fprintf(os.Stderr, "benchfastpath: no %s under entry %q in %s\n", fc.name, against, path)
			return 1
		}
	}
	// One `go test -bench` per package, covering that package's fences
	// and relative-fence benchmarks together.
	perPkg := make(map[string][]string)
	pkgs := []string{}
	add := func(pkg, bench string) {
		if _, seen := perPkg[pkg]; !seen {
			pkgs = append(pkgs, pkg)
		}
		for _, have := range perPkg[pkg] {
			if have == bench {
				return
			}
		}
		perPkg[pkg] = append(perPkg[pkg], bench)
	}
	for _, fc := range fences {
		add(fc.pkg, fc.name)
	}
	for _, r := range relFences {
		add(r.pkg, r.bench)
		add(r.pkg, r.against)
	}
	results := make(map[string]float64)
	for _, pkg := range pkgs {
		if err := runBench(pkg, "^("+strings.Join(perPkg[pkg], "|")+")$", count, benchtime, nil, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	failed := 0
	for _, fc := range fences {
		got, ok := results[fc.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfastpath: %s produced no result\n", fc.name)
			return 1
		}
		ref := refs[fc.name]
		limit := ref * (1 + tolerance/100)
		fmt.Printf("%s: %.2f ns/op, %s %q: %.2f ns/op, limit %+.0f%%: %.2f ns/op\n",
			strings.TrimPrefix(fc.name, "Benchmark"), got, path, against, ref, tolerance, limit)
		if got > limit {
			fmt.Printf("FAIL: %s regressed %.1f%% over %q\n", strings.TrimPrefix(fc.name, "Benchmark"), (got/ref-1)*100, against)
			failed++
		}
	}
	for _, r := range relFences {
		got, ok := results[r.bench]
		base, okBase := results[r.against]
		if !ok || !okBase {
			fmt.Fprintf(os.Stderr, "benchfastpath: relative fence %s vs %s missing a result\n", r.bench, r.against)
			return 1
		}
		limit := base * (1 + r.maxPct/100)
		fmt.Printf("%s: %.2f ns/op, in-session %s: %.2f ns/op, limit %+.0f%%: %.2f ns/op\n",
			strings.TrimPrefix(r.bench, "Benchmark"), got,
			strings.TrimPrefix(r.against, "Benchmark"), base, r.maxPct, limit)
		if got > limit {
			fmt.Printf("FAIL: %s costs %.1f%% over %s\n",
				strings.TrimPrefix(r.bench, "Benchmark"), (got/base-1)*100,
				strings.TrimPrefix(r.against, "Benchmark"))
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	fmt.Println("OK")
	return 0
}
