// Command vscsitrace drives the virtual SCSI command tracing framework:
// capture a trace from a simulated workload, dump it, replay it into
// histograms, or run the offline analyses (exact statistics, sequential
// stream detection, seek-vs-latency correlation) that online histograms
// cannot provide (§3.6).
//
// Usage:
//
//	vscsitrace capture -workload dbt2 -duration 30 -o dbt2.vsct
//	vscsitrace dump -i dbt2.vsct | head
//	vscsitrace analyze -i dbt2.vsct
//	vscsitrace replay -i dbt2.vsct -metric seekDistance
package main

import (
	"flag"
	"fmt"
	"os"

	"vscsistats"
	"vscsistats/internal/analysis"
	"vscsistats/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "capture":
		err = capture(args)
	case "dump":
		err = dump(args)
	case "analyze":
		err = analyze(args)
	case "replay":
		err = replay(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vscsitrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vscsitrace <capture|dump|analyze|replay> [flags]
  capture -workload NAME -duration SECS -data BYTES -seed N -o FILE
  dump    -i FILE [-csv]
  analyze -i FILE
  replay  -i FILE [-metric NAME]`)
	os.Exit(2)
}

func capture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	name := fs.String("workload", "dbt2", "scenario to trace")
	duration := fs.Int("duration", 30, "virtual seconds to capture")
	data := fs.Int64("data", 1<<30, "dataset size in bytes")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "trace.vsct", "output trace file")
	fs.Parse(args)

	sc, err := vscsistats.NewScenario(*name, vscsistats.ScenarioConfig{
		Seed: *seed, DataBytes: *data, TraceCapacity: 4 << 20,
	})
	if err != nil {
		return err
	}
	sc.Run(vscsistats.Time(*duration) * vscsistats.Second)
	recs := sc.VD.Tracer.Records()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "captured %d commands from %s into %s\n", len(recs), *name, *out)
	return f.Close()
}

func load(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func dump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "trace.vsct", "input trace file")
	csv := fs.Bool("csv", false, "emit CSV")
	fs.Parse(args)
	recs, err := load(*in)
	if err != nil {
		return err
	}
	if *csv {
		return trace.WriteCSV(os.Stdout, recs)
	}
	for _, r := range recs {
		fmt.Println(r)
	}
	return nil
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("i", "trace.vsct", "input trace file")
	fs.Parse(args)
	recs, err := load(*in)
	if err != nil {
		return err
	}
	fmt.Println("== exact statistics ==")
	fmt.Print(analysis.Analyze(recs))
	fmt.Println("\n== sequential streams ==")
	fmt.Print(analysis.StreamSummary(recs, analysis.DefaultStreamConfig()))
	fmt.Println("\n== seek distance vs latency (2-D histogram, §3.6) ==")
	fmt.Print(analysis.SeekLatency(recs))
	b := analysis.BurstinessOf(recs, 1000)
	fmt.Println("\n== arrival process (1 ms windows) ==")
	fmt.Printf("windows=%d mean=%.1f peak=%.0f peak/mean=%.1f dispersion=%.2f",
		b.Windows, b.Mean, b.Peak, b.PeakToMean, b.IndexOfDisp)
	if b.HurstOK {
		fmt.Printf(" hurst=%.2f", b.Hurst)
	}
	fmt.Println()
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "trace.vsct", "input trace file")
	metric := fs.String("metric", "", "single metric to print")
	fs.Parse(args)
	recs, err := load(*in)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace is empty")
	}
	col := vscsistats.NewCollector(recs[0].VM, recs[0].Disk)
	col.Enable()
	vscsistats.Replay(recs, col)
	snap := col.Snapshot()
	if *metric != "" {
		h := snap.Histogram(vscsistats.Metric(*metric), vscsistats.All)
		if h == nil {
			return fmt.Errorf("unknown metric %q", *metric)
		}
		fmt.Print(h.Render(50))
		return nil
	}
	fmt.Println(snap.Summary())
	return nil
}
