// Command vscsitrace drives the virtual SCSI command tracing framework:
// capture a trace from a simulated workload, dump it, replay it into
// histograms, or run the offline analyses (exact statistics, sequential
// stream detection, seek-vs-latency correlation) that online histograms
// cannot provide (§3.6).
//
// Every file-reading subcommand autodetects the trace encoding: the
// native capture format, the streaming frame format, MSR Cambridge CSV
// and Alibaba cloud-trace CSV all work anywhere a trace is expected, so a
// downloaded public corpus replays directly:
//
//	vscsitrace capture -workload dbt2 -duration 30 -o dbt2.vsct
//	vscsitrace dump -i dbt2.vsct | head
//	vscsitrace analyze -i dbt2.vsct
//	vscsitrace replay -i web_0.csv -workers 4 -progress
//	vscsitrace replay -i dbt2.vsct -serve :8080
//	vscsitrace convert -i web_0.csv -o web_0.vsct
//	vscsitrace synth -seed 7 -n 1000000 -o synth.vsct
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"vscsistats"
	"vscsistats/internal/analysis"
	"vscsistats/internal/core"
	"vscsistats/internal/httpstats"
	"vscsistats/internal/trace"
	"vscsistats/internal/vscsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "capture":
		err = capture(args)
	case "dump":
		err = dump(args)
	case "analyze":
		err = analyze(args)
	case "replay":
		err = replay(args)
	case "convert":
		err = convert(args)
	case "synth":
		err = synth(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vscsitrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vscsitrace <capture|dump|analyze|replay|convert|synth> [flags]
  capture -workload NAME -duration SECS -data BYTES -seed N -o FILE
  dump    -i FILE [-format F] [-csv]
  analyze -i FILE [-format F]
  replay  -i FILE [-format F] [-workers N] [-batch N] [-merged] [-merge-window N]
          [-metric NAME] [-classify] [-serve ADDR] [-progress]
  convert -i FILE [-format F] -o FILE [-native]
  synth   -seed N -n COUNT -o FILE
formats: auto (default), native, stream, msr, alibaba; -i - reads stdin`)
	os.Exit(2)
}

func capture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	name := fs.String("workload", "dbt2", "scenario to trace")
	duration := fs.Int("duration", 30, "virtual seconds to capture")
	data := fs.Int64("data", 1<<30, "dataset size in bytes")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", "trace.vsct", "output trace file")
	fs.Parse(args)

	sc, err := vscsistats.NewScenario(*name, vscsistats.ScenarioConfig{
		Seed: *seed, DataBytes: *data, TraceCapacity: 4 << 20,
	})
	if err != nil {
		return err
	}
	sc.Run(vscsistats.Time(*duration) * vscsistats.Second)
	recs := sc.VD.Tracer.Records()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "captured %d commands from %s into %s\n", len(recs), *name, *out)
	return f.Close()
}

// openSource opens path (or stdin for "-") as a streaming record source,
// autodetecting the encoding unless format names one.
func openSource(path, format string) (trace.RecordSource, func() error, error) {
	f, err := trace.ParseFormat(format)
	if err != nil {
		return nil, nil, err
	}
	var r *os.File
	if path == "-" {
		r = os.Stdin
	} else {
		r, err = os.Open(path)
		if err != nil {
			return nil, nil, err
		}
	}
	src, _, err := trace.Open(r, f)
	if err != nil {
		r.Close()
		return nil, nil, err
	}
	return src, r.Close, nil
}

// load materializes a whole trace, for the offline analyses that need it.
func load(path, format string) ([]trace.Record, error) {
	src, closer, err := openSource(path, format)
	if err != nil {
		return nil, err
	}
	defer closer()
	return trace.ReadAll(src)
}

func dump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "trace.vsct", "input trace file")
	format := fs.String("format", "auto", "input format")
	csv := fs.Bool("csv", false, "emit CSV")
	fs.Parse(args)
	recs, err := load(*in, *format)
	if err != nil {
		return err
	}
	if *csv {
		return trace.WriteCSV(os.Stdout, recs)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, r := range recs {
		fmt.Fprintln(w, r)
	}
	return nil
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("i", "trace.vsct", "input trace file")
	format := fs.String("format", "auto", "input format")
	fs.Parse(args)
	recs, err := load(*in, *format)
	if err != nil {
		return err
	}
	fmt.Println("== exact statistics ==")
	fmt.Print(analysis.Analyze(recs))
	fmt.Println("\n== sequential streams ==")
	fmt.Print(analysis.StreamSummary(recs, analysis.DefaultStreamConfig()))
	fmt.Println("\n== seek distance vs latency (2-D histogram, §3.6) ==")
	fmt.Print(analysis.SeekLatency(recs))
	b := analysis.BurstinessOf(recs, 1000)
	fmt.Println("\n== arrival process (1 ms windows) ==")
	fmt.Printf("windows=%d mean=%.1f peak=%.0f peak/mean=%.1f dispersion=%.2f",
		b.Windows, b.Mean, b.Peak, b.PeakToMean, b.IndexOfDisp)
	if b.HurstOK {
		fmt.Printf(" hurst=%.2f", b.Hurst)
	}
	fmt.Println()
	return nil
}

// badLiner is implemented by the CSV sources: lines skipped as malformed.
type badLiner interface{ BadLines() uint64 }

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "trace.vsct", "input trace file")
	format := fs.String("format", "auto", "input format")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "replay worker goroutines")
	batch := fs.Int("batch", 0, "records per issue burst (0 = default)")
	merged := fs.Bool("merged", false, "replay all substreams into one collector in global issue order")
	mergeWindow := fs.Int("merge-window", 0, "issue-order merge lookahead (0 = default, -1 = off)")
	metric := fs.String("metric", "", "single metric to print")
	classify := fs.Bool("classify", false, "match each disk against the personality catalog")
	serve := fs.String("serve", "", "serve live histograms on ADDR during and after the replay")
	progress := fs.Bool("progress", false, "print a progress line to stderr")
	fs.Parse(args)

	src, closer, err := openSource(*in, *format)
	if err != nil {
		return err
	}
	defer closer()

	cfg := trace.ReplayConfig{
		Workers:     *workers,
		BatchSize:   *batch,
		MergeWindow: *mergeWindow,
	}
	if *progress {
		cfg.ProgressEvery = 1 << 18
		cfg.Progress = func(n uint64) { fmt.Fprintf(os.Stderr, "\rreplayed %d records...", n) }
	}
	reg := core.NewRegistry()
	if *serve != "" {
		h := httpstats.New(reg)
		go func() {
			if err := http.ListenAndServe(*serve, h); err != nil {
				fmt.Fprintln(os.Stderr, "vscsitrace: serve:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving live histograms on %s\n", *serve)
	}

	var stats trace.ReplayStats
	var snap *core.Snapshot
	var res *trace.ReplayResult
	start := time.Now()
	if *merged {
		col := core.NewCollector("*", "*")
		reg.Register(col)
		stats, err = trace.ReplayMerged(src, col, cfg)
		snap = col.Snapshot()
	} else {
		cfg.Registry = reg
		res, err = trace.ReplayParallel(src, cfg)
		stats, snap = res.Stats, res.Merged()
	}
	elapsed := time.Since(start)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	if stats.Records == 0 {
		return fmt.Errorf("trace is empty")
	}

	fmt.Printf("replayed %d records / %d disks in %v (%.0f records/s, %d bursts, workers=%d)\n",
		stats.Records, stats.Disks, elapsed.Round(time.Millisecond),
		float64(stats.Records)/elapsed.Seconds(), stats.Batches, cfg.Workers)
	if stats.OrderViolations > 0 {
		fmt.Printf("warning: %d records out of issue order (try -merge-window)\n", stats.OrderViolations)
	}
	if bl, ok := src.(badLiner); ok && bl.BadLines() > 0 {
		fmt.Printf("warning: %d malformed lines skipped\n", bl.BadLines())
	}

	switch {
	case *metric != "":
		h := snap.Histogram(core.Metric(*metric), core.All)
		if h == nil {
			return fmt.Errorf("unknown metric %q", *metric)
		}
		fmt.Print(h.Render(50))
	case *classify:
		if err := classifyReplay(res, snap); err != nil {
			return err
		}
	default:
		if res != nil && len(res.Collectors()) > 1 {
			printDiskTable(res)
		}
		fmt.Println(snap.Summary())
	}

	if *serve != "" {
		fmt.Fprintln(os.Stderr, "replay complete; still serving (interrupt to exit)")
		select {}
	}
	return nil
}

func printDiskTable(res *trace.ReplayResult) {
	cols := res.Collectors()
	sort.Slice(cols, func(i, j int) bool {
		if cols[i].VM() != cols[j].VM() {
			return cols[i].VM() < cols[j].VM()
		}
		return cols[i].Disk() < cols[j].Disk()
	})
	fmt.Printf("%-16s %-10s %10s %10s %10s %8s\n", "VM", "DISK", "COMMANDS", "READS", "WRITES", "ERRORS")
	for _, c := range cols {
		s := c.Snapshot()
		if s == nil {
			continue
		}
		fmt.Printf("%-16s %-10s %10d %10d %10d %8d\n", c.VM(), c.Disk(), s.Commands, s.NumReads, s.NumWrites, s.Errors)
	}
}

// classifyReplay matches each replayed disk (and the cluster rollup)
// against the fleet personality catalog (§7 automatic categorization).
func classifyReplay(res *trace.ReplayResult, merged *core.Snapshot) error {
	cat, err := vscsim.ReferenceCatalog(1)
	if err != nil {
		return err
	}
	if res != nil {
		for _, c := range res.Collectors() {
			s := c.Snapshot()
			if s == nil || s.Commands == 0 {
				continue
			}
			m, err := cat.Best(s)
			if err != nil {
				return err
			}
			fmt.Printf("%s/%s: %s (distance %.3f)\n", c.VM(), c.Disk(), m.Name, m.Score)
		}
	}
	m, err := cat.Best(merged)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %s (distance %.3f)\n", m.Name, m.Score)
	return nil
}

func convert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (any format)")
	format := fs.String("format", "auto", "input format")
	out := fs.String("o", "", "output trace file")
	native := fs.Bool("native", false, "write the at-rest native format (materializes the trace) instead of the streaming frame format")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -i and -o are required")
	}

	src, closer, err := openSource(*in, *format)
	if err != nil {
		return err
	}
	defer closer()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	var count uint64
	if *native {
		recs, err := trace.ReadAll(src)
		if err != nil {
			return err
		}
		if err := trace.Write(f, recs); err != nil {
			return err
		}
		count = uint64(len(recs))
	} else {
		sw := trace.NewStreamWriter(f)
		var rec trace.Record
		for {
			if err := src.Next(&rec); err != nil {
				if err == io.EOF {
					break
				}
				return err
			}
			if err := sw.Append(rec); err != nil {
				return err
			}
		}
		if err := sw.Close(); err != nil {
			return err
		}
		count = sw.Count()
	}
	if bl, ok := src.(badLiner); ok && bl.BadLines() > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d malformed lines\n", bl.BadLines())
	}
	fmt.Fprintf(os.Stderr, "converted %d records into %s\n", count, *out)
	return f.Close()
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "random seed")
	n := fs.Int("n", 1000000, "records to generate")
	out := fs.String("o", "synth.vsct", "output trace file")
	fs.Parse(args)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	recs := trace.Synthesize(*seed, *n)
	if err := trace.Write(f, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "synthesized %d records (seed %d) into %s\n", len(recs), *seed, *out)
	return f.Close()
}
