// Command experiments regenerates the paper's evaluation: every figure and
// table from §4 and §5, plus the ablations DESIGN.md calls out.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3 -duration 60 -data 2147483648
//	experiments -run fig6 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vscsistats/internal/report"
	"vscsistats/internal/simclock"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment: fig2 fig3 fig4 fig5 fig6 table2 cachesweep ablation all")
		duration = flag.Int("duration", 60, "measured duration in virtual seconds")
		data     = flag.Int64("data", 2<<30, "primary dataset size in bytes")
		seed     = flag.Int64("seed", 1, "random seed")
		csvDir   = flag.String("csv", "", "directory to write CSV series into")
	)
	flag.Parse()

	opts := report.Options{
		Duration:  simclock.Time(*duration) * simclock.Second,
		DataBytes: *data,
		Seed:      *seed,
	}

	var results []*report.Result
	emit := func(r *report.Result, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		results = append(results, r)
	}

	for _, id := range strings.Split(*run, ",") {
		switch id {
		case "fig2":
			emit(report.Fig2FilebenchUFS(opts))
		case "fig3":
			emit(report.Fig3FilebenchZFS(opts))
		case "fig4":
			emit(report.Fig4DBT2(opts))
		case "fig5":
			emit(report.Fig5FileCopy(opts))
		case "fig6":
			m, err := report.Fig6MultiVM(opts)
			if err != nil {
				emit(nil, err)
			}
			emit(m.Result, nil)
		case "table2":
			emit(report.Table2Overhead(opts))
		case "cachesweep":
			c, err := report.CacheSweep(opts)
			if err != nil {
				emit(nil, err)
			}
			emit(c.Result, nil)
		case "ablation":
			emit(report.AblationWindow(8, opts))
			emit(report.AblationZFSAggregation(opts))
			emit(report.AblationHistogramVsTrace(1_000_000), nil)
		case "all":
			rs, err := report.All(opts)
			if err != nil {
				emit(nil, err)
			}
			results = append(results, rs...)
			emit(report.AblationWindow(8, opts))
			emit(report.AblationZFSAggregation(opts))
			emit(report.AblationHistogramVsTrace(1_000_000), nil)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	for _, r := range results {
		fmt.Println(r)
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, r); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSVs(dir string, r *report.Result) error {
	for _, name := range r.CSVNames() {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", r.ID, name))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(r.CSVs[name]), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}
