package report

import (
	"strings"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/simclock"
)

// testOptions keeps experiment runs short enough for the unit-test suite
// while still producing statistically meaningful histograms.
func testOptions() Options {
	return Options{Duration: 12 * simclock.Second, DataBytes: 512 << 20, Seed: 1}
}

func TestFig2UFSShape(t *testing.T) {
	r, err := Fig2FilebenchUFS(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Charts) != 4 {
		t.Fatalf("charts: %d", len(r.Charts))
	}
	out := r.String()
	for _, want := range []string{"I/O Length Histogram", "Seek Distance Histogram (Writes)", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in fig2 output", want)
		}
	}
	if len(r.CSVNames()) != 4 {
		t.Errorf("CSVs: %v", r.CSVNames())
	}
}

func TestFig3ZFSShape(t *testing.T) {
	r, err := Fig3FilebenchZFS(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The headline claims must be in the notes with strong numbers; parse
	// the underlying CSVs instead of the prose for the assertion.
	io := r.CSVs["io_length"]
	if !strings.Contains(io, "131072,") {
		t.Fatalf("io_length CSV malformed:\n%s", io)
	}
	// The 131072 bin must dominate: compare against the 4096 bin.
	get := func(label string) int64 {
		for _, line := range strings.Split(io, "\n") {
			if strings.HasPrefix(line, label+",") {
				var v int64
				if _, err := sscan(line[len(label)+1:], &v); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				return v
			}
		}
		return -1
	}
	if get("131072") <= get("4096") {
		t.Errorf("record-sized I/O should dominate: 131072=%d vs 4096=%d", get("131072"), get("4096"))
	}
}

func sscan(s string, v *int64) (int, error) {
	var n int64
	var err error
	n, err = parseInt64(s)
	*v = n
	return 1, err
}

func parseInt64(s string) (int64, error) {
	var n int64
	for _, c := range strings.TrimSpace(s) {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

func TestFig4DBT2Shape(t *testing.T) {
	r, err := Fig4DBT2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Charts) != 4 {
		t.Fatalf("charts: %d", len(r.Charts))
	}
	if _, ok := r.CSVs["oio_over_time"]; !ok {
		t.Error("missing oio_over_time series")
	}
	out := r.String()
	if !strings.Contains(out, "8192") {
		t.Errorf("fig4 output:\n%s", out)
	}
}

func TestFig5FileCopyShape(t *testing.T) {
	r, err := Fig5FileCopy(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"Vista Enterprise", "XP Pro", "Latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
}

func TestFig6InterferenceDirection(t *testing.T) {
	m, err := Fig6MultiVM(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline shape: the sequential reader suffers far more
	// than the random reader, in both latency and IOps.
	seqX := m.SeqDualLatency / m.SeqSoloLatency
	randX := m.RandDualLatency / m.RandSoloLatency
	if seqX < 3 {
		t.Errorf("sequential latency increase x%.1f, want >= 3x (paper: 40x)", seqX)
	}
	if randX > seqX {
		t.Errorf("random increase x%.1f should be below sequential x%.1f", randX, seqX)
	}
	if randX < 1.05 {
		t.Errorf("random reader should degrade at least slightly, got x%.2f", randX)
	}
	seqLoss := 1 - m.SeqDualIOps/m.SeqSoloIOps
	randLoss := 1 - m.RandDualIOps/m.RandSoloIOps
	if seqLoss < 0.5 {
		t.Errorf("sequential IOps loss %.0f%%, want >= 50%% (paper: 90%%)", 100*seqLoss)
	}
	if randLoss >= seqLoss {
		t.Errorf("random loss %.0f%% should be below sequential loss %.0f%%",
			100*randLoss, 100*seqLoss)
	}
	if _, ok := m.CSVs["latency_over_time"]; !ok {
		t.Error("missing latency_over_time series")
	}
}

func TestCacheSweepMonotone(t *testing.T) {
	c, err := CacheSweep(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Weaker caches must interfere at least as much for the sequential
	// stream (§5.3's narrative order).
	sym, cached, off := c.SeqIncrease["symmetrix"], c.SeqIncrease["cx3-cached"], c.SeqIncrease["cx3-nocache"]
	if off < cached || off < sym {
		t.Errorf("cache-off x%.2f should be worst (symmetrix x%.2f, cached x%.2f)", off, sym, cached)
	}
	if sym > 2 {
		t.Errorf("huge cache should hide interference: symmetrix x%.2f", sym)
	}
}

func TestTable2OverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	r, err := Table2Overhead(Options{Duration: 10 * simclock.Second, DataBytes: 1 << 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	csv, ok := r.CSVs["table2"]
	if !ok || !strings.Contains(csv, "iops,") {
		t.Fatalf("table2 CSV:\n%s", csv)
	}
	// Virtual-time rows must be identical with the service on and off.
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n")[1:] {
		parts := strings.Split(line, ",")
		if parts[0] == "cpu_ns_per_cmd" {
			continue // wall clock: allowed to differ
		}
		if parts[1] != parts[2] {
			t.Errorf("virtual row %s differs: %s vs %s", parts[0], parts[1], parts[2])
		}
	}
}

func TestAblationWindow(t *testing.T) {
	r, err := AblationWindow(8, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	if !strings.Contains(out, "N=16") || !strings.Contains(out, "N=1 ") {
		t.Errorf("ablation output:\n%s", out)
	}
	// With 8 streams, N=16 must report near-full sequentiality and N=1
	// near-zero; assert via the CSVs.
	seqShare := func(name string) float64 {
		csv := r.CSVs[name]
		var zero, two, total int64
		for _, line := range strings.Split(csv, "\n") {
			parts := strings.Split(line, ",")
			if len(parts) != 2 {
				continue
			}
			v, _ := parseInt64(parts[1])
			total += v
			if parts[0] == "0" || parts[0] == "2" {
				zero += v
			}
		}
		_ = two
		if total == 0 {
			return 0
		}
		return float64(zero) / float64(total)
	}
	if got := seqShare("window_16"); got < 0.95 {
		t.Errorf("N=16 sequential share = %.2f", got)
	}
	if got := seqShare("window_1"); got > 0.2 {
		t.Errorf("N=1 sequential share = %.2f", got)
	}
}

func TestAblationSpace(t *testing.T) {
	r := AblationHistogramVsTrace(1_000_000)
	if !strings.Contains(r.String(), "ratio") {
		t.Errorf("output:\n%s", r)
	}
}

func TestFingerprintsDiffer(t *testing.T) {
	// Sanity: UFS-OLTP fingerprints random, and the experiment plumbing
	// exposes it in the notes.
	r, err := Fig2FilebenchUFS(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "fingerprint") && strings.Contains(n, string(core.PatternRandom)) {
			found = true
		}
	}
	if !found {
		t.Errorf("notes: %v", r.Notes)
	}
}

func TestAblationZFSAggregation(t *testing.T) {
	opts := testOptions()
	r, err := AblationZFSAggregation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CSVs) != 3 {
		t.Fatalf("CSVs: %v", r.CSVNames())
	}
	// Mean device write size must grow with the aggregation cap; assert
	// via the CSVs (upper-edge-weighted means are monotone enough).
	sum := func(name string) (weighted float64) {
		var total, weightedBytes int64
		for _, line := range strings.Split(r.CSVs[name], "\n") {
			parts := strings.Split(line, ",")
			if len(parts) != 2 {
				continue
			}
			c, _ := parseInt64(parts[1])
			edge, err := parseInt64(strings.TrimPrefix(parts[0], ">"))
			if err != nil || edge == 0 {
				continue
			}
			total += c
			weightedBytes += c * edge
		}
		if total == 0 {
			return 0
		}
		return float64(weightedBytes) / float64(total)
	}
	m64, m128, m256 := sum("agg_64k"), sum("agg_128k"), sum("agg_256k")
	if !(m64 < m128 && m128 <= m256) {
		t.Errorf("mean write size should grow with cap: %f %f %f", m64, m128, m256)
	}
}
