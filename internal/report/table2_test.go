package report

import (
	"math"
	"testing"
)

// TestFastPathCostSane: on a short fixed-length run, the computed overhead
// percentage is finite and non-negative, and the live self-telemetry
// agrees in order of magnitude with a sane per-command cost.
func TestFastPathCostSane(t *testing.T) {
	const iters = 200_000
	cost := MeasureFastPathCost(iters)

	if math.IsNaN(cost.OverheadPct) || math.IsInf(cost.OverheadPct, 0) {
		t.Fatalf("overhead%% not finite: %v", cost.OverheadPct)
	}
	if cost.OverheadPct < 0 {
		t.Errorf("overhead%% negative after clamp: %v", cost.OverheadPct)
	}
	if cost.OverheadNs < 0 {
		t.Errorf("overhead ns negative after clamp: %v", cost.OverheadNs)
	}
	if cost.PerCmdOffNs <= 0 || cost.PerCmdOnNs <= 0 {
		t.Errorf("per-command costs: off %v on %v, want > 0", cost.PerCmdOffNs, cost.PerCmdOnNs)
	}

	// Live self-telemetry from the enabled arm: issue+complete per command,
	// 1-in-64 of them timed, and a plausible mean (sub-10µs on any machine
	// this runs on; zero would mean the sampler never fired).
	if want := int64(2 * iters); cost.LiveObservations != want {
		t.Errorf("live observations = %d, want %d", cost.LiveObservations, want)
	}
	if want := int64(2 * iters / 64); cost.LiveSampled != want {
		t.Errorf("live sampled = %d, want %d", cost.LiveSampled, want)
	}
	if cost.LiveMeanObserveNs <= 0 || cost.LiveMeanObserveNs > 1e7 {
		t.Errorf("live mean observe = %v ns, want (0, 1e7)", cost.LiveMeanObserveNs)
	}
}
