package report

import (
	"fmt"
	"testing"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/hypervisor"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/vscsi"
	"vscsistats/internal/workload"
)

// Table2Overhead regenerates Table 2: the cost of the online histogram
// service, measured two ways.
//
// The throughput/latency rows come from the simulated Iometer 4 KB
// sequential read microbenchmark (§5.1) with the service disabled and
// enabled — in the simulator these are bit-identical by construction, the
// analogue of the paper's "negligible degradation ... well within the
// noise".
//
// The CPU rows are real wall-clock measurements of this implementation's
// fast path via testing.Benchmark: nanoseconds per command through the
// vSCSI issue+complete path with the collector detached-equivalent
// (disabled) versus enabled, exactly the per-I/O cost Table 2's "CPU
// Efficiency in UsedSec/IOps" captures.
func Table2Overhead(opts Options) (*Result, error) {
	r := newResult("table2", "Microbenchmark performance: online histogram service off vs on")

	// --- Simulated Iometer rows ---
	type row struct {
		iops, mbps, latencyUs float64
	}
	sim := func(enabled bool) (row, error) {
		eng := simclock.NewEngine()
		host := hypervisor.NewHost(eng)
		host.AddDatastore("sym", storage.SymmetrixConfig(opts.Seed))
		vd, err := host.CreateVM("iometer").AddDisk(hypervisor.DiskSpec{
			Name: "scsi0:0", Datastore: "sym", CapacitySectors: 6 << 21,
		})
		if err != nil {
			return row{}, err
		}
		if enabled {
			vd.Collector.Enable()
		}
		gen := workload.NewIometer(eng, vd.Disk, workload.FourKSeqRead(32))
		gen.Start()
		dur := opts.Duration / 2
		if dur < 10*simclock.Second {
			dur = 10 * simclock.Second
		}
		eng.RunUntil(dur)
		st := gen.Stats()
		return row{
			iops:      st.Rate(dur),
			mbps:      st.Throughput(dur) / (1 << 20),
			latencyUs: float64(st.MeanLatency().Micros()),
		}, nil
	}
	off, err := sim(false)
	if err != nil {
		return nil, err
	}
	on, err := sim(true)
	if err != nil {
		return nil, err
	}

	// --- Wall-clock fast-path rows ---
	cost := MeasureFastPathCost(0)
	perCmdOff := cost.PerCmdOffNs
	perCmdOn := cost.PerCmdOnNs
	overheadNs := cost.OverheadNs
	overheadPct := cost.OverheadPct

	// Collector memory: the histogram data structures are allocated only
	// when enabled (§5.2); their size is fixed by the bin layouts.
	memBytes := collectorMemoryBytes()

	r.notef("simulated Iometer 4KB sequential read, 32 OIO, Symmetrix preset")
	r.addChart("Table 2", fmt.Sprintf(
		"%-38s %12s %12s\n%-38s %12.0f %12.0f\n%-38s %12.1f %12.1f\n%-38s %12.0f %12.0f\n%-38s %12.1f %12.1f\n%-38s %12.1f %12.1f\n",
		"Online Histo Service", "Disabled", "Enabled",
		"IOps", off.iops, on.iops,
		"MBps", off.mbps, on.mbps,
		"Latency in microseconds", off.latencyUs, on.latencyUs,
		"CPU ns/command (wall clock)", perCmdOff, perCmdOn,
		"CPU overhead %", 0.0, overheadPct))
	r.notef("virtual-time results identical by construction: IOps %.0f vs %.0f, latency %.1f vs %.1f us",
		off.iops, on.iops, off.latencyUs, on.latencyUs)
	r.notef("wall-clock fast path: %.0f ns/cmd disabled vs %.0f ns/cmd enabled (+%.0f ns; %.1f%% of our ~%0.fns path)",
		perCmdOff, perCmdOn, overheadNs, overheadPct, perCmdOff)
	r.notef("context: the paper's testbed spends ~130 us of CPU per command end to end (Table 2: 106%% of one core at 8187 IOps); +%.0f ns against that budget is %.2f%% — 'well within the noise'",
		overheadNs, 100*overheadNs/130_000)
	r.notef("live self-telemetry cross-check: the enabled collector's sampled observe cost was %.0f ns/observation over %d observations (%d timed), i.e. ~%.0f ns/command for the issue+complete pair — same order as the offline +%.0f ns/command delta",
		cost.LiveMeanObserveNs, cost.LiveObservations, cost.LiveSampled, 2*cost.LiveMeanObserveNs, overheadNs)
	r.notef("collector memory when enabled: %d bytes (%d histograms; zero when disabled — structures are created on demand)",
		memBytes, 16)
	r.CSVs["table2"] = fmt.Sprintf("metric,disabled,enabled\niops,%.0f,%.0f\nmbps,%.2f,%.2f\nlatency_us,%.1f,%.1f\ncpu_ns_per_cmd,%.1f,%.1f\n",
		off.iops, on.iops, off.mbps, on.mbps, off.latencyUs, on.latencyUs, perCmdOff, perCmdOn)
	return r, nil
}

// FastPathCost holds Table 2's wall-clock CPU rows together with the live
// self-telemetry read from the enabled collector — the offline benchmark
// and the online metric measuring the same thing, side by side.
type FastPathCost struct {
	// PerCmdOffNs / PerCmdOnNs are nanoseconds per command through the
	// vSCSI issue+complete path with the collector disabled / enabled.
	PerCmdOffNs, PerCmdOnNs float64
	// RawOverheadNs is the measured difference; on short runs scheduler
	// noise can drive it below zero.
	RawOverheadNs float64
	// OverheadNs and OverheadPct are the reported overhead, clamped to be
	// non-negative (a negative measured overhead means "below noise").
	OverheadNs, OverheadPct float64
	// LiveMeanObserveNs is the enabled collector's own sampled estimate of
	// one fast-path observation (core.SelfSnapshot.MeanObserveNanos); a
	// command makes two observations, issue and complete.
	LiveMeanObserveNs float64
	// LiveObservations and LiveSampled are the self-telemetry counters
	// after the enabled run.
	LiveObservations, LiveSampled int64
}

// MeasureFastPathCost measures the wall-clock cost of the vSCSI fast path
// with the characterization service off and on. With iters <= 0 it uses
// testing.Benchmark (auto-scaled, ~1 s per arm); a positive iters runs a
// fixed-length manual timing loop instead, for quick unit-test runs.
func MeasureFastPathCost(iters int) FastPathCost {
	newBenchDisk := func(enabled bool) (*vscsi.Disk, *core.Collector) {
		eng := simclock.NewEngine()
		backend := vscsi.BackendFunc(func(q *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
			done(scsi.StatusGood, scsi.Sense{})
		})
		d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
			VM: "bench", Name: "d", CapacitySectors: 1 << 30,
		})
		col := core.NewCollector("bench", "d")
		d.AddObserver(col)
		if enabled {
			col.Enable()
		}
		return d, col
	}
	run := func(enabled bool) (nsPerCmd float64, col *core.Collector) {
		d, col := newBenchDisk(enabled)
		loop := func(n int) error {
			cmd := scsi.Read(0, 8)
			for i := 0; i < n; i++ {
				cmd.LBA = uint64(i) * 8 % (1 << 29)
				if _, err := d.Issue(cmd, nil); err != nil {
					return err
				}
			}
			return nil
		}
		if iters > 0 {
			start := time.Now()
			if err := loop(iters); err != nil {
				return 0, col
			}
			return float64(time.Since(start).Nanoseconds()) / float64(iters), col
		}
		res := testing.Benchmark(func(b *testing.B) {
			if err := loop(b.N); err != nil {
				b.Fatal(err)
			}
		})
		return float64(res.NsPerOp()), col
	}

	cost := FastPathCost{}
	cost.PerCmdOffNs, _ = run(false)
	var colOn *core.Collector
	cost.PerCmdOnNs, colOn = run(true)
	cost.RawOverheadNs = cost.PerCmdOnNs - cost.PerCmdOffNs
	cost.OverheadNs = cost.RawOverheadNs
	if cost.OverheadNs < 0 {
		cost.OverheadNs = 0
	}
	if cost.PerCmdOffNs > 0 {
		cost.OverheadPct = 100 * cost.OverheadNs / cost.PerCmdOffNs
	}
	if self := colOn.SelfStats(); self != nil {
		cost.LiveMeanObserveNs = self.MeanObserveNanos()
		cost.LiveObservations = self.Observations
		cost.LiveSampled = self.Sampled
	}
	return cost
}

// collectorMemoryBytes estimates the enabled collector's histogram memory
// from the bin layouts: 15 class-split histograms plus the windowed one,
// each bin an 8-byte counter, plus fixed per-histogram bookkeeping.
func collectorMemoryBytes() int {
	bins := 0
	// 3 classes x {length, seek, oio, latency, interarrival} + windowed.
	layout := []int{18, 18, 13, 11, 11}
	for _, b := range layout {
		bins += 3 * b
	}
	bins += 18                 // windowed seek
	const perHistOverhead = 96 // name/unit/edge slice headers, summary fields
	return bins*8 + 16*perHistOverhead
}
