package report

import (
	"fmt"

	"vscsistats/internal/core"
	"vscsistats/internal/fs"
	"vscsistats/internal/histogram"
	"vscsistats/internal/hypervisor"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/workload"
)

// filebenchRun executes the Filebench OLTP personality (§4.1) on the given
// filesystem factory and returns the collector snapshot.
func filebenchRun(opts Options, mkFS func(*simclock.Engine, *hypervisor.Vdisk) fs.FS) (*core.Snapshot, error) {
	eng := simclock.NewEngine()
	host := hypervisor.NewHost(eng)
	host.AddDatastore("sym", storage.SymmetrixConfig(opts.Seed))
	vm := host.CreateVM("solaris")
	vd, err := vm.AddDisk(hypervisor.DiskSpec{
		Name: "scsi0:0", Datastore: "sym",
		// Generous headroom for ZFS copy-on-write churn.
		CapacitySectors: uint64(4 * opts.DataBytes / 512),
	})
	if err != nil {
		return nil, err
	}
	fsys := mkFS(eng, vd)
	model := workload.OLTPModel(opts.DataBytes, opts.DataBytes/10)
	fb := workload.NewFilebench(eng, fsys, model, opts.Seed)
	if err := fb.Setup(); err != nil {
		return nil, err
	}
	fb.Start()
	// Warm up before enabling stats so the figures show steady state.
	warm := opts.Duration / 6
	eng.RunUntil(warm)
	vd.Collector.Enable()
	eng.RunUntil(warm + opts.Duration)
	fb.Stop()
	return vd.Collector.Snapshot(), nil
}

// Fig2FilebenchUFS regenerates Figure 2: Filebench OLTP on Solaris UFS —
// I/O length and the all/writes/reads seek-distance histograms.
func Fig2FilebenchUFS(opts Options) (*Result, error) {
	s, err := filebenchRun(opts, func(eng *simclock.Engine, vd *hypervisor.Vdisk) fs.FS {
		return fs.NewPlain(eng, vd.Disk, fs.UFSConfig())
	})
	if err != nil {
		return nil, err
	}
	r := newResult("fig2", "Filebench OLTP: Solaris on UFS")
	r.notef("%d commands (%d reads / %d writes, %.0f%% reads)",
		s.Commands, s.NumReads, s.NumWrites, 100*s.ReadFraction())
	r.notef("I/O sizes stay at application granularity: 4 KB and 8 KB bins hold %.0f%% of I/Os",
		100*(binFrac(s, core.MetricIOLength, core.All, "4096")+
			binFrac(s, core.MetricIOLength, core.All, "8192")+
			binFrac(s, core.MetricIOLength, core.All, "4095")+
			binFrac(s, core.MetricIOLength, core.All, "8191")))
	r.notef("workload is random: %.0f%% of seeks beyond 50000 sectors (spikes at graph edges)",
		100*farFraction(s, core.All))
	r.notef("fingerprint: %s", core.FingerprintOf(s))
	addFigure23Charts(r, s)
	return r, nil
}

// Fig3FilebenchZFS regenerates Figure 3: the same OLTP workload on ZFS.
func Fig3FilebenchZFS(opts Options) (*Result, error) {
	s, err := filebenchRun(opts, func(eng *simclock.Engine, vd *hypervisor.Vdisk) fs.FS {
		return fs.NewZFS(eng, vd.Disk, fs.DefaultZFSConfig())
	})
	if err != nil {
		return nil, err
	}
	r := newResult("fig3", "Filebench OLTP: Solaris on ZFS")
	r.notef("%d commands (%d reads / %d writes)", s.Commands, s.NumReads, s.NumWrites)
	r.notef("ZFS amplifies I/O: %.0f%% of all I/Os fall in the 80-128 KB bins (record-sized)",
		100*(binFrac(s, core.MetricIOLength, core.All, "81920")+
			binFrac(s, core.MetricIOLength, core.All, "131072")))
	r.notef("COW turns random application writes sequential: %.0f%% of write seeks in the 0/2 bins vs %.0f%% for reads",
		100*seqFraction2(s, core.Writes), 100*seqFraction2(s, core.Reads))
	r.notef("reads remain random: %.0f%% of read seeks beyond 50000 sectors", 100*farFraction(s, core.Reads))
	r.notef("fingerprint: %s", core.FingerprintOf(s))
	addFigure23Charts(r, s)
	return r, nil
}

func addFigure23Charts(r *Result, s *core.Snapshot) {
	r.addChart("(a) I/O Length Histogram", s.IOLength[core.All].Render(50))
	r.addChart("(b) Seek Distance Histogram", s.SeekDistance[core.All].Render(50))
	r.addChart("(c) Seek Distance Histogram (Writes)", s.SeekDistance[core.Writes].Render(50))
	r.addChart("(d) Seek Distance Histogram (Reads)", s.SeekDistance[core.Reads].Render(50))
	r.CSVs["io_length"] = s.IOLength[core.All].CSV()
	r.CSVs["seek"] = s.SeekDistance[core.All].CSV()
	r.CSVs["seek_writes"] = s.SeekDistance[core.Writes].CSV()
	r.CSVs["seek_reads"] = s.SeekDistance[core.Reads].CSV()
}

// Fig4DBT2 regenerates Figure 4: DBT-2/PostgreSQL on Linux ext3 — write
// seek distances, I/O lengths, outstanding I/Os by op class, and the
// outstanding-I/Os-over-time surface at 6-second intervals.
func Fig4DBT2(opts Options) (*Result, error) {
	eng := simclock.NewEngine()
	host := hypervisor.NewHost(eng)
	host.AddDatastore("sym", storage.SymmetrixConfig(opts.Seed))
	vm := host.CreateVM("ubuntu")
	vd, err := vm.AddDisk(hypervisor.DiskSpec{
		Name: "scsi0:0", Datastore: "sym",
		CapacitySectors: uint64(3 * opts.DataBytes / 512),
	})
	if err != nil {
		return nil, err
	}
	ext3 := fs.NewPlain(eng, vd.Disk, fs.Ext3Config())
	cfg := workload.DefaultDBT2Config()
	cfg.DatabaseBytes = opts.DataBytes
	cfg.WALBytes = opts.DataBytes / 8
	cfg.Seed = opts.Seed
	cfg.CheckpointInterval = 10 * simclock.Second
	d := workload.NewDBT2(eng, ext3, cfg)
	if err := d.Setup(); err != nil {
		return nil, err
	}
	d.Start()
	warm := opts.Duration / 6
	eng.RunUntil(warm)
	vd.Collector.Enable()
	rec := core.NewIntervalRecorder(eng, vd.Collector, 6*simclock.Second)
	eng.RunUntil(warm + opts.Duration)
	rec.Stop()
	d.Stop()
	s := vd.Collector.Snapshot()

	r := newResult("fig4", "DBT-2 (PostgreSQL) on Linux ext3")
	txns, _ := d.Transactions()
	r.notef("%d commands over %v; %d transactions committed", s.Commands, opts.Duration, txns)
	r.notef("almost exclusively 8 KB: %.0f%% of I/Os in the 8192 bin",
		100*binFrac(s, core.MetricIOLength, core.All, "8192"))
	near := nearFrac(s, core.Writes, 5000)
	r.notef("write seeks show bursts of locality: %.0f%% within 5000 sectors, rest random spikes",
		100*near)
	r.notef("outstanding I/Os: writes arrive ~%d deep (checkpointer), reads ~%.1f mean",
		s.Outstanding[core.Writes].Percentile(90), s.Outstanding[core.Reads].Mean())
	rates := rec.Rates()
	lo, hi := minMax(rates)
	if lo > 0 {
		r.notef("I/O rate varies %.0f%% across 6-second intervals (%d..%d cmds/interval)",
			100*float64(hi-lo)/float64(hi), lo, hi)
	}
	r.addChart("(a) Seek Distance Histogram (Writes)", s.SeekDistance[core.Writes].Render(50))
	r.addChart("(b) I/O Length Histogram", s.IOLength[core.All].Render(50))
	r.addChart("(c) Outstanding I/Os Histogram (Reads, Writes)",
		histogram.RenderCompare("Outstanding I/Os at arrival",
			renamed(s.Outstanding[core.Reads], "Reads"),
			renamed(s.Outstanding[core.Writes], "Writes")))
	series := rec.Series(core.MetricOutstanding, core.All)
	r.addChart("(d) Outstanding I/Os Histogram over Time", series.Heatmap()+"\n"+series.String())
	r.CSVs["seek_writes"] = s.SeekDistance[core.Writes].CSV()
	r.CSVs["io_length"] = s.IOLength[core.All].CSV()
	r.CSVs["oio"] = histogram.CompareCSV(
		renamed(s.Outstanding[core.Reads], "Reads"),
		renamed(s.Outstanding[core.Writes], "Writes"))
	r.CSVs["oio_over_time"] = series.CSV()
	return r, nil
}

// Fig5FileCopy regenerates Figure 5: large file copy on Windows XP (64 KB
// engine) versus Vista (1 MB engine) — latency, length and seek histograms
// overlaid.
func Fig5FileCopy(opts Options) (*Result, error) {
	run := func(pcfg fs.PlainConfig, ccfg workload.FileCopyConfig) (*core.Snapshot, error) {
		eng := simclock.NewEngine()
		host := hypervisor.NewHost(eng)
		host.AddDatastore("sym", storage.SymmetrixConfig(opts.Seed))
		vm := host.CreateVM("windows")
		vd, err := vm.AddDisk(hypervisor.DiskSpec{
			Name: "scsi0:0", Datastore: "sym",
			CapacitySectors: uint64(4 * ccfg.FileBytes / 512),
		})
		if err != nil {
			return nil, err
		}
		ntfs := fs.NewPlain(eng, vd.Disk, pcfg)
		fc := workload.NewFileCopy(eng, ntfs, ccfg)
		if err := fc.Setup(); err != nil {
			return nil, err
		}
		vd.Collector.Enable()
		fc.Start()
		// "Large File Copy: 10 sec duration" — a fixed observation window.
		eng.RunUntil(10 * simclock.Second)
		fc.Stop()
		return vd.Collector.Snapshot(), nil
	}
	fileBytes := opts.DataBytes / 4
	xp, err := run(fs.NTFSXPConfig(), workload.XPCopyConfig(fileBytes))
	if err != nil {
		return nil, err
	}
	vista, err := run(fs.NTFSVistaConfig(), workload.VistaCopyConfig(fileBytes))
	if err != nil {
		return nil, err
	}
	r := newResult("fig5", "Large File Copy: Windows XP vs Vista (10 s)")
	r.notef("XP issued %d commands, Vista %d — larger I/Os mean fewer commands",
		xp.Commands, vista.Commands)
	r.notef("dominant size: XP %.0f%% at 64 KB; Vista %.0f%% at 1 MB",
		100*binFrac(xp, core.MetricIOLength, core.All, "65536"),
		100*binFrac(vista, core.MetricIOLength, core.All, ">524288"))
	r.notef("latency follows size: XP mean %.0f us, Vista mean %.0f us",
		xp.Latency[core.All].Mean(), vista.Latency[core.All].Mean())
	r.notef("seeking: XP performed %.0f far seeks (>50000 sectors) vs Vista's %.0f — larger I/Os mean far fewer head movements for the same data",
		farFraction(xp, core.All)*float64(xp.SeekDistance[core.All].Total),
		farFraction(vista, core.All)*float64(vista.SeekDistance[core.All].Total))
	r.addChart("(a) I/O Latency Histogram", histogram.RenderCompare("Latency (us)",
		renamed(vista.Latency[core.All], "Vista Enterprise"),
		renamed(xp.Latency[core.All], "XP Pro")))
	r.addChart("(b) I/O Length Histogram", histogram.RenderCompare("Length (bytes)",
		renamed(vista.IOLength[core.All], "Vista Enterprise"),
		renamed(xp.IOLength[core.All], "XP Pro")))
	r.addChart("(c) Seek Distance Histogram", histogram.RenderCompare("Distance (sectors)",
		renamed(vista.SeekDistance[core.All], "Vista Enterprise"),
		renamed(xp.SeekDistance[core.All], "XP Pro")))
	r.CSVs["latency"] = histogram.CompareCSV(
		renamed(vista.Latency[core.All], "Vista Enterprise"),
		renamed(xp.Latency[core.All], "XP Pro"))
	r.CSVs["io_length"] = histogram.CompareCSV(
		renamed(vista.IOLength[core.All], "Vista Enterprise"),
		renamed(xp.IOLength[core.All], "XP Pro"))
	r.CSVs["seek"] = histogram.CompareCSV(
		renamed(vista.SeekDistance[core.All], "Vista Enterprise"),
		renamed(xp.SeekDistance[core.All], "XP Pro"))
	return r, nil
}

// MultiVMResult carries Figure 6's headline interference numbers alongside
// the rendered result.
type MultiVMResult struct {
	*Result
	// Latency means in µs and IOps for each phase.
	RandSoloLatency, RandDualLatency float64
	SeqSoloLatency, SeqDualLatency   float64
	RandSoloIOps, RandDualIOps       float64
	SeqSoloIOps, SeqDualIOps         float64
}

// Fig6MultiVM regenerates Figure 6: an 8 KB random reader and an 8 KB
// sequential reader on separate virtual disks of the same cache-disabled
// CX3 array, solo and together, plus the sequential reader's latency
// histogram over time as the random workload switches on mid-run.
func Fig6MultiVM(opts Options) (*MultiVMResult, error) {
	type phase struct {
		rand, seq bool
	}
	const diskSectors = 6 << 21 // 6 GB virtual disks, as in §5.3

	runPhase := func(p phase, dur simclock.Time) (randS, seqS *core.Snapshot, err error) {
		eng := simclock.NewEngine()
		host := hypervisor.NewHost(eng)
		host.AddDatastore("cx3", storage.CX3NoCacheConfig(opts.Seed))
		vmR := host.CreateVM("rand-vm")
		vmS := host.CreateVM("seq-vm")
		vdR, err := vmR.AddDisk(hypervisor.DiskSpec{Name: "scsi0:0", Datastore: "cx3", CapacitySectors: diskSectors})
		if err != nil {
			return nil, nil, err
		}
		vdS, err := vmS.AddDisk(hypervisor.DiskSpec{Name: "scsi0:0", Datastore: "cx3", CapacitySectors: diskSectors})
		if err != nil {
			return nil, nil, err
		}
		vdR.Collector.Enable()
		vdS.Collector.Enable()
		if p.rand {
			workload.NewIometer(eng, vdR.Disk, workload.EightKRandomRead()).Start()
		}
		if p.seq {
			workload.NewIometer(eng, vdS.Disk, workload.EightKSeqRead()).Start()
		}
		eng.RunUntil(dur)
		return vdR.Collector.Snapshot(), vdS.Collector.Snapshot(), nil
	}

	dur := opts.Duration / 2
	if dur < 10*simclock.Second {
		dur = 10 * simclock.Second
	}
	randSolo, _, err := runPhase(phase{rand: true}, dur)
	if err != nil {
		return nil, err
	}
	_, seqSolo, err := runPhase(phase{seq: true}, dur)
	if err != nil {
		return nil, err
	}
	randDual, seqDual, err := runPhase(phase{rand: true, seq: true}, dur)
	if err != nil {
		return nil, err
	}

	m := &MultiVMResult{Result: newResult("fig6", "Multi-VM interference on CX3 with read cache off")}
	secs := dur.Seconds()
	m.RandSoloLatency = randSolo.Latency[core.All].Mean()
	m.RandDualLatency = randDual.Latency[core.All].Mean()
	m.SeqSoloLatency = seqSolo.Latency[core.All].Mean()
	m.SeqDualLatency = seqDual.Latency[core.All].Mean()
	m.RandSoloIOps = float64(randSolo.Commands) / secs
	m.RandDualIOps = float64(randDual.Commands) / secs
	m.SeqSoloIOps = float64(seqSolo.Commands) / secs
	m.SeqDualIOps = float64(seqDual.Commands) / secs
	m.notef("8K sequential reader: latency %.0f -> %.0f us (%.1fx), IOps %.0f -> %.0f (%.0f%% loss)",
		m.SeqSoloLatency, m.SeqDualLatency, ratio(m.SeqDualLatency, m.SeqSoloLatency),
		m.SeqSoloIOps, m.SeqDualIOps, 100*(1-m.SeqDualIOps/m.SeqSoloIOps))
	m.notef("8K random reader:     latency %.0f -> %.0f us (%.1fx), IOps %.0f -> %.0f (%.0f%% loss)",
		m.RandSoloLatency, m.RandDualLatency, ratio(m.RandDualLatency, m.RandSoloLatency),
		m.RandSoloIOps, m.RandDualIOps, 100*(1-m.RandDualIOps/m.RandSoloIOps))
	m.notef("the sequential workload suffers far more: its device-dependent characteristics changed, its device-independent ones did not (§3.7)")
	m.addChart("(a) I/O Latency Histogram (8K Random Reader)",
		histogram.RenderCompare("Latency (us)",
			renamed(randSolo.Latency[core.All], "Solo VM"),
			renamed(randDual.Latency[core.All], "Dual VM")))
	m.addChart("(b) I/O Latency Histogram (8K Sequential Reader)",
		histogram.RenderCompare("Latency (us)",
			renamed(seqSolo.Latency[core.All], "Solo VM"),
			renamed(seqDual.Latency[core.All], "Dual VM")))
	m.CSVs["latency_random"] = histogram.CompareCSV(
		renamed(randSolo.Latency[core.All], "Solo VM"),
		renamed(randDual.Latency[core.All], "Dual VM"))
	m.CSVs["latency_sequential"] = histogram.CompareCSV(
		renamed(seqSolo.Latency[core.All], "Solo VM"),
		renamed(seqDual.Latency[core.All], "Dual VM"))

	// (c) latency histogram over time: the random VM runs only during the
	// middle third of the sequential VM's run.
	eng := simclock.NewEngine()
	host := hypervisor.NewHost(eng)
	host.AddDatastore("cx3", storage.CX3NoCacheConfig(opts.Seed))
	vmR := host.CreateVM("rand-vm")
	vmS := host.CreateVM("seq-vm")
	vdR, _ := vmR.AddDisk(hypervisor.DiskSpec{Name: "scsi0:0", Datastore: "cx3", CapacitySectors: diskSectors})
	vdS, _ := vmS.AddDisk(hypervisor.DiskSpec{Name: "scsi0:0", Datastore: "cx3", CapacitySectors: diskSectors})
	vdS.Collector.Enable()
	seqGen := workload.NewIometer(eng, vdS.Disk, workload.EightKSeqRead())
	randGen := workload.NewIometer(eng, vdR.Disk, workload.EightKRandomRead())
	seqGen.Start()
	total := 3 * dur
	rec := core.NewIntervalRecorder(eng, vdS.Collector, total/20)
	eng.At(total/3, func(simclock.Time) { randGen.Start() })
	eng.At(2*total/3, func(simclock.Time) { randGen.Stop() })
	eng.RunUntil(total)
	rec.Stop()
	series := rec.Series(core.MetricLatency, core.All)
	m.addChart("(c) I/O Latency Histogram over Time (8K Sequential Reader)", series.Heatmap()+"\n"+series.String())
	m.CSVs["latency_over_time"] = series.CSV()
	_ = vdR
	return m, nil
}

// CacheSweepResult holds §5.3's intermediate results: the same dual-VM
// experiment on progressively weaker caches.
type CacheSweepResult struct {
	*Result
	// SeqIncrease and RandIncrease are dual/solo latency ratios per array.
	SeqIncrease  map[string]float64
	RandIncrease map[string]float64
}

// CacheSweep reruns the Figure 6 workloads on the Symmetrix (huge cache),
// the CX3 with its 2.5 GB cache, and the CX3 with cache off, reproducing
// §5.3's narrative: no visible change, moderate degradation (+44% / +17%),
// extreme worst case.
func CacheSweep(opts Options) (*CacheSweepResult, error) {
	arrays := []struct {
		name string
		cfg  storage.ArrayConfig
	}{
		{"symmetrix", storage.SymmetrixConfig(opts.Seed)},
		{"cx3-cached", storage.CX3Config(opts.Seed)},
		{"cx3-nocache", storage.CX3NoCacheConfig(opts.Seed)},
	}
	out := &CacheSweepResult{
		Result:       newResult("cachesweep", "Multi-VM interference vs array cache (§5.3)"),
		SeqIncrease:  map[string]float64{},
		RandIncrease: map[string]float64{},
	}
	dur := opts.Duration / 2
	if dur < 10*simclock.Second {
		dur = 10 * simclock.Second
	}
	const diskSectors = 6 << 21
	for _, arr := range arrays {
		run := func(rand, seq bool) (float64, float64) {
			eng := simclock.NewEngine()
			host := hypervisor.NewHost(eng)
			host.AddDatastore("a", arr.cfg)
			vdR, _ := host.CreateVM("r").AddDisk(hypervisor.DiskSpec{Name: "d", Datastore: "a", CapacitySectors: diskSectors})
			vdS, _ := host.CreateVM("s").AddDisk(hypervisor.DiskSpec{Name: "d", Datastore: "a", CapacitySectors: diskSectors})
			vdR.Collector.Enable()
			vdS.Collector.Enable()
			if rand {
				workload.NewIometer(eng, vdR.Disk, workload.EightKRandomRead()).Start()
			}
			if seq {
				workload.NewIometer(eng, vdS.Disk, workload.EightKSeqRead()).Start()
			}
			eng.RunUntil(dur)
			return vdR.Collector.Snapshot().Latency[core.All].Mean(),
				vdS.Collector.Snapshot().Latency[core.All].Mean()
		}
		randSolo, _ := run(true, false)
		_, seqSolo := run(false, true)
		randDual, seqDual := run(true, true)
		out.SeqIncrease[arr.name] = ratio(seqDual, seqSolo)
		out.RandIncrease[arr.name] = ratio(randDual, randSolo)
		out.notef("%-12s sequential latency x%.2f, random latency x%.2f when colocated",
			arr.name, out.SeqIncrease[arr.name], out.RandIncrease[arr.name])
	}
	return out, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func minMax(v []int64) (lo, hi int64) {
	for i, x := range v {
		if i == 0 || x < lo {
			lo = x
		}
		if i == 0 || x > hi {
			hi = x
		}
	}
	return lo, hi
}

func binFrac(s *core.Snapshot, m core.Metric, cl core.Class, label string) float64 {
	h := s.Histogram(m, cl)
	if h == nil || h.Total == 0 {
		return 0
	}
	for i := range h.Counts {
		if h.BinLabel(i) == label {
			return float64(h.Counts[i]) / float64(h.Total)
		}
	}
	return 0
}

// seqFraction2 counts the 0/2 bins of the class's seek histogram.
func seqFraction2(s *core.Snapshot, cl core.Class) float64 {
	h := s.SeekDistance[cl]
	if h.Total == 0 {
		return 0
	}
	var n int64
	for i := range h.Counts {
		if l := h.BinLabel(i); l == "0" || l == "2" || l == "6" || l == "16" {
			n += h.Counts[i]
		}
	}
	return float64(n) / float64(h.Total)
}

// nearFrac is the share of the class's seeks within +-sectors.
func nearFrac(s *core.Snapshot, cl core.Class, sectors int64) float64 {
	h := s.SeekDistance[cl]
	if h.Total == 0 {
		return 0
	}
	var n int64
	for i := range h.Counts {
		lo, hi := h.BinRange(i)
		if lo >= -sectors-1 && hi <= sectors {
			n += h.Counts[i]
		}
	}
	return float64(n) / float64(h.Total)
}

// renamed clones a snapshot under a display name for comparison charts.
func renamed(s *histogram.Snapshot, name string) *histogram.Snapshot {
	c := s.Clone()
	c.Name = name
	return c
}

// All runs every experiment at the given options, in paper order.
func All(opts Options) ([]*Result, error) {
	var out []*Result
	steps := []func() (*Result, error){
		func() (*Result, error) { return Fig2FilebenchUFS(opts) },
		func() (*Result, error) { return Fig3FilebenchZFS(opts) },
		func() (*Result, error) { return Fig4DBT2(opts) },
		func() (*Result, error) { return Fig5FileCopy(opts) },
		func() (*Result, error) {
			m, err := Fig6MultiVM(opts)
			if err != nil {
				return nil, err
			}
			return m.Result, nil
		},
		func() (*Result, error) { return Table2Overhead(opts) },
		func() (*Result, error) {
			c, err := CacheSweep(opts)
			if err != nil {
				return nil, err
			}
			return c.Result, nil
		},
	}
	for _, step := range steps {
		r, err := step()
		if err != nil {
			return out, fmt.Errorf("report: %w", err)
		}
		out = append(out, r)
	}
	return out, nil
}
