// Package report contains the experiment harness that regenerates every
// table and figure in the paper's evaluation (§4–§5). Each experiment
// builds the full stack — workload → filesystem model → virtual SCSI layer
// with the characterization service attached → storage array model — runs
// it on the deterministic engine, and renders the same histograms the paper
// plots. cmd/experiments and the repository-level benchmarks both drive
// these functions.
package report

import (
	"fmt"
	"sort"
	"strings"

	"vscsistats/internal/core"
	"vscsistats/internal/simclock"
)

// Chart is one rendered figure panel.
type Chart struct {
	Title string
	Body  string
}

// Result is a regenerated experiment: headline observations plus rendered
// panels and machine-readable CSV series.
type Result struct {
	ID     string // e.g. "fig2"
	Title  string
	Notes  []string
	Charts []Chart
	CSVs   map[string]string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, CSVs: make(map[string]string)}
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) addChart(title, body string) {
	r.Charts = append(r.Charts, Chart{Title: title, Body: body})
}

// String renders the full result as text.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  * %s\n", n)
	}
	for _, c := range r.Charts {
		fmt.Fprintf(&b, "\n--- %s ---\n%s", c.Title, c.Body)
	}
	return b.String()
}

// CSVNames lists the result's CSV series in stable order.
func (r *Result) CSVNames() []string {
	names := make([]string, 0, len(r.CSVs))
	for n := range r.CSVs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Options tune experiment scale. The defaults reproduce the paper's
// qualitative results in seconds of wall-clock time; raising Duration and
// DataBytes approaches the paper's actual run lengths.
type Options struct {
	// Duration is the measured portion of the run in virtual time.
	Duration simclock.Time
	// DataBytes scales the primary dataset (e.g. the Filebench total
	// filesize, paper value 10 GB).
	DataBytes int64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions returns the standard scale: 60 virtual seconds over a 2 GB
// working set.
func DefaultOptions() Options {
	return Options{Duration: 60 * simclock.Second, DataBytes: 2 << 30, Seed: 1}
}

// farFraction is the share of seeks at |distance| > 50000 sectors (the
// outer histogram spikes the paper reads as "random").
func farFraction(s *core.Snapshot, cl core.Class) float64 {
	h := s.SeekDistance[cl]
	if h.Total == 0 {
		return 0
	}
	n := h.Counts[0] + h.Counts[1] + h.Counts[len(h.Counts)-1] + h.Counts[len(h.Counts)-2]
	return float64(n) / float64(h.Total)
}
