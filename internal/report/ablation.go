package report

import (
	"fmt"

	"vscsistats/internal/core"
	"vscsistats/internal/fs"
	"vscsistats/internal/hypervisor"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// AblationWindow sweeps the windowed seek-distance look-behind N (§3.1
// defaults to 16) against a workload of k interleaved sequential streams,
// showing the design point: the windowed histogram recovers sequentiality
// exactly when N >= k, while the plain histogram never does.
func AblationWindow(streams int, opts Options) (*Result, error) {
	if streams <= 0 {
		return nil, fmt.Errorf("report: need at least one stream")
	}
	r := newResult("ablation-window",
		fmt.Sprintf("Windowed seek distance: look-behind N vs %d interleaved streams", streams))
	for _, n := range []int{1, 4, 16, 64} {
		eng := simclock.NewEngine()
		backend := vscsi.BackendFunc(func(q *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
			done(scsi.StatusGood, scsi.Sense{})
		})
		d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
			VM: "vm", Name: "d", CapacitySectors: 1 << 40,
		})
		col := core.NewCollectorWindow("vm", "d", n)
		col.Enable()
		d.AddObserver(col)
		// Round-robin issue from `streams` far-apart sequential streams.
		cursors := make([]uint64, streams)
		for i := range cursors {
			cursors[i] = uint64(i) << 30
		}
		for i := 0; i < 5000; i++ {
			s := i % streams
			if _, err := d.Issue(scsi.Read(cursors[s], 8), nil); err != nil {
				return nil, err
			}
			cursors[s] += 8
		}
		eng.Run()
		snap := col.Snapshot()
		var seq int64
		w := snap.SeekWindowed
		for i := range w.Counts {
			if l := w.BinLabel(i); l == "0" || l == "2" {
				seq += w.Counts[i]
			}
		}
		frac := 0.0
		if w.Total > 0 {
			frac = float64(seq) / float64(w.Total)
		}
		plainSeq := seqFraction2(snap, core.All)
		r.notef("N=%-3d windowed sequential fraction %.0f%% (plain histogram sees %.0f%%)",
			n, 100*frac, 100*plainSeq)
		r.CSVs[fmt.Sprintf("window_%d", n)] = w.CSV()
	}
	r.notef("the plain histogram cannot disentangle the streams at any N; the windowed histogram recovers them once N >= streams (§3.1)")
	return r, nil
}

// AblationHistogramVsTrace quantifies the core space trade-off the paper
// argues for (§3): O(m) histograms versus O(n) traces, as actual bytes for
// a given command count.
func AblationHistogramVsTrace(commands int64) *Result {
	r := newResult("ablation-space", "Histogram (O(m)) vs trace (O(n)) memory cost")
	histBytes := int64(collectorMemoryBytes())
	const traceRecordBytes = 44 // internal/trace fixed record size
	for _, n := range []int64{1e3, 1e6, 1e9} {
		r.notef("%12d commands: histograms %8d bytes (constant), trace %14d bytes",
			n, histBytes, n*traceRecordBytes)
	}
	if commands > 0 {
		r.notef("requested %d commands: trace/histogram ratio %.1fx",
			commands, float64(commands*traceRecordBytes)/float64(histBytes))
	}
	return r
}

// AblationZFSAggregation sweeps the ZFS model's vdev aggregation limit
// (64/128/256 KB) under the OLTP write stream, showing how the cap shapes
// the device-write size distribution that Figure 3(a) plots.
func AblationZFSAggregation(opts Options) (*Result, error) {
	r := newResult("ablation-zfs-agg", "ZFS aggregation limit vs device write sizes")
	for _, limit := range []int64{64 << 10, 128 << 10, 256 << 10} {
		limit := limit
		s, err := filebenchRun(opts, func(eng *simclock.Engine, vd *hypervisor.Vdisk) fs.FS {
			cfg := fs.DefaultZFSConfig()
			cfg.RecordBytes = 8 << 10 // small records so aggregation decides the I/O size
			cfg.AggregateBytes = limit
			cfg.ZILBytes = 0 // isolate the txg stream from intent-log commits
			return fs.NewZFS(eng, vd.Disk, cfg)
		})
		if err != nil {
			return nil, err
		}
		lw := s.IOLength[core.Writes]
		var atLimit int64
		for i := range lw.Counts {
			_, hi := lw.BinRange(i)
			if hi == limit {
				atLimit = lw.Counts[i]
			}
		}
		frac := 0.0
		if lw.Total > 0 {
			frac = float64(atLimit) / float64(lw.Total)
		}
		r.notef("aggregate<=%-4dKB: mean device write %8.0f bytes, %3.0f%% of writes in the cap-bounded bin",
			limit>>10, lw.Mean(), 100*frac)
		r.CSVs[fmt.Sprintf("agg_%dk", limit>>10)] = lw.CSV()
	}
	r.notef("larger caps coalesce more of the txg's contiguous COW run into each command — the knob behind the 80-128 KB cluster the paper observed")
	return r, nil
}
