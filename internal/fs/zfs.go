package fs

import (
	"fmt"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// ZFSConfig parameterizes the copy-on-write filesystem model. The defaults
// follow the behaviour the paper observed and then confirmed against ZFS
// documentation (§4.1): "the blocks on disk containing data are never
// modified in place. Rather, the changes resulting from an application write
// are written to alternate locations on the disk" — plus vdev-style
// aggregation that caps device writes at 128 KB.
type ZFSConfig struct {
	// RecordBytes is the dataset record size (ZFS default 128 KB). Reads
	// and copy-on-write happen at record granularity, which is what
	// amplifies Filebench's 4 KB accesses into 80–128 KB device I/Os.
	RecordBytes int64
	// ARCBytes sizes the in-guest adaptive replacement cache (modeled as
	// LRU).
	ARCBytes int64
	// TxgInterval is the transaction-group sync period.
	TxgInterval simclock.Time
	// DirtyLimitRecords forces an early txg when this many records are
	// dirty; 0 means only the timer triggers syncs.
	DirtyLimitRecords int
	// AggregateBytes caps a single aggregated device write.
	AggregateBytes int64
	// ZILBytes sizes the intent-log region used by synchronous writes; 0
	// disables the ZIL (sync writes then wait for the next txg).
	ZILBytes int64
	// TxgConcurrency bounds device writes in flight during a txg sync
	// (ZFS's per-vdev queue depth); 0 means unlimited.
	TxgConcurrency int
}

// DefaultZFSConfig returns the model matching the paper's setup.
func DefaultZFSConfig() ZFSConfig {
	return ZFSConfig{
		RecordBytes:       128 << 10,
		ARCBytes:          256 << 20,
		TxgInterval:       5 * simclock.Second,
		DirtyLimitRecords: 2048,
		AggregateBytes:    128 << 10,
		ZILBytes:          256 << 20,
		TxgConcurrency:    32,
	}
}

type zfs struct {
	cfg  ZFSConfig
	eng  *simclock.Engine
	disk *vscsi.Disk
	arc  *pageCache

	files  map[string]*File
	nextID int

	// recordLoc maps each file record to its current on-disk sector; COW
	// rewrites move records, so the map is the live block-pointer tree.
	recordLoc map[pageKey]uint64
	dirty     map[pageKey]bool
	dirtySeq  []pageKey // txg write order (arrival order)

	cursor    uint64 // COW allocation cursor (sectors)
	dataStart uint64
	zilStart  uint64
	zilEnd    uint64
	zilCursor uint64

	txgActive  bool
	txgWaiters []func(error)
	ticker     *simclock.Ticker
	snapshots  []*zfsSnapshot

	txgs uint64
}

// NewZFS formats a virtual disk with the copy-on-write model.
func NewZFS(eng *simclock.Engine, disk *vscsi.Disk, cfg ZFSConfig) FS {
	if cfg.RecordBytes <= 0 || cfg.RecordBytes%512 != 0 {
		panic("fs: zfs record size must be a positive multiple of 512")
	}
	if cfg.AggregateBytes < cfg.RecordBytes {
		cfg.AggregateBytes = cfg.RecordBytes
	}
	z := &zfs{
		cfg:       cfg,
		eng:       eng,
		disk:      disk,
		arc:       newPageCache(cfg.ARCBytes, cfg.RecordBytes),
		files:     make(map[string]*File),
		recordLoc: make(map[pageKey]uint64),
		dirty:     make(map[pageKey]bool),
	}
	z.zilStart = 64
	z.zilEnd = z.zilStart + uint64(cfg.ZILBytes/512)
	z.zilCursor = z.zilStart
	z.dataStart = z.zilEnd
	z.cursor = z.dataStart
	if cfg.TxgInterval > 0 {
		z.ticker = simclock.NewTicker(eng, cfg.TxgInterval, func(simclock.Time) {
			z.txg(nil)
		})
	}
	return z
}

func (z *zfs) Name() string { return "zfs" }

// Txgs returns the number of transaction groups synced.
func (z *zfs) Txgs() uint64 { return z.txgs }

func (z *zfs) recordSectors() uint64 { return uint64(z.cfg.RecordBytes / 512) }

// alloc hands out the next COW location, wrapping through the data region.
// Reclamation is ignored: experiment runs are short relative to capacity,
// and wrapping preserves the property that matters — consecutive
// allocations are consecutive on disk.
func (z *zfs) alloc() uint64 {
	if z.cursor+z.recordSectors() > z.disk.CapacitySectors() {
		z.cursor = z.dataStart
	}
	s := z.cursor
	z.cursor += z.recordSectors()
	return s
}

func (z *zfs) Create(name string, size int64) (*File, error) {
	if _, dup := z.files[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	records := (size + z.cfg.RecordBytes - 1) / z.cfg.RecordBytes
	if uint64(records)*z.recordSectors() > z.disk.CapacitySectors()-z.cursor {
		return nil, fmt.Errorf("%w: creating %q (%d bytes)", ErrNoSpace, name, size)
	}
	f := &File{fs: z, name: name, id: z.nextID, ext: records * z.cfg.RecordBytes}
	z.nextID++
	// Initial layout: records allocated sequentially.
	for rec := int64(0); rec < records; rec++ {
		z.recordLoc[pageKey{f.id, rec}] = z.alloc()
	}
	z.files[name] = f
	return f, nil
}

func (z *zfs) Open(name string) (*File, error) {
	f, ok := z.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f, nil
}

// read fetches whole records on ARC miss — the read-amplification half of
// the paper's ZFS observation.
func (z *zfs) read(f *File, off, length int64, done func(error)) {
	if err := f.checkRange(off, length, false); err != nil {
		done(err)
		return
	}
	rb := z.cfg.RecordBytes
	first, last := off/rb, (off+length-1)/rb
	var missing []pageKey
	for rec := first; rec <= last; rec++ {
		k := pageKey{f.id, rec}
		if !z.arc.lookup(k) {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		done(nil)
		return
	}
	cb := multiDone(len(missing), func(err error) {
		if err == nil {
			for _, k := range missing {
				z.arc.insert(k, false)
			}
		}
		done(err)
	})
	for _, k := range missing {
		z.issue(scsi.Read(z.recordLoc[k], uint32(z.recordSectors())), cb)
	}
}

// write dirties records copy-on-write style. A sub-record overwrite of a
// non-resident record forces a read-modify-write fill first. Synchronous
// writes additionally log to the ZIL before completing.
func (z *zfs) write(f *File, off, length int64, sync bool, done func(error)) {
	if err := f.checkRange(off, length, true); err != nil {
		done(err)
		return
	}
	rb := z.cfg.RecordBytes
	first, last := off/rb, (off+length-1)/rb
	var fills []pageKey
	for rec := first; rec <= last; rec++ {
		k := pageKey{f.id, rec}
		fullCover := off <= rec*rb && off+length >= (rec+1)*rb
		if !fullCover && !z.arc.lookup(k) && !z.dirty[k] {
			fills = append(fills, k)
		}
	}
	finish := func(err error) {
		if err != nil {
			done(err)
			return
		}
		for rec := first; rec <= last; rec++ {
			k := pageKey{f.id, rec}
			z.arc.insert(k, false) // dirtiness tracked in z.dirty, pinned until txg
			if !z.dirty[k] {
				z.dirty[k] = true
				z.dirtySeq = append(z.dirtySeq, k)
			}
		}
		if z.cfg.DirtyLimitRecords > 0 && len(z.dirtySeq) >= z.cfg.DirtyLimitRecords {
			z.txg(nil)
		}
		if sync && z.zilEnd > z.zilStart {
			z.zilAppend(length, done)
		} else if sync {
			// No ZIL: durability waits for the next txg.
			z.txgWaiters = append(z.txgWaiters, done)
		} else {
			done(nil)
		}
	}
	if len(fills) == 0 {
		finish(nil)
		return
	}
	cb := multiDone(len(fills), func(err error) {
		if err == nil {
			for _, k := range fills {
				z.arc.insert(k, false)
			}
		}
		finish(err)
	})
	for _, k := range fills {
		z.issue(scsi.Read(z.recordLoc[k], uint32(z.recordSectors())), cb)
	}
}

// zilAppend logs a synchronous write sequentially in the intent log.
func (z *zfs) zilAppend(length int64, done func(error)) {
	sectors := uint64(((length + 4095) &^ 4095) / 512)
	if sectors == 0 {
		sectors = 8
	}
	if z.zilCursor+sectors > z.zilEnd {
		z.zilCursor = z.zilStart
	}
	lba := z.zilCursor
	z.zilCursor += sectors
	z.issue(scsi.Write(lba, uint32(sectors)), done)
}

// Sync forces a transaction group and completes when it is on disk.
func (z *zfs) Sync(done func(error)) { z.txg(done) }

// txg writes every dirty record to a freshly allocated sequential run,
// aggregating adjacent allocations into device writes of at most
// AggregateBytes — the mechanism that turns random application writes into
// the sequential write stream of Figure 3(c).
func (z *zfs) txg(done func(error)) {
	if done != nil {
		z.txgWaiters = append(z.txgWaiters, done)
	}
	if z.txgActive {
		return // current txg's completion will release waiters
	}
	if len(z.dirtySeq) == 0 {
		z.releaseWaiters(nil)
		return
	}
	z.txgActive = true
	z.txgs++
	records := z.dirtySeq
	z.dirtySeq = nil
	z.dirty = make(map[pageKey]bool)

	// COW-allocate in dirty order; allocations are adjacent by
	// construction, so aggregation reduces to chopping the run.
	type extent struct {
		lba     uint64
		sectors uint32
	}
	var extents []extent
	maxSectors := uint32(z.cfg.AggregateBytes / 512)
	for _, k := range records {
		lba := z.alloc()
		z.recordLoc[k] = lba
		n := uint32(z.recordSectors())
		last := len(extents) - 1
		if last >= 0 && extents[last].lba+uint64(extents[last].sectors) == lba &&
			extents[last].sectors+n <= maxSectors {
			extents[last].sectors += n
		} else {
			extents = append(extents, extent{lba, n})
		}
	}
	cb := multiDone(len(extents), func(err error) {
		z.txgActive = false
		z.releaseWaiters(err)
		// Writes dirtied during this txg belong to the next one; if a
		// forced sync queued more waiters meanwhile, run again.
		if len(z.txgWaiters) > 0 && len(z.dirtySeq) > 0 {
			z.txg(nil)
		}
	})
	// Issue extents through a bounded window so the guest-visible queue
	// depth stays at the vdev limit rather than the whole txg at once.
	next := 0
	inflight := 0
	var pump func()
	pump = func() {
		for next < len(extents) &&
			(z.cfg.TxgConcurrency == 0 || inflight < z.cfg.TxgConcurrency) {
			e := extents[next]
			next++
			inflight++
			z.issue(scsi.Write(e.lba, e.sectors), func(err error) {
				inflight--
				pump()
				cb(err)
			})
		}
	}
	pump()
}

func (z *zfs) releaseWaiters(err error) {
	waiters := z.txgWaiters
	z.txgWaiters = nil
	for _, w := range waiters {
		w(err)
	}
}

func (z *zfs) issue(cmd scsi.Command, cb func(error)) {
	if _, err := z.disk.Issue(cmd, func(r *vscsi.Request) { cb(reqErr(r)) }); err != nil {
		cb(err)
	}
}
