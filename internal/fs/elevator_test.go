package fs

import (
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func newElevRig(t *testing.T, cfg ElevatorConfig) (*fsRig, *Elevator) {
	t.Helper()
	r := newFSRig(t)
	return r, NewElevator(r.eng, r.disk, cfg)
}

func TestElevatorBackMerge(t *testing.T) {
	r, e := newElevRig(t, DefaultElevatorConfig())
	var statuses []scsi.Status
	done := func(req *vscsi.Request) { statuses = append(statuses, req.Status) }
	// Four contiguous 4K writes inside one plug window merge to one 16K
	// command; all four callbacks fire.
	for i := 0; i < 4; i++ {
		e.Submit(true, uint64(i*8), 8, done)
	}
	r.eng.RunUntil(10 * simclock.Millisecond)
	ios := r.blockIOs()
	if len(ios) != 1 {
		t.Fatalf("dispatched %d commands, want 1 merged", len(ios))
	}
	if ios[0].Cmd.Blocks != 32 || !ios[0].Cmd.Op.IsWrite() {
		t.Errorf("merged command: %v", ios[0].Cmd)
	}
	if len(statuses) != 4 {
		t.Errorf("callbacks fired: %d", len(statuses))
	}
	if e.Merged() != 3 || e.Dispatched() != 1 {
		t.Errorf("Merged=%d Dispatched=%d", e.Merged(), e.Dispatched())
	}
}

func TestElevatorFrontMerge(t *testing.T) {
	r, e := newElevRig(t, DefaultElevatorConfig())
	e.Submit(false, 8, 8, nil)
	e.Submit(false, 0, 8, nil) // front-merges onto [8,16)
	r.eng.RunUntil(10 * simclock.Millisecond)
	ios := r.blockIOs()
	if len(ios) != 1 || ios[0].Cmd.LBA != 0 || ios[0].Cmd.Blocks != 16 {
		t.Fatalf("front merge: %v", ios)
	}
}

func TestElevatorNoMergeAcrossDirection(t *testing.T) {
	r, e := newElevRig(t, DefaultElevatorConfig())
	e.Submit(false, 0, 8, nil)
	e.Submit(true, 8, 8, nil) // contiguous but a write
	r.eng.RunUntil(10 * simclock.Millisecond)
	if len(r.blockIOs()) != 2 {
		t.Fatalf("read/write must not merge: %v", r.blockIOs())
	}
}

func TestElevatorMergeCap(t *testing.T) {
	cfg := DefaultElevatorConfig()
	cfg.MaxMergeBytes = 8 << 10 // two 4K blocks
	r, e := newElevRig(t, cfg)
	for i := 0; i < 4; i++ {
		e.Submit(true, uint64(i*8), 8, nil)
	}
	r.eng.RunUntil(10 * simclock.Millisecond)
	ios := r.blockIOs()
	if len(ios) != 2 {
		t.Fatalf("cap should yield 2 commands: %v", ios)
	}
	for _, io := range ios {
		if io.Cmd.Bytes() != 8<<10 {
			t.Errorf("capped merge: %v", io.Cmd)
		}
	}
}

func TestElevatorSortsBatch(t *testing.T) {
	r, e := newElevRig(t, DefaultElevatorConfig())
	for _, lba := range []uint64{9000, 100, 5000} {
		e.Submit(false, lba, 8, nil)
	}
	r.eng.RunUntil(10 * simclock.Millisecond)
	ios := r.blockIOs()
	if len(ios) != 3 {
		t.Fatalf("ios: %v", ios)
	}
	if ios[0].Cmd.LBA != 100 || ios[1].Cmd.LBA != 5000 || ios[2].Cmd.LBA != 9000 {
		t.Errorf("not sorted: %v %v %v", ios[0].Cmd, ios[1].Cmd, ios[2].Cmd)
	}
}

func TestElevatorNoopPreservesOrder(t *testing.T) {
	r, e := newElevRig(t, NoopElevatorConfig())
	for _, lba := range []uint64{9000, 100, 5000} {
		e.Submit(false, lba, 8, nil)
	}
	r.eng.RunUntil(10 * simclock.Millisecond)
	ios := r.blockIOs()
	if ios[0].Cmd.LBA != 9000 || ios[2].Cmd.LBA != 5000 {
		t.Errorf("noop reordered: %v %v %v", ios[0].Cmd, ios[1].Cmd, ios[2].Cmd)
	}
}

func TestElevatorPlugDelaysDispatch(t *testing.T) {
	cfg := DefaultElevatorConfig()
	cfg.PlugDelay = 5 * simclock.Millisecond
	r, e := newElevRig(t, cfg)
	e.Submit(false, 0, 8, nil)
	r.eng.RunUntil(2 * simclock.Millisecond)
	if len(r.blockIOs()) != 0 {
		t.Fatal("dispatched before the plug window closed")
	}
	r.eng.RunUntil(10 * simclock.Millisecond)
	if len(r.blockIOs()) != 1 {
		t.Fatal("never dispatched")
	}
}

func TestElevatorFlushDispatchesImmediately(t *testing.T) {
	cfg := DefaultElevatorConfig()
	cfg.PlugDelay = simclock.Second
	r, e := newElevRig(t, cfg)
	e.Submit(true, 0, 8, nil)
	e.Flush()
	r.eng.RunUntil(10 * simclock.Millisecond)
	if len(r.blockIOs()) != 1 {
		t.Fatal("Flush did not dispatch")
	}
}

func TestElevatorClosedDiskFailsCallbacks(t *testing.T) {
	r, e := newElevRig(t, DefaultElevatorConfig())
	r.disk.Close()
	var got *vscsi.Request
	e.Submit(false, 0, 8, func(req *vscsi.Request) { got = req })
	r.eng.RunUntil(10 * simclock.Millisecond)
	if got == nil || got.Status != scsi.StatusCheckCondition {
		t.Errorf("closed-disk request: %+v", got)
	}
}

// The elevator visibly reshapes what the hypervisor sees: adjacent 4K
// writes appear as a single large command in the collector's histograms.
func TestElevatorShapesHistogram(t *testing.T) {
	r, e := newElevRig(t, DefaultElevatorConfig())
	for i := 0; i < 32; i++ {
		e.Submit(true, uint64(i*8), 8, nil)
	}
	r.eng.RunUntil(10 * simclock.Millisecond)
	s := r.col.Snapshot()
	if s.Commands != 1 {
		t.Fatalf("hypervisor saw %d commands, want 1 merged 128K", s.Commands)
	}
	h := s.IOLength[0]
	for i := range h.Counts {
		if h.Counts[i] == 1 && h.BinLabel(i) != "131072" {
			t.Errorf("merged I/O in bin %s", h.BinLabel(i))
		}
	}
}

func BenchmarkElevatorSubmitMerge(b *testing.B) {
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 40})
	e := NewElevator(eng, disk, DefaultElevatorConfig())
	b.ReportAllocs()
	lba := uint64(0)
	for i := 0; i < b.N; i++ {
		e.Submit(true, lba, 8, nil)
		lba += 8
		if i%64 == 63 {
			eng.Run() // dispatch the batch
		}
	}
	eng.Run()
}
