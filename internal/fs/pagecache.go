package fs

import "container/list"

// pageKey identifies one filesystem block of one file.
type pageKey struct {
	file  int
	block int64
}

// pageCache is the guest OS buffer cache: an LRU over filesystem blocks
// with dirty tracking for buffered writes. Disk traffic the hypervisor
// observes is exactly the miss and writeback traffic of this cache.
type pageCache struct {
	capacity int // pages; 0 disables caching entirely
	pages    map[pageKey]*list.Element
	lru      *list.List // front = most recent

	hits, misses uint64
}

type pageEntry struct {
	key   pageKey
	dirty bool
}

func newPageCache(capacityBytes, pageBytes int64) *pageCache {
	cap := 0
	if pageBytes > 0 {
		cap = int(capacityBytes / pageBytes)
	}
	return &pageCache{
		capacity: cap,
		pages:    make(map[pageKey]*list.Element),
		lru:      list.New(),
	}
}

// lookup reports residency of a single block, promoting it.
func (c *pageCache) lookup(k pageKey) bool {
	if el, ok := c.pages[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// insert makes a block resident. Evicted dirty pages are returned so the
// caller can schedule their writeback (the guest would, too).
func (c *pageCache) insert(k pageKey, dirty bool) (evictedDirty []pageKey) {
	if c.capacity == 0 {
		return nil
	}
	if el, ok := c.pages[k]; ok {
		c.lru.MoveToFront(el)
		if dirty {
			el.Value.(*pageEntry).dirty = true
		}
		return nil
	}
	for len(c.pages) >= c.capacity {
		oldest := c.lru.Back()
		e := oldest.Value.(*pageEntry)
		if e.dirty {
			evictedDirty = append(evictedDirty, e.key)
		}
		c.lru.Remove(oldest)
		delete(c.pages, e.key)
	}
	c.pages[k] = c.lru.PushFront(&pageEntry{key: k, dirty: dirty})
	return evictedDirty
}

// clean marks a block clean if resident.
func (c *pageCache) clean(k pageKey) {
	if el, ok := c.pages[k]; ok {
		el.Value.(*pageEntry).dirty = false
	}
}

// dirtyPages returns all dirty block keys (unordered beyond LRU order) and
// marks them clean; the caller owns writing them back.
func (c *pageCache) dirtyPages() []pageKey {
	var out []pageKey
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*pageEntry)
		if e.dirty {
			out = append(out, e.key)
			e.dirty = false
		}
	}
	return out
}

// dirtyCount reports the number of dirty resident pages.
func (c *pageCache) dirtyCount() int {
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*pageEntry).dirty {
			n++
		}
	}
	return n
}

func (c *pageCache) len() int { return len(c.pages) }
