package fs

import (
	"fmt"

	"vscsistats/internal/scsi"
)

// ZFS snapshots fall out of copy-on-write for free: a snapshot pins the
// block-pointer map as of a txg boundary, and because live writes always
// relocate records, the pinned locations stay valid without copying a byte.
// Reading an old snapshot while the live dataset churns produces the
// distinctive two-region I/O pattern (old extents vs the COW frontier) that
// the characterization service makes visible.

// Snapshotter is implemented by filesystems supporting point-in-time
// snapshots. Among this repository's models only ZFS does; assert for it:
//
//	z := fsys.(fs.Snapshotter)
type Snapshotter interface {
	// TakeSnapshot forces pending state to disk (a txg) and pins the
	// on-disk layout under the given name.
	TakeSnapshot(name string, done func(error))
	// OpenSnapshot returns a read-only view of a file as of the snapshot.
	OpenSnapshot(snapshot, file string) (*File, error)
	// Snapshots lists snapshot names in creation order.
	Snapshots() []string
}

// zfsSnapshot is one pinned layout.
type zfsSnapshot struct {
	name      string
	recordLoc map[pageKey]uint64
	sizes     map[int]int64
}

var _ Snapshotter = (*zfs)(nil)

// TakeSnapshot implements Snapshotter: sync, then pin.
func (z *zfs) TakeSnapshot(name string, done func(error)) {
	for _, s := range z.snapshots {
		if s.name == name {
			done(fmt.Errorf("%w: snapshot %q", ErrExists, name))
			return
		}
	}
	z.txg(func(err error) {
		if err != nil {
			done(err)
			return
		}
		snap := &zfsSnapshot{
			name:      name,
			recordLoc: make(map[pageKey]uint64, len(z.recordLoc)),
			sizes:     make(map[int]int64, len(z.files)),
		}
		for k, v := range z.recordLoc {
			snap.recordLoc[k] = v
		}
		for _, f := range z.files {
			snap.sizes[f.id] = f.size
		}
		z.snapshots = append(z.snapshots, snap)
		done(nil)
	})
}

// Snapshots implements Snapshotter.
func (z *zfs) Snapshots() []string {
	out := make([]string, len(z.snapshots))
	for i, s := range z.snapshots {
		out[i] = s.name
	}
	return out
}

// OpenSnapshot implements Snapshotter.
func (z *zfs) OpenSnapshot(snapshot, file string) (*File, error) {
	var snap *zfsSnapshot
	for _, s := range z.snapshots {
		if s.name == snapshot {
			snap = s
		}
	}
	if snap == nil {
		return nil, fmt.Errorf("%w: snapshot %q", ErrNotFound, snapshot)
	}
	live, ok := z.files[file]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, file)
	}
	size, ok := snap.sizes[live.id]
	if !ok {
		return nil, fmt.Errorf("%w: %q predates snapshot %q", ErrNotFound, file, snapshot)
	}
	view := &zfsSnapshotView{zfs: z, snap: snap}
	return &File{fs: view, name: snapshot + "@" + file, id: live.id, size: size, ext: live.ext}, nil
}

// zfsSnapshotView serves reads from a pinned layout. It bypasses the live
// ARC deliberately: a snapshot scan (backup, clone verification) is exactly
// the cold sequential-ish read stream administrators see in practice.
type zfsSnapshotView struct {
	zfs  *zfs
	snap *zfsSnapshot
}

func (v *zfsSnapshotView) Name() string { return v.zfs.Name() + "@" + v.snap.name }

func (v *zfsSnapshotView) Create(string, int64) (*File, error) {
	return nil, fmt.Errorf("fs: snapshot %q is read-only", v.snap.name)
}

func (v *zfsSnapshotView) Open(name string) (*File, error) {
	return v.zfs.OpenSnapshot(v.snap.name, name)
}

func (v *zfsSnapshotView) Sync(done func(error)) { done(nil) }

func (v *zfsSnapshotView) read(f *File, off, length int64, done func(error)) {
	if err := f.checkRange(off, length, false); err != nil {
		done(err)
		return
	}
	rb := v.zfs.cfg.RecordBytes
	first, last := off/rb, (off+length-1)/rb
	n := int(last - first + 1)
	cb := multiDone(n, done)
	for rec := first; rec <= last; rec++ {
		loc, ok := v.snap.recordLoc[pageKey{f.id, rec}]
		if !ok {
			cb(fmt.Errorf("%w: record %d missing from snapshot", ErrNotFound, rec))
			continue
		}
		v.zfs.issue(scsi.Read(loc, uint32(v.zfs.recordSectors())), cb)
	}
}

func (v *zfsSnapshotView) write(f *File, off, length int64, sync bool, done func(error)) {
	done(fmt.Errorf("fs: snapshot %q is read-only", v.snap.name))
}
