package fs

import (
	"sort"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// Elevator models the guest OS block-layer I/O scheduler sitting between a
// filesystem and the virtual disk. The paper observes the stream *below*
// this layer ("one thing that is not visible to the hypervisor is the time
// spent in the guest OS queues", §6) — request merging and LBA-order
// dispatch are precisely the transformations that shape what the hypervisor
// sees. The model batches requests for a short plug window, merges
// contiguous same-direction requests up to a size cap, optionally sorts a
// batch by ascending LBA (a one-way elevator pass), and dispatches.
type Elevator struct {
	eng  *simclock.Engine
	disk *vscsi.Disk
	cfg  ElevatorConfig

	queue   []*elevReq
	plugged bool

	merged     uint64
	dispatched uint64
}

// ElevatorConfig tunes the scheduler.
type ElevatorConfig struct {
	// PlugDelay is how long requests collect before a dispatch pass
	// (Linux's plug/unplug batching). Zero dispatches on the next event.
	PlugDelay simclock.Time
	// MaxMergeBytes caps a merged request (Linux max_sectors_kb).
	MaxMergeBytes int64
	// Sort enables LBA-ordered dispatch within a batch (deadline-style);
	// disabled it behaves like noop with merging only.
	Sort bool
}

// DefaultElevatorConfig resembles a 2.6-era deadline scheduler: 128 KB
// merges, short plug, sorted dispatch.
func DefaultElevatorConfig() ElevatorConfig {
	return ElevatorConfig{
		PlugDelay:     200 * simclock.Microsecond,
		MaxMergeBytes: 128 << 10,
		Sort:          true,
	}
}

// NoopElevatorConfig merges but never reorders.
func NoopElevatorConfig() ElevatorConfig {
	cfg := DefaultElevatorConfig()
	cfg.Sort = false
	return cfg
}

type elevReq struct {
	write  bool
	lba    uint64
	blocks uint32
	done   []func(*vscsi.Request)
}

// NewElevator wraps a virtual disk with a guest I/O scheduler.
func NewElevator(eng *simclock.Engine, disk *vscsi.Disk, cfg ElevatorConfig) *Elevator {
	if cfg.MaxMergeBytes < 512 {
		cfg.MaxMergeBytes = 512
	}
	return &Elevator{eng: eng, disk: disk, cfg: cfg}
}

// Merged reports how many requests were absorbed into earlier ones;
// Dispatched how many commands reached the virtual disk.
func (e *Elevator) Merged() uint64 { return e.merged }

// Dispatched reports commands forwarded to the virtual disk.
func (e *Elevator) Dispatched() uint64 { return e.dispatched }

// Submit queues one block request. done (optional) fires when the merged
// command containing this request completes.
func (e *Elevator) Submit(write bool, lba uint64, blocks uint32, done func(*vscsi.Request)) {
	// Back-merge into a queued contiguous request of the same direction.
	maxBlocks := uint32(e.cfg.MaxMergeBytes / 512)
	for _, q := range e.queue {
		if q.write != write || q.blocks+blocks > maxBlocks {
			continue
		}
		if q.lba+uint64(q.blocks) == lba {
			q.blocks += blocks
			if done != nil {
				q.done = append(q.done, done)
			}
			e.merged++
			return
		}
		// Front merge.
		if lba+uint64(blocks) == q.lba {
			q.lba = lba
			q.blocks += blocks
			if done != nil {
				q.done = append(q.done, done)
			}
			e.merged++
			return
		}
	}
	r := &elevReq{write: write, lba: lba, blocks: blocks}
	if done != nil {
		r.done = append(r.done, done)
	}
	e.queue = append(e.queue, r)
	if !e.plugged {
		e.plugged = true
		e.eng.After(e.cfg.PlugDelay, func(simclock.Time) { e.unplug() })
	}
}

// Flush dispatches everything queued immediately (fsync barrier).
func (e *Elevator) Flush() { e.unplug() }

func (e *Elevator) unplug() {
	e.plugged = false
	batch := e.queue
	e.queue = nil
	if len(batch) == 0 {
		return
	}
	if e.cfg.Sort {
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].lba < batch[j].lba })
	}
	for _, r := range batch {
		cmd := scsi.Read(r.lba, r.blocks)
		if r.write {
			cmd = scsi.Write(r.lba, r.blocks)
		}
		dones := r.done
		e.dispatched++
		if _, err := e.disk.Issue(cmd, func(req *vscsi.Request) {
			for _, d := range dones {
				d(req)
			}
		}); err != nil {
			// Disk closed: report a synthetic failed request so callers
			// are not left hanging.
			failed := &vscsi.Request{Cmd: cmd, Status: scsi.StatusCheckCondition,
				Sense: scsi.SenseInvalidFieldCDB}
			for _, d := range dones {
				d(failed)
			}
		}
	}
}
