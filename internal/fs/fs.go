// Package fs provides behavioural filesystem models that translate
// file-level operations into the block I/O each filesystem actually emits.
// The paper's central Filebench result (§4.1) is that the *same* application
// workload produces radically different disk workloads on UFS versus ZFS;
// these models reproduce that translation from first principles:
//
//   - UFS: 8 KB blocks updated in place; reads rounded up to the block,
//     writes issued at application granularity — the near-passthrough that
//     keeps OLTP random (Figure 2).
//   - ZFS: 128 KB records, copy-on-write allocation and transaction-group
//     (txg) syncs that stream random application writes to sequential disk
//     locations in 80–128 KB I/Os, plus a ZIL for synchronous writes
//     (Figure 3).
//   - ext3: 4 KB blocks in place plus a sequential journal region
//     (Figure 4's DBT-2 substrate).
//   - NTFS: passthrough with a copy-engine transfer size, 64 KB on XP and
//     1 MB on Vista (Figure 5).
//
// All models share a guest page cache, since what the hypervisor sees is
// exactly the traffic that misses it.
package fs

import (
	"errors"
	"fmt"

	"vscsistats/internal/vscsi"
)

// Errors returned by filesystem operations.
var (
	ErrExists     = errors.New("fs: file exists")
	ErrNotFound   = errors.New("fs: file not found")
	ErrNoSpace    = errors.New("fs: out of space")
	ErrOutOfRange = errors.New("fs: offset beyond file extent")
	ErrIO         = errors.New("fs: I/O error")
)

// FS is a mounted filesystem model on one virtual disk.
type FS interface {
	// Name identifies the filesystem type, e.g. "zfs".
	Name() string
	// Create preallocates a file of the given size in bytes.
	Create(name string, size int64) (*File, error)
	// Open returns an existing file.
	Open(name string) (*File, error)
	// Sync flushes all buffered dirty state (for ZFS it forces a txg).
	Sync(done func(error))

	// read/write/append implement the File methods; File dispatches here.
	read(f *File, off, length int64, done func(error))
	write(f *File, off, length int64, sync bool, done func(error))
}

// File is an open file on a model filesystem. Operations are asynchronous:
// done fires when the operation's synchronous disk I/O (if any) completes.
type File struct {
	fs   FS
	name string
	id   int
	size int64  // current logical size
	ext  int64  // preallocated extent size
	base uint64 // first disk sector of the extent (in-place models)
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current logical size in bytes.
func (f *File) Size() int64 { return f.size }

// Extent returns the preallocated extent size in bytes.
func (f *File) Extent() int64 { return f.ext }

// Prefill marks the file logically full. Workload setup uses it to make the
// whole extent readable without simulating the fill I/O, which would
// pollute the histograms under study.
func (f *File) Prefill() { f.size = f.ext }

// Truncate resets the logical size within the extent (contents discarded).
func (f *File) Truncate(size int64) error {
	if size < 0 || size > f.ext {
		return fmt.Errorf("%w: truncate %q to %d (extent %d)", ErrOutOfRange, f.name, size, f.ext)
	}
	f.size = size
	return nil
}

// Read reads length bytes at off.
func (f *File) Read(off, length int64, done func(error)) {
	f.fs.read(f, off, length, done)
}

// Write writes length bytes at off. With sync the data is durable when done
// fires; otherwise it may only have reached the guest page cache.
func (f *File) Write(off, length int64, sync bool, done func(error)) {
	f.fs.write(f, off, length, sync, done)
}

// Append writes length bytes at the current end of file, growing it. The
// file cannot grow beyond its preallocated extent.
func (f *File) Append(length int64, sync bool, done func(error)) {
	off := f.size
	if off+length > f.ext {
		done(fmt.Errorf("%w: append to %d exceeds extent %d", ErrOutOfRange, off+length, f.ext))
		return
	}
	f.size = off + length
	f.fs.write(f, off, length, sync, done)
}

// checkRange validates [off, off+length) against the extent and grows the
// logical size for writes that extend it.
func (f *File) checkRange(off, length int64, grow bool) error {
	if off < 0 || length <= 0 || off+length > f.ext {
		return fmt.Errorf("%w: [%d,+%d) of %q (extent %d)", ErrOutOfRange, off, length, f.name, f.ext)
	}
	if grow && off+length > f.size {
		f.size = off + length
	}
	return nil
}

// multiDone invokes done(err) once n completions have arrived, reporting the
// first error. n must be > 0.
func multiDone(n int, done func(error)) func(error) {
	var firstErr error
	return func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		n--
		if n == 0 {
			done(firstErr)
		}
	}
}

// reqErr converts a completed vSCSI request into an error.
func reqErr(r *vscsi.Request) error {
	if r.Status == 0 {
		return nil
	}
	return fmt.Errorf("%w: %s: %s (%s)", ErrIO, r.Cmd, r.Status, r.Sense)
}
