package fs

import (
	"fmt"
	"sort"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// PlainConfig parameterizes the family of update-in-place filesystems (UFS,
// ext3, NTFS): fixed block size, optional sequential journal, a guest page
// cache with periodic writeback, and a maximum transfer size per disk I/O.
type PlainConfig struct {
	// Type names the filesystem, e.g. "ufs".
	Type string
	// BlockBytes is the filesystem block size (reads are block-granular).
	BlockBytes int64
	// MaxIOBytes caps a single disk transfer; larger requests split.
	MaxIOBytes int64
	// Journal adds a sequential journal region; size-changing operations
	// append a commit record to it.
	Journal      bool
	JournalBytes int64
	recordBytes  int64 // journal commit record size (fixed 4 KB)
	// PageCacheBytes sizes the guest buffer cache; 0 disables it so every
	// operation reaches the disk.
	PageCacheBytes int64
	// FlushInterval is the background writeback period for buffered
	// (non-sync) writes; 0 disables background flushing.
	FlushInterval simclock.Time
	// UseElevator routes block I/O through a guest I/O scheduler
	// (merging + sorted dispatch), configured by Elevator. The hypervisor
	// then sees the post-elevator stream, as on a real guest.
	UseElevator bool
	Elevator    ElevatorConfig
}

// UFSConfig models Solaris UFS: 8 KB blocks, no journal. Reads round up to
// the block while writes go out at application granularity, producing the
// paper's 4 KB / 8 KB mix for Filebench OLTP (Figure 2(a)).
func UFSConfig() PlainConfig {
	return PlainConfig{
		Type:           "ufs",
		BlockBytes:     8 << 10,
		MaxIOBytes:     128 << 10,
		PageCacheBytes: 64 << 20,
		FlushInterval:  5 * simclock.Second,
	}
}

// Ext3Config models Linux ext3 (data=ordered): 4 KB blocks plus a
// sequential journal, the substrate under DBT-2/PostgreSQL (§4.2).
func Ext3Config() PlainConfig {
	return PlainConfig{
		Type:           "ext3",
		BlockBytes:     4 << 10,
		MaxIOBytes:     128 << 10,
		Journal:        true,
		JournalBytes:   128 << 20,
		PageCacheBytes: 64 << 20,
		FlushInterval:  5 * simclock.Second,
	}
}

// NTFSXPConfig and NTFSVistaConfig model the NTFS stacks behind the paper's
// file-copy comparison (§4.3): identical on-disk behaviour, but the copy
// pipeline's transfer size is 64 KB on XP and 1 MB on Vista.
func NTFSXPConfig() PlainConfig {
	return PlainConfig{
		Type:           "ntfs-xp",
		BlockBytes:     4 << 10,
		MaxIOBytes:     64 << 10,
		Journal:        true,
		JournalBytes:   64 << 20,
		PageCacheBytes: 128 << 20,
		FlushInterval:  simclock.Second,
	}
}

// NTFSVistaConfig is NTFS with Vista's 1 MB copy-engine transfers.
func NTFSVistaConfig() PlainConfig {
	cfg := NTFSXPConfig()
	cfg.Type = "ntfs-vista"
	cfg.MaxIOBytes = 1 << 20
	return cfg
}

// plainFS implements the in-place family.
type plainFS struct {
	cfg   PlainConfig
	eng   *simclock.Engine
	disk  *vscsi.Disk
	cache *pageCache

	files  map[string]*File
	nextID int

	cursor        uint64 // next free data sector (bump allocator)
	journalStart  uint64
	journalEnd    uint64
	journalCursor uint64

	elevator *Elevator
	flusher  *simclock.Ticker
}

// NewPlain formats a virtual disk with an update-in-place filesystem model.
func NewPlain(eng *simclock.Engine, disk *vscsi.Disk, cfg PlainConfig) FS {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes%512 != 0 {
		panic("fs: block size must be a positive multiple of 512")
	}
	if cfg.MaxIOBytes < cfg.BlockBytes {
		panic("fs: max I/O smaller than a block")
	}
	cfg.recordBytes = 4 << 10
	p := &plainFS{
		cfg:   cfg,
		eng:   eng,
		disk:  disk,
		cache: newPageCache(cfg.PageCacheBytes, cfg.BlockBytes),
		files: make(map[string]*File),
	}
	if cfg.Journal {
		p.journalStart = 64 // superblock area
		p.journalEnd = p.journalStart + uint64(cfg.JournalBytes/512)
		p.journalCursor = p.journalStart
		p.cursor = p.journalEnd
	} else {
		p.cursor = 64
	}
	if cfg.UseElevator {
		ecfg := cfg.Elevator
		if ecfg.MaxMergeBytes == 0 {
			ecfg = DefaultElevatorConfig()
		}
		p.elevator = NewElevator(eng, disk, ecfg)
	}
	if cfg.FlushInterval > 0 && cfg.PageCacheBytes > 0 {
		p.flusher = simclock.NewTicker(eng, cfg.FlushInterval, func(simclock.Time) {
			p.flushAll(func(error) {})
		})
	}
	return p
}

func (p *plainFS) Name() string { return p.cfg.Type }

func (p *plainFS) Create(name string, size int64) (*File, error) {
	if _, dup := p.files[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	blocks := (size + p.cfg.BlockBytes - 1) / p.cfg.BlockBytes
	sectors := uint64(blocks * p.cfg.BlockBytes / 512)
	if p.cursor+sectors > p.disk.CapacitySectors() {
		return nil, fmt.Errorf("%w: creating %q (%d bytes)", ErrNoSpace, name, size)
	}
	f := &File{fs: p, name: name, id: p.nextID, ext: blocks * p.cfg.BlockBytes, base: p.cursor}
	p.nextID++
	p.cursor += sectors
	p.files[name] = f
	return f, nil
}

func (p *plainFS) Open(name string) (*File, error) {
	f, ok := p.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f, nil
}

// read fetches block-granular extents, coalescing page-cache misses into
// contiguous disk runs split at MaxIOBytes.
func (p *plainFS) read(f *File, off, length int64, done func(error)) {
	if err := f.checkRange(off, length, false); err != nil {
		done(err)
		return
	}
	bs := p.cfg.BlockBytes
	first, last := off/bs, (off+length-1)/bs
	type run struct{ start, n int64 }
	var runs []run
	for b := first; b <= last; b++ {
		if p.cache.lookup(pageKey{f.id, b}) {
			continue
		}
		if len(runs) > 0 && runs[len(runs)-1].start+runs[len(runs)-1].n == b {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{b, 1})
		}
	}
	if len(runs) == 0 {
		done(nil) // fully cached: no disk I/O at all
		return
	}
	var ios int
	maxBlocks := p.cfg.MaxIOBytes / bs
	for _, r := range runs {
		ios += int((r.n + maxBlocks - 1) / maxBlocks)
	}
	cb := multiDone(ios, func(err error) {
		if err == nil {
			for _, r := range runs {
				for b := r.start; b < r.start+r.n; b++ {
					p.writeBack(p.cache.insert(pageKey{f.id, b}, false))
				}
			}
		}
		done(err)
	})
	for _, r := range runs {
		for b := r.start; b < r.start+r.n; b += maxBlocks {
			n := min64(maxBlocks, r.start+r.n-b)
			lba := f.base + uint64(b*bs/512)
			p.issue(scsi.Read(lba, uint32(n*bs/512)), cb)
		}
	}
}

// write either goes straight to disk (sync) or dirties the page cache for
// the background flusher (buffered).
func (p *plainFS) write(f *File, off, length int64, sync bool, done func(error)) {
	if err := f.checkRange(off, length, true); err != nil {
		done(err)
		return
	}
	if !sync && p.cache.capacity > 0 {
		bs := p.cfg.BlockBytes
		var evicted []pageKey
		for b := off / bs; b <= (off+length-1)/bs; b++ {
			evicted = append(evicted, p.cache.insert(pageKey{f.id, b}, true)...)
		}
		p.writeBack(evicted)
		done(nil)
		return
	}
	// Synchronous write at application granularity, sector-aligned.
	start := off &^ 511
	end := (off + length + 511) &^ 511
	ios := int((end - start + p.cfg.MaxIOBytes - 1) / p.cfg.MaxIOBytes)
	journal := p.cfg.Journal && off+length >= f.size // size-changing commit
	if journal {
		ios++
	}
	cb := multiDone(ios, func(err error) {
		if err == nil {
			bs := p.cfg.BlockBytes
			for b := off / bs; b <= (off+length-1)/bs; b++ {
				p.cache.clean(pageKey{f.id, b})
				p.writeBack(p.cache.insert(pageKey{f.id, b}, false))
			}
		}
		done(err)
	})
	for cur := start; cur < end; cur += p.cfg.MaxIOBytes {
		n := min64(p.cfg.MaxIOBytes, end-cur)
		p.issue(scsi.Write(f.base+uint64(cur/512), uint32(n/512)), cb)
	}
	if journal {
		p.journalAppend(cb)
	}
}

// journalAppend writes one commit record at the journal cursor, wrapping at
// the region's end — the strictly sequential component of the disk workload.
func (p *plainFS) journalAppend(cb func(error)) {
	sectors := uint32(p.cfg.recordBytes / 512)
	if p.journalCursor+uint64(sectors) > p.journalEnd {
		p.journalCursor = p.journalStart
	}
	p.issue(scsi.Write(p.journalCursor, sectors), cb)
	p.journalCursor += uint64(sectors)
}

// Sync flushes every dirty page and, on journaling systems, commits; with
// an elevator, pending scheduler queues dispatch first (fsync barrier).
func (p *plainFS) Sync(done func(error)) {
	if p.elevator != nil {
		p.elevator.Flush()
	}
	p.flushAll(done)
}

func (p *plainFS) flushAll(done func(error)) {
	dirty := p.cache.dirtyPages()
	if len(dirty) == 0 {
		done(nil)
		return
	}
	// Coalesce per file into contiguous runs, in block order.
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].file != dirty[j].file {
			return dirty[i].file < dirty[j].file
		}
		return dirty[i].block < dirty[j].block
	})
	type run struct {
		file     int
		start, n int64
	}
	var runs []run
	for _, k := range dirty {
		if len(runs) > 0 && runs[len(runs)-1].file == k.file &&
			runs[len(runs)-1].start+runs[len(runs)-1].n == k.block {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{k.file, k.block, 1})
		}
	}
	fileByID := make(map[int]*File, len(p.files))
	for _, f := range p.files {
		fileByID[f.id] = f
	}
	bs := p.cfg.BlockBytes
	maxBlocks := p.cfg.MaxIOBytes / bs
	var ios int
	for _, r := range runs {
		ios += int((r.n + maxBlocks - 1) / maxBlocks)
	}
	if p.cfg.Journal {
		ios++
	}
	cb := multiDone(ios, done)
	for _, r := range runs {
		f := fileByID[r.file]
		for b := r.start; b < r.start+r.n; b += maxBlocks {
			n := min64(maxBlocks, r.start+r.n-b)
			p.issue(scsi.Write(f.base+uint64(b*bs/512), uint32(n*bs/512)), cb)
		}
	}
	if p.cfg.Journal {
		p.journalAppend(cb)
	}
}

// writeBack writes dirty pages evicted under memory pressure.
func (p *plainFS) writeBack(evicted []pageKey) {
	if len(evicted) == 0 {
		return
	}
	fileByID := make(map[int]*File, len(p.files))
	for _, f := range p.files {
		fileByID[f.id] = f
	}
	bs := p.cfg.BlockBytes
	for _, k := range evicted {
		f := fileByID[k.file]
		if f == nil {
			continue
		}
		p.issue(scsi.Write(f.base+uint64(k.block*bs/512), uint32(bs/512)), func(error) {})
	}
}

func (p *plainFS) issue(cmd scsi.Command, cb func(error)) {
	if p.elevator != nil && cmd.Op.IsBlockIO() {
		p.elevator.Submit(cmd.Op.IsWrite(), cmd.LBA, cmd.Blocks,
			func(r *vscsi.Request) { cb(reqErr(r)) })
		return
	}
	if _, err := p.disk.Issue(cmd, func(r *vscsi.Request) { cb(reqErr(r)) }); err != nil {
		cb(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
