package fs

import (
	"errors"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// fsRig builds an FS on a virtual disk with a recording collector and a
// fixed-latency backend.
type fsRig struct {
	eng  *simclock.Engine
	disk *vscsi.Disk
	col  *core.Collector
	reqs []*vscsi.Request
}

type reqRecorder struct{ rig *fsRig }

func (r *reqRecorder) OnIssue(req *vscsi.Request) { r.rig.reqs = append(r.rig.reqs, req) }
func (r *reqRecorder) OnComplete(*vscsi.Request)  {}

func newFSRig(t *testing.T) *fsRig {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(200*simclock.Microsecond, func(simclock.Time) {
			done(scsi.StatusGood, scsi.Sense{})
		})
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
		VM: "vm", Name: "scsi0:0", CapacitySectors: 1 << 26, // 32 GB
	})
	col := core.NewCollector("vm", "scsi0:0")
	col.Enable()
	disk.AddObserver(col)
	rig := &fsRig{eng: eng, disk: disk, col: col}
	disk.AddObserver(&reqRecorder{rig})
	return rig
}

// wait runs the engine until the callback's error lands.
func (r *fsRig) wait(t *testing.T, op func(done func(error))) {
	t.Helper()
	var got *error
	op(func(err error) { got = &err })
	// Step rather than drain: background tickers (flusher, txg) keep the
	// engine's queue perpetually nonempty.
	for got == nil && r.eng.Step() {
	}
	if got == nil {
		t.Fatal("operation never completed")
	}
	if *got != nil {
		t.Fatalf("operation failed: %v", *got)
	}
}

func (r *fsRig) blockIOs() []*vscsi.Request {
	var out []*vscsi.Request
	for _, q := range r.reqs {
		if q.Cmd.Op.IsBlockIO() {
			out = append(out, q)
		}
	}
	return out
}

func TestPlainCreateOpenErrors(t *testing.T) {
	r := newFSRig(t)
	p := NewPlain(r.eng, r.disk, UFSConfig())
	f, err := p.Create("a", 1<<20)
	if err != nil || f.Size() != 0 || f.Name() != "a" {
		t.Fatalf("Create: %v %+v", err, f)
	}
	if _, err := p.Create("a", 1); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := p.Open("a"); err != nil {
		t.Errorf("Open: %v", err)
	}
	if _, err := p.Open("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Open missing: %v", err)
	}
	if _, err := p.Create("huge", 1<<40); !errors.Is(err, ErrNoSpace) {
		t.Errorf("no-space create: %v", err)
	}
}

func TestPlainReadRoundsToBlock(t *testing.T) {
	r := newFSRig(t)
	p := NewPlain(r.eng, r.disk, UFSConfig()) // 8 KB blocks
	f, _ := p.Create("a", 10<<20)
	r.wait(t, func(done func(error)) { f.Read(1000, 2000, done) }) // within one block
	ios := r.blockIOs()
	if len(ios) != 1 {
		t.Fatalf("got %d I/Os", len(ios))
	}
	if ios[0].Cmd.Bytes() != 8192 || !ios[0].Cmd.Op.IsRead() {
		t.Errorf("read I/O = %v", ios[0].Cmd)
	}
}

func TestPlainReadCachedNoIO(t *testing.T) {
	r := newFSRig(t)
	p := NewPlain(r.eng, r.disk, UFSConfig())
	f, _ := p.Create("a", 10<<20)
	r.wait(t, func(done func(error)) { f.Read(0, 8192, done) })
	n := len(r.blockIOs())
	r.wait(t, func(done func(error)) { f.Read(0, 8192, done) })
	if len(r.blockIOs()) != n {
		t.Errorf("cached read generated disk I/O")
	}
}

func TestPlainSyncWriteExactGranularity(t *testing.T) {
	r := newFSRig(t)
	p := NewPlain(r.eng, r.disk, UFSConfig())
	f, _ := p.Create("a", 10<<20)
	r.wait(t, func(done func(error)) { f.Write(0, 4096, true, done) })
	ios := r.blockIOs()
	if len(ios) != 1 || ios[0].Cmd.Bytes() != 4096 || !ios[0].Cmd.Op.IsWrite() {
		t.Fatalf("sync 4K write produced %v", ios)
	}
}

func TestPlainLargeIOSplitsAtMaxIO(t *testing.T) {
	r := newFSRig(t)
	cfg := NTFSXPConfig() // MaxIO = 64 KB
	cfg.PageCacheBytes = 0
	r2 := newFSRig(t)
	p := NewPlain(r2.eng, r2.disk, cfg)
	f, _ := p.Create("a", 10<<20)
	r2.wait(t, func(done func(error)) { f.Read(0, 256<<10, done) })
	ios := r2.blockIOs()
	if len(ios) != 4 {
		t.Fatalf("256K read on 64K MaxIO: %d I/Os", len(ios))
	}
	for _, io := range ios {
		if io.Cmd.Bytes() != 64<<10 {
			t.Errorf("I/O size %d, want 65536", io.Cmd.Bytes())
		}
	}
	_ = r
}

func TestPlainBufferedWriteDefersIO(t *testing.T) {
	r := newFSRig(t)
	cfg := UFSConfig()
	cfg.FlushInterval = simclock.Second
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("a", 10<<20)
	var completed bool
	f.Write(0, 8192, false, func(err error) { completed = true })
	if !completed {
		t.Fatal("buffered write should complete immediately")
	}
	if len(r.blockIOs()) != 0 {
		t.Fatal("buffered write issued immediate I/O")
	}
	r.eng.RunUntil(1100 * simclock.Millisecond)
	if len(r.blockIOs()) == 0 {
		t.Fatal("background flusher never wrote dirty pages")
	}
}

func TestPlainFlushCoalescesRuns(t *testing.T) {
	r := newFSRig(t)
	cfg := UFSConfig()
	cfg.FlushInterval = 0 // manual sync only
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("a", 10<<20)
	for i := int64(0); i < 8; i++ {
		f.Write(i*8192, 8192, false, func(error) {})
	}
	r.wait(t, func(done func(error)) { p.Sync(done) })
	ios := r.blockIOs()
	if len(ios) != 1 {
		t.Fatalf("8 adjacent dirty blocks flushed as %d I/Os, want 1", len(ios))
	}
	if ios[0].Cmd.Bytes() != 64<<10 {
		t.Errorf("coalesced flush size %d", ios[0].Cmd.Bytes())
	}
}

func TestPlainJournalAppendsSequential(t *testing.T) {
	r := newFSRig(t)
	cfg := Ext3Config()
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("log", 10<<20)
	var journalLBAs []uint64
	for i := 0; i < 3; i++ {
		before := len(r.blockIOs())
		r.wait(t, func(done func(error)) { f.Append(4096, true, done) })
		for _, io := range r.blockIOs()[before:] {
			if io.Cmd.LBA < uint64(cfg.JournalBytes/512)+64 && io.Cmd.LBA >= 64 {
				journalLBAs = append(journalLBAs, io.Cmd.LBA)
			}
		}
	}
	if len(journalLBAs) != 3 {
		t.Fatalf("expected 3 journal commits, got %d", len(journalLBAs))
	}
	for i := 1; i < len(journalLBAs); i++ {
		if journalLBAs[i] != journalLBAs[i-1]+8 {
			t.Errorf("journal not sequential: %v", journalLBAs)
		}
	}
}

func TestPlainOutOfRange(t *testing.T) {
	r := newFSRig(t)
	p := NewPlain(r.eng, r.disk, UFSConfig())
	f, _ := p.Create("a", 8192)
	var got error
	f.Read(8192, 1, func(err error) { got = err })
	if !errors.Is(got, ErrOutOfRange) {
		t.Errorf("read out of range: %v", got)
	}
	f.Write(0, 0, true, func(err error) { got = err })
	if !errors.Is(got, ErrOutOfRange) {
		t.Errorf("zero-length write: %v", got)
	}
	f.Append(16384, true, func(err error) { got = err })
	if !errors.Is(got, ErrOutOfRange) {
		t.Errorf("append past extent: %v", got)
	}
}

func TestPlainAppendGrowsSize(t *testing.T) {
	r := newFSRig(t)
	p := NewPlain(r.eng, r.disk, UFSConfig())
	f, _ := p.Create("a", 1<<20)
	r.wait(t, func(done func(error)) { f.Append(4096, true, done) })
	r.wait(t, func(done func(error)) { f.Append(4096, true, done) })
	if f.Size() != 8192 {
		t.Errorf("Size = %d", f.Size())
	}
}

func TestPlainIOErrorPropagates(t *testing.T) {
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusCheckCondition, scsi.SenseUnrecoveredRead)
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 26})
	p := NewPlain(eng, disk, UFSConfig())
	f, _ := p.Create("a", 1<<20)
	var got error
	done := false
	f.Read(0, 4096, func(err error) { got = err; done = true })
	for !done && eng.Step() {
	}
	if !errors.Is(got, ErrIO) {
		t.Errorf("got %v, want ErrIO", got)
	}
}

func TestPlainValidation(t *testing.T) {
	r := newFSRig(t)
	for _, cfg := range []PlainConfig{
		{Type: "x", BlockBytes: 0, MaxIOBytes: 4096},
		{Type: "x", BlockBytes: 1000, MaxIOBytes: 4096},
		{Type: "x", BlockBytes: 8192, MaxIOBytes: 4096},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewPlain(r.eng, r.disk, cfg)
		}()
	}
}

// --- ZFS ---

func newZFSRig(t *testing.T, cfg ZFSConfig) (*fsRig, FS) {
	r := newFSRig(t)
	return r, NewZFS(r.eng, r.disk, cfg)
}

func TestZFSReadAmplification(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0 // manual txg for test isolation
	r, z := newZFSRig(t, cfg)
	f, err := z.Create("tbl", 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	r.wait(t, func(done func(error)) { f.Read(0, 4096, done) })
	ios := r.blockIOs()
	if len(ios) != 1 || ios[0].Cmd.Bytes() != 128<<10 {
		t.Fatalf("4K read should fetch one 128K record, got %v", ios)
	}
	// Second read of the same record: ARC hit, no I/O.
	n := len(r.blockIOs())
	r.wait(t, func(done func(error)) { f.Read(8192, 4096, done) })
	if len(r.blockIOs()) != n {
		t.Error("ARC-resident record re-read from disk")
	}
}

func TestZFSCOWTurnsRandomWritesSequential(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 1<<30)
	// Dirty 8 records at random far-apart offsets (full-record writes so no
	// fill reads).
	rng := simclock.NewRand(42)
	for i := 0; i < 8; i++ {
		rec := rng.Int63n(8192)
		f.Write(rec*(128<<10), 128<<10, false, func(error) {})
	}
	r.wait(t, func(done func(error)) { z.Sync(done) })
	ios := r.blockIOs()
	if len(ios) != 8 {
		t.Fatalf("txg issued %d I/Os, want 8", len(ios))
	}
	// Writes must be 128K and consecutive on disk despite random offsets.
	for i, io := range ios {
		if !io.Cmd.Op.IsWrite() || io.Cmd.Bytes() != 128<<10 {
			t.Errorf("txg I/O %d: %v", i, io.Cmd)
		}
		if i > 0 && io.Cmd.LBA != ios[i-1].Cmd.LastLBA()+1 {
			t.Errorf("txg writes not sequential: %d follows %d", io.Cmd.LBA, ios[i-1].Cmd.LastLBA())
		}
	}
}

func TestZFSSubRecordWriteForcesFillRead(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 100<<20)
	r.wait(t, func(done func(error)) { f.Write(0, 4096, false, done) })
	ios := r.blockIOs()
	if len(ios) != 1 || !ios[0].Cmd.Op.IsRead() || ios[0].Cmd.Bytes() != 128<<10 {
		t.Fatalf("sub-record write should trigger one 128K fill read, got %v", ios)
	}
}

func TestZFSSyncWriteHitsZIL(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 100<<20)
	// Full-record sync write: no fill read, one ZIL write before done.
	r.wait(t, func(done func(error)) { f.Write(0, 128<<10, true, done) })
	ios := r.blockIOs()
	if len(ios) != 1 || !ios[0].Cmd.Op.IsWrite() {
		t.Fatalf("sync write should log to ZIL, got %v", ios)
	}
	if ios[0].Cmd.LBA >= 64+uint64(cfg.ZILBytes/512) {
		t.Errorf("ZIL write outside log region: lba=%d", ios[0].Cmd.LBA)
	}
	// Consecutive sync writes append sequentially in the ZIL.
	r.wait(t, func(done func(error)) { f.Write(128<<10, 128<<10, true, done) })
	ios = r.blockIOs()
	if ios[1].Cmd.LBA != ios[0].Cmd.LastLBA()+1 {
		t.Errorf("ZIL not sequential: %v then %v", ios[0].Cmd, ios[1].Cmd)
	}
}

func TestZFSRecordRelocationVisibleToReads(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	cfg.ARCBytes = 0 // no caching: reads always hit disk
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 100<<20)
	r.wait(t, func(done func(error)) { f.Read(0, 4096, done) })
	lbaBefore := r.blockIOs()[0].Cmd.LBA
	r.wait(t, func(done func(error)) { f.Write(0, 128<<10, false, done) })
	r.wait(t, func(done func(error)) { z.Sync(done) })
	r.wait(t, func(done func(error)) { f.Read(0, 4096, done) })
	ios := r.blockIOs()
	lbaAfter := ios[len(ios)-1].Cmd.LBA
	if lbaAfter == lbaBefore {
		t.Error("COW did not relocate the record")
	}
}

func TestZFSTimerTxg(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.ZILBytes = 0
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 100<<20)
	f.Write(0, 128<<10, false, func(error) {})
	r.eng.RunUntil(6 * simclock.Second)
	var writes int
	for _, io := range r.blockIOs() {
		if io.Cmd.Op.IsWrite() {
			writes++
		}
	}
	if writes != 1 {
		t.Errorf("timer txg wrote %d I/Os, want 1", writes)
	}
	if z.(*zfs).Txgs() != 1 {
		t.Errorf("Txgs = %d", z.(*zfs).Txgs())
	}
}

func TestZFSDirtyLimitForcesTxg(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	cfg.DirtyLimitRecords = 4
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 100<<20)
	for i := int64(0); i < 4; i++ {
		f.Write(i*(128<<10), 128<<10, false, func(error) {})
	}
	r.eng.Run()
	var writes int
	for _, io := range r.blockIOs() {
		if io.Cmd.Op.IsWrite() {
			writes++
		}
	}
	if writes == 0 {
		t.Error("dirty limit never forced a txg")
	}
}

func TestZFSAggregationCap(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	cfg.RecordBytes = 8 << 10
	cfg.AggregateBytes = 128 << 10
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("tbl", 100<<20)
	// Dirty 32 8K records: allocations are adjacent, so aggregation should
	// produce exactly two 128K writes.
	for i := int64(0); i < 32; i++ {
		f.Write(i*(8<<10), 8<<10, false, func(error) {})
	}
	r.wait(t, func(done func(error)) { z.Sync(done) })
	ios := r.blockIOs()
	if len(ios) != 2 {
		t.Fatalf("aggregation produced %d I/Os, want 2", len(ios))
	}
	for _, io := range ios {
		if io.Cmd.Bytes() != 128<<10 {
			t.Errorf("aggregated write %d bytes", io.Cmd.Bytes())
		}
	}
}

func TestZFSSyncNoDirtyCompletesImmediately(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	r, z := newZFSRig(t, cfg)
	done := false
	z.Sync(func(err error) { done = err == nil })
	for !done && r.eng.Step() {
	}
	if !done {
		t.Error("empty txg should complete")
	}
}

func TestZFSCreateErrors(t *testing.T) {
	cfg := DefaultZFSConfig()
	_, z := newZFSRig(t, cfg)
	if _, err := z.Create("a", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := z.Create("a", 1<<20); !errors.Is(err, ErrExists) {
		t.Errorf("dup: %v", err)
	}
	if _, err := z.Open("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
	if _, err := z.Create("huge", 1<<40); !errors.Is(err, ErrNoSpace) {
		t.Errorf("no space: %v", err)
	}
}

// --- page cache unit tests ---

func TestPageCacheLRUAndDirty(t *testing.T) {
	c := newPageCache(3*4096, 4096)
	if c.lookup(pageKey{1, 0}) {
		t.Fatal("hit on empty cache")
	}
	c.insert(pageKey{1, 0}, true)
	c.insert(pageKey{1, 1}, false)
	c.insert(pageKey{1, 2}, false)
	if !c.lookup(pageKey{1, 0}) {
		t.Fatal("miss on resident page")
	}
	// Inserting a 4th page evicts LRU page {1,1}.
	evicted := c.insert(pageKey{1, 3}, false)
	if len(evicted) != 0 {
		t.Errorf("clean eviction returned %v", evicted)
	}
	if c.lookup(pageKey{1, 1}) {
		t.Error("evicted page still resident")
	}
	// Dirty page evicted under pressure is reported.
	c.insert(pageKey{1, 4}, false) // evicts {1,2}
	evicted = c.insert(pageKey{1, 5}, false)
	if len(evicted) != 1 || evicted[0] != (pageKey{1, 0}) {
		t.Errorf("dirty eviction = %v, want [{1 0}]", evicted)
	}
}

func TestPageCacheDirtyPagesCleans(t *testing.T) {
	c := newPageCache(10*4096, 4096)
	c.insert(pageKey{1, 5}, true)
	c.insert(pageKey{1, 6}, true)
	c.insert(pageKey{1, 7}, false)
	if c.dirtyCount() != 2 {
		t.Errorf("dirtyCount = %d", c.dirtyCount())
	}
	d := c.dirtyPages()
	if len(d) != 2 {
		t.Fatalf("dirtyPages = %v", d)
	}
	if c.dirtyCount() != 0 {
		t.Error("dirtyPages did not clean")
	}
	if c.len() != 3 {
		t.Errorf("len = %d", c.len())
	}
}

func TestPageCacheDisabled(t *testing.T) {
	c := newPageCache(0, 4096)
	c.insert(pageKey{1, 0}, true)
	if c.lookup(pageKey{1, 0}) || c.len() != 0 {
		t.Error("disabled cache stored a page")
	}
}

func TestPlainWithElevatorMergesAdjacentWrites(t *testing.T) {
	r := newFSRig(t)
	cfg := Ext3Config()
	cfg.FlushInterval = 0
	cfg.UseElevator = true
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("a", 10<<20)
	// Eight adjacent buffered 4K writes, then Sync: the flusher coalesces
	// them into one run, and the elevator passes the merged command on.
	for i := int64(0); i < 8; i++ {
		f.Write(i*4096, 4096, false, func(error) {})
	}
	r.wait(t, func(done func(error)) { p.Sync(done) })
	var dataIOs, journalIOs int
	for _, io := range r.blockIOs() {
		if io.Cmd.LBA >= uint64(cfg.JournalBytes/512)+64 {
			dataIOs++
		} else {
			journalIOs++
		}
	}
	if dataIOs != 1 {
		t.Errorf("data I/Os = %d, want 1 merged 32K", dataIOs)
	}
	if journalIOs != 1 {
		t.Errorf("journal I/Os = %d", journalIOs)
	}
}

func TestPlainWithElevatorSyncWritesStillComplete(t *testing.T) {
	r := newFSRig(t)
	cfg := UFSConfig()
	cfg.UseElevator = true
	cfg.Elevator = DefaultElevatorConfig()
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("a", 1<<20)
	r.wait(t, func(done func(error)) { f.Write(0, 4096, true, done) })
	if len(r.blockIOs()) != 1 {
		t.Fatalf("I/Os: %d", len(r.blockIOs()))
	}
}

func TestZFSSnapshotPinsOldLayout(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	cfg.ARCBytes = 0 // all reads hit disk so locations are observable
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("vol", 10<<20)
	f.Prefill()

	snapper := z.(Snapshotter)
	r.wait(t, func(done func(error)) { snapper.TakeSnapshot("monday", done) })
	if got := snapper.Snapshots(); len(got) != 1 || got[0] != "monday" {
		t.Fatalf("Snapshots = %v", got)
	}

	// Record the pinned location of record 0, then overwrite it live.
	r.wait(t, func(done func(error)) { f.Read(0, 4096, done) })
	oldLBA := r.blockIOs()[len(r.blockIOs())-1].Cmd.LBA
	r.wait(t, func(done func(error)) { f.Write(0, 128<<10, false, done) })
	r.wait(t, func(done func(error)) { z.Sync(done) })

	// Live read goes to the relocated record...
	r.wait(t, func(done func(error)) { f.Read(0, 4096, done) })
	liveLBA := r.blockIOs()[len(r.blockIOs())-1].Cmd.LBA
	if liveLBA == oldLBA {
		t.Fatal("COW did not relocate the live record")
	}
	// ...while the snapshot still reads the pinned location.
	snapFile, err := snapper.OpenSnapshot("monday", "vol")
	if err != nil {
		t.Fatal(err)
	}
	r.wait(t, func(done func(error)) { snapFile.Read(0, 4096, done) })
	snapLBA := r.blockIOs()[len(r.blockIOs())-1].Cmd.LBA
	if snapLBA != oldLBA {
		t.Errorf("snapshot read at %d, want pinned %d", snapLBA, oldLBA)
	}
}

func TestZFSSnapshotReadOnlyAndErrors(t *testing.T) {
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	r, z := newZFSRig(t, cfg)
	f, _ := z.Create("vol", 1<<20)
	f.Prefill()
	snapper := z.(Snapshotter)
	r.wait(t, func(done func(error)) { snapper.TakeSnapshot("s1", done) })

	var dup error
	snapper.TakeSnapshot("s1", func(err error) { dup = err })
	for dup == nil && r.eng.Step() {
	}
	if !errors.Is(dup, ErrExists) {
		t.Errorf("duplicate snapshot: %v", dup)
	}
	if _, err := snapper.OpenSnapshot("ghost", "vol"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown snapshot: %v", err)
	}
	if _, err := snapper.OpenSnapshot("s1", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown file: %v", err)
	}
	sf, err := snapper.OpenSnapshot("s1", "vol")
	if err != nil {
		t.Fatal(err)
	}
	var wr error
	sf.Write(0, 4096, false, func(err error) { wr = err })
	if wr == nil {
		t.Error("snapshot writes must fail")
	}
	// A file created after the snapshot is absent from it.
	g, _ := z.Create("newer", 1<<20)
	g.Prefill()
	if _, err := snapper.OpenSnapshot("s1", "newer"); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-snapshot file visible: %v", err)
	}
}

func TestZFSCOWCursorWrapsAround(t *testing.T) {
	// A tiny disk forces the COW allocator to wrap; allocation must stay
	// in the data region and never panic.
	cfg := DefaultZFSConfig()
	cfg.TxgInterval = 0
	cfg.ZILBytes = 0
	cfg.ARCBytes = 0
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	disk := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d",
		CapacitySectors: 8192}) // 4 MB
	z := NewZFS(eng, disk, cfg)
	f, err := z.Create("vol", 1<<20) // 1 MB = 8 records
	if err != nil {
		t.Fatal(err)
	}
	f.Prefill()
	// Rewrite the whole file several times: each txg reallocates 8 records,
	// exceeding the 4 MB region and wrapping.
	for round := 0; round < 8; round++ {
		for rec := int64(0); rec < 8; rec++ {
			f.Write(rec*(128<<10), 128<<10, false, func(error) {})
		}
		var done bool
		z.Sync(func(error) { done = true })
		for !done && eng.Step() {
		}
		if !done {
			t.Fatal("txg stalled")
		}
	}
	if disk.Errored() != 0 {
		t.Errorf("wrap-around produced %d I/O errors", disk.Errored())
	}
}

func TestExt3JournalWrapsAround(t *testing.T) {
	r := newFSRig(t)
	cfg := Ext3Config()
	cfg.JournalBytes = 64 << 10 // 16 records of 4 KB
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("log", 10<<20)
	journalEnd := uint64(64 + cfg.JournalBytes/512)
	for i := 0; i < 40; i++ {
		r.wait(t, func(done func(error)) { f.Append(4096, true, done) })
	}
	// All journal writes stayed inside the journal region.
	for _, io := range r.blockIOs() {
		if io.Cmd.Op.IsWrite() && io.Cmd.LBA >= 64 && io.Cmd.LBA < journalEnd {
			if io.Cmd.LastLBA() >= journalEnd {
				t.Fatalf("journal write crossed the region: %v", io.Cmd)
			}
		}
	}
	if r.disk.Errored() != 0 {
		t.Errorf("journal wrap errors: %d", r.disk.Errored())
	}
}

func TestPageCacheEvictionWritesBackDirty(t *testing.T) {
	r := newFSRig(t)
	cfg := UFSConfig()
	cfg.PageCacheBytes = 8 * 8192 // 8 pages only
	cfg.FlushInterval = 0
	p := NewPlain(r.eng, r.disk, cfg)
	f, _ := p.Create("a", 10<<20)
	// Dirty 32 pages through a tiny cache: evictions must write back.
	for i := int64(0); i < 32; i++ {
		f.Write(i*8192, 8192, false, func(error) {})
	}
	r.eng.RunUntil(simclock.Second)
	writes := 0
	for _, io := range r.blockIOs() {
		if io.Cmd.Op.IsWrite() {
			writes++
		}
	}
	if writes < 20 {
		t.Errorf("eviction writeback too low: %d disk writes for 32 dirty pages", writes)
	}
}
