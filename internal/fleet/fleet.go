// Package fleet federates the characterization service across hosts. The
// paper instruments one ESX server at a time, but its histograms are
// constant-space and bin-exact under merge — counters add and identical bin
// layouts add bin-wise — which is exactly the property a multi-host rollup
// needs: a datacenter-wide seek-distance histogram is the bin-wise sum of
// every host's, with nothing lost to sampling or re-binning.
//
// The package has four parts:
//
//   - a versioned, length-prefixed, gzip-framed wire codec (wire.go) that
//     carries batches of core.Snapshot between processes;
//   - an Agent that periodically serializes a host's core.Registry and
//     pushes it to an aggregator, with per-request timeouts, exponential
//     backoff with jitter, a bounded retry queue and drop counters — and a
//     PullHandler so an aggregator can scrape it instead;
//   - an Aggregator that ingests pushes, scatter-gathers pulls from
//     registered agents concurrently, tracks per-host liveness/staleness,
//     and merges per-host snapshots into per-VM and cluster-wide views via
//     core.Aggregate (bin-exact, all/reads/writes preserved);
//   - a crash-safe segment log (log.go) that persists every state-changing
//     batch as raw wire frames under a data dir, replays them on boot
//     through the same strict apply rules (truncating a crash-torn tail
//     frame, refusing to start on corruption), compacts chains into full
//     frames, retires segments past a retention horizon, and answers
//     windowed histograms-over-time queries (history.go, /fleet/history).
//
// Failure model: agents and the aggregator are mutually untrusted over an
// unreliable network. A dead agent simply stops appearing: its last batch
// ages past the staleness horizon and drops out of the merged views — no
// aggregator-side error, no partial merge. A dead aggregator costs the
// agent nothing but a bounded retry queue; when the aggregator returns,
// queued batches drain oldest-first and the newest state wins (batches are
// cumulative, so dropping queued ones under pressure loses no information
// that the next push doesn't carry). Corrupt or adversarial input is
// rejected at decode (structural limits) and ingest (bin-layout
// validation) and can never panic the merge path.
package fleet

import (
	"context"
	"time"

	"vscsistats/internal/core"
)

// ContentType identifies the fleet frame format over HTTP.
const ContentType = "application/x-vscsistats-fleet"

// contextWithTimeout is context.WithTimeout from a background parent —
// every fleet request is bounded by its own deadline, not a caller's.
func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// refLayout is a reference snapshot from a fresh collector: the canonical
// bin layouts every ingested histogram must match for merging to be safe.
var refLayout = func() *core.Snapshot {
	c := core.NewCollector("", "")
	c.Enable()
	return c.Snapshot()
}()
