package fleet

import (
	"net/http"

	"vscsistats/internal/analysis"
)

// Fleet-scope workload classification — the paper's §7 automatic
// categorization applied to the aggregator's merged per-VM views instead
// of a single live collector. The aggregator holds a reference catalog
// (installed at construction via AggregatorConfig.Catalog or swapped live
// with SetCatalog); GET /fleet/catalog classifies every fresh VM against
// it. Classification reads the same memoized per-VM merges every other
// aggregator read uses, so the endpoint costs one catalog distance
// computation per VM and nothing on the ingest path.

// SetCatalog installs or replaces the reference catalog served by
// GET /fleet/catalog (nil uninstalls it). Safe to call while the
// aggregator ingests and serves.
func (g *Aggregator) SetCatalog(cat *analysis.Catalog) {
	g.catalog.Store(cat)
}

// Catalog returns the installed reference catalog (nil when none).
func (g *Aggregator) Catalog() *analysis.Catalog {
	return g.catalog.Load()
}

// CatalogScore is one reference's ranked similarity to a VM.
type CatalogScore struct {
	Name string `json:"name"`
	// Score is a distance in [0,1]: 0 identical shapes, 1 disjoint.
	Score float64 `json:"score"`
	// Components breaks the score down per metric (ioLength,
	// seekDistance, outstandingIOs, readFraction).
	Components map[string]float64 `json:"components,omitempty"`
}

// CatalogVM is one VM's classification against the reference catalog.
type CatalogVM struct {
	VM string `json:"vm"`
	// Personality is the closest reference's name, Distance its score.
	Personality string  `json:"personality"`
	Distance    float64 `json:"distance"`
	// Commands is the evidence: block I/Os behind the merged view.
	Commands int64 `json:"commands"`
	// Ranking is the full ordered reference list with per-metric
	// components; populated only for single-VM queries (?vm=NAME) to keep
	// whole-fleet responses proportional to the VM count.
	Ranking []CatalogScore `json:"ranking,omitempty"`
}

// CatalogResult is a fleet-wide classification, served by
// GET /fleet/catalog.
type CatalogResult struct {
	// References lists the catalog's reference names in insertion order.
	References []string `json:"references"`
	// VMs holds one classification per fresh VM, sorted by VM name.
	VMs []CatalogVM `json:"vms"`
	// Mix counts classified VMs per winning reference — the realized
	// workload population of the fleet.
	Mix map[string]int `json:"mix"`
	// Unclassified counts VMs whose merged view holds no block I/O yet
	// (nothing to classify; not an error).
	Unclassified int `json:"unclassified"`
}

// errNoCatalog is the 404 body for classification without a catalog.
const errNoCatalog = "no reference catalog installed (set AggregatorConfig.Catalog or call SetCatalog)"

// ClassifyVMs classifies every merged per-VM view against the installed
// catalog. A nil return with nil error means no catalog is installed.
func (g *Aggregator) ClassifyVMs(includeStale bool) *CatalogResult {
	cat := g.catalog.Load()
	if cat == nil {
		return nil
	}
	res := &CatalogResult{References: cat.Names(), Mix: make(map[string]int)}
	for _, s := range g.VMSnapshots(includeStale) {
		if s.Commands == 0 {
			res.Unclassified++
			continue
		}
		best, err := cat.Best(s)
		if err != nil {
			res.Unclassified++
			continue
		}
		res.VMs = append(res.VMs, CatalogVM{
			VM: s.VM, Personality: best.Name, Distance: best.Score, Commands: s.Commands,
		})
		res.Mix[best.Name]++
	}
	return res
}

// serveCatalog handles GET /fleet/catalog[?vm=NAME][&include_stale=1].
func (g *Aggregator) serveCatalog(w http.ResponseWriter, r *http.Request) {
	cat := g.catalog.Load()
	if cat == nil {
		fleetError(w, http.StatusNotFound, errNoCatalog)
		return
	}
	includeStale := r.URL.Query().Get("include_stale") == "1"
	if vm := r.URL.Query().Get("vm"); vm != "" {
		for _, s := range g.VMSnapshots(includeStale) {
			if s.VM != vm {
				continue
			}
			matches, err := cat.Classify(s)
			if err != nil {
				fleetError(w, http.StatusConflict, err.Error())
				return
			}
			out := CatalogVM{
				VM: vm, Personality: matches[0].Name, Distance: matches[0].Score,
				Commands: s.Commands, Ranking: make([]CatalogScore, len(matches)),
			}
			for i, m := range matches {
				out.Ranking[i] = CatalogScore{Name: m.Name, Score: m.Score, Components: m.Components}
			}
			writeFleetJSON(w, out)
			return
		}
		fleetError(w, http.StatusNotFound, "unknown vm")
		return
	}
	writeFleetJSON(w, g.ClassifyVMs(includeStale))
}
