package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vscsistats/internal/core"
)

// pushFull ingests reg's current state as a full batch for host at seq.
func pushFull(t *testing.T, g *Aggregator, host string, seq uint64, reg *core.Registry) {
	t.Helper()
	err := g.Ingest(&Batch{Host: host, Seq: seq, Snapshots: reg.Snapshots()}, "push")
	if err != nil {
		t.Fatalf("full ingest seq %d: %v", seq, err)
	}
}

// deltaBatch builds the wire delta from base to cur (both full snapshot
// slices of the same registry).
func deltaBatch(t *testing.T, host string, seq, baseSeq uint64, base, cur []*core.Snapshot) *Batch {
	t.Helper()
	deltas, ok := subAgainst(cur, base)
	if !ok {
		t.Fatal("disk sets diverged between base and cur")
	}
	return &Batch{Host: host, Seq: seq, BaseSeq: baseSeq, Delta: true, Snapshots: deltas}
}

// TestDeltaChainReassemblesExactly is the core delta-protocol property: a
// full push followed by a chain of interval deltas leaves the aggregator
// holding exactly the registry's final state — bin for bin, every metric,
// every class — indistinguishable from one big full push.
func TestDeltaChainReassemblesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 4})
	reg := makeRegistry(1, 2, 2, 200)
	cols := reg.List()

	base := reg.Snapshots()
	pushFull(t, g, "esx-a", 1, reg)
	for seq := uint64(2); seq <= 12; seq++ {
		// Touch a random subset of disks; untouched ones exercise the
		// omit-unchanged path.
		for _, col := range cols {
			if rng.Intn(2) == 0 {
				feed(col, int(seq)*13+rng.Intn(50), 30+rng.Intn(100))
			}
		}
		cur := reg.Snapshots()
		if err := g.Ingest(deltaBatch(t, "esx-a", seq, seq-1, base, cur), "push"); err != nil {
			t.Fatalf("delta ingest seq %d: %v", seq, err)
		}
		base = cur
	}

	want := reg.HostSnapshot()
	if got := g.ClusterSnapshot(false); !sameSnapshot(got, want) {
		t.Error("delta-reassembled cluster state diverged from the registry")
	}
	st := g.Stats()
	if st.DeltasApplied != 11 || st.Resyncs != 0 {
		t.Errorf("deltas applied/resyncs = %d/%d, want 11/0", st.DeltasApplied, st.Resyncs)
	}
}

// TestDeltaSeqGapForcesResync pins the gap rule: a delta whose base is not
// exactly the stored sequence is refused with ErrResyncRequired — applying
// it would silently double or drop an interval.
func TestDeltaSeqGapForcesResync(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	reg := makeRegistry(2, 1, 1, 100)
	base := reg.Snapshots()
	pushFull(t, g, "esx-b", 1, reg)

	feed(reg.List()[0], 900, 50)
	mid := reg.Snapshots()
	feed(reg.List()[0], 901, 50)
	cur := reg.Snapshots()

	// The seq-2 delta is lost; seq 3 arrives building on 2.
	err := g.Ingest(deltaBatch(t, "esx-b", 3, 2, mid, cur), "push")
	if err == nil || !errorsIsResync(err) {
		t.Fatalf("gap delta: err = %v, want ErrResyncRequired", err)
	}
	// State is untouched by the refused delta.
	if got := g.ClusterSnapshot(false); !sameSnapshot(got, core.Aggregate("cluster", "*", base...)) {
		t.Error("refused delta mutated stored state")
	}
	// The in-order delta still applies afterwards.
	if err := g.Ingest(deltaBatch(t, "esx-b", 2, 1, base, mid), "push"); err != nil {
		t.Fatalf("in-order delta after refused gap: %v", err)
	}
	if g.Stats().Resyncs != 1 {
		t.Errorf("resyncs = %d, want 1", g.Stats().Resyncs)
	}
}

// TestDeltaUnknownHostForcesResync pins the restart rule: a delta for a
// host the aggregator has no state for (it restarted and lost everything)
// is a resync condition, and the HTTP surface maps it to 409.
func TestDeltaUnknownHostForcesResync(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	reg := makeRegistry(3, 1, 1, 100)
	base := reg.Snapshots()
	feed(reg.List()[0], 77, 50)

	b := deltaBatch(t, "esx-c", 2, 1, base, reg.Snapshots())
	if err := g.Ingest(b, "push"); err == nil || !errorsIsResync(err) {
		t.Fatalf("delta for unknown host: err = %v, want ErrResyncRequired", err)
	}

	srv := httptest.NewServer(g)
	defer srv.Close()
	body, err := EncodeBatchBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/fleet/push", ContentType, bytesReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("push of unappliable delta: status %d, want 409", resp.StatusCode)
	}
}

// TestDeltaDuplicateDeliveryIdempotent pins retry safety: redelivering an
// already-applied delta (its ack was lost in flight) refreshes liveness and
// changes nothing else — the interval is not folded in twice.
func TestDeltaDuplicateDeliveryIdempotent(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	reg := makeRegistry(4, 1, 2, 150)
	base := reg.Snapshots()
	pushFull(t, g, "esx-d", 1, reg)
	feed(reg.List()[0], 31, 80)
	cur := reg.Snapshots()

	d := deltaBatch(t, "esx-d", 2, 1, base, cur)
	for i := 0; i < 3; i++ {
		if err := g.Ingest(d, "push"); err != nil {
			t.Fatalf("delivery %d of the same delta: %v", i+1, err)
		}
	}
	want := core.Aggregate("cluster", "*", cur...)
	if got := g.ClusterSnapshot(false); !sameSnapshot(got, want) {
		t.Error("duplicate delta delivery changed stored state")
	}
	st := g.Stats()
	if st.DeltasApplied != 1 || st.Duplicates != 2 {
		t.Errorf("applied/duplicates = %d/%d, want 1/2", st.DeltasApplied, st.Duplicates)
	}
}

// TestShardedMergeMatchesMonolithic is the two-level-merge exactness
// property: the same batches fed to a 8-shard aggregator and to a Shards=1
// uncached one (the former single-mutex design) produce bin-identical
// cluster and per-VM views.
func TestShardedMergeMatchesMonolithic(t *testing.T) {
	sharded := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 8})
	mono := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 1, DisableMergeCache: true})
	for i := 0; i < 12; i++ {
		reg := makeRegistry(i, 2, 2, 100+i*20)
		b := &Batch{Host: "esx-" + string(rune('a'+i)), Seq: 1, Snapshots: reg.Snapshots()}
		for _, g := range []*Aggregator{sharded, mono} {
			if err := g.Ingest(b, "push"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sameSnapshot(sharded.ClusterSnapshot(false), mono.ClusterSnapshot(false)) {
		t.Error("sharded cluster merge diverged from monolithic")
	}
	sv, mv := sharded.VMSnapshots(false), mono.VMSnapshots(false)
	if len(sv) != len(mv) {
		t.Fatalf("per-VM merge count: sharded %d, mono %d", len(sv), len(mv))
	}
	for i := range sv {
		if sv[i].VM != mv[i].VM || !sameSnapshot(sv[i], mv[i]) {
			t.Errorf("per-VM merge %q diverged between sharded and monolithic", mv[i].VM)
		}
	}
	// The 12 hosts actually spread across shards — the hash isn't degenerate.
	var populated int
	for _, s := range sharded.Shards() {
		if s.Hosts > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("12 hosts landed on %d of 8 shards", populated)
	}
}

// TestMergeCacheHitsAndInvalidation pins the memoization contract: repeated
// scrapes of an unchanged shard hit the cache, any ingest invalidates it,
// and the cached view stays bin-exact with a cold merge.
func TestMergeCacheHitsAndInvalidation(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 2})
	reg := makeRegistry(5, 2, 1, 200)
	pushFull(t, g, "esx-e", 1, reg)

	first := g.ClusterSnapshot(false)
	for i := 0; i < 5; i++ {
		if got := g.ClusterSnapshot(false); !sameSnapshot(got, first) {
			t.Fatal("cached scrape diverged")
		}
	}
	st := g.Stats()
	if st.MergeCacheHits < 4 {
		t.Errorf("merge cache hits = %d after 6 identical scrapes, want >= 4", st.MergeCacheHits)
	}
	missesBefore := st.MergeCacheMisses

	// New state must invalidate: the next scrape re-merges and sees it.
	feed(reg.List()[0], 123, 60)
	pushFull(t, g, "esx-e", 2, reg)
	want := reg.HostSnapshot()
	if got := g.ClusterSnapshot(false); !sameSnapshot(got, want) {
		t.Error("scrape after ingest returned stale cached state")
	}
	if g.Stats().MergeCacheMisses <= missesBefore {
		t.Error("ingest did not invalidate the merge cache")
	}
}

// TestAgentDeltaPushesEndToEnd drives the real agent against a real
// aggregator over HTTP: after the first full push every quiet interval goes
// out as a (much smaller) delta, and the aggregator's view tracks the
// registry exactly the whole way.
func TestAgentDeltaPushesEndToEnd(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour})
	reg := makeRegistry(6, 2, 2, 300)
	a := NewAgent(reg, AgentConfig{Host: "esx-f", Endpoint: as.pushURL()})

	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		feed(reg.List()[i%len(reg.List())], 500+i, 40)
		if err := a.PushNow(); err != nil {
			t.Fatalf("push %d: %v", i+2, err)
		}
		if got := as.agg.ClusterSnapshot(false); !sameSnapshot(got, reg.HostSnapshot()) {
			t.Fatalf("aggregator view diverged from registry after push %d", i+2)
		}
	}
	st := a.Stats()
	if st.DeltaPushes != 6 {
		t.Errorf("delta pushes = %d, want 6 (every push after the first)", st.DeltaPushes)
	}
	if st.Resyncs != 0 || as.failures.Load() != 0 {
		t.Errorf("healthy delta chain saw resyncs=%d, http failures=%d", st.Resyncs, as.failures.Load())
	}
	if as.agg.Stats().DeltasApplied != 6 {
		t.Errorf("aggregator applied %d deltas, want 6", as.agg.Stats().DeltasApplied)
	}

	// DisableDeltas really disables them.
	full := NewAgent(reg, AgentConfig{Host: "esx-full", Endpoint: as.pushURL(), DisableDeltas: true})
	full.PushNow()
	feed(reg.List()[0], 999, 40)
	full.PushNow()
	if st := full.Stats(); st.DeltaPushes != 0 || st.Pushes != 2 {
		t.Errorf("DisableDeltas agent stats: %+v", st)
	}
}

// TestAgentResyncsAfterAggregatorRestart is the recovery path end to end:
// the aggregator process is replaced mid-chain (all state lost), the
// agent's next delta gets a 409, and the very same PushNow call recovers by
// re-sending full state — callers never see the hiccup.
func TestAgentResyncsAfterAggregatorRestart(t *testing.T) {
	var agg atomic.Pointer[Aggregator]
	agg.Store(NewAggregator(AggregatorConfig{StaleAfter: time.Hour}))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		agg.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := makeRegistry(7, 1, 2, 200)
	a := NewAgent(reg, AgentConfig{Host: "esx-g", Endpoint: srv.URL + "/fleet/push"})
	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	feed(reg.List()[0], 800, 50)
	if err := a.PushNow(); err != nil { // establishes the delta chain
		t.Fatal(err)
	}

	// Restart: a brand-new aggregator with no memory of esx-g.
	agg.Store(NewAggregator(AggregatorConfig{StaleAfter: time.Hour}))
	feed(reg.List()[1], 801, 50)
	if err := a.PushNow(); err != nil {
		t.Fatalf("push across aggregator restart: %v", err)
	}
	if got := agg.Load().ClusterSnapshot(false); !sameSnapshot(got, reg.HostSnapshot()) {
		t.Error("post-restart state diverged from the registry")
	}
	st := a.Stats()
	if st.Resyncs != 1 {
		t.Errorf("agent resyncs = %d, want 1", st.Resyncs)
	}
	// The chain re-established: the next push is a delta again.
	feed(reg.List()[0], 802, 50)
	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().DeltaPushes; got != st.DeltaPushes+1 {
		t.Errorf("delta chain not re-established after resync: %d -> %d delta pushes", st.DeltaPushes, got)
	}
}

// TestAgentBuildBatchNeverBlocksOnSlowAggregator pins the builder/flusher
// split: with a push stuck in flight against a hung aggregator, the ticker
// keeps capturing — the capture sequence advances while the network does
// not. (Before the split, capture and delivery shared one lock and one
// goroutine, so a hung aggregator froze capture too.)
func TestAgentBuildBatchNeverBlocksOnSlowAggregator(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(inFlight) })
		<-release
		http.Error(w, "too late", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	reg := makeRegistry(8, 1, 1, 50)
	a := NewAgent(reg, AgentConfig{
		Host: "esx-h", Endpoint: srv.URL,
		Interval: 2 * time.Millisecond, Timeout: 30 * time.Second, MaxRetryQueue: 1024,
	})
	a.Start()
	defer a.Stop()
	defer close(release) // LIFO: unhang the handler before Stop waits on the flusher

	<-inFlight // one push is now hung inside the aggregator
	seqBefore := a.seq.Load()
	waitFor(t, 2*time.Second, func() bool { return a.seq.Load() >= seqBefore+5 })
	if st := a.Stats(); st.Pushes != 0 {
		t.Errorf("pushes completed while the aggregator was hung: %+v", st)
	}
}

// TestPullAllBoundedConcurrency pins the pull pool: however many hosts are
// watched, at most PullConcurrency scrapes are in flight at once.
func TestPullAllBoundedConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	// The handler leaves Host empty so pullOne names each batch after the
	// watched host — one shared server stands in for a 16-host fleet.
	snaps := makeRegistry(9, 1, 1, 50).Snapshots()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // hold the slot so overlap is observable
		EncodeBatch(w, &Batch{Seq: 1, Snapshots: snaps})
	}))
	defer srv.Close()

	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, PullConcurrency: limit})
	for i := 0; i < 16; i++ {
		g.Watch("esx-"+string(rune('a'+i)), srv.URL)
	}
	if errs := g.PullAll(); len(errs) != 0 {
		t.Fatalf("pull errors: %v", errs)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("pull concurrency peaked at %d, limit %d", p, limit)
	}
	if got := len(g.Hosts()); got != 16 {
		t.Errorf("hosts after PullAll: %d, want 16", got)
	}
}

// TestPullLoopScrapesEveryHostWithPhases runs the phased pull schedule for
// a couple of intervals and checks every watched host was scraped; it also
// pins that the phase hash actually spreads hosts over multiple slots
// rather than herding them onto one.
func TestPullLoopScrapesEveryHostWithPhases(t *testing.T) {
	snaps := makeRegistry(10, 1, 1, 50).Snapshots()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		EncodeBatch(w, &Batch{Seq: 1, Snapshots: snaps})
	}))
	defer srv.Close()

	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	slots := map[int]bool{}
	for i := 0; i < 12; i++ {
		host := "esx-" + string(rune('a'+i))
		g.Watch(host, srv.URL)
		slots[pullSlot(host)] = true
	}
	if len(slots) < 3 {
		t.Errorf("12 hosts hashed onto %d pull slots — no phase spread", len(slots))
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); g.PullLoop(stop, 64*time.Millisecond) }()
	waitFor(t, 2*time.Second, func() bool { return len(g.Hosts()) == 12 })
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("PullLoop did not stop")
	}
}

// TestShardsEndpoint exercises GET /fleet/shards: the per-shard listing and
// the ?host= routing answer, which must agree with ShardFor.
func TestShardsEndpoint(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 4})
	reg := makeRegistry(11, 1, 1, 50)
	pushFull(t, g, "esx-x", 1, reg)
	srv := httptest.NewServer(g)
	defer srv.Close()

	var shards []ShardStatus
	getJSON(t, srv.URL+"/fleet/shards", &shards)
	if len(shards) != 4 {
		t.Fatalf("shards listed: %d, want 4", len(shards))
	}
	var total int
	for _, s := range shards {
		total += s.Hosts
	}
	if total != 1 {
		t.Errorf("hosts across shards = %d, want 1", total)
	}

	var route struct {
		Host   string `json:"host"`
		Shard  int    `json:"shard"`
		Shards int    `json:"shards"`
	}
	getJSON(t, srv.URL+"/fleet/shards?host=esx-x", &route)
	if route.Shard != g.ShardFor("esx-x") || route.Shards != 4 {
		t.Errorf("routing answer %+v disagrees with ShardFor=%d", route, g.ShardFor("esx-x"))
	}
	if shards[route.Shard].Hosts != 1 {
		t.Errorf("host not on its routed shard %d: %+v", route.Shard, shards)
	}
}

// --- small helpers ---

func errorsIsResync(err error) bool { return errorsIs(err, ErrResyncRequired) }

// errorsIs avoids importing errors twice in editors that fold imports; it
// is just errors.Is.
func errorsIs(err, target error) bool { return errors.Is(err, target) }

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// getJSON fetches url and decodes the JSON body into v, failing the test on
// any error or non-200.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
