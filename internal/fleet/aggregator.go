package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/analysis"
	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
	"vscsistats/internal/telemetry"
)

// ErrResyncRequired reports a delta batch the aggregator cannot apply: the
// host is unknown (aggregator restart), the delta's base sequence does not
// match the stored sequence (a dropped batch opened a gap), or the delta
// names a disk with no base state. The HTTP surface maps it to 409; an
// agent that sees it falls back to a full-state push, which always
// succeeds and re-establishes the chain.
var ErrResyncRequired = errors.New("fleet: resync required")

// pullSlots is the number of phase buckets PullLoop spreads watched hosts
// across within one interval.
const pullSlots = 32

// AggregatorConfig tunes a fleet aggregator. Zero values take the
// documented defaults.
type AggregatorConfig struct {
	// StaleAfter is the liveness horizon: a host whose newest batch is
	// older than this drops out of the merged views and is reported stale
	// (default 10s; set it to a small multiple of the agents' push
	// interval).
	StaleAfter time.Duration
	// Shards splits the host space into independent slices by consistent
	// host-name hash (default 16, clamped to [1, 4096]). Each shard has
	// its own lock, host map and merge cache, so ingest scales across
	// cores and a scrape re-merges only the shards that changed. Shards=1
	// reproduces the former single-mutex aggregator.
	Shards int
	// DisableMergeCache turns off per-shard merge memoization. The cache
	// is bin-exact, so this exists only for benchmarks (measuring the
	// uncached cost) and debugging.
	DisableMergeCache bool
	// PullTimeout bounds each scatter-gather pull request (default 2s).
	PullTimeout time.Duration
	// PullConcurrency bounds how many pulls are in flight at once, for
	// PullAll and PullLoop both (default 16). A slow fleet backs pressure
	// up into the pull schedule instead of spawning a goroutine per host.
	PullConcurrency int
	// Client overrides the HTTP client used for pulls.
	Client *http.Client

	// DataDir, when set, enables the segment log: every state-changing
	// batch is appended to per-shard segment files under this directory,
	// and OpenAggregator replays them on boot so a restart recovers the
	// fleet without waiting for agents to resync. Empty (the default)
	// keeps the aggregator memory-only.
	DataDir string
	// Retention drops sealed log segments whose newest frame is older
	// than this, swept at each segment rotation (default 0: keep
	// everything). The unit of forgetting is a whole segment, so history
	// reaches back at least Retention and at most Retention plus one
	// segment's span.
	Retention time.Duration
	// SyncInterval batches log fsyncs: an append syncs only when this
	// much time passed since the last sync (default 100ms; negative
	// syncs every append). Process death loses nothing either way —
	// written bytes survive in the page cache — the interval only bounds
	// the window a power failure can take.
	SyncInterval time.Duration
	// SegmentBytes rotates the active log segment once it reaches this
	// size (default 4 MiB).
	SegmentBytes int64
	// CompactSegments rewrites a shard's log chain as one segment of
	// full frames once its sealed-segment count reaches this (default 8;
	// negative disables compaction).
	CompactSegments int

	// Catalog, when set, is the reference catalog GET /fleet/catalog
	// classifies merged per-VM views against (paper §7 at fleet scope).
	// SetCatalog installs or replaces it on a live aggregator.
	Catalog *analysis.Catalog

	// Obs, when set, receives per-stage latency samples (decode, lock
	// wait, shard ingest, merge recompute, log append, fsync, compaction,
	// replay, history) and structural pipeline events (pushes, resyncs
	// with cause, rotations, retention drops, compaction begin/commit,
	// torn-tail truncations, the replay summary). Hot ingest-path timing
	// is sampled 1-in-N per the tracker's config; events are not. Nil
	// disables aggregator-side observability.
	Obs *fleetobs.Tracker
}

func (c *AggregatorConfig) withDefaults() AggregatorConfig {
	out := *c
	if out.StaleAfter <= 0 {
		out.StaleAfter = 10 * time.Second
	}
	if out.Shards <= 0 {
		out.Shards = 16
	}
	if out.Shards > 4096 {
		out.Shards = 4096
	}
	if out.PullTimeout <= 0 {
		out.PullTimeout = 2 * time.Second
	}
	if out.PullConcurrency <= 0 {
		out.PullConcurrency = 16
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// hostState is the aggregator's record of one host.
type hostState struct {
	host         string
	source       string // "push" or "pull"
	seq          uint64
	sentUnixNano int64
	lastSeen     time.Time
	batches      int64
	snaps        []*core.Snapshot
	// boot is the sender's incarnation (0 for pre-federation senders): a
	// full batch from a different incarnation replaces state even at a
	// lower sequence, and a delta from one is refused with boot-changed.
	boot uint64
	// level and leaves are the sender's federation metadata: its height
	// in the tree and how many leaf hosts its state folds together.
	level  int
	leaves int
}

// Aggregator accepts pushed batches (full or delta), scatter-gathers pulls
// from registered agents, tracks per-host liveness, and merges per-host
// snapshots into per-VM and cluster-wide histograms. Hosts are sharded by
// consistent name hash into independent slices, merged two-level: each
// shard folds its own hosts (memoized until they change), then the shard
// merges fold at the edge — bin-exactness makes the second level free. All
// methods are safe for concurrent use: any number of HTTP goroutines can
// ingest while others read merged views.
type Aggregator struct {
	cfg AggregatorConfig
	// now is the wall clock, injectable for deterministic staleness tests.
	now func() time.Time

	shards []*shard

	// log is the crash-safe segment log, nil when DataDir is unset. iomu
	// serializes {shard ingest, log append} per shard so the log's frame
	// order matches the order states were applied — without it two
	// concurrent batches for one host could apply in one order and land
	// on disk in the other, and a replay of that log would diverge.
	log  *segmentLog
	iomu []sync.Mutex

	pmu   sync.RWMutex
	pulls map[string]string // host -> pull URL

	// catalog is the swappable §7 reference catalog (see catalog.go).
	catalog atomic.Pointer[analysis.Catalog]

	rejected   atomic.Int64
	pullErrors atomic.Int64
	recvBytes  atomic.Int64
	// layoutMismatch counts delta batches refused because their histogram
	// layout failed validation — the one resync cause detected at the
	// aggregator (Validate) rather than in the shard.
	layoutMismatch atomic.Int64
}

// NewAggregator builds an empty aggregator.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	g := &Aggregator{
		cfg:   cfg.withDefaults(),
		now:   time.Now,
		pulls: make(map[string]string),
	}
	g.shards = make([]*shard, g.cfg.Shards)
	for i := range g.shards {
		g.shards[i] = newShard(i, g.cfg.Obs)
	}
	g.iomu = make([]sync.Mutex, g.cfg.Shards)
	g.catalog.Store(cfg.Catalog)
	return g
}

// ReplayStats summarizes one boot replay of the segment log.
type ReplayStats struct {
	// Frames is how many whole frames the log held; Skipped counts the
	// ones that decoded but could not apply (deltas whose base fell to
	// retention or compaction, or frames from an incompatible histogram
	// layout) — lost information, never wrong information.
	Frames  int64 `json:"frames"`
	Skipped int64 `json:"skipped"`
	// TornTails counts segment chains whose last frame was cut short by a
	// crash mid-write and truncated back to the last whole frame.
	TornTails int `json:"torn_tails"`
	// Hosts is how many hosts the replay recovered.
	Hosts int `json:"hosts"`
	// Duration is the wall time the replay took.
	Duration time.Duration `json:"duration_ns"`
}

// OpenAggregator builds an aggregator backed by the segment log under
// cfg.DataDir: existing segments are replayed through the same strict
// apply rules live ingest uses (fulls never roll back, deltas apply only
// on their exact base), a torn tail frame on any chain's newest segment is
// truncated away, and every subsequent state-changing batch is appended.
// Replayed hosts keep their recorded send time as their liveness time, so
// staleness after a restart means what it always means. With an empty
// DataDir this is exactly NewAggregator. Any other decode failure in the
// log — wrong magic, bad compression, mangled JSON — refuses to open
// rather than serve numbers the log contradicts.
func OpenAggregator(cfg AggregatorConfig) (*Aggregator, ReplayStats, error) {
	g := NewAggregator(cfg)
	if g.cfg.DataDir == "" {
		return g, ReplayStats{}, nil
	}
	l, err := openSegmentLog(logConfig{
		dir:             g.cfg.DataDir,
		segmentBytes:    g.cfg.SegmentBytes,
		syncInterval:    g.cfg.SyncInterval,
		retention:       g.cfg.Retention,
		compactSegments: g.cfg.CompactSegments,
		obs:             g.cfg.Obs,
	}, g.cfg.Shards)
	if err != nil {
		return nil, ReplayStats{}, err
	}
	start := time.Now()
	var st ReplayStats
	var lst replayStats
	// Label the replay for pprof so boot-recovery CPU attributes to the
	// pipeline stage, not to an anonymous OpenAggregator frame.
	pprof.Do(context.Background(), pprof.Labels("stage", "replay"), func(context.Context) {
		lst, err = l.replay(func(dirIdx int, b *Batch) error {
			st.Frames++
			if verr := b.Validate(); verr != nil {
				// The frame decoded but its histogram layout is not ours —
				// a log written by a different binary generation. Skip it:
				// the data is unusable here, not evidence of corruption.
				st.Skipped++
				return nil
			}
			if _, ierr := g.shardOf(b.Host).ingest(b, "log", time.Unix(0, b.SentUnixNano)); ierr != nil {
				if errors.Is(ierr, ErrResyncRequired) {
					st.Skipped++
					return nil
				}
				return ierr
			}
			return nil
		})
	})
	if err != nil {
		return nil, ReplayStats{}, err
	}
	st.TornTails = lst.tornTails
	g.log = l
	if len(l.orphans) > 0 {
		// The shard count shrank since the log was written: the orphan
		// dirs' hosts replayed fine (routing is by host hash, never by
		// dir), but their frames must move home. Rewrite every current
		// shard's chain from live state, then drop the orphan dirs.
		if err := g.CompactLog(); err != nil {
			return nil, ReplayStats{}, err
		}
		l.removeOrphans()
	}
	st.Hosts = len(g.Hosts())
	st.Duration = time.Since(start)
	g.cfg.Obs.Observe(fleetobs.StageReplay, st.Duration, fleetobs.Event{Shard: -1})
	g.cfg.Obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindReplay, Scope: "aggregator", Shard: -1,
		DurationNanos: int64(st.Duration),
		Detail: fmt.Sprintf("frames=%d skipped=%d torn_tails=%d hosts=%d",
			st.Frames, st.Skipped, st.TornTails, st.Hosts),
	})
	return g, st, nil
}

// NumShards returns the aggregator's shard count.
func (g *Aggregator) NumShards() int { return len(g.shards) }

// ShardFor returns the shard index the host routes to — FNV-1a of the
// name modulo the shard count, so any party knowing the count computes
// the same answer.
func (g *Aggregator) ShardFor(host string) int {
	return int(shardHash(host) % uint32(len(g.shards)))
}

func (g *Aggregator) shardOf(host string) *shard {
	return g.shards[g.ShardFor(host)]
}

// Ingest records a validated batch as the host's newest state. Full
// batches older than the newest sequence already seen refresh liveness but
// leave the stored snapshots alone, so a late-arriving retry never rolls a
// host backwards. Delta batches apply onto the stored state when their
// base sequence matches exactly and return ErrResyncRequired otherwise.
//
// With a segment log open, every state-changing batch is also appended to
// the host's shard chain, serialized with the apply so disk order matches
// apply order. A log write failure (disk full, I/O error) is counted and
// absorbed rather than failing the ingest: the batch is already applied in
// memory, and an aggregator that keeps serving beats one that refuses the
// fleet because its disk filled.
func (g *Aggregator) Ingest(b *Batch, source string) error {
	// Deterministic per-host sampling (1 in SampleEvery of each host's
	// sequence numbers): stateless, so the tracker costs the memory-path
	// ingest no atomic on unsampled batches.
	return g.ingest(b, source, g.cfg.Obs.SampleAt(b.Seq))
}

// ingest is Ingest with the hot-path sampling decision hoisted out:
// servePush makes one Sample() call covering decode and ingest, so a
// sampled push times every stage of its trip and an unsampled one pays
// nothing beyond the decision itself.
func (g *Aggregator) ingest(b *Batch, source string, sampled bool) error {
	if err := b.Validate(); err != nil {
		if b.Delta {
			// A delta whose histograms fail validation is version skew
			// between sender and receiver, not a malformed request: asking
			// for a full-state resync gives the sender a road forward
			// (and the full push's validation failure, if any, stays 400).
			g.layoutMismatch.Add(1)
			rerr := resyncErr(ResyncLayoutMismatch, "%v", err)
			g.noteResyncEvent(b, rerr)
			return rerr
		}
		g.rejected.Add(1)
		return err
	}
	idx := g.ShardFor(b.Host)
	if g.log == nil {
		var ingestStart time.Time
		if sampled {
			ingestStart = time.Now()
		}
		_, err := g.shards[idx].ingest(b, source, g.now())
		if sampled {
			g.observeStage(fleetobs.StageIngest, time.Since(ingestStart), b, idx)
		}
		g.noteResyncEvent(b, err)
		return err
	}
	var lockStart time.Time
	if sampled {
		lockStart = time.Now()
	}
	g.iomu[idx].Lock()
	if sampled {
		g.observeStage(fleetobs.StageLockWait, time.Since(lockStart), b, idx)
	}
	var ingestStart time.Time
	if sampled {
		ingestStart = time.Now()
	}
	applied, err := g.shards[idx].ingest(b, source, g.now())
	if sampled {
		g.observeStage(fleetobs.StageIngest, time.Since(ingestStart), b, idx)
	}
	var rotated bool
	if err == nil && applied {
		if data, eerr := EncodeBatchBytes(b); eerr != nil {
			g.log.appendErrs.Add(1)
		} else {
			var appendStart time.Time
			if sampled {
				appendStart = time.Now()
			}
			if rotated, eerr = g.log.append(idx, data, b.SentUnixNano, g.now()); eerr != nil {
				rotated = false
			}
			if sampled {
				g.observeStage(fleetobs.StageLogAppend, time.Since(appendStart), b, idx)
			}
		}
	}
	g.iomu[idx].Unlock()
	if rotated && g.log.needsCompaction(idx) {
		// Best-effort: a failed compaction leaves the chain long but
		// whole; the next rotation retries.
		pprof.Do(context.Background(),
			pprof.Labels("stage", "compaction", "shard", strconv.Itoa(idx)),
			func(context.Context) {
				g.log.compact(idx, g.shards[idx].fullBatches, g.now())
			})
	}
	g.noteResyncEvent(b, err)
	return err
}

// observeStage records one sampled stage span carrying the batch's
// trace identity.
func (g *Aggregator) observeStage(st fleetobs.Stage, d time.Duration, b *Batch, shard int) {
	g.cfg.Obs.Observe(st, d, fleetobs.Event{
		Host: b.Host, TraceID: b.TraceID, BatchSeq: b.Seq, Shard: shard,
	})
}

// noteResyncEvent emits a KindResync event with its typed cause when
// err is a resync refusal (no-op otherwise). Resyncs are structural —
// a storm of them is the thing this layer exists to explain — so they
// are never sampled.
func (g *Aggregator) noteResyncEvent(b *Batch, err error) {
	if err == nil || !errors.Is(err, ErrResyncRequired) {
		return
	}
	g.cfg.Obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindResync, Scope: "aggregator",
		Host: b.Host, TraceID: b.TraceID, BatchSeq: b.Seq,
		Shard: g.ShardFor(b.Host), Cause: string(resyncCauseOf(err)),
	})
}

// Close syncs and closes the segment log's open files; a no-op for a
// memory-only aggregator. The aggregator itself stays usable — only
// further appends would reopen files — but callers should treat Close as
// the end of the aggregator's life.
func (g *Aggregator) Close() error {
	if g.log == nil {
		return nil
	}
	return g.log.close()
}

// CompactLog rewrites every shard's log chain as one segment of full
// frames, one per host — the operation rotation triggers automatically
// once a chain exceeds CompactSegments, exposed for tests and operational
// forcing. No-op without a log.
func (g *Aggregator) CompactLog() error {
	if g.log == nil {
		return nil
	}
	var first error
	for i := range g.shards {
		if err := g.log.compact(i, g.shards[i].fullBatches, g.now()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Forget removes a host from the aggregator (and its pull registration).
func (g *Aggregator) Forget(host string) {
	g.shardOf(host).forget(host)
	g.pmu.Lock()
	delete(g.pulls, host)
	g.pmu.Unlock()
}

// Watch registers an agent's pull endpoint (its PullHandler URL) so
// PullAll and PullLoop scrape it. Watching a host that also pushes is
// harmless — the newest sequence wins either way.
func (g *Aggregator) Watch(host, url string) {
	g.pmu.Lock()
	defer g.pmu.Unlock()
	g.pulls[host] = url
}

func (g *Aggregator) pullTargets() map[string]string {
	g.pmu.RLock()
	defer g.pmu.RUnlock()
	targets := make(map[string]string, len(g.pulls))
	for h, u := range g.pulls {
		targets[h] = u
	}
	return targets
}

// PullAll scrapes every watched endpoint, at most PullConcurrency in
// flight at once, each bounded by PullTimeout, and ingests what it gets.
// It returns the per-host errors (empty map when every pull succeeded).
func (g *Aggregator) PullAll() map[string]error {
	var (
		wg   sync.WaitGroup
		errs = make(map[string]error)
		emu  sync.Mutex
		sem  = make(chan struct{}, g.cfg.PullConcurrency)
	)
	for host, url := range g.pullTargets() {
		sem <- struct{}{}
		wg.Add(1)
		go func(host, url string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := g.pullOne(host, url); err != nil {
				g.pullErrors.Add(1)
				emu.Lock()
				errs[host] = err
				emu.Unlock()
			}
		}(host, url)
	}
	wg.Wait()
	return errs
}

// PullLoop scrapes every watched host once per interval until stop closes.
// Each host is assigned a deterministic phase within the interval (a hash
// of its name over pullSlots buckets), so a large fleet's pulls arrive as
// a steady trickle across the whole interval instead of a thundering herd
// at each boundary; in-flight pulls are bounded by PullConcurrency, and
// when the fleet is slower than the schedule, the schedule waits (ticks
// are dropped) rather than piling up goroutines. Hosts Watch()ed while
// the loop runs join the schedule on their next phase.
func (g *Aggregator) PullLoop(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	slotD := interval / pullSlots
	if slotD <= 0 {
		slotD = time.Millisecond
	}
	tick := time.NewTicker(slotD)
	defer tick.Stop()
	sem := make(chan struct{}, g.cfg.PullConcurrency)
	var wg sync.WaitGroup
	defer wg.Wait()
	for slot := 0; ; slot = (slot + 1) % pullSlots {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		for host, url := range g.pullTargets() {
			if pullSlot(host) != slot {
				continue
			}
			select {
			case sem <- struct{}{}:
			case <-stop:
				return
			}
			wg.Add(1)
			go func(host, url string) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := g.pullOne(host, url); err != nil {
					g.pullErrors.Add(1)
				}
			}(host, url)
		}
	}
}

// pullOne scrapes one agent and ingests the batch.
func (g *Aggregator) pullOne(host, url string) error {
	ctx, cancel := contextWithTimeout(g.cfg.PullTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: pull %s returned %s", host, resp.Status)
	}
	// Bound the pull body exactly like push's MaxBytesReader: one frame
	// cannot legitimately exceed its declared limits, and a hostile or
	// broken agent must not be able to stream forever into the decoder.
	b, err := DecodeBatch(io.LimitReader(resp.Body, 16+maxHeaderLen+maxPayloadLen))
	if err != nil {
		return err
	}
	g.recvBytes.Add(resp.ContentLength)
	if b.Host == "" {
		b.Host = host
	}
	return g.Ingest(b, "pull")
}

// HostStatus is one host's liveness record.
type HostStatus struct {
	Host string `json:"host"`
	// Source is how the newest batch arrived: "push", "pull", or "log"
	// for state recovered by boot replay that no agent has refreshed yet.
	Source string `json:"source"`
	// Seq is the newest batch sequence; Batches counts everything
	// ingested, retries included.
	Seq     uint64 `json:"seq"`
	Batches int64  `json:"batches"`
	// Snapshots is the number of virtual disks in the newest batch.
	Snapshots int `json:"snapshots"`
	// LastSeenUnixNano and AgeSeconds locate the newest batch in time;
	// Stale means the age exceeded the liveness horizon and the host is
	// excluded from merged views.
	LastSeenUnixNano int64   `json:"last_seen_unix_nano"`
	AgeSeconds       float64 `json:"age_seconds"`
	Stale            bool    `json:"stale"`
	// Level is the sender's height in the federation tree (0 = leaf
	// agent, 1 = a region re-exporting agents, and so on); Leaves is how
	// many leaf hosts the entry folds together (1 for a leaf agent).
	Level  int `json:"level"`
	Leaves int `json:"leaves"`
}

// Hosts lists every known host sorted by name.
func (g *Aggregator) Hosts() []HostStatus {
	now := g.now()
	var out []HostStatus
	for _, sh := range g.shards {
		out = sh.statuses(now, g.cfg.StaleAfter, out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// ClusterSnapshot merges every fresh host's disks into one cluster-wide
// view (nil when no fresh host has reported): each shard's memoized merge,
// folded once more at the edge. Bin-exact layouts make the two-level merge
// equal the flat one.
func (g *Aggregator) ClusterSnapshot(includeStale bool) *core.Snapshot {
	now := g.now()
	var parts []*core.Snapshot
	for _, sh := range g.shards {
		if c, _ := sh.merged(now, g.cfg.StaleAfter, includeStale, !g.cfg.DisableMergeCache); c != nil {
			parts = append(parts, c)
		}
	}
	return core.Aggregate("cluster", "*", parts...)
}

// VMSnapshots merges each VM's disks across all fresh hosts, sorted by VM
// name — the federated version of Registry.VMSnapshot. Shard-level per-VM
// merges (memoized) combine across shards for VMs whose hosts span them.
func (g *Aggregator) VMSnapshots(includeStale bool) []*core.Snapshot {
	now := g.now()
	byVM := make(map[string][]*core.Snapshot)
	for _, sh := range g.shards {
		_, vms := sh.merged(now, g.cfg.StaleAfter, includeStale, !g.cfg.DisableMergeCache)
		for _, s := range vms {
			byVM[s.VM] = append(byVM[s.VM], s)
		}
	}
	vms := make([]string, 0, len(byVM))
	for vm := range byVM {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	out := make([]*core.Snapshot, 0, len(vms))
	for _, vm := range vms {
		parts := byVM[vm]
		if len(parts) == 1 {
			// Already merged inside its shard; reuse (immutable).
			out = append(out, parts[0])
			continue
		}
		out = append(out, core.Aggregate(vm, "*", parts...))
	}
	return out
}

// AggregatorStats is a point-in-time copy of the aggregator's counters.
type AggregatorStats struct {
	// Hosts and StaleHosts count known and stale hosts; Batches counts
	// ingested batches, Rejected the batches refused at validation,
	// PullErrors the failed scatter-gather requests.
	Hosts, StaleHosts int
	Batches           int64
	Rejected          int64
	PullErrors        int64
	// DeltasApplied counts delta batches folded onto stored state,
	// Duplicates the redelivered deltas ignored idempotently, and Resyncs
	// the deltas refused with ErrResyncRequired.
	DeltasApplied int64
	Duplicates    int64
	Resyncs       int64
	// Per-cause resync splits. The first three are detected in the
	// shards and sum (with replay-time refusals included) into shard
	// Resyncs; LayoutMismatch is detected at aggregator validation and
	// adds on top, so Resyncs here is the true total across all causes.
	ResyncSeqGap         int64
	ResyncUnknownHost    int64
	ResyncUnknownDisk    int64
	ResyncLayoutMismatch int64
	ResyncBootChanged    int64
	// MergeCacheHits and MergeCacheMisses count shard-level merge
	// memoization outcomes across all shards.
	MergeCacheHits   int64
	MergeCacheMisses int64
}

// Stats returns the aggregator's counters.
func (g *Aggregator) Stats() AggregatorStats {
	var stale int
	hosts := g.Hosts()
	for _, h := range hosts {
		if h.Stale {
			stale++
		}
	}
	st := AggregatorStats{
		Hosts:      len(hosts),
		StaleHosts: stale,
		Rejected:   g.rejected.Load(),
		PullErrors: g.pullErrors.Load(),
	}
	for _, sh := range g.shards {
		st.Batches += sh.batches.Load()
		st.DeltasApplied += sh.deltasApplied.Load()
		st.Duplicates += sh.duplicates.Load()
		st.Resyncs += sh.resyncs.Load()
		st.MergeCacheHits += sh.cacheHits.Load()
		st.MergeCacheMisses += sh.cacheMisses.Load()
		st.ResyncSeqGap += sh.resyncCause[causeIndex(ResyncSeqGap)].Load()
		st.ResyncUnknownHost += sh.resyncCause[causeIndex(ResyncUnknownHost)].Load()
		st.ResyncUnknownDisk += sh.resyncCause[causeIndex(ResyncUnknownDisk)].Load()
		st.ResyncBootChanged += sh.resyncCause[causeIndex(ResyncBootChanged)].Load()
	}
	st.ResyncLayoutMismatch = g.layoutMismatch.Load()
	st.Resyncs += st.ResyncLayoutMismatch
	return st
}

// ShardStatus is one shard's slice of the aggregator, served by
// GET /fleet/shards.
type ShardStatus struct {
	Shard      int `json:"shard"`
	Hosts      int `json:"hosts"`
	StaleHosts int `json:"stale_hosts"`
	// Batches counts everything the shard ingested; DeltasApplied and
	// Resyncs expose the delta protocol's health per shard.
	Batches       int64 `json:"batches"`
	DeltasApplied int64 `json:"deltas_applied"`
	Duplicates    int64 `json:"duplicates"`
	Resyncs       int64 `json:"resyncs"`
	// MergeCacheHits/Misses show how often scrapes reused the shard's
	// memoized merge.
	MergeCacheHits   int64 `json:"merge_cache_hits"`
	MergeCacheMisses int64 `json:"merge_cache_misses"`
}

// Shards returns per-shard statistics, indexed by shard.
func (g *Aggregator) Shards() []ShardStatus {
	now := g.now()
	out := make([]ShardStatus, len(g.shards))
	for i, sh := range g.shards {
		var hosts, stale int
		sh.mu.RLock()
		hosts = len(sh.hosts)
		for _, st := range sh.hosts {
			if now.Sub(st.lastSeen) > g.cfg.StaleAfter {
				stale++
			}
		}
		sh.mu.RUnlock()
		out[i] = ShardStatus{
			Shard:            i,
			Hosts:            hosts,
			StaleHosts:       stale,
			Batches:          sh.batches.Load(),
			DeltasApplied:    sh.deltasApplied.Load(),
			Duplicates:       sh.duplicates.Load(),
			Resyncs:          sh.resyncs.Load(),
			MergeCacheHits:   sh.cacheHits.Load(),
			MergeCacheMisses: sh.cacheMisses.Load(),
		}
	}
	return out
}

// LogStats is a point-in-time view of the segment log, served by
// GET /fleet/log and exported as the vscsistats_fleet_log_* series.
type LogStats struct {
	// Enabled is false for a memory-only aggregator (every other field
	// is then zero).
	Enabled bool `json:"enabled"`
	// Segments and Bytes size the live log: every sealed segment plus
	// each shard's non-empty active one.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Appends counts frames written since open, AppendBytes their size,
	// and AppendErrors the writes absorbed after an encode or I/O
	// failure (those frames exist in memory only).
	Appends      int64 `json:"appends"`
	AppendBytes  int64 `json:"append_bytes"`
	AppendErrors int64 `json:"append_errors"`
	// Fsyncs, Rotations and Compactions count the log's maintenance
	// work; SegmentsRetired the sealed segments dropped by retention.
	Fsyncs          int64 `json:"fsyncs"`
	Rotations       int64 `json:"rotations"`
	Compactions     int64 `json:"compactions"`
	SegmentsRetired int64 `json:"segments_retired"`
	// FramesReplayed and TornTails describe the boot replay: frames
	// recovered and crash-torn tails truncated away.
	FramesReplayed int64 `json:"frames_replayed"`
	TornTails      int64 `json:"torn_tails"`
}

// LogStats returns the segment log's counters; Enabled is false (and all
// else zero) for a memory-only aggregator.
func (g *Aggregator) LogStats() LogStats {
	if g.log == nil {
		return LogStats{}
	}
	segs, bytes := g.log.segmentCounts()
	return LogStats{
		Enabled:         true,
		Segments:        segs,
		Bytes:           bytes,
		Appends:         g.log.appends.Load(),
		AppendBytes:     g.log.appendBytes.Load(),
		AppendErrors:    g.log.appendErrs.Load(),
		Fsyncs:          g.log.fsyncs.Load(),
		Rotations:       g.log.rotations.Load(),
		Compactions:     g.log.compactions.Load(),
		SegmentsRetired: g.log.retired.Load(),
		FramesReplayed:  g.log.replayed.Load(),
		TornTails:       g.log.tornTails.Load(),
	}
}

// --- HTTP surface ---

// ServeHTTP serves the aggregator's routes; mount it under /fleet/ (e.g.
// via httpstats.Options.Fleet):
//
//	GET  /fleet/hosts     per-host liveness (JSON)
//	GET  /fleet/snapshot  merged cluster snapshot; ?vm=NAME for one VM,
//	                      ?view=vms for every per-VM merge,
//	                      ?include_stale=1 to merge stale hosts too
//	GET  /fleet/shards    per-shard host counts, delta/resync counters and
//	                      merge-cache hit rates; ?host=NAME answers which
//	                      shard a host routes to
//	GET  /fleet/history   windowed merge over the retained segment log:
//	                      ?from=&to= (RFC3339 or unix seconds/nanos) bound
//	                      the window, ?vm=NAME narrows to one VM,
//	                      ?view=vms returns every per-VM merge
//	GET  /fleet/catalog   classify every fresh VM's merged view against
//	                      the installed reference catalog; ?vm=NAME for
//	                      one VM with its full ranking, ?include_stale=1
//	                      to classify stale hosts' VMs too
//	GET  /fleet/log       segment-log size and maintenance counters
//	GET  /fleet/events    the pipeline event ring as JSON (requires
//	                      AggregatorConfig.Obs); ?kind= and ?host=
//	                      filter, ?limit= bounds
//	GET  /fleet/slow      the slowest retained pipeline operations;
//	                      ?threshold=10ms filters, ?limit= bounds
//	POST /fleet/push      one wire frame from an agent (full or delta;
//	                      an unappliable delta is a 409 whose body names
//	                      the resync_cause, asking the agent to resync
//	                      with full state)
func (g *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.Trim(r.URL.Path, "/")
	path = strings.TrimPrefix(path, "fleet/")
	switch path {
	case "hosts":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		writeFleetJSON(w, g.Hosts())
	case "snapshot":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		g.serveSnapshot(w, r)
	case "shards":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		if host := r.URL.Query().Get("host"); host != "" {
			writeFleetJSON(w, map[string]any{
				"host": host, "shard": g.ShardFor(host), "shards": g.NumShards(),
			})
			return
		}
		writeFleetJSON(w, g.Shards())
	case "history":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		g.serveHistory(w, r)
	case "catalog":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		g.serveCatalog(w, r)
	case "log":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		writeFleetJSON(w, g.LogStats())
	case "events":
		if g.cfg.Obs == nil {
			fleetError(w, http.StatusNotFound, "observability disabled (AggregatorConfig.Obs unset)")
			return
		}
		g.cfg.Obs.ServeEvents(w, r)
	case "slow":
		if g.cfg.Obs == nil {
			fleetError(w, http.StatusNotFound, "observability disabled (AggregatorConfig.Obs unset)")
			return
		}
		g.cfg.Obs.ServeSlow(w, r)
	case "push":
		if r.Method != http.MethodPost {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodPost)
			return
		}
		g.servePush(w, r)
	default:
		fleetError(w, http.StatusNotFound, "not found")
	}
}

func (g *Aggregator) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	includeStale := r.URL.Query().Get("include_stale") == "1"
	if vm := r.URL.Query().Get("vm"); vm != "" {
		for _, s := range g.VMSnapshots(includeStale) {
			if s.VM == vm {
				writeFleetJSON(w, s)
				return
			}
		}
		fleetError(w, http.StatusNotFound, "unknown vm")
		return
	}
	if r.URL.Query().Get("view") == "vms" {
		writeFleetJSON(w, g.VMSnapshots(includeStale))
		return
	}
	s := g.ClusterSnapshot(includeStale)
	if s == nil {
		fleetError(w, http.StatusConflict, "no fresh host has reported")
		return
	}
	writeFleetJSON(w, s)
}

func (g *Aggregator) servePush(w http.ResponseWriter, r *http.Request) {
	// One sampling decision covers the whole push — a sampled push times
	// its decode, lock wait, ingest and log append; an unsampled one
	// pays one atomic add total.
	sampled := g.cfg.Obs.Sample()
	pushStart := time.Now()
	// One frame cannot legitimately exceed its declared limits; bound the
	// body read accordingly so a hostile sender cannot stream forever.
	body := http.MaxBytesReader(w, r.Body, 16+maxHeaderLen+maxPayloadLen)
	var decodeStart time.Time
	if sampled {
		decodeStart = time.Now()
	}
	b, err := DecodeBatch(body)
	if sampled && err == nil {
		g.observeStage(fleetobs.StageDecode, time.Since(decodeStart), b, g.ShardFor(b.Host))
	}
	if err != nil {
		g.rejected.Add(1)
		fleetError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Attribute ingest CPU to the pipeline: pprof samples taken inside
	// carry stage/host/shard labels via Options.Pprof for free.
	var ierr error
	pprof.Do(r.Context(),
		pprof.Labels("stage", "ingest", "host", b.Host, "shard", strconv.Itoa(g.ShardFor(b.Host))),
		func(context.Context) {
			ierr = g.ingest(b, "push", sampled)
		})
	if ierr != nil {
		if errors.Is(ierr, ErrResyncRequired) {
			fleetResyncError(w, ierr)
			return
		}
		fleetError(w, http.StatusBadRequest, ierr.Error())
		return
	}
	g.recvBytes.Add(r.ContentLength)
	if sampled {
		g.cfg.Obs.Emit(fleetobs.Event{
			Kind: fleetobs.KindPush, Scope: "aggregator",
			Host: b.Host, TraceID: b.TraceID, BatchSeq: b.Seq,
			Shard: g.ShardFor(b.Host), DurationNanos: int64(time.Since(pushStart)),
			Detail: fmt.Sprintf("delta=%t snapshots=%d", b.Delta, len(b.Snapshots)),
		})
	}
	writeFleetJSON(w, map[string]any{"host": b.Host, "seq": b.Seq, "snapshots": len(b.Snapshots)})
}

// fleetResyncError writes the 409 resync response; the body carries the
// machine-readable cause alongside the human-readable error.
func fleetResyncError(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(map[string]string{
		"error":        err.Error(),
		"resync_cause": string(resyncCauseOf(err)),
	})
}

// fleetError mirrors httpstats's JSON error contract.
func fleetError(w http.ResponseWriter, code int, msg string, allow ...string) {
	if len(allow) > 0 {
		w.Header().Set("Allow", strings.Join(allow, ", "))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeFleetJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// --- telemetry integration ---

// FleetHosts implements telemetry.FleetSource: per-host liveness for the
// fleet_* Prometheus series.
func (g *Aggregator) FleetHosts() []telemetry.FleetHost {
	hosts := g.Hosts()
	out := make([]telemetry.FleetHost, 0, len(hosts))
	for _, h := range hosts {
		out = append(out, telemetry.FleetHost{
			Host:       h.Host,
			Stale:      h.Stale,
			AgeSeconds: h.AgeSeconds,
			Snapshots:  h.Snapshots,
			Batches:    h.Batches,
			Seq:        h.Seq,
		})
	}
	return out
}

// FleetCluster implements telemetry.FleetSource: the cluster-wide merge of
// every fresh host (nil when none).
func (g *Aggregator) FleetCluster() *core.Snapshot {
	return g.ClusterSnapshot(false)
}

// FleetVMs implements telemetry.FleetSource: the per-VM merges across all
// fresh hosts, sorted by VM name.
func (g *Aggregator) FleetVMs() []*core.Snapshot {
	return g.VMSnapshots(false)
}

// FleetLogStats implements telemetry.FleetLogSource: segment-log size and
// maintenance counters for the vscsistats_fleet_log_* series.
func (g *Aggregator) FleetLogStats() (telemetry.FleetLog, bool) {
	st := g.LogStats()
	if !st.Enabled {
		return telemetry.FleetLog{}, false
	}
	return telemetry.FleetLog{
		Segments:        st.Segments,
		Bytes:           st.Bytes,
		Appends:         st.Appends,
		AppendBytes:     st.AppendBytes,
		AppendErrors:    st.AppendErrors,
		Fsyncs:          st.Fsyncs,
		Rotations:       st.Rotations,
		Compactions:     st.Compactions,
		SegmentsRetired: st.SegmentsRetired,
		FramesReplayed:  st.FramesReplayed,
		TornTails:       st.TornTails,
	}, true
}

// Tiers groups the aggregator's host set by federation level, ascending.
// A flat fleet has one level-0 tier; an aggregator fed by re-exporters
// shows each tier's host and folded-leaf counts.
func (g *Aggregator) Tiers() []TierStatus {
	byLevel := make(map[int]*TierStatus)
	for _, h := range g.Hosts() {
		t := byLevel[h.Level]
		if t == nil {
			t = &TierStatus{Level: h.Level}
			byLevel[h.Level] = t
		}
		t.Hosts++
		if h.Stale {
			t.StaleHosts++
		}
		t.Leaves += h.Leaves
	}
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	out := make([]TierStatus, 0, len(levels))
	for _, l := range levels {
		out = append(out, *byLevel[l])
	}
	return out
}

// TierStatus is one federation level's slice of the host set.
type TierStatus struct {
	Level      int `json:"level"`
	Hosts      int `json:"hosts"`
	StaleHosts int `json:"stale_hosts"`
	Leaves     int `json:"leaves"`
}

// FleetTiers implements telemetry.FleetTierSource: per-level gauges for
// the vscsistats_fleet_tier_* series.
func (g *Aggregator) FleetTiers() []telemetry.FleetTier {
	tiers := g.Tiers()
	out := make([]telemetry.FleetTier, 0, len(tiers))
	for _, t := range tiers {
		out = append(out, telemetry.FleetTier{
			Level: t.Level, Hosts: t.Hosts, StaleHosts: t.StaleHosts, Leaves: t.Leaves,
		})
	}
	return out
}

// FleetShards implements telemetry.FleetShardSource: per-shard gauges and
// counters for the vscsistats_fleet_shard_* series.
func (g *Aggregator) FleetShards() []telemetry.FleetShard {
	shards := g.Shards()
	out := make([]telemetry.FleetShard, 0, len(shards))
	for _, s := range shards {
		out = append(out, telemetry.FleetShard{
			Index:            s.Shard,
			Hosts:            s.Hosts,
			StaleHosts:       s.StaleHosts,
			Batches:          s.Batches,
			DeltasApplied:    s.DeltasApplied,
			Resyncs:          s.Resyncs,
			MergeCacheHits:   s.MergeCacheHits,
			MergeCacheMisses: s.MergeCacheMisses,
		})
	}
	return out
}
