package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/telemetry"
)

// AggregatorConfig tunes a fleet aggregator. Zero values take the
// documented defaults.
type AggregatorConfig struct {
	// StaleAfter is the liveness horizon: a host whose newest batch is
	// older than this drops out of the merged views and is reported stale
	// (default 10s; set it to a small multiple of the agents' push
	// interval).
	StaleAfter time.Duration
	// PullTimeout bounds each scatter-gather pull request (default 2s).
	PullTimeout time.Duration
	// Client overrides the HTTP client used for pulls.
	Client *http.Client
}

func (c *AggregatorConfig) withDefaults() AggregatorConfig {
	out := *c
	if out.StaleAfter <= 0 {
		out.StaleAfter = 10 * time.Second
	}
	if out.PullTimeout <= 0 {
		out.PullTimeout = 2 * time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// hostState is the aggregator's record of one host.
type hostState struct {
	host         string
	source       string // "push" or "pull"
	seq          uint64
	sentUnixNano int64
	lastSeen     time.Time
	batches      int64
	snaps        []*core.Snapshot
}

// Aggregator accepts pushed batches, scatter-gathers pulls from registered
// agents, tracks per-host liveness, and merges per-host snapshots into
// per-VM and cluster-wide histograms. All methods are safe for concurrent
// use: any number of HTTP goroutines can ingest while others read merged
// views.
type Aggregator struct {
	cfg AggregatorConfig
	// now is the wall clock, injectable for deterministic staleness tests.
	now func() time.Time

	mu    sync.RWMutex
	hosts map[string]*hostState
	pulls map[string]string // host -> pull URL

	batches    atomic.Int64
	rejected   atomic.Int64
	pullErrors atomic.Int64
	recvBytes  atomic.Int64
}

// NewAggregator builds an empty aggregator.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	return &Aggregator{
		cfg:   cfg.withDefaults(),
		now:   time.Now,
		hosts: make(map[string]*hostState),
		pulls: make(map[string]string),
	}
}

// Ingest records a validated batch as the host's newest state. Batches
// older than the newest sequence already seen refresh liveness but leave
// the stored snapshots alone, so a late-arriving retry never rolls a host
// backwards.
func (g *Aggregator) Ingest(b *Batch, source string) error {
	if err := b.Validate(); err != nil {
		g.rejected.Add(1)
		return err
	}
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.hosts[b.Host]
	if st == nil {
		st = &hostState{host: b.Host}
		g.hosts[b.Host] = st
	}
	st.lastSeen = now
	st.source = source
	st.batches++
	if b.Seq >= st.seq {
		st.seq = b.Seq
		st.sentUnixNano = b.SentUnixNano
		st.snaps = b.Snapshots
	}
	g.batches.Add(1)
	return nil
}

// Forget removes a host from the aggregator (and its pull registration).
func (g *Aggregator) Forget(host string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.hosts, host)
	delete(g.pulls, host)
}

// Watch registers an agent's pull endpoint (its PullHandler URL) so
// PullAll scrapes it. Watching a host that also pushes is harmless — the
// newest sequence wins either way.
func (g *Aggregator) Watch(host, url string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pulls[host] = url
}

// PullAll scrapes every watched endpoint concurrently, each bounded by
// PullTimeout, and ingests what it gets. It returns the per-host errors
// (empty map when every pull succeeded).
func (g *Aggregator) PullAll() map[string]error {
	g.mu.RLock()
	targets := make(map[string]string, len(g.pulls))
	for h, u := range g.pulls {
		targets[h] = u
	}
	g.mu.RUnlock()

	var (
		wg   sync.WaitGroup
		errs = make(map[string]error)
		emu  sync.Mutex
	)
	for host, url := range targets {
		wg.Add(1)
		go func(host, url string) {
			defer wg.Done()
			if err := g.pullOne(host, url); err != nil {
				g.pullErrors.Add(1)
				emu.Lock()
				errs[host] = err
				emu.Unlock()
			}
		}(host, url)
	}
	wg.Wait()
	return errs
}

// pullOne scrapes one agent and ingests the batch.
func (g *Aggregator) pullOne(host, url string) error {
	ctx, cancel := contextWithTimeout(g.cfg.PullTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: pull %s returned %s", host, resp.Status)
	}
	b, err := DecodeBatch(resp.Body)
	if err != nil {
		return err
	}
	g.recvBytes.Add(resp.ContentLength)
	if b.Host == "" {
		b.Host = host
	}
	return g.Ingest(b, "pull")
}

// HostStatus is one host's liveness record.
type HostStatus struct {
	Host string `json:"host"`
	// Source is "push" or "pull" — how the newest batch arrived.
	Source string `json:"source"`
	// Seq is the newest batch sequence; Batches counts everything
	// ingested, retries included.
	Seq     uint64 `json:"seq"`
	Batches int64  `json:"batches"`
	// Snapshots is the number of virtual disks in the newest batch.
	Snapshots int `json:"snapshots"`
	// LastSeenUnixNano and AgeSeconds locate the newest batch in time;
	// Stale means the age exceeded the liveness horizon and the host is
	// excluded from merged views.
	LastSeenUnixNano int64   `json:"last_seen_unix_nano"`
	AgeSeconds       float64 `json:"age_seconds"`
	Stale            bool    `json:"stale"`
}

// Hosts lists every known host sorted by name.
func (g *Aggregator) Hosts() []HostStatus {
	now := g.now()
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]HostStatus, 0, len(g.hosts))
	for _, st := range g.hosts {
		age := now.Sub(st.lastSeen)
		out = append(out, HostStatus{
			Host:             st.host,
			Source:           st.source,
			Seq:              st.seq,
			Batches:          st.batches,
			Snapshots:        len(st.snaps),
			LastSeenUnixNano: st.lastSeen.UnixNano(),
			AgeSeconds:       age.Seconds(),
			Stale:            age > g.cfg.StaleAfter,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// liveSnapshots returns the newest snapshots of every host, skipping stale
// hosts unless includeStale is set. Snapshots are immutable once ingested
// and core.Aggregate copies before merging, so sharing them out is safe.
func (g *Aggregator) liveSnapshots(includeStale bool) []*core.Snapshot {
	now := g.now()
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*core.Snapshot
	hosts := make([]string, 0, len(g.hosts))
	for h := range g.hosts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		st := g.hosts[h]
		if !includeStale && now.Sub(st.lastSeen) > g.cfg.StaleAfter {
			continue
		}
		out = append(out, st.snaps...)
	}
	return out
}

// ClusterSnapshot merges every fresh host's disks into one cluster-wide
// view (nil when no fresh host has reported).
func (g *Aggregator) ClusterSnapshot(includeStale bool) *core.Snapshot {
	return core.Aggregate("cluster", "*", g.liveSnapshots(includeStale)...)
}

// VMSnapshots merges each VM's disks across all fresh hosts, sorted by VM
// name — the federated version of Registry.VMSnapshot.
func (g *Aggregator) VMSnapshots(includeStale bool) []*core.Snapshot {
	byVM := make(map[string][]*core.Snapshot)
	for _, s := range g.liveSnapshots(includeStale) {
		byVM[s.VM] = append(byVM[s.VM], s)
	}
	vms := make([]string, 0, len(byVM))
	for vm := range byVM {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	out := make([]*core.Snapshot, 0, len(vms))
	for _, vm := range vms {
		out = append(out, core.Aggregate(vm, "*", byVM[vm]...))
	}
	return out
}

// AggregatorStats is a point-in-time copy of the aggregator's counters.
type AggregatorStats struct {
	// Hosts and StaleHosts count known and stale hosts; Batches counts
	// ingested batches, Rejected the batches refused at validation,
	// PullErrors the failed scatter-gather requests.
	Hosts, StaleHosts int
	Batches           int64
	Rejected          int64
	PullErrors        int64
}

// Stats returns the aggregator's counters.
func (g *Aggregator) Stats() AggregatorStats {
	var stale int
	hosts := g.Hosts()
	for _, h := range hosts {
		if h.Stale {
			stale++
		}
	}
	return AggregatorStats{
		Hosts:      len(hosts),
		StaleHosts: stale,
		Batches:    g.batches.Load(),
		Rejected:   g.rejected.Load(),
		PullErrors: g.pullErrors.Load(),
	}
}

// --- HTTP surface ---

// ServeHTTP serves the aggregator's routes; mount it under /fleet/ (e.g.
// via httpstats.Options.Fleet):
//
//	GET  /fleet/hosts     per-host liveness (JSON)
//	GET  /fleet/snapshot  merged cluster snapshot; ?vm=NAME for one VM,
//	                      ?view=vms for every per-VM merge,
//	                      ?include_stale=1 to merge stale hosts too
//	POST /fleet/push      one wire frame from an agent
func (g *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.Trim(r.URL.Path, "/")
	path = strings.TrimPrefix(path, "fleet/")
	switch path {
	case "hosts":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		writeFleetJSON(w, g.Hosts())
	case "snapshot":
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		g.serveSnapshot(w, r)
	case "push":
		if r.Method != http.MethodPost {
			fleetError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodPost)
			return
		}
		g.servePush(w, r)
	default:
		fleetError(w, http.StatusNotFound, "not found")
	}
}

func (g *Aggregator) serveSnapshot(w http.ResponseWriter, r *http.Request) {
	includeStale := r.URL.Query().Get("include_stale") == "1"
	if vm := r.URL.Query().Get("vm"); vm != "" {
		for _, s := range g.VMSnapshots(includeStale) {
			if s.VM == vm {
				writeFleetJSON(w, s)
				return
			}
		}
		fleetError(w, http.StatusNotFound, "unknown vm")
		return
	}
	if r.URL.Query().Get("view") == "vms" {
		writeFleetJSON(w, g.VMSnapshots(includeStale))
		return
	}
	s := g.ClusterSnapshot(includeStale)
	if s == nil {
		fleetError(w, http.StatusConflict, "no fresh host has reported")
		return
	}
	writeFleetJSON(w, s)
}

func (g *Aggregator) servePush(w http.ResponseWriter, r *http.Request) {
	// One frame cannot legitimately exceed its declared limits; bound the
	// body read accordingly so a hostile sender cannot stream forever.
	body := http.MaxBytesReader(w, r.Body, 16+maxHeaderLen+maxPayloadLen)
	b, err := DecodeBatch(body)
	if err != nil {
		g.rejected.Add(1)
		fleetError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := g.Ingest(b, "push"); err != nil {
		fleetError(w, http.StatusBadRequest, err.Error())
		return
	}
	g.recvBytes.Add(r.ContentLength)
	writeFleetJSON(w, map[string]any{"host": b.Host, "seq": b.Seq, "snapshots": len(b.Snapshots)})
}

// fleetError mirrors httpstats's JSON error contract.
func fleetError(w http.ResponseWriter, code int, msg string, allow ...string) {
	if len(allow) > 0 {
		w.Header().Set("Allow", strings.Join(allow, ", "))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeFleetJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// --- telemetry integration ---

// FleetHosts implements telemetry.FleetSource: per-host liveness for the
// fleet_* Prometheus series.
func (g *Aggregator) FleetHosts() []telemetry.FleetHost {
	hosts := g.Hosts()
	out := make([]telemetry.FleetHost, 0, len(hosts))
	for _, h := range hosts {
		out = append(out, telemetry.FleetHost{
			Host:       h.Host,
			Stale:      h.Stale,
			AgeSeconds: h.AgeSeconds,
			Snapshots:  h.Snapshots,
			Batches:    h.Batches,
			Seq:        h.Seq,
		})
	}
	return out
}

// FleetCluster implements telemetry.FleetSource: the cluster-wide merge of
// every fresh host (nil when none).
func (g *Aggregator) FleetCluster() *core.Snapshot {
	return g.ClusterSnapshot(false)
}

// FleetVMs implements telemetry.FleetSource: the per-VM merges across all
// fresh hosts, sorted by VM name.
func (g *Aggregator) FleetVMs() []*core.Snapshot {
	return g.VMSnapshots(false)
}
