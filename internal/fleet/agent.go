package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
)

// AgentConfig tunes a fleet agent. Zero values take the documented
// defaults.
type AgentConfig struct {
	// Host names this host in the fleet, e.g. "esx-01". Required.
	Host string
	// Endpoint is the aggregator's push URL, e.g.
	// "http://aggregator:9108/fleet/push". Required for pushing; an agent
	// serving pulls only may leave it empty.
	Endpoint string
	// Interval is the push period (default 2s).
	Interval time.Duration
	// Timeout bounds each push request (default 5s).
	Timeout time.Duration
	// MaxRetryQueue bounds the batches kept for retry after failed pushes
	// (default 16). When full, the oldest batch is dropped — batches are
	// cumulative, so the next successful push carries everything a dropped
	// one did.
	MaxRetryQueue int
	// MaxBackoff caps the exponential backoff between failed pushes
	// (default 30s; the first retry waits Interval).
	MaxBackoff time.Duration
	// Client overrides the HTTP client (default: a dedicated client; the
	// per-request timeout always comes from Timeout).
	Client *http.Client
}

func (c *AgentConfig) withDefaults() AgentConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 2 * time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.MaxRetryQueue <= 0 {
		out.MaxRetryQueue = 16
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 30 * time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// Agent periodically serializes a registry's snapshots and pushes them to
// an aggregator. All methods are safe for concurrent use; the push loop
// runs on one background goroutine between Start and Stop.
type Agent struct {
	cfg AgentConfig
	reg *core.Registry

	seq atomic.Uint64

	// mu guards the retry queue and the backoff schedule.
	mu       sync.Mutex
	queue    []*Batch
	failures int       // consecutive failed flushes
	notUntil time.Time // backoff gate: no network attempt before this

	pushes     atomic.Int64
	pushErrors atomic.Int64
	retries    atomic.Int64
	dropped    atomic.Int64
	sentBytes  atomic.Int64

	lastErr atomic.Pointer[string]

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	// rng drives backoff jitter; guarded by mu.
	rng *rand.Rand
}

// NewAgent builds an agent over the registry. It does not start pushing;
// call Start, or PushNow for a synchronous push.
func NewAgent(reg *core.Registry, cfg AgentConfig) *Agent {
	if cfg.Host == "" {
		panic("fleet: AgentConfig.Host is required")
	}
	return &Agent{
		cfg:  cfg.withDefaults(),
		reg:  reg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Host returns the agent's fleet identity.
func (a *Agent) Host() string { return a.cfg.Host }

// Start launches the push loop. Stop ends it; Start after Stop is a no-op.
func (a *Agent) Start() {
	a.startOnce.Do(func() {
		go a.run()
	})
}

// Stop ends the push loop and waits for it to exit. Safe to call without
// Start (the loop goroutine is then never created and Stop returns at
// once) and safe to call twice.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.startOnce.Do(func() { close(a.done) })
	<-a.done
}

func (a *Agent) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.enqueue(a.buildBatch())
			a.flush(time.Now())
		}
	}
}

// PushNow builds a batch from the registry and flushes the queue
// synchronously, ignoring the backoff gate — the deterministic push used
// by tests and by operators forcing a final flush. It returns the first
// flush error, if any.
func (a *Agent) PushNow() error {
	a.enqueue(a.buildBatch())
	a.mu.Lock()
	a.notUntil = time.Time{}
	a.mu.Unlock()
	return a.flush(time.Now())
}

// buildBatch snapshots the registry into a sequenced batch.
func (a *Agent) buildBatch() *Batch {
	return &Batch{
		Host:         a.cfg.Host,
		Seq:          a.seq.Add(1),
		SentUnixNano: time.Now().UnixNano(),
		Snapshots:    a.reg.Snapshots(),
	}
}

// enqueue appends b to the retry queue, dropping the oldest batch when the
// queue is full.
func (a *Agent) enqueue(b *Batch) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queue) >= a.cfg.MaxRetryQueue {
		a.queue = a.queue[1:]
		a.dropped.Add(1)
	}
	a.queue = append(a.queue, b)
}

// flush pushes queued batches oldest-first until the queue drains or a
// push fails. A failure schedules the next attempt with exponential
// backoff plus ±20% jitter; batches queued in the meantime wait for it.
func (a *Agent) flush(now time.Time) error {
	if a.cfg.Endpoint == "" {
		return nil
	}
	a.mu.Lock()
	if now.Before(a.notUntil) {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()
	for {
		a.mu.Lock()
		if len(a.queue) == 0 {
			a.failures = 0
			a.notUntil = time.Time{}
			a.mu.Unlock()
			return nil
		}
		b := a.queue[0]
		if b.Seq < a.seq.Load() {
			a.retries.Add(1)
		}
		a.mu.Unlock()

		err := a.push(b)
		a.mu.Lock()
		if err != nil {
			a.failures++
			backoff := a.cfg.Interval << (a.failures - 1)
			if backoff > a.cfg.MaxBackoff || backoff <= 0 {
				backoff = a.cfg.MaxBackoff
			}
			// Jitter by ±20% so a fleet of agents that failed together
			// does not retry together.
			jitter := time.Duration(a.rng.Int63n(int64(backoff)/5+1)) - backoff/10
			a.notUntil = now.Add(backoff + jitter)
			a.mu.Unlock()
			a.pushErrors.Add(1)
			msg := err.Error()
			a.lastErr.Store(&msg)
			return err
		}
		// Drop this batch and every older one still queued (cumulative
		// batches: a newer delivery supersedes all earlier state).
		rest := a.queue[:0]
		for _, q := range a.queue {
			if q.Seq > b.Seq {
				rest = append(rest, q)
			}
		}
		a.queue = rest
		a.failures = 0
		a.mu.Unlock()
		a.pushes.Add(1)
	}
}

// push sends one batch with the per-request timeout.
func (a *Agent) push(b *Batch) error {
	body, err := EncodeBatchBytes(b)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, a.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentType)
	ctx, cancel := contextWithTimeout(a.cfg.Timeout)
	defer cancel()
	resp, err := a.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: aggregator returned %s", resp.Status)
	}
	a.sentBytes.Add(int64(len(body)))
	return nil
}

// PullHandler returns an http.Handler serving the agent's current state as
// one frame — the scrape side of the protocol. GET only.
func (a *Agent) PullHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if r.Method == http.MethodHead {
			return
		}
		EncodeBatch(w, a.buildBatch())
	})
}

// AgentStats is a point-in-time copy of the agent's counters.
type AgentStats struct {
	// Pushes counts batches delivered; Errors counts failed delivery
	// attempts; Retries counts deliveries of batches older than the
	// newest; Dropped counts batches evicted from the full retry queue.
	Pushes, Errors, Retries, Dropped int64
	// SentBytes totals the wire bytes of delivered batches.
	SentBytes int64
	// QueueLen is the current retry-queue depth and Failures the current
	// consecutive-failure count driving backoff.
	QueueLen, Failures int
	// LastError is the most recent push error ("" when none yet).
	LastError string
}

// Stats returns the agent's counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	qlen, failures := len(a.queue), a.failures
	a.mu.Unlock()
	s := AgentStats{
		Pushes:    a.pushes.Load(),
		Errors:    a.pushErrors.Load(),
		Retries:   a.retries.Load(),
		Dropped:   a.dropped.Load(),
		SentBytes: a.sentBytes.Load(),
		QueueLen:  qlen,
		Failures:  failures,
	}
	if msg := a.lastErr.Load(); msg != nil {
		s.LastError = *msg
	}
	return s
}
