package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
)

// errResync reports a delta push the aggregator refused with a 4xx: the
// base the delta was built on is gone (aggregator restart, seq gap) or the
// frame was otherwise unappliable. The agent's reaction is always the
// same — clear the acknowledged base and push full state — so every 4xx
// on a delta folds into this one error.
var errResync = errors.New("fleet: aggregator requested resync")

// AgentConfig tunes a fleet agent. Zero values take the documented
// defaults.
type AgentConfig struct {
	// Host names this host in the fleet, e.g. "esx-01". Required.
	Host string
	// Endpoint is the aggregator's push URL, e.g.
	// "http://aggregator:9108/fleet/push". Required for pushing; an agent
	// serving pulls only may leave it empty.
	Endpoint string
	// Interval is the push period (default 2s).
	Interval time.Duration
	// Timeout bounds each push request (default 5s).
	Timeout time.Duration
	// MaxRetryQueue bounds the batches kept for retry after failed pushes
	// (default 16). When full, the oldest batch is dropped — batches are
	// cumulative, so the next successful push carries everything a dropped
	// one did.
	MaxRetryQueue int
	// MaxBackoff caps the exponential backoff between failed pushes
	// (default 30s; the first retry waits Interval).
	MaxBackoff time.Duration
	// DisableDeltas forces every push to carry full cumulative state. By
	// default, once a push has been acknowledged, the agent sends interval
	// deltas against that acknowledged state — with unchanged disks
	// omitted entirely — and falls back to a full push automatically
	// whenever the aggregator cannot apply one (restart, sequence gap) or
	// the registry's disk set changes.
	DisableDeltas bool
	// Client overrides the HTTP client (default: a dedicated client; the
	// per-request timeout always comes from Timeout).
	Client *http.Client
	// Obs, when set, receives per-stage latency samples (capture, delta
	// render, encode, push round-trip, queue dwell) and trace-stamped
	// pipeline events. Nil disables agent-side observability at the cost
	// of one branch per stage.
	Obs *fleetobs.Tracker
}

func (c *AgentConfig) withDefaults() AgentConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 2 * time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.MaxRetryQueue <= 0 {
		out.MaxRetryQueue = 16
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 30 * time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// queued is one registry capture awaiting delivery. The queue always holds
// full cumulative state; whether a capture goes over the wire full or as a
// delta is decided at flush time against the base acknowledged by then, so
// a capture built while an older push was still in flight never carries a
// stale base sequence.
type queued struct {
	seq          uint64
	sentUnixNano int64
	full         []*core.Snapshot
	// traceID is stamped at capture and rides the frame header, so this
	// one push is followable across processes.
	traceID string
}

// ackedBase is the last registry state the aggregator acknowledged — the
// state deltas are computed against. The aggregator's no-rollback ingest
// guarantees it holds at least this sequence.
type ackedBase struct {
	seq  uint64
	full []*core.Snapshot
}

// Agent periodically captures a registry's snapshots and pushes them to an
// aggregator — full state until first acknowledged, interval deltas after.
// All methods are safe for concurrent use. Between Start and Stop two
// goroutines run: a builder that only captures and enqueues on each tick,
// and a flusher that does all network I/O — so a slow or dead aggregator
// never delays a capture, and the retry queue keeps recording state at
// every interval regardless of what the network is doing.
type Agent struct {
	cfg AgentConfig
	reg *core.Registry

	seq atomic.Uint64

	// qmu guards only the capture queue — the builder's hot path. It is
	// never held across network I/O or while computing backoff.
	qmu   sync.Mutex
	queue []*queued

	// bmu guards the backoff schedule and its jitter RNG, deliberately
	// split from qmu: a flusher stuck computing backoff (or a Stats call
	// reading it) cannot block buildBatch/enqueue.
	bmu      sync.Mutex
	failures int       // consecutive failed flushes
	notUntil time.Time // backoff gate: no network attempt before this
	rng      *rand.Rand

	// baseMu guards the delta base. Flushers update it on every ack.
	baseMu sync.Mutex
	base   *ackedBase // nil until the first acknowledged push

	// flushMu single-flights flush: deltas are computed against the base
	// at flush time, so two interleaved flushes could otherwise both build
	// deltas on a base one of them is about to advance.
	flushMu sync.Mutex

	pushes      atomic.Int64
	deltaPushes atomic.Int64
	pushErrors  atomic.Int64
	retries     atomic.Int64
	dropped     atomic.Int64
	resyncs     atomic.Int64
	sentBytes   atomic.Int64

	lastErr atomic.Pointer[string]

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	// traceSalt distinguishes trace IDs across agent restarts, where seq
	// starts over from 1.
	traceSalt uint32
	// boot is this process's incarnation, stamped on every frame: a
	// receiver seeing a new boot for the host replaces state even at a
	// lower sequence, so a restarted agent's first full push displaces
	// its predecessor's state instead of reading as a late retry.
	boot uint64
}

// NewAgent builds an agent over the registry. It does not start pushing;
// call Start, or PushNow for a synchronous push.
func NewAgent(reg *core.Registry, cfg AgentConfig) *Agent {
	if cfg.Host == "" {
		panic("fleet: AgentConfig.Host is required")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return &Agent{
		cfg:       cfg.withDefaults(),
		reg:       reg,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		rng:       rng,
		traceSalt: uint32(rng.Int63()),
		boot:      newBootID(rng),
	}
}

// newBootID draws a non-zero incarnation identity (zero on the wire means
// "pre-federation sender").
func newBootID(rng *rand.Rand) uint64 {
	for {
		if b := uint64(rng.Int63())<<1 ^ uint64(rng.Int63()); b != 0 {
			return b
		}
	}
}

// traceID renders the capture's end-to-end trace identity:
// host-salt-seq, unique across the fleet (host) and across agent
// restarts (salt).
func (a *Agent) traceID(seq uint64) string {
	return fmt.Sprintf("%s-%08x-%d", a.cfg.Host, a.traceSalt, seq)
}

// Host returns the agent's fleet identity.
func (a *Agent) Host() string { return a.cfg.Host }

// Start launches the push loop. Stop ends it; Start after Stop is a no-op.
func (a *Agent) Start() {
	a.startOnce.Do(func() {
		go a.run()
	})
}

// Stop ends the push loop, waits for it to exit, then drains the capture
// queue with one bounded best-effort flush. The flusher goroutine exits on
// stop even when a kick is pending, so without the drain a capture built on
// the final tick — the last interval of data — would sit in the queue and
// vanish with the process. The drain honors the backoff gate (an aggregator
// already failing is not hammered on the way out) and each push is bounded
// by the configured timeout; a failure is recorded in Stats and dropped,
// never retried — Stop must terminate. Safe to call without Start (the
// loop goroutine is then never created) and safe to call twice.
func (a *Agent) Stop() {
	a.BeginStop()
	a.startOnce.Do(func() { close(a.done) })
	<-a.done
	a.flush(time.Now())
}

// BeginStop signals the push loop to exit without waiting for it or
// draining the queue; Stop completes the shutdown. Callers stopping a
// fleet of agents should signal them all before draining any — with a
// one-at-a-time Stop loop, agents late in the order keep capturing and
// pushing while early ones drain, and on a loaded machine the collective
// enqueue rate can outrun the drain rate indefinitely. Safe to call
// without Start and safe to call twice.
func (a *Agent) BeginStop() {
	a.stopOnce.Do(func() { close(a.stop) })
}

func (a *Agent) run() {
	defer close(a.done)
	// The flusher owns all network I/O; the builder below only captures
	// and enqueues, then kicks the flusher. kick has a buffer of one: a
	// kick during a slow flush coalesces with the next drain rather than
	// piling up.
	kick := make(chan struct{}, 1)
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-a.stop:
				return
			case <-kick:
				a.flush(time.Now())
			}
		}
	}()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			flusher.Wait()
			return
		case <-t.C:
			a.enqueue(a.buildBatch())
			select {
			case kick <- struct{}{}:
			default:
			}
		}
	}
}

// PushNow captures the registry and flushes the queue synchronously,
// ignoring the backoff gate — the deterministic push used by tests and by
// operators forcing a final flush. It returns the first flush error, if
// any.
func (a *Agent) PushNow() error {
	a.enqueue(a.buildBatch())
	a.bmu.Lock()
	a.notUntil = time.Time{}
	a.bmu.Unlock()
	return a.flush(time.Now())
}

// buildBatch captures the registry into a sequenced queue entry. No locks
// beyond the registry's own and no network: this is the path that must
// stay fast however sick the aggregator is.
func (a *Agent) buildBatch() *queued {
	start := time.Now()
	q := &queued{
		seq:          a.seq.Add(1),
		sentUnixNano: start.UnixNano(),
		full:         a.reg.Snapshots(),
	}
	q.traceID = a.traceID(q.seq)
	a.cfg.Obs.ObserveSince(fleetobs.StageCapture, start, fleetobs.Event{
		Host: a.cfg.Host, TraceID: q.traceID, BatchSeq: q.seq, Shard: -1,
	})
	return q
}

// enqueue appends q to the capture queue, dropping the oldest entry when
// the queue is full.
func (a *Agent) enqueue(q *queued) {
	a.qmu.Lock()
	defer a.qmu.Unlock()
	if len(a.queue) >= a.cfg.MaxRetryQueue {
		a.queue = a.queue[1:]
		a.dropped.Add(1)
	}
	a.queue = append(a.queue, q)
}

// currentBase reads the acknowledged base.
func (a *Agent) currentBase() *ackedBase {
	a.baseMu.Lock()
	defer a.baseMu.Unlock()
	return a.base
}

// advanceBase records q as acknowledged, monotonically.
func (a *Agent) advanceBase(q *queued) {
	a.baseMu.Lock()
	defer a.baseMu.Unlock()
	if a.base == nil || q.seq > a.base.seq {
		a.base = &ackedBase{seq: q.seq, full: q.full}
	}
}

// clearBase forgets the acknowledged base; the next wire batch is full.
func (a *Agent) clearBase() {
	a.baseMu.Lock()
	a.base = nil
	a.baseMu.Unlock()
}

// makeWire renders a queue entry for the wire: a delta against the current
// acknowledged base when one exists and the disk sets line up (with
// unchanged disks omitted — on a slowly-changing fleet most of the frame
// vanishes), a full batch otherwise.
func (a *Agent) makeWire(q *queued) *Batch {
	b := &Batch{
		Host:            a.cfg.Host,
		Seq:             q.seq,
		SentUnixNano:    q.sentUnixNano,
		Snapshots:       q.full,
		TraceID:         q.traceID,
		CaptureUnixNano: q.sentUnixNano,
		Boot:            a.boot,
	}
	if a.cfg.DisableDeltas {
		return b
	}
	base := a.currentBase()
	if base == nil || q.seq <= base.seq {
		return b
	}
	start := time.Now()
	deltas, ok := subAgainst(q.full, base.full)
	a.cfg.Obs.ObserveSince(fleetobs.StageDeltaRender, start, fleetobs.Event{
		Host: a.cfg.Host, TraceID: q.traceID, BatchSeq: q.seq, Shard: -1,
	})
	if !ok {
		return b
	}
	b.Delta = true
	b.BaseSeq = base.seq
	b.Snapshots = deltas
	return b
}

// subAgainst pairs cur with base by (VM, disk) and returns the non-zero
// interval deltas. It refuses (ok=false) when the disk sets differ — a
// disk appeared or vanished — which forces a full push carrying the new
// set.
func subAgainst(cur, base []*core.Snapshot) ([]*core.Snapshot, bool) {
	if len(cur) != len(base) {
		return nil, false
	}
	byKey := make(map[diskKey]*core.Snapshot, len(base))
	for _, s := range base {
		byKey[diskKey{s.VM, s.Disk}] = s
	}
	deltas := make([]*core.Snapshot, 0, len(cur))
	for _, s := range cur {
		b, ok := byKey[diskKey{s.VM, s.Disk}]
		if !ok {
			return nil, false
		}
		if s.StateEquals(b) {
			continue // unchanged since the base: omit entirely
		}
		deltas = append(deltas, s.Sub(b))
	}
	return deltas, true
}

// flush delivers queued captures oldest-first until the queue drains or a
// push fails. Single-flighted: deltas are computed against the base at
// send time, and only one sender may advance that base. A failure
// schedules the next attempt with exponential backoff plus ±20% jitter;
// captures enqueued in the meantime wait for it. A resync refusal is not a
// failure: the agent clears its base and immediately retries the same
// capture as full state.
func (a *Agent) flush(now time.Time) error {
	if a.cfg.Endpoint == "" {
		return nil
	}
	a.bmu.Lock()
	gated := now.Before(a.notUntil)
	a.bmu.Unlock()
	if gated {
		return nil
	}
	a.flushMu.Lock()
	defer a.flushMu.Unlock()
	for {
		a.qmu.Lock()
		if len(a.queue) == 0 {
			a.qmu.Unlock()
			a.bmu.Lock()
			a.failures = 0
			a.notUntil = time.Time{}
			a.bmu.Unlock()
			return nil
		}
		q := a.queue[0]
		a.qmu.Unlock()

		if base := a.currentBase(); base != nil && q.seq <= base.seq {
			// Superseded: the aggregator already acknowledged newer state.
			a.dequeueThrough(q.seq)
			continue
		}
		if q.seq < a.seq.Load() {
			a.retries.Add(1)
		}

		wire := a.makeWire(q)
		err := a.push(wire)
		switch {
		case err == nil:
			// Queue dwell: capture to acknowledged delivery, retries and
			// backoff included — the agent-side end-to-end latency.
			a.cfg.Obs.Observe(fleetobs.StageQueueDwell,
				time.Since(time.Unix(0, q.sentUnixNano)), fleetobs.Event{
					Host: a.cfg.Host, TraceID: q.traceID, BatchSeq: q.seq, Shard: -1,
				})
			a.advanceBase(q)
			a.dequeueThrough(q.seq)
			a.bmu.Lock()
			a.failures = 0
			a.bmu.Unlock()
			a.pushes.Add(1)
			if wire.Delta {
				a.deltaPushes.Add(1)
			}
		case errors.Is(err, errResync) && wire.Delta:
			// The aggregator lost our base (restart) or we skipped past it
			// (gap). Forget the base and re-send this same capture as full
			// state, immediately — resync is protocol, not failure.
			a.resyncs.Add(1)
			a.clearBase()
		default:
			a.bmu.Lock()
			a.failures++
			backoff := a.cfg.Interval << (a.failures - 1)
			if backoff > a.cfg.MaxBackoff || backoff <= 0 {
				backoff = a.cfg.MaxBackoff
			}
			// Jitter by ±20% so a fleet of agents that failed together
			// does not retry together.
			jitter := time.Duration(a.rng.Int63n(int64(backoff)/5+1)) - backoff/10
			a.notUntil = now.Add(backoff + jitter)
			a.bmu.Unlock()
			a.pushErrors.Add(1)
			msg := err.Error()
			a.lastErr.Store(&msg)
			return err
		}
	}
}

// dequeueThrough removes every queued capture with seq <= through —
// delivered or superseded state (captures are cumulative, so a newer
// delivery carries everything an older one did).
func (a *Agent) dequeueThrough(through uint64) {
	a.qmu.Lock()
	defer a.qmu.Unlock()
	rest := a.queue[:0]
	for _, q := range a.queue {
		if q.seq > through {
			rest = append(rest, q)
		}
	}
	a.queue = rest
}

// push sends one batch with the per-request timeout.
func (a *Agent) push(b *Batch) error {
	encStart := time.Now()
	body, err := EncodeBatchBytes(b)
	a.cfg.Obs.ObserveSince(fleetobs.StageEncode, encStart, fleetobs.Event{
		Host: a.cfg.Host, TraceID: b.TraceID, BatchSeq: b.Seq, Shard: -1,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, a.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentType)
	ctx, cancel := contextWithTimeout(a.cfg.Timeout)
	defer cancel()
	pushStart := time.Now()
	resp, err := a.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		a.cfg.Obs.ObserveSince(fleetobs.StagePush, pushStart, fleetobs.Event{
			Host: a.cfg.Host, TraceID: b.TraceID, BatchSeq: b.Seq, Shard: -1, Detail: "transport error",
		})
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	a.cfg.Obs.ObserveSince(fleetobs.StagePush, pushStart, fleetobs.Event{
		Host: a.cfg.Host, TraceID: b.TraceID, BatchSeq: b.Seq, Shard: -1, Detail: resp.Status,
	})
	if resp.StatusCode != http.StatusOK {
		// Any 4xx on a delta means this frame can never be applied as-is;
		// re-sending full state is the only road forward. 5xx and
		// transport errors stay retryable failures.
		if b.Delta && resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return fmt.Errorf("%w (aggregator returned %s)", errResync, resp.Status)
		}
		return fmt.Errorf("fleet: aggregator returned %s", resp.Status)
	}
	a.sentBytes.Add(int64(len(body)))
	return nil
}

// PullHandler returns an http.Handler serving the agent's current state as
// one full-state frame — the scrape side of the protocol (pulls carry no
// ack channel, so they are never deltas). GET only.
func (a *Agent) PullHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if r.Method == http.MethodHead {
			return
		}
		q := a.buildBatch()
		EncodeBatch(w, &Batch{
			Host: a.cfg.Host, Seq: q.seq, SentUnixNano: q.sentUnixNano, Snapshots: q.full,
			TraceID: q.traceID, CaptureUnixNano: q.sentUnixNano, Boot: a.boot,
		})
	})
}

// AgentStats is a point-in-time copy of the agent's counters.
type AgentStats struct {
	// Pushes counts batches delivered; DeltaPushes the subset that went
	// over the wire as interval deltas; Errors counts failed delivery
	// attempts; Retries counts deliveries of captures older than the
	// newest; Dropped counts captures evicted from the full retry queue;
	// Resyncs counts delta refusals answered with a full-state push.
	Pushes, DeltaPushes, Errors, Retries, Dropped, Resyncs int64
	// SentBytes totals the wire bytes of delivered batches.
	SentBytes int64
	// QueueLen is the current retry-queue depth and Failures the current
	// consecutive-failure count driving backoff.
	QueueLen, Failures int
	// LastError is the most recent push error ("" when none yet).
	LastError string
}

// Stats returns the agent's counters.
func (a *Agent) Stats() AgentStats {
	a.qmu.Lock()
	qlen := len(a.queue)
	a.qmu.Unlock()
	a.bmu.Lock()
	failures := a.failures
	a.bmu.Unlock()
	s := AgentStats{
		Pushes:      a.pushes.Load(),
		DeltaPushes: a.deltaPushes.Load(),
		Errors:      a.pushErrors.Load(),
		Retries:     a.retries.Load(),
		Dropped:     a.dropped.Load(),
		Resyncs:     a.resyncs.Load(),
		SentBytes:   a.sentBytes.Load(),
		QueueLen:    qlen,
		Failures:    failures,
	}
	if msg := a.lastErr.Load(); msg != nil {
		s.LastError = *msg
	}
	return s
}
