package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
	"vscsistats/internal/telemetry"
)

// ReExporterConfig tunes a ReExporter. Zero values take the documented
// defaults.
type ReExporterConfig struct {
	// Region names this aggregator in the upstream tier — the synthetic
	// host its rolled-up state reports as (e.g. "region-west"). Required.
	Region string
	// Upstream is the parent aggregator's push URL, e.g.
	// "http://global:9108/fleet/push". Required.
	Upstream string
	// Interval is the re-export period (default 2s). It is also the
	// level-aware staleness horizon: a host aging out of this aggregator's
	// merges changes the next rendered rollup, so the upstream view sheds
	// the host within one interval.
	Interval time.Duration
	// Timeout bounds each upstream push request (default 5s).
	Timeout time.Duration
	// PerHostPassthrough re-exports each fresh downstream host as its own
	// upstream entry named Region+"/"+host instead of folding the region
	// into one synthetic host. The upstream then sees every leaf by name,
	// at the cost of upstream ingest scaling with hosts again; the default
	// rollup keeps upstream cost proportional to regions.
	PerHostPassthrough bool
	// DisableDeltas forces every re-export to carry full rendered state.
	// By default, once a push is acknowledged the re-exporter sends only
	// the shards (or hosts) whose merged state changed since — and a
	// liveness-only heartbeat when nothing did.
	DisableDeltas bool
	// Client overrides the HTTP client (the per-request timeout always
	// comes from Timeout).
	Client *http.Client
	// Obs, when set, receives re-export flush latencies (StageReExport)
	// and KindReExport events. Nil disables re-export observability.
	Obs *fleetobs.Tracker
}

func (c *ReExporterConfig) withDefaults() ReExporterConfig {
	out := *c
	if out.Interval <= 0 {
		out.Interval = 2 * time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// reExportBase is the last upstream-acknowledged rendering for one
// upstream host name — the state deltas are computed against.
type reExportBase struct {
	seq  uint64
	full []*core.Snapshot
}

// ReExporter makes an aggregator composable: it re-exports the
// aggregator's merged state upstream through the very same push protocol
// the aggregator ingests, so trees of any depth (agents → region →
// global) are built from one wire format and one ingest path.
//
// The default rollup renders the region as one synthetic upstream host:
// one snapshot per non-empty shard, taken from the shard's memoized merge
// cache — so rendering costs recomputation only for shards that changed,
// and the upstream delta carries only those shards. Upstream wire bytes
// and ingest scale with regions changed, not with leaf hosts.
//
// When nothing changed since the last acknowledged push, the re-exporter
// sends a liveness-only heartbeat: a duplicate delta (same sequence,
// empty payload) that refreshes the upstream's lastSeen without bumping
// its shard version — the upstream merge cache stays valid across quiet
// intervals.
//
// Every frame carries this process's boot incarnation, its federation
// level (1 + the highest level among fresh downstream hosts) and the
// leaf-host count folded in, so the upstream's /fleet/hosts and tier
// telemetry can tell a 640-leaf region from a single agent. A restarted
// re-exporter's first delta draws a boot-changed 409 and answers it with
// full state, exactly like an agent after an aggregator restart.
type ReExporter struct {
	cfg ReExporterConfig
	agg *Aggregator

	// boot is this process's incarnation; traceSalt distinguishes trace
	// IDs across restarts, where seq starts over.
	boot      uint64
	traceSalt uint32

	// mu single-flights flush and guards seqs/bases: deltas are rendered
	// against the base at flush time, and only one flush may advance it.
	mu    sync.Mutex
	seqs  map[string]uint64
	bases map[string]*reExportBase

	pushes      atomic.Int64
	deltaPushes atomic.Int64
	heartbeats  atomic.Int64
	fullPushes  atomic.Int64
	resyncs     atomic.Int64
	pushErrors  atomic.Int64
	sentBytes   atomic.Int64
	level       atomic.Int64
	lastErr     atomic.Pointer[string]

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewReExporter wraps the aggregator with an upstream re-export loop. It
// does not start pushing; call Start, or ReExportNow for a synchronous
// flush.
func NewReExporter(agg *Aggregator, cfg ReExporterConfig) *ReExporter {
	if cfg.Region == "" {
		panic("fleet: ReExporterConfig.Region is required")
	}
	if cfg.Upstream == "" {
		panic("fleet: ReExporterConfig.Upstream is required")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return &ReExporter{
		cfg:       cfg.withDefaults(),
		agg:       agg,
		boot:      newBootID(rng),
		traceSalt: uint32(rng.Int63()),
		seqs:      make(map[string]uint64),
		bases:     make(map[string]*reExportBase),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Region returns the re-exporter's upstream identity.
func (r *ReExporter) Region() string { return r.cfg.Region }

// Start launches the re-export loop. Stop ends it with one final flush,
// so the upstream holds the region's last rendered state.
func (r *ReExporter) Start() {
	r.startOnce.Do(func() {
		go r.run()
	})
}

// Stop ends the re-export loop and waits for it; safe without Start and
// safe to call twice.
func (r *ReExporter) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.startOnce.Do(func() { close(r.done) })
	<-r.done
	r.ReExportNow()
}

func (r *ReExporter) run() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.ReExportNow()
		}
	}
}

// upstreamEntry is one rendered upstream host: the unit of re-export.
type upstreamEntry struct {
	host   string
	level  int
	leaves int
	snaps  []*core.Snapshot
}

// renderRollup folds the aggregator into one synthetic upstream host:
// one snapshot per non-empty shard, straight off the shard's memoized
// merge, shallow-renamed to (Region, shard-NNNN) so entries pair stably
// across intervals. Histograms are shared by reference — snapshots are
// immutable once stored — so rendering copies struct headers, not bins.
// The fold preserves merge exactness: the upstream's merge over these
// shard snapshots equals this aggregator's own cluster merge, because
// aggregation is associative bin by bin.
func (r *ReExporter) renderRollup(now time.Time) upstreamEntry {
	e := upstreamEntry{host: r.cfg.Region}
	for i, sh := range r.agg.shards {
		c, _ := sh.merged(now, r.agg.cfg.StaleAfter, false, !r.agg.cfg.DisableMergeCache)
		if c == nil {
			continue // empty shard: renders nothing, pairs with nothing
		}
		s := *c
		s.VM = r.cfg.Region
		s.Disk = fmt.Sprintf("shard-%04d", i)
		e.snaps = append(e.snaps, &s)
	}
	e.level, e.leaves = r.tierOf(now)
	return e
}

// tierOf computes the level and folded-leaf count this re-exporter stamps
// on upstream frames: one more than the highest level among fresh
// downstream hosts, and the sum of their leaf counts.
func (r *ReExporter) tierOf(now time.Time) (level, leaves int) {
	maxLevel := 0
	for _, sh := range r.agg.shards {
		sh.mu.RLock()
		for _, st := range sh.hosts {
			if now.Sub(st.lastSeen) > r.agg.cfg.StaleAfter {
				continue
			}
			if st.level > maxLevel {
				maxLevel = st.level
			}
			if st.leaves > 0 {
				leaves += st.leaves
			} else {
				leaves++
			}
		}
		sh.mu.RUnlock()
	}
	return maxLevel + 1, leaves
}

// renderPassthrough renders each fresh downstream host as its own
// upstream entry named Region+"/"+host, sorted by name. Snapshots are
// shared by reference with the shard's stored state.
func (r *ReExporter) renderPassthrough(now time.Time) []upstreamEntry {
	var out []upstreamEntry
	for _, sh := range r.agg.shards {
		sh.mu.RLock()
		for _, st := range sh.hosts {
			if now.Sub(st.lastSeen) > r.agg.cfg.StaleAfter {
				continue
			}
			leaves := st.leaves
			if leaves <= 0 {
				leaves = 1
			}
			out = append(out, upstreamEntry{
				host:   r.cfg.Region + "/" + st.host,
				level:  st.level + 1,
				leaves: leaves,
				snaps:  st.snaps,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].host < out[j].host })
	return out
}

// ReExportNow renders the aggregator's current state and pushes it
// upstream synchronously, returning the first push error. The
// deterministic flush used by tests, benchmarks and operators forcing a
// final export; the Start loop calls it once per Interval.
func (r *ReExporter) ReExportNow() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	now := r.agg.now()
	entries := []upstreamEntry{r.renderRollup(now)}
	if r.cfg.PerHostPassthrough {
		entries = r.renderPassthrough(now)
	}
	var first error
	for _, e := range entries {
		if err := r.flushEntry(e); err != nil && first == nil {
			first = err
		}
	}
	if maxLevel := maxEntryLevel(entries); maxLevel > 0 {
		r.level.Store(int64(maxLevel))
	}
	d := time.Since(start)
	r.cfg.Obs.Observe(fleetobs.StageReExport, d, fleetobs.Event{
		Host: r.cfg.Region, Shard: -1,
	})
	return first
}

func maxEntryLevel(entries []upstreamEntry) int {
	m := 0
	for _, e := range entries {
		if e.level > m {
			m = e.level
		}
	}
	return m
}

// flushEntry delivers one upstream host's rendering: a delta of the
// changed snapshots when a base exists and the disk sets line up, a
// liveness-only heartbeat when nothing changed, full state otherwise. A
// delta the upstream refuses with a 4xx (restart, gap, boot change)
// clears the base and immediately re-sends this same rendering full —
// resync is protocol, not failure.
func (r *ReExporter) flushEntry(e upstreamEntry) error {
	seq := r.seqs[e.host]
	base := r.bases[e.host]
	if base != nil && !r.cfg.DisableDeltas {
		if deltas, ok := subAgainst(e.snaps, base.full); ok {
			var b *Batch
			if len(deltas) == 0 {
				// Nothing changed: heartbeat as a duplicate delta — the
				// upstream's duplicate path refreshes lastSeen, applies
				// nothing, logs nothing and leaves its merge cache valid.
				b = r.frame(e, base.seq, base.seq-1, true, nil)
			} else {
				seq++
				b = r.frame(e, seq, base.seq, true, deltas)
			}
			err := r.push(b)
			switch {
			case err == nil:
				if len(deltas) == 0 {
					r.pushes.Add(1)
					r.heartbeats.Add(1)
					r.emitPush(b, "heartbeat", len(e.snaps))
					return nil
				}
				r.seqs[e.host] = seq
				r.bases[e.host] = &reExportBase{seq: seq, full: e.snaps}
				r.pushes.Add(1)
				r.deltaPushes.Add(1)
				r.emitPush(b, "delta", len(deltas))
				return nil
			case errors.Is(err, errResync):
				// The upstream lost our base, restarted, or sees a
				// different boot claiming our name — heartbeats draw this
				// too. Forget the base and fall through to the full push.
				r.resyncs.Add(1)
				delete(r.bases, e.host)
				seq = r.seqs[e.host]
			default:
				return r.noteError(e, err)
			}
		}
	}
	seq++
	f := r.frame(e, seq, 0, false, e.snaps)
	if err := r.push(f); err != nil {
		return r.noteError(e, err)
	}
	r.seqs[e.host] = seq
	r.bases[e.host] = &reExportBase{seq: seq, full: e.snaps}
	r.pushes.Add(1)
	r.fullPushes.Add(1)
	r.emitPush(f, "full", len(e.snaps))
	return nil
}

// frame builds one upstream wire batch for the entry.
func (r *ReExporter) frame(e upstreamEntry, seq, baseSeq uint64, delta bool, snaps []*core.Snapshot) *Batch {
	now := time.Now().UnixNano()
	b := &Batch{
		Host:            e.host,
		Seq:             seq,
		SentUnixNano:    now,
		Delta:           delta,
		Snapshots:       snaps,
		TraceID:         fmt.Sprintf("%s-%08x-%d", e.host, r.traceSalt, seq),
		CaptureUnixNano: now,
		Boot:            r.boot,
		Level:           e.level,
		Leaves:          e.leaves,
	}
	if delta {
		b.BaseSeq = baseSeq
	}
	return b
}

// push sends one batch upstream with the per-request timeout; any 4xx on
// a delta folds into errResync, exactly like the agent's push.
func (r *ReExporter) push(b *Batch) error {
	body, err := EncodeBatchBytes(b)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, r.cfg.Upstream, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ContentType)
	ctx, cancel := contextWithTimeout(r.cfg.Timeout)
	defer cancel()
	resp, err := r.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		if b.Delta && resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return fmt.Errorf("%w (upstream returned %s)", errResync, resp.Status)
		}
		return fmt.Errorf("fleet: upstream returned %s", resp.Status)
	}
	r.sentBytes.Add(int64(len(body)))
	return nil
}

// noteError records a failed upstream delivery.
func (r *ReExporter) noteError(e upstreamEntry, err error) error {
	r.pushErrors.Add(1)
	msg := err.Error()
	r.lastErr.Store(&msg)
	r.cfg.Obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindReExport, Scope: "aggregator",
		Host: e.host, Shard: -1, Detail: "error: " + msg,
	})
	return err
}

// emitPush records one delivered upstream frame as a KindReExport event.
func (r *ReExporter) emitPush(b *Batch, mode string, snaps int) {
	r.cfg.Obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindReExport, Scope: "aggregator",
		Host: b.Host, TraceID: b.TraceID, BatchSeq: b.Seq, Shard: -1,
		Detail: fmt.Sprintf("%s snapshots=%d level=%d leaves=%d", mode, snaps, b.Level, b.Leaves),
	})
}

// ReExporterStats is a point-in-time copy of the re-exporter's counters.
type ReExporterStats struct {
	// Region and Upstream identify the re-export edge; Level is the
	// federation level last stamped on upstream frames (0 before the
	// first flush).
	Region   string
	Upstream string
	Level    int
	// Pushes counts frames delivered upstream; DeltaPushes, Heartbeats
	// and FullPushes split them by mode (heartbeats are liveness-only
	// duplicates). Resyncs counts upstream delta refusals answered with
	// full state; Errors counts failed delivery attempts.
	Pushes, DeltaPushes, Heartbeats, FullPushes, Resyncs, Errors int64
	// SentBytes totals the wire bytes delivered upstream.
	SentBytes int64
	// LastError is the most recent delivery error ("" when none yet).
	LastError string
}

// Stats returns the re-exporter's counters.
func (r *ReExporter) Stats() ReExporterStats {
	s := ReExporterStats{
		Region:      r.cfg.Region,
		Upstream:    r.cfg.Upstream,
		Level:       int(r.level.Load()),
		Pushes:      r.pushes.Load(),
		DeltaPushes: r.deltaPushes.Load(),
		Heartbeats:  r.heartbeats.Load(),
		FullPushes:  r.fullPushes.Load(),
		Resyncs:     r.resyncs.Load(),
		Errors:      r.pushErrors.Load(),
		SentBytes:   r.sentBytes.Load(),
	}
	if msg := r.lastErr.Load(); msg != nil {
		s.LastError = *msg
	}
	return s
}

// FleetReExportStats implements telemetry.FleetReExportSource for the
// vscsistats_fleet_tier_reexport_* series.
func (r *ReExporter) FleetReExportStats() telemetry.FleetReExport {
	s := r.Stats()
	return telemetry.FleetReExport{
		Region:      s.Region,
		Upstream:    s.Upstream,
		Level:       s.Level,
		Pushes:      s.Pushes,
		DeltaPushes: s.DeltaPushes,
		Heartbeats:  s.Heartbeats,
		FullPushes:  s.FullPushes,
		Resyncs:     s.Resyncs,
		Errors:      s.Errors,
		SentBytes:   s.SentBytes,
	}
}
