package fleet

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
)

// TestTraceIDFollowsPipeline is the end-to-end observability proof: one
// push's trace ID, stamped at agent capture, is followed through wire
// decode, shard apply and segment-log append — and every stage on the
// way emitted both a ring event and a histogram sample.
func TestTraceIDFollowsPipeline(t *testing.T) {
	aggObs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	dir := t.TempDir()
	agg, _, err := OpenAggregator(AggregatorConfig{
		StaleAfter: time.Hour, DataDir: dir, SyncInterval: -1, Obs: aggObs,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(agg)
	defer srv.Close()

	agentObs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	reg := makeRegistry(3, 1, 2, 120)
	a := NewAgent(reg, AgentConfig{
		Host: "esx-trace", Endpoint: srv.URL + "/fleet/push", Obs: agentObs,
	})
	if err := a.PushNow(); err != nil {
		t.Fatalf("full push: %v", err)
	}
	feed(reg.List()[0], 5, 60)
	if err := a.PushNow(); err != nil {
		t.Fatalf("delta push: %v", err)
	}
	if st := a.Stats(); st.DeltaPushes != 1 {
		t.Fatalf("second push was not a delta: %+v", st)
	}
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}

	// The second capture's trace ID, read off its capture event.
	var traceID string
	for _, e := range agentObs.Events(0) {
		if e.Stage == "capture" && e.BatchSeq == 2 {
			traceID = e.TraceID
		}
	}
	if traceID == "" {
		t.Fatal("no capture event for batch 2 on the agent")
	}
	if !strings.HasPrefix(traceID, "esx-trace-") {
		t.Fatalf("trace ID %q does not carry the host name", traceID)
	}

	// Every stage the push crossed must have emitted an event carrying
	// the trace ID AND a histogram sample.
	checkStages := func(tr *fleetobs.Tracker, side string, stages map[string]fleetobs.Stage) {
		t.Helper()
		byStage := map[string]bool{}
		for _, e := range tr.Events(0) {
			if e.TraceID == traceID && e.Kind == fleetobs.KindStage {
				byStage[e.Stage] = true
			}
		}
		for name, st := range stages {
			if !byStage[name] {
				t.Errorf("%s: no %s event for trace %s (events: %+v)", side, name, traceID, byStage)
			}
			if got := tr.Hist(st).Total(); got < 1 {
				t.Errorf("%s: %s histogram empty", side, name)
			}
		}
	}
	checkStages(agentObs, "agent", map[string]fleetobs.Stage{
		"capture":      fleetobs.StageCapture,
		"delta_render": fleetobs.StageDeltaRender,
		"encode":       fleetobs.StageEncode,
		"push":         fleetobs.StagePush,
		"queue_dwell":  fleetobs.StageQueueDwell,
	})
	checkStages(aggObs, "aggregator", map[string]fleetobs.Stage{
		"decode":     fleetobs.StageDecode,
		"lock_wait":  fleetobs.StageLockWait,
		"ingest":     fleetobs.StageIngest,
		"log_append": fleetobs.StageLogAppend,
	})
	// The batched fsync (every append under SyncInterval -1) has no
	// per-batch trace, but must have been timed.
	if got := aggObs.Hist(fleetobs.StageFsync).Total(); got < 1 {
		t.Error("aggregator: fsync histogram empty despite SyncInterval -1")
	}
	// The push as a whole surfaced as a structural event with the trace.
	var sawPush bool
	for _, e := range aggObs.Events(0) {
		if e.Kind == fleetobs.KindPush && e.TraceID == traceID {
			sawPush = true
		}
	}
	if !sawPush {
		t.Error("aggregator: no push event for the traced batch")
	}

	// Finally the durable end: the delta frame in the segment log still
	// carries the trace ID.
	var found bool
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, segSuffix) {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		for {
			b, err := DecodeBatch(f)
			if err != nil {
				return nil
			}
			if b.TraceID == traceID && b.Delta {
				found = true
			}
		}
	})
	if !found {
		t.Error("segment log holds no delta frame with the trace ID")
	}
}

// TestWireV1FrameDecodes pins backward compatibility: a version-1 frame
// (no trace fields, version byte 1) decodes cleanly on the current
// decoder, with the trace fields zero.
func TestWireV1FrameDecodes(t *testing.T) {
	reg := makeRegistry(4, 1, 1, 40)
	data, err := EncodeBatchBytes(&Batch{Host: "old-sender", Seq: 3, Snapshots: reg.Snapshots()})
	if err != nil {
		t.Fatal(err)
	}
	// A no-trace batch's JSON header is byte-identical to what a v1
	// writer produces (omitempty drops the new fields); only the version
	// byte differs.
	data[4] = 1
	b, err := DecodeBatch(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode of version-1 frame: %v", err)
	}
	if b.Host != "old-sender" || b.Seq != 3 {
		t.Errorf("decoded %q/%d", b.Host, b.Seq)
	}
	if b.TraceID != "" || b.CaptureUnixNano != 0 {
		t.Errorf("v1 frame grew trace fields: %q/%d", b.TraceID, b.CaptureUnixNano)
	}
}

// TestWireOldDecoderAcceptsTracedFrame simulates a version-1 reader on a
// version-2 frame: the v1 decode rule was "any version >= 1, known
// flags only, unknown JSON header fields ignored" — exactly what the
// current decoder still implements — so stripping the trace fields from
// the header must leave a frame the same decoder accepts, and the full
// v2 frame differs from it only in ignorable header JSON.
func TestWireOldDecoderAcceptsTracedFrame(t *testing.T) {
	reg := makeRegistry(5, 1, 1, 40)
	b := &Batch{
		Host: "new-sender", Seq: 9, Snapshots: reg.Snapshots(),
		TraceID: "new-sender-00000001-9", CaptureUnixNano: 123456789,
	}
	data, err := EncodeBatchBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if data[4] != Version || Version != 3 {
		t.Fatalf("version byte %d, want 3", data[4])
	}
	got, err := DecodeBatch(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode of version-2 frame: %v", err)
	}
	if got.TraceID != b.TraceID || got.CaptureUnixNano != b.CaptureUnixNano {
		t.Errorf("trace fields dropped: %q/%d", got.TraceID, got.CaptureUnixNano)
	}
	// The extension rides ONLY in the JSON header: same flags, and the
	// header with the new fields removed is a valid v1 header.
	if data[5] != flagGzip {
		t.Errorf("v2 full frame flags %#x, want gzip only", data[5])
	}
	headerLen := binary.BigEndian.Uint32(data[8:12])
	var hdr map[string]any
	if err := json.Unmarshal(data[16:16+headerLen], &hdr); err != nil {
		t.Fatal(err)
	}
	delete(hdr, "trace_id")
	delete(hdr, "capture_unix_nano")
	for k := range hdr {
		switch k {
		case "host", "seq", "sent_unix_nano", "count", "base_seq":
		default:
			t.Errorf("unexpected header field %q — a v1 reader never saw it vetted", k)
		}
	}
}

// TestWireUnknownFutureHeaderFieldIgnored hand-builds a frame whose
// header carries a field no decoder knows (the version-3 scenario): it
// must decode, not reject — the forward-compatibility rule the trace
// fields themselves relied on.
func TestWireUnknownFutureHeaderFieldIgnored(t *testing.T) {
	header := []byte(`{"host":"future","seq":5,"count":0,"future_field":"xyzzy","trace_id":"future-1-5"}`)
	var payload bytes.Buffer
	zw := gzip.NewWriter(&payload)
	io.WriteString(zw, "[]")
	zw.Close()

	var frame bytes.Buffer
	head := make([]byte, 16)
	copy(head[0:4], wireMagic[:])
	head[4] = 3 // a future version
	head[5] = flagGzip
	binary.BigEndian.PutUint32(head[8:12], uint32(len(header)))
	binary.BigEndian.PutUint32(head[12:16], uint32(payload.Len()))
	frame.Write(head)
	frame.Write(header)
	frame.Write(payload.Bytes())

	b, err := DecodeBatch(&frame)
	if err != nil {
		t.Fatalf("future-version frame with unknown header field: %v", err)
	}
	if b.Host != "future" || b.Seq != 5 || b.TraceID != "future-1-5" {
		t.Errorf("decoded %q/%d/%q", b.Host, b.Seq, b.TraceID)
	}
}

// TestResyncCauseCounters drives each refusal path and checks the
// per-cause counters split the total exactly.
func TestResyncCauseCounters(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	reg := makeRegistry(6, 1, 1, 80)
	base := reg.Snapshots()
	feed(reg.List()[0], 7, 40)
	cur := reg.Snapshots()

	// unknown-host: a delta before any full.
	if err := g.Ingest(deltaBatch(t, "esx-x", 2, 1, base, cur), "push"); err == nil {
		t.Fatal("delta for unknown host applied")
	}
	// seq-gap: full at 1, delta claiming base 5.
	pushFull(t, g, "esx-x", 1, reg)
	if err := g.Ingest(deltaBatch(t, "esx-x", 6, 5, base, cur), "push"); err == nil {
		t.Fatal("gapped delta applied")
	}
	// unknown-disk: a delta naming a disk the stored base does not hold.
	other := makeRegistry(7, 1, 2, 50) // different host's vm/disk names
	feed(other.List()[0], 9, 30)
	unknownDisk := &Batch{
		Host: "esx-x", Seq: 2, BaseSeq: 1, Delta: true,
		Snapshots: []*core.Snapshot{other.Snapshots()[1].Sub(nil)},
	}
	if err := g.Ingest(unknownDisk, "push"); err == nil {
		t.Fatal("delta for unknown disk applied")
	}
	// layout-mismatch: a delta whose snapshots fail validation (here: a
	// snapshot with no histograms at all, the shape a layout-skewed or
	// mangled sender produces).
	var bare core.Snapshot
	if err := json.Unmarshal([]byte(`{"vm":"vm0","disk":"disk0"}`), &bare); err != nil {
		t.Fatal(err)
	}
	mismatch := &Batch{
		Host: "esx-x", Seq: 3, BaseSeq: 1, Delta: true,
		Snapshots: []*core.Snapshot{&bare},
	}
	err := g.Ingest(mismatch, "push")
	if err == nil {
		t.Fatal("layout-mismatched delta applied")
	}
	if !errorsIsResync(err) {
		t.Fatalf("layout mismatch on a delta: err = %v, want a resync", err)
	}

	st := g.Stats()
	if st.ResyncUnknownHost != 1 || st.ResyncSeqGap != 1 || st.ResyncUnknownDisk != 1 || st.ResyncLayoutMismatch != 1 {
		t.Errorf("per-cause = host:%d gap:%d disk:%d layout:%d, want 1 each",
			st.ResyncUnknownHost, st.ResyncSeqGap, st.ResyncUnknownDisk, st.ResyncLayoutMismatch)
	}
	if st.Resyncs != 4 {
		t.Errorf("total resyncs = %d, want 4 (the sum of causes)", st.Resyncs)
	}
	// A full batch failing validation stays a rejection, not a resync.
	if err := g.Ingest(&Batch{Host: "esx-x", Seq: 4, Snapshots: []*core.Snapshot{&bare}}, "push"); err == nil || errorsIsResync(err) {
		t.Errorf("invalid FULL batch: err = %v, want non-resync rejection", err)
	}
	if got := g.Stats().Resyncs; got != 4 {
		t.Errorf("full-batch rejection bumped resyncs to %d", got)
	}
}

// TestResyncCause409Body checks the HTTP push surface serializes the
// typed cause into the 409 body, so agents and operators can tell a
// restart storm from version skew without parsing error strings.
func TestResyncCause409Body(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	srv := httptest.NewServer(g)
	defer srv.Close()

	reg := makeRegistry(8, 1, 1, 60)
	base := reg.Snapshots()
	feed(reg.List()[0], 3, 30)
	frame, err := EncodeBatchBytes(deltaBatch(t, "esx-y", 2, 1, base, reg.Snapshots()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/fleet/push", ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
	var body struct {
		Error       string `json:"error"`
		ResyncCause string `json:"resync_cause"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ResyncCause != string(ResyncUnknownHost) {
		t.Errorf("resync_cause = %q, want %q", body.ResyncCause, ResyncUnknownHost)
	}
	if body.Error == "" || !strings.Contains(body.Error, "resync") {
		t.Errorf("error body %q lost the human-readable message", body.Error)
	}
}

// TestObservabilityRoutes checks /fleet/events and /fleet/slow are 404
// without a tracker and live with one.
func TestObservabilityRoutes(t *testing.T) {
	bare := httptest.NewServer(NewAggregator(AggregatorConfig{StaleAfter: time.Hour}))
	defer bare.Close()
	for _, route := range []string{"/fleet/events", "/fleet/slow"} {
		resp, err := http.Get(bare.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without Obs: %d, want 404", route, resp.StatusCode)
		}
	}

	obs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Obs: obs})
	srv := httptest.NewServer(g)
	defer srv.Close()
	reg := makeRegistry(9, 1, 1, 30)
	pushFull(t, g, "esx-z", 1, reg)
	resp, err := http.Get(srv.URL + "/fleet/events?kind=stage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet/events with Obs: %d", resp.StatusCode)
	}
	var events struct {
		Total  int64            `json:"total"`
		Events []fleetobs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if events.Total < 1 || len(events.Events) < 1 {
		t.Errorf("events after an ingest: total %d, %d returned", events.Total, len(events.Events))
	}
	resp2, err := http.Get(srv.URL + "/fleet/slow?threshold=0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/fleet/slow with Obs: %d", resp2.StatusCode)
	}
}
