package fleet

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
)

// treeRegion wires one mid-tier: an aggregator fed by test pushes, plus
// its re-exporter pointed at the global tier's push URL.
type treeRegion struct {
	agg *Aggregator
	rex *ReExporter
}

func newTreeRegion(t *testing.T, name, upstream string, shards int) *treeRegion {
	t.Helper()
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: shards})
	rex := NewReExporter(agg, ReExporterConfig{Region: name, Upstream: upstream})
	return &treeRegion{agg: agg, rex: rex}
}

// TestReExportTreeMergeEquivalence is the correctness anchor of the
// federation design: a 3-level tree (agents → two regions → global) must
// leave the global tier holding a cluster merge bin-identical to (a) one
// flat collector fed every host directly and (b) the merge of the two
// regions' own cluster views — at every level, aggregation is the same
// associative fold. It also pins the liveness metadata: the global sees
// two level-1 synthetic hosts carrying the leaf counts of their regions.
func TestReExportTreeMergeEquivalence(t *testing.T) {
	global := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour, Shards: 4})
	west := newTreeRegion(t, "region-west", global.pushURL(), 4)
	east := newTreeRegion(t, "region-east", global.pushURL(), 2)

	flat := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	var all []*core.Snapshot
	for i := 0; i < 7; i++ {
		reg := makeRegistry(i, 2, 2, 100+i*30)
		host := fmt.Sprintf("esx-%02d", i)
		region := west
		if i%2 == 1 {
			region = east
		}
		pushFull(t, region.agg, host, 1, reg)
		pushFull(t, flat, host, 1, reg)
		all = append(all, reg.Snapshots()...)
	}
	if err := west.rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	if err := east.rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}

	want := core.Aggregate("cluster", "*", all...)
	got := global.agg.ClusterSnapshot(false)
	if got == nil || !sameSnapshot(got, want) {
		t.Error("global cluster merge not bin-exact vs one collector fed everything")
	}
	if !sameSnapshot(got, flat.ClusterSnapshot(false)) {
		t.Error("global cluster merge diverged from the flat aggregator control")
	}
	regionMerge := core.Aggregate("cluster", "*",
		west.agg.ClusterSnapshot(false), east.agg.ClusterSnapshot(false))
	if !sameSnapshot(got, regionMerge) {
		t.Error("global cluster merge diverged from the merge of region views")
	}

	hosts := global.agg.Hosts()
	if len(hosts) != 2 {
		t.Fatalf("global hosts = %d, want the 2 region rollups", len(hosts))
	}
	byName := map[string]HostStatus{}
	for _, h := range hosts {
		byName[h.Host] = h
	}
	for name, wantLeaves := range map[string]int{"region-west": 4, "region-east": 3} {
		h, ok := byName[name]
		if !ok {
			t.Fatalf("global missing rollup host %q: %+v", name, hosts)
		}
		if h.Level != 1 || h.Leaves != wantLeaves {
			t.Errorf("%s level/leaves = %d/%d, want 1/%d", name, h.Level, h.Leaves, wantLeaves)
		}
	}
	tiers := global.agg.Tiers()
	if len(tiers) != 1 || tiers[0].Level != 1 || tiers[0].Hosts != 2 || tiers[0].Leaves != 7 {
		t.Errorf("global tiers = %+v, want one level-1 tier with 2 hosts, 7 leaves", tiers)
	}
	for _, rex := range []*ReExporter{west.rex, east.rex} {
		if st := rex.Stats(); st.Level != 1 || st.FullPushes != 1 || st.Errors != 0 {
			t.Errorf("%s stats = %+v, want level 1, one full push, no errors", rex.Region(), st)
		}
	}
}

// TestReExportDeltasScaleWithRegionsChanged pins the perf property the
// tentpole is for: after the first acknowledged push, a change confined
// to one downstream host re-exports as a delta carrying only that host's
// shard — and a quiet interval re-exports as a liveness-only heartbeat
// that leaves the upstream's merge cache valid.
func TestReExportDeltasScaleWithRegionsChanged(t *testing.T) {
	global := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour})
	region := newTreeRegion(t, "region-a", global.pushURL(), 8)

	regs := make([]*core.Registry, 6)
	for i := range regs {
		regs[i] = makeRegistry(i, 1, 2, 120)
		pushFull(t, region.agg, fmt.Sprintf("esx-%02d", i), 1, regs[i])
	}
	if err := region.rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	fullBytes := region.rex.Stats().SentBytes

	// One leaf changes: the next re-export is a delta of one shard.
	feed(regs[2].List()[0], 999, 80)
	pushFull(t, region.agg, "esx-02", 2, regs[2])
	if err := region.rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	st := region.rex.Stats()
	if st.DeltaPushes != 1 || st.FullPushes != 1 {
		t.Fatalf("after one changed host: %+v, want 1 delta + 1 full", st)
	}
	// The ≥3× win is measured at 10k-host scale by BenchmarkFleetTreeIngest10k;
	// at 6 hosts the fixed frame overhead dominates, so here the delta just
	// has to beat re-sending the full rollup.
	deltaBytes := st.SentBytes - fullBytes
	if deltaBytes <= 0 || deltaBytes >= fullBytes {
		t.Errorf("one-shard delta cost %d bytes vs %d full — no wire win", deltaBytes, fullBytes)
	}
	var want []*core.Snapshot
	for _, reg := range regs {
		want = append(want, reg.Snapshots()...)
	}
	if got := global.agg.ClusterSnapshot(false); !sameSnapshot(got, core.Aggregate("cluster", "*", want...)) {
		t.Error("global view diverged after delta re-export")
	}

	// Quiet interval: heartbeat only — the upstream sees a duplicate
	// (liveness refresh, nothing applied) and its merge cache survives.
	gst := global.agg.Stats()
	before := global.agg.ClusterSnapshot(false)
	hitsBefore := global.agg.Stats().MergeCacheHits
	if err := region.rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	st = region.rex.Stats()
	if st.Heartbeats != 1 {
		t.Fatalf("quiet interval sent %+v, want 1 heartbeat", st)
	}
	after := global.agg.Stats()
	if after.Duplicates != gst.Duplicates+1 || after.DeltasApplied != gst.DeltasApplied {
		t.Errorf("heartbeat ingest: duplicates %d→%d, applied %d→%d, want one duplicate, nothing applied",
			gst.Duplicates, after.Duplicates, gst.DeltasApplied, after.DeltasApplied)
	}
	if got := global.agg.ClusterSnapshot(false); !sameSnapshot(got, before) {
		t.Error("heartbeat changed the global view")
	}
	if hits := global.agg.Stats().MergeCacheHits; hits <= hitsBefore {
		t.Errorf("merge cache hits %d→%d: heartbeat invalidated the upstream cache", hitsBefore, hits)
	}
}

// TestReExportLevelAwareStaleness pins the staleness algebra: a host
// going stale at its region drops out of the region's merge, and the very
// next re-export horizon carries the shrunken state upstream — the global
// never needs its own per-leaf liveness to forget a dead leaf.
func TestReExportLevelAwareStaleness(t *testing.T) {
	global := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour})
	agg, clk := newTestAggregator(10 * time.Second)
	rex := NewReExporter(agg, ReExporterConfig{Region: "region-a", Upstream: global.pushURL()})

	regA, regB := makeRegistry(1, 1, 1, 100), makeRegistry(2, 1, 1, 150)
	pushFull(t, agg, "esx-a", 1, regA)
	pushFull(t, agg, "esx-b", 1, regB)
	if err := rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	both := core.Aggregate("cluster", "*", append(regA.Snapshots(), regB.Snapshots()...)...)
	if got := global.agg.ClusterSnapshot(false); !sameSnapshot(got, both) {
		t.Fatal("global view wrong before the host went stale")
	}

	// esx-b stops reporting; esx-a keeps refreshing its liveness.
	clk.advance(11 * time.Second)
	pushFull(t, agg, "esx-a", 2, regA)
	if err := rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	onlyA := core.Aggregate("cluster", "*", regA.Snapshots()...)
	if got := global.agg.ClusterSnapshot(false); !sameSnapshot(got, onlyA) {
		t.Error("global still carries the stale host after one re-export horizon")
	}
	if h := global.agg.Hosts(); len(h) != 1 || h[0].Leaves != 1 {
		t.Errorf("global rollup leaves = %+v, want 1 after esx-b aged out", h)
	}
}

// TestReExportPartitionShapeIrrelevant is the tree-shape property: however
// N hosts are partitioned into regions — one region holding everything, a
// region per host, or anything random in between — the global cluster view
// is bit-identical to the flat control. Run under -race in CI.
func TestReExportPartitionShapeIrrelevant(t *testing.T) {
	const numHosts = 9
	regs := make([]*core.Registry, numHosts)
	var all []*core.Snapshot
	for i := range regs {
		regs[i] = makeRegistry(i, 2, 1, 80+i*15)
		all = append(all, regs[i].Snapshots()...)
	}
	want := core.Aggregate("cluster", "*", all...)

	rng := rand.New(rand.NewSource(42))
	partitions := [][]int{
		make([]int, numHosts), // one region holds every host
		nil,                   // one region per host (filled below)
	}
	for i := 0; i < numHosts; i++ {
		partitions[1] = append(partitions[1], i)
	}
	for p := 0; p < 3; p++ { // seeded-random partitions into 2..4 regions
		k := 2 + rng.Intn(3)
		part := make([]int, numHosts)
		for i := range part {
			part[i] = rng.Intn(k)
		}
		partitions = append(partitions, part)
	}

	for pi, part := range partitions {
		global := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour, Shards: 4})
		regions := map[int]*treeRegion{}
		for host, ri := range part {
			r, ok := regions[ri]
			if !ok {
				r = newTreeRegion(t, fmt.Sprintf("region-%02d", ri), global.pushURL(), 1+ri%8)
				regions[ri] = r
			}
			pushFull(t, r.agg, fmt.Sprintf("esx-%02d", host), 1, regs[host])
		}
		for _, r := range regions {
			if err := r.rex.ReExportNow(); err != nil {
				t.Fatalf("partition %d: %v", pi, err)
			}
		}
		got := global.agg.ClusterSnapshot(false)
		if got == nil || !sameSnapshot(got, want) {
			t.Errorf("partition %d (%d regions): global view not bit-identical to flat control",
				pi, len(regions))
		}
		var leaves int
		for _, h := range global.agg.Hosts() {
			leaves += h.Leaves
		}
		if leaves != numHosts {
			t.Errorf("partition %d: global counts %d leaves, want %d", pi, leaves, numHosts)
		}
		if fails := global.failures.Load(); fails != 0 {
			t.Errorf("partition %d: %d non-200s from the global tier", pi, fails)
		}
	}
}

// TestReExportPassthroughForwardsEveryHost pins the per-host passthrough
// mode: each fresh downstream host reappears upstream by prefixed name at
// level 1, and the global merge stays bin-exact.
func TestReExportPassthroughForwardsEveryHost(t *testing.T) {
	global := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour})
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 4})
	rex := NewReExporter(agg, ReExporterConfig{
		Region: "region-a", Upstream: global.pushURL(), PerHostPassthrough: true,
	})

	var all []*core.Snapshot
	for i := 0; i < 4; i++ {
		reg := makeRegistry(i, 1, 2, 100)
		pushFull(t, agg, fmt.Sprintf("esx-%02d", i), 1, reg)
		all = append(all, reg.Snapshots()...)
	}
	if err := rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	hosts := global.agg.Hosts()
	if len(hosts) != 4 {
		t.Fatalf("global hosts = %d, want 4 passthrough entries", len(hosts))
	}
	for _, h := range hosts {
		if !strings.HasPrefix(h.Host, "region-a/esx-") || h.Level != 1 || h.Leaves != 1 {
			t.Errorf("passthrough entry %+v, want region-a/esx-* at level 1, 1 leaf", h)
		}
	}
	if got := global.agg.ClusterSnapshot(false); !sameSnapshot(got, core.Aggregate("cluster", "*", all...)) {
		t.Error("passthrough global merge not bin-exact")
	}

	// Unchanged second pass: one heartbeat per forwarded host.
	if err := rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}
	if st := rex.Stats(); st.Heartbeats != 4 {
		t.Errorf("quiet passthrough interval: %+v, want 4 heartbeats", st)
	}
}

// TestReExportTraceTraversesTwoHops pins trace continuity across the
// tree: the agent's trace ID is visible in the region's pipeline events
// (hop one), and the re-exporter's trace ID — stamped on the frame it
// renders — is visible in the global's events (hop two), so
// /debug/fleettrace at each tier shows its hop of the path and the
// KindReExport event links them through the region name.
func TestReExportTraceTraversesTwoHops(t *testing.T) {
	regionObs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	globalObs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	global := newAggServer(t, AggregatorConfig{StaleAfter: time.Hour, Obs: globalObs})
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Obs: regionObs})
	regionSrv := httptest.NewServer(agg)
	t.Cleanup(regionSrv.Close)
	rex := NewReExporter(agg, ReExporterConfig{
		Region: "region-a", Upstream: global.pushURL(), Obs: regionObs,
	})

	reg := makeRegistry(3, 1, 1, 90)
	a := NewAgent(reg, AgentConfig{Host: "esx-a", Endpoint: regionSrv.URL + "/fleet/push"})
	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	if err := rex.ReExportNow(); err != nil {
		t.Fatal(err)
	}

	tracesAt := func(tr *fleetobs.Tracker, stage string) map[string]bool {
		out := map[string]bool{}
		for _, e := range tr.Events(0) {
			if (stage == "" || e.Stage == stage) && e.TraceID != "" {
				out[e.TraceID] = true
			}
		}
		return out
	}
	agentPrefix, rexPrefix := "esx-a-", "region-a-"

	// Hop one: the agent's trace reached the region's ingest stage.
	hop1 := tracesAt(regionObs, "ingest")
	if !hasPrefixIn(hop1, agentPrefix) {
		t.Errorf("region ingest events carry traces %v, none from %s*", keys(hop1), agentPrefix)
	}
	// Hop two: the re-exported frame's trace reached the global's ingest.
	hop2 := tracesAt(globalObs, "ingest")
	if !hasPrefixIn(hop2, rexPrefix) {
		t.Errorf("global ingest events carry traces %v, none from %s*", keys(hop2), rexPrefix)
	}
	// The link between hops: the region emitted a KindReExport event whose
	// trace is exactly what the global saw.
	var linked bool
	for _, e := range regionObs.Events(0) {
		if e.Kind == fleetobs.KindReExport && hop2[e.TraceID] {
			linked = true
		}
	}
	if !linked {
		t.Error("no KindReExport event at the region matches a trace ingested by the global")
	}
}

func hasPrefixIn(set map[string]bool, prefix string) bool {
	for id := range set {
		if strings.HasPrefix(id, prefix) {
			return true
		}
	}
	return false
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	return out
}

// TestFleetChaosKillMidTierAggregator is the federation failure drill:
// agents delta-push into a region whose aggregator AND re-exporter are
// killed and replaced mid-run (state lost, new boot incarnation). The
// agents resync to the new region via 409s, the new re-exporter's first
// delta draws a boot-changed 409 from the global and resyncs with full
// state, and at the end the global's view is bin-exact against the
// registries. The only non-200s anywhere are the protocol's 409s. Run
// under -race in CI with the other chaos scenarios.
func TestFleetChaosKillMidTierAggregator(t *testing.T) {
	const numAgents = 3
	global := newAggServer(t, AggregatorConfig{StaleAfter: time.Minute, Shards: 4})

	var region atomic.Pointer[treeRegion]
	newRegion := func() *treeRegion {
		agg := NewAggregator(AggregatorConfig{StaleAfter: time.Minute, Shards: 4})
		return &treeRegion{agg: agg, rex: NewReExporter(agg, ReExporterConfig{
			Region: "region-a", Upstream: global.pushURL(),
		})}
	}
	region.Store(newRegion())
	var regionOther atomic.Int64 // region-tier non-200s that are not 409s
	regionSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		region.Load().agg.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
			regionOther.Add(1)
		}
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	defer regionSrv.Close()

	type host struct {
		reg   *core.Registry
		col   *core.Collector
		agent *Agent
	}
	hosts := make([]*host, numAgents)
	for i := range hosts {
		reg := core.NewRegistry()
		col := core.NewCollector(vmName(i, 0), diskName(0))
		col.Enable()
		reg.Register(col)
		hosts[i] = &host{reg: reg, col: col, agent: NewAgent(reg, AgentConfig{
			Host:     "esx-" + string(rune('a'+i)),
			Endpoint: regionSrv.URL + "/fleet/push",
			Interval: 5 * time.Millisecond,
		})}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(h *host, seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				feed(h.col, seed+n, 20)
				time.Sleep(time.Millisecond)
			}
		}(h, i*1000)
		h.agent.Start()
	}
	// The re-export loop runs against whichever region is current, and a
	// reader keeps scraping the global across the swap.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			region.Load().rex.ReExportNow()
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			global.agg.ClusterSnapshot(false)
			global.agg.Tiers()
			time.Sleep(time.Millisecond)
		}
	}()

	// Let the chains establish through both tiers, then kill the mid-tier.
	waitFor(t, 2*time.Second, func() bool {
		r := region.Load()
		return len(r.agg.Hosts()) == numAgents && r.rex.Stats().DeltaPushes > 0
	})
	oldRex := region.Load().rex
	region.Store(newRegion())

	// The new region must learn every agent (via their 409-driven
	// resyncs) and its new-boot re-exporter must displace its
	// predecessor's state at the global.
	waitFor(t, 2*time.Second, func() bool {
		r := region.Load()
		return len(r.agg.Hosts()) == numAgents && r.rex.Stats().Pushes > 0
	})
	// Split-brain probe: the dead re-exporter fires one last time. Its
	// delta (or heartbeat) carries the old boot for a name the global now
	// stores under the new boot — a boot-changed 409 that resyncs it with
	// full state rather than silently corrupting the chain.
	if err := oldRex.ReExportNow(); err != nil {
		t.Errorf("old re-exporter's last flush: %v", err)
	}
	if oldRex.Stats().Resyncs == 0 {
		t.Error("old-boot re-exporter was not refused and resynced")
	}

	close(stop)
	wg.Wait()
	for _, h := range hosts {
		h.agent.Stop()
		if err := h.agent.PushNow(); err != nil {
			t.Fatalf("final push from %s: %v", h.agent.Host(), err)
		}
	}
	if err := region.Load().rex.ReExportNow(); err != nil {
		t.Fatalf("final re-export: %v", err)
	}

	var all []*core.Snapshot
	for _, h := range hosts {
		all = append(all, h.reg.Snapshots()...)
	}
	want := core.Aggregate("cluster", "*", all...)
	got := global.agg.ClusterSnapshot(false)
	if got == nil || !sameSnapshot(got, want) {
		t.Error("global view not bin-exact against the registries after the mid-tier kill")
	}
	if n := regionOther.Load(); n != 0 {
		t.Errorf("%d region-tier non-200s besides the protocol's 409s", n)
	}
	if fails := global.failures.Load(); fails != 0 {
		// The global tier counts every non-200, and the new re-exporter's
		// boot-changed 409 is expected protocol — subtract what the
		// re-exporters recorded as resyncs.
		resyncs := oldRex.Stats().Resyncs + region.Load().rex.Stats().Resyncs
		if fails > resyncs {
			t.Errorf("global returned %d non-200s, only %d explained by resync 409s", fails, resyncs)
		}
	}
	if global.agg.Stats().ResyncBootChanged == 0 {
		t.Error("the replaced re-exporter never drew a boot-changed 409 from the global")
	}
}
