package fleet

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vscsistats/internal/analysis"
	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// feedShape drives n commands with a controlled shape — block size, read
// mix and locality — so classification has distinct references to
// separate.
func feedShape(col *core.Collector, seed, n int, blocks uint32, read, random bool) {
	lba := uint64(seed) * 4096
	t := simclock.Time(seed) * simclock.Millisecond
	for i := 0; i < n; i++ {
		var cmd scsi.Command
		if read {
			cmd = scsi.Read(lba, blocks)
		} else {
			cmd = scsi.Write(lba, blocks)
		}
		r := &vscsi.Request{
			Cmd:                cmd,
			IssueTime:          t,
			CompleteTime:       t + 300*simclock.Microsecond,
			OutstandingAtIssue: i % 4,
			Status:             scsi.StatusGood,
		}
		col.OnIssue(r)
		col.OnComplete(r)
		if random {
			lba = uint64((i*2654435761 + seed*97)) % (1 << 20)
		} else {
			lba += uint64(blocks)
		}
		t += 100 * simclock.Microsecond
	}
}

// shapedCollector builds one populated collector with the given shape.
func shapedCollector(vm, disk string, seed, n int, blocks uint32, read, random bool) *core.Collector {
	col := core.NewCollector(vm, disk)
	col.Enable()
	feedShape(col, seed, n, blocks, read, random)
	return col
}

// testCatalog holds two well-separated references: small random reads vs
// large sequential writes.
func testCatalog(t *testing.T) *analysis.Catalog {
	t.Helper()
	cat, err := analysis.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("smallread", shapedCollector("ref", "d", 1, 500, 8, true, true).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add("bigwrite", shapedCollector("ref", "d", 2, 500, 256, false, false).Snapshot()); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestCatalogEndpointClassifiesVMs pushes two hosts whose VMs carry the
// two reference shapes (different seeds than the references) and checks
// GET /fleet/catalog re-identifies every VM, counts the mix, and serves
// the single-VM ranking.
func TestCatalogEndpointClassifiesVMs(t *testing.T) {
	agg, _ := newTestAggregator(time.Minute)
	agg.SetCatalog(testCatalog(t))

	regA := core.NewRegistry()
	regA.Register(shapedCollector("vm-oltp", "scsi0:0", 7, 400, 8, true, true))
	regA.Register(shapedCollector("vm-backup", "scsi0:0", 8, 400, 256, false, false))
	regB := core.NewRegistry()
	regB.Register(shapedCollector("vm-oltp2", "scsi0:0", 9, 400, 8, true, true))
	idle := core.NewCollector("vm-idle", "scsi0:0")
	idle.Enable()
	regB.Register(idle)
	if err := agg.Ingest(batchFor(regA, "esx-a", 1), "push"); err != nil {
		t.Fatal(err)
	}
	if err := agg.Ingest(batchFor(regB, "esx-b", 1), "push"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(agg)
	defer srv.Close()

	var res CatalogResult
	getJSON(t, srv.URL+"/fleet/catalog", &res)
	if len(res.References) != 2 || res.References[0] != "smallread" || res.References[1] != "bigwrite" {
		t.Fatalf("references = %v", res.References)
	}
	want := map[string]string{"vm-oltp": "smallread", "vm-oltp2": "smallread", "vm-backup": "bigwrite"}
	if len(res.VMs) != len(want) {
		t.Fatalf("classified %d VMs, want %d: %+v", len(res.VMs), len(want), res.VMs)
	}
	for _, v := range res.VMs {
		if want[v.VM] != v.Personality {
			t.Errorf("%s classified as %q (distance %.3f), want %q", v.VM, v.Personality, v.Distance, want[v.VM])
		}
		if v.Commands == 0 || len(v.Ranking) != 0 {
			t.Errorf("%s: commands=%d ranking=%d (fleet-wide view must omit rankings)", v.VM, v.Commands, len(v.Ranking))
		}
	}
	if res.Mix["smallread"] != 2 || res.Mix["bigwrite"] != 1 {
		t.Errorf("mix = %v", res.Mix)
	}
	if res.Unclassified != 1 {
		t.Errorf("unclassified = %d, want 1 (vm-idle has no I/O)", res.Unclassified)
	}

	var one CatalogVM
	getJSON(t, srv.URL+"/fleet/catalog?vm=vm-backup", &one)
	if one.Personality != "bigwrite" || len(one.Ranking) != 2 {
		t.Fatalf("single-VM query: %+v", one)
	}
	if one.Ranking[0].Score > one.Ranking[1].Score {
		t.Error("ranking not sorted best-first")
	}
	if len(one.Ranking[0].Components) == 0 {
		t.Error("single-VM ranking missing per-metric components")
	}
}

// TestCatalogEndpointGuards covers the no-catalog 404, the unknown-VM
// 404, the method guard, and live catalog replacement.
func TestCatalogEndpointGuards(t *testing.T) {
	agg, _ := newTestAggregator(time.Minute)
	srv := httptest.NewServer(agg)
	defer srv.Close()

	if code := getCode(t, srv.URL+"/fleet/catalog"); code != 404 {
		t.Fatalf("no catalog: %d, want 404", code)
	}
	if agg.ClassifyVMs(false) != nil {
		t.Fatal("ClassifyVMs without a catalog must return nil")
	}

	agg.SetCatalog(testCatalog(t))
	reg := core.NewRegistry()
	reg.Register(shapedCollector("vm-x", "scsi0:0", 3, 200, 8, true, true))
	if err := agg.Ingest(batchFor(reg, "esx-a", 1), "push"); err != nil {
		t.Fatal(err)
	}
	if code := getCode(t, srv.URL+"/fleet/catalog"); code != 200 {
		t.Fatalf("after SetCatalog: %d, want 200", code)
	}
	if code := getCode(t, srv.URL+"/fleet/catalog?vm=nope"); code != 404 {
		t.Fatalf("unknown vm: %d, want 404", code)
	}
	resp, err := srv.Client().Post(srv.URL+"/fleet/catalog", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 || resp.Header.Get("Allow") != "GET" {
		t.Fatalf("POST: %d Allow=%q, want 405 Allow=GET", resp.StatusCode, resp.Header.Get("Allow"))
	}

	agg.SetCatalog(nil)
	if code := getCode(t, srv.URL+"/fleet/catalog"); code != 404 {
		t.Fatalf("after SetCatalog(nil): %d, want 404", code)
	}
}

// TestCatalogStaleHosts checks staleness semantics: a stale host's VMs
// drop out of the default classification and fold back with
// ?include_stale=1.
func TestCatalogStaleHosts(t *testing.T) {
	agg, clk := newTestAggregator(10 * time.Second)
	agg.SetCatalog(testCatalog(t))
	regA := core.NewRegistry()
	regA.Register(shapedCollector("vm-a", "scsi0:0", 5, 200, 8, true, true))
	regB := core.NewRegistry()
	regB.Register(shapedCollector("vm-b", "scsi0:0", 6, 200, 256, false, false))
	agg.Ingest(batchFor(regA, "esx-a", 1), "push")
	clk.advance(8 * time.Second)
	agg.Ingest(batchFor(regB, "esx-b", 1), "push")
	clk.advance(5 * time.Second) // esx-a now stale, esx-b fresh

	fresh := agg.ClassifyVMs(false)
	if len(fresh.VMs) != 1 || fresh.VMs[0].VM != "vm-b" {
		t.Fatalf("fresh classification: %+v", fresh.VMs)
	}
	all := agg.ClassifyVMs(true)
	if len(all.VMs) != 2 {
		t.Fatalf("include_stale classification: %+v", all.VMs)
	}
}

// getCode fetches url and returns only the status code.
func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
