package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vscsistats/internal/core"
)

// TestFleetChaosKillOneAgent is the acceptance test for the fleet design:
// four agents push concurrently into one aggregator while readers poll the
// merged views; one agent is killed mid-run. The aggregator must never
// return a request failure, the dead host must go stale within one push
// interval past the horizon, and the merged cluster histogram must equal —
// bin for bin — the sum of the three survivors' final snapshots. Run under
// -race in CI.
func TestFleetChaosKillOneAgent(t *testing.T) {
	const (
		numAgents    = 4
		pushInterval = 10 * time.Millisecond
		staleAfter   = 50 * time.Millisecond
	)
	as := newAggServer(t, AggregatorConfig{StaleAfter: staleAfter})

	// Each "host" keeps generating traffic for the whole run, agents
	// snapshotting and pushing underneath.
	type host struct {
		reg    *core.Registry
		cols   []*core.Collector
		agent  *Agent
		frozen chan struct{}
	}
	hosts := make([]*host, numAgents)
	var feeders sync.WaitGroup
	for i := range hosts {
		reg := core.NewRegistry()
		var cols []*core.Collector
		for d := 0; d < 2; d++ {
			col := core.NewCollector(vmName(i, 0), diskName(d))
			col.Enable()
			reg.Register(col)
			cols = append(cols, col)
		}
		h := &host{
			reg: reg, cols: cols, frozen: make(chan struct{}),
			agent: NewAgent(reg, AgentConfig{
				Host:     "esx-" + string(rune('a'+i)),
				Endpoint: as.pushURL(),
				Interval: pushInterval,
			}),
		}
		hosts[i] = h
		for d, col := range cols {
			feeders.Add(1)
			go func(col *core.Collector, seed int) {
				defer feeders.Done()
				for n := 0; ; n++ {
					select {
					case <-h.frozen:
						return
					default:
					}
					feed(col, seed+n, 20)
					time.Sleep(time.Millisecond) // don't starve the scheduler under -race
				}
			}(col, i*100+d*10)
		}
		h.agent.Start()
	}

	// Concurrent readers hammer the merged views while all this runs —
	// under -race this is the proof that ingest and merge can overlap.
	readStop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readStop:
					return
				default:
				}
				as.agg.ClusterSnapshot(false)
				as.agg.VMSnapshots(false)
				as.agg.Hosts()
				resp, err := http.Get(as.srv.URL + "/fleet/hosts")
				if err == nil {
					resp.Body.Close()
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Let everyone report, then kill one agent mid-run.
	waitFor(t, time.Second, func() bool { return len(as.agg.Hosts()) == numAgents })
	victim := hosts[1]
	victim.agent.Stop()
	killedAt := time.Now()

	// The dead host must be reported stale within one push interval past
	// the staleness horizon.
	waitFor(t, staleAfter+5*pushInterval, func() bool {
		for _, h := range as.agg.Hosts() {
			if h.Host == victim.agent.Host() {
				return h.Stale
			}
		}
		return false
	})
	if elapsed := time.Since(killedAt); elapsed > staleAfter+pushInterval+50*time.Millisecond {
		t.Errorf("host went stale after %v, want within %v", elapsed, staleAfter+pushInterval)
	}

	// Wind everything down — traffic, readers, push loops — so the final
	// flushes are the last word.
	var survivors []*core.Snapshot
	for _, h := range hosts {
		close(h.frozen)
	}
	feeders.Wait()
	close(readStop)
	readers.Wait()
	for _, h := range hosts {
		if h != victim {
			h.agent.Stop()
		}
	}
	// Flush each survivor one final time, then freeze the aggregator's
	// clock: the exactness assertion below must not race the (deliberately
	// tiny) staleness horizon while the test does its bookkeeping.
	for _, h := range hosts {
		if h == victim {
			continue
		}
		if err := h.agent.PushNow(); err != nil {
			t.Fatalf("final push from %s: %v", h.agent.Host(), err)
		}
		survivors = append(survivors, h.reg.Snapshots()...)
	}
	frozen := time.Now()
	as.agg.now = func() time.Time { return frozen }

	// Zero aggregator request failures across the whole run.
	if fails := as.failures.Load(); fails != 0 {
		t.Errorf("aggregator returned %d non-200 responses during the run", fails)
	}
	if rej := as.agg.Stats().Rejected; rej != 0 {
		t.Errorf("aggregator rejected %d batches from healthy agents", rej)
	}

	// The merged cluster histogram equals the sum of the three survivors,
	// bin for bin, across every metric and class.
	want := core.Aggregate("cluster", "*", survivors...)
	got := as.agg.ClusterSnapshot(false)
	if got == nil {
		t.Fatal("no fresh cluster snapshot after the kill")
	}
	if !sameSnapshot(got, want) {
		t.Errorf("cluster merge not bin-exact vs the %d survivors (got %d commands, want %d)",
			numAgents-1, got.Commands, want.Commands)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", d)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetChaosHTTPReadersSeeConsistentViews pins down one more property:
// a reader polling during heavy ingest never observes a half-merged
// snapshot (Commands must always equal NumReads+NumWrites).
func TestFleetChaosHTTPReadersSeeConsistentViews(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{StaleAfter: time.Minute})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			reg := core.NewRegistry()
			col := core.NewCollector(vmName(seed, 0), diskName(0))
			col.Enable()
			reg.Register(col)
			a := NewAgent(reg, AgentConfig{
				Host: "esx-" + string(rune('a'+seed)), Endpoint: as.pushURL(),
			})
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				feed(col, seed*100+n, 50)
				if err := a.PushNow(); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(i)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := as.agg.ClusterSnapshot(false)
		if s == nil {
			continue
		}
		if s.Commands != s.NumReads+s.NumWrites {
			t.Fatalf("torn snapshot: %d commands vs %d reads + %d writes",
				s.Commands, s.NumReads, s.NumWrites)
		}
	}
	close(stop)
	wg.Wait()
}

// TestFleetChaosRestartResyncsDeltas kills and replaces the aggregator —
// not an agent — mid-run while every agent is delta-pushing: the restarted
// aggregator knows nobody, so each agent's next delta draws a 409 and must
// resync with full state automatically, with no operator involvement and no
// lost intervals. At the end the new aggregator's merge must be bin-exact
// against the registries, the delta chain must have re-established
// (deltas applied on the new aggregator too), and the only non-200s of the
// whole run are the resync 409s the protocol prescribes. Run under -race in
// CI alongside the kill-one-agent scenario.
func TestFleetChaosRestartResyncsDeltas(t *testing.T) {
	const numAgents = 3
	var agg atomic.Pointer[Aggregator]
	newAgg := func() *Aggregator {
		return NewAggregator(AggregatorConfig{StaleAfter: time.Minute, Shards: 4})
	}
	agg.Store(newAgg())
	var other atomic.Int64 // non-200s that are not resync 409s
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		agg.Load().ServeHTTP(rec, r)
		if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
			other.Add(1)
		}
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	defer srv.Close()

	type host struct {
		reg   *core.Registry
		col   *core.Collector
		agent *Agent
	}
	hosts := make([]*host, numAgents)
	for i := range hosts {
		reg := core.NewRegistry()
		col := core.NewCollector(vmName(i, 0), diskName(0))
		col.Enable()
		reg.Register(col)
		hosts[i] = &host{reg: reg, col: col, agent: NewAgent(reg, AgentConfig{
			Host:     "esx-" + string(rune('a'+i)),
			Endpoint: srv.URL + "/fleet/push",
			Interval: 5 * time.Millisecond,
		})}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(h *host, seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				feed(h.col, seed+n, 20)
				time.Sleep(time.Millisecond)
			}
		}(h, i*1000)
		h.agent.Start()
	}
	// Readers keep scraping the merged views across the restart.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				agg.Load().ClusterSnapshot(false)
				agg.Load().Shards()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Let the delta chains establish, then pull the rug.
	waitFor(t, 2*time.Second, func() bool {
		if len(agg.Load().Hosts()) < numAgents {
			return false
		}
		for _, h := range hosts {
			if h.agent.Stats().DeltaPushes == 0 {
				return false
			}
		}
		return true
	})
	agg.Store(newAgg())

	// Every agent must reappear on the fresh aggregator and resume deltas.
	waitFor(t, 2*time.Second, func() bool {
		g := agg.Load()
		return len(g.Hosts()) == numAgents && g.Stats().DeltasApplied >= int64(numAgents)
	})

	close(stop)
	wg.Wait()
	for _, h := range hosts {
		h.agent.Stop()
		if err := h.agent.PushNow(); err != nil {
			t.Fatalf("final push from %s: %v", h.agent.Host(), err)
		}
	}

	var resyncs int64
	var all []*core.Snapshot
	for _, h := range hosts {
		resyncs += h.agent.Stats().Resyncs
		all = append(all, h.reg.Snapshots()...)
	}
	if resyncs < numAgents {
		t.Errorf("agents recorded %d resyncs across the restart, want >= %d", resyncs, numAgents)
	}
	if n := other.Load(); n != 0 {
		t.Errorf("%d non-200 responses besides the protocol's resync 409s", n)
	}
	want := core.Aggregate("cluster", "*", all...)
	got := agg.Load().ClusterSnapshot(false)
	if got == nil || !sameSnapshot(got, want) {
		t.Error("post-restart cluster merge not bin-exact against the registries")
	}
}
