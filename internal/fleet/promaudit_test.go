package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vscsistats/internal/fleetobs"
	"vscsistats/internal/telemetry"
	"vscsistats/internal/telemetry/promtest"
)

// TestMetricsExpositionAudit scrapes a fully-loaded exporter — registry,
// fleet aggregator with a segment log, and the pipeline tracker — through
// the strict parser, which enforces HELP/TYPE before samples, no
// duplicate series, and complete cumulative histograms for EVERY
// vscsistats_* family in one place.
func TestMetricsExpositionAudit(t *testing.T) {
	obs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	agg, _, err := OpenAggregator(AggregatorConfig{
		StaleAfter: time.Hour, DataDir: t.TempDir(), Obs: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	aggSrv := httptest.NewServer(agg)
	defer aggSrv.Close()
	reg := makeRegistry(1, 1, 2, 60)
	for host, hostReg := range map[string]*Batch{
		"esx-a": {Host: "esx-a", Seq: 1, Snapshots: reg.Snapshots()},
		"esx-b": {Host: "esx-b", Seq: 1, Snapshots: makeRegistry(2, 1, 1, 40).Snapshots()},
	} {
		frame, err := EncodeBatchBytes(hostReg)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(aggSrv.URL+"/fleet/push", ContentType, bytesReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push for %s: status %d", host, resp.StatusCode)
		}
	}

	exp := telemetry.NewExporter(reg).WithFleet(agg).WithFleetObs(obs)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := promtest.Parse(t, string(body))

	// The fleetobs families made it out, with the labels the dashboards
	// key on.
	ingest := promtest.Find(t, samples,
		"vscsistats_fleetobs_stage_duration_nanoseconds_count",
		"scope", "aggregator", "stage", "ingest")
	if ingest.Value < 2 {
		t.Errorf("ingest stage count = %v after 2 pushes, want >= 2", ingest.Value)
	}
	pushes := promtest.Find(t, samples, "vscsistats_fleetobs_events_total", "kind", "push")
	if pushes.Value < 2 {
		t.Errorf("push events counter = %v, want >= 2", pushes.Value)
	}

	// Every family in the scrape is namespaced.
	for _, s := range samples {
		if !strings.HasPrefix(s.Name, "vscsistats_") {
			t.Errorf("sample %q outside the vscsistats_ namespace", s.Name)
		}
	}
}

// TestScrapeVsIngestRace pounds the exporter with scrapes while pushes
// land concurrently, asserting (a) every in-flight exposition stays
// well-formed under the strict parser and (b) the traced-stage histogram
// _count is monotone non-decreasing across consecutive scrapes — the
// invariant a half-locked reader would break first.
func TestScrapeVsIngestRace(t *testing.T) {
	obs := fleetobs.New(fleetobs.Config{SampleEvery: 1})
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Obs: obs})
	reg := makeRegistry(1, 1, 2, 50)
	exp := telemetry.NewExporter(reg).WithFleet(agg).WithFleetObs(obs)
	srv := httptest.NewServer(exp)
	defer srv.Close()

	const pushers, pushesEach, scrapes = 2, 40, 25
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			host := fmt.Sprintf("esx-race-%d", p)
			hostReg := makeRegistry(p+3, 1, 1, 30)
			for i := 0; i < pushesEach; i++ {
				b := &Batch{Host: host, Seq: uint64(i + 1), Snapshots: hostReg.Snapshots()}
				if err := agg.Ingest(b, "push"); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				feed(hostReg.List()[0], i, 10)
			}
		}(p)
	}

	prev := -1.0
	for i := 0; i < scrapes; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		samples := promtest.Parse(t, string(body))
		cur := promtest.Find(t, samples,
			"vscsistats_fleetobs_stage_duration_nanoseconds_count",
			"scope", "aggregator", "stage", "ingest").Value
		if cur < prev {
			t.Fatalf("scrape %d: ingest _count went backwards (%v -> %v)", i, prev, cur)
		}
		prev = cur
	}
	wg.Wait()

	// One more scrape after the dust settles: total must equal pushes.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	final := promtest.Find(t, promtest.Parse(t, string(body)),
		"vscsistats_fleetobs_stage_duration_nanoseconds_count",
		"scope", "aggregator", "stage", "ingest").Value
	if want := float64(pushers * pushesEach); final != want {
		t.Errorf("final ingest _count = %v, want %v", final, want)
	}
}
