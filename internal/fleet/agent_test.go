package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// aggServer wraps an Aggregator in an httptest server, counting requests
// and non-200 responses.
type aggServer struct {
	agg      *Aggregator
	srv      *httptest.Server
	requests atomic.Int64
	failures atomic.Int64
	// refuse, while set, makes the server answer 503 without ingesting.
	refuse atomic.Bool
}

func newAggServer(t *testing.T, cfg AggregatorConfig) *aggServer {
	t.Helper()
	as := &aggServer{agg: NewAggregator(cfg)}
	as.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		as.requests.Add(1)
		if as.refuse.Load() {
			as.failures.Add(1)
			http.Error(w, "refused", http.StatusServiceUnavailable)
			return
		}
		rec := httptest.NewRecorder()
		as.agg.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			as.failures.Add(1)
		}
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	t.Cleanup(as.srv.Close)
	return as
}

func (as *aggServer) pushURL() string { return as.srv.URL + "/fleet/push" }

func TestAgentPushDelivers(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{})
	reg := makeRegistry(1, 2, 1, 300)
	a := NewAgent(reg, AgentConfig{Host: "esx-a", Endpoint: as.pushURL()})
	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	hosts := as.agg.Hosts()
	if len(hosts) != 1 || hosts[0].Host != "esx-a" || hosts[0].Seq != 1 || hosts[0].Snapshots != 2 {
		t.Fatalf("aggregator hosts after push: %+v", hosts)
	}
	if s := a.Stats(); s.Pushes != 1 || s.Errors != 0 || s.QueueLen != 0 || s.SentBytes == 0 {
		t.Errorf("agent stats: %+v", s)
	}
	// The merged view equals the registry's own aggregate, bin for bin.
	want := reg.HostSnapshot()
	if got := as.agg.ClusterSnapshot(false); !sameSnapshot(got, want) {
		t.Error("cluster snapshot diverged from the pushing registry")
	}
}

func TestAgentRetryQueueBoundedWithDropCounters(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{})
	as.refuse.Store(true)
	reg := makeRegistry(2, 1, 1, 100)
	a := NewAgent(reg, AgentConfig{
		Host: "esx-b", Endpoint: as.pushURL(), MaxRetryQueue: 4,
	})
	for i := 0; i < 10; i++ {
		if err := a.PushNow(); err == nil {
			t.Fatal("push succeeded against a refusing aggregator")
		}
	}
	st := a.Stats()
	if st.QueueLen > 4 {
		t.Errorf("retry queue grew to %d, limit 4", st.QueueLen)
	}
	if st.Dropped != 6 {
		t.Errorf("dropped = %d, want 6 (10 batches, queue of 4)", st.Dropped)
	}
	if st.Errors != 10 || st.Pushes != 0 {
		t.Errorf("errors/pushes = %d/%d, want 10/0", st.Errors, st.Pushes)
	}
	if st.LastError == "" || st.Failures == 0 {
		t.Errorf("failure state not recorded: %+v", st)
	}

	// Recovery: the queue drains oldest-first, newest state wins, and the
	// aggregator lands on the newest sequence.
	as.refuse.Store(false)
	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	st = a.Stats()
	if st.QueueLen != 0 || st.Failures != 0 {
		t.Errorf("queue not drained after recovery: %+v", st)
	}
	if st.Retries == 0 {
		t.Error("draining old batches did not count as retries")
	}
	hosts := as.agg.Hosts()
	if len(hosts) != 1 || hosts[0].Seq != 11 {
		t.Fatalf("aggregator should hold newest seq 11: %+v", hosts)
	}
}

func TestAgentBackoffGatesTickPushes(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{})
	as.refuse.Store(true)
	reg := makeRegistry(3, 1, 1, 50)
	a := NewAgent(reg, AgentConfig{
		Host: "esx-c", Endpoint: as.pushURL(),
		Interval: time.Minute, MaxBackoff: time.Hour,
	})
	now := time.Now()
	a.enqueue(a.buildBatch())
	if err := a.flush(now); err == nil {
		t.Fatal("flush against refusing server should fail")
	}
	before := as.requests.Load()
	// Within the backoff window the flush must not touch the network.
	if err := a.flush(now.Add(time.Second)); err != nil {
		t.Fatalf("gated flush returned error: %v", err)
	}
	if got := as.requests.Load(); got != before {
		t.Errorf("backoff gate leaked a request: %d -> %d", before, got)
	}
	// Far past any plausible backoff the agent tries again.
	if err := a.flush(now.Add(24 * time.Hour)); err == nil {
		t.Fatal("expected the retry to fail against the refusing server")
	}
	if got := as.requests.Load(); got != before+1 {
		t.Errorf("retry after backoff did not reach the server")
	}
}

func TestAgentStartStopLifecycle(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{})
	reg := makeRegistry(4, 1, 1, 200)
	a := NewAgent(reg, AgentConfig{
		Host: "esx-d", Endpoint: as.pushURL(), Interval: 5 * time.Millisecond,
	})
	a.Start()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Pushes < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	a.Stop()
	a.Stop() // idempotent
	if got := a.Stats().Pushes; got < 2 {
		t.Fatalf("push loop delivered %d batches, want >= 2", got)
	}
	settled := as.requests.Load()
	time.Sleep(25 * time.Millisecond)
	if got := as.requests.Load(); got != settled {
		t.Errorf("pushes continued after Stop: %d -> %d", settled, got)
	}

	// Stop without Start must not hang.
	idle := NewAgent(reg, AgentConfig{Host: "esx-idle", Endpoint: as.pushURL()})
	done := make(chan struct{})
	go func() { idle.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop without Start hung")
	}
}

// TestAgentStopDrainsFinalCapture pins the Stop-time drain: a capture
// sitting in the queue when Stop is called — the final interval of data,
// previously lost with the process — is delivered by Stop's bounded flush
// before it returns.
func TestAgentStopDrainsFinalCapture(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{})
	reg := makeRegistry(8, 1, 2, 250)
	a := NewAgent(reg, AgentConfig{Host: "esx-h", Endpoint: as.pushURL()})

	// The enqueue without a flush models the run loop's final tick: the
	// builder captured, the flusher exited before its kick was served.
	a.enqueue(a.buildBatch())
	if got := a.Stats().QueueLen; got != 1 {
		t.Fatalf("queue length before Stop = %d, want 1", got)
	}
	a.Stop()
	if got := a.Stats().QueueLen; got != 0 {
		t.Errorf("queue length after Stop = %d, want drained", got)
	}
	hosts := as.agg.Hosts()
	if len(hosts) != 1 || hosts[0].Host != "esx-h" {
		t.Fatalf("aggregator hosts after Stop drain: %+v", hosts)
	}
	if got := as.agg.ClusterSnapshot(false); !sameSnapshot(got, reg.HostSnapshot()) {
		t.Error("drained capture diverged from the registry")
	}

	// And with the loop running: a capture enqueued while the flusher is
	// live (the final tick's, in the race Stop exists to close) is on the
	// aggregator by the time Stop returns, whichever side delivered it.
	las := newAggServer(t, AggregatorConfig{})
	lreg := makeRegistry(10, 1, 2, 250)
	live := NewAgent(lreg, AgentConfig{Host: "esx-live", Endpoint: las.pushURL(), Interval: 5 * time.Millisecond})
	live.Start()
	deadline := time.Now().Add(2 * time.Second)
	for live.Stats().Pushes < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	feed(lreg.List()[0], 4242, 60)
	live.enqueue(live.buildBatch())
	live.Stop()
	if got := las.agg.ClusterSnapshot(false); !sameSnapshot(got, lreg.HostSnapshot()) {
		t.Error("capture enqueued before Stop did not reach the aggregator")
	}
}

// TestAgentStopDrainHonorsBackoffGate: an aggregator that was already
// failing is not hammered on the way out — Stop's drain respects the
// backoff gate, returns promptly, and leaves the undeliverable capture
// counted rather than retried forever.
func TestAgentStopDrainHonorsBackoffGate(t *testing.T) {
	as := newAggServer(t, AggregatorConfig{})
	as.refuse.Store(true)
	reg := makeRegistry(9, 1, 1, 100)
	a := NewAgent(reg, AgentConfig{Host: "esx-i", Endpoint: as.pushURL()})

	// One failed push arms the backoff gate.
	if err := a.PushNow(); err == nil {
		t.Fatal("push succeeded against a refusing aggregator")
	}
	before := as.requests.Load()
	a.enqueue(a.buildBatch())
	done := make(chan struct{})
	go func() { a.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung draining against a gated endpoint")
	}
	if got := as.requests.Load(); got != before {
		t.Errorf("gated drain still hit the server: %d -> %d requests", before, got)
	}
}

func TestAgentPullHandler(t *testing.T) {
	reg := makeRegistry(5, 1, 2, 150)
	a := NewAgent(reg, AgentConfig{Host: "esx-e"})
	srv := httptest.NewServer(a.PullHandler())
	defer srv.Close()

	agg := NewAggregator(AggregatorConfig{})
	agg.Watch("esx-e", srv.URL)
	agg.Watch("esx-gone", "http://127.0.0.1:1/nope")
	errs := agg.PullAll()
	if len(errs) != 1 || errs["esx-gone"] == nil {
		t.Fatalf("pull errors: %v", errs)
	}
	hosts := agg.Hosts()
	if len(hosts) != 1 || hosts[0].Host != "esx-e" || hosts[0].Source != "pull" || hosts[0].Snapshots != 2 {
		t.Fatalf("hosts after pull: %+v", hosts)
	}
	if agg.Stats().PullErrors != 1 {
		t.Errorf("pull errors counter = %d, want 1", agg.Stats().PullErrors)
	}
	// POST to the pull endpoint is a method error.
	resp, err := http.Post(srv.URL, ContentType, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Errorf("POST to pull handler: %d, Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}
