package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/fleetobs"
)

// The segment log is the aggregator's durability layer: every accepted wire
// frame — fulls and deltas alike — is appended, verbatim re-encoding, to a
// per-shard chain of segment files under the data dir:
//
//	<dir>/shard-0007/0000000000000003.seg
//
// A segment is nothing but concatenated wire frames (the codec is
// length-prefixed, so frames concatenate cleanly on one stream); there is
// no index, no checksum block, no manifest. Everything the log needs is
// already in the frames: ordering is append order, per-host sequencing is
// the batch Seq, and time is the batch SentUnixNano. Replaying a shard's
// segments in numeric order through the aggregator's strict apply rules
// (fulls never roll back, deltas apply only on their exact base)
// reconstructs each host's newest-full-plus-deltas state exactly.
//
// Failure semantics, in replay order per segment chain:
//
//   - a frame that ends early (EOF inside head/header/payload —
//     ErrTruncatedFrame) in the LAST segment is a torn tail: the crash
//     landed mid-write. The file is truncated back to the last whole frame
//     and the log continues from there.
//   - the same condition in any earlier segment, or any non-truncation
//     decode failure anywhere (bad magic, bad gzip, bad JSON), is
//     corruption: the log refuses to open rather than serve wrong numbers.
//   - a delta that cannot apply (its base fell to retention or compaction)
//     is skipped with a counter — the information is gone, not wrong.
//   - *.tmp files (compaction interrupted before its atomic rename) are
//     deleted on open; the segments they would have replaced are intact.
//   - a compaction interrupted after the rename but before the old
//     segments were deleted leaves duplicates: old frames replay first,
//     the compacted fulls (highest segment number, newest sequences)
//     replay last and win under the no-rollback rule.
//
// Appends are fsync-batched: a write syncs only when syncInterval has
// passed since the last sync (every append when syncInterval < 0). A
// kill -9 loses nothing regardless — written bytes survive process death
// in the page cache — the batching only bounds what a power failure can
// take, and the torn-tail rule cleans up whatever a partial sector flush
// leaves behind.
const (
	segSuffix = ".seg"
	tmpSuffix = ".tmp"

	defaultSegmentBytes    = 4 << 20
	defaultSyncInterval    = 100 * time.Millisecond
	defaultCompactSegments = 8
)

// logConfig is the segment log's tuning, extracted from AggregatorConfig.
type logConfig struct {
	dir             string
	segmentBytes    int64
	syncInterval    time.Duration
	retention       time.Duration
	compactSegments int
	// obs receives fsync/compaction latency samples and structural events
	// (rotation, retention, compaction, torn tail); nil disables both.
	obs *fleetobs.Tracker
}

// segmentInfo describes one segment file.
type segmentInfo struct {
	num    uint64
	path   string
	bytes  int64
	frames int64
	// newest is the max SentUnixNano of any frame in the segment — the
	// clock retention compares against.
	newest int64
}

// logShard is one shard's segment chain. Its mutex orders appends,
// rotation and compaction; reads (history scans) only take it long enough
// to copy the current path list.
type logShard struct {
	mu     sync.Mutex
	dirIdx int
	dir    string
	sealed []segmentInfo
	active segmentInfo
	f      *os.File // nil until the first append after open/rotation
	lastSync time.Time
}

// segmentLog is the aggregator's crash-safe frame store: one logShard per
// aggregator shard, plus any orphan shard dirs left by a previous run with
// a different shard count (replayed, then compacted away).
type segmentLog struct {
	cfg    logConfig
	shards []*logShard // indexed by current shard id
	// orphans are shard dirs on disk beyond the configured shard count.
	// Their frames replay like any others (routing is by host hash, not by
	// dir); after replay the aggregator rewrites every host's state into
	// its current home and removes them.
	orphans []*logShard

	appends     atomic.Int64
	appendBytes atomic.Int64
	appendErrs  atomic.Int64
	fsyncs      atomic.Int64
	rotations   atomic.Int64
	compactions atomic.Int64
	retired     atomic.Int64
	replayed    atomic.Int64
	tornTails   atomic.Int64
}

func (c logConfig) withDefaults() logConfig {
	if c.segmentBytes <= 0 {
		c.segmentBytes = defaultSegmentBytes
	}
	if c.syncInterval == 0 {
		c.syncInterval = defaultSyncInterval
	}
	if c.compactSegments == 0 {
		c.compactSegments = defaultCompactSegments
	}
	return c
}

func shardDirName(idx int) string { return fmt.Sprintf("shard-%04d", idx) }

func segPath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016d%s", num, segSuffix))
}

// openSegmentLog prepares the on-disk layout: the shard dirs exist, every
// segment is listed (sizes come later, from replay), and stray *.tmp files
// from an interrupted compaction are gone. No frame is read here — replay
// does that, because reading and applying are one pass.
func openSegmentLog(cfg logConfig, shards int) (*segmentLog, error) {
	cfg = cfg.withDefaults()
	l := &segmentLog{cfg: cfg, shards: make([]*logShard, shards)}
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: log dir: %w", err)
	}
	for i := range l.shards {
		sh, err := openLogShard(filepath.Join(cfg.dir, shardDirName(i)), i)
		if err != nil {
			return nil, err
		}
		l.shards[i] = sh
	}
	// Discover orphan dirs from a run with more shards.
	entries, err := os.ReadDir(cfg.dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: log dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "shard-"))
		if err != nil || idx < shards {
			continue
		}
		sh, err := openLogShard(filepath.Join(cfg.dir, e.Name()), idx)
		if err != nil {
			return nil, err
		}
		l.orphans = append(l.orphans, sh)
	}
	sort.Slice(l.orphans, func(i, j int) bool { return l.orphans[i].dirIdx < l.orphans[j].dirIdx })
	return l, nil
}

// openLogShard lists a shard dir's segments (creating the dir if needed)
// and removes leftover *.tmp files. The highest-numbered segment becomes
// the active one; its size and frame count are filled in by replay.
func openLogShard(dir string, idx int) (*logShard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: log shard dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: log shard dir: %w", err)
	}
	sh := &logShard{dirIdx: idx, dir: dir}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// An interrupted compaction never renamed this into place; the
			// segments it would have replaced are still whole.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: log segment %q: bad name", filepath.Join(dir, name))
		}
		sh.sealed = append(sh.sealed, segmentInfo{num: num, path: filepath.Join(dir, name)})
	}
	sort.Slice(sh.sealed, func(i, j int) bool { return sh.sealed[i].num < sh.sealed[j].num })
	if n := len(sh.sealed); n > 0 {
		sh.active = sh.sealed[n-1]
		sh.sealed = sh.sealed[:n-1]
	} else {
		sh.active = segmentInfo{num: 1, path: segPath(dir, 1)}
	}
	return sh, nil
}

// countingReader counts the bytes a decoder actually consumed, so replay
// knows the offset of the last whole frame when the tail turns out torn.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// replayStats summarizes one boot replay.
type replayStats struct {
	frames    int64
	tornTails int
}

// replay reads every segment of every shard dir (orphans included) in
// order and hands each decoded batch to apply, tolerating a torn tail on
// each chain's last segment by truncating the file back to the last whole
// frame. Any other decode failure aborts: a log that contradicts its own
// format must not silently become numbers. Segment sizes, frame counts and
// newest-times are (re)established as a side effect — replay is the one
// full read the log ever does.
func (l *segmentLog) replay(apply func(dirIdx int, b *Batch) error) (replayStats, error) {
	var st replayStats
	for _, sh := range append(append([]*logShard(nil), l.shards...), l.orphans...) {
		if err := l.replayShard(sh, &st, apply); err != nil {
			return st, err
		}
	}
	return st, nil
}

func (l *segmentLog) replayShard(sh *logShard, st *replayStats, apply func(int, *Batch) error) error {
	segs := make([]*segmentInfo, 0, len(sh.sealed)+1)
	for i := range sh.sealed {
		segs = append(segs, &sh.sealed[i])
	}
	segs = append(segs, &sh.active)
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := l.replaySegment(sh, seg, last, st, apply); err != nil {
			return err
		}
	}
	return nil
}

func (l *segmentLog) replaySegment(sh *logShard, seg *segmentInfo, last bool, st *replayStats, apply func(int, *Batch) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) && last && seg.frames == 0 {
			return nil // a fresh active segment that was never written
		}
		return fmt.Errorf("fleet: log replay: %w", err)
	}
	defer f.Close()
	cr := &countingReader{r: bufio.NewReader(f)}
	var good int64
	for {
		b, err := DecodeBatch(cr)
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrTruncatedFrame) {
			if !last {
				return fmt.Errorf("fleet: log segment %s torn mid-chain (only the newest segment may have a torn tail): %w", seg.path, err)
			}
			// Crash mid-write: everything before the tear is whole.
			if terr := os.Truncate(seg.path, good); terr != nil {
				return fmt.Errorf("fleet: truncating torn tail of %s: %w", seg.path, terr)
			}
			st.tornTails++
			l.tornTails.Add(1)
			l.cfg.obs.Emit(fleetobs.Event{
				Kind: fleetobs.KindTornTail, Scope: "aggregator", Shard: sh.dirIdx,
				Detail: fmt.Sprintf("%s truncated %d -> %d bytes", filepath.Base(seg.path), cr.n, good),
			})
			break
		}
		if err != nil {
			return fmt.Errorf("fleet: log segment %s corrupt: %w", seg.path, err)
		}
		good = cr.n
		seg.frames++
		if b.SentUnixNano > seg.newest {
			seg.newest = b.SentUnixNano
		}
		st.frames++
		l.replayed.Add(1)
		if err := apply(sh.dirIdx, b); err != nil {
			return err
		}
	}
	seg.bytes = good
	return nil
}

// append writes one already-encoded frame to the shard's active segment,
// syncing on the batched fsync schedule and rotating when the segment is
// full. Rotation runs the retention sweep; the returned flag tells the
// aggregator a rotation happened so it can consider compaction. The caller
// serializes per-shard ingest+append ordering (see Aggregator.Ingest) —
// this function's own locking only protects the chain against concurrent
// compaction and scans.
func (l *segmentLog) append(idx int, data []byte, sentUnixNano int64, now time.Time) (rotated bool, err error) {
	sh := l.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.f == nil {
		f, err := os.OpenFile(sh.active.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			l.appendErrs.Add(1)
			return false, err
		}
		sh.f = f
		sh.lastSync = now
	}
	if _, err := sh.f.Write(data); err != nil {
		l.appendErrs.Add(1)
		return false, err
	}
	sh.active.bytes += int64(len(data))
	sh.active.frames++
	if sentUnixNano > sh.active.newest {
		sh.active.newest = sentUnixNano
	}
	l.appends.Add(1)
	l.appendBytes.Add(int64(len(data)))
	if l.cfg.syncInterval < 0 || now.Sub(sh.lastSync) >= l.cfg.syncInterval {
		// Fsyncs are already batched (at most one per syncInterval per
		// shard), so every one is observed — no sampling needed.
		start := time.Now()
		if err := sh.f.Sync(); err != nil {
			l.appendErrs.Add(1)
			return false, err
		}
		l.fsyncs.Add(1)
		l.cfg.obs.ObserveSince(fleetobs.StageFsync, start, fleetobs.Event{Shard: idx})
		sh.lastSync = now
	}
	if sh.active.bytes >= l.cfg.segmentBytes {
		if err := l.rotateLocked(sh); err != nil {
			l.appendErrs.Add(1)
			return false, err
		}
		l.sweepLocked(sh, now)
		return true, nil
	}
	return false, nil
}

// rotateLocked seals the active segment (sync + close) and starts the next
// one. Caller holds sh.mu.
func (l *segmentLog) rotateLocked(sh *logShard) error {
	if sh.f != nil {
		start := time.Now()
		if err := sh.f.Sync(); err != nil {
			return err
		}
		l.fsyncs.Add(1)
		l.cfg.obs.ObserveSince(fleetobs.StageFsync, start, fleetobs.Event{Shard: sh.dirIdx})
		if err := sh.f.Close(); err != nil {
			return err
		}
		sh.f = nil
	}
	sealed := sh.active
	sh.sealed = append(sh.sealed, sealed)
	next := sealed.num + 1
	sh.active = segmentInfo{num: next, path: segPath(sh.dir, next)}
	l.rotations.Add(1)
	l.cfg.obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindRotation, Scope: "aggregator", Shard: sh.dirIdx,
		Detail: fmt.Sprintf("sealed %016d (%d frames, %d bytes)", sealed.num, sealed.frames, sealed.bytes),
	})
	return nil
}

// sweepLocked drops sealed segments whose newest frame is older than the
// retention horizon. Whole segments only: retention is coarse by design —
// the unit of forgetting is the unit of fsync and replay. Caller holds
// sh.mu.
func (l *segmentLog) sweepLocked(sh *logShard, now time.Time) {
	if l.cfg.retention <= 0 {
		return
	}
	cutoff := now.Add(-l.cfg.retention).UnixNano()
	kept := sh.sealed[:0]
	var removed, removedFrames int64
	for _, seg := range sh.sealed {
		if seg.newest < cutoff {
			os.Remove(seg.path)
			l.retired.Add(1)
			removed++
			removedFrames += seg.frames
			continue
		}
		kept = append(kept, seg)
	}
	sh.sealed = kept
	if removed > 0 {
		l.cfg.obs.Emit(fleetobs.Event{
			Kind: fleetobs.KindRetention, Scope: "aggregator", Shard: sh.dirIdx,
			Detail: fmt.Sprintf("removed %d segments (%d frames) past retention", removed, removedFrames),
		})
	}
}

// needsCompaction reports whether the shard's sealed chain has grown past
// the compaction threshold.
func (l *segmentLog) needsCompaction(idx int) bool {
	if l.cfg.compactSegments < 0 {
		return false
	}
	sh := l.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.sealed) >= l.cfg.compactSegments
}

// compact rewrites the shard's whole chain as one segment of full frames —
// one per host, at the host's newest applied state. gather runs under the
// shard's log mutex, so the gathered state provably covers every frame
// already in the chain (ingest updates state before it appends, and
// appends on this shard are excluded while we hold the mutex); a frame
// whose ingest is waiting on the mutex lands in the fresh active segment
// afterwards and replays as a harmless duplicate.
//
// Crash safety is the rename dance: the replacement is written and synced
// as a *.tmp, renamed over the highest-numbered segment (atomic on POSIX),
// and only then are the older segments deleted. Interrupted before the
// rename, the tmp is garbage collected at next open; interrupted after,
// replay sees old frames first and the compacted fulls — newest sequences,
// highest segment number — last, and the no-rollback rule makes the
// duplicates free.
func (l *segmentLog) compact(idx int, gather func() []*Batch, now time.Time) error {
	sh := l.shards[idx]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return l.compactLocked(sh, gather, now)
}

func (l *segmentLog) compactLocked(sh *logShard, gather func() []*Batch, now time.Time) error {
	begin := time.Now()
	batches := gather()
	// Seal the active segment so the whole chain is replaceable.
	if sh.active.frames > 0 || sh.f != nil {
		if err := l.rotateLocked(sh); err != nil {
			return err
		}
	}
	if len(sh.sealed) == 0 && len(batches) == 0 {
		return nil
	}
	l.cfg.obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindCompactionBegin, Scope: "aggregator", Shard: sh.dirIdx,
		Detail: fmt.Sprintf("%d sealed segments -> %d host fulls", len(sh.sealed), len(batches)),
	})
	target := sh.active.num - 1 // the newest sealed number, or 0 if none
	if len(sh.sealed) == 0 {
		// Nothing sealed but state to persist (boot-time rewrite into a
		// previously empty shard): claim the number below the active one.
		if target == 0 {
			sh.active = segmentInfo{num: 2, path: segPath(sh.dir, 2)}
			target = 1
		}
	}
	targetPath := segPath(sh.dir, target)
	tmpPath := targetPath + tmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	info := segmentInfo{num: target, path: targetPath}
	w := bufio.NewWriter(tmp)
	for _, b := range batches {
		n := &countingWriter{w: w}
		if err := EncodeBatch(n, b); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		info.bytes += n.n
		info.frames++
		if b.SentUnixNano > info.newest {
			info.newest = b.SentUnixNano
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	syncStart := time.Now()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	l.fsyncs.Add(1)
	l.cfg.obs.ObserveSince(fleetobs.StageFsync, syncStart, fleetobs.Event{Shard: sh.dirIdx})
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, targetPath); err != nil {
		os.Remove(tmpPath)
		return err
	}
	syncDir(sh.dir)
	// The rename is the commit point; everything below is cleanup whose
	// interruption replay tolerates.
	for _, seg := range sh.sealed {
		if seg.num != target {
			os.Remove(seg.path)
		}
	}
	sh.sealed = []segmentInfo{info}
	l.compactions.Add(1)
	d := l.cfg.obs.ObserveSince(fleetobs.StageCompaction, begin, fleetobs.Event{Shard: sh.dirIdx})
	l.cfg.obs.Emit(fleetobs.Event{
		Kind: fleetobs.KindCompactionCommit, Scope: "aggregator", Shard: sh.dirIdx,
		DurationNanos: int64(d),
		Detail:        fmt.Sprintf("segment %016d: %d frames, %d bytes", info.num, info.frames, info.bytes),
	})
	return nil
}

// removeOrphans deletes shard dirs beyond the configured count. Only safe
// after their state has been rewritten into the current shards' chains.
func (l *segmentLog) removeOrphans() {
	for _, sh := range l.orphans {
		os.RemoveAll(sh.dir)
	}
	l.orphans = nil
}

// scan hands every frame currently in the log to fn, in per-shard segment
// order — the read path behind history queries. It is best-effort against
// concurrent writers: the path list is copied under each shard's mutex,
// but the files are read unlocked, so a segment compacted away mid-scan is
// skipped and a frame being appended right now reads as a torn tail and
// ends that file. Both are safe for history: duplicates and stale fulls
// fall out of the same no-rollback apply rules replay uses.
func (l *segmentLog) scan(fn func(dirIdx int, b *Batch)) {
	for _, sh := range l.shards {
		sh.mu.Lock()
		paths := make([]string, 0, len(sh.sealed)+1)
		for _, seg := range sh.sealed {
			paths = append(paths, seg.path)
		}
		if sh.active.frames > 0 {
			paths = append(paths, sh.active.path)
		}
		dirIdx := sh.dirIdx
		sh.mu.Unlock()
		for _, p := range paths {
			scanSegment(p, dirIdx, fn)
		}
	}
}

func scanSegment(path string, dirIdx int, fn func(int, *Batch)) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		b, err := DecodeBatch(r)
		if err != nil {
			return // EOF, torn tail or mid-compaction swap: stop this file
		}
		fn(dirIdx, b)
	}
}

// segmentCounts returns the live segment count and total bytes.
func (l *segmentLog) segmentCounts() (segments int, bytes int64) {
	for _, sh := range l.shards {
		sh.mu.Lock()
		for _, seg := range sh.sealed {
			segments++
			bytes += seg.bytes
		}
		if sh.active.frames > 0 {
			segments++
			bytes += sh.active.bytes
		}
		sh.mu.Unlock()
	}
	return segments, bytes
}

// close syncs and closes every open segment file.
func (l *segmentLog) close() error {
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		if sh.f != nil {
			start := time.Now()
			if err := sh.f.Sync(); err != nil && first == nil {
				first = err
			} else if err == nil {
				l.fsyncs.Add(1)
				l.cfg.obs.ObserveSince(fleetobs.StageFsync, start, fleetobs.Event{Shard: sh.dirIdx})
			}
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}

// countingWriter counts bytes written through it (compaction's segment
// size bookkeeping).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Errors are ignored: not every filesystem supports it, and the
// rename itself is already ordered against the tmp file's data sync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
