package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vscsistats/internal/core"
)

// FuzzDecodeBatch asserts the codec's one hard promise: whatever bytes
// arrive — truncated, bit-flipped, hostile lengths, gzip garbage —
// DecodeBatch returns an error or a batch, and never panics. When a frame
// does decode, it must survive a re-encode/re-decode round trip, and
// Validate must never panic on it either.
func FuzzDecodeBatch(f *testing.F) {
	// Seed with real frames at several shapes, plus classic corruptions.
	for _, seedCfg := range []struct{ vms, disks, n int }{{1, 1, 0}, {1, 1, 50}, {2, 3, 200}} {
		reg := makeRegistry(1, seedCfg.vms, seedCfg.disks, seedCfg.n)
		data, err := EncodeBatchBytes(&Batch{Host: "seed", Seq: 1, Snapshots: reg.Snapshots()})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x55
		f.Add(flipped)
	}
	// Delta frames: the flagDelta bit plus base_seq header, both well-formed
	// (an interval delta of a real registry) and corrupted.
	deltaReg := makeRegistry(2, 1, 2, 100)
	deltaBase := deltaReg.Snapshots()
	feed(deltaReg.List()[0], 42, 60)
	deltaSnaps, ok := subAgainst(deltaReg.Snapshots(), deltaBase)
	if !ok {
		f.Fatal("delta seed: disk sets diverged")
	}
	deltaData, err := EncodeBatchBytes(&Batch{
		Host: "seed-delta", Seq: 9, BaseSeq: 8, Delta: true, Snapshots: deltaSnaps,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(deltaData)

	// The version-2 header extension: trace id and capture timestamp
	// riding the JSON header. Seeded whole and truncated so the fuzzer
	// explores the extended header's field boundaries too.
	traced, err := EncodeBatchBytes(&Batch{
		Host: "seed-traced", Seq: 4, Snapshots: deltaBase,
		TraceID: "seed-traced-00c0ffee-4", CaptureUnixNano: 1_700_000_000_000_000_000,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(traced)
	f.Add(traced[:len(traced)*2/3])
	f.Add(deltaData[:len(deltaData)/3])
	badFlags := append([]byte(nil), deltaData...)
	badFlags[5] |= 1 << 7 // an unknown flag bit alongside flagDelta
	f.Add(badFlags)

	// Re-exported frames (version 3): a mid-tier's rollup delta carrying
	// the federation header fields — boot incarnation, level, leaf count —
	// and a trace ID that will traverse two decode hops on its way from a
	// region to the global tier. Seeded whole and truncated so the fuzzer
	// explores the federation fields' boundaries.
	reexported, err := EncodeBatchBytes(&Batch{
		Host: "region-west", Seq: 7, BaseSeq: 6, Delta: true, Snapshots: deltaSnaps,
		TraceID: "region-west-00c0ffee-7", CaptureUnixNano: 1_700_000_000_000_000_000,
		Boot: 0xdeadbeefcafef00d, Level: 1, Leaves: 640,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(reexported)
	f.Add(reexported[:len(reexported)*3/4])
	// A liveness-only heartbeat: delta flag, zero snapshots, federation
	// header intact — the smallest frame the protocol sends.
	heartbeat, err := EncodeBatchBytes(&Batch{
		Host: "region-west", Seq: 7, BaseSeq: 6, Delta: true,
		Boot: 0xdeadbeefcafef00d, Level: 1, Leaves: 640,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(heartbeat)

	empty, err := EncodeBatchBytes(&Batch{Host: "empty"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("VSFB"))
	huge := append([]byte(nil), empty...)
	binary.BigEndian.PutUint32(huge[12:16], 0xffffffff)
	f.Add(huge)

	// Crash-torn tails: the same frame cut at every region boundary the
	// decoder crosses (inside the head, the header, the payload), strided
	// so the corpus stays small. Replay leans on every one of these cuts
	// mapping to ErrTruncatedFrame rather than a panic or a false decode.
	tornReg := makeRegistry(3, 1, 1, 80)
	torn, err := EncodeBatchBytes(&Batch{Host: "seed-torn", Seq: 3, Snapshots: tornReg.Snapshots()})
	if err != nil {
		f.Fatal(err)
	}
	stride := max(1, len(torn)/32)
	for cut := 1; cut < len(torn); cut += stride {
		f.Add(torn[:cut])
	}
	// A maximal declared payload over a near-empty body: the hostile
	// length prefix the chunked reader must absorb without allocating it.
	lying := append([]byte(nil), torn[:24]...)
	binary.BigEndian.PutUint32(lying[12:16], maxPayloadLen)
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Validate must be total: error or nil, never a panic, even on
		// snapshots deserialized from arbitrary JSON.
		valid := b.Validate() == nil
		reenc, err := EncodeBatchBytes(b)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		b2, err := DecodeBatch(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if b2.Host != b.Host || b2.Seq != b.Seq || len(b2.Snapshots) != len(b.Snapshots) {
			t.Fatalf("round trip drifted: %q/%d/%d vs %q/%d/%d",
				b.Host, b.Seq, len(b.Snapshots), b2.Host, b2.Seq, len(b2.Snapshots))
		}
		// The delta marker and its base sequence ride the round trip too —
		// losing flagDelta would turn an interval into cumulative state.
		if b2.Delta != b.Delta || b2.BaseSeq != b.BaseSeq {
			t.Fatalf("delta marker drifted: delta %v base %d vs delta %v base %d",
				b.Delta, b.BaseSeq, b2.Delta, b2.BaseSeq)
		}
		// So do the version-2 trace fields — a decoder that dropped them
		// would break end-to-end pipeline tracing silently.
		if b2.TraceID != b.TraceID || b2.CaptureUnixNano != b.CaptureUnixNano {
			t.Fatalf("trace fields drifted: %q/%d vs %q/%d",
				b.TraceID, b.CaptureUnixNano, b2.TraceID, b2.CaptureUnixNano)
		}
		// And the version-3 federation fields — dropping the boot would
		// resurrect the restarted-sender pinning bug, and dropping level or
		// leaves would silently flatten the tier view.
		if b2.Boot != b.Boot || b2.Level != b.Level || b2.Leaves != b.Leaves {
			t.Fatalf("federation fields drifted: %#x/%d/%d vs %#x/%d/%d",
				b.Boot, b.Level, b.Leaves, b2.Boot, b2.Level, b2.Leaves)
		}
		// A batch that validated must merge without panicking.
		if valid && len(b.Snapshots) > 0 {
			_ = core.Aggregate("fuzz", "*", b.Snapshots...)
		}
	})
}
