package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"vscsistats/internal/core"
)

// FuzzDecodeBatch asserts the codec's one hard promise: whatever bytes
// arrive — truncated, bit-flipped, hostile lengths, gzip garbage —
// DecodeBatch returns an error or a batch, and never panics. When a frame
// does decode, it must survive a re-encode/re-decode round trip, and
// Validate must never panic on it either.
func FuzzDecodeBatch(f *testing.F) {
	// Seed with real frames at several shapes, plus classic corruptions.
	for _, seedCfg := range []struct{ vms, disks, n int }{{1, 1, 0}, {1, 1, 50}, {2, 3, 200}} {
		reg := makeRegistry(1, seedCfg.vms, seedCfg.disks, seedCfg.n)
		data, err := EncodeBatchBytes(&Batch{Host: "seed", Seq: 1, Snapshots: reg.Snapshots()})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x55
		f.Add(flipped)
	}
	empty, err := EncodeBatchBytes(&Batch{Host: "empty"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte("VSFB"))
	huge := append([]byte(nil), empty...)
	binary.BigEndian.PutUint32(huge[12:16], 0xffffffff)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Validate must be total: error or nil, never a panic, even on
		// snapshots deserialized from arbitrary JSON.
		valid := b.Validate() == nil
		reenc, err := EncodeBatchBytes(b)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		b2, err := DecodeBatch(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if b2.Host != b.Host || b2.Seq != b.Seq || len(b2.Snapshots) != len(b.Snapshots) {
			t.Fatalf("round trip drifted: %q/%d/%d vs %q/%d/%d",
				b.Host, b.Seq, len(b.Snapshots), b2.Host, b2.Seq, len(b2.Snapshots))
		}
		// A batch that validated must merge without panicking.
		if valid && len(b.Snapshots) > 0 {
			_ = core.Aggregate("fuzz", "*", b.Snapshots...)
		}
	})
}
