package fleet

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"vscsistats/internal/core"
)

// logAggConfig is the segment-logged aggregator every test here opens:
// SyncInterval -1 syncs every append so the on-disk state is deterministic
// at any assertion point.
func logAggConfig(dir string) AggregatorConfig {
	return AggregatorConfig{StaleAfter: time.Hour, Shards: 4, DataDir: dir, SyncInterval: -1}
}

// subSnaps pairs cur with prev by (VM, disk) and returns per-disk interval
// deltas — the test-side copy of what an agent's delta push carries.
func subSnaps(cur, prev []*core.Snapshot) []*core.Snapshot {
	byKey := make(map[diskKey]*core.Snapshot, len(prev))
	for _, s := range prev {
		byKey[diskKey{s.VM, s.Disk}] = s
	}
	out := make([]*core.Snapshot, 0, len(cur))
	for _, s := range cur {
		out = append(out, s.Sub(byKey[diskKey{s.VM, s.Disk}]))
	}
	return out
}

// hostChain builds one host's batch sequence — a full capture followed by
// stages-1 interval deltas, with fresh traffic fed between captures — and
// returns the batches plus the registry holding the final cumulative
// state. Every sent time is sentNano, so tests control the history axis.
func hostChain(hostSeed, stages int, sentNano int64) (string, []*Batch, *core.Registry) {
	host := "esx-" + string(rune('a'+hostSeed))
	reg := makeRegistry(hostSeed, 2, 2, 100)
	prev := reg.Snapshots()
	batches := []*Batch{{Host: host, Seq: 1, SentUnixNano: sentNano, Snapshots: prev}}
	for s := 2; s <= stages; s++ {
		for i, col := range reg.List() {
			feed(col, hostSeed*1000+s*10+i, 80)
		}
		cur := reg.Snapshots()
		batches = append(batches, &Batch{
			Host: host, Seq: uint64(s), SentUnixNano: sentNano,
			Delta: true, BaseSeq: uint64(s - 1), Snapshots: subSnaps(cur, prev),
		})
		prev = cur
	}
	return host, batches, reg
}

// ingestAll feeds batches to g in order, failing the test on any error.
func ingestAll(t *testing.T, g *Aggregator, batches []*Batch) {
	t.Helper()
	for _, b := range batches {
		if err := g.Ingest(b, "push"); err != nil {
			t.Fatalf("ingest host %s seq %d: %v", b.Host, b.Seq, err)
		}
	}
}

// sameMerges asserts got's cluster and per-VM merges are bin-exact against
// want's.
func sameMerges(t *testing.T, label string, got, want *Aggregator) {
	t.Helper()
	if !sameSnapshot(got.ClusterSnapshot(false), want.ClusterSnapshot(false)) {
		t.Errorf("%s: cluster merge not bin-exact", label)
	}
	gv, wv := got.VMSnapshots(false), want.VMSnapshots(false)
	if len(gv) != len(wv) {
		t.Fatalf("%s: %d VM merges, want %d", label, len(gv), len(wv))
	}
	for i := range gv {
		if gv[i].VM != wv[i].VM || !sameSnapshot(gv[i], wv[i]) {
			t.Errorf("%s: per-VM merge %q not bin-exact", label, wv[i].VM)
		}
	}
}

// TestLogReplayRoundTrip is the tentpole's core contract: ingest full and
// delta chains from several hosts into a logged aggregator, drop it, and
// reopen from the same data dir — hosts, sequences, per-VM and cluster
// merges must all come back bin-exact against a never-restarted control,
// and the recovered chains must accept the very next delta with zero
// resyncs.
func TestLogReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	control := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 4})
	g, st, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Frames != 0 || st.Hosts != 0 {
		t.Fatalf("fresh data dir replayed %+v", st)
	}

	const hosts, stages = 5, 4
	regs := make(map[string]*core.Registry)
	chains := make(map[string][]*Batch)
	for h := 0; h < hosts; h++ {
		host, batches, reg := hostChain(h, stages, time.Now().UnixNano())
		regs[host], chains[host] = reg, batches
		ingestAll(t, g, batches)
		ingestAll(t, control, batches)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	g2, st2, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g2.Close()
	if st2.Frames != hosts*stages || st2.Skipped != 0 || st2.TornTails != 0 || st2.Hosts != hosts {
		t.Fatalf("replay stats %+v, want %d frames / %d hosts, nothing skipped or torn", st2, hosts*stages, hosts)
	}
	for _, hs := range g2.Hosts() {
		if hs.Seq != stages || hs.Source != "log" {
			t.Errorf("replayed host %s at seq %d source %q, want seq %d source log", hs.Host, hs.Seq, hs.Source, stages)
		}
	}
	sameMerges(t, "after replay", g2, control)

	// The recovered chains continue without a single resync: the next
	// delta for every host builds on the replayed sequence and applies.
	for host, reg := range regs {
		for i, col := range reg.List() {
			feed(col, 9000+i, 60)
		}
		cur := reg.Snapshots()
		prev := chains[host][len(chains[host])-1]
		next := &Batch{
			Host: host, Seq: prev.Seq + 1, SentUnixNano: time.Now().UnixNano(),
			Delta: true, BaseSeq: prev.Seq,
			Snapshots: subSnaps(cur, lastFullState(chains[host])),
		}
		if err := g2.Ingest(next, "push"); err != nil {
			t.Fatalf("post-restart delta for %s: %v", host, err)
		}
		if err := control.Ingest(next, "push"); err != nil {
			t.Fatal(err)
		}
	}
	if r := g2.Stats().Resyncs; r != 0 {
		t.Errorf("replayed aggregator demanded %d resyncs, want 0", r)
	}
	sameMerges(t, "after post-restart deltas", g2, control)
}

// lastFullState folds a batch chain into the cumulative state its last
// batch left behind, by the same rules the aggregator applies.
func lastFullState(batches []*Batch) []*core.Snapshot {
	state := batches[0].Snapshots
	for _, b := range batches[1:] {
		if b.Delta {
			state, _ = applyDeltaSnaps(state, b.Snapshots)
		} else {
			state = b.Snapshots
		}
	}
	return state
}

// segFiles lists a data dir's segment files sorted by path.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == segSuffix {
			out = append(out, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// frameOffsets returns the end offset of every whole frame in a segment.
func frameOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingReader{r: bytes.NewReader(data)}
	var offs []int64
	for {
		if _, err := DecodeBatch(cr); err != nil {
			break
		}
		offs = append(offs, cr.n)
	}
	return offs
}

// TestLogTornTailTruncation cuts a shard's only segment at every byte
// inside its final frame — every possible crash-mid-write point — and
// reopens: the open must succeed, count exactly one torn tail, recover
// every whole frame before the cut bin-exactly, and leave the file
// truncated so the next open is clean.
func TestLogTornTailTruncation(t *testing.T) {
	// One shard so the whole log is one chain; three batches so the torn
	// frame has history in front of it.
	dir := t.TempDir()
	cfg := logAggConfig(dir)
	cfg.Shards = 1
	g, _, err := OpenAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, batches, _ := hostChain(0, 3, time.Now().UnixNano())
	ingestAll(t, g, batches)
	g.Close()

	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("expected one segment, found %v", segs)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	offs := frameOffsets(t, segs[0])
	if len(offs) != len(batches) {
		t.Fatalf("segment holds %d frames, want %d", len(offs), len(batches))
	}
	lastGood := offs[len(offs)-2]

	control := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 1})
	ingestAll(t, control, batches[:len(batches)-1])

	// Stride through the cut points so the matrix stays fast but still
	// covers the head, the header and every region of the payload.
	stride := int64(1)
	if span := offs[len(offs)-1] - lastGood; span > 256 {
		stride = span / 256
	}
	for cut := lastGood + 1; cut < offs[len(offs)-1]; cut += stride {
		cutDir := t.TempDir()
		shardDir := filepath.Join(cutDir, shardDirName(0))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		seg := segPath(shardDir, 1)
		if err := os.WriteFile(seg, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ccfg := logAggConfig(cutDir)
		ccfg.Shards = 1
		g2, st, err := OpenAggregator(ccfg)
		if err != nil {
			t.Fatalf("cut at byte %d: open failed: %v", cut, err)
		}
		if st.TornTails != 1 || st.Frames != int64(len(batches)-1) {
			t.Fatalf("cut at byte %d: replay stats %+v, want 1 torn tail, %d frames", cut, st, len(batches)-1)
		}
		sameMerges(t, "torn tail", g2, control)
		g2.Close()
		// The torn bytes are gone from disk: a second open sees a clean
		// chain ending at the last whole frame.
		if fi, err := os.Stat(seg); err != nil || fi.Size() != lastGood {
			t.Fatalf("cut at byte %d: file is %d bytes after truncation, want %d", cut, fi.Size(), lastGood)
		}
		g3, st3, err := OpenAggregator(ccfg)
		if err != nil || st3.TornTails != 0 {
			t.Fatalf("cut at byte %d: second open err=%v stats=%+v, want clean", cut, err, st3)
		}
		g3.Close()
	}
}

// TestLogCorruptionRefusesToStart pins the other half of the torn-tail
// rule: bytes that contradict the format (bad magic mid-chain), or a
// truncation anywhere but the newest segment, are corruption — the
// aggregator must refuse to open rather than serve wrong numbers.
func TestLogCorruptionRefusesToStart(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		cfg := logAggConfig(dir)
		cfg.Shards = 1
		cfg.SegmentBytes = 1 // rotate after every append: every frame its own segment
		g, _, err := OpenAggregator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, batches, _ := hostChain(0, 3, time.Now().UnixNano())
		ingestAll(t, g, batches)
		g.Close()
		segs := segFiles(t, dir)
		if len(segs) < 2 {
			t.Fatalf("wanted a multi-segment chain, got %v", segs)
		}
		return dir, segs[0]
	}
	open := func(dir string) error {
		cfg := logAggConfig(dir)
		cfg.Shards = 1
		cfg.SegmentBytes = 1
		_, _, err := OpenAggregator(cfg)
		return err
	}

	t.Run("bad magic", func(t *testing.T) {
		dir, first := build(t)
		data, _ := os.ReadFile(first)
		data[0] ^= 0xff
		os.WriteFile(first, data, 0o644)
		if err := open(dir); err == nil || errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("open over corrupt magic: %v, want a non-truncation refusal", err)
		}
	})
	t.Run("torn mid-chain", func(t *testing.T) {
		dir, first := build(t)
		data, _ := os.ReadFile(first)
		os.WriteFile(first, data[:len(data)/2], 0o644)
		if err := open(dir); err == nil {
			t.Fatal("open succeeded over a truncated non-final segment")
		}
	})
}

// TestLogCompactionCrashWindows walks the two ways a crash can interrupt
// compaction. Before the atomic rename: a stray *.tmp sits next to intact
// segments and must be swept at open with nothing lost. After the rename
// but before cleanup: the compacted full frame coexists with the chain it
// replaced, and replaying both in order must be a no-op duplication —
// old frames first, the compacted full (newest sequence, highest segment
// number) last.
func TestLogCompactionCrashWindows(t *testing.T) {
	setup := func(t *testing.T) (string, []*Batch, *Aggregator) {
		dir := t.TempDir()
		cfg := logAggConfig(dir)
		cfg.Shards = 1
		g, _, err := OpenAggregator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, batches, _ := hostChain(0, 3, time.Now().UnixNano())
		ingestAll(t, g, batches)
		g.Close()
		control := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 1})
		ingestAll(t, control, batches)
		return dir, batches, control
	}
	reopen := func(t *testing.T, dir string) (*Aggregator, ReplayStats) {
		cfg := logAggConfig(dir)
		cfg.Shards = 1
		g, st, err := OpenAggregator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g, st
	}

	t.Run("before rename", func(t *testing.T) {
		dir, _, control := setup(t)
		shardDir := filepath.Join(dir, shardDirName(0))
		tmp := segPath(shardDir, 1) + tmpSuffix
		if err := os.WriteFile(tmp, []byte("half-written compaction output"), 0o644); err != nil {
			t.Fatal(err)
		}
		g, st := reopen(t, dir)
		defer g.Close()
		if st.TornTails != 0 || st.Skipped != 0 {
			t.Errorf("replay stats %+v, want clean", st)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Error("stray compaction tmp survived open")
		}
		sameMerges(t, "tmp swept", g, control)
	})
	t.Run("after rename, cleanup lost", func(t *testing.T) {
		dir, batches, control := setup(t)
		// The compacted replacement landed as a later segment, but the
		// crash hit before the chain it replaces was deleted.
		full := &Batch{
			Host: batches[0].Host, Seq: batches[len(batches)-1].Seq,
			SentUnixNano: batches[len(batches)-1].SentUnixNano,
			Snapshots:    lastFullState(batches),
		}
		frame, err := EncodeBatchBytes(full)
		if err != nil {
			t.Fatal(err)
		}
		shardDir := filepath.Join(dir, shardDirName(0))
		if err := os.WriteFile(segPath(shardDir, 2), frame, 0o644); err != nil {
			t.Fatal(err)
		}
		g, st := reopen(t, dir)
		defer g.Close()
		if st.Frames != int64(len(batches))+1 {
			t.Errorf("replayed %d frames, want the chain plus its compacted duplicate", st.Frames)
		}
		sameMerges(t, "duplicate chain", g, control)
		if hs := g.Hosts(); len(hs) != 1 || hs[0].Seq != full.Seq {
			t.Errorf("hosts after duplicated replay: %+v", hs)
		}
	})
}

// TestLogCrashRecoveryMatrix extends the BreakStream merge-equivalence
// property to the durability layer: for every point in a multi-host
// full-and-delta ingest sequence, crash there (with the next frame half
// written — the torn tail), reopen, finish the sequence, and require the
// final cluster and per-VM merges bin-exact against a never-restarted
// control. The property composes the codec round-trip, the strict apply
// rules, torn-tail truncation, and replay ordering in one assertion.
func TestLogCrashRecoveryMatrix(t *testing.T) {
	const hosts, stages = 3, 3
	var script []*Batch
	control := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 2})
	for h := 0; h < hosts; h++ {
		_, batches, _ := hostChain(h, stages, time.Now().UnixNano())
		script = append(script, batches...)
	}
	ingestAll(t, control, script)

	for crash := 1; crash < len(script); crash++ {
		dir := t.TempDir()
		cfg := logAggConfig(dir)
		cfg.Shards = 2
		g1, _, err := OpenAggregator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, g1, script[:crash])
		g1.Close()

		// The crash interrupts the next frame mid-write: append half of
		// it to the shard chain it would have landed on.
		next := script[crash]
		frame, err := EncodeBatchBytes(next)
		if err != nil {
			t.Fatal(err)
		}
		idx := g1.ShardFor(next.Host)
		shardDir := filepath.Join(dir, shardDirName(idx))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		tail := segPath(shardDir, 1)
		if segs := segFiles(t, shardDir); len(segs) > 0 {
			tail = segs[len(segs)-1]
		}
		f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(frame[:len(frame)/2])
		f.Close()

		g2, st, err := OpenAggregator(cfg)
		if err != nil {
			t.Fatalf("crash at %d: reopen: %v", crash, err)
		}
		if st.TornTails != 1 {
			t.Fatalf("crash at %d: %d torn tails, want 1", crash, st.TornTails)
		}
		// The sender retries the interrupted batch (its push never got a
		// 200), then the rest of the fleet carries on.
		ingestAll(t, g2, script[crash:])
		if r := g2.Stats().Resyncs; r != 0 {
			t.Errorf("crash at %d: %d resyncs after recovery, want 0", crash, r)
		}
		sameMerges(t, "crash matrix", g2, control)
		g2.Close()
	}
}

// TestLogRotationAndCompaction forces rotation on every append and
// compaction every three sealed segments: the chain must stay small, the
// counters must show the maintenance happened, and a reopen of the
// compacted log must still reconstruct the exact state.
func TestLogRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := logAggConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 1
	cfg.CompactSegments = 3
	g, _, err := OpenAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	control := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 1})
	_, batches, _ := hostChain(0, 12, time.Now().UnixNano())
	ingestAll(t, g, batches)
	ingestAll(t, control, batches)

	st := g.LogStats()
	if !st.Enabled || st.Rotations < 10 || st.Compactions < 1 {
		t.Fatalf("log stats after 12 one-frame segments: %+v", st)
	}
	if st.Segments > cfg.CompactSegments+2 {
		t.Errorf("compaction left %d segments, want <= %d", st.Segments, cfg.CompactSegments+2)
	}
	g.Close()

	g2, rst, err := OpenAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if rst.Skipped != 0 {
		// Deltas whose base frame was compacted away would be skipped;
		// compaction must rewrite chains so that never happens.
		t.Errorf("replay of compacted log skipped %d frames", rst.Skipped)
	}
	sameMerges(t, "compacted log", g2, control)
	if hs := g2.Hosts(); len(hs) != 1 || hs[0].Seq != uint64(len(batches)) {
		t.Errorf("hosts after compacted replay: %+v", hs)
	}
}

// TestLogRetentionSweep pins the retention rule: sealed segments whose
// newest frame is older than the horizon are dropped at rotation, whole
// segments at a time, and a replay of what remains still reconstructs the
// newest state when the chain is full frames.
func TestLogRetentionSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := logAggConfig(dir)
	cfg.Shards = 1
	cfg.SegmentBytes = 1
	cfg.CompactSegments = -1 // isolate retention from compaction
	cfg.Retention = time.Hour
	g, _, err := OpenAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := makeRegistry(0, 1, 1, 100)
	old := time.Now().Add(-2 * time.Hour).UnixNano()
	for seq := uint64(1); seq <= 4; seq++ {
		feed(reg.List()[0], int(seq), 50)
		if err := g.Ingest(&Batch{Host: "esx-a", Seq: seq, SentUnixNano: old, Snapshots: reg.Snapshots()}, "push"); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh batch rotates and sweeps: every sealed segment above is
	// beyond the horizon.
	feed(reg.List()[0], 99, 50)
	if err := g.Ingest(&Batch{Host: "esx-a", Seq: 5, SentUnixNano: time.Now().UnixNano(), Snapshots: reg.Snapshots()}, "push"); err != nil {
		t.Fatal(err)
	}
	st := g.LogStats()
	if st.SegmentsRetired < 3 {
		t.Fatalf("retention retired %d segments, want >= 3 (stats %+v)", st.SegmentsRetired, st)
	}
	g.Close()

	g2, rst, err := OpenAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if rst.Frames >= 5 {
		t.Errorf("replayed %d frames, want the swept chain only", rst.Frames)
	}
	if got := g2.ClusterSnapshot(false); !sameSnapshot(got, core.Aggregate("cluster", "*", reg.Snapshots()...)) {
		t.Error("post-retention replay lost the newest state")
	}
}

// TestLogRestartZeroResync is the fleet-amnesia acceptance test from the
// agent's side: with a data dir, an aggregator restart is invisible — the
// replayed sequence numbers let the agent's very next delta apply, where a
// memory-only aggregator would answer 409 and force a full resync (the
// TestAgentResyncsAfterAggregatorRestart behavior this PR exists to make
// optional).
func TestLogRestartZeroResync(t *testing.T) {
	dir := t.TempDir()
	var agg atomic.Pointer[Aggregator]
	g1, _, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	agg.Store(g1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		agg.Load().ServeHTTP(w, r)
	}))
	defer srv.Close()

	reg := makeRegistry(7, 1, 2, 200)
	a := NewAgent(reg, AgentConfig{Host: "esx-g", Endpoint: srv.URL + "/fleet/push"})
	if err := a.PushNow(); err != nil {
		t.Fatal(err)
	}
	feed(reg.List()[0], 800, 50)
	if err := a.PushNow(); err != nil { // establishes the delta chain
		t.Fatal(err)
	}

	// Restart: the replacement replays the log instead of starting blank.
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	g2, st, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if st.Hosts != 1 {
		t.Fatalf("replay recovered %d hosts, want 1", st.Hosts)
	}
	agg.Store(g2)

	feed(reg.List()[1], 801, 50)
	if err := a.PushNow(); err != nil {
		t.Fatalf("push across aggregator restart: %v", err)
	}
	if got := a.Stats().Resyncs; got != 0 {
		t.Errorf("agent resyncs across logged restart = %d, want 0", got)
	}
	if got := g2.Stats().DeltasApplied; got < 1 {
		t.Errorf("replayed aggregator applied %d deltas, want the post-restart one", got)
	}
	if got := g2.ClusterSnapshot(false); !sameSnapshot(got, reg.HostSnapshot()) {
		t.Error("post-restart cluster view diverged from the registry")
	}
}

// TestLogShardCountShrink reopens a log written with more shards than the
// new configuration: orphan shard dirs must replay (hosts route by hash,
// not by dir), be rewritten into the current shards, and disappear.
func TestLogShardCountShrink(t *testing.T) {
	dir := t.TempDir()
	wide := logAggConfig(dir)
	wide.Shards = 8
	g, _, err := OpenAggregator(wide)
	if err != nil {
		t.Fatal(err)
	}
	control := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, Shards: 2})
	var script []*Batch
	for h := 0; h < 6; h++ {
		_, batches, _ := hostChain(h, 2, time.Now().UnixNano())
		script = append(script, batches...)
	}
	ingestAll(t, g, script)
	ingestAll(t, control, script)
	g.Close()

	narrow := logAggConfig(dir)
	narrow.Shards = 2
	g2, st, err := OpenAggregator(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hosts != 6 {
		t.Fatalf("recovered %d hosts across the shrink, want 6 (stats %+v)", st.Hosts, st)
	}
	sameMerges(t, "shard shrink", g2, control)
	g2.Close()
	// The orphan dirs are gone, and a plain reopen sees everything.
	for i := narrow.Shards; i < wide.Shards; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardDirName(i))); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the rewrite", shardDirName(i))
		}
	}
	g3, st3, err := OpenAggregator(narrow)
	if err != nil || st3.Hosts != 6 {
		t.Fatalf("second open after shrink: err=%v stats=%+v", err, st3)
	}
	g3.Close()
}
