package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
)

// shard is one independent slice of the aggregator's host space. Hosts
// route to shards by a consistent hash of their name, so every batch from
// one host always lands on the same shard and shards share no state: each
// has its own lock, its own host map and its own merge cache. Ingest on
// one shard never contends with ingest or reads on another, and a scrape
// only re-merges the shards whose hosts actually changed.
type shard struct {
	index int

	// mu guards hosts and version. version increments whenever any host's
	// stored snapshots change (ingest of new state, delta apply, forget) —
	// the merge cache's invalidation signal. Liveness-only refreshes do
	// not bump it: the cache also keys on the fresh-host set, which is
	// recomputed per read.
	mu      sync.RWMutex
	hosts   map[string]*hostState
	version uint64

	batches       atomic.Int64
	deltasApplied atomic.Int64
	duplicates    atomic.Int64
	resyncs       atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	// resyncCause splits resyncs by ResyncCause (indexed by causeIndex);
	// layout-mismatch is counted at the aggregator, which is where
	// Validate runs.
	resyncCause [numResyncCauses]atomic.Int64

	// obs receives merge-recompute latency samples; nil when the owning
	// aggregator has no tracker.
	obs *fleetobs.Tracker

	// cacheMu guards cache and single-flights recomputation: concurrent
	// scrapes of an unchanged shard wait for one merge instead of all
	// redoing it.
	cacheMu sync.Mutex
	cache   shardCache
}

// shardCache memoizes the shard's merged views. An entry is valid for
// exactly one (version, fresh-host set) pair: a new ingest bumps version,
// and a host aging past the staleness horizon (or reviving) changes the
// host list, so either invalidates without any clock-driven expiry logic.
type shardCache struct {
	valid   bool
	version uint64
	hosts   []string
	cluster *core.Snapshot
	vms     []*core.Snapshot
}

func newShard(index int, obs *fleetobs.Tracker) *shard {
	return &shard{index: index, hosts: make(map[string]*hostState), obs: obs}
}

// noteResync counts one refused delta, total and per cause.
func (s *shard) noteResync(cause ResyncCause) {
	s.resyncs.Add(1)
	if i := causeIndex(cause); i >= 0 {
		s.resyncCause[i].Add(1)
	}
}

// diskKey identifies one virtual disk within a host's batch.
type diskKey struct{ vm, disk string }

// ingest records a validated batch. Full batches replace the host's state
// when their sequence is newest (late retries refresh liveness only);
// delta batches must build on exactly the sequence the shard holds —
// anything else returns ErrResyncRequired so the agent falls back to a
// full push. Duplicate delta deliveries (retries whose ack was lost) are
// idempotent: liveness refreshes, nothing is applied twice. The applied
// result reports whether the batch changed stored state — the segment log
// persists exactly those batches, so liveness-only refreshes and
// duplicates never consume log space.
func (s *shard) ingest(b *Batch, source string, now time.Time) (applied bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.hosts[b.Host]
	if b.Delta {
		if st == nil {
			s.noteResync(ResyncUnknownHost)
			return false, resyncErr(ResyncUnknownHost, "no state for host %q (aggregator restarted?)", b.Host)
		}
		st.lastSeen, st.source = now, source
		if b.Boot != 0 && st.boot != 0 && b.Boot != st.boot {
			// The sender restarted: its sequence space started over, so
			// neither the duplicate nor the base-match rule below can be
			// trusted. Only full state re-establishes the chain.
			s.noteResync(ResyncBootChanged)
			return false, resyncErr(ResyncBootChanged, "delta from boot %#x, host %q stored boot %#x", b.Boot, b.Host, st.boot)
		}
		if b.Seq <= st.seq {
			st.batches++
			s.batches.Add(1)
			s.duplicates.Add(1)
			return false, nil
		}
		if b.BaseSeq != st.seq {
			s.noteResync(ResyncSeqGap)
			return false, resyncErr(ResyncSeqGap, "delta base seq %d, host %q is at %d", b.BaseSeq, b.Host, st.seq)
		}
		snaps, err := applyDeltaSnaps(st.snaps, b.Snapshots)
		if err != nil {
			s.noteResync(ResyncUnknownDisk)
			return false, resyncErr(ResyncUnknownDisk, "%v", err)
		}
		st.snaps = snaps
		st.seq = b.Seq
		st.sentUnixNano = b.SentUnixNano
		if b.Boot != 0 {
			st.boot = b.Boot
		}
		st.level, st.leaves = b.Level, b.Leaves
		st.batches++
		s.batches.Add(1)
		s.deltasApplied.Add(1)
		s.version++
		return true, nil
	}
	if st == nil {
		st = &hostState{host: b.Host}
		s.hosts[b.Host] = st
	}
	st.lastSeen = now
	st.source = source
	st.batches++
	// A full batch from a new boot incarnation replaces state even at a
	// lower sequence: the sender's sequence space restarted, so "newest
	// seq wins" would pin the host at its dead predecessor's state.
	if b.Seq >= st.seq || (b.Boot != 0 && st.boot != 0 && b.Boot != st.boot) {
		st.seq = b.Seq
		st.sentUnixNano = b.SentUnixNano
		st.snaps = b.Snapshots
		st.boot = b.Boot
		st.level, st.leaves = b.Level, b.Leaves
		s.version++
		applied = true
	}
	s.batches.Add(1)
	return applied, nil
}

// applyDeltaSnaps reapplies a delta batch onto a host's stored full state.
// Deltas pair with base snapshots by (VM, disk); a delta for a disk the
// base does not hold means the sender built against state we lost — a
// resync condition, not corruption. Disks omitted from the delta are
// unchanged and carry over by reference (snapshots are immutable).
func applyDeltaSnaps(base, deltas []*core.Snapshot) ([]*core.Snapshot, error) {
	byKey := make(map[diskKey]int, len(base))
	for i, s := range base {
		byKey[diskKey{s.VM, s.Disk}] = i
	}
	out := append([]*core.Snapshot(nil), base...)
	for _, d := range deltas {
		i, ok := byKey[diskKey{d.VM, d.Disk}]
		if !ok {
			return nil, fmt.Errorf("delta for disk %s/%s with no base state", d.VM, d.Disk)
		}
		out[i] = out[i].ApplyDelta(d)
	}
	return out, nil
}

// fullBatches renders every host's current state as one full batch each,
// sorted by host name — what segment-log compaction writes in place of a
// host's full-plus-deltas chain. Snapshots are shared by reference
// (immutable once stored), so this copies slice headers, not histograms.
func (s *shard) fullBatches() []*Batch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.hosts))
	for h := range s.hosts {
		names = append(names, h)
	}
	sort.Strings(names)
	out := make([]*Batch, 0, len(names))
	for _, h := range names {
		st := s.hosts[h]
		out = append(out, &Batch{
			Host:         st.host,
			Seq:          st.seq,
			SentUnixNano: st.sentUnixNano,
			Snapshots:    st.snaps,
			Boot:         st.boot,
			Level:        st.level,
			Leaves:       st.leaves,
		})
	}
	return out
}

// forget drops a host; reports whether it existed.
func (s *shard) forget(host string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.hosts[host]; !ok {
		return false
	}
	delete(s.hosts, host)
	s.version++
	return true
}

// statuses appends every host's liveness record to out.
func (s *shard) statuses(now time.Time, staleAfter time.Duration, out []HostStatus) []HostStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, st := range s.hosts {
		age := now.Sub(st.lastSeen)
		leaves := st.leaves
		if leaves <= 0 {
			leaves = 1
		}
		out = append(out, HostStatus{
			Host:             st.host,
			Source:           st.source,
			Seq:              st.seq,
			Batches:          st.batches,
			Snapshots:        len(st.snaps),
			LastSeenUnixNano: st.lastSeen.UnixNano(),
			AgeSeconds:       age.Seconds(),
			Stale:            age > staleAfter,
			Level:            st.level,
			Leaves:           leaves,
		})
	}
	return out
}

// merged returns the shard-level cluster merge and per-VM merges of every
// fresh host (both nil when the shard has none). The includeStale=false
// path memoizes: as long as the shard's version and fresh-host set are
// unchanged, repeated scrapes return the cached merge instead of
// re-folding every host — the property that makes a scrape-heavy
// aggregator's merge cost proportional to what changed, not to fleet
// size. Returned snapshots are shared and must be treated as immutable
// (core.Aggregate clones before merging, so feeding them back in is safe).
func (s *shard) merged(now time.Time, staleAfter time.Duration, includeStale, useCache bool) (*core.Snapshot, []*core.Snapshot) {
	s.mu.RLock()
	version := s.version
	names := make([]string, 0, len(s.hosts))
	for h, st := range s.hosts {
		if !includeStale && now.Sub(st.lastSeen) > staleAfter {
			continue
		}
		names = append(names, h)
	}
	sort.Strings(names)
	snaps := make([]*core.Snapshot, 0, len(names))
	for _, h := range names {
		snaps = append(snaps, s.hosts[h].snaps...)
	}
	s.mu.RUnlock()

	if includeStale || !useCache {
		start := time.Now()
		cluster, vms := mergeSnaps(snaps)
		s.obs.ObserveSince(fleetobs.StageMergeRecompute, start, fleetobs.Event{Shard: s.index})
		return cluster, vms
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.cache.valid && s.cache.version == version && equalHostLists(s.cache.hosts, names) {
		s.cacheHits.Add(1)
		return s.cache.cluster, s.cache.vms
	}
	s.cacheMisses.Add(1)
	start := time.Now()
	cluster, vms := mergeSnaps(snaps)
	s.obs.ObserveSince(fleetobs.StageMergeRecompute, start, fleetobs.Event{Shard: s.index})
	// A slow reader that observed an older version must not clobber a
	// fresher entry; version is monotone under mu.
	if !s.cache.valid || version >= s.cache.version {
		s.cache = shardCache{valid: true, version: version, hosts: names, cluster: cluster, vms: vms}
	}
	return cluster, vms
}

// mergeSnaps folds host snapshots into one cluster merge plus per-VM
// merges sorted by VM name.
func mergeSnaps(snaps []*core.Snapshot) (*core.Snapshot, []*core.Snapshot) {
	if len(snaps) == 0 {
		return nil, nil
	}
	cluster := core.Aggregate("cluster", "*", snaps...)
	byVM := make(map[string][]*core.Snapshot)
	for _, s := range snaps {
		byVM[s.VM] = append(byVM[s.VM], s)
	}
	vms := make([]string, 0, len(byVM))
	for vm := range byVM {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	out := make([]*core.Snapshot, 0, len(vms))
	for _, vm := range vms {
		out = append(out, core.Aggregate(vm, "*", byVM[vm]...))
	}
	return cluster, out
}

func equalHostLists(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shardHash routes a host name to a shard: FNV-1a over the name, reduced
// modulo the shard count. Deterministic across processes and restarts, so
// any party that knows the shard count can compute a host's shard.
func shardHash(host string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(host))
	return h.Sum32()
}

// pullSlot spreads hosts across the pull interval's pullSlots phases. A
// different salt than shard routing, so the pull schedule and shard
// assignment are uncorrelated.
func pullSlot(host string) int {
	h := fnv.New32a()
	h.Write([]byte(host))
	h.Write([]byte("#pull-phase"))
	return int(h.Sum32() % pullSlots)
}
