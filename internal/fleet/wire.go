package fleet

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"vscsistats/internal/core"
	"vscsistats/internal/histogram"
)

// The frame layout, all integers big-endian:
//
//	offset size field
//	0      4    magic "VSFB"
//	4      1    version (>= 1)
//	5      1    flags (bit 0: payload is gzip-compressed)
//	6      2    reserved — writers zero, readers ignore
//	8      4    header length
//	12     4    payload length
//	16     ...  header JSON (batchHeader)
//	...    ...  payload: JSON array of core.Snapshot, gzip-framed
//
// Forward compatibility: the header is JSON, so future versions add fields
// without breaking old readers (unknown fields are ignored both ways), and
// readers accept any version >= Version as long as the flags are
// understood — a frame's meaning is carried entirely by magic + flags +
// header, never by the version number alone. Frames are length-prefixed,
// so any number of them can be concatenated on one stream and decoded one
// DecodeBatch call at a time.

// Wire format constants.
const (
	// Version is the frame version this package writes. Version 2 added
	// the trace_id and capture_unix_nano header fields; version 3 added
	// the boot, level and leaves federation fields. All of them ride in
	// the JSON header (ignored by readers that predate them) and change no
	// payload semantics, so no new flag bit is needed and version-1
	// decoders accept version-3 frames unchanged.
	Version = 3

	// flagGzip marks a gzip-compressed payload.
	flagGzip = 1 << 0

	// flagDelta marks a delta frame: the payload's snapshots are interval
	// deltas (Snapshot.Sub) against the sender's state at header BaseSeq,
	// not cumulative state. A decoder that does not understand this bit
	// must reject the frame — misreading a delta as full state silently
	// truncates every histogram — which is exactly what the unknown-flag
	// check below does for pre-delta readers.
	flagDelta = 1 << 1

	// knownFlags is the set of flag bits this decoder understands; frames
	// carrying others are rejected rather than misinterpreted.
	knownFlags = flagGzip | flagDelta

	// maxHeaderLen and maxPayloadLen bound a frame's declared sizes so a
	// corrupt or hostile length prefix cannot drive a huge allocation.
	maxHeaderLen  = 1 << 20
	maxPayloadLen = 1 << 28

	// maxDecodedLen bounds the decompressed payload (gzip-bomb guard).
	maxDecodedLen = 1 << 30
)

var wireMagic = [4]byte{'V', 'S', 'F', 'B'}

// ErrBadFrame wraps every decode failure, so callers can distinguish a
// malformed frame from transport errors with errors.Is.
var ErrBadFrame = errors.New("fleet: bad frame")

// ErrTruncatedFrame marks the subset of decode failures where the stream
// simply ended inside a frame — the head, header or payload was cut short
// by EOF rather than carrying bytes that contradict the format. Every
// ErrTruncatedFrame is also an ErrBadFrame (errors.Is matches both). The
// distinction is what makes log replay safe: a truncated tail means "crash
// mid-write, truncate here and continue", while any other bad frame means
// "corruption, refuse to start". The two are genuinely different on the
// wire — truncation never produces wrong bytes, only missing ones.
var ErrTruncatedFrame = errors.New("fleet: truncated frame")

// Batch is one host's worth of snapshots in flight.
type Batch struct {
	// Host identifies the sending host; it is the aggregator's key.
	Host string `json:"host"`
	// Seq increases by one per batch built on the sender. The aggregator
	// keeps only the highest sequence seen, so late retries of older
	// batches never roll state backwards.
	Seq uint64 `json:"seq"`
	// SentUnixNano is the sender's wall clock when the batch was built.
	SentUnixNano int64 `json:"sent_unix_nano"`
	// Delta marks an interval-delta batch: Snapshots are Snapshot.Sub
	// deltas against the sender's state at BaseSeq, and disks whose state
	// did not change since BaseSeq may be omitted entirely. The receiver
	// must hold exactly BaseSeq for the host to apply it; anything else is
	// a resync condition. On the wire this is the flagDelta frame bit.
	Delta bool `json:"-"`
	// BaseSeq is the acknowledged sequence a delta batch builds on.
	// Meaningless (and zero) on full batches.
	BaseSeq uint64 `json:"-"`
	// Snapshots is the registry's state — cumulative since enable/reset on
	// full batches, interval deltas on delta batches.
	Snapshots []*core.Snapshot `json:"-"`
	// TraceID identifies one push end-to-end: the agent stamps it at
	// capture time and every pipeline stage — encode, push, decode, shard
	// apply, log append, replay — reports against it, so a single push can
	// be followed across processes. Empty on frames from pre-trace
	// senders; carried in the frame header, never required.
	TraceID string `json:"-"`
	// CaptureUnixNano is the sender's wall clock when the underlying
	// registry snapshots were captured (before delta rendering, encoding
	// and queueing), as opposed to SentUnixNano which is when the batch
	// was built. Zero on frames from pre-trace senders.
	CaptureUnixNano int64 `json:"-"`
	// Boot identifies the sender's incarnation: a random value drawn once
	// per sender process. When a host's Boot changes, its Seq space
	// restarted from 1, so the receiver replaces stored state even when
	// the new sequence is lower — the rule that lets a restarted mid-tier
	// re-exporter displace its predecessor's state instead of being
	// mistaken for a late retry. Zero on frames from pre-federation
	// senders, which keeps their retry semantics exactly as before.
	Boot uint64 `json:"-"`
	// Level is the sender's height in the federation tree: 0 for a leaf
	// agent, 1 + max(ingested levels) for an aggregator re-exporting its
	// merged state. Liveness metadata for level-aware staleness; it rides
	// the header so every tier of /fleet/hosts can tag what it holds.
	Level int `json:"-"`
	// Leaves is how many leaf hosts the batch's state folds together: 0
	// (meaning 1) for a leaf agent, the sum of fresh downstream leaves for
	// a re-exported rollup.
	Leaves int `json:"-"`
}

// batchHeader is the frame header; Count duplicates len(Snapshots) so a
// reader can size-check before decoding the payload.
type batchHeader struct {
	Host         string `json:"host"`
	Seq          uint64 `json:"seq"`
	SentUnixNano int64  `json:"sent_unix_nano"`
	Count        int    `json:"count"`
	// BaseSeq accompanies the flagDelta frame bit (which alone marks a
	// frame as a delta); omitted from full-batch headers.
	BaseSeq uint64 `json:"base_seq,omitempty"`
	// TraceID and CaptureUnixNano (version 2) ride the JSON header's
	// forward-compatibility rule: old readers ignore them, old writers
	// omit them, and either way the frame stays decodable.
	TraceID         string `json:"trace_id,omitempty"`
	CaptureUnixNano int64  `json:"capture_unix_nano,omitempty"`
	// Boot, Level and Leaves (version 3) carry federation liveness
	// metadata under the same rule.
	Boot   uint64 `json:"boot,omitempty"`
	Level  int    `json:"level,omitempty"`
	Leaves int    `json:"leaves,omitempty"`
}

// EncodeBatch writes b to w as one frame.
func EncodeBatch(w io.Writer, b *Batch) error {
	hdr := batchHeader{
		Host: b.Host, Seq: b.Seq, SentUnixNano: b.SentUnixNano, Count: len(b.Snapshots),
		TraceID: b.TraceID, CaptureUnixNano: b.CaptureUnixNano,
		Boot: b.Boot, Level: b.Level, Leaves: b.Leaves,
	}
	if b.Delta {
		hdr.BaseSeq = b.BaseSeq
	}
	header, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	zw := gzip.NewWriter(&payload)
	if err := json.NewEncoder(zw).Encode(b.Snapshots); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if payload.Len() > maxPayloadLen {
		return fmt.Errorf("fleet: payload %d bytes exceeds frame limit %d", payload.Len(), maxPayloadLen)
	}
	var head [16]byte
	copy(head[0:4], wireMagic[:])
	head[4] = Version
	head[5] = flagGzip
	if b.Delta {
		head[5] |= flagDelta
	}
	binary.BigEndian.PutUint32(head[8:12], uint32(len(header)))
	binary.BigEndian.PutUint32(head[12:16], uint32(payload.Len()))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err = w.Write(payload.Bytes())
	return err
}

// EncodeBatchBytes renders b as one frame in memory.
func EncodeBatchBytes(b *Batch) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// badFrame builds an ErrBadFrame-wrapped error.
func badFrame(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadFrame, fmt.Sprintf(format, args...))
}

// truncatedFrame builds an error matching both ErrBadFrame and
// ErrTruncatedFrame: the stream ended inside a frame.
func truncatedFrame(format string, args ...any) error {
	return fmt.Errorf("%w: %w: %s", ErrBadFrame, ErrTruncatedFrame, fmt.Sprintf(format, args...))
}

// eofErr reports whether err is a flavor of "the stream ended": what
// io.ReadFull returns when a fixed-length region is cut short.
func eofErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// readSized reads exactly n declared bytes, growing the buffer chunk by
// chunk instead of trusting the declaration: a hostile or corrupt length
// prefix can claim up to maxPayloadLen (256 MiB), and allocating that up
// front from the header alone — before a single payload byte has arrived —
// hands any peer a cheap memory-pressure attack. Growing with the bytes
// actually read caps the damage at one chunk past what the peer really
// sent. A short read maps to ErrTruncatedFrame.
func readSized(r io.Reader, n uint32, what string) ([]byte, error) {
	const chunk = 1 << 20
	total := int(n)
	out := make([]byte, 0, min(total, chunk))
	for len(out) < total {
		step := min(total-len(out), chunk)
		if cap(out)-len(out) < step {
			grown := make([]byte, len(out), min(total, 2*cap(out)+step))
			copy(grown, out)
			out = grown
		}
		m, err := io.ReadFull(r, out[len(out):len(out)+step])
		out = out[:len(out)+m]
		if err != nil {
			if eofErr(err) {
				return nil, truncatedFrame("short %s: %d of %d bytes", what, len(out), total)
			}
			return nil, badFrame("short %s: %v", what, err)
		}
	}
	return out, nil
}

// DecodeBatch reads exactly one frame from r. It returns io.EOF when r is
// exhausted before the first byte (a clean end of stream) and an error
// wrapping ErrBadFrame for any malformed frame; it never panics, whatever
// the input. The subset of failures where the stream ended inside the
// frame additionally matches ErrTruncatedFrame — segment-log replay uses
// that to tell a crash-torn tail (truncate and continue) from corruption
// (refuse to start). Declared lengths are never trusted for allocation:
// buffers grow with the bytes actually read, so a hostile 256 MiB length
// prefix on a ten-byte body costs one chunk, not 256 MiB.
func DecodeBatch(r io.Reader) (*Batch, error) {
	var head [16]byte
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		if eofErr(err) {
			return nil, truncatedFrame("short frame head: %v", err)
		}
		return nil, badFrame("short frame head: %v", err)
	}
	if _, err := io.ReadFull(r, head[1:]); err != nil {
		if eofErr(err) {
			return nil, truncatedFrame("short frame head: %v", err)
		}
		return nil, badFrame("short frame head: %v", err)
	}
	if !bytes.Equal(head[0:4], wireMagic[:]) {
		return nil, badFrame("bad magic %q", head[0:4])
	}
	version, flags := head[4], head[5]
	if version < 1 {
		return nil, badFrame("unsupported version %d", version)
	}
	if flags&^byte(knownFlags) != 0 {
		return nil, badFrame("unknown flags %#x", flags)
	}
	headerLen := binary.BigEndian.Uint32(head[8:12])
	payloadLen := binary.BigEndian.Uint32(head[12:16])
	if headerLen > maxHeaderLen {
		return nil, badFrame("header length %d exceeds limit %d", headerLen, maxHeaderLen)
	}
	if payloadLen > maxPayloadLen {
		return nil, badFrame("payload length %d exceeds limit %d", payloadLen, maxPayloadLen)
	}
	header, err := readSized(r, headerLen, "header")
	if err != nil {
		return nil, err
	}
	var hdr batchHeader
	if err := json.Unmarshal(header, &hdr); err != nil {
		return nil, badFrame("header JSON: %v", err)
	}
	payload, err := readSized(r, payloadLen, "payload")
	if err != nil {
		return nil, err
	}
	body := io.Reader(bytes.NewReader(payload))
	if flags&flagGzip != 0 {
		zr, err := gzip.NewReader(body)
		if err != nil {
			return nil, badFrame("gzip: %v", err)
		}
		defer zr.Close()
		body = io.LimitReader(zr, maxDecodedLen+1)
	}
	decoded, err := io.ReadAll(body)
	if err != nil {
		return nil, badFrame("decompress: %v", err)
	}
	if len(decoded) > maxDecodedLen {
		return nil, badFrame("decoded payload exceeds limit %d", maxDecodedLen)
	}
	var snaps []*core.Snapshot
	if err := json.Unmarshal(decoded, &snaps); err != nil {
		return nil, badFrame("payload JSON: %v", err)
	}
	if len(snaps) != hdr.Count {
		return nil, badFrame("header count %d != payload count %d", hdr.Count, len(snaps))
	}
	out := &Batch{
		Host: hdr.Host, Seq: hdr.Seq, SentUnixNano: hdr.SentUnixNano,
		Delta: flags&flagDelta != 0, Snapshots: snaps,
		TraceID: hdr.TraceID, CaptureUnixNano: hdr.CaptureUnixNano,
		Boot: hdr.Boot, Level: hdr.Level, Leaves: hdr.Leaves,
	}
	if out.Delta {
		// base_seq means nothing without the flag; dropping it on full
		// frames keeps decode(encode(b)) == b in both directions.
		out.BaseSeq = hdr.BaseSeq
	}
	return out, nil
}

// Validate checks b is safe to merge: a named host and, per snapshot,
// every histogram present with the canonical bin layout and a consistent
// counts length. A batch that passes can be fed to core.Aggregate without
// any possibility of a layout-mismatch panic. Decode accepts what the
// frame says; Validate accepts what the merge path requires.
func (b *Batch) Validate() error {
	if b.Host == "" {
		return errors.New("fleet: batch without host name")
	}
	if b.Delta && b.BaseSeq >= b.Seq {
		return fmt.Errorf("fleet: delta batch base seq %d not below seq %d", b.BaseSeq, b.Seq)
	}
	if b.Level < 0 || b.Leaves < 0 {
		return fmt.Errorf("fleet: negative federation metadata (level %d, leaves %d)", b.Level, b.Leaves)
	}
	for i, s := range b.Snapshots {
		if s == nil {
			return fmt.Errorf("fleet: snapshot %d is null", i)
		}
		for _, m := range core.Metrics() {
			classes := []core.Class{core.All, core.Reads, core.Writes}
			if m == core.MetricSeekWindowed {
				classes = classes[:1]
			}
			for _, cl := range classes {
				if err := checkLayout(s.Histogram(m, cl), refLayout.Histogram(m, cl)); err != nil {
					return fmt.Errorf("fleet: snapshot %d (%s/%s) %s[%s]: %w",
						i, s.VM, s.Disk, m, cl, err)
				}
			}
		}
	}
	return nil
}

// checkLayout verifies h exists, its counts cover every bin, and its edges
// equal the reference layout.
func checkLayout(h, ref *histogram.Snapshot) error {
	if h == nil {
		return errors.New("missing histogram")
	}
	if len(h.Counts) != len(h.Edges)+1 {
		return fmt.Errorf("%d counts for %d edges", len(h.Counts), len(h.Edges))
	}
	if len(h.Edges) != len(ref.Edges) {
		return fmt.Errorf("%d edges, want %d", len(h.Edges), len(ref.Edges))
	}
	for i := range h.Edges {
		if h.Edges[i] != ref.Edges[i] {
			return fmt.Errorf("edge %d is %d, want %d", i, h.Edges[i], ref.Edges[i])
		}
	}
	return nil
}
