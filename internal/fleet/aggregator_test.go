package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vscsistats/internal/core"
)

// fakeClock gives the aggregator a deterministic wall clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestAggregator(stale time.Duration) (*Aggregator, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	agg := NewAggregator(AggregatorConfig{StaleAfter: stale})
	agg.now = clk.now
	return agg, clk
}

func batchFor(reg *core.Registry, host string, seq uint64) *Batch {
	return &Batch{Host: host, Seq: seq, SentUnixNano: int64(seq), Snapshots: reg.Snapshots()}
}

func TestAggregatorSeqNeverRollsBack(t *testing.T) {
	agg, _ := newTestAggregator(time.Minute)
	newer := makeRegistry(1, 1, 1, 400)
	older := makeRegistry(1, 1, 1, 100)

	if err := agg.Ingest(batchFor(newer, "esx-a", 5), "push"); err != nil {
		t.Fatal(err)
	}
	// A late retry of an older batch refreshes liveness but must not
	// replace the newer snapshots.
	if err := agg.Ingest(batchFor(older, "esx-a", 3), "push"); err != nil {
		t.Fatal(err)
	}
	hosts := agg.Hosts()
	if len(hosts) != 1 || hosts[0].Seq != 5 || hosts[0].Batches != 2 {
		t.Fatalf("hosts after late retry: %+v", hosts)
	}
	if got, want := agg.ClusterSnapshot(false), newer.HostSnapshot(); !sameSnapshot(got, want) {
		t.Error("late retry rolled host state back to the older batch")
	}
	// Equal sequence is a refresh, not a rollback.
	if err := agg.Ingest(batchFor(older, "esx-a", 5), "push"); err != nil {
		t.Fatal(err)
	}
	if got, want := agg.ClusterSnapshot(false), older.HostSnapshot(); !sameSnapshot(got, want) {
		t.Error("equal-seq batch did not refresh the stored snapshots")
	}
}

func TestAggregatorStalenessWithInjectedClock(t *testing.T) {
	agg, clk := newTestAggregator(10 * time.Second)
	regA := makeRegistry(1, 1, 1, 200)
	regB := makeRegistry(2, 1, 1, 300)
	agg.Ingest(batchFor(regA, "esx-a", 1), "push")
	clk.advance(7 * time.Second)
	agg.Ingest(batchFor(regB, "esx-b", 1), "push")

	hosts := agg.Hosts()
	if hosts[0].Stale || hosts[1].Stale {
		t.Fatalf("nothing should be stale yet: %+v", hosts)
	}
	both := core.Aggregate("cluster", "*", append(regA.Snapshots(), regB.Snapshots()...)...)
	if !sameSnapshot(agg.ClusterSnapshot(false), both) {
		t.Fatal("fresh cluster view is not the sum of both hosts")
	}

	// 7+4 = 11s > 10s: esx-a ages out, esx-b (4s old) stays.
	clk.advance(4 * time.Second)
	hosts = agg.Hosts()
	if !hosts[0].Stale || hosts[1].Stale {
		t.Fatalf("expected only esx-a stale: %+v", hosts)
	}
	if st := agg.Stats(); st.Hosts != 2 || st.StaleHosts != 1 {
		t.Errorf("stats: %+v", st)
	}
	if !sameSnapshot(agg.ClusterSnapshot(false), regB.HostSnapshot()) {
		t.Error("stale host still contributes to the merged view")
	}
	if !sameSnapshot(agg.ClusterSnapshot(true), both) {
		t.Error("include_stale view lost the stale host")
	}

	// A fresh batch revives the host.
	agg.Ingest(batchFor(regA, "esx-a", 2), "push")
	if hosts = agg.Hosts(); hosts[0].Stale {
		t.Errorf("host still stale after a fresh batch: %+v", hosts[0])
	}
}

func TestAggregatorVMSnapshotsMergeAcrossHosts(t *testing.T) {
	agg, _ := newTestAggregator(time.Minute)
	// Two hosts run disks of the same VMs (vmb0, vmb1): the per-VM view
	// must merge across hosts, exactly like one registry holding them all.
	regA := makeRegistry(1, 2, 2, 200)
	regB := makeRegistry(1, 2, 2, 350)
	agg.Ingest(batchFor(regA, "esx-a", 1), "push")
	agg.Ingest(batchFor(regB, "esx-b", 1), "push")

	got := agg.VMSnapshots(false)
	if len(got) != 2 {
		t.Fatalf("per-VM views: %d, want 2", len(got))
	}
	all := append(regA.Snapshots(), regB.Snapshots()...)
	for _, vs := range got {
		var mine []*core.Snapshot
		for _, s := range all {
			if s.VM == vs.VM {
				mine = append(mine, s)
			}
		}
		want := core.Aggregate(vs.VM, "*", mine...)
		if !sameSnapshot(vs, want) {
			t.Errorf("per-VM merge for %s not bin-exact", vs.VM)
		}
	}
}

func TestAggregatorHTTPSurface(t *testing.T) {
	agg, clk := newTestAggregator(10 * time.Second)
	reg := makeRegistry(1, 2, 1, 250)
	srv := httptest.NewServer(agg)
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Before any host reports, the cluster snapshot is a 409, not a panic
	// or an empty object.
	resp, _ := get("/fleet/snapshot")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("snapshot with no hosts: %d, want 409", resp.StatusCode)
	}

	// Push a frame the way an agent would.
	frame, err := EncodeBatchBytes(batchFor(reg, "esx-a", 1))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.Post(srv.URL+"/fleet/push", ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("push: %d", presp.StatusCode)
	}

	resp, body := get("/fleet/hosts")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("hosts: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var hosts []HostStatus
	if err := json.Unmarshal(body, &hosts); err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 1 || hosts[0].Host != "esx-a" || hosts[0].Source != "push" || hosts[0].Stale {
		t.Fatalf("hosts body: %+v", hosts)
	}

	resp, body = get("/fleet/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	var snap core.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if want := reg.HostSnapshot(); !sameSnapshot(&snap, want) {
		t.Error("served cluster snapshot not bin-exact")
	}

	// Per-VM views and the single-VM filter.
	resp, body = get("/fleet/snapshot?view=vms")
	var vms []core.Snapshot
	if err := json.Unmarshal(body, &vms); err != nil {
		t.Fatal(err)
	}
	if len(vms) != 2 {
		t.Fatalf("view=vms returned %d VMs, want 2", len(vms))
	}
	resp, body = get("/fleet/snapshot?vm=" + vms[0].VM)
	var one core.Snapshot
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if !sameSnapshot(&one, &vms[0]) {
		t.Error("?vm= filter diverged from view=vms")
	}
	if resp, _ = get("/fleet/snapshot?vm=no-such-vm"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown vm: %d, want 404", resp.StatusCode)
	}

	// Staleness over HTTP: age the host out, 409 again, then
	// include_stale=1 brings it back.
	clk.advance(11 * time.Second)
	if resp, _ = get("/fleet/snapshot"); resp.StatusCode != http.StatusConflict {
		t.Errorf("all-stale snapshot: %d, want 409", resp.StatusCode)
	}
	resp, body = get("/fleet/snapshot?include_stale=1")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("include_stale snapshot: %d", resp.StatusCode)
	}

	// Route and method errors.
	if resp, _ = get("/fleet/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: %d", resp.StatusCode)
	}
	presp, err = http.Post(srv.URL+"/fleet/hosts", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed || presp.Header.Get("Allow") != http.MethodGet {
		t.Errorf("POST hosts: %d Allow=%q", presp.StatusCode, presp.Header.Get("Allow"))
	}
	gresp, err := http.Get(srv.URL + "/fleet/push")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusMethodNotAllowed || gresp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET push: %d Allow=%q", gresp.StatusCode, gresp.Header.Get("Allow"))
	}

	// Garbage pushes are 400s with the rejected counter bumped, and they
	// never disturb the stored state.
	before := agg.Stats()
	presp, err = http.Post(srv.URL+"/fleet/push", ContentType, strings.NewReader("not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage push: %d, want 400", presp.StatusCode)
	}
	bad := batchFor(reg, "", 2) // valid frame, invalid batch (no host)
	frame, _ = EncodeBatchBytes(bad)
	presp, err = http.Post(srv.URL+"/fleet/push", ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid batch push: %d, want 400", presp.StatusCode)
	}
	after := agg.Stats()
	if after.Rejected != before.Rejected+2 {
		t.Errorf("rejected counter: %d -> %d, want +2", before.Rejected, after.Rejected)
	}
	if after.Hosts != before.Hosts {
		t.Errorf("rejected pushes changed the host set: %d -> %d", before.Hosts, after.Hosts)
	}
}

func TestAggregatorForget(t *testing.T) {
	agg, _ := newTestAggregator(time.Minute)
	reg := makeRegistry(1, 1, 1, 50)
	agg.Ingest(batchFor(reg, "esx-a", 1), "push")
	agg.Watch("esx-a", "http://127.0.0.1:1/")
	agg.Forget("esx-a")
	if len(agg.Hosts()) != 0 {
		t.Error("Forget left the host behind")
	}
	if errs := agg.PullAll(); len(errs) != 0 {
		t.Errorf("Forget left the pull registration behind: %v", errs)
	}
}
