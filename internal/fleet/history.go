package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
)

// History answers "what did the fleet's I/O look like between from and to"
// from the retained segment log — the paper's histograms-over-time views
// at fleet scope. The log is replayed per host up to each boundary:
//
//	baseline = the host's state as of its newest frame sent at or before from
//	end      = the host's state as of its newest frame sent at or before to
//
// and the window is end.Sub(baseline) per virtual disk — exactly the
// interval recorder's subtraction, applied to the durable chain instead of
// a live collector. A disk absent from the baseline (the VM appeared
// inside the window) contributes its full accumulated state; a host with
// no frame inside (from, to] contributes nothing, which equals a zero
// window because the chains are cumulative. The per-disk windows then
// merge bin-exactly into cluster and per-VM views, like every other
// aggregator read.
//
// Caveats inherited from the log, not invented here: retention and
// compaction discard old frames, so a from earlier than the oldest
// retained baseline silently widens the window to "since the oldest frame
// we still have"; and a host whose counters reset inside the window (agent
// reinstalled, VM recreated under the same name) subtracts across the
// reset like any cumulative-counter system would.
//
// History scans disk on every call — it is a reporting query, deliberately
// off the ingest and scrape fast paths, and it never touches shard locks.
func (g *Aggregator) History(from, to time.Time) (*HistoryResult, error) {
	if g.log == nil {
		return nil, errors.New("fleet: history requires a segment log (no data dir configured)")
	}
	var res *HistoryResult
	var err error
	pprof.Do(context.Background(), pprof.Labels("stage", "history"), func(context.Context) {
		start := time.Now()
		res, err = g.history(from, to)
		g.cfg.Obs.ObserveSince(fleetobs.StageHistory, start, fleetobs.Event{Shard: -1})
	})
	return res, err
}

func (g *Aggregator) history(from, to time.Time) (*HistoryResult, error) {
	fromNs, toNs := from.UnixNano(), to.UnixNano()
	hosts := make(map[string]*historyHost)
	var frames int64
	g.log.scan(func(_ int, b *Batch) {
		frames++
		if b.SentUnixNano > toNs {
			// Past the window's end: nothing after this frame on the
			// host's chain can matter (deltas building on it would also
			// be past the end, and fulls carry their own state).
			return
		}
		if b.Validate() != nil {
			return // a frame from another binary generation's layout
		}
		h := hosts[b.Host]
		if h == nil {
			h = &historyHost{}
			hosts[b.Host] = h
		}
		if b.Delta {
			if !h.has || b.Seq <= h.seq || b.BaseSeq != h.seq {
				return // same strict rules as live ingest: exact base only
			}
			snaps, err := applyDeltaSnaps(h.cur, b.Snapshots)
			if err != nil {
				return
			}
			h.cur = snaps
		} else {
			if h.has && b.Seq < h.seq {
				return // stale duplicate (compaction-interrupt leftovers)
			}
			h.cur = b.Snapshots
		}
		h.seq, h.has = b.Seq, true
		if b.SentUnixNano <= fromNs {
			h.base = h.cur
		} else {
			h.inWindow = true
		}
		h.end = h.cur
	})

	var windows []*core.Snapshot
	contributing := 0
	for _, h := range hosts {
		if !h.inWindow || h.end == nil {
			continue
		}
		contributing++
		base := make(map[diskKey]*core.Snapshot, len(h.base))
		for _, s := range h.base {
			base[diskKey{s.VM, s.Disk}] = s
		}
		for _, s := range h.end {
			windows = append(windows, s.Sub(base[diskKey{s.VM, s.Disk}]))
		}
	}
	res := &HistoryResult{FromUnixNano: fromNs, ToUnixNano: toNs, Hosts: contributing, Frames: frames}
	res.Cluster, res.VMs = mergeSnaps(windows)
	return res, nil
}

// historyHost is one host's replay state during a History scan.
type historyHost struct {
	seq      uint64
	has      bool // any frame applied yet
	inWindow bool // a state change landed inside (from, to]
	cur      []*core.Snapshot
	base     []*core.Snapshot // state as of the newest frame sent <= from
	end      []*core.Snapshot // state as of the newest frame sent <= to
}

// HistoryResult is a windowed merge over the segment log, served by
// GET /fleet/history.
type HistoryResult struct {
	// FromUnixNano and ToUnixNano echo the resolved window bounds.
	FromUnixNano int64 `json:"from_unix_nano"`
	ToUnixNano   int64 `json:"to_unix_nano"`
	// Hosts counts the hosts whose chains changed inside the window;
	// Frames counts every log frame the scan visited.
	Hosts  int   `json:"hosts"`
	Frames int64 `json:"frames"`
	// Cluster is the fleet-wide windowed merge, VMs the per-VM windowed
	// merges sorted by name; both nil when nothing changed in the window.
	// The HTTP layer trims whichever the query did not ask for.
	Cluster *core.Snapshot   `json:"cluster,omitempty"`
	VMs     []*core.Snapshot `json:"vms,omitempty"`
}

// serveHistory handles GET /fleet/history?from=&to=&vm=&view=.
func (g *Aggregator) serveHistory(w http.ResponseWriter, r *http.Request) {
	if g.log == nil {
		fleetError(w, http.StatusNotFound, "history requires a segment log (start the aggregator with a data dir)")
		return
	}
	q := r.URL.Query()
	from, err := parseHistoryTime(q.Get("from"), time.Unix(0, 0))
	if err != nil {
		fleetError(w, http.StatusBadRequest, "bad from: "+err.Error())
		return
	}
	to, err := parseHistoryTime(q.Get("to"), g.now())
	if err != nil {
		fleetError(w, http.StatusBadRequest, "bad to: "+err.Error())
		return
	}
	if to.Before(from) {
		fleetError(w, http.StatusBadRequest, "window ends before it starts")
		return
	}
	res, err := g.History(from, to)
	if err != nil {
		fleetError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if vm := q.Get("vm"); vm != "" {
		for _, s := range res.VMs {
			if s.VM == vm {
				res.VMs = []*core.Snapshot{s}
				res.Cluster = nil
				writeFleetJSON(w, res)
				return
			}
		}
		fleetError(w, http.StatusNotFound, "no data for vm in window")
		return
	}
	if q.Get("view") == "vms" {
		res.Cluster = nil
		writeFleetJSON(w, res)
		return
	}
	res.VMs = nil
	writeFleetJSON(w, res)
}

// parseHistoryTime accepts RFC3339 ("2026-08-08T12:00:00Z") or an integer
// unix timestamp — values above 1e15 are nanoseconds, anything else
// seconds (1e15 ns is January 1970, so no real clock is ambiguous).
func parseHistoryTime(s string, def time.Time) (time.Time, error) {
	if s == "" {
		return def, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("want RFC3339 or unix seconds/nanos, got %q", s)
	}
	if v > 1e15 {
		return time.Unix(0, v), nil
	}
	return time.Unix(v, 0), nil
}
