package fleet

import (
	"errors"
	"fmt"
)

// ResyncCause classifies why an aggregator refused a delta batch and
// demanded a full-state resync. The cause rides the 409 response body
// (resync_cause) and is counted per cause in AggregatorStats, so a
// resync storm is attributable: an aggregator restart shows up as
// unknown-host, a lossy agent queue as seq-gap, a disk-set change the
// delta path missed as unknown-disk, and bin-layout version skew as
// layout-mismatch.
type ResyncCause string

const (
	// ResyncSeqGap: the delta's base sequence is not the sequence the
	// aggregator holds — pushes were lost or reordered past the ack.
	ResyncSeqGap ResyncCause = "seq-gap"
	// ResyncUnknownHost: the aggregator has no state for the host at all
	// (typically it restarted without a durable log).
	ResyncUnknownHost ResyncCause = "unknown-host"
	// ResyncUnknownDisk: the delta names a disk the stored base state
	// does not hold — the sender built against state we lost.
	ResyncUnknownDisk ResyncCause = "unknown-disk"
	// ResyncLayoutMismatch: the delta's histograms do not carry the
	// canonical bin layout — version skew between sender and receiver.
	ResyncLayoutMismatch ResyncCause = "layout-mismatch"
	// ResyncBootChanged: the delta's boot incarnation differs from the
	// stored one — the sender restarted (its sequence space started over)
	// and must re-establish the chain with full state.
	ResyncBootChanged ResyncCause = "boot-changed"
)

// resyncCauses fixes the counter order; index with causeIndex.
var resyncCauses = [...]ResyncCause{
	ResyncSeqGap, ResyncUnknownHost, ResyncUnknownDisk, ResyncLayoutMismatch,
	ResyncBootChanged,
}

const numResyncCauses = len(resyncCauses)

func causeIndex(c ResyncCause) int {
	for i, rc := range resyncCauses {
		if rc == c {
			return i
		}
	}
	return -1
}

// ResyncError is the typed form of ErrResyncRequired: errors.Is(err,
// ErrResyncRequired) still matches (so every pre-existing caller keeps
// working), and errors.As(err, *ResyncError) exposes the cause.
type ResyncError struct {
	Cause ResyncCause
	msg   string
}

func (e *ResyncError) Error() string { return e.msg }

// Unwrap makes every ResyncError an ErrResyncRequired.
func (e *ResyncError) Unwrap() error { return ErrResyncRequired }

// resyncErr builds a ResyncError whose message starts with the
// ErrResyncRequired text, preserving the historical error strings.
func resyncErr(cause ResyncCause, format string, args ...any) error {
	return &ResyncError{
		Cause: cause,
		msg:   fmt.Sprintf("%s: %s", ErrResyncRequired.Error(), fmt.Sprintf(format, args...)),
	}
}

// resyncCauseOf extracts the cause from any error chain containing a
// ResyncError ("" otherwise).
func resyncCauseOf(err error) ResyncCause {
	var re *ResyncError
	if errors.As(err, &re) {
		return re.Cause
	}
	return ""
}
