package fleet

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// BenchmarkFleetMerge measures the cluster merge over a populated
// aggregator: 8 hosts × 4 VMs × 2 disks = 64 snapshots folded into one.
func BenchmarkFleetMerge(b *testing.B) {
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	for h := 0; h < 8; h++ {
		reg := makeRegistry(h, 4, 2, 200)
		if err := agg.Ingest(&Batch{
			Host: fmt.Sprintf("esx-%02d", h), Seq: 1, Snapshots: reg.Snapshots(),
		}, "push"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := agg.ClusterSnapshot(false); s == nil {
			b.Fatal("nil cluster snapshot")
		}
	}
}

// BenchmarkFleetEncodeDecode measures one wire round trip of a realistic
// batch (4 VMs × 2 disks).
func BenchmarkFleetEncodeDecode(b *testing.B) {
	reg := makeRegistry(1, 4, 2, 200)
	batch := &Batch{Host: "esx-01", Seq: 1, Snapshots: reg.Snapshots()}
	data, err := EncodeBatchBytes(batch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := EncodeBatchBytes(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeBatch(bytes.NewReader(out)); err != nil {
			b.Fatal(err)
		}
	}
}
