package fleet

import (
	"bytes"
	"fmt"
	"testing"
	"time"
	"vscsistats/internal/core"
	"vscsistats/internal/fleetobs"
)

// BenchmarkFleetMerge measures the cluster merge over a populated
// aggregator: 8 hosts × 4 VMs × 2 disks = 64 snapshots folded into one.
func BenchmarkFleetMerge(b *testing.B) {
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	for h := 0; h < 8; h++ {
		reg := makeRegistry(h, 4, 2, 200)
		if err := agg.Ingest(&Batch{
			Host: fmt.Sprintf("esx-%02d", h), Seq: 1, Snapshots: reg.Snapshots(),
		}, "push"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := agg.ClusterSnapshot(false); s == nil {
			b.Fatal("nil cluster snapshot")
		}
	}
}

// BenchmarkFleetEncodeDecode measures one wire round trip of a realistic
// batch (4 VMs × 2 disks).
func BenchmarkFleetEncodeDecode(b *testing.B) {
	reg := makeRegistry(1, 4, 2, 200)
	batch := &Batch{Host: "esx-01", Seq: 1, Snapshots: reg.Snapshots()}
	data, err := EncodeBatchBytes(batch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := EncodeBatchBytes(batch)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeBatch(bytes.NewReader(out)); err != nil {
			b.Fatal(err)
		}
	}
}

// fleetHostNames returns n deterministic host names.
func fleetHostNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("esx-%04d", i)
	}
	return names
}

// benchPopulate fills agg with one small batch per host (1 VM × 1 disk —
// a fleet-scale benchmark wants many hosts, not big hosts) and returns a
// second snapshot set per seed class to rotate through on re-ingest.
func benchPopulate(b *testing.B, agg *Aggregator, hosts []string) [][]*core.Snapshot {
	b.Helper()
	const variants = 8
	rotations := make([][]*core.Snapshot, variants)
	for v := 0; v < variants; v++ {
		rotations[v] = makeRegistry(v, 1, 1, 50).Snapshots()
	}
	for i, h := range hosts {
		if err := agg.Ingest(&Batch{
			Host: h, Seq: 1, Snapshots: rotations[i%variants],
		}, "push"); err != nil {
			b.Fatal(err)
		}
	}
	return rotations
}

// benchIngestScrape is the steady-state op a busy aggregator lives in: one
// host's batch arrives, then a reader scrapes the cluster merge. On the
// monolithic configuration every scrape re-folds every host; sharded, a
// scrape re-folds only the one dirty shard and combines the other shards'
// memoized merges — the gap this benchmark exists to show.
func benchIngestScrape(b *testing.B, cfg AggregatorConfig, numHosts int) {
	agg := NewAggregator(cfg)
	hosts := fleetHostNames(numHosts)
	rotations := benchPopulate(b, agg, hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := i % numHosts
		if err := agg.Ingest(&Batch{
			Host: hosts[h], Seq: uint64(2 + i/numHosts), Snapshots: rotations[(h+i)%len(rotations)],
		}, "push"); err != nil {
			b.Fatal(err)
		}
		if s := agg.ClusterSnapshot(false); s == nil {
			b.Fatal("nil cluster snapshot")
		}
	}
}

// Mono reproduces the pre-shard design: one shard, one mutex, no merge
// cache — the committed "before" numbers for BENCH_fleet.json.
func BenchmarkFleetIngestScrapeMono256(b *testing.B) {
	benchIngestScrape(b, AggregatorConfig{StaleAfter: time.Hour, Shards: 1, DisableMergeCache: true}, 256)
}
func BenchmarkFleetIngestScrapeMono1024(b *testing.B) {
	benchIngestScrape(b, AggregatorConfig{StaleAfter: time.Hour, Shards: 1, DisableMergeCache: true}, 1024)
}
func BenchmarkFleetIngestScrapeSharded256(b *testing.B) {
	benchIngestScrape(b, AggregatorConfig{StaleAfter: time.Hour}, 256)
}
func BenchmarkFleetIngestScrapeSharded1024(b *testing.B) {
	benchIngestScrape(b, AggregatorConfig{StaleAfter: time.Hour}, 1024)
}

// BenchmarkFleetIngest1024 is the pure ingest fence: batch validation plus
// shard insertion at 1024 hosts, no scraping. CI fails the build if this
// regresses past the committed baseline.
func BenchmarkFleetIngest1024(b *testing.B) {
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	hosts := fleetHostNames(1024)
	rotations := benchPopulate(b, agg, hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := i % len(hosts)
		if err := agg.Ingest(&Batch{
			Host: hosts[h], Seq: uint64(2 + i/len(hosts)), Snapshots: rotations[(h+i)%len(rotations)],
		}, "push"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetIngest1024Traced is the same ingest loop with the
// pipeline tracker attached at its default 1-in-64 sampling — the cost of
// observability on the hot path. benchfastpath -check -fleet fails the
// build if this runs more than 5% over the untraced fence measured in
// the same session.
func BenchmarkFleetIngest1024Traced(b *testing.B) {
	agg := NewAggregator(AggregatorConfig{
		StaleAfter: time.Hour,
		Obs:        fleetobs.New(fleetobs.Config{}),
	})
	hosts := fleetHostNames(1024)
	rotations := benchPopulate(b, agg, hosts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := i % len(hosts)
		if err := agg.Ingest(&Batch{
			Host: hosts[h], Seq: uint64(2 + i/len(hosts)), Snapshots: rotations[(h+i)%len(rotations)],
		}, "push"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetReplay1024 measures a boot replay of a 1024-host segment
// log — the restart cost the log trades for zero agent resyncs. CI fences
// it alongside the ingest fence.
func BenchmarkFleetReplay1024(b *testing.B) {
	dir := b.TempDir()
	cfg := AggregatorConfig{StaleAfter: time.Hour, DataDir: dir}
	agg, _, err := OpenAggregator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hosts := fleetHostNames(1024)
	benchPopulate(b, agg, hosts)
	if err := agg.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, st, err := OpenAggregator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st.Hosts != len(hosts) {
			b.Fatalf("replay recovered %d hosts, want %d", st.Hosts, len(hosts))
		}
		g.Close()
	}
}

// BenchmarkFleetHistoryQuery measures one whole-fleet /fleet/history
// window over a populated log: 64 hosts × 4-frame chains scanned from
// disk, windowed and merged per query.
func BenchmarkFleetHistoryQuery(b *testing.B) {
	dir := b.TempDir()
	cfg := AggregatorConfig{StaleAfter: time.Hour, DataDir: dir}
	agg, _, err := OpenAggregator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer agg.Close()
	const variants = 8
	rotations := make([][]*core.Snapshot, variants)
	for v := 0; v < variants; v++ {
		rotations[v] = makeRegistry(v, 1, 1, 50).Snapshots()
	}
	for i, h := range fleetHostNames(64) {
		for seq := uint64(1); seq <= 4; seq++ {
			if err := agg.Ingest(&Batch{
				Host: h, Seq: seq, SentUnixNano: time.Now().UnixNano(),
				Snapshots: rotations[(i+int(seq))%variants],
			}, "push"); err != nil {
				b.Fatal(err)
			}
		}
	}
	from, to := time.Unix(0, 0), time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := agg.History(from, to)
		if err != nil {
			b.Fatal(err)
		}
		if res.Hosts != 64 {
			b.Fatalf("history saw %d hosts, want 64", res.Hosts)
		}
	}
}

// benchWireBytes measures the steady-state wire cost of one push interval
// on a slowly-changing host: 8 disks of which one saw traffic. Full sends
// everything every time; Delta sends one disk's interval delta and omits
// the seven unchanged ones. The wire_bytes/op metric is what BENCH_fleet
// records as the ≥3× delta win.
func benchWireBytes(b *testing.B, delta bool) {
	reg := makeRegistry(3, 4, 4, 2000) // 16 disks with dense cumulative histograms
	base := reg.Snapshots()
	feed(reg.List()[0], 71, 60) // one active disk this interval
	cur := reg.Snapshots()

	batch := &Batch{Host: "esx-01", Seq: 2, Snapshots: cur}
	if delta {
		deltas, ok := subAgainst(cur, base)
		if !ok {
			b.Fatal("disk sets diverged")
		}
		batch = &Batch{Host: "esx-01", Seq: 2, BaseSeq: 1, Delta: true, Snapshots: deltas}
	}
	var wireBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := EncodeBatchBytes(batch)
		if err != nil {
			b.Fatal(err)
		}
		wireBytes = len(out)
	}
	b.ReportMetric(float64(wireBytes), "wire_bytes/op")
}

func BenchmarkFleetWireBytesFull(b *testing.B)  { benchWireBytes(b, false) }
func BenchmarkFleetWireBytesDelta(b *testing.B) { benchWireBytes(b, true) }

// benchMergeScrape measures a scrape-only aggregator (no ingest between
// reads) at 64 hosts: Uncached re-folds all hosts every scrape, Cached
// serves every shard from its memoized merge.
func benchMergeScrape(b *testing.B, disableCache bool) {
	agg := NewAggregator(AggregatorConfig{StaleAfter: time.Hour, DisableMergeCache: disableCache})
	benchPopulate(b, agg, fleetHostNames(64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := agg.ClusterSnapshot(false); s == nil {
			b.Fatal("nil cluster snapshot")
		}
	}
}

func BenchmarkFleetMergeUncached(b *testing.B) { benchMergeScrape(b, true) }
func BenchmarkFleetMergeCached(b *testing.B)   { benchMergeScrape(b, false) }
