package fleet

import (
	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// feed drives n synthetic commands through col — a deterministic stream
// derived from seed, mixing reads and writes, seeks, queue depths and an
// occasional error, so every histogram family gets samples.
func feed(col *core.Collector, seed, n int) {
	lba := uint64(seed) * 1000
	t := simclock.Time(seed) * simclock.Millisecond
	for i := 0; i < n; i++ {
		var cmd scsi.Command
		if (i+seed)%3 == 0 {
			cmd = scsi.Write(lba, 16)
		} else {
			cmd = scsi.Read(lba, 8)
		}
		r := &vscsi.Request{
			Cmd:                cmd,
			IssueTime:          t,
			CompleteTime:       t + simclock.Time(200+i%900)*simclock.Microsecond,
			OutstandingAtIssue: i % 8,
			Status:             scsi.StatusGood,
		}
		if (i+seed)%17 == 0 {
			r.Status = scsi.StatusCheckCondition
		}
		col.OnIssue(r)
		col.OnComplete(r)
		lba += uint64((i*37+seed*11)%4096) - 1024
		t += simclock.Time(50+i%13) * simclock.Microsecond
	}
}

// makeRegistry builds a registry of populated collectors: one VM per v in
// [0, vms), one disk per d in [0, disks), n commands each.
func makeRegistry(hostSeed, vms, disks, n int) *core.Registry {
	reg := core.NewRegistry()
	for v := 0; v < vms; v++ {
		for d := 0; d < disks; d++ {
			col := core.NewCollector(vmName(hostSeed, v), diskName(d))
			col.Enable()
			feed(col, hostSeed*100+v*10+d, n)
			reg.Register(col)
		}
	}
	return reg
}

func vmName(hostSeed, v int) string {
	return "vm" + string(rune('a'+hostSeed)) + string(rune('0'+v))
}

func diskName(d int) string {
	return "scsi0:" + string(rune('0'+d))
}

// sameSnapshot reports a bin-exact match across all six metrics, all three
// classes, and every counter (VM/Disk names excluded — rollups rename).
func sameSnapshot(a, b *core.Snapshot) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Commands != b.Commands || a.NumReads != b.NumReads || a.NumWrites != b.NumWrites ||
		a.ReadBytes != b.ReadBytes || a.WriteBytes != b.WriteBytes || a.Errors != b.Errors {
		return false
	}
	for _, m := range core.Metrics() {
		classes := []core.Class{core.All, core.Reads, core.Writes}
		if m == core.MetricSeekWindowed {
			classes = classes[:1]
		}
		for _, cl := range classes {
			ha, hb := a.Histogram(m, cl), b.Histogram(m, cl)
			if ha.Total != hb.Total || ha.Sum != hb.Sum || ha.Min != hb.Min || ha.Max != hb.Max {
				return false
			}
			if len(ha.Counts) != len(hb.Counts) {
				return false
			}
			for i := range ha.Counts {
				if ha.Counts[i] != hb.Counts[i] {
					return false
				}
			}
		}
	}
	return true
}
