package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"vscsistats/internal/core"
)

func testBatch(t *testing.T, hostSeed int) *Batch {
	t.Helper()
	reg := makeRegistry(hostSeed, 2, 2, 500)
	return &Batch{
		Host:         "esx-" + string(rune('0'+hostSeed)),
		Seq:          uint64(hostSeed) + 1,
		SentUnixNano: 1234567890,
		Snapshots:    reg.Snapshots(),
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := testBatch(t, 1)
	data, err := EncodeBatchBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if out.Host != in.Host || out.Seq != in.Seq || out.SentUnixNano != in.SentUnixNano {
		t.Errorf("header round-trip: got %q/%d/%d", out.Host, out.Seq, out.SentUnixNano)
	}
	if len(out.Snapshots) != len(in.Snapshots) {
		t.Fatalf("snapshot count %d, want %d", len(out.Snapshots), len(in.Snapshots))
	}
	for i := range in.Snapshots {
		if out.Snapshots[i].VM != in.Snapshots[i].VM || out.Snapshots[i].Disk != in.Snapshots[i].Disk {
			t.Errorf("snapshot %d identity lost: %s/%s", i, out.Snapshots[i].VM, out.Snapshots[i].Disk)
		}
		if !sameSnapshot(out.Snapshots[i], in.Snapshots[i]) {
			t.Errorf("snapshot %d not bin-exact after round trip", i)
		}
	}
	if err := out.Validate(); err != nil {
		t.Errorf("decoded batch fails validation: %v", err)
	}
}

func TestWireStreamsConcatenatedFrames(t *testing.T) {
	var buf bytes.Buffer
	want := []*Batch{testBatch(t, 1), testBatch(t, 2), testBatch(t, 3)}
	for _, b := range want {
		if err := EncodeBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; ; i++ {
		b, err := DecodeBatch(&buf)
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("stream ended after %d frames, want %d", i, len(want))
			}
			return
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if b.Host != want[i].Host {
			t.Errorf("frame %d host %q, want %q", i, b.Host, want[i].Host)
		}
	}
}

func TestWireRejectsCorruptFrames(t *testing.T) {
	valid, err := EncodeBatchBytes(testBatch(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data := mutate(append([]byte(nil), valid...))
		_, err := DecodeBatch(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
			return
		}
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: error %v does not wrap ErrBadFrame", name, err)
		}
	}
	corrupt("bad magic", func(d []byte) []byte { d[0] = 'X'; return d })
	corrupt("version zero", func(d []byte) []byte { d[4] = 0; return d })
	corrupt("unknown flags", func(d []byte) []byte { d[5] |= 0x80; return d })
	corrupt("oversize header len", func(d []byte) []byte {
		binary.BigEndian.PutUint32(d[8:12], maxHeaderLen+1)
		return d
	})
	corrupt("oversize payload len", func(d []byte) []byte {
		binary.BigEndian.PutUint32(d[12:16], maxPayloadLen+1)
		return d
	})
	corrupt("truncated head", func(d []byte) []byte { return d[:10] })
	corrupt("truncated header", func(d []byte) []byte { return d[:18] })
	corrupt("truncated payload", func(d []byte) []byte { return d[:len(d)-5] })
	corrupt("payload garbage", func(d []byte) []byte {
		for i := len(d) - 20; i < len(d); i++ {
			d[i] ^= 0xff
		}
		return d
	})
	// Reserved bytes, by contrast, must be ignored (forward compat).
	tolerated := append([]byte(nil), valid...)
	tolerated[6], tolerated[7] = 0xde, 0xad
	if _, err := DecodeBatch(bytes.NewReader(tolerated)); err != nil {
		t.Errorf("reserved bytes rejected: %v", err)
	}
	// A higher version with known flags must still decode.
	future := append([]byte(nil), valid...)
	future[4] = 9
	if _, err := DecodeBatch(bytes.NewReader(future)); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestValidateRejectsUnsafeBatches(t *testing.T) {
	good := testBatch(t, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := (&Batch{Snapshots: good.Snapshots}).Validate(); err == nil {
		t.Error("batch without host accepted")
	}
	withNil := &Batch{Host: "h", Snapshots: []*core.Snapshot{nil}}
	if err := withNil.Validate(); err == nil {
		t.Error("null snapshot accepted")
	}
	// A snapshot with a foreign bin layout must be refused — merging it
	// would panic inside histogram.Add.
	mangled := testBatch(t, 2)
	h := mangled.Snapshots[0].IOLength[core.All]
	h.Edges = append([]int64(nil), h.Edges...)
	h.Edges[0]++
	if err := mangled.Validate(); err == nil {
		t.Error("mangled bin layout accepted")
	}
	// Counts shorter than edges+1 would index out of range in Add.
	short := testBatch(t, 3)
	hs := short.Snapshots[0].Latency[core.Reads]
	hs.Counts = hs.Counts[:len(hs.Counts)-1]
	if err := short.Validate(); err == nil {
		t.Error("short counts accepted")
	}
	// A missing histogram (nil pointer) must be refused, not dereferenced.
	missing := testBatch(t, 4)
	missing.Snapshots[0].SeekWindowed = nil
	if err := missing.Validate(); err == nil {
		t.Error("missing histogram accepted")
	}
}
