package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"

	"vscsistats/internal/core"
)

func testBatch(t *testing.T, hostSeed int) *Batch {
	t.Helper()
	reg := makeRegistry(hostSeed, 2, 2, 500)
	return &Batch{
		Host:         "esx-" + string(rune('0'+hostSeed)),
		Seq:          uint64(hostSeed) + 1,
		SentUnixNano: 1234567890,
		Snapshots:    reg.Snapshots(),
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := testBatch(t, 1)
	data, err := EncodeBatchBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if out.Host != in.Host || out.Seq != in.Seq || out.SentUnixNano != in.SentUnixNano {
		t.Errorf("header round-trip: got %q/%d/%d", out.Host, out.Seq, out.SentUnixNano)
	}
	if len(out.Snapshots) != len(in.Snapshots) {
		t.Fatalf("snapshot count %d, want %d", len(out.Snapshots), len(in.Snapshots))
	}
	for i := range in.Snapshots {
		if out.Snapshots[i].VM != in.Snapshots[i].VM || out.Snapshots[i].Disk != in.Snapshots[i].Disk {
			t.Errorf("snapshot %d identity lost: %s/%s", i, out.Snapshots[i].VM, out.Snapshots[i].Disk)
		}
		if !sameSnapshot(out.Snapshots[i], in.Snapshots[i]) {
			t.Errorf("snapshot %d not bin-exact after round trip", i)
		}
	}
	if err := out.Validate(); err != nil {
		t.Errorf("decoded batch fails validation: %v", err)
	}
}

func TestWireStreamsConcatenatedFrames(t *testing.T) {
	var buf bytes.Buffer
	want := []*Batch{testBatch(t, 1), testBatch(t, 2), testBatch(t, 3)}
	for _, b := range want {
		if err := EncodeBatch(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; ; i++ {
		b, err := DecodeBatch(&buf)
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("stream ended after %d frames, want %d", i, len(want))
			}
			return
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if b.Host != want[i].Host {
			t.Errorf("frame %d host %q, want %q", i, b.Host, want[i].Host)
		}
	}
}

func TestWireRejectsCorruptFrames(t *testing.T) {
	valid, err := EncodeBatchBytes(testBatch(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data := mutate(append([]byte(nil), valid...))
		_, err := DecodeBatch(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
			return
		}
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: error %v does not wrap ErrBadFrame", name, err)
		}
	}
	corrupt("bad magic", func(d []byte) []byte { d[0] = 'X'; return d })
	corrupt("version zero", func(d []byte) []byte { d[4] = 0; return d })
	corrupt("unknown flags", func(d []byte) []byte { d[5] |= 0x80; return d })
	corrupt("oversize header len", func(d []byte) []byte {
		binary.BigEndian.PutUint32(d[8:12], maxHeaderLen+1)
		return d
	})
	corrupt("oversize payload len", func(d []byte) []byte {
		binary.BigEndian.PutUint32(d[12:16], maxPayloadLen+1)
		return d
	})
	corrupt("truncated head", func(d []byte) []byte { return d[:10] })
	corrupt("truncated header", func(d []byte) []byte { return d[:18] })
	corrupt("truncated payload", func(d []byte) []byte { return d[:len(d)-5] })
	corrupt("payload garbage", func(d []byte) []byte {
		for i := len(d) - 20; i < len(d); i++ {
			d[i] ^= 0xff
		}
		return d
	})
	// Reserved bytes, by contrast, must be ignored (forward compat).
	tolerated := append([]byte(nil), valid...)
	tolerated[6], tolerated[7] = 0xde, 0xad
	if _, err := DecodeBatch(bytes.NewReader(tolerated)); err != nil {
		t.Errorf("reserved bytes rejected: %v", err)
	}
	// A higher version with known flags must still decode.
	future := append([]byte(nil), valid...)
	future[4] = 9
	if _, err := DecodeBatch(bytes.NewReader(future)); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

// TestWireTruncationIsTyped cuts a valid frame at every byte: each cut
// must decode to an error matching BOTH ErrBadFrame (it is malformed) and
// ErrTruncatedFrame (the stream ended inside the frame) — the typed
// distinction segment-log replay uses to truncate a crash-torn tail
// instead of refusing the whole log. The zero-byte cut is the one clean
// case: io.EOF, a stream that ended between frames.
func TestWireTruncationIsTyped(t *testing.T) {
	frame, err := EncodeBatchBytes(testBatch(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatch(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	for cut := 1; cut < len(frame); cut++ {
		_, err := DecodeBatch(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("cut at byte %d decoded successfully", cut)
		}
		if !errors.Is(err, ErrTruncatedFrame) || !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut at byte %d: %v, want ErrTruncatedFrame wrapping ErrBadFrame", cut, err)
		}
	}
	// Corruption, by contrast, must NOT read as truncation — replay would
	// otherwise silently discard a damaged chain's tail.
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := DecodeBatch(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) || errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("bad magic: %v, want plain ErrBadFrame", err)
	}
	garbled := append([]byte(nil), frame...)
	for i := len(garbled) - 20; i < len(garbled); i++ {
		garbled[i] ^= 0xff
	}
	if _, err := DecodeBatch(bytes.NewReader(garbled)); err == nil || errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("garbled payload: %v, want a non-truncation error", err)
	}
}

// TestWireHostileLengthAllocation pins the progressive-allocation fix: a
// frame head declaring the maximum 256 MiB payload backed by a handful of
// real bytes must fail as a truncated frame after allocating no more than
// a couple of read chunks — not the full declared size. (The old code
// made one payload-sized allocation straight from the header, handing any
// peer a memory-pressure attack for 16 bytes of input.)
func TestWireHostileLengthAllocation(t *testing.T) {
	frame, err := EncodeBatchBytes(testBatch(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	hostile := append([]byte(nil), frame...)
	binary.BigEndian.PutUint32(hostile[12:16], maxPayloadLen)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err = DecodeBatch(bytes.NewReader(hostile))
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("hostile payload length: %v, want ErrTruncatedFrame", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Errorf("decoding a 16-byte lie allocated %d bytes, want chunked growth well under 16 MiB", grew)
	}

	// The header length is chunk-allocated the same way.
	hostile = append([]byte(nil), frame[:16]...)
	binary.BigEndian.PutUint32(hostile[8:12], maxHeaderLen)
	if _, err := DecodeBatch(bytes.NewReader(hostile)); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("hostile header length: %v, want ErrTruncatedFrame", err)
	}
}

func TestValidateRejectsUnsafeBatches(t *testing.T) {
	good := testBatch(t, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := (&Batch{Snapshots: good.Snapshots}).Validate(); err == nil {
		t.Error("batch without host accepted")
	}
	withNil := &Batch{Host: "h", Snapshots: []*core.Snapshot{nil}}
	if err := withNil.Validate(); err == nil {
		t.Error("null snapshot accepted")
	}
	// A snapshot with a foreign bin layout must be refused — merging it
	// would panic inside histogram.Add.
	mangled := testBatch(t, 2)
	h := mangled.Snapshots[0].IOLength[core.All]
	h.Edges = append([]int64(nil), h.Edges...)
	h.Edges[0]++
	if err := mangled.Validate(); err == nil {
		t.Error("mangled bin layout accepted")
	}
	// Counts shorter than edges+1 would index out of range in Add.
	short := testBatch(t, 3)
	hs := short.Snapshots[0].Latency[core.Reads]
	hs.Counts = hs.Counts[:len(hs.Counts)-1]
	if err := short.Validate(); err == nil {
		t.Error("short counts accepted")
	}
	// A missing histogram (nil pointer) must be refused, not dereferenced.
	missing := testBatch(t, 4)
	missing.Snapshots[0].SeekWindowed = nil
	if err := missing.Validate(); err == nil {
		t.Error("missing histogram accepted")
	}
}
