package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vscsistats/internal/core"
)

// timedChain builds one host's chain of three captures sent at t0 < t1 < t2
// (a full, then two deltas) and returns the batches plus the cumulative
// state after each capture.
func timedChain(hostSeed int, t0, t1, t2 time.Time) (batches []*Batch, states [3][]*core.Snapshot) {
	host := "esx-" + string(rune('a'+hostSeed))
	reg := makeRegistry(hostSeed, 2, 2, 100)
	states[0] = reg.Snapshots()
	batches = append(batches, &Batch{Host: host, Seq: 1, SentUnixNano: t0.UnixNano(), Snapshots: states[0]})
	for i, at := range []time.Time{t1, t2} {
		for j, col := range reg.List() {
			feed(col, hostSeed*100+i*10+j, 70)
		}
		states[i+1] = reg.Snapshots()
		batches = append(batches, &Batch{
			Host: host, Seq: uint64(i + 2), SentUnixNano: at.UnixNano(),
			Delta: true, BaseSeq: uint64(i + 1), Snapshots: subSnaps(states[i+1], states[i]),
		})
	}
	return batches, states
}

// TestHistoryWindows pins the window algebra on a single host's chain:
// a window covering the whole chain returns the full state, an interior
// window returns exactly the per-disk interval subtraction between its
// boundary states, and a window after the last frame returns nothing.
func TestHistoryWindows(t *testing.T) {
	dir := t.TempDir()
	g, _, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	t1, t2 := t0.Add(time.Minute), t0.Add(2*time.Minute)
	batches, states := timedChain(0, t0, t1, t2)
	ingestAll(t, g, batches)

	check := func(label string, from, to time.Time, want []*core.Snapshot) {
		t.Helper()
		res, err := g.History(from, to)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if want == nil {
			if res.Hosts != 0 || res.Cluster != nil {
				t.Errorf("%s: expected an empty window, got %d hosts", label, res.Hosts)
			}
			return
		}
		if res.Hosts != 1 {
			t.Fatalf("%s: %d hosts in window, want 1", label, res.Hosts)
		}
		if !sameSnapshot(res.Cluster, core.Aggregate("cluster", "*", want...)) {
			t.Errorf("%s: windowed cluster merge is not the expected subtraction", label)
		}
	}

	epoch := time.Unix(0, 0)
	check("whole chain", epoch, t2, states[2])
	check("up to first capture", epoch, t0, states[0])
	check("first interval", t0, t1, subSnaps(states[1], states[0]))
	check("second interval", t1, t2, subSnaps(states[2], states[1]))
	check("both intervals", t0, t2, subSnaps(states[2], states[0]))
	check("after the last frame", t2, t2.Add(time.Hour), nil)

	// Boundaries are (from, to]: a window ending exactly on a frame's sent
	// time includes it, one starting there does not.
	check("exact end boundary", t0, t1, subSnaps(states[1], states[0]))
	if _, err := g.History(time.Time{}, time.Time{}); err != nil {
		t.Errorf("degenerate window errored: %v", err)
	}
}

// TestHistorySpansRestart is the acceptance check for the history half of
// the tentpole: frames written before a restart and frames written after
// it answer one continuous window query from the reopened aggregator.
func TestHistorySpansRestart(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	t1, t2 := t0.Add(time.Minute), t0.Add(2*time.Minute)
	batches, states := timedChain(0, t0, t1, t2)

	g, _, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, g, batches[:2]) // t0 full + t1 delta, then the restart
	g.Close()

	g2, _, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	ingestAll(t, g2, batches[2:]) // t2 delta lands after the restart

	res, err := g2.History(t0, t2)
	if err != nil {
		t.Fatal(err)
	}
	want := core.Aggregate("cluster", "*", subSnaps(states[2], states[0])...)
	if res.Hosts != 1 || !sameSnapshot(res.Cluster, want) {
		t.Error("window spanning the restart is not the continuous subtraction")
	}
}

// TestHistoryHTTP drives GET /fleet/history end to end: defaults, integer
// and RFC3339 bounds, the vm filter, the vms view, and every documented
// error status.
func TestHistoryHTTP(t *testing.T) {
	dir := t.TempDir()
	g, _, err := OpenAggregator(logAggConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv := httptest.NewServer(g)
	defer srv.Close()

	// Anchored in the recent past so the endpoint's default to=now window
	// covers the chain; truncated to seconds so RFC3339 bounds round-trip.
	t0 := time.Now().Add(-time.Hour).Truncate(time.Second)
	t1, t2 := t0.Add(time.Minute), t0.Add(2*time.Minute)
	for h := 0; h < 2; h++ {
		batches, _ := timedChain(h, t0, t1, t2)
		ingestAll(t, g, batches)
	}

	get := func(query string, wantCode int) *HistoryResult {
		t.Helper()
		resp, err := http.Get(srv.URL + "/fleet/history" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d", query, resp.StatusCode, wantCode)
		}
		if wantCode != http.StatusOK {
			return nil
		}
		var res HistoryResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("GET %s: %v", query, err)
		}
		return &res
	}

	if res := get("", http.StatusOK); res.Hosts != 2 || res.Cluster == nil || res.VMs != nil {
		t.Errorf("default window: hosts=%d cluster=%v vms=%v", res.Hosts, res.Cluster != nil, res.VMs)
	}
	nano := fmt.Sprintf("?from=%d&to=%d", t0.UnixNano(), t2.UnixNano())
	if res := get(nano, http.StatusOK); res.Hosts != 2 {
		t.Errorf("nanosecond bounds: hosts=%d, want 2", res.Hosts)
	}
	rfc := "?from=" + t0.Format(time.RFC3339) + "&to=" + t2.Format(time.RFC3339)
	if res := get(rfc, http.StatusOK); res.Hosts != 2 {
		t.Errorf("RFC3339 bounds: hosts=%d, want 2", res.Hosts)
	}
	vm := vmName(0, 0)
	if res := get("?vm="+vm, http.StatusOK); len(res.VMs) != 1 || res.VMs[0].VM != vm || res.Cluster != nil {
		t.Errorf("vm filter returned %+v", res.VMs)
	}
	if res := get("?view=vms", http.StatusOK); res.Cluster != nil || len(res.VMs) == 0 {
		t.Errorf("vms view: cluster=%v vms=%d", res.Cluster != nil, len(res.VMs))
	}
	get("?vm=no-such-vm", http.StatusNotFound)
	get("?from=yesterday-ish", http.StatusBadRequest)
	get(fmt.Sprintf("?from=%d&to=%d", t2.Unix(), t0.Unix()), http.StatusBadRequest)

	// Method and availability guards.
	resp, err := http.Post(srv.URL+"/fleet/history", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /fleet/history: status %d, want 405", resp.StatusCode)
	}
	mem := httptest.NewServer(NewAggregator(AggregatorConfig{StaleAfter: time.Hour}))
	defer mem.Close()
	resp, err = http.Get(mem.URL + "/fleet/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("memory-only /fleet/history: status %d, want 404", resp.StatusCode)
	}
}

// TestHistoryOnMemoryAggregator pins the API-level refusal too.
func TestHistoryOnMemoryAggregator(t *testing.T) {
	g := NewAggregator(AggregatorConfig{StaleAfter: time.Hour})
	if _, err := g.History(time.Unix(0, 0), time.Now()); err == nil {
		t.Fatal("History on a memory-only aggregator did not error")
	}
}
