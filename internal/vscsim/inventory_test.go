package vscsim

import (
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestInventoryDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Hosts: 32, VMsPerHost: 8, DisksPerVM: 2}
	a, b := NewInventory(cfg), NewInventory(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different inventories")
	}
	if got := len(a.Hosts); got != 32 {
		t.Fatalf("hosts = %d, want 32", got)
	}
	if got := a.VMCount(); got != 256 {
		t.Fatalf("VMs = %d, want 256", got)
	}
	if got := a.DiskCount(); got != 512 {
		t.Fatalf("disks = %d, want 512", got)
	}
	names := map[string]bool{}
	for _, h := range a.Hosts {
		for _, vm := range h.VMs {
			if names[vm.Name] {
				t.Fatalf("duplicate VM name %q", vm.Name)
			}
			names[vm.Name] = true
			if vm.Intensity <= 0 || vm.Intensity > paretoClamp {
				t.Fatalf("VM %q intensity %v out of range", vm.Name, vm.Intensity)
			}
		}
	}
}

func TestInventorySeedsDiffer(t *testing.T) {
	a := NewInventory(Config{Seed: 1, Hosts: 16, VMsPerHost: 8})
	b := NewInventory(Config{Seed: 2, Hosts: 16, VMsPerHost: 8})
	if reflect.DeepEqual(a.PersonalityMix(), b.PersonalityMix()) {
		// The mixes could collide by chance at tiny sizes, but at 128 VMs
		// across six personalities a full collision means the seed is not
		// reaching the draws.
		t.Fatalf("different seeds produced identical personality mixes: %v", a.PersonalityMix())
	}
}

func TestInventoryHeavyTail(t *testing.T) {
	inv := NewInventory(Config{Seed: 7, Hosts: 64, VMsPerHost: 16})
	var in []float64
	for _, h := range inv.Hosts {
		for _, vm := range h.VMs {
			in = append(in, vm.Intensity)
		}
	}
	sort.Float64s(in)
	median := in[len(in)/2]
	max := in[len(in)-1]
	if max < 8*median {
		t.Fatalf("intensity not heavy-tailed: median %v, max %v", median, max)
	}
	if mix := inv.PersonalityMix(); len(mix) < 5 {
		t.Fatalf("only %d personalities drawn at 1024 VMs: %v", len(mix), mix)
	}
}

func TestReferenceCatalogSeparatesPersonalities(t *testing.T) {
	cat, err := ReferenceCatalog(99)
	if err != nil {
		t.Fatal(err)
	}
	// Probe each personality with a different seed and intensity than the
	// references used; the catalog must still rank it first.
	inv := NewInventory(Config{Seed: 123, Hosts: 1, VMsPerHost: 1})
	for _, fp := range inv.Personalities {
		probe := inv
		probe.Hosts[0].VMs[0].Personality = fp.Name
		probe.Hosts[0].VMs[0].Intensity = 4
		sim, err := New(probe, SimConfig{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunVirtual(10 * time.Minute); err != nil {
			t.Fatal(err)
		}
		snaps := sim.hosts[0].host.Registry().Snapshots()
		matches, err := cat.Classify(snaps[0])
		if err != nil {
			t.Fatalf("classify %s: %v", fp.Name, err)
		}
		if matches[0].Name != fp.Name {
			t.Errorf("probe %q classified as %q (distance %.3f; own distance in ranking: %v)",
				fp.Name, matches[0].Name, matches[0].Score, matches)
		}
	}
}
