package vscsim

import (
	"testing"
	"time"

	"vscsistats/internal/trace"
	"vscsistats/internal/workload"
)

func tracePersonality(name string) workload.FleetPersonality {
	recs := trace.Synthesize(13, 20000)
	return workload.FleetPersonality{
		Name:   name,
		Weight: 1,
		Trace:  trace.Filter(recs, trace.OnlyBlockIO),
	}
}

// A trace-backed personality flows through the fleet path like a synthetic
// one: its VMs replay the captured stream into their collectors, and the
// whole thing stays deterministic.
func TestTraceBackedPersonality(t *testing.T) {
	persona := tracePersonality("replayed")
	run := func() (int64, int64) {
		inv := NewInventory(Config{
			Seed: 5, Hosts: 2, VMsPerHost: 2,
			Personalities: []workload.FleetPersonality{persona},
		})
		sim, err := New(inv, SimConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunVirtual(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		cluster := localCluster(sim)
		if cluster == nil || cluster.Commands == 0 {
			t.Fatal("trace-backed VMs issued no commands into their collectors")
		}
		if cluster.NumReads == 0 || cluster.NumWrites == 0 {
			t.Fatalf("replayed mix lost an op class: %d reads, %d writes",
				cluster.NumReads, cluster.NumWrites)
		}
		st := sim.Stats()
		return st.Ops, cluster.Commands
	}
	opsA, cmdsA := run()
	opsB, cmdsB := run()
	if opsA != opsB || cmdsA != cmdsB {
		t.Fatalf("trace-backed sim is not deterministic: %d/%d vs %d/%d", opsA, cmdsA, opsB, cmdsB)
	}
}

// The reference catalog can include trace-backed personalities, so a
// replayed public trace becomes a classification target like any synthetic
// class.
func TestReferenceCatalogWithTracePersonality(t *testing.T) {
	persona := tracePersonality("replayed")
	oltp, _ := workload.FleetPersonalityByName("oltp")
	cat, err := ReferenceCatalog(1, persona, oltp)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh run of the same trace personality should classify to itself.
	inv := NewInventory(Config{
		Seed: 9, Hosts: 1, VMsPerHost: 1,
		Personalities: []workload.FleetPersonality{persona},
	})
	sim, err := New(inv, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunVirtual(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m, err := cat.Best(localCluster(sim))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "replayed" {
		t.Errorf("classified as %q (distance %.3f), want the trace personality", m.Name, m.Score)
	}
}
