package vscsim

import (
	"fmt"
	"time"

	"vscsistats/internal/analysis"
	"vscsistats/internal/workload"
)

// Reference-run shape: each personality drives one disk at a fixed
// intensity for a fixed virtual duration. The classification metrics
// (§3.7: I/O length, seek distance, outstanding I/Os, read fraction) are
// rate-independent enough that one reference intensity covers the whole
// heavy-tailed probe range; ten virtual minutes gives even the near-idle
// devbox personality a few hundred samples.
const (
	refIntensity = 10
	refDuration  = 10 * time.Minute
)

// ReferenceCatalog builds an analysis catalog with one reference snapshot
// per personality in the population, each produced by a short
// deterministic single-VM simulation seeded from seed. An aggregator
// given this catalog can classify its merged per-VM views back to the
// personalities that generated them — the paper's §7 automatic
// categorization at fleet scope.
func ReferenceCatalog(seed int64, personalities ...workload.FleetPersonality) (*analysis.Catalog, error) {
	if len(personalities) == 0 {
		personalities = workload.FleetPersonalities()
	}
	cat, err := analysis.NewCatalog()
	if err != nil {
		return nil, err
	}
	for i, fp := range personalities {
		inv := NewInventory(Config{
			Seed:          deriveSeed(seed, uint64(i)),
			Hosts:         1,
			VMsPerHost:    1,
			DisksPerVM:    1,
			Intensity:     refIntensity,
			Personalities: []workload.FleetPersonality{fp},
		})
		// A single-personality population pins the draw; the intensity
		// draw still varies, so pin it too.
		inv.Hosts[0].VMs[0].Intensity = refIntensity
		sim, err := New(inv, SimConfig{Workers: 1})
		if err != nil {
			return nil, fmt.Errorf("vscsim: reference %q: %w", fp.Name, err)
		}
		if err := sim.RunVirtual(refDuration); err != nil {
			return nil, err
		}
		snaps := sim.hosts[0].host.Registry().Snapshots()
		if len(snaps) != 1 {
			return nil, fmt.Errorf("vscsim: reference %q produced %d snapshots", fp.Name, len(snaps))
		}
		if err := cat.Add(fp.Name, snaps[0]); err != nil {
			return nil, fmt.Errorf("vscsim: reference %q: %w", fp.Name, err)
		}
	}
	return cat, nil
}
