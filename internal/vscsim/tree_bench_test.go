package vscsim

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleet"
)

// The federation benchmarks compare two ways of feeding a global tier
// from a 10240-host datacenter, holding the leaf churn identical:
//
//   - tree: 16 region aggregators each own 640 hosts; changed leaves
//     ingest into their region in-memory and each region re-exports its
//     rolled-up shard state upstream over HTTP. The global tier sees 16
//     synthetic hosts, and each re-export delta carries only the shards
//     that changed.
//   - flat: every changed leaf pushes its own delta frame straight to
//     the global tier over HTTP — the naive per-host fan-in.
//
// Both report global_wire_bytes/op: the bytes crossing the global tier's
// ingress per benchmark op (one churn interval of treeChangedPerOp
// leaves). The tree number must beat flat by >= 3x — that delta is the
// point of re-export, and cmd/benchfastpath records both entries in
// BENCH_fleet.json so the ratio is auditable.
const (
	treeHosts        = 10240
	treeRegions      = 16
	treeRegionShards = 8
	treeChangedPerOp = 1024
	treeTemplates    = 8
)

// treeWorld is the shared fixture: 10240 host names from a real
// inventory, and a small simulated world whose per-host registries
// provide base state and a base->cur interval delta. Leaf hosts cycle
// through the template states, so the fixture costs one 8-host
// simulation rather than 10240.
type treeWorld struct {
	hosts  []string
	fulls  [][]*core.Snapshot // template base state, the setup full push
	deltas [][]*core.Snapshot // template interval delta, the per-op churn
}

func newTreeWorld(b *testing.B) *treeWorld {
	b.Helper()
	inv := NewInventory(Config{Seed: 37, Hosts: treeHosts, VMsPerHost: 1})
	w := &treeWorld{hosts: make([]string, len(inv.Hosts))}
	for i, h := range inv.Hosts {
		w.hosts[i] = h.Name
	}

	tmpl := NewInventory(Config{Seed: 41, Hosts: treeTemplates, VMsPerHost: 1, Intensity: 4})
	sim, err := New(tmpl, SimConfig{})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.RunVirtual(20 * time.Second); err != nil {
		b.Fatal(err)
	}
	base := make([][]*core.Snapshot, treeTemplates)
	for i, h := range sim.hosts {
		base[i] = h.host.Registry().Snapshots()
	}
	if err := sim.RunVirtual(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	w.fulls, w.deltas = base, make([][]*core.Snapshot, treeTemplates)
	for i, h := range sim.hosts {
		cur := h.host.Registry().Snapshots()
		if len(cur) != len(base[i]) {
			b.Fatalf("template %d disk set changed: %d vs %d", i, len(cur), len(base[i]))
		}
		earlier := make(map[string]*core.Snapshot, len(base[i]))
		for _, s := range base[i] {
			earlier[s.VM+"\x00"+s.Disk] = s
		}
		for _, s := range cur {
			e, ok := earlier[s.VM+"\x00"+s.Disk]
			if !ok {
				b.Fatalf("template %d grew disk %s/%s mid-run", i, s.VM, s.Disk)
			}
			w.deltas[i] = append(w.deltas[i], s.Sub(e))
		}
	}
	return w
}

// leafBatch builds host h's wire batch at seq: the template full at seq 1,
// the template interval delta after.
func (w *treeWorld) leafBatch(h int, seq uint64) *fleet.Batch {
	t := h % treeTemplates
	if seq == 1 {
		return &fleet.Batch{Host: w.hosts[h], Seq: 1, Snapshots: w.fulls[t]}
	}
	return &fleet.Batch{
		Host: w.hosts[h], Seq: seq, BaseSeq: seq - 1, Delta: true,
		Snapshots: w.deltas[t],
	}
}

func newGlobalTier(b *testing.B) (*fleet.Aggregator, *httptest.Server) {
	b.Helper()
	g := fleet.NewAggregator(fleet.AggregatorConfig{StaleAfter: time.Hour})
	srv := httptest.NewServer(g)
	b.Cleanup(srv.Close)
	return g, srv
}

// BenchmarkFleetTreeIngest10k is the 3-level federation path: 10240 leaf
// hosts ingest into 16 region aggregators in one process, and each op
// churns treeChangedPerOp rotating leaves (spread across every region)
// then re-exports all 16 regions upstream. ns/op is the full churn
// interval — region ingest, rollup rendering off the merge caches, and
// the HTTP re-export into the global tier; global_wire_bytes/op is the
// global ingress cost. Fenced in CI via cmd/benchfastpath -check -fleet.
func BenchmarkFleetTreeIngest10k(b *testing.B) {
	w := newTreeWorld(b)
	global, srv := newGlobalTier(b)

	regions := make([]*fleet.Aggregator, treeRegions)
	rexes := make([]*fleet.ReExporter, treeRegions)
	for r := range regions {
		regions[r] = fleet.NewAggregator(fleet.AggregatorConfig{
			StaleAfter: time.Hour, Shards: treeRegionShards,
		})
		rexes[r] = fleet.NewReExporter(regions[r], fleet.ReExporterConfig{
			Region:   fmt.Sprintf("region-%02d", r),
			Upstream: srv.URL + "/fleet/push",
		})
	}
	seqs := make([]uint64, treeHosts)
	for h := range w.hosts {
		seqs[h] = 1
		if err := regions[h%treeRegions].Ingest(w.leafBatch(h, 1), "push"); err != nil {
			b.Fatal(err)
		}
	}
	// First export is full state; the timed loop measures the delta
	// steady state every later interval runs in.
	for _, rex := range rexes {
		if err := rex.ReExportNow(); err != nil {
			b.Fatal(err)
		}
	}
	sent := func() int64 {
		var n int64
		for _, rex := range rexes {
			n += rex.Stats().SentBytes
		}
		return n
	}
	wireStart, cursor := sent(), 0

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < treeChangedPerOp; j++ {
			h := cursor % treeHosts
			cursor++
			seqs[h]++
			if err := regions[h%treeRegions].Ingest(w.leafBatch(h, seqs[h]), "push"); err != nil {
				b.Fatal(err)
			}
		}
		for _, rex := range rexes {
			if err := rex.ReExportNow(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()

	st := global.Stats()
	if st.Hosts != treeRegions {
		b.Fatalf("global tier sees %d hosts, want %d regions", st.Hosts, treeRegions)
	}
	for _, rex := range rexes {
		if rs := rex.Stats(); rs.Errors > 0 || rs.Resyncs > 0 {
			b.Fatalf("re-export %s: %d errors, %d resyncs (last: %s)",
				rs.Region, rs.Errors, rs.Resyncs, rs.LastError)
		}
	}
	b.ReportMetric(float64(sent()-wireStart)/float64(b.N), "global_wire_bytes/op")
}

// BenchmarkFleetFlatIngest10k is the naive fan-in control for the tree
// benchmark: the identical 10240-host world and per-op churn, but every
// changed leaf POSTs its own delta frame straight to the global tier.
// global_wire_bytes/op here divided by the tree number is the re-export
// win claimed in DESIGN.md.
func BenchmarkFleetFlatIngest10k(b *testing.B) {
	w := newTreeWorld(b)
	global, srv := newGlobalTier(b)
	client := srv.Client()

	seqs := make([]uint64, treeHosts)
	for h := range w.hosts {
		seqs[h] = 1
		if err := global.Ingest(w.leafBatch(h, 1), "push"); err != nil {
			b.Fatal(err)
		}
	}
	var wire int64
	cursor := 0

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < treeChangedPerOp; j++ {
			h := cursor % treeHosts
			cursor++
			seqs[h]++
			frame, err := fleet.EncodeBatchBytes(w.leafBatch(h, seqs[h]))
			if err != nil {
				b.Fatal(err)
			}
			resp, err := client.Post(srv.URL+"/fleet/push", fleet.ContentType, bytes.NewReader(frame))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("push %s: %s", w.hosts[h], resp.Status)
			}
			wire += int64(len(frame))
		}
	}
	b.StopTimer()

	st := global.Stats()
	if st.Hosts != treeHosts {
		b.Fatalf("global tier sees %d hosts, want %d", st.Hosts, treeHosts)
	}
	b.ReportMetric(float64(wire)/float64(b.N), "global_wire_bytes/op")
}
