package vscsim

import (
	"net/http/httptest"
	"testing"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/fleet"
)

func newTestAggregator(t testing.TB) (*fleet.Aggregator, *httptest.Server) {
	t.Helper()
	agg := fleet.NewAggregator(fleet.AggregatorConfig{StaleAfter: time.Minute})
	srv := httptest.NewServer(agg)
	t.Cleanup(srv.Close)
	return agg, srv
}

// localCluster merges every simulated collector directly — the ground
// truth the aggregator's view must equal bin-exactly.
func localCluster(s *Sim) *core.Snapshot {
	var parts []*core.Snapshot
	for _, h := range s.hosts {
		parts = append(parts, h.host.Registry().Snapshots()...)
	}
	return core.Aggregate("cluster", "*", parts...)
}

// TestSimDeterministicAggregatorState is the satellite determinism check:
// the same seed advanced the same virtual duration lands bit-identical
// state in a fresh aggregator, every time, regardless of worker count.
func TestSimDeterministicAggregatorState(t *testing.T) {
	run := func(workers int) (*core.Snapshot, int) {
		agg, srv := newTestAggregator(t)
		inv := NewInventory(Config{Seed: 11, Hosts: 8, VMsPerHost: 4, Intensity: 4})
		sim, err := New(inv, SimConfig{Push: srv.URL + "/fleet/push", Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunVirtual(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := sim.PushAll(); err != nil {
			t.Fatal(err)
		}
		cluster := agg.ClusterSnapshot(false)
		if !cluster.StateEquals(localCluster(sim)) {
			t.Fatal("aggregator cluster view diverged from the simulated ground truth")
		}
		return cluster, len(agg.Hosts())
	}
	a, hostsA := run(1)
	b, hostsB := run(4)
	if hostsA != 8 || hostsB != 8 {
		t.Fatalf("aggregator knows %d/%d hosts, want 8", hostsA, hostsB)
	}
	if !a.StateEquals(b) {
		t.Fatal("same seed and virtual duration produced different aggregator state")
	}
	if a.Commands == 0 {
		t.Fatal("no commands simulated")
	}
}

func TestSimDifferentSeedsDiverge(t *testing.T) {
	state := func(seed int64) *core.Snapshot {
		inv := NewInventory(Config{Seed: seed, Hosts: 4, VMsPerHost: 4, Intensity: 4})
		sim, err := New(inv, SimConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunVirtual(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		return localCluster(sim)
	}
	if state(1).StateEquals(state(2)) {
		t.Fatal("different seeds produced identical datacenter state")
	}
}

// TestSimSmoke is the CI smoke: a few hundred wall-paced hosts pushing
// through the real agent path into a real sharded aggregator, then a
// deterministic settle push and a bin-exact merge check.
func TestSimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-paced smoke skipped in -short")
	}
	agg, srv := newTestAggregator(t)
	inv := NewInventory(Config{Seed: 5, Hosts: 256, VMsPerHost: 4})
	sim, err := New(inv, SimConfig{
		Push:         srv.URL + "/fleet/push",
		PushInterval: 500 * time.Millisecond,
		Speed:        10,
		Tick:         50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	time.Sleep(1500 * time.Millisecond)
	sim.Stop()
	if err := sim.PushAll(); err != nil {
		t.Fatal(err)
	}
	hosts := agg.Hosts()
	if len(hosts) != 256 {
		t.Fatalf("aggregator knows %d hosts, want 256", len(hosts))
	}
	for _, h := range hosts {
		if h.Stale {
			t.Fatalf("host %s went stale during the smoke window", h.Host)
		}
	}
	if !agg.ClusterSnapshot(false).StateEquals(localCluster(sim)) {
		t.Fatal("aggregator cluster view diverged from the simulated ground truth")
	}
	st := sim.Stats()
	if st.Hosts != 256 || st.VMs != 1024 || st.Disks != 1024 {
		t.Fatalf("stats sized wrong: %+v", st)
	}
	if st.Virtual <= 0 || st.Wall <= 0 || st.Speed <= 0 {
		t.Fatalf("pacing stats missing: virtual=%v wall=%v speed=%v", st.Virtual, st.Wall, st.Speed)
	}
	if st.Agent.Pushes < int64(len(hosts)) {
		t.Fatalf("only %d pushes across %d hosts", st.Agent.Pushes, len(hosts))
	}
}

func TestSimRunVirtualRejectedWhileRunning(t *testing.T) {
	inv := NewInventory(Config{Seed: 3, Hosts: 2, VMsPerHost: 2})
	sim, err := New(inv, SimConfig{Tick: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	if err := sim.RunVirtual(time.Second); err != ErrRunning {
		t.Fatalf("RunVirtual while running = %v, want ErrRunning", err)
	}
}

// BenchmarkSimPushAll256 measures sim ingest throughput: 256 hosts' full
// state pushed through the wire codec into a sharded aggregator.
func BenchmarkSimPushAll256(b *testing.B) {
	agg, srv := newTestAggregator(b)
	inv := NewInventory(Config{Seed: 9, Hosts: 256, VMsPerHost: 4})
	sim, err := New(inv, SimConfig{Push: srv.URL + "/fleet/push"})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.RunVirtual(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.PushAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := agg.Stats()
	if st.Hosts != 256 {
		b.Fatalf("aggregator knows %d hosts", st.Hosts)
	}
	b.ReportMetric(float64(256*b.N)/b.Elapsed().Seconds(), "hostpush/s")
}
