package vscsim

import (
	"os"
	"testing"
	"time"
)

// TestSimDatacenterScale is the acceptance-scale run: 1000 wall-paced
// hosts × 8 VMs at Speed 100 through the real push path into a sharded
// aggregator. It is too heavy for every `go test` (and meaningless under
// -race's serialization), so it is gated behind VSCSIM_SCALE=1; CI runs it
// as a dedicated step. The achieved multiplier depends on the machine, so
// it is logged rather than asserted — the hard checks are structural:
// every host lives, state merges bin-exactly, virtual time advanced.
func TestSimDatacenterScale(t *testing.T) {
	if os.Getenv("VSCSIM_SCALE") == "" {
		t.Skip("set VSCSIM_SCALE=1 to run the 1000-host scale test")
	}
	agg, srv := newTestAggregator(t)
	inv := NewInventory(Config{Seed: 21, Hosts: 1000, VMsPerHost: 8})
	sim, err := New(inv, SimConfig{
		Push:         srv.URL + "/fleet/push",
		PushInterval: 2 * time.Second,
		Speed:        100,
		Tick:         100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	time.Sleep(5 * time.Second)
	sim.Stop()
	if err := sim.PushAll(); err != nil {
		t.Fatal(err)
	}

	hosts := agg.Hosts()
	if len(hosts) != 1000 {
		t.Fatalf("aggregator knows %d hosts, want 1000", len(hosts))
	}
	stale := 0
	for _, h := range hosts {
		if h.Stale {
			stale++
		}
	}
	if stale > 0 {
		t.Fatalf("%d of %d hosts went stale during the scale window", stale, len(hosts))
	}
	if !agg.ClusterSnapshot(false).StateEquals(localCluster(sim)) {
		t.Fatal("aggregator cluster view diverged from the simulated ground truth")
	}
	st := sim.Stats()
	if st.Hosts != 1000 || st.VMs != 8000 {
		t.Fatalf("world sized wrong: %+v", st)
	}
	if st.Virtual <= 0 || st.Ops == 0 {
		t.Fatalf("nothing simulated: virtual=%v ops=%d", st.Virtual, st.Ops)
	}
	t.Logf("scale: %d hosts, %d VMs, virtual %v in wall %v (%.1fx of %gx target), %d ops, %d pushes (%d errors)",
		st.Hosts, st.VMs, st.Virtual.Round(time.Second), st.Wall.Round(time.Millisecond),
		st.Speed, 100.0, st.Ops, st.Agent.Pushes, st.Agent.Errors)
}
