package vscsim

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/fleet"
	"vscsistats/internal/hypervisor"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/telemetry"
	"vscsistats/internal/workload"
)

// diskSectors is the provisioned size of every simulated virtual disk.
// 1<<18 sectors = 128 MiB: big enough for realistic seek-distance
// histograms, small enough that a 16-disk host fits its local datastore.
const diskSectors = 1 << 18

// SimConfig tunes how an inventory runs. Zero values take the documented
// defaults.
type SimConfig struct {
	// Push is the aggregator's push URL, e.g.
	// "http://127.0.0.1:9108/fleet/push". Empty builds a push-less world
	// (deterministic runs and tests that read collectors directly).
	Push string
	// PushInterval is each host agent's push period (default 2s).
	PushInterval time.Duration
	// Speed is the wall-pacing multiplier: virtual seconds advanced per
	// wall-clock second (default 1). At 100, one wall minute simulates
	// 100 minutes of datacenter I/O.
	Speed float64
	// Tick is the wall pacing quantum (default 200ms): how often workers
	// re-target their hosts' virtual clocks against the wall clock.
	Tick time.Duration
	// Workers is the number of goroutines hosts are multiplexed onto
	// (default GOMAXPROCS). Hosts are independent worlds, so workers scale
	// across cores without any cross-host locking.
	Workers int
	// DisableDeltas forces agents to push full cumulative state.
	DisableDeltas bool
	// Client overrides the HTTP client shared by every agent (default: a
	// pooled transport sized for the host count, so a thousand agents
	// reuse connections instead of churning one each).
	Client *http.Client
}

func (c SimConfig) withDefaults(hosts int) SimConfig {
	if c.PushInterval <= 0 {
		c.PushInterval = 2 * time.Second
	}
	if c.Speed <= 0 {
		c.Speed = 1
	}
	if c.Tick <= 0 {
		c.Tick = 200 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > hosts && hosts > 0 {
		c.Workers = hosts
	}
	if c.Client == nil {
		perHost := hosts/8 + 2
		if perHost > 128 {
			perHost = 128
		}
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        perHost * 2,
			MaxIdleConnsPerHost: perHost,
		}}
	}
	return c
}

// simHost is one simulated host: an engine, a hypervisor, its generators
// and its fleet agent. Exactly one goroutine advances a host at a time
// (its worker during Start/Stop, the caller's pool during RunVirtual), so
// the engine needs no locking; the published atomics are the read-side
// window Stats() uses while the world runs.
// simGen is what a host needs from its per-disk generators: the standard
// Generator surface plus the open-loop throttle counter, satisfied by both
// the synthetic Paced and the trace-backed TraceReplay.
type simGen interface {
	workload.Generator
	Throttled() int64
}

type simHost struct {
	spec  HostSpec
	eng   *simclock.Engine
	host  *hypervisor.Host
	gens  []simGen
	agent *fleet.Agent

	vnow  simclock.Time // owned by the advancing goroutine
	vbase simclock.Time // vnow when Start began, for wall targeting

	pubVirtual   atomic.Int64
	pubOps       atomic.Int64
	pubBytes     atomic.Int64
	pubErrors    atomic.Int64
	pubThrottled atomic.Int64
}

// advanceTo runs the host's world up to virtual time t and republishes its
// counters.
func (h *simHost) advanceTo(t simclock.Time) {
	if t <= h.vnow {
		return
	}
	h.eng.RunUntil(t)
	h.vnow = t
	var ops, bytes, errs, thr int64
	for _, g := range h.gens {
		st := g.Stats()
		ops += st.Ops
		bytes += st.Bytes
		errs += st.Errors
		thr += g.Throttled()
	}
	h.pubVirtual.Store(int64(h.vnow))
	h.pubOps.Store(ops)
	h.pubBytes.Store(bytes)
	h.pubErrors.Store(errs)
	h.pubThrottled.Store(thr)
}

// Sim multiplexes an inventory's hosts into one process.
type Sim struct {
	inv *Inventory
	cfg SimConfig

	hosts []*simHost
	vms   int
	disks int

	mu        sync.Mutex
	running   bool
	stop      chan struct{}
	done      sync.WaitGroup
	wallStart time.Time
	wallAccum time.Duration
}

// New builds every host world in the inventory: engine, hypervisor with a
// local-disk datastore, collectors enabled, one open-loop generator per
// disk (started at virtual zero), and — when cfg.Push is set — a fleet
// agent per host. Hosts are built in parallel across cfg.Workers.
func New(inv *Inventory, cfg SimConfig) (*Sim, error) {
	cfg = cfg.withDefaults(len(inv.Hosts))
	s := &Sim{inv: inv, cfg: cfg, hosts: make([]*simHost, len(inv.Hosts))}
	for _, h := range inv.Hosts {
		for _, vm := range h.VMs {
			s.vms++
			s.disks += vm.Disks
		}
	}
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(inv.Hosts); i += cfg.Workers {
				sh, err := buildHost(inv, inv.Hosts[i], cfg)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				s.hosts[i] = sh
			}
		}(w)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	return s, nil
}

func buildHost(inv *Inventory, spec HostSpec, cfg SimConfig) (*simHost, error) {
	eng := simclock.NewEngine()
	host := hypervisor.NewHost(eng)
	host.AddDatastore("ds0", storage.LocalDiskConfig(spec.Seed))
	sh := &simHost{spec: spec, eng: eng, host: host}
	for _, vmSpec := range spec.VMs {
		fp, ok := inv.personality(vmSpec.Personality)
		if !ok {
			return nil, fmt.Errorf("vscsim: VM %q has unknown personality %q", vmSpec.Name, vmSpec.Personality)
		}
		vm := host.CreateVM(vmSpec.Name)
		for d := 0; d < vmSpec.Disks; d++ {
			vd, err := vm.AddDisk(hypervisor.DiskSpec{
				Name:            fmt.Sprintf("scsi0:%d", d),
				Datastore:       "ds0",
				CapacitySectors: diskSectors,
			})
			if err != nil {
				return nil, fmt.Errorf("vscsim: %s: %w", vmSpec.Name, err)
			}
			vd.Collector.Enable()
			var gen simGen
			if len(fp.Trace) > 0 {
				gen = workload.NewTraceReplay(eng, vd.Disk, fp.TraceSpec(vmSpec.Intensity))
			} else {
				gen = workload.NewPaced(eng, vd.Disk,
					fp.PacedSpec(deriveSeed(vmSpec.Seed, uint64(d)), vmSpec.Intensity))
			}
			gen.Start()
			sh.gens = append(sh.gens, gen)
		}
	}
	if cfg.Push != "" {
		sh.agent = fleet.NewAgent(host.Registry(), fleet.AgentConfig{
			Host:          spec.Name,
			Endpoint:      cfg.Push,
			Interval:      cfg.PushInterval,
			DisableDeltas: cfg.DisableDeltas,
			Client:        cfg.Client,
		})
	}
	return sh, nil
}

// Inventory returns the inventory the sim was built from.
func (s *Sim) Inventory() *Inventory { return s.inv }

// Start begins wall-paced execution: cfg.Workers goroutines advance their
// hosts' virtual clocks toward wall-elapsed × Speed every Tick, and every
// host's agent starts pushing. Starting a running sim is a no-op.
func (s *Sim) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.stop = make(chan struct{})
	s.wallStart = time.Now()
	for _, h := range s.hosts {
		h.vbase = h.vnow
		if h.agent != nil {
			h.agent.Start()
		}
	}
	for w := 0; w < s.cfg.Workers; w++ {
		s.done.Add(1)
		go s.worker(w)
	}
}

// worker paces hosts[w::Workers] against the wall clock. The virtual
// target is recomputed from the wall each tick, so a tick that overruns
// (engine busier than the CPU budget) self-corrects on the next one
// instead of falling cumulatively behind. The stop check inside the sweep
// bounds Stop latency by one host's advance, not one full sweep — on an
// oversubscribed machine a sweep can take arbitrarily long, and Stop
// means stop, not "finish pacing every host first".
func (s *Sim) worker(w int) {
	defer s.done.Done()
	tick := time.NewTicker(s.cfg.Tick)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			elapsed := time.Since(s.wallStart)
			target := simclock.Time(float64(elapsed.Nanoseconds()) * s.cfg.Speed)
			for i := w; i < len(s.hosts); i += s.cfg.Workers {
				select {
				case <-s.stop:
					return
				default:
				}
				h := s.hosts[i]
				h.advanceTo(h.vbase + target)
			}
		}
	}
}

// Stop halts wall pacing and stops every agent (each delivers one final
// push). Stopping a stopped sim is a no-op.
func (s *Sim) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	close(s.stop)
	s.done.Wait()
	s.wallAccum += time.Since(s.wallStart)
	s.running = false
	s.mu.Unlock()
	// Signal every agent before draining any: each drain delivers a final
	// push, and agents still running while earlier ones drain would keep
	// capturing fresh batches — on a loaded machine the fleet's enqueue
	// rate can outrun the one-at-a-time drain rate indefinitely.
	for _, h := range s.hosts {
		if h.agent != nil {
			h.agent.BeginStop()
		}
	}
	s.eachHost(func(h *simHost) error {
		if h.agent != nil {
			h.agent.Stop()
		}
		return nil
	})
}

// ErrRunning rejects deterministic operations while wall-paced execution
// owns the host engines.
var ErrRunning = errors.New("vscsim: sim is running; Stop it first")

// RunVirtual advances every host by exactly d of virtual time with no wall
// pacing — the deterministic mode: the same inventory advanced by the same
// duration reaches bit-identical collector state, regardless of worker
// count, because hosts are independent worlds.
func (s *Sim) RunVirtual(d time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return ErrRunning
	}
	step := simclock.Duration(d)
	return s.eachHostLocked(func(h *simHost) error {
		h.advanceTo(h.vnow + step)
		return nil
	})
}

// PushAll synchronously pushes every host's current state to the
// aggregator — after RunVirtual, this lands the deterministic world state
// in the aggregator bin-exactly.
func (s *Sim) PushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return ErrRunning
	}
	return s.eachHostLocked(func(h *simHost) error {
		if h.agent == nil {
			return errors.New("vscsim: no push endpoint configured")
		}
		return h.agent.PushNow()
	})
}

// eachHost fans fn across hosts on cfg.Workers goroutines and returns the
// first error.
func (s *Sim) eachHost(fn func(*simHost) error) error {
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(s.hosts); i += s.cfg.Workers {
				if err := fn(s.hosts[i]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	err, _ := firstErr.Load().(error)
	return err
}

// eachHostLocked is eachHost for callers already holding s.mu.
func (s *Sim) eachHostLocked(fn func(*simHost) error) error {
	return s.eachHost(fn)
}

// SimStats is a point-in-time view of the running world.
type SimStats struct {
	// Hosts, VMs and Disks size the inventory.
	Hosts, VMs, Disks int
	// Virtual is the fleet-wide virtual horizon: the minimum virtual time
	// any host has reached. Wall is total wall time spent in Start/Stop
	// windows, and Speed their ratio — the achieved multiplier.
	Virtual time.Duration
	Wall    time.Duration
	Speed   float64
	// Ops, Bytes and Errors total completed guest commands across every
	// generator; Throttled counts arrivals skipped at outstanding-I/O
	// caps.
	Ops, Bytes, Errors, Throttled int64
	// Agent sums every host agent's push counters.
	Agent fleet.AgentStats
}

// Stats sums the published per-host counters; safe to call while the sim
// runs.
func (s *Sim) Stats() SimStats {
	st := SimStats{Hosts: len(s.hosts), VMs: s.vms, Disks: s.disks}
	minVirtual := int64(-1)
	for _, h := range s.hosts {
		v := h.pubVirtual.Load()
		if minVirtual < 0 || v < minVirtual {
			minVirtual = v
		}
		st.Ops += h.pubOps.Load()
		st.Bytes += h.pubBytes.Load()
		st.Errors += h.pubErrors.Load()
		st.Throttled += h.pubThrottled.Load()
		if h.agent != nil {
			a := h.agent.Stats()
			st.Agent.Pushes += a.Pushes
			st.Agent.DeltaPushes += a.DeltaPushes
			st.Agent.Errors += a.Errors
			st.Agent.Retries += a.Retries
			st.Agent.Dropped += a.Dropped
			st.Agent.Resyncs += a.Resyncs
			st.Agent.SentBytes += a.SentBytes
			st.Agent.QueueLen += a.QueueLen
			if a.LastError != "" {
				st.Agent.LastError = a.LastError
			}
		}
	}
	if minVirtual > 0 {
		st.Virtual = time.Duration(minVirtual)
	}
	st.Wall = s.wallAccum
	s.mu.Lock()
	if s.running {
		st.Wall += time.Since(s.wallStart)
	}
	s.mu.Unlock()
	if st.Wall > 0 {
		st.Speed = float64(st.Virtual) / float64(st.Wall)
	}
	return st
}

// SimWorld implements telemetry.SimSource, exposing the world's size and
// pacing as vscsistats_vscsim_* series.
func (s *Sim) SimWorld() telemetry.SimWorld {
	st := s.Stats()
	return telemetry.SimWorld{
		Hosts:          st.Hosts,
		VMs:            st.VMs,
		Disks:          st.Disks,
		VirtualSeconds: st.Virtual.Seconds(),
		WallSeconds:    st.Wall.Seconds(),
		Speed:          st.Speed,
		Ops:            st.Ops,
		Bytes:          st.Bytes,
		Errors:         st.Errors,
		Throttled:      st.Throttled,
		Pushes:         st.Agent.Pushes,
		PushErrors:     st.Agent.Errors,
	}
}
