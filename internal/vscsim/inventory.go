// Package vscsim is the datacenter control-plane simulator: the vcsim
// pattern applied to vSCSI characterization. From a single seed it
// generates a deterministic synthetic inventory (hosts × VMs × disks, each
// VM drawn from the workload personality population with heavy-tailed
// per-VM intensity) and runs every host as a wall-paced simulated world —
// its own discrete-event engine, hypervisor, open-loop workload generators
// and fleet agent — multiplexing a thousand and more hosts into one OS
// process against a real sharded aggregator. The simulator exists to make
// the paper's "cheap enough to leave on for every VM" claim testable at
// datacenter scale: everything above the guest (agent wire codec,
// aggregator sharding, segment log, classification) runs the production
// code path; only the guests are synthetic.
package vscsim

import (
	"fmt"
	"math"
	"math/rand"

	"vscsistats/internal/simclock"
	"vscsistats/internal/workload"
)

// Config shapes a generated inventory. Zero values take the documented
// defaults.
type Config struct {
	// Seed determines everything: host and VM names are positional, and
	// every personality draw, intensity draw and per-disk workload RNG
	// derives from it. Two inventories from the same Config are
	// bit-identical (reflect.DeepEqual).
	Seed int64
	// Hosts is the number of simulated hosts (default 4).
	Hosts int
	// VMsPerHost is the number of VMs on each host (default 8).
	VMsPerHost int
	// DisksPerVM is the number of virtual disks per VM (default 1).
	DisksPerVM int
	// Intensity scales every VM's drawn intensity (default 1) — the one
	// knob that makes the whole datacenter hotter or colder without
	// changing its shape.
	Intensity float64
	// Personalities overrides the workload population (default: the
	// built-in workload.FleetPersonalities()).
	Personalities []workload.FleetPersonality
}

func (c Config) withDefaults() Config {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 8
	}
	if c.DisksPerVM <= 0 {
		c.DisksPerVM = 1
	}
	if c.Intensity <= 0 {
		c.Intensity = 1
	}
	if len(c.Personalities) == 0 {
		c.Personalities = workload.FleetPersonalities()
	}
	return c
}

// Inventory is a generated synthetic datacenter.
type Inventory struct {
	Seed          int64
	Hosts         []HostSpec
	Personalities []workload.FleetPersonality
}

// HostSpec is one simulated host.
type HostSpec struct {
	// Name is the host's fleet identity, e.g. "esx-0007".
	Name string
	// Seed drives the host's storage model.
	Seed int64
	VMs  []VMSpec
}

// VMSpec is one simulated VM: a personality at an intensity.
type VMSpec struct {
	// Name is globally unique across the inventory, e.g. "esx-0007-vm03".
	Name string
	// Personality names the VM's workload class in the population.
	Personality string
	// Intensity is the VM's rate multiplier, drawn from a bounded Pareto
	// distribution so a generated fleet is mostly idle with a heavy tail
	// carrying most of the traffic (the shape the Alibaba cloud
	// block-storage study measured).
	Intensity float64
	// Disks is the number of virtual disks.
	Disks int
	// Seed drives the VM's workload RNGs (one derived seed per disk).
	Seed int64
}

// Bounded Pareto intensity draw: scale 0.25, shape 1.1 (heavy-tailed,
// infinite variance before clamping), clamped at 40× so one VM cannot
// starve the simulation. Mean ≈ 1.25.
const (
	paretoScale = 0.25
	paretoShape = 1.1
	paretoClamp = 40.0
)

// NewInventory generates the synthetic datacenter described by cfg.
func NewInventory(cfg Config) *Inventory {
	cfg = cfg.withDefaults()
	rng := simclock.NewRand(cfg.Seed)
	inv := &Inventory{
		Seed:          cfg.Seed,
		Hosts:         make([]HostSpec, cfg.Hosts),
		Personalities: cfg.Personalities,
	}
	total := 0
	for _, p := range cfg.Personalities {
		if p.Weight <= 0 {
			panic(fmt.Sprintf("vscsim: personality %q has non-positive weight", p.Name))
		}
		total += p.Weight
	}
	for h := range inv.Hosts {
		host := HostSpec{
			Name: fmt.Sprintf("esx-%04d", h+1),
			Seed: deriveSeed(cfg.Seed, uint64(h)),
			VMs:  make([]VMSpec, cfg.VMsPerHost),
		}
		for v := range host.VMs {
			host.VMs[v] = VMSpec{
				Name:        fmt.Sprintf("%s-vm%02d", host.Name, v+1),
				Personality: pickPersonality(rng, cfg.Personalities, total),
				Intensity:   cfg.Intensity * paretoIntensity(rng),
				Disks:       cfg.DisksPerVM,
				Seed:        deriveSeed(cfg.Seed, uint64(h), uint64(v)),
			}
		}
		inv.Hosts[h] = host
	}
	return inv
}

func pickPersonality(rng *rand.Rand, pop []workload.FleetPersonality, total int) string {
	n := rng.Intn(total)
	for _, p := range pop {
		if n < p.Weight {
			return p.Name
		}
		n -= p.Weight
	}
	return pop[len(pop)-1].Name
}

// paretoIntensity draws from the bounded Pareto via inverse transform.
func paretoIntensity(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	x := paretoScale * math.Pow(u, -1/paretoShape)
	if x > paretoClamp {
		x = paretoClamp
	}
	return x
}

// deriveSeed maps (master seed, index path) to an independent-looking
// sub-seed via a splitmix64-style finalizer, so every entity gets its own
// RNG stream while staying a pure function of the master seed.
func deriveSeed(seed int64, path ...uint64) int64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, p := range path {
		h += 0x9e3779b97f4a7c15 + p
		h = mix64(h)
	}
	return int64(h)
}

func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// VMCount and DiskCount size the inventory.
func (inv *Inventory) VMCount() int {
	n := 0
	for _, h := range inv.Hosts {
		n += len(h.VMs)
	}
	return n
}

// DiskCount counts virtual disks across the inventory.
func (inv *Inventory) DiskCount() int {
	n := 0
	for _, h := range inv.Hosts {
		for _, vm := range h.VMs {
			n += vm.Disks
		}
	}
	return n
}

// PersonalityMix counts VMs per personality — the realized draw of the
// population weights.
func (inv *Inventory) PersonalityMix() map[string]int {
	mix := make(map[string]int)
	for _, h := range inv.Hosts {
		for _, vm := range h.VMs {
			mix[vm.Personality]++
		}
	}
	return mix
}

func (inv *Inventory) personality(name string) (workload.FleetPersonality, bool) {
	for _, p := range inv.Personalities {
		if p.Name == name {
			return p, true
		}
	}
	return workload.FleetPersonality{}, false
}
