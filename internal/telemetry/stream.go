package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/histogram"
)

// IntervalPoint is one interval's worth of activity on one virtual disk:
// the delta between two consecutive registry snapshots, stamped with a
// wall-clock time and a monotonically increasing tick sequence number.
type IntervalPoint struct {
	Seq      int64
	UnixNano int64
	// Delta holds the histograms and counters accumulated during the
	// interval (Snapshot.Sub of consecutive cumulative snapshots). The
	// first point after enable is the cumulative state so far.
	Delta *core.Snapshot
}

// Streamer periodically snapshots every collector in a registry and
// retains a bounded ring of per-interval deltas per virtual disk — the
// online equivalent of internal/core's IntervalRecorder, driven by wall
// time instead of virtual time. It serves two HTTP surfaces:
//
//   - ServeSeries: JSON time series for one disk
//     (GET /disks/{vm}/{disk}/series?metric=&class=&n=);
//   - ServeWatch: a live SSE feed (GET /watch) pushing one event per tick
//     with a compact per-disk activity summary.
//
// Drive it with Start/Stop in production or call Tick directly from tests
// for deterministic output. Slow SSE subscribers never block a tick:
// events are dropped instead, and the drop count is observable.
type Streamer struct {
	reg      *core.Registry
	interval time.Duration
	depth    int

	mu    sync.Mutex
	seq   int64
	prev  map[string]*core.Snapshot
	rings map[string][]IntervalPoint

	subMu   sync.Mutex
	subs    map[chan []byte]struct{}
	dropped atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
}

// NewStreamer returns a streamer sampling reg every interval, keeping the
// most recent depth points per disk (minimums 1ms and 1 apply).
func NewStreamer(reg *core.Registry, interval time.Duration, depth int) *Streamer {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if depth < 1 {
		depth = 1
	}
	return &Streamer{
		reg:      reg,
		interval: interval,
		depth:    depth,
		prev:     map[string]*core.Snapshot{},
		rings:    map[string][]IntervalPoint{},
		subs:     map[chan []byte]struct{}{},
		stop:     make(chan struct{}),
	}
}

// Interval returns the sampling interval.
func (s *Streamer) Interval() time.Duration { return s.interval }

// Dropped returns the number of SSE events discarded because a subscriber
// was too slow to drain its buffer.
func (s *Streamer) Dropped() int64 { return s.dropped.Load() }

// Start launches the sampling loop in a new goroutine. Stop ends it.
func (s *Streamer) Start() {
	go func() {
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-t.C:
				s.Tick(now)
			}
		}
	}()
}

// Stop ends the sampling loop started by Start. Idempotent.
func (s *Streamer) Stop() { s.stopOnce.Do(func() { close(s.stop) }) }

func diskKey(vm, disk string) string { return vm + "\x00" + disk }

// Tick takes one sampling pass: snapshot every enabled collector, append
// the interval delta to its ring, and broadcast a summary to SSE
// subscribers. Exported so tests (and virtual-time drivers) can sample
// deterministically without wall-clock sleeps.
func (s *Streamer) Tick(now time.Time) {
	snaps := s.reg.Snapshots() // sorted by (vm, disk)

	s.mu.Lock()
	s.seq++
	seq := s.seq
	points := make([]IntervalPoint, 0, len(snaps))
	for _, snap := range snaps {
		key := diskKey(snap.VM, snap.Disk)
		delta := snap
		if prev := s.prev[key]; prev != nil {
			delta = snap.Sub(prev)
		}
		s.prev[key] = snap
		p := IntervalPoint{Seq: seq, UnixNano: now.UnixNano(), Delta: delta}
		ring := append(s.rings[key], p)
		if len(ring) > s.depth {
			ring = ring[len(ring)-s.depth:]
		}
		s.rings[key] = ring
		points = append(points, p)
	}
	s.mu.Unlock()

	s.broadcast(seq, now, points)
}

// Series returns the retained points for one disk, oldest first, or nil
// if the streamer has never sampled it.
func (s *Streamer) Series(vm, disk string) []IntervalPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ring := s.rings[diskKey(vm, disk)]
	out := make([]IntervalPoint, len(ring))
	copy(out, ring)
	return out
}

// seriesPoint is the JSON wire form of one interval.
type seriesPoint struct {
	Seq               int64               `json:"seq"`
	UnixNano          int64               `json:"unixNano"`
	Commands          int64               `json:"commands"`
	Reads             int64               `json:"reads"`
	Writes            int64               `json:"writes"`
	ReadBytes         int64               `json:"readBytes"`
	WriteBytes        int64               `json:"writeBytes"`
	Errors            int64               `json:"errors"`
	MeanLatencyMicros float64             `json:"meanLatencyMicros"`
	Histogram         *histogram.Snapshot `json:"histogram,omitempty"`
}

type seriesResponse struct {
	VM              string        `json:"vm"`
	Disk            string        `json:"disk"`
	IntervalSeconds float64       `json:"intervalSeconds"`
	Metric          string        `json:"metric,omitempty"`
	Class           string        `json:"class,omitempty"`
	Points          []seriesPoint `json:"points"`
}

// ServeSeries implements GET /disks/{vm}/{disk}/series. Optional query
// parameters: metric (one of the core metric names) and class
// (all|reads|writes) attach the per-interval delta histogram to each
// point; n limits the response to the most recent n points.
func (s *Streamer) ServeSeries(w http.ResponseWriter, r *http.Request, vm, disk string) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
		return
	}
	if s.reg.Lookup(vm, disk) == nil {
		jsonError(w, http.StatusNotFound, "no such disk")
		return
	}

	var metric core.Metric
	if m := r.URL.Query().Get("metric"); m != "" {
		metric = core.Metric(m)
		known := false
		for _, k := range core.Metrics() {
			if k == metric {
				known = true
				break
			}
		}
		if !known {
			jsonError(w, http.StatusBadRequest, "unknown metric "+strconv.Quote(m))
			return
		}
	}
	class := core.All
	switch cl := r.URL.Query().Get("class"); cl {
	case "", "all":
	case "reads":
		class = core.Reads
	case "writes":
		class = core.Writes
	default:
		jsonError(w, http.StatusBadRequest, "unknown class "+strconv.Quote(cl))
		return
	}

	points := s.Series(vm, disk)
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest, "bad n")
			return
		}
		if n < len(points) {
			points = points[len(points)-n:]
		}
	}

	resp := seriesResponse{
		VM:              vm,
		Disk:            disk,
		IntervalSeconds: s.interval.Seconds(),
		Points:          make([]seriesPoint, 0, len(points)),
	}
	if metric != "" {
		resp.Metric = string(metric)
		resp.Class = class.String()
	}
	for _, p := range points {
		sp := seriesPoint{
			Seq:        p.Seq,
			UnixNano:   p.UnixNano,
			Commands:   p.Delta.Commands,
			Reads:      p.Delta.NumReads,
			Writes:     p.Delta.NumWrites,
			ReadBytes:  p.Delta.ReadBytes,
			WriteBytes: p.Delta.WriteBytes,
			Errors:     p.Delta.Errors,
		}
		if lat := p.Delta.Histogram(core.MetricLatency, core.All); lat != nil && lat.Total > 0 {
			sp.MeanLatencyMicros = lat.Mean()
		}
		if metric != "" {
			sp.Histogram = p.Delta.Histogram(metric, class)
		}
		resp.Points = append(resp.Points, sp)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// watchDisk is the per-disk summary inside one SSE event.
type watchDisk struct {
	VM                string  `json:"vm"`
	Disk              string  `json:"disk"`
	Commands          int64   `json:"commands"`
	Reads             int64   `json:"reads"`
	Writes            int64   `json:"writes"`
	Errors            int64   `json:"errors"`
	MeanLatencyMicros float64 `json:"meanLatencyMicros"`
}

type watchEvent struct {
	Seq      int64       `json:"seq"`
	UnixNano int64       `json:"unixNano"`
	Disks    []watchDisk `json:"disks"`
}

func (s *Streamer) broadcast(seq int64, now time.Time, points []IntervalPoint) {
	s.subMu.Lock()
	n := len(s.subs)
	s.subMu.Unlock()
	if n == 0 {
		return
	}

	ev := watchEvent{Seq: seq, UnixNano: now.UnixNano(), Disks: make([]watchDisk, 0, len(points))}
	for _, p := range points {
		d := watchDisk{
			VM:       p.Delta.VM,
			Disk:     p.Delta.Disk,
			Commands: p.Delta.Commands,
			Reads:    p.Delta.NumReads,
			Writes:   p.Delta.NumWrites,
			Errors:   p.Delta.Errors,
		}
		if lat := p.Delta.Histogram(core.MetricLatency, core.All); lat != nil && lat.Total > 0 {
			d.MeanLatencyMicros = lat.Mean()
		}
		ev.Disks = append(ev.Disks, d)
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}

	s.subMu.Lock()
	for ch := range s.subs {
		select {
		case ch <- payload:
		default:
			s.dropped.Add(1)
		}
	}
	s.subMu.Unlock()
}

func (s *Streamer) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	s.subMu.Lock()
	s.subs[ch] = struct{}{}
	s.subMu.Unlock()
	return ch
}

func (s *Streamer) unsubscribe(ch chan []byte) {
	s.subMu.Lock()
	delete(s.subs, ch)
	s.subMu.Unlock()
}

// ServeWatch implements GET /watch as a Server-Sent Events stream: one
// "interval" event per tick, carrying the watchEvent JSON. The stream ends
// when the client disconnects or the streamer is stopped.
func (s *Streamer) ServeWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		jsonError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := s.subscribe()
	defer s.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		case payload := <-ch:
			if _, err := w.Write([]byte("event: interval\ndata: ")); err != nil {
				return
			}
			if _, err := w.Write(payload); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
