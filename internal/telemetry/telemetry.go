// Package telemetry is the observability layer for the characterization
// service itself. The paper's pitch is a service cheap enough to leave
// always on and inspect online (§5.2's /proc/vmware nodes, Table 2's
// overhead numbers); this package makes the reproduction hold itself to
// that standard:
//
//   - a hand-rolled Prometheus text-format Exporter (GET /metrics) over a
//     core.Registry: per-vdisk command counters, the six paper histograms
//     as cumulative Prometheus histograms (the paper's irregular bin edges
//     become `le` bounds), and the collectors' self-telemetry — so Table
//     2's overhead is a live, scrapeable metric;
//   - a LifecycleTracer: a fixed-size ring of issue/complete and
//     enable/disable/reset/snapshot events with Chrome trace-event JSON
//     export (GET /debug/trace), built on internal/trace's record format;
//   - a Streamer: a periodic sampler retaining a bounded ring of
//     per-interval delta snapshots per vdisk, served as a JSON time series
//     (GET /disks/{vm}/{disk}/series) and as a live SSE feed (GET /watch).
//
// Everything here reads the concurrency-safe surfaces built in
// internal/core (atomic snapshots, RWMutex registry), so all handlers can
// serve while simulations run — including the parallel multi-VM driver's
// worlds. No external dependencies: the Prometheus exposition format and
// SSE are both plain text over HTTP.
package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
)

// DiskStatsSource reports the vSCSI-layer lifetime counters of one virtual
// disk: commands issued, completed and errored, plus the in-flight gauge.
// hypervisor.Host and hypervisor.ParallelSim implement it; the exporter
// uses it to publish the disk-level view next to the collector-level one.
type DiskStatsSource interface {
	DiskCounters(vm, disk string) (issued, completed, errored uint64, inflight int64, ok bool)
}

// jsonError writes a JSON error body ({"error": msg}) with the given
// status, setting the Allow header when allowed methods are supplied —
// the same error contract as internal/httpstats.
func jsonError(w http.ResponseWriter, code int, msg string, allow ...string) {
	if len(allow) > 0 {
		w.Header().Set("Allow", strings.Join(allow, ", "))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
