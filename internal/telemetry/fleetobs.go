package telemetry

import (
	"strconv"

	"vscsistats/internal/histogram"
)

// FleetObsStage is one fleet pipeline stage's latency distribution:
// Scope is "agent" or "aggregator", Stage the snake_case stage name
// (capture, encode, ingest, fsync, ...), Hist nanosecond latencies.
type FleetObsStage struct {
	Scope string
	Stage string
	Hist  *histogram.Snapshot
}

// FleetObsEventCount is one pipeline event kind's lifetime count.
type FleetObsEventCount struct {
	Kind  string
	Count int64
}

// FleetObsSource reports the fleet pipeline's self-characterization:
// per-stage latency histograms and per-kind event counters.
// fleetobs.Tracker implements it; the indirection keeps this package
// free of a fleetobs dependency (mirroring FleetSource).
type FleetObsSource interface {
	FleetObsStages() []FleetObsStage
	FleetObsEvents() []FleetObsEventCount
}

// WithFleetObs attaches a fleet pipeline observability source and
// returns the exporter. Scrapes then include the vscsistats_fleetobs_*
// series: one cumulative histogram per pipeline stage (labelled
// scope/stage) and per-kind event counters.
func (e *Exporter) WithFleetObs(src FleetObsSource) *Exporter {
	e.fleetObs = src
	return e
}

// writeFleetObs emits the vscsistats_fleetobs_* series.
func (e *Exporter) writeFleetObs(p *promWriter) {
	if e.fleetObs == nil {
		return
	}
	stages := e.fleetObs.FleetObsStages()
	p.family("vscsistats_fleetobs_stage_duration_nanoseconds", "histogram",
		"Fleet pipeline stage latency (sampled on hot paths), by scope and stage.")
	for _, st := range stages {
		if st.Hist == nil {
			continue
		}
		labels := `scope="` + escapeLabel(st.Scope) + `",stage="` + escapeLabel(st.Stage) + `"`
		p.histogram("vscsistats_fleetobs_stage_duration_nanoseconds", labels, st.Hist)
	}
	p.family("vscsistats_fleetobs_events_total", "counter",
		"Fleet pipeline events recorded, by kind (ring overwrites included).")
	for _, ec := range e.fleetObs.FleetObsEvents() {
		p.sample("vscsistats_fleetobs_events_total",
			`kind="`+escapeLabel(ec.Kind)+`"`, strconv.FormatInt(ec.Count, 10))
	}
}
