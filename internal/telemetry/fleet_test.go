package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vscsistats/internal/core"
)

// fakeFleet is an in-package FleetSource: two hosts (one stale), a merged
// cluster view, and a per-VM breakdown.
type fakeFleet struct {
	hosts   []FleetHost
	cluster *core.Snapshot
	vms     []*core.Snapshot
}

func (f *fakeFleet) FleetHosts() []FleetHost      { return f.hosts }
func (f *fakeFleet) FleetCluster() *core.Snapshot { return f.cluster }
func (f *fakeFleet) FleetVMs() []*core.Snapshot   { return f.vms }

func newFakeFleet(t *testing.T) *fakeFleet {
	t.Helper()
	rigA := newRig(t, "vm-a", "scsi0:0")
	rigA.col.Enable()
	rigA.issue(t, 25, 5)
	rigB := newRig(t, `vm-"odd"`, "scsi0:0") // exercises label escaping
	rigB.col.Enable()
	rigB.issue(t, 10, 20)
	snaps := append(rigA.reg.Snapshots(), rigB.reg.Snapshots()...)
	return &fakeFleet{
		hosts: []FleetHost{
			{Host: "esx-01", Stale: false, AgeSeconds: 0.5, Snapshots: 2, Batches: 7, Seq: 7},
			{Host: "esx-02", Stale: true, AgeSeconds: 42, Snapshots: 1, Batches: 3, Seq: 3},
		},
		cluster: core.Aggregate("cluster", "*", snaps...),
		vms:     []*core.Snapshot{rigA.reg.VMSnapshot("vm-a"), rigB.reg.VMSnapshot(`vm-"odd"`)},
	}
}

func scrape(t *testing.T, exp *Exporter) []promSample {
	t.Helper()
	srv := httptest.NewServer(exp)
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return parseProm(t, sb.String())
}

// TestFleetExposition scrapes an exporter with a fleet source attached and
// checks every fleet_* family against the source, through the strict
// parser (so the merged histograms are also validated as cumulative,
// ordered, +Inf-terminated).
func TestFleetExposition(t *testing.T) {
	src := newFakeFleet(t)
	samples := scrape(t, NewExporter(core.NewRegistry()).WithFleet(src))

	if s := findSample(t, samples, "vscsistats_fleet_hosts"); s.value != 2 {
		t.Errorf("fleet_hosts = %v, want 2", s.value)
	}
	if s := findSample(t, samples, "vscsistats_fleet_hosts_stale"); s.value != 1 {
		t.Errorf("fleet_hosts_stale = %v, want 1", s.value)
	}
	if s := findSample(t, samples, "vscsistats_fleet_host_up", "host", "esx-01"); s.value != 1 {
		t.Errorf("host_up{esx-01} = %v, want 1", s.value)
	}
	if s := findSample(t, samples, "vscsistats_fleet_host_up", "host", "esx-02"); s.value != 0 {
		t.Errorf("host_up{esx-02} = %v, want 0", s.value)
	}
	if s := findSample(t, samples, "vscsistats_fleet_host_age_seconds", "host", "esx-02"); s.value != 42 {
		t.Errorf("host_age{esx-02} = %v, want 42", s.value)
	}
	if s := findSample(t, samples, "vscsistats_fleet_host_snapshots", "host", "esx-01"); s.value != 2 {
		t.Errorf("host_snapshots{esx-01} = %v, want 2", s.value)
	}
	if s := findSample(t, samples, "vscsistats_fleet_host_batches_total", "host", "esx-01"); s.value != 7 {
		t.Errorf("host_batches{esx-01} = %v, want 7", s.value)
	}

	c := src.cluster
	for name, want := range map[string]int64{
		"vscsistats_fleet_commands_total":    c.Commands,
		"vscsistats_fleet_reads_total":       c.NumReads,
		"vscsistats_fleet_writes_total":      c.NumWrites,
		"vscsistats_fleet_read_bytes_total":  c.ReadBytes,
		"vscsistats_fleet_write_bytes_total": c.WriteBytes,
		"vscsistats_fleet_errors_total":      c.Errors,
	} {
		if s := findSample(t, samples, name); int64(s.value) != want {
			t.Errorf("%s = %v, want %d", name, s.value, want)
		}
	}

	for _, vs := range src.vms {
		s := findSample(t, samples, "vscsistats_fleet_vm_commands_total", "vm", vs.VM)
		if int64(s.value) != vs.Commands {
			t.Errorf("vm_commands{%s} = %v, want %d", vs.VM, s.value, vs.Commands)
		}
	}

	// The merged histograms carry the cluster totals: _count of the
	// all-class series must equal the merged histogram's sample count.
	for _, fam := range workloadFamilies {
		name := "vscsistats_fleet" + strings.TrimPrefix(fam.name, "vscsistats")
		h := c.Histogram(fam.metric, core.All)
		s := findSample(t, samples, name+"_count", "class", "all")
		if int64(s.value) != h.Total {
			t.Errorf("%s_count{all} = %v, want %d", name, s.value, h.Total)
		}
	}
}

// TestFleetExpositionEmpty: a fleet source with no fresh cluster (every
// host stale or none registered) must still produce a parseable scrape —
// families present, no cluster samples, no histogram fragments.
func TestFleetExpositionEmpty(t *testing.T) {
	samples := scrape(t, NewExporter(core.NewRegistry()).WithFleet(&fakeFleet{}))
	if s := findSample(t, samples, "vscsistats_fleet_hosts"); s.value != 0 {
		t.Errorf("fleet_hosts = %v, want 0", s.value)
	}
	for _, s := range samples {
		if strings.HasPrefix(s.name, "vscsistats_fleet_commands_total") {
			t.Errorf("cluster counter emitted with no cluster: %s", s.name)
		}
		if strings.Contains(s.name, "fleet_io_length") {
			t.Errorf("histogram emitted with no cluster: %s", s.name)
		}
	}
}

// TestFleetExpositionAbsent: without WithFleet, no fleet_* series appear.
func TestFleetExpositionAbsent(t *testing.T) {
	samples := scrape(t, NewExporter(core.NewRegistry()))
	for _, s := range samples {
		if strings.HasPrefix(s.name, "vscsistats_fleet_") {
			t.Errorf("unexpected fleet series %s without a fleet source", s.name)
		}
	}
}
