package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vscsistats/internal/hypervisor"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/workload"
)

// TestScrapeWhileParallelSimRuns is the package's -race stress test and
// the issue's acceptance scenario: eight parallel worlds simulate I/O
// while HTTP clients hammer /metrics, and every single scrape must be a
// valid, internally consistent exposition (strict parser) — no torn
// histograms, no duplicate series, no panics.
func TestScrapeWhileParallelSimRuns(t *testing.T) {
	const worlds = 8
	p := hypervisor.NewParallelSim(worlds, func(w *hypervisor.World) {
		w.Host.AddDatastore("ds", storage.LocalDiskConfig(int64(w.Index)+1))
		vd, err := w.Host.CreateVM(fmt.Sprintf("vm%d", w.Index)).AddDisk(hypervisor.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		vd.Collector.Enable()
		spec := workload.EightKRandomRead()
		spec.Seed = int64(w.Index) + 100
		gen := workload.NewIometer(w.Engine, vd.Disk, spec)
		w.Engine.At(0, func(simclock.Time) { gen.Start() })
	})

	exp := NewExporter(p.Registry()).WithDiskStats(p)
	srv := httptest.NewServer(exp)
	t.Cleanup(srv.Close)

	scrape := func() string {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return ""
		}
		return string(body)
	}

	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		p.RunUntil(1 * simclock.Second)
	}()

	// Scraper goroutines collect raw bodies; parsing happens afterwards on
	// the test goroutine (parseProm may Fatal, which must not run off it).
	var wg sync.WaitGroup
	scraped := make([][]string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-simDone:
					return
				default:
				}
				if text := scrape(); text != "" {
					scraped[g] = append(scraped[g], text)
				}
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, texts := range scraped {
		total += len(texts)
		for _, text := range texts {
			parseProm(t, text)
		}
	}
	if total == 0 {
		t.Fatal("no scrape completed while the simulation ran")
	}
	t.Logf("validated %d concurrent scrapes", total)

	// Final scrape: every world did I/O and the disk-level counters agree
	// with the hypervisor's view.
	samples := parseProm(t, scrape())
	for i := 0; i < worlds; i++ {
		vm := fmt.Sprintf("vm%d", i)
		cmds := findSample(t, samples, "vscsistats_commands_total", "vm", vm)
		if cmds.value <= 0 {
			t.Errorf("%s: no commands recorded", vm)
		}
		issued, completed, _, _, ok := p.DiskCounters(vm, "scsi0:0")
		if !ok {
			t.Fatalf("%s: DiskCounters not found", vm)
		}
		di := findSample(t, samples, "vscsistats_disk_issued_total", "vm", vm)
		if di.value != float64(issued) {
			t.Errorf("%s: exported issued %v != live %d", vm, di.value, issued)
		}
		if completed == 0 {
			t.Errorf("%s: nothing completed", vm)
		}
	}
	if s := findSample(t, samples, "vscsistats_collectors"); s.value != worlds {
		t.Errorf("collectors = %v, want %d", s.value, worlds)
	}
}
