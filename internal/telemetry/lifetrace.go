package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"vscsistats/internal/scsi"
	"vscsistats/internal/trace"
	"vscsistats/internal/vscsi"
)

// EventKind classifies a lifecycle event.
type EventKind uint8

// Lifecycle event kinds: the two fast-path events plus the four control
// verbs of the characterization service.
const (
	EventIssue EventKind = iota
	EventComplete
	EventEnable
	EventDisable
	EventReset
	EventSnapshot
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventIssue:
		return "issue"
	case EventComplete:
		return "complete"
	case EventEnable:
		return "enable"
	case EventDisable:
		return "disable"
	case EventReset:
		return "reset"
	case EventSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one entry in the lifecycle ring. Fast-path events carry a full
// trace.Record; control events carry only the identity and a virtual
// timestamp interpolated from the most recent command seen.
type Event struct {
	Kind          EventKind
	VM, Disk      string
	VirtualMicros int64
	// Rec is populated for EventIssue and EventComplete only. For
	// EventIssue the record is taken mid-flight, so CompleteMicros is 0.
	Rec trace.Record
}

// LifecycleTracer keeps the last N issue/complete/enable/disable/reset/
// snapshot events in a fixed-size ring and exports them as Chrome
// trace-event JSON (load the output in chrome://tracing or Perfetto).
//
// Unlike internal/trace.Tracer — a single-goroutine buffer for offline
// traces — this ring is mutex-guarded so every world of a parallel
// simulation can feed one tracer while HTTP handlers drain it. It is an
// opt-in vscsi.Observer: attach it with Disk.AddObserver alongside the
// collector.
type LifecycleTracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int   // ring index of the next write
	total int64 // lifetime events, including overwritten ones
	// lastVirtual tracks the most recent virtual timestamp seen on the
	// fast path, so control events — which happen outside virtual time —
	// can be placed on the same axis.
	lastVirtual atomic.Int64
}

// NewLifecycleTracer returns a tracer retaining the last capacity events
// (minimum 1).
func NewLifecycleTracer(capacity int) *LifecycleTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &LifecycleTracer{ring: make([]Event, 0, capacity)}
}

// OnIssue records a command issue. Part of the vscsi.Observer surface.
func (t *LifecycleTracer) OnIssue(r *vscsi.Request) {
	ts := r.IssueTime.Micros()
	t.lastVirtual.Store(ts)
	t.push(Event{Kind: EventIssue, VM: r.VM, Disk: r.Disk, VirtualMicros: ts, Rec: trace.FromRequest(r)})
}

// OnComplete records a command completion.
func (t *LifecycleTracer) OnComplete(r *vscsi.Request) {
	ts := r.CompleteTime.Micros()
	t.lastVirtual.Store(ts)
	t.push(Event{Kind: EventComplete, VM: r.VM, Disk: r.Disk, VirtualMicros: ts, Rec: trace.FromRequest(r)})
}

// Control records a service control event (enable/disable/reset/snapshot).
// Unknown kinds are ignored.
func (t *LifecycleTracer) Control(kind EventKind, vm, disk string) {
	switch kind {
	case EventEnable, EventDisable, EventReset, EventSnapshot:
		t.push(Event{Kind: kind, VM: vm, Disk: disk, VirtualMicros: t.lastVirtual.Load()})
	}
}

// ControlVerb records a control event named by its HTTP control-plane verb
// ("enable", "disable", "reset" or "snapshot"); unknown verbs are ignored.
// Its signature matches httpstats.Options.OnControl.
func (t *LifecycleTracer) ControlVerb(verb, vm, disk string) {
	switch verb {
	case "enable":
		t.Control(EventEnable, vm, disk)
	case "disable":
		t.Control(EventDisable, vm, disk)
	case "reset":
		t.Control(EventReset, vm, disk)
	case "snapshot":
		t.Control(EventSnapshot, vm, disk)
	}
}

func (t *LifecycleTracer) push(e Event) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *LifecycleTracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Len is the number of retained events; Cap the ring capacity; Total the
// lifetime event count including overwritten entries.
func (t *LifecycleTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Cap returns the ring capacity.
func (t *LifecycleTracer) Cap() int { return cap(t.ring) }

// Total returns the lifetime event count, including overwritten entries.
func (t *LifecycleTracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteChromeTrace renders the retained events as a Chrome trace-event
// JSON array. Completions become "X" (complete) slices spanning
// issue→completion; issues and control verbs become "i" instants; each VM
// is a pid and each disk a tid, named via "M" metadata events.
func (t *LifecycleTracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	// Stable pid/tid assignment: collect identities, sort, number.
	vms := map[string]int{}
	disks := map[[2]string]int{}
	for _, e := range events {
		if _, ok := vms[e.VM]; !ok {
			vms[e.VM] = 0
		}
		disks[[2]string{e.VM, e.Disk}] = 0
	}
	vmNames := make([]string, 0, len(vms))
	for vm := range vms {
		vmNames = append(vmNames, vm)
	}
	sort.Strings(vmNames)
	for i, vm := range vmNames {
		vms[vm] = i + 1
	}
	diskKeys := make([][2]string, 0, len(disks))
	for k := range disks {
		diskKeys = append(diskKeys, k)
	}
	sort.Slice(diskKeys, func(i, j int) bool {
		if diskKeys[i][0] != diskKeys[j][0] {
			return diskKeys[i][0] < diskKeys[j][0]
		}
		return diskKeys[i][1] < diskKeys[j][1]
	})
	for i, k := range diskKeys {
		disks[k] = i + 1
	}

	bw := bufio.NewWriter(w)
	first := true
	emit := func(format string, args ...any) {
		if first {
			first = false
		} else {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, format, args...)
	}

	bw.WriteString("[\n")
	for _, vm := range vmNames {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":%q}}`, vms[vm], "vm "+vm)
	}
	for _, k := range diskKeys {
		emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
			vms[k[0]], disks[k], "disk "+k[1])
	}
	for _, e := range events {
		pid := vms[e.VM]
		tid := disks[[2]string{e.VM, e.Disk}]
		switch e.Kind {
		case EventComplete:
			dur := e.Rec.LatencyMicros()
			if dur < 0 {
				dur = 0
			}
			emit(`{"ph":"X","name":%q,"cat":"io","pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{"seq":%d,"lba":%d,"blocks":%d,"outstanding":%d,"status":%q}}`,
				opName(e.Rec.Op), pid, tid, e.Rec.IssueMicros, dur,
				e.Rec.Seq, e.Rec.LBA, e.Rec.Blocks, e.Rec.Outstanding, e.Rec.Status.String())
		case EventIssue:
			emit(`{"ph":"i","name":%q,"cat":"io","s":"t","pid":%d,"tid":%d,"ts":%d,"args":{"seq":%d,"lba":%d,"blocks":%d}}`,
				"issue "+opName(e.Rec.Op), pid, tid, e.VirtualMicros,
				e.Rec.Seq, e.Rec.LBA, e.Rec.Blocks)
		default:
			emit(`{"ph":"i","name":%q,"cat":"control","s":"p","pid":%d,"tid":%d,"ts":%d,"args":{}}`,
				e.Kind.String(), pid, tid, e.VirtualMicros)
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// ServeHTTP implements GET /debug/trace.
func (t *LifecycleTracer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	t.WriteChromeTrace(w)
}

func opName(op scsi.OpCode) string { return op.String() }
