package telemetry

import (
	"strconv"
	"strings"

	"vscsistats/internal/core"
)

// FleetHost is one host's liveness as seen by a fleet aggregator.
type FleetHost struct {
	Host       string
	Stale      bool
	AgeSeconds float64
	Snapshots  int
	Batches    int64
	Seq        uint64
}

// FleetSource reports a fleet aggregator's state: per-host liveness plus
// the merged cluster-wide and per-VM snapshots. fleet.Aggregator
// implements it; the indirection keeps this package free of a fleet
// dependency (mirroring DiskStatsSource).
type FleetSource interface {
	FleetHosts() []FleetHost
	FleetCluster() *core.Snapshot
	FleetVMs() []*core.Snapshot
}

// FleetShard is one shard's slice of a sharded fleet aggregator.
type FleetShard struct {
	Index            int
	Hosts            int
	StaleHosts       int
	Batches          int64
	DeltasApplied    int64
	Resyncs          int64
	MergeCacheHits   int64
	MergeCacheMisses int64
}

// FleetShardSource is the optional sharding extension of FleetSource: a
// source that also reports per-shard ingest and merge-cache counters.
// Implemented by the sharded fleet.Aggregator; the exporter type-asserts,
// so non-sharded sources keep working unchanged.
type FleetShardSource interface {
	FleetShards() []FleetShard
}

// FleetLog is the segment log's size and maintenance counters.
type FleetLog struct {
	Segments        int
	Bytes           int64
	Appends         int64
	AppendBytes     int64
	AppendErrors    int64
	Fsyncs          int64
	Rotations       int64
	Compactions     int64
	SegmentsRetired int64
	FramesReplayed  int64
	TornTails       int64
}

// FleetLogSource is the optional durability extension of FleetSource: a
// source backed by a segment log also reports the log's size and
// maintenance counters (false when the aggregator is memory-only, which
// suppresses the series entirely). The exporter type-asserts, mirroring
// FleetShardSource.
type FleetLogSource interface {
	FleetLogStats() (FleetLog, bool)
}

// FleetTier aggregates one federation level of an aggregator's host set:
// level 0 entries are leaf agents, level 1 entries are regional
// aggregators re-exporting their merges, and so on up the tree.
type FleetTier struct {
	Level      int
	Hosts      int
	StaleHosts int
	Leaves     int
}

// FleetTierSource is the optional federation extension of FleetSource: a
// source that also groups its hosts by federation level. The exporter
// type-asserts, mirroring FleetShardSource.
type FleetTierSource interface {
	FleetTiers() []FleetTier
}

// FleetReExport is a mid-tier re-exporter's counters: the upstream push
// health of one aggregator feeding another.
type FleetReExport struct {
	Region      string
	Upstream    string
	Level       int
	Pushes      int64
	DeltaPushes int64
	Heartbeats  int64
	FullPushes  int64
	Resyncs     int64
	Errors      int64
	SentBytes   int64
}

// FleetReExportSource reports a re-exporter's counters; fleet.ReExporter
// implements it. Attached separately from FleetSource because the
// re-exporter wraps the aggregator rather than being one.
type FleetReExportSource interface {
	FleetReExportStats() FleetReExport
}

// WithFleetReExport attaches a mid-tier re-exporter and returns the
// exporter. Scrapes then include the vscsistats_fleet_tier_reexport_*
// series.
func (e *Exporter) WithFleetReExport(src FleetReExportSource) *Exporter {
	e.fleetReExport = src
	return e
}

// WithFleet attaches a fleet aggregator and returns the exporter. Scrapes
// then include the vscsistats_fleet_* series: host liveness gauges, merged
// cluster counters, per-VM command counters, and the six paper histograms
// merged cluster-wide (bin-exact sums of every fresh host's bins).
func (e *Exporter) WithFleet(src FleetSource) *Exporter {
	e.fleet = src
	return e
}

// writeFleet emits the vscsistats_fleet_* series.
func (e *Exporter) writeFleet(p *promWriter) {
	if e.fleet == nil {
		return
	}
	hosts := e.fleet.FleetHosts()
	var stale int
	for _, h := range hosts {
		if h.Stale {
			stale++
		}
	}
	p.family("vscsistats_fleet_hosts", "gauge", "Hosts known to the fleet aggregator.")
	p.sample("vscsistats_fleet_hosts", "", strconv.Itoa(len(hosts)))
	p.family("vscsistats_fleet_hosts_stale", "gauge", "Known hosts past the liveness horizon (excluded from merges).")
	p.sample("vscsistats_fleet_hosts_stale", "", strconv.Itoa(stale))

	p.family("vscsistats_fleet_host_up", "gauge", "1 when the host's newest batch is within the liveness horizon.")
	for _, h := range hosts {
		v := "1"
		if h.Stale {
			v = "0"
		}
		p.sample("vscsistats_fleet_host_up", hostLabels(h.Host), v)
	}
	p.family("vscsistats_fleet_host_age_seconds", "gauge", "Age of the host's newest batch.")
	for _, h := range hosts {
		p.sample("vscsistats_fleet_host_age_seconds", hostLabels(h.Host), formatFloat(h.AgeSeconds))
	}
	p.family("vscsistats_fleet_host_snapshots", "gauge", "Virtual disks in the host's newest batch.")
	for _, h := range hosts {
		p.sample("vscsistats_fleet_host_snapshots", hostLabels(h.Host), strconv.Itoa(h.Snapshots))
	}
	p.family("vscsistats_fleet_host_batches_total", "counter", "Batches ingested from the host, retries included.")
	for _, h := range hosts {
		p.sample("vscsistats_fleet_host_batches_total", hostLabels(h.Host), strconv.FormatInt(h.Batches, 10))
	}

	if src, ok := e.fleet.(FleetShardSource); ok {
		writeFleetShards(p, src.FleetShards())
	}
	if src, ok := e.fleet.(FleetTierSource); ok {
		writeFleetTiers(p, src.FleetTiers())
	}
	if src, ok := e.fleet.(FleetLogSource); ok {
		if log, enabled := src.FleetLogStats(); enabled {
			writeFleetLog(p, log)
		}
	}

	cluster := e.fleet.FleetCluster()
	vms := e.fleet.FleetVMs()

	type counter struct {
		name, help string
		get        func(*core.Snapshot) int64
	}
	counters := []counter{
		{"vscsistats_fleet_commands_total", "Commands observed across all fresh hosts.", func(s *core.Snapshot) int64 { return s.Commands }},
		{"vscsistats_fleet_reads_total", "Reads observed across all fresh hosts.", func(s *core.Snapshot) int64 { return s.NumReads }},
		{"vscsistats_fleet_writes_total", "Writes observed across all fresh hosts.", func(s *core.Snapshot) int64 { return s.NumWrites }},
		{"vscsistats_fleet_read_bytes_total", "Bytes read across all fresh hosts.", func(s *core.Snapshot) int64 { return s.ReadBytes }},
		{"vscsistats_fleet_write_bytes_total", "Bytes written across all fresh hosts.", func(s *core.Snapshot) int64 { return s.WriteBytes }},
		{"vscsistats_fleet_errors_total", "Errored commands across all fresh hosts.", func(s *core.Snapshot) int64 { return s.Errors }},
	}
	for _, c := range counters {
		p.family(c.name, "counter", c.help)
		if cluster != nil {
			p.sample(c.name, "", strconv.FormatInt(c.get(cluster), 10))
		}
	}

	p.family("vscsistats_fleet_vm_commands_total", "counter", "Commands per VM merged across all fresh hosts.")
	for _, s := range vms {
		p.sample("vscsistats_fleet_vm_commands_total", `vm="`+escapeLabel(s.VM)+`"`, strconv.FormatInt(s.Commands, 10))
	}

	if cluster == nil {
		return
	}
	for _, fam := range workloadFamilies {
		name := "vscsistats_fleet" + strings.TrimPrefix(fam.name, "vscsistats")
		p.family(name, "histogram", "Cluster-wide merge: "+fam.help)
		classes := []core.Class{core.All, core.Reads, core.Writes}
		if fam.windowedOnly {
			classes = classes[:1]
		}
		for _, cl := range classes {
			h := cluster.Histogram(fam.metric, cl)
			if h == nil {
				continue
			}
			p.histogram(name, `class="`+cl.String()+`"`, h)
		}
	}
}

// writeFleetShards emits the vscsistats_fleet_shard_* series: the sharded
// aggregator's per-shard host counts, delta-protocol counters and merge
// cache hit rates, labelled shard="N".
func writeFleetShards(p *promWriter, shards []FleetShard) {
	type series struct {
		name, typ, help string
		get             func(FleetShard) int64
	}
	families := []series{
		{"vscsistats_fleet_shard_hosts", "gauge", "Hosts routed to the shard.",
			func(s FleetShard) int64 { return int64(s.Hosts) }},
		{"vscsistats_fleet_shard_hosts_stale", "gauge", "Shard hosts past the liveness horizon.",
			func(s FleetShard) int64 { return int64(s.StaleHosts) }},
		{"vscsistats_fleet_shard_batches_total", "counter", "Batches ingested by the shard.",
			func(s FleetShard) int64 { return s.Batches }},
		{"vscsistats_fleet_shard_deltas_applied_total", "counter", "Delta batches applied onto stored state.",
			func(s FleetShard) int64 { return s.DeltasApplied }},
		{"vscsistats_fleet_shard_resyncs_total", "counter", "Delta batches refused pending a full-state resync.",
			func(s FleetShard) int64 { return s.Resyncs }},
		{"vscsistats_fleet_shard_merge_cache_hits_total", "counter", "Scrapes served from the shard's memoized merge.",
			func(s FleetShard) int64 { return s.MergeCacheHits }},
		{"vscsistats_fleet_shard_merge_cache_misses_total", "counter", "Scrapes that re-merged the shard's hosts.",
			func(s FleetShard) int64 { return s.MergeCacheMisses }},
	}
	for _, f := range families {
		p.family(f.name, f.typ, f.help)
		for _, s := range shards {
			p.sample(f.name, `shard="`+strconv.Itoa(s.Index)+`"`, strconv.FormatInt(f.get(s), 10))
		}
	}
}

// writeFleetTiers emits the vscsistats_fleet_tier_* series: the
// aggregator's host set grouped by federation level, labelled level="N".
// A flat fleet exposes one level-0 row; a federated one shows each tier's
// host and folded-leaf counts, so a region dropping out of the global
// view is visible as a leaves dip at level 1.
func writeFleetTiers(p *promWriter, tiers []FleetTier) {
	type series struct {
		name, typ, help string
		get             func(FleetTier) int64
	}
	families := []series{
		{"vscsistats_fleet_tier_hosts", "gauge", "Hosts reporting at the federation level.",
			func(t FleetTier) int64 { return int64(t.Hosts) }},
		{"vscsistats_fleet_tier_hosts_stale", "gauge", "Level hosts past the liveness horizon.",
			func(t FleetTier) int64 { return int64(t.StaleHosts) }},
		{"vscsistats_fleet_tier_leaves", "gauge", "Leaf hosts folded into the level's entries.",
			func(t FleetTier) int64 { return int64(t.Leaves) }},
	}
	for _, f := range families {
		p.family(f.name, f.typ, f.help)
		for _, t := range tiers {
			p.sample(f.name, `level="`+strconv.Itoa(t.Level)+`"`, strconv.FormatInt(f.get(t), 10))
		}
	}
	p.family("vscsistats_fleet_tier_depth", "gauge", "Federation levels present in the host set.")
	p.sample("vscsistats_fleet_tier_depth", "", strconv.Itoa(len(tiers)))
}

// writeFleetReExport emits the vscsistats_fleet_tier_reexport_* series:
// the upstream push health of a mid-tier aggregator feeding another.
func (e *Exporter) writeFleetReExport(p *promWriter) {
	if e.fleetReExport == nil {
		return
	}
	st := e.fleetReExport.FleetReExportStats()
	labels := `region="` + escapeLabel(st.Region) + `"`
	p.family("vscsistats_fleet_tier_reexport_level", "gauge", "Federation level the re-exporter stamps on upstream frames.")
	p.sample("vscsistats_fleet_tier_reexport_level", labels, strconv.Itoa(st.Level))
	type series struct {
		name, help string
		value      int64
	}
	families := []series{
		{"vscsistats_fleet_tier_reexport_pushes_total", "Re-export frames delivered upstream.", st.Pushes},
		{"vscsistats_fleet_tier_reexport_delta_pushes_total", "Re-export frames delivered as interval deltas.", st.DeltaPushes},
		{"vscsistats_fleet_tier_reexport_heartbeats_total", "Liveness-only duplicate frames sent when nothing changed.", st.Heartbeats},
		{"vscsistats_fleet_tier_reexport_full_pushes_total", "Re-export frames delivered as full state.", st.FullPushes},
		{"vscsistats_fleet_tier_reexport_resyncs_total", "Upstream delta refusals answered with full state.", st.Resyncs},
		{"vscsistats_fleet_tier_reexport_errors_total", "Failed upstream delivery attempts.", st.Errors},
		{"vscsistats_fleet_tier_reexport_sent_bytes_total", "Wire bytes delivered upstream.", st.SentBytes},
	}
	for _, f := range families {
		p.family(f.name, "counter", f.help)
		p.sample(f.name, labels, strconv.FormatInt(f.value, 10))
	}
}

// writeFleetLog emits the vscsistats_fleet_log_* series: the aggregator's
// segment-log footprint and maintenance counters (append/fsync/rotation/
// compaction activity, retention drops, and the boot replay's recovery
// numbers).
func writeFleetLog(p *promWriter, log FleetLog) {
	type series struct {
		name, typ, help string
		value           int64
	}
	families := []series{
		{"vscsistats_fleet_log_segments", "gauge", "Live segment files in the aggregator's durability log.", int64(log.Segments)},
		{"vscsistats_fleet_log_bytes", "gauge", "Bytes held by the segment log.", log.Bytes},
		{"vscsistats_fleet_log_appends_total", "counter", "Frames appended to the segment log.", log.Appends},
		{"vscsistats_fleet_log_append_bytes_total", "counter", "Bytes appended to the segment log.", log.AppendBytes},
		{"vscsistats_fleet_log_append_errors_total", "counter", "Appends absorbed after an encode or I/O failure.", log.AppendErrors},
		{"vscsistats_fleet_log_fsyncs_total", "counter", "Batched fsyncs issued by the segment log.", log.Fsyncs},
		{"vscsistats_fleet_log_rotations_total", "counter", "Segment rotations.", log.Rotations},
		{"vscsistats_fleet_log_compactions_total", "counter", "Shard chains rewritten as one full-frame segment.", log.Compactions},
		{"vscsistats_fleet_log_segments_retired_total", "counter", "Sealed segments dropped by retention.", log.SegmentsRetired},
		{"vscsistats_fleet_log_frames_replayed_total", "counter", "Frames recovered by boot replay.", log.FramesReplayed},
		{"vscsistats_fleet_log_torn_tails_total", "counter", "Crash-torn tail frames truncated away at replay.", log.TornTails},
	}
	for _, f := range families {
		p.family(f.name, f.typ, f.help)
		p.sample(f.name, "", strconv.FormatInt(f.value, 10))
	}
}

func hostLabels(host string) string {
	return `host="` + escapeLabel(host) + `"`
}
