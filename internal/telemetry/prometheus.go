package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vscsistats/internal/core"
	"vscsistats/internal/histogram"
)

// Exporter serves a registry in the Prometheus text exposition format
// (version 0.0.4), hand-rolled on the standard library. One scrape walks
// Registry.List() — sorted by (vm, disk), so output is diffable — and
// emits, per virtual disk:
//
//   - command/byte/error counters and the enabled gauge,
//   - the six paper histograms as cumulative Prometheus histograms with a
//     class="all|reads|writes" label, the paper's irregular bin edges
//     reused verbatim as `le` bounds (including the negative seek bins),
//   - the collector's self-telemetry: observation/contention/drop
//     counters, the sampled ns/observe cost histogram and the snapshot
//     staleness gauge — Table 2 as a live metric,
//   - optionally (WithDiskStats) the vSCSI layer's issued/completed/
//     errored counters and the in-flight gauge.
//
// Counters reset when a collector is Reset; Prometheus treats that as an
// ordinary counter reset. All reads go through the concurrency-safe
// snapshot surfaces, so scraping while simulations issue commands is safe.
type Exporter struct {
	reg           *core.Registry
	disks         DiskStatsSource
	fleet         FleetSource
	fleetReExport FleetReExportSource
	fleetObs      FleetObsSource
	sim           SimSource
	scrapes  atomic.Int64
	// lastScrapeNs records the duration of the most recent scrape.
	lastScrapeNs atomic.Int64
	// nowNanos is the wall clock, injectable for tests.
	nowNanos func() int64
}

// NewExporter returns an exporter over the registry.
func NewExporter(reg *core.Registry) *Exporter {
	return &Exporter{reg: reg, nowNanos: func() int64 { return time.Now().UnixNano() }}
}

// WithDiskStats attaches a source of vSCSI-layer disk counters (e.g. a
// hypervisor.Host or ParallelSim) and returns the exporter.
func (e *Exporter) WithDiskStats(src DiskStatsSource) *Exporter {
	e.disks = src
	return e
}

// ServeHTTP implements GET /metrics.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet, http.MethodHead)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	if err := e.Write(w); err != nil {
		// Headers are gone; nothing useful left to do but log via the
		// error return of the underlying writer (client went away).
		return
	}
}

// scrapeRow is one virtual disk's gathered state.
type scrapeRow struct {
	vm, disk  string
	enabled   bool
	snap      *core.Snapshot
	self      *core.SelfSnapshot
	hasDisk   bool
	issued    uint64
	completed uint64
	errored   uint64
	inflight  int64
}

// Write emits one complete exposition to w.
func (e *Exporter) Write(w io.Writer) error {
	t0 := time.Now()
	e.scrapes.Add(1)

	var rows []scrapeRow
	for _, c := range e.reg.List() {
		row := scrapeRow{vm: c.VM(), disk: c.Disk(), enabled: c.Enabled()}
		// Order matters: read the self stats before Snapshot so the
		// staleness gauge reflects the previous observer, not this scrape.
		row.self = c.SelfStats()
		row.snap = c.Snapshot()
		if e.disks != nil {
			row.issued, row.completed, row.errored, row.inflight, row.hasDisk =
				e.disks.DiskCounters(c.VM(), c.Disk())
		}
		rows = append(rows, row)
	}

	p := &promWriter{w: bufio.NewWriter(w)}
	e.writeCounters(p, rows)
	e.writeDiskCounters(p, rows)
	e.writeWorkloadHistograms(p, rows)
	e.writeSelf(p, rows)
	e.writeFleet(p)
	e.writeFleetReExport(p)
	e.writeFleetObs(p)
	e.writeSim(p)

	p.family("vscsistats_collectors", "gauge", "Collectors registered in the control plane.")
	p.sample("vscsistats_collectors", "", strconv.Itoa(len(rows)))
	p.family("vscsistats_scrapes_total", "counter", "Scrapes served by this exporter.")
	p.sample("vscsistats_scrapes_total", "", strconv.FormatInt(e.scrapes.Load(), 10))
	p.family("vscsistats_last_scrape_duration_seconds", "gauge", "Wall-clock duration of the previous scrape.")
	if last := e.lastScrapeNs.Load(); last > 0 {
		p.sample("vscsistats_last_scrape_duration_seconds", "", formatFloat(float64(last)/1e9))
	} else {
		p.sample("vscsistats_last_scrape_duration_seconds", "", "0")
	}

	err := p.flush()
	e.lastScrapeNs.Store(time.Since(t0).Nanoseconds())
	return err
}

func (e *Exporter) writeCounters(p *promWriter, rows []scrapeRow) {
	type counter struct {
		name, help string
		get        func(*core.Snapshot) int64
	}
	counters := []counter{
		{"vscsistats_commands_total", "Block I/O commands observed by the collector.", func(s *core.Snapshot) int64 { return s.Commands }},
		{"vscsistats_reads_total", "Read commands observed.", func(s *core.Snapshot) int64 { return s.NumReads }},
		{"vscsistats_writes_total", "Write commands observed.", func(s *core.Snapshot) int64 { return s.NumWrites }},
		{"vscsistats_read_bytes_total", "Bytes read by observed commands.", func(s *core.Snapshot) int64 { return s.ReadBytes }},
		{"vscsistats_write_bytes_total", "Bytes written by observed commands.", func(s *core.Snapshot) int64 { return s.WriteBytes }},
		{"vscsistats_errors_total", "Commands completed with a status other than GOOD.", func(s *core.Snapshot) int64 { return s.Errors }},
	}
	for _, c := range counters {
		p.family(c.name, "counter", c.help)
		for _, row := range rows {
			var v int64
			if row.snap != nil {
				v = c.get(row.snap)
			}
			p.sample(c.name, vmDiskLabels(row.vm, row.disk), strconv.FormatInt(v, 10))
		}
	}
	p.family("vscsistats_collector_enabled", "gauge", "1 when the characterization service is recording this disk.")
	for _, row := range rows {
		v := "0"
		if row.enabled {
			v = "1"
		}
		p.sample("vscsistats_collector_enabled", vmDiskLabels(row.vm, row.disk), v)
	}
}

func (e *Exporter) writeDiskCounters(p *promWriter, rows []scrapeRow) {
	if e.disks == nil {
		return
	}
	type counter struct {
		name, help string
		get        func(scrapeRow) uint64
	}
	counters := []counter{
		{"vscsistats_disk_issued_total", "Commands issued at the vSCSI layer (control commands included).", func(r scrapeRow) uint64 { return r.issued }},
		{"vscsistats_disk_completed_total", "Commands completed at the vSCSI layer.", func(r scrapeRow) uint64 { return r.completed }},
		{"vscsistats_disk_errored_total", "vSCSI completions with a status other than GOOD.", func(r scrapeRow) uint64 { return r.errored }},
	}
	for _, c := range counters {
		p.family(c.name, "counter", c.help)
		for _, row := range rows {
			if !row.hasDisk {
				continue
			}
			p.sample(c.name, vmDiskLabels(row.vm, row.disk), strconv.FormatUint(c.get(row), 10))
		}
	}
	p.family("vscsistats_disk_inflight", "gauge", "Commands issued but not yet completed at the vSCSI layer.")
	for _, row := range rows {
		if !row.hasDisk {
			continue
		}
		p.sample("vscsistats_disk_inflight", vmDiskLabels(row.vm, row.disk), strconv.FormatInt(row.inflight, 10))
	}
}

// workloadFamilies maps the paper's metric families to Prometheus names.
var workloadFamilies = []struct {
	metric core.Metric
	name   string
	help   string
	// windowedOnly marks the one family with no read/write breakdown.
	windowedOnly bool
}{
	{core.MetricIOLength, "vscsistats_io_length_bytes", "I/O length histogram (paper Figures 2-5 (a)/(b)).", false},
	{core.MetricSeekDistance, "vscsistats_seek_distance_sectors", "Signed seek distance between consecutive commands, in 512-byte sectors.", false},
	{core.MetricSeekWindowed, "vscsistats_seek_distance_windowed_sectors", "Minimum-magnitude seek distance to any of the last N=16 commands.", true},
	{core.MetricOutstanding, "vscsistats_outstanding_ios", "Outstanding I/Os observed at command arrival.", false},
	{core.MetricLatency, "vscsistats_io_latency_microseconds", "Device latency from issue to completion, in microseconds.", false},
	{core.MetricInterarrival, "vscsistats_io_interarrival_microseconds", "Inter-arrival time between consecutive commands, in microseconds.", false},
}

func (e *Exporter) writeWorkloadHistograms(p *promWriter, rows []scrapeRow) {
	for _, fam := range workloadFamilies {
		p.family(fam.name, "histogram", fam.help)
		for _, row := range rows {
			if row.snap == nil {
				continue
			}
			classes := []core.Class{core.All, core.Reads, core.Writes}
			if fam.windowedOnly {
				classes = classes[:1]
			}
			for _, cl := range classes {
				h := row.snap.Histogram(fam.metric, cl)
				if h == nil {
					continue
				}
				p.histogram(fam.name, classLabels(row.vm, row.disk, cl.String()), h)
			}
		}
	}
}

func (e *Exporter) writeSelf(p *promWriter, rows []scrapeRow) {
	type counter struct {
		name, help string
		get        func(*core.SelfSnapshot) int64
	}
	counters := []counter{
		{"vscsistats_self_observations_total", "Enabled fast-path calls (issue + complete) into the collector.", func(s *core.SelfSnapshot) int64 { return s.Observations }},
		{"vscsistats_self_samples_total", "Observations that were wall-clock timed (1 in 64).", func(s *core.SelfSnapshot) int64 { return s.Sampled }},
		{"vscsistats_self_contended_total", "Fast-path stream-mutex collisions between issuing goroutines.", func(s *core.SelfSnapshot) int64 { return s.Contended }},
		{"vscsistats_self_dropped_total", "Observations lost to the Enable race window.", func(s *core.SelfSnapshot) int64 { return s.Dropped }},
		{"vscsistats_self_snapshots_total", "Snapshot() calls that returned data.", func(s *core.SelfSnapshot) int64 { return s.Snapshots }},
	}
	for _, c := range counters {
		p.family(c.name, "counter", c.help)
		for _, row := range rows {
			p.sample(c.name, vmDiskLabels(row.vm, row.disk), strconv.FormatInt(c.get(row.self), 10))
		}
	}

	p.family("vscsistats_self_snapshot_staleness_seconds", "gauge",
		"Age of the most recent snapshot of this collector (absent until one is taken).")
	now := e.nowNanos()
	for _, row := range rows {
		last := row.self.LastSnapshotUnixNano
		if last == 0 {
			continue
		}
		age := float64(now-last) / 1e9
		if age < 0 {
			age = 0
		}
		p.sample("vscsistats_self_snapshot_staleness_seconds", vmDiskLabels(row.vm, row.disk), formatFloat(age))
	}

	p.family("vscsistats_self_observe_nanoseconds", "histogram",
		"Sampled wall-clock cost of one fast-path observation (the live Table 2 CPU row).")
	for _, row := range rows {
		p.histogram("vscsistats_self_observe_nanoseconds", vmDiskLabels(row.vm, row.disk), row.self.ObserveNs)
	}
}

// promWriter accumulates exposition lines, capturing the first write error.
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// family emits the HELP and TYPE header of one metric family.
func (p *promWriter) family(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// sample emits one sample line; labels is a pre-rendered `k="v",...` list
// (empty for unlabelled samples).
func (p *promWriter) sample(name, labels, value string) {
	if labels == "" {
		p.printf("%s %s\n", name, value)
		return
	}
	p.printf("%s{%s} %s\n", name, labels, value)
}

// histogram emits the cumulative bucket/sum/count triple of one snapshot.
// The +Inf bucket and _count use the running bucket sum rather than the
// snapshot's Total so the series is internally consistent even when
// concurrent inserts tear the copy (Prometheus requires bucket <= bucket
// and +Inf == count). The striped histogram's Snapshot derives Total from
// the merged per-bin counts, so today cum always equals h.Total; keeping
// the running sum makes this emitter safe against any snapshot source.
// Per-bin counts are merged from per-stripe atomics, each of which only
// grows, so successive scrapes of the same stream stay monotone per bucket
// — the property Prometheus rate() and histogram_quantile() rely on.
func (p *promWriter) histogram(name, baseLabels string, h *histogram.Snapshot) {
	var cum int64
	for i, edge := range h.Edges {
		cum += h.Counts[i]
		p.sample(name+"_bucket", baseLabels+`,le="`+strconv.FormatInt(edge, 10)+`"`, strconv.FormatInt(cum, 10))
	}
	cum += h.Counts[len(h.Edges)]
	p.sample(name+"_bucket", baseLabels+`,le="+Inf"`, strconv.FormatInt(cum, 10))
	p.sample(name+"_sum", baseLabels, strconv.FormatInt(h.Sum, 10))
	p.sample(name+"_count", baseLabels, strconv.FormatInt(cum, 10))
}

func (p *promWriter) flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

func vmDiskLabels(vm, disk string) string {
	return `vm="` + escapeLabel(vm) + `",disk="` + escapeLabel(disk) + `"`
}

func classLabels(vm, disk, class string) string {
	return vmDiskLabels(vm, disk) + `,class="` + escapeLabel(class) + `"`
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a gauge value compactly.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
