// Package promtest is a strict, test-only parser for the Prometheus
// text exposition format (version 0.0.4), shared by every package that
// scrapes the exporter in its tests. It enforces what a real Prometheus
// server would require — and a few things it merely tolerates:
//
//   - every sample's family carries a # HELP and a # TYPE line *before*
//     the first sample of that family;
//   - metric and label names are well-formed, label values use the
//     exposition escapes (\\, \", \n) correctly;
//   - no duplicate series (same name + label set twice in one scrape);
//   - histogram families are complete and internally consistent: le
//     bounds strictly increasing, bucket counts non-decreasing
//     (cumulative), a final +Inf bucket exactly equal to _count, and a
//     _sum per series.
//
// Funnel every test scrape through Parse so a malformed exposition
// fails loudly, wherever it is scraped from.
package promtest

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// SeriesKey canonicalizes name + labels for duplicate detection.
func (s Sample) SeriesKey() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%q", k, s.Labels[k])
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// scanLabels parses `{k="v",...}` starting at text[0] == '{'. It returns
// the labels and the remainder after the closing brace.
func scanLabels(text string) (map[string]string, string, error) {
	labels := map[string]string{}
	i := 1 // skip '{'
	for {
		if i >= len(text) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if text[i] == '}' {
			return labels, text[i+1:], nil
		}
		start := i
		for i < len(text) && text[i] != '=' {
			i++
		}
		if i >= len(text) {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := text[start:i]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		i++ // '='
		if i >= len(text) || text[i] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", name)
		}
		i++ // opening quote
		var val strings.Builder
		for {
			if i >= len(text) {
				return nil, "", fmt.Errorf("unterminated value for label %q", name)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("raw newline in value for label %q", name)
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return nil, "", fmt.Errorf("dangling escape in label %q", name)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("invalid escape \\%c in label %q", text[i+1], name)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

// Parse parses one exposition strictly, failing the test on any
// violation, and returns the samples in document order.
func Parse(t testing.TB, text string) []Sample {
	t.Helper()
	types := map[string]string{}
	helps := map[string]bool{}
	sampledFamilies := map[string]bool{}
	seen := map[string]int{}
	var samples []Sample

	for lineNo, line := range strings.Split(text, "\n") {
		ln := lineNo + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				t.Fatalf("line %d: bad HELP metric name %q", ln, name)
			}
			if helps[name] {
				t.Fatalf("line %d: duplicate HELP for %q", ln, name)
			}
			if sampledFamilies[name] {
				t.Fatalf("line %d: HELP for %q after its samples", ln, name)
			}
			helps[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln, line)
			}
			name, typ := fields[0], fields[1]
			if !validMetricName(name) {
				t.Fatalf("line %d: bad TYPE metric name %q", ln, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln, typ)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln, name)
			}
			if sampledFamilies[name] {
				t.Fatalf("line %d: TYPE for %q after its samples", ln, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		// Sample line: name[{labels}] value [timestamp]
		i := 0
		for i < len(line) && line[i] != '{' && line[i] != ' ' {
			i++
		}
		name := line[:i]
		if !validMetricName(name) {
			t.Fatalf("line %d: bad metric name %q", ln, name)
		}
		labels := map[string]string{}
		rest := line[i:]
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = scanLabels(rest)
			if err != nil {
				t.Fatalf("line %d: %v in %q", ln, err, line)
			}
		}
		rest = strings.TrimSpace(rest)
		valStr, _, _ := strings.Cut(rest, " ")
		value, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln, valStr, err)
		}

		// Resolve the family and require its HELP and TYPE to precede
		// the sample.
		family := name
		typ, declared := types[name]
		if !declared {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && (types[base] == "histogram" || types[base] == "summary") {
					family, typ, declared = base, types[base], true
					break
				}
			}
		}
		if !declared {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln, name)
		}
		if !helps[family] {
			t.Fatalf("line %d: sample %q (family %q) has no preceding HELP", ln, name, family)
		}
		sampledFamilies[family] = true
		if typ == "counter" && value < 0 {
			t.Fatalf("line %d: negative counter %s = %v", ln, name, value)
		}
		if _, isBucket := labels["le"]; isBucket && !(typ == "histogram" && strings.HasSuffix(name, "_bucket")) {
			t.Fatalf("line %d: 'le' label outside a histogram bucket (%s)", ln, name)
		}

		s := Sample{Name: name, Labels: labels, Value: value}
		key := s.SeriesKey()
		if prev, dup := seen[key]; dup {
			t.Fatalf("line %d: duplicate series %s (first at line %d)", ln, key, prev)
		}
		seen[key] = ln
		samples = append(samples, s)
	}

	CheckHistograms(t, types, samples)
	return samples
}

// CheckHistograms verifies every histogram family is cumulative,
// ordered, and complete. Parse calls it on everything it returns;
// exported for callers that assemble samples another way.
func CheckHistograms(t testing.TB, types map[string]string, samples []Sample) {
	t.Helper()
	type hist struct {
		les     []float64
		buckets []float64
		sum     *float64
		count   *float64
	}
	groups := map[string]*hist{}
	get := func(family string, s Sample) *hist {
		base := Sample{Name: family, Labels: map[string]string{}}
		for k, v := range s.Labels {
			if k != "le" {
				base.Labels[k] = v
			}
		}
		key := base.SeriesKey()
		h := groups[key]
		if h == nil {
			h = &hist{}
			groups[key] = h
		}
		return h
	}
	for _, s := range samples {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			family := strings.TrimSuffix(s.Name, suffix)
			if family == s.Name || types[family] != "histogram" {
				continue
			}
			h := get(family, s)
			switch suffix {
			case "_bucket":
				le, ok := s.Labels["le"]
				if !ok {
					t.Fatalf("histogram bucket %s without le label", s.Name)
				}
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("histogram %s: bad le %q", s.Name, le)
				}
				h.les = append(h.les, f)
				h.buckets = append(h.buckets, s.Value)
			case "_sum":
				v := s.Value
				h.sum = &v
			case "_count":
				v := s.Value
				h.count = &v
			}
			break
		}
	}

	for key, h := range groups {
		if len(h.les) == 0 {
			t.Errorf("histogram %s has no buckets", key)
			continue
		}
		for i := 1; i < len(h.les); i++ {
			if !(h.les[i] > h.les[i-1]) {
				t.Errorf("histogram %s: le bounds not strictly increasing (%v then %v)", key, h.les[i-1], h.les[i])
			}
			if h.buckets[i] < h.buckets[i-1] {
				t.Errorf("histogram %s: buckets not cumulative (%v after %v at le=%v)",
					key, h.buckets[i], h.buckets[i-1], h.les[i])
			}
		}
		if last := h.les[len(h.les)-1]; !math.IsInf(last, +1) {
			t.Errorf("histogram %s: final bucket le=%v, want +Inf", key, last)
		}
		if h.count == nil {
			t.Errorf("histogram %s: missing _count", key)
		} else if inf := h.buckets[len(h.buckets)-1]; *h.count != inf {
			t.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, *h.count)
		}
		if h.sum == nil {
			t.Errorf("histogram %s: missing _sum", key)
		}
	}
}

// Find returns the first sample matching name and all given label
// pairs, or fails the test.
func Find(t testing.TB, samples []Sample, name string, labelPairs ...string) Sample {
	t.Helper()
	if len(labelPairs)%2 != 0 {
		t.Fatalf("promtest.Find: odd label pairs")
	}
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for i := 0; i < len(labelPairs); i += 2 {
			if s.Label(labelPairs[i]) != labelPairs[i+1] {
				continue next
			}
		}
		return s
	}
	t.Fatalf("no sample %s{%v}", name, labelPairs)
	return Sample{}
}
