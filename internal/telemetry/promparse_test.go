package telemetry

import (
	"testing"

	"vscsistats/internal/telemetry/promtest"
)

// The strict exposition parser lives in promtest (exported so packages
// that scrape the exporter end-to-end — internal/fleet — reuse it).
// These wrappers keep this package's tests on their historical helper
// names; every scrape here still funnels through the full strictness:
// HELP and TYPE before samples, well-formed names and escapes, no
// duplicate series, and complete cumulative histograms.

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// label returns a label value ("" when absent).
func (s promSample) label(k string) string { return s.labels[k] }

func parseProm(t *testing.T, text string) []promSample {
	t.Helper()
	parsed := promtest.Parse(t, text)
	samples := make([]promSample, 0, len(parsed))
	for _, s := range parsed {
		samples = append(samples, promSample{name: s.Name, labels: s.Labels, value: s.Value})
	}
	return samples
}

// findSample returns the first sample matching name and all given label
// pairs, or fails the test.
func findSample(t *testing.T, samples []promSample, name string, labelPairs ...string) promSample {
	t.Helper()
	if len(labelPairs)%2 != 0 {
		t.Fatalf("findSample: odd label pairs")
	}
next:
	for _, s := range samples {
		if s.name != name {
			continue
		}
		for i := 0; i < len(labelPairs); i += 2 {
			if s.label(labelPairs[i]) != labelPairs[i+1] {
				continue next
			}
		}
		return s
	}
	t.Fatalf("no sample %s{%v}", name, labelPairs)
	return promSample{}
}
