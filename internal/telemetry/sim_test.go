package telemetry

import (
	"strings"
	"testing"

	"vscsistats/internal/core"
)

// simSourceFunc adapts a function to SimSource for tests.
type simSourceFunc func() SimWorld

func (f simSourceFunc) SimWorld() SimWorld { return f() }

// TestMetricsSimSeries runs the exposition with a simulator attached
// through the strict parser and checks every vscsistats_vscsim_* series
// carries the world state verbatim.
func TestMetricsSimSeries(t *testing.T) {
	world := SimWorld{
		Hosts: 1000, VMs: 8000, Disks: 9000,
		VirtualSeconds: 1200, WallSeconds: 12, Speed: 100,
		Ops: 123456, Bytes: 1 << 30, Errors: 7, Throttled: 42,
		Pushes: 4000, PushErrors: 3,
	}
	exp := NewExporter(core.NewRegistry()).WithSim(simSourceFunc(func() SimWorld { return world }))
	var sb strings.Builder
	if err := exp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, sb.String())
	want := map[string]float64{
		"vscsistats_vscsim_hosts":             1000,
		"vscsistats_vscsim_vms":               8000,
		"vscsistats_vscsim_disks":             9000,
		"vscsistats_vscsim_virtual_seconds":   1200,
		"vscsistats_vscsim_wall_seconds":      12,
		"vscsistats_vscsim_speed":             100,
		"vscsistats_vscsim_ops_total":         123456,
		"vscsistats_vscsim_bytes_total":       1 << 30,
		"vscsistats_vscsim_errors_total":      7,
		"vscsistats_vscsim_throttled_total":   42,
		"vscsistats_vscsim_pushes_total":      4000,
		"vscsistats_vscsim_push_errors_total": 3,
	}
	for name, v := range want {
		if s := findSample(t, samples, name); s.value != v {
			t.Errorf("%s = %v, want %v", name, s.value, v)
		}
	}
}

// TestMetricsSimAbsent: without WithSim no vscsim series leak into the
// exposition.
func TestMetricsSimAbsent(t *testing.T) {
	exp := NewExporter(core.NewRegistry())
	var sb strings.Builder
	if err := exp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "vscsim") {
		t.Error("exposition mentions vscsim without a simulator attached")
	}
}
