package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// testRig is one deterministic single-engine world observed by a registry.
type testRig struct {
	eng *simclock.Engine
	d   *vscsi.Disk
	col *core.Collector
	reg *core.Registry
}

func newRig(t *testing.T, vm, disk string) *testRig {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(simclock.Millisecond, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: vm, Name: disk, CapacitySectors: 1 << 20})
	col := core.NewCollector(vm, disk)
	d.AddObserver(col)
	reg := core.NewRegistry()
	reg.Register(col)
	return &testRig{eng: eng, d: d, col: col, reg: reg}
}

// issue runs reads 4 KB reads and writes 4 KB writes to completion.
func (rig *testRig) issue(t *testing.T, reads, writes int) {
	t.Helper()
	for i := 0; i < reads; i++ {
		if _, err := rig.d.Issue(scsi.Read(uint64(i*8)%(1<<19), 8), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < writes; i++ {
		if _, err := rig.d.Issue(scsi.Write(uint64(i*16)%(1<<19), 8), nil); err != nil {
			t.Fatal(err)
		}
	}
	rig.eng.Run()
}

// TestMetricsExposition is the golden test: a deterministic workload, one
// scrape, strict parse, and value checks for every metric family.
func TestMetricsExposition(t *testing.T) {
	rig := newRig(t, "vm1", "scsi0:0")
	rig.col.Enable()
	rig.issue(t, 30, 10)

	exp := NewExporter(rig.reg)
	srv := httptest.NewServer(exp)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	text := sb.String()
	samples := parseProm(t, text)

	check := func(name string, want float64, labelPairs ...string) {
		t.Helper()
		if s := findSample(t, samples, name, labelPairs...); s.value != want {
			t.Errorf("%s{%v} = %v, want %v", name, labelPairs, s.value, want)
		}
	}
	check("vscsistats_commands_total", 40, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_reads_total", 30, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_writes_total", 10, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_read_bytes_total", 30*4096, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_write_bytes_total", 10*4096, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_errors_total", 0, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_collector_enabled", 1, "vm", "vm1", "disk", "scsi0:0")
	check("vscsistats_collectors", 1)

	// The six paper histograms, with the class split adding up.
	for _, fam := range []string{
		"vscsistats_io_length_bytes",
		"vscsistats_seek_distance_sectors",
		"vscsistats_outstanding_ios",
		"vscsistats_io_latency_microseconds",
		"vscsistats_io_interarrival_microseconds",
	} {
		all := findSample(t, samples, fam+"_count", "class", "all")
		reads := findSample(t, samples, fam+"_count", "class", "reads")
		writes := findSample(t, samples, fam+"_count", "class", "writes")
		if all.value != reads.value+writes.value {
			t.Errorf("%s: all %v != reads %v + writes %v", fam, all.value, reads.value, writes.value)
		}
	}
	// Every completed command contributes one latency observation.
	check("vscsistats_io_latency_microseconds_count", 40, "class", "all")
	// Latency is a constant 1 ms, so the sum is exact.
	check("vscsistats_io_latency_microseconds_sum", 40*1000, "class", "all")
	// The windowed seek histogram has no class split.
	if s := findSample(t, samples, "vscsistats_seek_distance_windowed_sectors_count", "vm", "vm1"); s.label("class") != "all" {
		t.Errorf("windowed seek class = %q, want all only", s.label("class"))
	}
	for _, s := range samples {
		if s.name == "vscsistats_seek_distance_windowed_sectors_count" && s.label("class") != "all" {
			t.Errorf("windowed seek exported class %q", s.label("class"))
		}
	}

	// Self-telemetry: issue+complete per command, 1-in-64 sampled.
	check("vscsistats_self_observations_total", 80, "vm", "vm1")
	check("vscsistats_self_samples_total", 1, "vm", "vm1") // 80/64 = 1
	obs := findSample(t, samples, "vscsistats_self_observe_nanoseconds_count", "vm", "vm1")
	if obs.value != 1 {
		t.Errorf("observe histogram count = %v, want 1", obs.value)
	}
	// Self-telemetry is read before the scrape's own Snapshot (so staleness
	// measures the previous observer), hence the counter lags by one: the
	// first scrape still reports zero prior snapshots.
	check("vscsistats_self_snapshots_total", 0, "vm", "vm1")
	findSample(t, samples, "vscsistats_scrapes_total")

	// A second scrape must show the staleness gauge (absent above: the
	// first scrape took the first-ever snapshot) and a bumped scrape count.
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	for {
		n, err := resp2.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	resp2.Body.Close()
	samples2 := parseProm(t, sb.String())
	if s := findSample(t, samples2, "vscsistats_scrapes_total"); s.value != 2 {
		t.Errorf("scrapes_total = %v, want 2", s.value)
	}
	if s := findSample(t, samples2, "vscsistats_self_snapshot_staleness_seconds", "vm", "vm1"); s.value < 0 {
		t.Errorf("staleness = %v, want >= 0", s.value)
	}
	if s := findSample(t, samples2, "vscsistats_self_snapshots_total", "vm", "vm1"); s.value != 1 {
		t.Errorf("snapshots_total = %v, want 1 (the first scrape's)", s.value)
	}
}

// TestMetricsNeverEnabled: a registered but never-enabled collector still
// exports its identity (zero counters, enabled=0) without histograms, and
// the exposition stays valid.
func TestMetricsNeverEnabled(t *testing.T) {
	rig := newRig(t, "cold", "d0")
	exp := NewExporter(rig.reg)
	var sb strings.Builder
	if err := exp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, sb.String())
	if s := findSample(t, samples, "vscsistats_collector_enabled", "vm", "cold"); s.value != 0 {
		t.Errorf("enabled = %v", s.value)
	}
	if s := findSample(t, samples, "vscsistats_commands_total", "vm", "cold"); s.value != 0 {
		t.Errorf("commands = %v", s.value)
	}
	for _, s := range samples {
		if strings.HasPrefix(s.name, "vscsistats_io_length_bytes") {
			t.Errorf("never-enabled collector exported workload histogram %s", s.name)
		}
	}
}

// TestMetricsLabelEscaping round-trips a hostile VM name through the
// exposition: quote, backslash and newline must come back intact via the
// strict parser's unescaper.
func TestMetricsLabelEscaping(t *testing.T) {
	evil := "vm\"quote\\slash\nline"
	reg := core.NewRegistry()
	reg.Register(core.NewCollector(evil, "d\\0"))
	exp := NewExporter(reg)
	var sb strings.Builder
	if err := exp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, sb.String())
	s := findSample(t, samples, "vscsistats_collector_enabled")
	if s.label("vm") != evil {
		t.Errorf("vm label round-trip: %q != %q", s.label("vm"), evil)
	}
	if s.label("disk") != "d\\0" {
		t.Errorf("disk label round-trip: %q", s.label("disk"))
	}
}

// TestMetricsDiskStats: with a DiskStatsSource attached, the vSCSI-layer
// counters appear and match the disk's atomics.
func TestMetricsDiskStats(t *testing.T) {
	rig := newRig(t, "vm1", "scsi0:0")
	rig.col.Enable()
	rig.issue(t, 5, 3)

	src := diskStatsFunc(func(vm, disk string) (uint64, uint64, uint64, int64, bool) {
		if vm != "vm1" || disk != "scsi0:0" {
			return 0, 0, 0, 0, false
		}
		return rig.d.Issued(), rig.d.Completed(), rig.d.Errored(), int64(rig.d.Inflight()), true
	})
	exp := NewExporter(rig.reg).WithDiskStats(src)
	var sb strings.Builder
	if err := exp.Write(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, sb.String())
	if s := findSample(t, samples, "vscsistats_disk_issued_total", "vm", "vm1"); s.value != 8 {
		t.Errorf("issued = %v, want 8", s.value)
	}
	if s := findSample(t, samples, "vscsistats_disk_completed_total", "vm", "vm1"); s.value != 8 {
		t.Errorf("completed = %v, want 8", s.value)
	}
	if s := findSample(t, samples, "vscsistats_disk_inflight", "vm", "vm1"); s.value != 0 {
		t.Errorf("inflight = %v, want 0", s.value)
	}
}

// diskStatsFunc adapts a function to DiskStatsSource for tests.
type diskStatsFunc func(vm, disk string) (uint64, uint64, uint64, int64, bool)

func (f diskStatsFunc) DiskCounters(vm, disk string) (uint64, uint64, uint64, int64, bool) {
	return f(vm, disk)
}

// TestMetricsMethodNotAllowed: non-GET gets 405 with an Allow header and a
// JSON error body.
func TestMetricsMethodNotAllowed(t *testing.T) {
	exp := NewExporter(core.NewRegistry())
	rec := httptest.NewRecorder()
	exp.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("code = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow = %q", allow)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"error"`) {
		t.Errorf("body = %q", rec.Body.String())
	}
}
