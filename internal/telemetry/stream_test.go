package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func (s *Streamer) subscriberCount() int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return len(s.subs)
}

func waitForSubscribers(t *testing.T, s *Streamer, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.subscriberCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamerSeries: deterministic ticks produce per-interval deltas, the
// ring stays bounded, and the series endpoint serves them with optional
// histograms.
func TestStreamerSeries(t *testing.T) {
	rig := newRig(t, "vm1", "scsi0:0")
	rig.col.Enable()
	s := NewStreamer(rig.reg, time.Second, 3)

	rig.issue(t, 10, 0)
	s.Tick(time.Unix(100, 0))
	rig.issue(t, 5, 2)
	s.Tick(time.Unix(101, 0))

	points := s.Series("vm1", "scsi0:0")
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Delta.Commands != 10 || points[1].Delta.Commands != 7 {
		t.Errorf("deltas = %d, %d; want 10, 7", points[0].Delta.Commands, points[1].Delta.Commands)
	}
	if points[1].Delta.NumWrites != 2 {
		t.Errorf("write delta = %d", points[1].Delta.NumWrites)
	}

	// Ring depth 3: five ticks keep the last three.
	for i := 0; i < 3; i++ {
		s.Tick(time.Unix(int64(102+i), 0))
	}
	points = s.Series("vm1", "scsi0:0")
	if len(points) != 3 {
		t.Fatalf("ring grew past depth: %d", len(points))
	}
	if points[0].Seq != 3 || points[2].Seq != 5 {
		t.Errorf("ring seqs = %d..%d, want 3..5", points[0].Seq, points[2].Seq)
	}

	// HTTP: full series with a delta histogram attached.
	req := httptest.NewRequest(http.MethodGet, "/disks/vm1/scsi0:0/series?metric=ioLength&class=reads&n=3", nil)
	rec := httptest.NewRecorder()
	s.ServeSeries(rec, req, "vm1", "scsi0:0")
	if rec.Code != 200 {
		t.Fatalf("series: %d %s", rec.Code, rec.Body.String())
	}
	var resp seriesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Metric != "ioLength" || resp.Class != "reads" || len(resp.Points) != 3 {
		t.Errorf("response: metric=%q class=%q points=%d", resp.Metric, resp.Class, len(resp.Points))
	}
	for _, p := range resp.Points {
		if p.Histogram == nil {
			t.Errorf("point %d missing histogram", p.Seq)
		}
	}

	// Error paths: unknown disk, bad metric, bad class, bad method.
	rec = httptest.NewRecorder()
	s.ServeSeries(rec, httptest.NewRequest(http.MethodGet, "/x", nil), "ghost", "d")
	if rec.Code != http.StatusNotFound || rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("unknown disk: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	rec = httptest.NewRecorder()
	s.ServeSeries(rec, httptest.NewRequest(http.MethodGet, "/x?metric=bogus", nil), "vm1", "scsi0:0")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad metric: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeSeries(rec, httptest.NewRequest(http.MethodGet, "/x?class=bogus", nil), "vm1", "scsi0:0")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad class: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeSeries(rec, httptest.NewRequest(http.MethodPost, "/x", nil), "vm1", "scsi0:0")
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET" {
		t.Errorf("bad method: %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
}

// TestStreamerWatchSSE is the SSE smoke test: subscribe over real HTTP,
// drive one deterministic tick, and decode the pushed event.
func TestStreamerWatchSSE(t *testing.T) {
	rig := newRig(t, "vm1", "scsi0:0")
	rig.col.Enable()
	s := NewStreamer(rig.reg, time.Second, 4)
	t.Cleanup(s.Stop)

	srv := httptest.NewServer(http.HandlerFunc(s.ServeWatch))
	t.Cleanup(srv.Close)

	type sse struct {
		event string
		data  string
	}
	got := make(chan sse, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("Content-Type = %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		var ev sse
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case line == "" && ev.data != "":
				got <- ev
				return
			}
		}
		errc <- sc.Err()
	}()

	waitForSubscribers(t, s, 1)
	rig.issue(t, 12, 4)
	s.Tick(time.Unix(200, 0))

	select {
	case err := <-errc:
		t.Fatalf("client: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no SSE event within 10s")
	case ev := <-got:
		if ev.event != "interval" {
			t.Errorf("event = %q", ev.event)
		}
		var w watchEvent
		if err := json.Unmarshal([]byte(ev.data), &w); err != nil {
			t.Fatalf("event data: %v in %q", err, ev.data)
		}
		if len(w.Disks) != 1 || w.Disks[0].Commands != 16 || w.Disks[0].Reads != 12 {
			t.Errorf("event: %+v", w)
		}
		if w.Disks[0].MeanLatencyMicros <= 0 {
			t.Errorf("mean latency = %v", w.Disks[0].MeanLatencyMicros)
		}
	}

	// A slow (never-draining) subscriber must not block ticks: after the
	// buffer fills, events are dropped and counted.
	ch := s.subscribe()
	defer s.unsubscribe(ch)
	for i := 0; i < cap(ch)+5; i++ {
		s.Tick(time.Unix(int64(300+i), 0))
	}
	if s.Dropped() == 0 {
		t.Error("slow subscriber never dropped an event")
	}

	// Method guard.
	rec := httptest.NewRecorder()
	s.ServeWatch(rec, httptest.NewRequest(http.MethodDelete, "/watch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /watch = %d", rec.Code)
	}
}
