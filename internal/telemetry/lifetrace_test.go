package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func mkReq(id int, vm, disk string, issue, complete simclock.Time) *vscsi.Request {
	return &vscsi.Request{
		ID:           uint64(id),
		VM:           vm,
		Disk:         disk,
		Cmd:          scsi.Read(uint64(id)*8, 8),
		IssueTime:    issue,
		CompleteTime: complete,
		Status:       scsi.StatusGood,
	}
}

// TestLifecycleRingWraparound: a ring of capacity 4 fed 10 events keeps
// exactly the last 4, oldest first, while Total counts all 10.
func TestLifecycleRingWraparound(t *testing.T) {
	tr := NewLifecycleTracer(4)
	if tr.Cap() != 4 {
		t.Fatalf("cap = %d", tr.Cap())
	}
	for i := 0; i < 10; i++ {
		tr.OnIssue(mkReq(i, "vm", "d", simclock.Time(i)*simclock.Microsecond, 0))
	}
	if tr.Len() != 4 {
		t.Errorf("len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	for i, e := range events {
		if want := uint64(6 + i); e.Rec.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d (oldest first)", i, e.Rec.Seq, want)
		}
	}

	// Partial fill stays in insertion order.
	tr2 := NewLifecycleTracer(8)
	for i := 0; i < 3; i++ {
		tr2.OnIssue(mkReq(i, "vm", "d", 0, 0))
	}
	ev2 := tr2.Events()
	if len(ev2) != 3 || ev2[0].Rec.Seq != 0 || ev2[2].Rec.Seq != 2 {
		t.Errorf("partial ring order: %+v", ev2)
	}
}

// TestLifecycleControlEvents: control verbs land in the ring stamped with
// the latest fast-path virtual time.
func TestLifecycleControlEvents(t *testing.T) {
	tr := NewLifecycleTracer(16)
	tr.Control(EventEnable, "vm", "d")
	tr.OnIssue(mkReq(1, "vm", "d", 250*simclock.Microsecond, 0))
	tr.Control(EventSnapshot, "vm", "d")
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != EventEnable || events[0].VirtualMicros != 0 {
		t.Errorf("enable event: %+v", events[0])
	}
	if events[2].Kind != EventSnapshot || events[2].VirtualMicros != 250 {
		t.Errorf("snapshot event not stamped with last virtual time: %+v", events[2])
	}
	// Unknown kinds are dropped, not recorded.
	tr.Control(EventIssue, "vm", "d")
	if tr.Len() != 3 {
		t.Errorf("Control accepted a fast-path kind")
	}
}

// TestChromeTraceExport: the export is valid JSON, contains metadata
// naming every vm/disk, an X slice per completion with the right ts/dur,
// and instants for issues and control verbs.
func TestChromeTraceExport(t *testing.T) {
	tr := NewLifecycleTracer(64)
	tr.Control(EventEnable, "vmB", "d1")
	r1 := mkReq(1, "vmA", "d0", 100*simclock.Microsecond, 350*simclock.Microsecond)
	tr.OnIssue(r1)
	tr.OnComplete(r1)
	r2 := mkReq(2, "vmB", "d1", 200*simclock.Microsecond, 900*simclock.Microsecond)
	tr.OnIssue(r2)
	tr.OnComplete(r2)

	srv := httptest.NewServer(tr)
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var metaNames []string
	var sliceCount, instantCount int
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metaNames = append(metaNames, e["args"].(map[string]any)["name"].(string))
		case "X":
			sliceCount++
			if e["args"].(map[string]any)["seq"] == float64(1) {
				if e["ts"] != float64(100) || e["dur"] != float64(250) {
					t.Errorf("slice 1 ts/dur = %v/%v, want 100/250", e["ts"], e["dur"])
				}
			}
		case "i":
			instantCount++
		}
	}
	wantMeta := map[string]bool{"vm vmA": true, "vm vmB": true, "disk d0": true, "disk d1": true}
	for _, n := range metaNames {
		delete(wantMeta, n)
	}
	if len(wantMeta) != 0 {
		t.Errorf("missing metadata names: %v (got %v)", wantMeta, metaNames)
	}
	if sliceCount != 2 {
		t.Errorf("slices = %d, want 2 (one per completion)", sliceCount)
	}
	if instantCount != 3 {
		t.Errorf("instants = %d, want 3 (two issues + one control)", instantCount)
	}

	// Method guard.
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/trace", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET" {
		t.Errorf("POST: %d Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
}
