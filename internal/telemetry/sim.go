package telemetry

import "strconv"

// SimWorld is a datacenter simulator's size and pacing, as exported on
// /metrics. vscsim.Sim implements SimSource; the indirection keeps this
// package free of a vscsim dependency (mirroring FleetSource).
type SimWorld struct {
	// Hosts, VMs and Disks size the simulated inventory.
	Hosts, VMs, Disks int
	// VirtualSeconds is the fleet-wide virtual horizon (the slowest
	// host's virtual clock), WallSeconds the wall time spent running, and
	// Speed their ratio — the achieved pacing multiplier.
	VirtualSeconds, WallSeconds, Speed float64
	// Ops, Bytes and Errors total completed simulated guest commands;
	// Throttled counts arrivals skipped at outstanding-I/O caps.
	Ops, Bytes, Errors, Throttled int64
	// Pushes and PushErrors sum the simulated hosts' agent counters.
	Pushes, PushErrors int64
}

// SimSource reports a running simulation's world state.
type SimSource interface {
	SimWorld() SimWorld
}

// WithSim attaches a datacenter simulator and returns the exporter.
// Scrapes then include the vscsistats_vscsim_* series: inventory size,
// virtual/wall pacing, simulated command totals and agent push health.
func (e *Exporter) WithSim(src SimSource) *Exporter {
	e.sim = src
	return e
}

func (e *Exporter) writeSim(p *promWriter) {
	if e.sim == nil {
		return
	}
	w := e.sim.SimWorld()
	gauges := []struct {
		name, help, value string
	}{
		{"vscsistats_vscsim_hosts", "Simulated hosts in the inventory.", strconv.Itoa(w.Hosts)},
		{"vscsistats_vscsim_vms", "Simulated VMs in the inventory.", strconv.Itoa(w.VMs)},
		{"vscsistats_vscsim_disks", "Simulated virtual disks in the inventory.", strconv.Itoa(w.Disks)},
		{"vscsistats_vscsim_virtual_seconds", "Fleet-wide virtual horizon (the slowest host's clock).", formatFloat(w.VirtualSeconds)},
		{"vscsistats_vscsim_wall_seconds", "Wall time spent in wall-paced execution.", formatFloat(w.WallSeconds)},
		{"vscsistats_vscsim_speed", "Achieved pacing multiplier: virtual seconds per wall second.", formatFloat(w.Speed)},
	}
	for _, g := range gauges {
		p.family(g.name, "gauge", g.help)
		p.sample(g.name, "", g.value)
	}
	counters := []struct {
		name, help string
		value      int64
	}{
		{"vscsistats_vscsim_ops_total", "Completed simulated guest commands.", w.Ops},
		{"vscsistats_vscsim_bytes_total", "Bytes moved by completed simulated commands.", w.Bytes},
		{"vscsistats_vscsim_errors_total", "Simulated commands completed with a status other than GOOD.", w.Errors},
		{"vscsistats_vscsim_throttled_total", "Arrivals skipped at a generator's outstanding-I/O cap.", w.Throttled},
		{"vscsistats_vscsim_pushes_total", "Batches the simulated hosts' agents delivered.", w.Pushes},
		{"vscsistats_vscsim_push_errors_total", "Failed delivery attempts across the simulated agents.", w.PushErrors},
	}
	for _, c := range counters {
		p.family(c.name, "counter", c.help)
		p.sample(c.name, "", strconv.FormatInt(c.value, 10))
	}
}
