package hypervisor_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/hypervisor"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/workload"
)

// buildSim provisions n identical-but-independently-seeded worlds: each has
// its own local-disk datastore, one VM, one disk with an enabled collector,
// and an 8K random-read Iometer started at t=0.
func buildSim(t testing.TB, n int) *hypervisor.ParallelSim {
	t.Helper()
	return hypervisor.NewParallelSim(n, func(w *hypervisor.World) {
		w.Host.AddDatastore("ds", storage.LocalDiskConfig(int64(w.Index)+1))
		vm := w.Host.CreateVM(fmt.Sprintf("vm%d", w.Index))
		vd, err := vm.AddDisk(hypervisor.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		vd.Collector.Enable()
		spec := workload.EightKRandomRead()
		spec.Seed = int64(w.Index) + 100
		gen := workload.NewIometer(w.Engine, vd.Disk, spec)
		w.Engine.At(0, func(simclock.Time) { gen.Start() })
	})
}

// fingerprint reduces a registry's snapshots to a comparable string.
func fingerprint(reg *core.Registry) string {
	var b strings.Builder
	for _, s := range reg.Snapshots() {
		fmt.Fprintf(&b, "%s/%s: cmds=%d reads=%d latSum=%d seekTot=%d\n",
			s.VM, s.Disk, s.Commands, s.NumReads,
			s.Latency[core.All].Sum, s.SeekDistance[core.All].Total)
	}
	return b.String()
}

// TestParallelMatchesSequential checks that the parallel drivers produce
// bit-identical per-world results to the sequential baseline: worlds share
// no simulated state, so goroutine scheduling must not leak into outcomes.
func TestParallelMatchesSequential(t *testing.T) {
	const deadline = 1 * simclock.Second

	seq := buildSim(t, 4)
	seq.RunSequential(deadline)
	want := fingerprint(seq.Registry())
	if !strings.Contains(want, "cmds=") || strings.Contains(want, "cmds=0") {
		t.Fatalf("sequential run produced no I/O:\n%s", want)
	}

	par := buildSim(t, 4)
	par.RunUntil(deadline)
	if got := fingerprint(par.Registry()); got != want {
		t.Errorf("RunUntil diverged from sequential:\n got:\n%s want:\n%s", got, want)
	}

	lock := buildSim(t, 4)
	lock.RunLockstep(100*simclock.Millisecond, deadline)
	if got := fingerprint(lock.Registry()); got != want {
		t.Errorf("RunLockstep diverged from sequential:\n got:\n%s want:\n%s", got, want)
	}
}

// TestParallelMonitoringUnderLoad polls the shared registry and the esxtop
// view from monitoring goroutines while all worlds run — the race the
// tentpole exists to fix; run it under -race.
func TestParallelMonitoringUnderLoad(t *testing.T) {
	p := buildSim(t, 4)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, s := range p.Registry().Snapshots() {
					if s.Commands < 0 {
						t.Error("negative command count")
						return
					}
				}
				_ = p.Top()
				if c := p.Registry().Lookup("vm1", "scsi0:0"); c != nil {
					c.Disable()
					c.Enable()
				}
			}
		}()
	}
	p.RunUntil(2 * simclock.Second)
	close(done)
	wg.Wait()

	for _, s := range p.Registry().Snapshots() {
		if s.Commands == 0 {
			t.Errorf("world %s/%s saw no commands", s.VM, s.Disk)
		}
	}
}

// TestSharedRegistryHosts verifies NewHostOn pools several hosts' disks
// behind one registry.
func TestSharedRegistryHosts(t *testing.T) {
	reg := core.NewRegistry()
	for i := 0; i < 2; i++ {
		eng := simclock.NewEngine()
		h := hypervisor.NewHostOn(eng, reg)
		if h.Registry() != reg {
			t.Fatal("host did not adopt the shared registry")
		}
		h.AddDatastore("ds", storage.LocalDiskConfig(1))
		if _, err := h.CreateVM(fmt.Sprintf("host%d-vm", i)).AddDisk(hypervisor.DiskSpec{
			Name: "scsi0:0", Datastore: "ds", CapacitySectors: 1 << 20,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(reg.List()); got != 2 {
		t.Fatalf("shared registry has %d collectors, want 2", got)
	}
}
