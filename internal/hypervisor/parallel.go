package hypervisor

import (
	"fmt"
	"strings"
	"sync"

	"vscsistats/internal/core"
	"vscsistats/internal/simclock"
)

// World is one independent simulation: a private engine and a private host.
// Everything reachable from the engine (datastores, VMs, disks, workload
// generators) belongs to the world's goroutine while the driver runs; the
// only objects shared across worlds are the driver's registry and the
// collectors registered in it, both of which are safe for concurrent use.
type World struct {
	// Index identifies the world within its driver, 0-based. Use it to
	// derive unique VM names and per-world RNG seeds.
	Index  int
	Engine *simclock.Engine
	Host   *Host
}

// ParallelSim drives N independent simulation worlds across CPU cores — the
// embarrassingly parallel multi-VM case: consolidation studies where each
// VM (or group of VMs) has its own datastore, so no simulated component is
// shared and each world can advance on its own virtual clock. Scenarios
// whose VMs contend on one array (the paper's Figure 6 interference study)
// are inherently serial and still belong on a single engine.
//
// All worlds' collectors land in one shared Registry, so a monitoring
// goroutine — an HTTP stats handler, an esxtop-style poller — can snapshot
// and toggle any disk's characterization service while every world runs.
// The observation fast path is built for exactly this shape of load: each
// world's workload generators issue their initial windows through
// Disk.IssueBatch (one observer dispatch and one stream-mutex acquisition
// per burst), and the collectors' striped histograms let world goroutines
// insert while pollers snapshot without bouncing cache lines between them.
type ParallelSim struct {
	registry *core.Registry
	worlds   []*World
}

// NewParallelSim creates n worlds and calls setup on each in index order.
// The setup callback provisions the world's datastores, VMs and workloads;
// VM names must be unique across worlds (e.g. fmt.Sprintf("vm%d", w.Index))
// because every world registers into the shared registry.
func NewParallelSim(n int, setup func(w *World)) *ParallelSim {
	if n < 1 {
		panic(fmt.Sprintf("hypervisor: NewParallelSim needs n >= 1, got %d", n))
	}
	p := &ParallelSim{registry: core.NewRegistry()}
	for i := 0; i < n; i++ {
		eng := simclock.NewEngine()
		w := &World{Index: i, Engine: eng, Host: NewHostOn(eng, p.registry)}
		p.worlds = append(p.worlds, w)
		if setup != nil {
			setup(w)
		}
	}
	return p
}

// Registry returns the shared registry holding every world's collectors.
func (p *ParallelSim) Registry() *core.Registry { return p.registry }

// Worlds returns the driver's worlds in index order.
func (p *ParallelSim) Worlds() []*World { return p.worlds }

// World returns the i-th world.
func (p *ParallelSim) World(i int) *World { return p.worlds[i] }

// RunUntil advances every world to the given virtual deadline, each on its
// own goroutine, and returns when all have arrived — one barrier at the
// end. Worlds' clocks diverge freely in between, which is fine when nothing
// simulated is shared.
func (p *ParallelSim) RunUntil(deadline simclock.Time) {
	p.each(func(w *World) { w.Engine.RunUntil(deadline) })
}

// Run drains every world's event queue in parallel.
func (p *ParallelSim) Run() {
	p.each(func(w *World) { w.Engine.Run() })
}

// RunLockstep advances all worlds to the deadline in barrier-synchronized
// steps: no world's clock leads another's by more than step. Use it when an
// outside observer correlates worlds in time (e.g. interval recorders whose
// series are compared side by side); plain RunUntil is faster when only the
// final state matters.
func (p *ParallelSim) RunLockstep(step, deadline simclock.Time) {
	if step <= 0 {
		panic("hypervisor: RunLockstep step must be positive")
	}
	for t := simclock.Time(0); t < deadline; {
		t += step
		if t > deadline {
			t = deadline
		}
		p.RunUntil(t)
	}
}

// RunSequential advances the worlds to deadline one after another on the
// calling goroutine — the single-threaded baseline the parallel driver is
// benchmarked against. The final state of every world is identical to
// RunUntil's, since worlds share no simulated components.
func (p *ParallelSim) RunSequential(deadline simclock.Time) {
	for _, w := range p.worlds {
		w.Engine.RunUntil(deadline)
	}
}

func (p *ParallelSim) each(f func(*World)) {
	var wg sync.WaitGroup
	for _, w := range p.worlds {
		wg.Add(1)
		go func(w *World) {
			defer wg.Done()
			f(w)
		}(w)
	}
	wg.Wait()
}

// DiskCounters finds the named virtual disk in whichever world hosts it
// and reports its vSCSI-layer counters (telemetry.DiskStatsSource). VM
// names are unique across worlds, so the first match wins.
func (p *ParallelSim) DiskCounters(vm, disk string) (issued, completed, errored uint64, inflight int64, ok bool) {
	for _, w := range p.worlds {
		if issued, completed, errored, inflight, ok = w.Host.DiskCounters(vm, disk); ok {
			return
		}
	}
	return 0, 0, 0, 0, false
}

// Top renders one esxtop-style counter table across every world's host
// (each per-host table repeats the header; keep only the first).
func (p *ParallelSim) Top() string {
	var b strings.Builder
	for i, w := range p.worlds {
		t := w.Host.Top()
		if i > 0 {
			if nl := strings.IndexByte(t, '\n'); nl >= 0 {
				t = t[nl+1:]
			}
		}
		b.WriteString(t)
	}
	return b.String()
}
