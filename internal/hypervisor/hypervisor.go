// Package hypervisor assembles the ESX-like host: datastores carved from
// storage arrays, virtual machines with virtual SCSI disks, and the
// per-disk characterization services and tracers attached to the I/O path.
// It is the composition root the paper's Figure 1 sketches — guest I/O
// enters a virtual disk, passes the observation layer, and lands on the
// physical device model.
package hypervisor

import (
	"fmt"
	"sort"
	"strings"

	"vscsistats/internal/core"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
	"vscsistats/internal/trace"
	"vscsistats/internal/vscsi"
)

// Host is one virtualization host.
type Host struct {
	eng        *simclock.Engine
	datastores map[string]*datastore
	vms        map[string]*VM
	registry   *core.Registry
}

type datastore struct {
	array *storage.Array
	alloc *storage.Allocator
}

// NewHost creates an empty host on the given engine with its own registry.
func NewHost(eng *simclock.Engine) *Host {
	return NewHostOn(eng, core.NewRegistry())
}

// NewHostOn creates an empty host whose collectors register into reg. Give
// several hosts the same registry to pool their virtual disks behind one
// control plane — e.g. one HTTP stats endpoint over every world of the
// parallel multi-VM driver. VM names must then be unique across all hosts
// sharing the registry.
func NewHostOn(eng *simclock.Engine, reg *core.Registry) *Host {
	if reg == nil {
		panic("hypervisor: nil registry")
	}
	return &Host{
		eng:        eng,
		datastores: make(map[string]*datastore),
		vms:        make(map[string]*VM),
		registry:   reg,
	}
}

// Engine returns the host's simulation engine.
func (h *Host) Engine() *simclock.Engine { return h.eng }

// Registry returns the host's stats registry — the handle behind the
// paper's command-line utility for enabling and disabling collection.
func (h *Host) Registry() *core.Registry { return h.registry }

// AddDatastore provisions a storage array as a named datastore.
func (h *Host) AddDatastore(name string, cfg storage.ArrayConfig) *storage.Array {
	if _, dup := h.datastores[name]; dup {
		panic(fmt.Sprintf("hypervisor: duplicate datastore %q", name))
	}
	a := storage.NewArray(h.eng, cfg)
	h.datastores[name] = &datastore{array: a, alloc: storage.NewAllocator(a)}
	return a
}

// SharedDatastore is a handle to a datastore that several hosts mount at
// once — one array, one allocator, so LUNs never overlap across hosts.
type SharedDatastore struct {
	ds *datastore
}

// Array returns the shared volume's array.
func (sd *SharedDatastore) Array() *storage.Array { return sd.ds.array }

// ExportDatastore returns a shareable handle to one of this host's
// datastores (nil if unknown).
func (h *Host) ExportDatastore(name string) *SharedDatastore {
	ds, ok := h.datastores[name]
	if !ok {
		return nil
	}
	return &SharedDatastore{ds: ds}
}

// AddSharedDatastore mounts a datastore exported from another host — the
// way a SAN volume is visible from several initiators at once. This models
// §3.7's caveat that "even if only one VM is loaded up on an ESX host,
// isolation cannot be guaranteed since the target storage might be busy
// servicing requests from unrelated (perhaps non-virtualized) initiator
// hosts." Both hosts' VMs share the array's spindles, caches and head
// positions; provisioning draws from the single shared allocator.
func (h *Host) AddSharedDatastore(name string, sd *SharedDatastore) {
	if _, dup := h.datastores[name]; dup {
		panic(fmt.Sprintf("hypervisor: duplicate datastore %q", name))
	}
	if sd == nil {
		panic("hypervisor: nil shared datastore")
	}
	h.datastores[name] = sd.ds
}

// Datastore returns the named datastore's array, or nil.
func (h *Host) Datastore(name string) *storage.Array {
	if ds, ok := h.datastores[name]; ok {
		return ds.array
	}
	return nil
}

// CreateVM registers a new virtual machine.
func (h *Host) CreateVM(name string) *VM {
	if _, dup := h.vms[name]; dup {
		panic(fmt.Sprintf("hypervisor: duplicate VM %q", name))
	}
	vm := &VM{host: h, name: name, disks: make(map[string]*Vdisk)}
	h.vms[name] = vm
	return vm
}

// VM returns the named virtual machine, or nil.
func (h *Host) VM(name string) *VM {
	return h.vms[name]
}

// VMs lists the host's virtual machines sorted by name.
func (h *Host) VMs() []*VM {
	out := make([]*VM, 0, len(h.vms))
	for _, vm := range h.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// DiskCounters reports the vSCSI-layer lifetime counters of one virtual
// disk (telemetry.DiskStatsSource). The counters themselves are atomics,
// so — like Top — this is safe to call while simulations run, as long as
// the topology (CreateVM/AddDisk/DetachDisk) is not mutated concurrently.
func (h *Host) DiskCounters(vmName, diskName string) (issued, completed, errored uint64, inflight int64, ok bool) {
	vm := h.vms[vmName]
	if vm == nil {
		return 0, 0, 0, 0, false
	}
	vd := vm.disks[diskName]
	if vd == nil {
		return 0, 0, 0, 0, false
	}
	d := vd.Disk
	return d.Issued(), d.Completed(), d.Errored(), int64(d.Inflight()), true
}

// VM is a virtual machine: a named collection of virtual disks.
type VM struct {
	host  *Host
	name  string
	disks map[string]*Vdisk
}

// Name returns the VM's name.
func (vm *VM) Name() string { return vm.name }

// Vdisk bundles a virtual disk with its observation attachments.
type Vdisk struct {
	Disk      *vscsi.Disk
	Collector *core.Collector
	Tracer    *trace.Tracer
	LUN       *storage.LUN
}

// DiskSpec configures a new virtual disk.
type DiskSpec struct {
	// Name is the virtual device name, e.g. "scsi0:0".
	Name string
	// Datastore selects which array backs the disk.
	Datastore string
	// CapacitySectors is the provisioned size.
	CapacitySectors uint64
	// MaxActive bounds commands concurrently outstanding to the backend
	// (0 = unlimited), mirroring the per-VM per-target queue of §2.
	MaxActive int
	// TraceCapacity, if positive, attaches a command tracer retaining that
	// many records.
	TraceCapacity int
}

// AddDisk provisions a virtual disk on a datastore, attaches a (disabled)
// stats collector and optional tracer, and registers the collector.
func (vm *VM) AddDisk(spec DiskSpec) (*Vdisk, error) {
	ds, ok := vm.host.datastores[spec.Datastore]
	if !ok {
		return nil, fmt.Errorf("hypervisor: unknown datastore %q", spec.Datastore)
	}
	if _, dup := vm.disks[spec.Name]; dup {
		return nil, fmt.Errorf("hypervisor: VM %q already has disk %q", vm.name, spec.Name)
	}
	if spec.CapacitySectors == 0 {
		return nil, fmt.Errorf("hypervisor: disk %q needs a capacity", spec.Name)
	}
	if ds.alloc.Remaining() < spec.CapacitySectors {
		return nil, fmt.Errorf("hypervisor: datastore %q has %d sectors free, %d requested",
			spec.Datastore, ds.alloc.Remaining(), spec.CapacitySectors)
	}
	lun := ds.alloc.Alloc(spec.CapacitySectors)
	disk := vscsi.NewDisk(vm.host.eng, lun, vscsi.DiskConfig{
		VM:              vm.name,
		Name:            spec.Name,
		CapacitySectors: spec.CapacitySectors,
		MaxActive:       spec.MaxActive,
	})
	col := core.NewCollector(vm.name, spec.Name)
	disk.AddObserver(col)
	vm.host.registry.Register(col)
	vd := &Vdisk{Disk: disk, Collector: col, LUN: lun}
	if spec.TraceCapacity > 0 {
		vd.Tracer = trace.NewTracer(spec.TraceCapacity)
		disk.AddObserver(vd.Tracer)
	}
	vm.disks[spec.Name] = vd
	return vd, nil
}

// Disk returns the named virtual disk, or nil.
func (vm *VM) Disk(name string) *Vdisk {
	return vm.disks[name]
}

// DetachDisk closes a virtual disk and unregisters its collector. The LUN's
// extent stays allocated (datastores are bump-allocated); in-flight I/O
// completes normally. Detaching an unknown disk is a no-op.
func (vm *VM) DetachDisk(name string) {
	vd, ok := vm.disks[name]
	if !ok {
		return
	}
	vd.Disk.Close()
	vm.host.registry.Unregister(vm.name, name)
	delete(vm.disks, name)
}

// RemoveVM detaches all of a VM's disks and forgets it.
func (h *Host) RemoveVM(name string) {
	vm, ok := h.vms[name]
	if !ok {
		return
	}
	for _, vd := range vm.Disks() {
		vm.DetachDisk(vd.Disk.Name())
	}
	delete(h.vms, name)
}

// Disks lists the VM's virtual disks sorted by name.
func (vm *VM) Disks() []*Vdisk {
	names := make([]string, 0, len(vm.disks))
	for n := range vm.disks {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Vdisk, 0, len(names))
	for _, n := range names {
		out = append(out, vm.disks[n])
	}
	return out
}

// Top renders an esxtop-style snapshot of per-disk activity (the paper's
// §5.2 measures through "the statistics service esxtop").
func (h *Host) Top() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %10s %10s %8s %8s\n",
		"VM", "DISK", "ISSUED", "COMPLETED", "INFLIGHT", "ERRORS")
	for _, vm := range h.VMs() {
		for _, vd := range vm.Disks() {
			d := vd.Disk
			fmt.Fprintf(&b, "%-12s %-10s %10d %10d %8d %8d\n",
				vm.name, d.Name(), d.Issued(), d.Completed(), d.Inflight(), d.Errored())
		}
	}
	return b.String()
}
