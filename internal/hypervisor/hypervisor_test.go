package hypervisor

import (
	"strings"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/storage"
)

func newHost(t *testing.T) (*simclock.Engine, *Host) {
	t.Helper()
	eng := simclock.NewEngine()
	h := NewHost(eng)
	h.AddDatastore("sym", storage.SymmetrixConfig(1))
	return eng, h
}

func TestProvisionAndIssue(t *testing.T) {
	eng, h := newHost(t)
	vm := h.CreateVM("oltp")
	vd, err := vm.AddDisk(DiskSpec{Name: "scsi0:0", Datastore: "sym",
		CapacitySectors: 1 << 22, TraceCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	vd.Collector.Enable()
	vd.Tracer.Enable()
	for i := 0; i < 10; i++ {
		vd.Disk.Issue(scsi.Read(uint64(i*16), 16), nil)
	}
	eng.Run()
	if vd.Disk.Completed() != 10 {
		t.Fatalf("completed = %d", vd.Disk.Completed())
	}
	s := vd.Collector.Snapshot()
	if s.Commands != 10 || s.Latency[core.All].Total != 10 {
		t.Errorf("collector: %d commands, %d latencies", s.Commands, s.Latency[core.All].Total)
	}
	if got := len(vd.Tracer.Records()); got != 10 {
		t.Errorf("tracer: %d records", got)
	}
	// The registry sees the collector.
	if h.Registry().Lookup("oltp", "scsi0:0") != vd.Collector {
		t.Error("registry lookup failed")
	}
}

func TestAddDiskErrors(t *testing.T) {
	_, h := newHost(t)
	vm := h.CreateVM("vm1")
	if _, err := vm.AddDisk(DiskSpec{Name: "d", Datastore: "nope", CapacitySectors: 1}); err == nil {
		t.Error("unknown datastore should fail")
	}
	if _, err := vm.AddDisk(DiskSpec{Name: "d", Datastore: "sym"}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := vm.AddDisk(DiskSpec{Name: "d", Datastore: "sym", CapacitySectors: 1 << 50}); err == nil {
		t.Error("over-capacity should fail")
	}
	if _, err := vm.AddDisk(DiskSpec{Name: "d", Datastore: "sym", CapacitySectors: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.AddDisk(DiskSpec{Name: "d", Datastore: "sym", CapacitySectors: 1024}); err == nil {
		t.Error("duplicate disk should fail")
	}
}

func TestDuplicateVMAndDatastorePanic(t *testing.T) {
	_, h := newHost(t)
	h.CreateVM("vm1")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate VM should panic")
			}
		}()
		h.CreateVM("vm1")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate datastore should panic")
			}
		}()
		h.AddDatastore("sym", storage.CX3Config(2))
	}()
}

func TestLUNsDoNotOverlap(t *testing.T) {
	eng, h := newHost(t)
	vmA := h.CreateVM("a")
	vmB := h.CreateVM("b")
	da, _ := vmA.AddDisk(DiskSpec{Name: "d", Datastore: "sym", CapacitySectors: 1 << 20})
	db, _ := vmB.AddDisk(DiskSpec{Name: "d", Datastore: "sym", CapacitySectors: 1 << 20})
	da.Collector.Enable()
	db.Collector.Enable()
	// Both VMs read "their" LBA 0; the LUN layer must translate to
	// different array extents, which we can only observe indirectly: both
	// succeed and are accounted separately.
	da.Disk.Issue(scsi.Read(0, 8), nil)
	db.Disk.Issue(scsi.Read(0, 8), nil)
	eng.Run()
	if da.Collector.Snapshot().Commands != 1 || db.Collector.Snapshot().Commands != 1 {
		t.Error("per-disk accounting leaked across LUNs")
	}
	if h.Datastore("sym").Reads() != 2 {
		t.Errorf("array reads = %d", h.Datastore("sym").Reads())
	}
}

func TestVMsAndDisksSorted(t *testing.T) {
	_, h := newHost(t)
	h.CreateVM("zeta")
	h.CreateVM("alpha")
	vms := h.VMs()
	if vms[0].Name() != "alpha" || vms[1].Name() != "zeta" {
		t.Errorf("VM order: %v, %v", vms[0].Name(), vms[1].Name())
	}
	vm := vms[0]
	vm.AddDisk(DiskSpec{Name: "scsi0:1", Datastore: "sym", CapacitySectors: 1024})
	vm.AddDisk(DiskSpec{Name: "scsi0:0", Datastore: "sym", CapacitySectors: 1024})
	disks := vm.Disks()
	if disks[0].Disk.Name() != "scsi0:0" {
		t.Errorf("disk order wrong")
	}
	if vm.Disk("scsi0:1") == nil || vm.Disk("nope") != nil {
		t.Error("Disk lookup wrong")
	}
	if h.VM("alpha") != vm || h.VM("nope") != nil {
		t.Error("VM lookup wrong")
	}
}

func TestTopRendering(t *testing.T) {
	eng, h := newHost(t)
	vm := h.CreateVM("web")
	vd, _ := vm.AddDisk(DiskSpec{Name: "scsi0:0", Datastore: "sym", CapacitySectors: 1 << 20})
	vd.Disk.Issue(scsi.Read(0, 8), nil)
	eng.Run()
	top := h.Top()
	if !strings.Contains(top, "web") || !strings.Contains(top, "scsi0:0") {
		t.Errorf("Top:\n%s", top)
	}
}

func TestEndToEndLatencySane(t *testing.T) {
	eng, h := newHost(t)
	vm := h.CreateVM("vm")
	vd, _ := vm.AddDisk(DiskSpec{Name: "d", Datastore: "sym", CapacitySectors: 1 << 22})
	vd.Collector.Enable()
	// Sequential read stream: after warmup the array prefetch makes these
	// cache hits in the sub-millisecond range.
	for i := 0; i < 200; i++ {
		i := i
		eng.At(simclock.Time(i)*2*simclock.Millisecond, func(simclock.Time) {
			vd.Disk.Issue(scsi.Read(uint64(i*16), 16), nil)
		})
	}
	eng.Run()
	s := vd.Collector.Snapshot()
	lat := s.Latency[core.All]
	if lat.Total != 200 {
		t.Fatalf("latency samples = %d", lat.Total)
	}
	if lat.Mean() <= 0 || lat.Mean() > 50000 {
		t.Errorf("mean latency %v us out of plausible range", lat.Mean())
	}
}

func TestSharedDatastoreAcrossHosts(t *testing.T) {
	eng := simclock.NewEngine()
	hostA := NewHost(eng)
	hostA.AddDatastore("san", storage.CX3NoCacheConfig(3))
	hostB := NewHost(eng)
	hostB.AddSharedDatastore("san", hostA.ExportDatastore("san"))

	da, err := hostA.CreateVM("vmA").AddDisk(DiskSpec{Name: "d", Datastore: "san", CapacitySectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	db, err := hostB.CreateVM("vmB").AddDisk(DiskSpec{Name: "d", Datastore: "san", CapacitySectors: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// LUNs must not overlap even across hosts: the second allocation
	// starts where the first ended, observable via the shared array's
	// single I/O counter and distinct latency behaviour is not needed —
	// assert allocation accounting directly.
	da.Collector.Enable()
	db.Collector.Enable()
	da.Disk.Issue(scsi.Read(0, 8), nil)
	db.Disk.Issue(scsi.Read(0, 8), nil)
	eng.Run()
	if hostA.Datastore("san") != hostB.Datastore("san") {
		t.Fatal("hosts do not share the array")
	}
	if hostA.Datastore("san").Reads() != 2 {
		t.Errorf("shared array reads = %d", hostA.Datastore("san").Reads())
	}
	// Cross-host interference: a burst from vmB inflates vmA's latency on
	// the cache-less shared spindles.
	base := da.Collector.Snapshot().Latency[core.All].Mean()
	for i := 0; i < 64; i++ {
		db.Disk.Issue(scsi.Read(uint64(1<<18+i*1024), 8), nil)
		da.Disk.Issue(scsi.Read(uint64(i*16), 8), nil)
	}
	eng.Run()
	loaded := da.Collector.Snapshot().Latency[core.All].Mean()
	if loaded <= base {
		t.Errorf("cross-host interference invisible: %v -> %v", base, loaded)
	}
	if hostB.ExportDatastore("ghost") != nil {
		t.Error("unknown export should be nil")
	}
}

func TestDetachDiskAndRemoveVM(t *testing.T) {
	eng, h := newHost(t)
	vm := h.CreateVM("tenant")
	vd, _ := vm.AddDisk(DiskSpec{Name: "scsi0:0", Datastore: "sym", CapacitySectors: 1 << 20})
	vm.AddDisk(DiskSpec{Name: "scsi0:1", Datastore: "sym", CapacitySectors: 1 << 20})
	vd.Disk.Issue(scsi.Read(0, 8), nil) // in flight across detach
	vm.DetachDisk("scsi0:0")
	if vm.Disk("scsi0:0") != nil {
		t.Error("disk still attached")
	}
	if h.Registry().Lookup("tenant", "scsi0:0") != nil {
		t.Error("collector still registered")
	}
	if _, err := vd.Disk.Issue(scsi.Read(0, 8), nil); err == nil {
		t.Error("detached disk should refuse I/O")
	}
	eng.Run() // in-flight completion must not panic
	if vd.Disk.Completed() != 1 {
		t.Errorf("in-flight I/O lost: %d", vd.Disk.Completed())
	}
	vm.DetachDisk("ghost") // no-op
	h.RemoveVM("tenant")
	if h.VM("tenant") != nil || h.Registry().Lookup("tenant", "scsi0:1") != nil {
		t.Error("RemoveVM incomplete")
	}
	h.RemoveVM("ghost") // no-op
	// The name can be reused after removal.
	h.CreateVM("tenant")
}
