// Package httpstats exposes a host's characterization service over HTTP —
// the moral equivalent of the paper's /proc/vmware/scsi stats node (§5.2),
// done the way a modern control plane would: JSON snapshots per virtual
// disk, plus enable/disable/reset controls.
//
// Routes:
//
//	GET  /disks                          list (vm, disk, enabled, commands)
//	GET  /disks/{vm}/{disk}              full snapshot as JSON
//	GET  /disks/{vm}/{disk}/histogram?metric=ioLength&class=reads
//	GET  /disks/{vm}/{disk}/fingerprint  classification + recommendations
//	POST /disks/{vm}/{disk}/enable       turn the service on
//	POST /disks/{vm}/{disk}/disable      turn it off (data retained)
//	POST /disks/{vm}/{disk}/reset        discard accumulated data
//
// Path segments are URL-decoded, so VM and disk names containing spaces or
// reserved characters (%20, %2F, …) address correctly; malformed escapes
// get 400.
package httpstats

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"

	"vscsistats/internal/core"
)

// Handler serves a registry. Registry, Collector and histogram operations
// are all safe for concurrent use, so any number of handler goroutines can
// list disks, read snapshots and toggle or reset collection while one or
// more simulation goroutines (e.g. the parallel multi-VM driver's worlds)
// issue commands through the observed disks.
type Handler struct {
	reg *core.Registry
}

// New returns an http.Handler over the registry.
func New(reg *core.Registry) *Handler { return &Handler{reg: reg} }

// diskInfo is the list-view record.
type diskInfo struct {
	VM       string `json:"vm"`
	Disk     string `json:"disk"`
	Enabled  bool   `json:"enabled"`
	Commands int64  `json:"commands"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	parts, err := splitPath(r.URL.EscapedPath())
	if err != nil {
		http.Error(w, "bad path escape", http.StatusBadRequest)
		return
	}
	if len(parts) == 0 || parts[0] != "disks" {
		http.NotFound(w, r)
		return
	}
	switch {
	case len(parts) == 1:
		h.list(w, r)
	case len(parts) == 3:
		h.snapshot(w, r, parts[1], parts[2])
	case len(parts) == 4:
		h.action(w, r, parts[1], parts[2], parts[3])
	default:
		http.NotFound(w, r)
	}
}

// splitPath splits the still-escaped request path on "/" and URL-decodes
// each segment afterwards, so a VM or disk name containing an encoded
// slash (%2F) or space stays one segment instead of 404ing. Bad escapes
// return an error (mapped to 400 above).
func splitPath(p string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(p, "/") {
		if s == "" {
			continue
		}
		dec, err := url.PathUnescape(s)
		if err != nil {
			return nil, err
		}
		out = append(out, dec)
	}
	return out, nil
}

func (h *Handler) list(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var infos []diskInfo
	for _, c := range h.reg.List() {
		info := diskInfo{VM: c.VM(), Disk: c.Disk(), Enabled: c.Enabled()}
		if s := c.Snapshot(); s != nil {
			info.Commands = s.Commands
		}
		infos = append(infos, info)
	}
	writeJSON(w, infos)
}

func (h *Handler) lookup(w http.ResponseWriter, vm, disk string) *core.Collector {
	c := h.reg.Lookup(vm, disk)
	if c == nil {
		http.Error(w, "unknown virtual disk", http.StatusNotFound)
	}
	return c
}

func (h *Handler) snapshot(w http.ResponseWriter, r *http.Request, vm, disk string) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	c := h.lookup(w, vm, disk)
	if c == nil {
		return
	}
	s := c.Snapshot()
	if s == nil {
		http.Error(w, "service never enabled for this disk", http.StatusConflict)
		return
	}
	writeJSON(w, s)
}

func (h *Handler) action(w http.ResponseWriter, r *http.Request, vm, disk, verb string) {
	c := h.lookup(w, vm, disk)
	if c == nil {
		return
	}
	switch verb {
	case "histogram":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s := c.Snapshot()
		if s == nil {
			http.Error(w, "service never enabled for this disk", http.StatusConflict)
			return
		}
		metric := core.Metric(r.URL.Query().Get("metric"))
		if metric == "" {
			metric = core.MetricIOLength
		}
		class := core.All
		switch r.URL.Query().Get("class") {
		case "", "all":
		case "reads":
			class = core.Reads
		case "writes":
			class = core.Writes
		default:
			http.Error(w, "unknown class", http.StatusBadRequest)
			return
		}
		hist := s.Histogram(metric, class)
		if hist == nil {
			http.Error(w, "unknown metric", http.StatusBadRequest)
			return
		}
		writeJSON(w, hist)
	case "fingerprint":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s := c.Snapshot()
		if s == nil {
			http.Error(w, "service never enabled for this disk", http.StatusConflict)
			return
		}
		fp := core.FingerprintOf(s)
		writeJSON(w, struct {
			core.Fingerprint
			Recommendations []string `json:"recommendations"`
		}{fp, fp.Recommendations()})
	case "enable", "disable", "reset":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		switch verb {
		case "enable":
			c.Enable()
		case "disable":
			c.Disable()
		case "reset":
			c.Reset()
		}
		writeJSON(w, map[string]bool{"enabled": c.Enabled()})
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
