// Package httpstats exposes a host's characterization service over HTTP —
// the moral equivalent of the paper's /proc/vmware/scsi stats node (§5.2),
// done the way a modern control plane would: JSON snapshots per virtual
// disk, plus enable/disable/reset controls and mount points for the
// telemetry layer's exporters.
//
// Routes:
//
//	GET  /disks                          list (vm, disk, enabled, commands)
//	GET  /disks/{vm}/{disk}              full snapshot as JSON
//	GET  /disks/{vm}/{disk}/histogram?metric=ioLength&class=reads
//	GET  /disks/{vm}/{disk}/fingerprint  classification + recommendations
//	GET  /disks/{vm}/{disk}/series       interval time series (Options.Series)
//	POST /disks/{vm}/{disk}/enable       turn the service on
//	POST /disks/{vm}/{disk}/disable      turn it off (data retained)
//	POST /disks/{vm}/{disk}/reset        discard accumulated data
//	GET  /metrics                        Prometheus exposition (Options.Metrics)
//	GET  /debug/trace                    Chrome trace JSON (Options.Trace)
//	GET  /debug/fleettrace               fleet pipeline Chrome trace (Options.FleetTrace)
//	GET  /debug/pprof/...                Go profiling endpoints (Options.Pprof)
//	GET  /watch                          SSE interval feed (Options.Series)
//	GET  /healthz                        liveness probe: {status, uptime, disks}
//	*    /fleet/...                      fleet federation surface (Options.Fleet)
//
// Path segments are URL-decoded, so VM and disk names containing spaces or
// reserved characters (%20, %2F, …) address correctly; malformed escapes
// get 400. Error responses are JSON ({"error": ...}) with
// Content-Type: application/json, and every 405 carries an Allow header.
package httpstats

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"
	"time"

	"vscsistats/internal/core"
)

// SeriesSource serves the interval time-series surfaces: a per-disk JSON
// series and a live SSE feed. telemetry.Streamer implements it; the
// indirection keeps this package free of a telemetry dependency.
type SeriesSource interface {
	ServeSeries(w http.ResponseWriter, r *http.Request, vm, disk string)
	ServeWatch(w http.ResponseWriter, r *http.Request)
}

// Options mounts optional observability surfaces onto the handler. Nil
// fields leave their routes unmounted (404).
type Options struct {
	// Metrics serves GET /metrics (e.g. a telemetry.Exporter).
	Metrics http.Handler
	// Trace serves GET /debug/trace (e.g. a telemetry.LifecycleTracer).
	Trace http.Handler
	// FleetTrace serves GET /debug/fleettrace: the fleet pipeline's
	// Chrome trace-event view (e.g. a fleetobs.Tracker's
	// ChromeTraceHandler), with hosts as processes and stages as threads.
	FleetTrace http.Handler
	// Series serves GET /disks/{vm}/{disk}/series and GET /watch.
	Series SeriesSource
	// Fleet serves every /fleet/... route (e.g. a fleet.Aggregator):
	// /fleet/hosts, /fleet/snapshot, /fleet/shards (per-shard routing,
	// delta-protocol and merge-cache counters), /fleet/history (windowed
	// merges over the aggregator's retained segment log), /fleet/log
	// (segment-log size and maintenance counters), /fleet/push (full or
	// delta frames; 409 asks the agent to resync with full state).
	Fleet http.Handler
	// Pprof mounts net/http/pprof under /debug/pprof/... for profiling the
	// observation fast path in situ (CPU, heap, mutex, block). Off by
	// default: the endpoints reveal process internals and a CPU profile
	// costs real cycles, so production deployments must opt in.
	Pprof bool
	// OnControl, if set, observes every successful control-plane action:
	// verb is "enable", "disable", "reset" or "snapshot".
	OnControl func(verb, vm, disk string)
}

// Handler serves a registry. Registry, Collector and histogram operations
// are all safe for concurrent use, so any number of handler goroutines can
// list disks, read snapshots and toggle or reset collection while one or
// more simulation goroutines (e.g. the parallel multi-VM driver's worlds)
// issue commands through the observed disks.
type Handler struct {
	reg   *core.Registry
	opts  Options
	start time.Time
	// now is the wall clock, injectable for the /healthz uptime test.
	now func() time.Time
}

// New returns an http.Handler over the registry with no optional surfaces.
func New(reg *core.Registry) *Handler { return NewWith(reg, Options{}) }

// NewWith returns an http.Handler over the registry with the given
// observability mounts.
func NewWith(reg *core.Registry, opts Options) *Handler {
	return &Handler{reg: reg, opts: opts, start: time.Now(), now: time.Now}
}

// diskInfo is the list-view record.
type diskInfo struct {
	VM       string `json:"vm"`
	Disk     string `json:"disk"`
	Enabled  bool   `json:"enabled"`
	Commands int64  `json:"commands"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	parts, err := splitPath(r.URL.EscapedPath())
	if err != nil {
		jsonError(w, http.StatusBadRequest, "bad path escape")
		return
	}
	if len(parts) >= 1 {
		switch {
		case len(parts) == 1 && parts[0] == "metrics":
			if h.opts.Metrics != nil {
				h.opts.Metrics.ServeHTTP(w, r)
				return
			}
		case len(parts) == 2 && parts[0] == "debug" && parts[1] == "trace":
			if h.opts.Trace != nil {
				h.opts.Trace.ServeHTTP(w, r)
				return
			}
		case len(parts) == 2 && parts[0] == "debug" && parts[1] == "fleettrace":
			if h.opts.FleetTrace != nil {
				h.opts.FleetTrace.ServeHTTP(w, r)
				return
			}
		case len(parts) >= 2 && parts[0] == "debug" && parts[1] == "pprof":
			if h.opts.Pprof {
				servePprof(w, r, parts[2:])
				return
			}
		case len(parts) == 1 && parts[0] == "watch":
			if h.opts.Series != nil {
				h.opts.Series.ServeWatch(w, r)
				return
			}
		case len(parts) == 1 && parts[0] == "healthz":
			h.healthz(w, r)
			return
		case parts[0] == "fleet":
			if h.opts.Fleet != nil {
				h.opts.Fleet.ServeHTTP(w, r)
				return
			}
		}
	}
	if len(parts) == 0 || parts[0] != "disks" {
		jsonError(w, http.StatusNotFound, "not found")
		return
	}
	switch {
	case len(parts) == 1:
		h.list(w, r)
	case len(parts) == 3:
		h.snapshot(w, r, parts[1], parts[2])
	case len(parts) == 4:
		h.action(w, r, parts[1], parts[2], parts[3])
	default:
		jsonError(w, http.StatusNotFound, "not found")
	}
}

// splitPath splits the still-escaped request path on "/" and URL-decodes
// each segment afterwards, so a VM or disk name containing an encoded
// slash (%2F) or space stays one segment instead of 404ing. Bad escapes
// return an error (mapped to 400 above).
func splitPath(p string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(p, "/") {
		if s == "" {
			continue
		}
		dec, err := url.PathUnescape(s)
		if err != nil {
			return nil, err
		}
		out = append(out, dec)
	}
	return out, nil
}

// servePprof dispatches /debug/pprof/... to net/http/pprof. The index and
// the special handlers (cmdline, profile, symbol, trace) have dedicated
// entry points; every other name is a runtime profile looked up by
// pprof.Handler, which 404s unknown names itself.
func servePprof(w http.ResponseWriter, r *http.Request, rest []string) {
	if len(rest) == 0 {
		pprof.Index(w, r)
		return
	}
	switch rest[0] {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Handler(rest[0]).ServeHTTP(w, r)
	}
}

// healthz is the liveness probe: always 200 while the process serves,
// with just enough state (uptime, registered disk count) for a fleet
// aggregator or a k8s-style prober to tell "up" from "up and populated".
// GET and HEAD only; the body is deliberately cheap — no snapshots taken.
func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet, http.MethodHead)
		return
	}
	if r.Method == http.MethodHead {
		w.Header().Set("Content-Type", "application/json")
		return
	}
	writeJSON(w, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Disks         int     `json:"disks"`
	}{"ok", h.now().Sub(h.start).Seconds(), len(h.reg.List())})
}

func (h *Handler) control(verb, vm, disk string) {
	if h.opts.OnControl != nil {
		h.opts.OnControl(verb, vm, disk)
	}
}

func (h *Handler) list(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
		return
	}
	var infos []diskInfo
	for _, c := range h.reg.List() {
		info := diskInfo{VM: c.VM(), Disk: c.Disk(), Enabled: c.Enabled()}
		if s := c.Snapshot(); s != nil {
			info.Commands = s.Commands
		}
		infos = append(infos, info)
	}
	writeJSON(w, infos)
}

func (h *Handler) lookup(w http.ResponseWriter, vm, disk string) *core.Collector {
	c := h.reg.Lookup(vm, disk)
	if c == nil {
		jsonError(w, http.StatusNotFound, "unknown virtual disk")
	}
	return c
}

func (h *Handler) snapshot(w http.ResponseWriter, r *http.Request, vm, disk string) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
		return
	}
	c := h.lookup(w, vm, disk)
	if c == nil {
		return
	}
	s := c.Snapshot()
	if s == nil {
		jsonError(w, http.StatusConflict, "service never enabled for this disk")
		return
	}
	h.control("snapshot", vm, disk)
	writeJSON(w, s)
}

func (h *Handler) action(w http.ResponseWriter, r *http.Request, vm, disk, verb string) {
	if verb == "series" {
		if h.opts.Series == nil {
			jsonError(w, http.StatusNotFound, "not found")
			return
		}
		if h.reg.Lookup(vm, disk) == nil {
			jsonError(w, http.StatusNotFound, "unknown virtual disk")
			return
		}
		h.opts.Series.ServeSeries(w, r, vm, disk)
		return
	}
	c := h.lookup(w, vm, disk)
	if c == nil {
		return
	}
	switch verb {
	case "histogram":
		if r.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		s := c.Snapshot()
		if s == nil {
			jsonError(w, http.StatusConflict, "service never enabled for this disk")
			return
		}
		metric := core.Metric(r.URL.Query().Get("metric"))
		if metric == "" {
			metric = core.MetricIOLength
		}
		class := core.All
		switch r.URL.Query().Get("class") {
		case "", "all":
		case "reads":
			class = core.Reads
		case "writes":
			class = core.Writes
		default:
			jsonError(w, http.StatusBadRequest, "unknown class")
			return
		}
		hist := s.Histogram(metric, class)
		if hist == nil {
			jsonError(w, http.StatusBadRequest, "unknown metric")
			return
		}
		h.control("snapshot", vm, disk)
		writeJSON(w, hist)
	case "fingerprint":
		if r.Method != http.MethodGet {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodGet)
			return
		}
		s := c.Snapshot()
		if s == nil {
			jsonError(w, http.StatusConflict, "service never enabled for this disk")
			return
		}
		h.control("snapshot", vm, disk)
		fp := core.FingerprintOf(s)
		writeJSON(w, struct {
			core.Fingerprint
			Recommendations []string `json:"recommendations"`
		}{fp, fp.Recommendations()})
	case "enable", "disable", "reset":
		if r.Method != http.MethodPost {
			jsonError(w, http.StatusMethodNotAllowed, "method not allowed", http.MethodPost)
			return
		}
		switch verb {
		case "enable":
			c.Enable()
		case "disable":
			c.Disable()
		case "reset":
			c.Reset()
		}
		h.control(verb, vm, disk)
		writeJSON(w, map[string]bool{"enabled": c.Enabled()})
	default:
		jsonError(w, http.StatusNotFound, "not found")
	}
}

// jsonError writes a JSON error body with the given status, setting the
// Allow header when allowed methods are supplied (mandatory on 405).
func jsonError(w http.ResponseWriter, code int, msg string, allow ...string) {
	if len(allow) > 0 {
		w.Header().Set("Allow", strings.Join(allow, ", "))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		jsonError(w, http.StatusInternalServerError, err.Error())
	}
}
