package httpstats

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vscsistats/internal/core"
)

// TestErrorContract: every 405 carries an Allow header, and every error
// response (404/405/400/409) is a JSON body with the right Content-Type.
func TestErrorContract(t *testing.T) {
	srv, _, _ := newServer(t)
	cases := []struct {
		method, path string
		want         int
		wantAllow    string
	}{
		{"POST", "/disks", 405, "GET"},
		{"POST", "/disks/vm1/scsi0:0", 405, "GET"},
		{"GET", "/disks/vm1/scsi0:0/enable", 405, "POST"},
		{"DELETE", "/disks/vm1/scsi0:0/reset", 405, "POST"},
		{"POST", "/disks/vm1/scsi0:0/histogram", 405, "GET"},
		{"POST", "/disks/vm1/scsi0:0/fingerprint", 405, "GET"},
		{"GET", "/nope", 404, ""},
		{"GET", "/disks/ghost/disk", 404, ""},
		{"GET", "/disks/vm1/scsi0:0", 409, ""}, // never enabled
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s Content-Type = %q, want application/json", c.method, c.path, ct)
		}
		if allow := resp.Header.Get("Allow"); allow != c.wantAllow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.path, allow, c.wantAllow)
		}
		var sb strings.Builder
		buf := make([]byte, 1024)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		if !strings.Contains(sb.String(), `"error"`) {
			t.Errorf("%s %s body = %q, want JSON error object", c.method, c.path, sb.String())
		}
	}
}

type stubSeries struct {
	series []string
	watch  int
}

func (s *stubSeries) ServeSeries(w http.ResponseWriter, r *http.Request, vm, disk string) {
	s.series = append(s.series, vm+"/"+disk)
	w.WriteHeader(200)
}

func (s *stubSeries) ServeWatch(w http.ResponseWriter, r *http.Request) {
	s.watch++
	w.WriteHeader(200)
}

// TestObservabilityMounts: Options mounts /metrics, /debug/trace, /watch
// and the per-disk series route; unmounted surfaces 404 as JSON.
func TestObservabilityMounts(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register(core.NewCollector("my vm", "scsi0:0"))

	stub := &stubSeries{}
	metricsHit, traceHit := 0, 0
	h := NewWith(reg, Options{
		Metrics: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { metricsHit++ }),
		Trace:   http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { traceHit++ }),
		Series:  stub,
	})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	if code, _ := get(t, srv.URL+"/metrics"); code != 200 || metricsHit != 1 {
		t.Errorf("/metrics: code %d, hits %d", code, metricsHit)
	}
	if code, _ := get(t, srv.URL+"/debug/trace"); code != 200 || traceHit != 1 {
		t.Errorf("/debug/trace: code %d, hits %d", code, traceHit)
	}
	if code, _ := get(t, srv.URL+"/watch"); code != 200 || stub.watch != 1 {
		t.Errorf("/watch: code %d, hits %d", code, stub.watch)
	}
	// Series routes through the decoded vm/disk path segments.
	if code, _ := get(t, srv.URL+"/disks/my%20vm/scsi0:0/series"); code != 200 {
		t.Errorf("/series: code %d", code)
	}
	if len(stub.series) != 1 || stub.series[0] != "my vm/scsi0:0" {
		t.Errorf("series calls = %v", stub.series)
	}
	if code, _ := get(t, srv.URL+"/disks/ghost/d/series"); code != 404 {
		t.Errorf("series for unknown disk: %d", code)
	}

	// Without mounts, the same routes are JSON 404s.
	bare := httptest.NewServer(New(reg))
	t.Cleanup(bare.Close)
	for _, path := range []string{"/metrics", "/debug/trace", "/watch", "/disks/my%20vm/scsi0:0/series"} {
		code, body := get(t, bare.URL+path)
		if code != 404 || !strings.Contains(body, `"error"`) {
			t.Errorf("unmounted %s: %d %q", path, code, body)
		}
	}
}

// TestPprofMount: Options.Pprof gates the /debug/pprof surface — index,
// named profiles and the symbol endpoint answer when enabled; everything
// stays a JSON 404 by default.
func TestPprofMount(t *testing.T) {
	reg := core.NewRegistry()
	on := httptest.NewServer(NewWith(reg, Options{Pprof: true}))
	t.Cleanup(on.Close)

	if code, body := get(t, on.URL+"/debug/pprof"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: code %d, body %q", code, body)
	}
	for _, path := range []string{"/debug/pprof/goroutine", "/debug/pprof/heap", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if code, _ := get(t, on.URL+path); code != 200 {
			t.Errorf("%s: code %d, want 200", path, code)
		}
	}
	if code, _ := get(t, on.URL+"/debug/pprof/nosuchprofile"); code != 404 {
		t.Errorf("unknown profile: code %d, want 404", code)
	}

	off := httptest.NewServer(New(reg))
	t.Cleanup(off.Close)
	for _, path := range []string{"/debug/pprof", "/debug/pprof/heap", "/debug/pprof/profile"} {
		code, body := get(t, off.URL+path)
		if code != 404 || !strings.Contains(body, `"error"`) {
			t.Errorf("pprof off, %s: %d %q", path, code, body)
		}
	}
}

// TestOnControlHook: the hook observes enable/disable/reset and snapshots.
func TestOnControlHook(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register(core.NewCollector("vm1", "d0"))
	var calls []string
	h := NewWith(reg, Options{OnControl: func(verb, vm, disk string) {
		calls = append(calls, verb+":"+vm+"/"+disk)
	}})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	post(t, srv.URL+"/disks/vm1/d0/enable")
	get(t, srv.URL+"/disks/vm1/d0")
	post(t, srv.URL+"/disks/vm1/d0/disable")
	post(t, srv.URL+"/disks/vm1/d0/reset")
	post(t, srv.URL+"/disks/ghost/d/enable") // 404: no hook call

	want := []string{"enable:vm1/d0", "snapshot:vm1/d0", "disable:vm1/d0", "reset:vm1/d0"}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("calls[%d] = %q, want %q", i, calls[i], want[i])
		}
	}
}
