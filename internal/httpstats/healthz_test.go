package httpstats

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vscsistats/internal/core"
)

func TestHealthz(t *testing.T) {
	srv, reg, _ := newServer(t)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	var h struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Disks         int     `json:"disks"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q, want ok", h.Status)
	}
	if h.Disks != len(reg.List()) {
		t.Errorf("disks %d, want %d", h.Disks, len(reg.List()))
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %f", h.UptimeSeconds)
	}
}

func TestHealthzUptimeAdvances(t *testing.T) {
	h := NewWith(core.NewRegistry(), Options{})
	h.now = func() time.Time { return h.start.Add(90 * time.Second) }
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var out struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Disks         int     `json:"disks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.UptimeSeconds != 90 {
		t.Errorf("uptime %f, want 90", out.UptimeSeconds)
	}
	if out.Disks != 0 {
		t.Errorf("disks %d, want 0 on an empty registry", out.Disks)
	}
}

func TestHealthzMethods(t *testing.T) {
	srv, _, _ := newServer(t)
	// HEAD answers without a body.
	req, _ := http.NewRequest(http.MethodHead, srv.URL+"/healthz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /healthz: %d", resp.StatusCode)
	}
	// Anything else is a 405 with Allow.
	resp, err = http.Post(srv.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
		t.Errorf("Allow %q, want %q", allow, "GET, HEAD")
	}
}

func TestFleetMountRouting(t *testing.T) {
	// With no Fleet handler configured, /fleet/... is a plain 404.
	srv, _, _ := newServer(t)
	if code, _ := get(t, srv.URL+"/fleet/hosts"); code != http.StatusNotFound {
		t.Errorf("/fleet/hosts without a mount: %d, want 404", code)
	}

	// With one configured, the whole subtree is delegated verbatim.
	var sawPath string
	h := NewWith(core.NewRegistry(), Options{
		Fleet: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sawPath = r.URL.Path
			w.WriteHeader(http.StatusTeapot)
		}),
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/fleet/snapshot?vm=x", nil))
	if rec.Code != http.StatusTeapot || sawPath != "/fleet/snapshot" {
		t.Errorf("fleet mount: code %d path %q", rec.Code, sawPath)
	}
}
