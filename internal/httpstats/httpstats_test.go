package httpstats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func newServer(t *testing.T) (*httptest.Server, *core.Registry, func(n int)) {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(simclock.Millisecond, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "vm1", Name: "scsi0:0", CapacitySectors: 1 << 20})
	reg := core.NewRegistry()
	col := core.NewCollector("vm1", "scsi0:0")
	d.AddObserver(col)
	reg.Register(col)
	srv := httptest.NewServer(New(reg))
	t.Cleanup(srv.Close)
	issue := func(n int) {
		for i := 0; i < n; i++ {
			d.Issue(scsi.Read(uint64(i*8), 8), nil)
		}
		eng.Run()
	}
	return srv, reg, issue
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, b.String()
}

func post(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestListAndEnableFlow(t *testing.T) {
	srv, _, issue := newServer(t)
	code, body := get(t, srv.URL+"/disks")
	if code != 200 || !strings.Contains(body, `"vm": "vm1"`) {
		t.Fatalf("list: %d %s", code, body)
	}
	if !strings.Contains(body, `"enabled": false`) {
		t.Errorf("should start disabled: %s", body)
	}
	// Snapshot before enabling: 409.
	if code, _ := get(t, srv.URL+"/disks/vm1/scsi0:0"); code != http.StatusConflict {
		t.Errorf("never-enabled snapshot code = %d", code)
	}
	if code := post(t, srv.URL+"/disks/vm1/scsi0:0/enable"); code != 200 {
		t.Fatalf("enable: %d", code)
	}
	issue(10)
	code, body = get(t, srv.URL+"/disks/vm1/scsi0:0")
	if code != 200 {
		t.Fatalf("snapshot: %d", code)
	}
	var snap core.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if snap.Commands != 10 || snap.NumReads != 10 {
		t.Errorf("snapshot: %+v", snap.Commands)
	}
}

func TestHistogramEndpoint(t *testing.T) {
	srv, _, issue := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")
	issue(5)
	code, body := get(t, srv.URL+"/disks/vm1/scsi0:0/histogram?metric=ioLength&class=reads")
	if code != 200 || !strings.Contains(body, `"total": 5`) {
		t.Fatalf("histogram: %d %s", code, body)
	}
	if code, _ := get(t, srv.URL+"/disks/vm1/scsi0:0/histogram?metric=bogus"); code != 400 {
		t.Errorf("bad metric code = %d", code)
	}
	if code, _ := get(t, srv.URL+"/disks/vm1/scsi0:0/histogram?class=bogus"); code != 400 {
		t.Errorf("bad class code = %d", code)
	}
}

func TestFingerprintEndpoint(t *testing.T) {
	srv, _, issue := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")
	issue(50)
	code, body := get(t, srv.URL+"/disks/vm1/scsi0:0/fingerprint")
	if code != 200 || !strings.Contains(body, "recommendations") {
		t.Fatalf("fingerprint: %d %s", code, body)
	}
	if !strings.Contains(body, "sequential") {
		t.Errorf("sequential reads misclassified: %s", body)
	}
}

func TestDisableAndReset(t *testing.T) {
	srv, reg, issue := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")
	issue(5)
	if code := post(t, srv.URL+"/disks/vm1/scsi0:0/disable"); code != 200 {
		t.Fatal("disable failed")
	}
	if reg.Lookup("vm1", "scsi0:0").Enabled() {
		t.Error("still enabled")
	}
	post(t, srv.URL+"/disks/vm1/scsi0:0/reset")
	if s := reg.Lookup("vm1", "scsi0:0").Snapshot(); s.Commands != 0 {
		t.Errorf("reset left %d commands", s.Commands)
	}
}

func TestRouteErrors(t *testing.T) {
	srv, _, _ := newServer(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/nope", 404},
		{"GET", "/disks/vm1", 404},
		{"GET", "/disks/ghost/disk", 404},
		{"GET", "/disks/vm1/scsi0:0/bogus", 404},
		{"POST", "/disks", 405},
		{"GET", "/disks/vm1/scsi0:0/enable", 405},
		{"POST", "/disks/vm1/scsi0:0/fingerprint", 405},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

// TestEscapedPathSegments covers VM/disk names that need URL encoding: a
// space (%20) and an embedded slash (%2F) must address the collector
// instead of 404ing.
func TestEscapedPathSegments(t *testing.T) {
	reg := core.NewRegistry()
	col := core.NewCollector("my vm", "scsi0/0")
	reg.Register(col)
	srv := httptest.NewServer(New(reg))
	t.Cleanup(srv.Close)

	if code := post(t, srv.URL+"/disks/my%20vm/scsi0%2F0/enable"); code != 200 {
		t.Fatalf("enable via escaped path: %d", code)
	}
	if !col.Enabled() {
		t.Fatal("escaped path did not reach the collector")
	}
	code, body := get(t, srv.URL+"/disks/my%20vm/scsi0%2F0")
	if code != 200 || !strings.Contains(body, `"my vm"`) {
		t.Errorf("escaped snapshot: %d %s", code, body)
	}
}

// TestSplitPathBadEscape exercises the 400 branch for malformed escapes,
// both at the unit level and end to end over a raw socket (the Go client
// refuses to send such URLs, so the wire test goes through net.Dial).
func TestSplitPathBadEscape(t *testing.T) {
	if _, err := splitPath("/disks/a%zz/b"); err == nil {
		t.Error("splitPath accepted a malformed escape")
	}
	if parts, err := splitPath("/disks/a%2Fb/c"); err != nil || len(parts) != 3 || parts[1] != "a/b" {
		t.Errorf("splitPath(%%2F) = %v, %v", parts, err)
	}

	reg := core.NewRegistry()
	srv := httptest.NewServer(New(reg))
	t.Cleanup(srv.Close)
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /disks/a%%zz/b HTTP/1.0\r\nHost: x\r\n\r\n")
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "400") {
		t.Errorf("bad escape on the wire got %q, want 400", strings.TrimSpace(status))
	}
}

// TestServeWhileSimulationRuns is the package's -race stress test: one
// goroutine drives the simulation (issuing commands through the observed
// disk) while HTTP clients concurrently list, snapshot, and toggle
// enable/disable/reset — the "serving while a simulation runs on another
// goroutine" promise the package doc makes.
func TestServeWhileSimulationRuns(t *testing.T) {
	srv, _, _ := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")

	// Rebuild a private world so the sim goroutine owns engine and disk.
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(100*simclock.Microsecond, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "vm2", Name: "scsi0:0", CapacitySectors: 1 << 20})
	reg2 := core.NewRegistry()
	col := core.NewCollector("vm2", "scsi0:0")
	d.AddObserver(col)
	reg2.Register(col)
	col.Enable()
	srv2 := httptest.NewServer(New(reg2))
	t.Cleanup(srv2.Close)

	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		for i := 0; i < 2000; i++ {
			d.Issue(scsi.Read(uint64(i%1024)*8, 8), nil)
			eng.Run()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-simDone:
					return
				default:
				}
				switch w % 4 {
				case 0:
					get(t, srv2.URL+"/disks")
				case 1:
					get(t, srv2.URL+"/disks/vm2/scsi0:0")
				case 2:
					get(t, srv2.URL+"/disks/vm2/scsi0:0/histogram?metric=latency")
				case 3:
					post(t, srv2.URL+"/disks/vm2/scsi0:0/reset")
					post(t, srv2.URL+"/disks/vm2/scsi0:0/disable")
					post(t, srv2.URL+"/disks/vm2/scsi0:0/enable")
				}
			}
		}(w)
	}
	wg.Wait()

	code, body := get(t, srv2.URL+"/disks/vm2/scsi0:0")
	if code != 200 {
		t.Fatalf("final snapshot: %d %s", code, body)
	}
	var snap core.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("final snapshot JSON: %v", err)
	}
	if snap.Commands < 0 {
		t.Errorf("inconsistent final snapshot: %d commands", snap.Commands)
	}
}
