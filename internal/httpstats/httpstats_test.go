package httpstats

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vscsistats/internal/core"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func newServer(t *testing.T) (*httptest.Server, *core.Registry, func(n int)) {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(simclock.Millisecond, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "vm1", Name: "scsi0:0", CapacitySectors: 1 << 20})
	reg := core.NewRegistry()
	col := core.NewCollector("vm1", "scsi0:0")
	d.AddObserver(col)
	reg.Register(col)
	srv := httptest.NewServer(New(reg))
	t.Cleanup(srv.Close)
	issue := func(n int) {
		for i := 0; i < n; i++ {
			d.Issue(scsi.Read(uint64(i*8), 8), nil)
		}
		eng.Run()
	}
	return srv, reg, issue
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, b.String()
}

func post(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestListAndEnableFlow(t *testing.T) {
	srv, _, issue := newServer(t)
	code, body := get(t, srv.URL+"/disks")
	if code != 200 || !strings.Contains(body, `"vm": "vm1"`) {
		t.Fatalf("list: %d %s", code, body)
	}
	if !strings.Contains(body, `"enabled": false`) {
		t.Errorf("should start disabled: %s", body)
	}
	// Snapshot before enabling: 409.
	if code, _ := get(t, srv.URL+"/disks/vm1/scsi0:0"); code != http.StatusConflict {
		t.Errorf("never-enabled snapshot code = %d", code)
	}
	if code := post(t, srv.URL+"/disks/vm1/scsi0:0/enable"); code != 200 {
		t.Fatalf("enable: %d", code)
	}
	issue(10)
	code, body = get(t, srv.URL+"/disks/vm1/scsi0:0")
	if code != 200 {
		t.Fatalf("snapshot: %d", code)
	}
	var snap core.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if snap.Commands != 10 || snap.NumReads != 10 {
		t.Errorf("snapshot: %+v", snap.Commands)
	}
}

func TestHistogramEndpoint(t *testing.T) {
	srv, _, issue := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")
	issue(5)
	code, body := get(t, srv.URL+"/disks/vm1/scsi0:0/histogram?metric=ioLength&class=reads")
	if code != 200 || !strings.Contains(body, `"total": 5`) {
		t.Fatalf("histogram: %d %s", code, body)
	}
	if code, _ := get(t, srv.URL+"/disks/vm1/scsi0:0/histogram?metric=bogus"); code != 400 {
		t.Errorf("bad metric code = %d", code)
	}
	if code, _ := get(t, srv.URL+"/disks/vm1/scsi0:0/histogram?class=bogus"); code != 400 {
		t.Errorf("bad class code = %d", code)
	}
}

func TestFingerprintEndpoint(t *testing.T) {
	srv, _, issue := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")
	issue(50)
	code, body := get(t, srv.URL+"/disks/vm1/scsi0:0/fingerprint")
	if code != 200 || !strings.Contains(body, "recommendations") {
		t.Fatalf("fingerprint: %d %s", code, body)
	}
	if !strings.Contains(body, "sequential") {
		t.Errorf("sequential reads misclassified: %s", body)
	}
}

func TestDisableAndReset(t *testing.T) {
	srv, reg, issue := newServer(t)
	post(t, srv.URL+"/disks/vm1/scsi0:0/enable")
	issue(5)
	if code := post(t, srv.URL+"/disks/vm1/scsi0:0/disable"); code != 200 {
		t.Fatal("disable failed")
	}
	if reg.Lookup("vm1", "scsi0:0").Enabled() {
		t.Error("still enabled")
	}
	post(t, srv.URL+"/disks/vm1/scsi0:0/reset")
	if s := reg.Lookup("vm1", "scsi0:0").Snapshot(); s.Commands != 0 {
		t.Errorf("reset left %d commands", s.Commands)
	}
}

func TestRouteErrors(t *testing.T) {
	srv, _, _ := newServer(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/nope", 404},
		{"GET", "/disks/vm1", 404},
		{"GET", "/disks/ghost/disk", 404},
		{"GET", "/disks/vm1/scsi0:0/bogus", 404},
		{"POST", "/disks", 405},
		{"GET", "/disks/vm1/scsi0:0/enable", 405},
		{"POST", "/disks/vm1/scsi0:0/fingerprint", 405},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}
