package histogram

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// refBinIndex is the binary search the LUT replaces — the reference
// implementation for equivalence tests.
func refBinIndex(edges []int64, v int64) int {
	return sort.Search(len(edges), func(i int) bool { return edges[i] >= v })
}

// TestLUTMatchesBinarySearch pins the lookup table to the binary search it
// replaces, over every standard bin set and the full int64 domain.
func TestLUTMatchesBinarySearch(t *testing.T) {
	sets := map[string][]int64{
		"ioLength":     IOLengthEdges(),
		"seekDistance": SeekDistanceEdges(),
		"latency":      LatencyEdges(),
		"interarrival": InterarrivalEdges(),
		"outstanding":  OutstandingEdges(),
		"observeNs":    {64, 128, 256, 512, 1024},
	}
	for name, edges := range sets {
		lut := newBinLUT(edges)
		if lut == nil {
			t.Fatalf("%s: LUT construction failed", name)
		}
		// Exhaustive near every edge, the small-table boundary and the
		// extremes; randomized everywhere else.
		var probes []int64
		for _, e := range edges {
			for d := int64(-2); d <= 2; d++ {
				probes = append(probes, e+d)
			}
		}
		probes = append(probes, 0, 1, -1, lutSmallSpan-1, lutSmallSpan,
			lutSmallSpan+1, -lutSmallSpan, -lutSmallSpan-1,
			math.MaxInt64, math.MinInt64, math.MinInt64+1)
		for _, v := range probes {
			if got, want := lut.lookup(v), refBinIndex(edges, v); got != want {
				t.Errorf("%s: lookup(%d) = %d, want %d", name, v, got, want)
			}
		}
		f := func(v int64) bool { return lut.lookup(v) == refBinIndex(edges, v) }
		if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestLUTMatchesBinarySearchRandomLayouts extends the equivalence to
// arbitrary strictly-increasing layouts, including negative-heavy ones.
func TestLUTMatchesBinarySearchRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		seen := make(map[int64]bool)
		var edges []int64
		for len(edges) < n {
			v := rng.Int63n(1<<40) - 1<<39
			if !seen[v] {
				seen[v] = true
				edges = append(edges, v)
			}
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		lut := newBinLUT(edges)
		if lut == nil {
			t.Fatalf("trial %d: LUT construction failed", trial)
		}
		for probe := 0; probe < 2000; probe++ {
			v := rng.Int63n(1<<41) - 1<<40
			if got, want := lut.lookup(v), refBinIndex(edges, v); got != want {
				t.Fatalf("trial %d edges %v: lookup(%d) = %d, want %d",
					trial, edges, v, got, want)
			}
		}
	}
}

// TestLUTFallbackWideLayout checks that layouts beyond the uint8 bin space
// fall back to binary search and still count correctly.
func TestLUTFallbackWideLayout(t *testing.T) {
	edges := make([]int64, 300)
	for i := range edges {
		edges[i] = int64(i) * 10
	}
	if lutFor(edges) != nil {
		t.Fatal("expected no LUT for a 301-bin layout")
	}
	h := New("wide", "u", edges)
	h.Insert(25)
	s := h.Snapshot()
	if s.Counts[refBinIndex(edges, 25)] != 1 || s.Total != 1 {
		t.Fatalf("fallback insert landed wrong: %+v", s.Counts[:5])
	}
}

// forceStripes creates a histogram with several stripes even on a
// single-core machine by widening GOMAXPROCS around construction.
func forceStripes(t *testing.T, edges []int64, n int) *Histogram {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	h := New("striped", "u", edges)
	runtime.GOMAXPROCS(prev)
	if int(h.stripeMask)+1 < 2 {
		t.Fatalf("expected >= 2 stripes at GOMAXPROCS=%d", n)
	}
	return h
}

// TestStripedCountsExact inserts a known multiset from many goroutines and
// requires the merged snapshot to be bin-exact — striping must never lose,
// duplicate or misplace a sample.
func TestStripedCountsExact(t *testing.T) {
	edges := IOLengthEdges()
	h := forceStripes(t, edges, 8)
	const goroutines = 8
	const perG = 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Insert(rng.Int63n(600000) + 1)
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Total != goroutines*perG {
		t.Fatalf("Total = %d, want %d", s.Total, goroutines*perG)
	}
	// Replay the same multiset into a reference histogram built with one
	// stripe and compare bins exactly.
	prev := runtime.GOMAXPROCS(1)
	ref := New("ref", "u", edges)
	runtime.GOMAXPROCS(prev)
	for g := 0; g < goroutines; g++ {
		rng := rand.New(rand.NewSource(int64(g)))
		for i := 0; i < perG; i++ {
			ref.Insert(rng.Int63n(600000) + 1)
		}
	}
	rs := ref.Snapshot()
	for i := range s.Counts {
		if s.Counts[i] != rs.Counts[i] {
			t.Errorf("bin %d: striped %d, reference %d", i, s.Counts[i], rs.Counts[i])
		}
	}
	if s.Sum != rs.Sum || s.Min != rs.Min || s.Max != rs.Max {
		t.Errorf("summary mismatch: striped sum=%d min=%d max=%d, ref sum=%d min=%d max=%d",
			s.Sum, s.Min, s.Max, rs.Sum, rs.Min, rs.Max)
	}
}

// TestStripedSnapshotConsistentUnderHammer hammers one striped histogram
// from GOMAXPROCS goroutines while concurrently snapshotting, asserting
// every snapshot is internally consistent (Total == sum of bins — exact by
// construction since Total is derived from the merged bins) and monotone
// versus the previous snapshot: no bin, Total or Sum ever goes backwards
// while inserts race the merge. This is the property the Prometheus
// exporter's cumulative buckets rely on across scrapes.
func TestStripedSnapshotConsistentUnderHammer(t *testing.T) {
	h := forceStripes(t, IOLengthEdges(), 8)
	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				h.Insert(rng.Int63n(600000) + 1)
			}
		}(int64(g))
	}
	prev := h.Snapshot()
	for i := 0; i < 300; i++ {
		s := h.Snapshot()
		var binSum int64
		for _, c := range s.Counts {
			binSum += c
		}
		if s.Total != binSum {
			t.Fatalf("snapshot %d: Total %d != sum of bins %d", i, s.Total, binSum)
		}
		if s.Total < prev.Total {
			t.Fatalf("snapshot %d: Total went backwards: %d -> %d", i, prev.Total, s.Total)
		}
		if s.Sum < prev.Sum {
			t.Fatalf("snapshot %d: Sum went backwards: %d -> %d", i, prev.Sum, s.Sum)
		}
		for b := range s.Counts {
			if s.Counts[b] < prev.Counts[b] {
				t.Fatalf("snapshot %d bin %d went backwards: %d -> %d",
					i, b, prev.Counts[b], s.Counts[b])
			}
		}
		prev = s
	}
	stop.Store(true)
	wg.Wait()
}

// TestMinMaxConcurrentInserts pins min/max exactness under concurrent
// inserts now that the unconditional CAS loops are gated behind a bounds
// check: goroutines insert disjoint ranges with known extrema and the final
// bounds must be exact, including extrema that appear only once, late, from
// a single goroutine.
func TestMinMaxConcurrentInserts(t *testing.T) {
	h := forceStripes(t, SeekDistanceEdges(), 8)
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(g))
			for i := 0; i < perG; i++ {
				h.Insert(rng.Int63n(1000) - 500)
			}
			// Each goroutine lands one extreme pair late; the global
			// extrema are known exactly.
			h.Insert(-1000000 - g)
			h.Insert(1000000 + g)
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	wantMin, wantMax := int64(-1000000-(goroutines-1)), int64(1000000+(goroutines-1))
	if s.Min != wantMin || s.Max != wantMax {
		t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, wantMin, wantMax)
	}
	if s.Total != goroutines*(perG+2) {
		t.Fatalf("Total = %d, want %d", s.Total, goroutines*(perG+2))
	}
}

// TestStripedResetZeroes verifies Reset clears every stripe, not just the
// first.
func TestStripedResetZeroes(t *testing.T) {
	h := forceStripes(t, LatencyEdges(), 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Insert(int64(i))
			}
		}()
	}
	wg.Wait()
	if h.Total() == 0 {
		t.Fatal("expected samples before reset")
	}
	h.Reset()
	s := h.Snapshot()
	if s.Total != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
	for i, c := range s.Counts {
		if c != 0 {
			t.Fatalf("bin %d nonzero after reset: %d", i, c)
		}
	}
}
