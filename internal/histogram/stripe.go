package histogram

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Striped counter storage. A histogram's bins are sharded across N stripes
// (N = GOMAXPROCS at construction, rounded up to a power of two) so that
// concurrently issuing goroutines do not contend on one cache line per bin.
// Each stripe is a cache-line-aligned block of nbins count cells plus one sum
// cell; Snapshot and Total merge the stripes, which preserves per-bin
// monotonicity: every cell only ever grows, and a later merge reads each cell
// after an earlier merge did.
//
// With GOMAXPROCS=1 there is exactly one stripe, so the single-threaded
// memory cost and merge cost match the unstriped layout.

// cacheLineBytes is the coherence granularity stripes are padded to.
const cacheLineBytes = 64

// maxStripes bounds the space cost on very wide machines: beyond 64 stripes
// the merge cost starts to show up in snapshot-heavy paths and the
// contention win has long since flattened.
const maxStripes = 64

// numStripes picks the stripe count for a new histogram.
func numStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	// Round up to a power of two so the stripe pick is a mask, not a mod.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newCells allocates nStripes*stride atomic cells with the first cell
// aligned to a cache line, so stripes padded to cache-line multiples never
// share a line with a neighbour.
func newCells(nStripes, stride int) []atomic.Int64 {
	n := nStripes * stride
	const wordsPerLine = cacheLineBytes / 8
	raw := make([]atomic.Int64, n+wordsPerLine-1)
	off := 0
	if r := uintptr(unsafe.Pointer(&raw[0])) % cacheLineBytes; r != 0 {
		off = int((cacheLineBytes - r) / 8)
	}
	return raw[off : off+n : off+n]
}

// stripeStride rounds the per-stripe cell count (nbins counts + 1 sum) up to
// a whole number of cache lines.
func stripeStride(nbins int) int {
	const wordsPerLine = cacheLineBytes / 8
	cells := nbins + 1
	return (cells + wordsPerLine - 1) / wordsPerLine * wordsPerLine
}

// stripeHint returns a cheap per-goroutine value used to pick a stripe.
// Goroutine stacks are distinct allocations, so the page number of a local
// variable is stable within a goroutine (until a stack growth moves it —
// harmless, the hint only spreads load) and distinct across goroutines; a
// Fibonacci hash spreads the page numbers across the stripe space. This
// costs a couple of arithmetic ops — no TLS lookup, no atomic.
func stripeHint() uint64 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return (uint64(p>>12) * 0x9E3779B97F4A7C15) >> 52
}
