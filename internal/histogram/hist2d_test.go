package histogram

import (
	"strings"
	"testing"
)

func TestHist2DInsertAndMarginals(t *testing.T) {
	h := New2D("corr", "x", []int64{10, 20}, "y", []int64{100})
	h.Insert(5, 50)    // x bin 0, y bin 0
	h.Insert(15, 500)  // x bin 1, y bin 1 (overflow)
	h.Insert(15, 90)   // x bin 1, y bin 0
	h.Insert(999, 999) // x overflow, y overflow
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	s := h.Snapshot()
	if s.Counts[0][0] != 1 || s.Counts[1][1] != 1 || s.Counts[1][0] != 1 || s.Counts[2][1] != 1 {
		t.Errorf("grid wrong: %v", s.Counts)
	}
	mx := s.MarginalX()
	if mx.Counts[0] != 1 || mx.Counts[1] != 2 || mx.Counts[2] != 1 || mx.Total != 4 {
		t.Errorf("MarginalX wrong: %+v", mx)
	}
	my := s.MarginalY()
	if my.Counts[0] != 2 || my.Counts[1] != 2 || my.Total != 4 {
		t.Errorf("MarginalY wrong: %+v", my)
	}
}

func TestHist2DConditional(t *testing.T) {
	h := New2D("corr", "seek", []int64{0, 100}, "lat", []int64{1000})
	h.Insert(50, 100)   // near seek, fast
	h.Insert(5000, 9e6) // far seek, slow
	h.Insert(5000, 8e6)
	s := h.Snapshot()
	far := s.ConditionalY(2) // seek overflow bin
	if far.Total != 2 || far.Counts[1] != 2 {
		t.Errorf("ConditionalY(2) = %+v", far)
	}
	near := s.ConditionalY(1)
	if near.Total != 1 || near.Counts[0] != 1 {
		t.Errorf("ConditionalY(1) = %+v", near)
	}
}

func TestHist2DString(t *testing.T) {
	h := New2D("corr", "x", []int64{10}, "y", []int64{10})
	h.Insert(5, 5)
	out := h.Snapshot().String()
	if !strings.Contains(out, "corr") || !strings.Contains(out, ">10") {
		t.Errorf("render missing pieces:\n%s", out)
	}
}

func TestHist2DValidation(t *testing.T) {
	for _, c := range []struct{ x, y []int64 }{
		{nil, []int64{1}},
		{[]int64{1}, nil},
		{[]int64{2, 1}, []int64{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New2D(%v,%v) should panic", c.x, c.y)
				}
			}()
			New2D("n", "x", c.x, "y", c.y)
		}()
	}
}

func TestSeriesSumAndCSV(t *testing.T) {
	mk := func(vals ...int64) *Snapshot {
		h := New("oio", "I/Os", []int64{1, 2})
		for _, v := range vals {
			h.Insert(v)
		}
		return h.Snapshot()
	}
	ts := &Series{IntervalMicros: 6_000_000}
	ts.Append(mk(1, 1, 2))
	ts.Append(mk(3, 3))
	if ts.Len() != 2 {
		t.Fatalf("Len = %d", ts.Len())
	}
	sum := ts.Sum()
	if sum.Total != 5 || sum.Counts[0] != 2 || sum.Counts[1] != 1 || sum.Counts[2] != 2 {
		t.Errorf("Sum wrong: %+v", sum)
	}
	csv := ts.CSV()
	if !strings.Contains(csv, "S1,S2") && !strings.Contains(csv, ",S1,S2") {
		t.Errorf("CSV header missing intervals:\n%s", csv)
	}
	if !strings.Contains(csv, ">2,0,2") {
		t.Errorf("CSV overflow row wrong:\n%s", csv)
	}
	if ts.String() == "" {
		t.Error("String empty")
	}
}

func TestSeriesEmpty(t *testing.T) {
	ts := &Series{}
	if ts.Sum() != nil || ts.CSV() != "" || ts.String() != "" {
		t.Error("empty series should render empty")
	}
}

func TestSeriesHeatmap(t *testing.T) {
	mk := func(vals ...int64) *Snapshot {
		h := New("lat", "us", []int64{10, 100})
		for _, v := range vals {
			h.Insert(v)
		}
		return h.Snapshot()
	}
	ts := &Series{IntervalMicros: 1000}
	ts.Append(mk(5, 5, 5)) // mode in bin "10"
	ts.Append(mk(50, 50))  // mode in bin "100"
	hm := ts.Heatmap()
	lines := strings.Split(strings.TrimRight(hm, "\n"), "\n")
	if len(lines) != 4 { // header + 3 bins
		t.Fatalf("heatmap:\n%s", hm)
	}
	// Bin "10" row: dark then blank; bin "100" row: blank then dark.
	if !strings.Contains(lines[1], "@ ") {
		t.Errorf("row 10: %q", lines[1])
	}
	if !strings.Contains(lines[2], " @") {
		t.Errorf("row 100: %q", lines[2])
	}
	if (&Series{}).Heatmap() != "" {
		t.Error("empty heatmap should be empty")
	}
}

func BenchmarkHist2DInsert(b *testing.B) {
	h := New2D("corr", "seek", SeekDistanceEdges(), "lat", LatencyEdges())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert(int64(i%1000000)-500000, int64(i%200000))
	}
}
