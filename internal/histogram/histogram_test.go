package histogram

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestBinIndexBoundaries(t *testing.T) {
	h := New("t", "u", []int64{10, 20, 30})
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-5, 0}, {0, 0}, {9, 0}, {10, 0},
		{11, 1}, {20, 1},
		{21, 2}, {30, 2},
		{31, 3}, {1000, 3}, {math.MaxInt64, 3},
	}
	for _, c := range cases {
		if got := h.BinIndex(c.v); got != c.want {
			t.Errorf("BinIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestInsertCountsAndStats(t *testing.T) {
	h := New("t", "u", []int64{10, 20})
	for _, v := range []int64{5, 10, 15, 25, 100} {
		h.Insert(v)
	}
	s := h.Snapshot()
	if s.Total != 5 {
		t.Fatalf("Total = %d, want 5", s.Total)
	}
	wantCounts := []int64{2, 1, 2}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Min != 5 || s.Max != 100 {
		t.Errorf("Min/Max = %d/%d, want 5/100", s.Min, s.Max)
	}
	if s.Sum != 155 {
		t.Errorf("Sum = %d, want 155", s.Sum)
	}
	if got := s.Mean(); got != 31 {
		t.Errorf("Mean = %v, want 31", got)
	}
}

func TestEmptySnapshot(t *testing.T) {
	s := New("t", "u", []int64{1}).Snapshot()
	if s.Total != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot not zeroed: %+v", s)
	}
	if s.Percentile(50) != 0 {
		t.Error("Percentile on empty snapshot should be 0")
	}
}

func TestInsertNegativeValues(t *testing.T) {
	h := NewSeekDistance("seek")
	h.Insert(-1000000)
	h.Insert(-300)
	h.Insert(0)
	h.Insert(1)
	h.Insert(700000)
	s := h.Snapshot()
	// -1000000 <= -500000 -> bin 0; -300 -> bin of edge -64? No: first edge
	// >= -300 is -64, index 4. 0 -> bin of edge 0 (index 8). 1 -> bin of
	// edge 2 (index 9). 700000 -> overflow (index 17).
	for _, c := range []struct{ bin int }{{0}, {4}, {8}, {9}, {17}} {
		if s.Counts[c.bin] != 1 {
			t.Errorf("Counts[%d] = %d, want 1 (snapshot %v)", c.bin, s.Counts[c.bin], s.Counts)
		}
	}
	if s.Min != -1000000 || s.Max != 700000 {
		t.Errorf("Min/Max = %d/%d", s.Min, s.Max)
	}
}

func TestSequentialDistanceLandsInBinTwo(t *testing.T) {
	// The paper: "sequential I/Os will result in a histogram whose peak is
	// centered around 1"; with the figure's edges that is the bin labeled 2.
	h := NewSeekDistance("seek")
	h.Insert(1)
	s := h.Snapshot()
	idx := -1
	for i, c := range s.Counts {
		if c == 1 {
			idx = i
		}
	}
	if s.BinLabel(idx) != "2" {
		t.Errorf("distance 1 landed in bin %q, want \"2\"", s.BinLabel(idx))
	}
}

func TestIOLengthSpecialSizes(t *testing.T) {
	// 4096 must be separable from 4095 and from 4097..8191.
	h := NewIOLength("len")
	h.Insert(4095)
	h.Insert(4096)
	h.Insert(4097)
	h.Insert(8192)
	s := h.Snapshot()
	find := func(label string) int64 {
		for i := range s.Counts {
			if s.BinLabel(i) == label {
				return s.Counts[i]
			}
		}
		t.Fatalf("no bin labeled %q", label)
		return 0
	}
	if find("4095") != 1 || find("4096") != 1 || find("8191") != 1 || find("8192") != 1 {
		t.Errorf("special sizes not isolated: %v", s.Counts)
	}
}

func TestInsertN(t *testing.T) {
	h := New("t", "u", []int64{10})
	h.InsertN(5, 3)
	h.InsertN(50, 0)  // no-op
	h.InsertN(50, -2) // no-op
	s := h.Snapshot()
	if s.Total != 3 || s.Counts[0] != 3 || s.Sum != 15 {
		t.Errorf("InsertN wrong: %+v", s)
	}
	if s.Min != 5 || s.Max != 5 {
		t.Errorf("InsertN min/max: %d/%d", s.Min, s.Max)
	}
}

func TestReset(t *testing.T) {
	h := New("t", "u", []int64{10})
	h.Insert(5)
	h.Reset()
	s := h.Snapshot()
	if s.Total != 0 || s.Counts[0] != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("Reset incomplete: %+v", s)
	}
	h.Insert(7)
	if got := h.Snapshot().Min; got != 7 {
		t.Errorf("Min after reset+insert = %d, want 7", got)
	}
}

func TestConcurrentInsertIsLossless(t *testing.T) {
	h := NewIOLength("len")
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Insert(int64((g*per + i) % 600000))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Total != goroutines*per {
		t.Errorf("Total = %d, want %d", s.Total, goroutines*per)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Total {
		t.Errorf("bin sum %d != total %d", sum, s.Total)
	}
}

func TestPercentile(t *testing.T) {
	h := New("t", "u", []int64{10, 20, 30, 40})
	for v := int64(1); v <= 40; v++ {
		h.Insert(v)
	}
	s := h.Snapshot()
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %d, want min 1", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Errorf("P100 = %d, want max 40", got)
	}
	if got := s.Percentile(50); got != 20 {
		t.Errorf("P50 = %d, want 20", got)
	}
	if got := s.Percentile(75); got != 30 {
		t.Errorf("P75 = %d, want 30", got)
	}
}

func TestPercentileClampsToObservedRange(t *testing.T) {
	h := New("t", "u", []int64{100, 200})
	h.Insert(150)
	s := h.Snapshot()
	if got := s.Percentile(99); got != 150 {
		t.Errorf("P99 = %d, want clamped to max 150", got)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a, b := New("a", "u", []int64{10, 20}), New("b", "u", []int64{10, 20})
	a.Insert(5)
	a.Insert(15)
	b.Insert(25)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Add(sb)
	if sa.Total != 3 || sa.Counts[2] != 1 {
		t.Errorf("Add wrong: %+v", sa)
	}
	if sa.Min != 5 || sa.Max != 25 {
		t.Errorf("Add min/max = %d/%d", sa.Min, sa.Max)
	}
}

func TestSnapshotAddIntoEmpty(t *testing.T) {
	a, b := New("a", "u", []int64{10}), New("b", "u", []int64{10})
	b.Insert(3)
	sa := a.Snapshot()
	sa.Add(b.Snapshot())
	if sa.Min != 3 || sa.Max != 3 || sa.Total != 1 {
		t.Errorf("Add into empty: %+v", sa)
	}
}

func TestSnapshotSub(t *testing.T) {
	h := New("t", "u", []int64{10, 20})
	h.Insert(5)
	early := h.Snapshot()
	h.Insert(15)
	h.Insert(15)
	late := h.Snapshot()
	d := late.Sub(early)
	if d.Total != 2 || d.Counts[1] != 2 || d.Counts[0] != 0 {
		t.Errorf("Sub wrong: %+v", d)
	}
	if d.Sum != 30 {
		t.Errorf("Sub sum = %d, want 30", d.Sum)
	}
}

func TestMismatchedLayoutPanics(t *testing.T) {
	a := New("a", "u", []int64{10}).Snapshot()
	b := New("b", "u", []int64{20}).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on layout mismatch")
		}
	}()
	a.Add(b)
}

func TestNewValidatesEdges(t *testing.T) {
	for _, edges := range [][]int64{{}, {10, 10}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", edges)
				}
			}()
			New("t", "u", edges)
		}()
	}
}

func TestBinLabelAndRange(t *testing.T) {
	s := New("t", "u", []int64{10, 20}).Snapshot()
	if s.BinLabel(0) != "10" || s.BinLabel(1) != "20" || s.BinLabel(2) != ">20" {
		t.Errorf("labels: %q %q %q", s.BinLabel(0), s.BinLabel(1), s.BinLabel(2))
	}
	lo, hi := s.BinRange(0)
	if lo != math.MinInt64 || hi != 10 {
		t.Errorf("BinRange(0) = (%d,%d]", lo, hi)
	}
	lo, hi = s.BinRange(1)
	if lo != 10 || hi != 20 {
		t.Errorf("BinRange(1) = (%d,%d]", lo, hi)
	}
	lo, hi = s.BinRange(2)
	if lo != 20 || hi != math.MaxInt64 {
		t.Errorf("BinRange(2) = (%d,%d]", lo, hi)
	}
}

func TestRebinToPowersOfTwo(t *testing.T) {
	h := NewIOLength("len")
	h.Insert(4095)
	h.Insert(4096)
	h.Insert(500)
	s := h.Snapshot().Rebin(PowerOfTwoEdges(512, 524288))
	// 4095 and 4096 both collapse into the <=4096 bin; 500 into <=512.
	find := func(label string) int64 {
		for i := range s.Counts {
			if s.BinLabel(i) == label {
				return s.Counts[i]
			}
		}
		return -1
	}
	if find("4096") != 2 {
		t.Errorf("rebinned 4096 bin = %d, want 2", find("4096"))
	}
	if find("512") != 1 {
		t.Errorf("rebinned 512 bin = %d, want 1", find("512"))
	}
	if s.Total != 3 {
		t.Errorf("rebin lost samples: %d", s.Total)
	}
}

func TestPowerOfTwoEdges(t *testing.T) {
	got := PowerOfTwoEdges(512, 4096)
	want := []int64{512, 1024, 2048, 4096}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: total always equals the sum of all bins and the sum of inserted
// values equals Sum.
func TestInsertConservesMass(t *testing.T) {
	f := func(vals []int32) bool {
		h := New("t", "u", []int64{-100, 0, 100, 10000})
		var sum int64
		for _, v := range vals {
			h.Insert(int64(v))
			sum += int64(v)
		}
		s := h.Snapshot()
		var binSum int64
		for _, c := range s.Counts {
			binSum += c
		}
		return s.Total == int64(len(vals)) && binSum == s.Total && s.Sum == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BinIndex(v) is monotone in v and every value lands in the bin
// whose (lo,hi] range contains it.
func TestBinIndexConsistentWithRange(t *testing.T) {
	s := New("t", "u", SeekDistanceEdges()).Snapshot()
	h := New("t", "u", SeekDistanceEdges())
	f := func(v int64) bool {
		i := h.BinIndex(v)
		lo, hi := s.BinRange(i)
		return v > lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardBinSetsMatchPaper(t *testing.T) {
	if n := len(IOLengthEdges()); n != 17 {
		t.Errorf("IOLengthEdges has %d edges, want 17", n)
	}
	if n := len(SeekDistanceEdges()); n != 17 {
		t.Errorf("SeekDistanceEdges has %d edges, want 17", n)
	}
	if n := len(OutstandingEdges()); n != 12 {
		t.Errorf("OutstandingEdges has %d edges, want 12", n)
	}
	if n := len(LatencyEdges()); n != 10 {
		t.Errorf("LatencyEdges has %d edges, want 10", n)
	}
	// Spot checks against the figures.
	if SeekDistanceEdges()[8] != 0 {
		t.Error("seek distance bins must include 0")
	}
	le := IOLengthEdges()
	if le[3] != 4095 || le[4] != 4096 {
		t.Error("length bins must isolate exactly-4096")
	}
}

func BenchmarkInsert(b *testing.B) {
	h := NewIOLength("len")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert(int64(i%600000) + 1)
	}
}

func BenchmarkInsertParallel(b *testing.B) {
	h := NewIOLength("len")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v = (v + 4096) % 600000
			h.Insert(v)
		}
	})
}

func BenchmarkSnapshot(b *testing.B) {
	h := NewIOLength("len")
	for i := 0; i < 1000; i++ {
		h.Insert(int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Snapshot()
	}
}
