package histogram

import (
	"fmt"
	"strings"
)

// Series is a time series of interval histograms: one snapshot per fixed
// interval, each covering only the samples that arrived during that
// interval. The paper's Figure 4(d) ("Outstanding I/Os Histogram over Time",
// 6-second intervals) and Figure 6(c) ("I/O Latency Histogram over Time")
// are renderings of exactly this structure.
type Series struct {
	// IntervalMicros is the width of each interval in microseconds.
	IntervalMicros int64
	// Snaps[i] covers (i*Interval, (i+1)*Interval].
	Snaps []*Snapshot
}

// Append adds the next interval's snapshot.
func (ts *Series) Append(s *Snapshot) { ts.Snaps = append(ts.Snaps, s) }

// Len returns the number of recorded intervals.
func (ts *Series) Len() int { return len(ts.Snaps) }

// Sum collapses the whole series back into a single snapshot.
func (ts *Series) Sum() *Snapshot {
	if len(ts.Snaps) == 0 {
		return nil
	}
	out := ts.Snaps[0].Clone()
	for _, s := range ts.Snaps[1:] {
		out.Add(s)
	}
	return out
}

// CSV renders the series as a matrix: one row per bin, one column per
// interval (S1, S2, …), the layout of the paper's 3-D surface charts.
func (ts *Series) CSV() string {
	if len(ts.Snaps) == 0 {
		return ""
	}
	first := ts.Snaps[0]
	var b strings.Builder
	fmt.Fprintf(&b, "bin (%s)", first.Unit)
	for i := range ts.Snaps {
		fmt.Fprintf(&b, ",S%d", i+1)
	}
	b.WriteByte('\n')
	for bin := range first.Counts {
		b.WriteString(first.BinLabel(bin))
		for _, s := range ts.Snaps {
			fmt.Fprintf(&b, ",%d", s.Counts[bin])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Heatmap renders the series as an ASCII intensity grid — one row per bin,
// one column per interval, darkness proportional to that cell's share of
// its interval. It is the textual analogue of the paper's 3-D surface
// charts (Figures 4(d), 6(c)): a mode shift reads as the dark band jumping
// rows.
func (ts *Series) Heatmap() string {
	if len(ts.Snaps) == 0 {
		return ""
	}
	const shades = " .:-=+*#%@"
	first := ts.Snaps[0]
	var b strings.Builder
	fmt.Fprintf(&b, "%s over time (%d intervals of %dus; darker = larger share)\n",
		first.Name, len(ts.Snaps), ts.IntervalMicros)
	for bin := range first.Counts {
		fmt.Fprintf(&b, "%12s |", first.BinLabel(bin))
		for _, s := range ts.Snaps {
			var peak int64 = 1
			for _, c := range s.Counts {
				if c > peak {
					peak = c
				}
			}
			idx := int(s.Counts[bin] * int64(len(shades)-1) / peak)
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// String renders a compact per-interval summary (total and modal bin), a
// textual stand-in for the paper's surface plots.
func (ts *Series) String() string {
	var b strings.Builder
	if len(ts.Snaps) > 0 {
		fmt.Fprintf(&b, "%s over time (%d intervals of %dus)\n",
			ts.Snaps[0].Name, len(ts.Snaps), ts.IntervalMicros)
	}
	for i, s := range ts.Snaps {
		mode, modeCount := 0, int64(-1)
		for bin, c := range s.Counts {
			if c > modeCount {
				mode, modeCount = bin, c
			}
		}
		fmt.Fprintf(&b, "S%-3d total=%-8d mode=%s (%d)\n", i+1, s.Total, s.BinLabel(mode), modeCount)
	}
	return b.String()
}
