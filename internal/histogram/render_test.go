package histogram

import (
	"strings"
	"testing"
)

func TestRenderASCII(t *testing.T) {
	h := New("I/O Length", "bytes", []int64{4096, 8192})
	for i := 0; i < 10; i++ {
		h.Insert(4096)
	}
	h.Insert(5000)
	out := h.Snapshot().Render(40)
	if !strings.Contains(out, "I/O Length (bytes): 11 samples") {
		t.Errorf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 bins
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 40)) {
		t.Errorf("peak bin should fill width:\n%s", lines[1])
	}
	// A nonzero bin must show at least one mark even if tiny.
	if !strings.Contains(lines[2], "#") {
		t.Errorf("nonzero bin rendered empty:\n%s", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bin rendered nonempty:\n%s", lines[3])
	}
}

func TestRenderMinWidth(t *testing.T) {
	h := New("t", "u", []int64{1})
	h.Insert(1)
	if out := h.Snapshot().Render(0); !strings.Contains(out, "#") {
		t.Errorf("Render(0) should clamp width:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	h := New("t", "bytes", []int64{512, 1024})
	h.Insert(100)
	h.Insert(2000)
	csv := h.Snapshot().CSV()
	want := "bin (bytes),frequency\n512,1\n1024,0\n>1024,1\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestCompareCSV(t *testing.T) {
	a := New("XP Pro", "bytes", []int64{512})
	b := New("Vista Enterprise", "bytes", []int64{512})
	a.Insert(100)
	b.Insert(9999)
	out := CompareCSV(a.Snapshot(), b.Snapshot())
	if !strings.Contains(out, "XP Pro,Vista Enterprise") {
		t.Errorf("header: %s", out)
	}
	if !strings.Contains(out, "512,1,0") || !strings.Contains(out, ">512,0,1") {
		t.Errorf("rows: %s", out)
	}
	if CompareCSV() != "" {
		t.Error("CompareCSV() with no args should be empty")
	}
}

func TestRenderCompare(t *testing.T) {
	a := New("solo", "us", []int64{100})
	b := New("dual", "us", []int64{100})
	a.Insert(50)
	b.Insert(500)
	out := RenderCompare("Latency", a.Snapshot(), b.Snapshot())
	if !strings.Contains(out, "solo") || !strings.Contains(out, "dual") || !strings.Contains(out, ">100") {
		t.Errorf("RenderCompare:\n%s", out)
	}
	if RenderCompare("x") != "" {
		t.Error("no snapshots should render empty")
	}
}
