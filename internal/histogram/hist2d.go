package histogram

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Hist2D is a two-dimensional histogram: a grid of counters over two
// independent bin layouts. The paper's §3.6 notes that correlating metrics
// (e.g. seek distance with latency) "is possible using online techniques
// including with the use of 2d histograms" but leaves it to SCSI traces;
// this type implements that extension. Insertion remains O(log mx + log my)
// time and the structure O(mx*my) space, so it is still fast enough for the
// online path.
type Hist2D struct {
	name   string
	xName  string
	yName  string
	xEdges []int64
	yEdges []int64
	cells  []atomic.Int64 // (len(xEdges)+1) * (len(yEdges)+1), row-major by x
	total  atomic.Int64
}

// New2D returns a 2-D histogram over the given edge sets. Both edge slices
// must be strictly increasing and non-empty.
func New2D(name, xName string, xEdges []int64, yName string, yEdges []int64) *Hist2D {
	for _, e := range [][]int64{xEdges, yEdges} {
		if len(e) == 0 {
			panic("histogram: New2D needs at least one edge per axis")
		}
		for i := 1; i < len(e); i++ {
			if e[i] <= e[i-1] {
				panic("histogram: New2D edges not strictly increasing")
			}
		}
	}
	return &Hist2D{
		name:   name,
		xName:  xName,
		yName:  yName,
		xEdges: append([]int64(nil), xEdges...),
		yEdges: append([]int64(nil), yEdges...),
		cells:  make([]atomic.Int64, (len(xEdges)+1)*(len(yEdges)+1)),
	}
}

func binIndex(edges []int64, v int64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if edges[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Insert counts one (x, y) sample.
func (h *Hist2D) Insert(x, y int64) {
	xi := binIndex(h.xEdges, x)
	yi := binIndex(h.yEdges, y)
	h.cells[xi*(len(h.yEdges)+1)+yi].Add(1)
	h.total.Add(1)
}

// Total returns the number of samples inserted.
func (h *Hist2D) Total() int64 { return h.total.Load() }

// Snapshot copies the grid into an immutable Snapshot2D.
func (h *Hist2D) Snapshot() *Snapshot2D {
	s := &Snapshot2D{
		Name:   h.name,
		XName:  h.xName,
		YName:  h.yName,
		XEdges: h.xEdges,
		YEdges: h.yEdges,
		Counts: make([][]int64, len(h.xEdges)+1),
		Total:  h.total.Load(),
	}
	ny := len(h.yEdges) + 1
	for xi := range s.Counts {
		row := make([]int64, ny)
		for yi := 0; yi < ny; yi++ {
			row[yi] = h.cells[xi*ny+yi].Load()
		}
		s.Counts[xi] = row
	}
	return s
}

// Snapshot2D is an immutable copy of a Hist2D.
type Snapshot2D struct {
	Name   string    `json:"name"`
	XName  string    `json:"xName"`
	YName  string    `json:"yName"`
	XEdges []int64   `json:"xEdges"`
	YEdges []int64   `json:"yEdges"`
	Counts [][]int64 `json:"counts"` // Counts[xi][yi]
	Total  int64     `json:"total"`
}

// MarginalX collapses the grid onto the X axis, yielding an ordinary 1-D
// snapshot.
func (s *Snapshot2D) MarginalX() *Snapshot {
	out := &Snapshot{Name: s.XName, Edges: s.XEdges,
		Counts: make([]int64, len(s.XEdges)+1), Total: s.Total}
	for xi, row := range s.Counts {
		for _, c := range row {
			out.Counts[xi] += c
		}
	}
	out.estimateBounds()
	return out
}

// MarginalY collapses the grid onto the Y axis.
func (s *Snapshot2D) MarginalY() *Snapshot {
	out := &Snapshot{Name: s.YName, Edges: s.YEdges,
		Counts: make([]int64, len(s.YEdges)+1), Total: s.Total}
	for _, row := range s.Counts {
		for yi, c := range row {
			out.Counts[yi] += c
		}
	}
	out.estimateBounds()
	return out
}

// ConditionalY returns the Y histogram restricted to samples whose X value
// fell into bin xi — e.g. "the latency distribution of far seeks".
func (s *Snapshot2D) ConditionalY(xi int) *Snapshot {
	row := s.Counts[xi]
	out := &Snapshot{Name: s.YName, Edges: s.YEdges,
		Counts: append([]int64(nil), row...)}
	for _, c := range row {
		out.Total += c
	}
	out.estimateBounds()
	return out
}

func edgeLabel(edges []int64, i int) string {
	if i == len(edges) {
		return fmt.Sprintf(">%d", edges[len(edges)-1])
	}
	return fmt.Sprintf("%d", edges[i])
}

// String renders the grid as a table with X bins as rows.
func (s *Snapshot2D) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s x %s), %d samples\n", s.Name, s.XName, s.YName, s.Total)
	fmt.Fprintf(&b, "%12s", s.XName+`\`+s.YName)
	for yi := range s.YEdges {
		fmt.Fprintf(&b, " %8s", edgeLabel(s.YEdges, yi))
	}
	fmt.Fprintf(&b, " %8s\n", edgeLabel(s.YEdges, len(s.YEdges)))
	for xi, row := range s.Counts {
		fmt.Fprintf(&b, "%12s", edgeLabel(s.XEdges, xi))
		for _, c := range row {
			fmt.Fprintf(&b, " %8d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
