package histogram

import (
	"fmt"
	"strings"
)

// String renders the snapshot as an ASCII bar chart, one row per bin,
// mirroring the paper's figure format (bin upper edge on the axis, frequency
// as the bar).
func (s *Snapshot) String() string {
	return s.Render(50)
}

// Render renders the snapshot with bars scaled to at most width characters.
func (s *Snapshot) Render(width int) string {
	if width < 1 {
		width = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): %d samples", s.Name, s.Unit, s.Total)
	if s.Total > 0 {
		fmt.Fprintf(&b, ", min=%d max=%d mean=%.1f", s.Min, s.Max, s.Mean())
	}
	b.WriteByte('\n')
	var peak int64 = 1
	for _, c := range s.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range s.Counts {
		bar := int(c * int64(width) / peak)
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%12s |%-*s %d\n", s.BinLabel(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// CSV renders the snapshot as two-column CSV ("bin,frequency") with a header
// naming the histogram, suitable for regenerating the paper's charts in a
// spreadsheet.
func (s *Snapshot) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bin (%s),frequency\n", s.Unit)
	for i, c := range s.Counts {
		fmt.Fprintf(&b, "%s,%d\n", s.BinLabel(i), c)
	}
	return b.String()
}

// CompareCSV renders several snapshots side by side ("bin,name1,name2,…"),
// the layout of the paper's overlaid figures (e.g. Figure 5's "Vista
// Enterprise" vs "XP Pro" series). All snapshots must share a bin layout.
func CompareCSV(snaps ...*Snapshot) string {
	if len(snaps) == 0 {
		return ""
	}
	first := snaps[0]
	for _, s := range snaps[1:] {
		first.mustMatch(s)
	}
	var b strings.Builder
	b.WriteString("bin (" + first.Unit + ")")
	for _, s := range snaps {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	for i := range first.Counts {
		b.WriteString(first.BinLabel(i))
		for _, s := range snaps {
			fmt.Fprintf(&b, ",%d", s.Counts[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCompare renders multiple snapshots as a side-by-side ASCII table.
func RenderCompare(title string, snaps ...*Snapshot) string {
	if len(snaps) == 0 {
		return ""
	}
	first := snaps[0]
	for _, s := range snaps[1:] {
		first.mustMatch(s)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, first.Unit)
	fmt.Fprintf(&b, "%12s", "bin")
	for _, s := range snaps {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for i := range first.Counts {
		fmt.Fprintf(&b, "%12s", first.BinLabel(i))
		for _, s := range snaps {
			fmt.Fprintf(&b, " %14d", s.Counts[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
