// Package histogram implements the online histograms at the heart of the
// IISWC 2007 paper "Easy and Efficient Disk I/O Workload Characterization in
// VMware ESX Server".
//
// A Histogram has a fixed set of irregular bin upper edges chosen up front
// (see bins.go for the paper's standard bin sets) plus an implicit overflow
// bin. Insertion is O(1) and lock-free — a precomputed lookup table replaces
// the per-insert binary search (lut.go) and the counters are sharded across
// cache-line-padded stripes (stripe.go) — so a histogram can sit on the
// hypervisor's per-command fast path even with many cores issuing
// concurrently: the paper's key claim is that this costs O(1) CPU per
// command and O(m) space total, versus O(n) space for a trace.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts int64 samples into bins with fixed upper edges. The bin
// for a sample v is the first edge e with v <= e; samples larger than every
// edge land in the overflow bin. Alongside the bins it tracks count, sum,
// min and max so exact means survive binning.
//
// All methods are safe for concurrent use. The bins and the running sum are
// striped per goroutine (see stripe.go); min and max stay global because
// after warm-up they almost never change, and the update is a conditional
// CAS only taken when the bound actually moves.
type Histogram struct {
	name  string
	unit  string
	edges []int64 // sorted ascending, immutable after construction
	lut   *binLUT // nil for layouts the LUT cannot index (binary search)
	nbins int     // len(edges)+1, including the overflow bin

	// cells holds stripeCount cache-line-aligned stripes of stride words
	// each: nbins count cells followed by one sum cell. The per-sample
	// total is derived by summing the count cells, so a merged snapshot's
	// Total always equals the sum of its bins.
	cells      []atomic.Int64
	stride     int
	stripeMask uint64

	min atomic.Int64
	max atomic.Int64
}

// New returns a histogram with the given bin upper edges. The edges must be
// strictly increasing; New panics otherwise since bin layout is a
// compile-time decision in this system. name and unit are used only for
// rendering (e.g. "I/O Length", "bytes").
func New(name, unit string, edges []int64) *Histogram {
	if len(edges) == 0 {
		panic("histogram: need at least one bin edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("histogram: edges not strictly increasing at %d: %d <= %d",
				i, edges[i], edges[i-1]))
		}
	}
	nbins := len(edges) + 1
	stripes := numStripes()
	h := &Histogram{
		name:       name,
		unit:       unit,
		edges:      append([]int64(nil), edges...),
		nbins:      nbins,
		stride:     stripeStride(nbins),
		stripeMask: uint64(stripes - 1),
	}
	h.lut = lutFor(h.edges)
	h.cells = newCells(stripes, h.stride)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Name returns the display name given at construction.
func (h *Histogram) Name() string { return h.name }

// Unit returns the sample unit given at construction.
func (h *Histogram) Unit() string { return h.unit }

// NumBins returns the number of bins including the overflow bin.
func (h *Histogram) NumBins() int { return h.nbins }

// BinIndex returns the bin a value of v would be counted in.
func (h *Histogram) BinIndex(v int64) int {
	if h.lut != nil {
		return h.lut.lookup(v)
	}
	// sort.Search finds the first edge >= v, i.e. the first bin whose
	// upper edge admits v.
	return sort.Search(len(h.edges), func(i int) bool { return h.edges[i] >= v })
}

// Insert counts one sample. This is the hypervisor fast-path operation: a
// table lookup plus two atomic adds on a per-goroutine stripe, and two
// bound checks that CAS only when the sample extends the observed range.
func (h *Histogram) Insert(v int64) {
	h.InsertN(v, 1)
}

// InsertN counts n identical samples (used by trace replay).
func (h *Histogram) InsertN(v, n int64) {
	if n <= 0 {
		return
	}
	var bin int
	if h.lut != nil {
		bin = h.lut.lookup(v)
	} else {
		bin = h.BinIndex(v)
	}
	base := 0
	if h.stripeMask != 0 {
		base = int(stripeHint()&h.stripeMask) * h.stride
	}
	h.cells[base+bin].Add(n)
	h.cells[base+h.nbins].Add(v * n)
	h.updateBounds(v)
}

// updateBounds widens min/max to admit v. The common case — v inside the
// already-observed range — is two plain loads and no write, so a hot
// histogram's min/max cache lines stay shared instead of bouncing between
// cores on every insert.
func (h *Histogram) updateBounds(v int64) {
	if v < h.min.Load() {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
	}
	if v > h.max.Load() {
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// Reset zeroes all bins and summary statistics.
func (h *Histogram) Reset() {
	for i := range h.cells {
		h.cells[i].Store(0)
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
}

// Total returns the number of samples inserted.
func (h *Histogram) Total() int64 {
	var total int64
	for s := 0; s <= int(h.stripeMask); s++ {
		base := s * h.stride
		for i := 0; i < h.nbins; i++ {
			total += h.cells[base+i].Load()
		}
	}
	return total
}

// Snapshot merges the stripes into an immutable Snapshot. Concurrent inserts
// may straddle the copy; per the paper this tearing is acceptable for
// monitoring (each individual counter is still consistent). Two guarantees
// survive the merge: Total is derived from the merged bins, so it always
// equals their sum exactly; and every cell is monotone non-decreasing, so
// between two snapshots with no intervening Reset no bin ever goes
// backwards — the property the Prometheus exporter's cumulative buckets
// rely on across scrapes.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{
		Name:   h.name,
		Unit:   h.unit,
		Edges:  h.edges, // immutable, shared
		Counts: make([]int64, h.nbins),
		Min:    h.min.Load(),
		Max:    h.max.Load(),
	}
	for st := 0; st <= int(h.stripeMask); st++ {
		base := st * h.stride
		for i := 0; i < h.nbins; i++ {
			s.Counts[i] += h.cells[base+i].Load()
		}
		s.Sum += h.cells[base+h.nbins].Load()
	}
	for _, c := range s.Counts {
		s.Total += c
	}
	if s.Total == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Snapshot is an immutable copy of a histogram's state, suitable for
// rendering, diffing and serialization.
type Snapshot struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit"`
	Edges  []int64 `json:"edges"`
	Counts []int64 `json:"counts"` // len(Edges)+1; last is the overflow bin
	Total  int64   `json:"total"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// Mean returns the exact arithmetic mean of inserted samples (tracked
// alongside the bins, not estimated from them). Zero when empty.
func (s *Snapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}

// Fraction returns bin i's share of all samples, in [0,1].
func (s *Snapshot) Fraction(i int) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Counts[i]) / float64(s.Total)
}

// BinLabel renders bin i's upper edge: the edge value for regular bins and
// ">lastEdge" for the overflow bin, matching the paper's figure axes.
func (s *Snapshot) BinLabel(i int) string {
	if i == len(s.Edges) {
		return fmt.Sprintf(">%d", s.Edges[len(s.Edges)-1])
	}
	return fmt.Sprintf("%d", s.Edges[i])
}

// BinRange describes the half-open interval (lo, hi] covered by bin i. The
// first bin's lo is math.MinInt64 and the overflow bin's hi is
// math.MaxInt64.
func (s *Snapshot) BinRange(i int) (lo, hi int64) {
	lo = math.MinInt64
	if i > 0 {
		lo = s.Edges[i-1]
	}
	hi = int64(math.MaxInt64)
	if i < len(s.Edges) {
		hi = s.Edges[i]
	}
	return lo, hi
}

// Percentile estimates the p-th percentile (p in [0,100]) from the binned
// counts, resolving to a bin upper edge; the true min/max clamp the ends.
// This is an estimate: binning discards intra-bin placement.
func (s *Snapshot) Percentile(p float64) int64 {
	if s.Total == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min
	}
	if p >= 100 {
		return s.Max
	}
	rank := int64(math.Ceil(float64(s.Total) * p / 100))
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == len(s.Edges) {
				return s.Max
			}
			e := s.Edges[i]
			if e > s.Max {
				return s.Max
			}
			if e < s.Min {
				return s.Min
			}
			return e
		}
	}
	return s.Max
}

// Add accumulates o's bins into s. The histograms must share an identical
// bin layout; Add panics otherwise since mixing layouts silently corrupts
// counts.
func (s *Snapshot) Add(o *Snapshot) {
	s.mustMatch(o)
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Total += o.Total
	s.Sum += o.Sum
	switch {
	case s.Total == o.Total: // s was empty
		s.Min, s.Max = o.Min, o.Max
	case o.Total == 0:
	default:
		if o.Min < s.Min {
			s.Min = o.Min
		}
		if o.Max > s.Max {
			s.Max = o.Max
		}
	}
}

// Sub returns s minus earlier, the histogram of samples inserted between the
// two snapshots. Min/Max cannot be recovered for an interval, so the result
// carries the later snapshot's values.
func (s *Snapshot) Sub(earlier *Snapshot) *Snapshot {
	s.mustMatch(earlier)
	d := &Snapshot{
		Name:   s.Name,
		Unit:   s.Unit,
		Edges:  s.Edges,
		Counts: make([]int64, len(s.Counts)),
		Total:  s.Total - earlier.Total,
		Sum:    s.Sum - earlier.Sum,
		Min:    s.Min,
		Max:    s.Max,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - earlier.Counts[i]
	}
	return d
}

// ApplyDelta returns the snapshot that Sub'ing earlier out of would yield
// d: counts, total and sum add, while Min/Max come from the delta (Sub
// carries the later snapshot's extrema, so reapplying them reconstructs
// the later snapshot exactly). For any two snapshots of one histogram,
//
//	later == earlier.ApplyDelta(later.Sub(earlier))
//
// bin for bin — the identity the fleet delta-push protocol rides on.
func (s *Snapshot) ApplyDelta(d *Snapshot) *Snapshot {
	s.mustMatch(d)
	out := &Snapshot{
		Name:   s.Name,
		Unit:   s.Unit,
		Edges:  s.Edges,
		Counts: make([]int64, len(s.Counts)),
		Total:  s.Total + d.Total,
		Sum:    s.Sum + d.Sum,
		Min:    d.Min,
		Max:    d.Max,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + d.Counts[i]
	}
	return out
}

// Clone returns a deep copy.
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.Counts = append([]int64(nil), s.Counts...)
	return &c
}

func (s *Snapshot) mustMatch(o *Snapshot) {
	if len(s.Edges) != len(o.Edges) {
		panic("histogram: bin layout mismatch")
	}
	for i := range s.Edges {
		if s.Edges[i] != o.Edges[i] {
			panic("histogram: bin layout mismatch")
		}
	}
}

// estimateBounds fills Min/Max from the outermost nonzero bins' ranges, for
// snapshots derived without exact sample extrema (2-D marginals and
// conditionals). Percentile's clamping needs plausible bounds.
func (s *Snapshot) estimateBounds() {
	if s.Total == 0 {
		return
	}
	first, last := -1, -1
	for i, c := range s.Counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	lo, _ := s.BinRange(first)
	_, hi := s.BinRange(last)
	s.Min = lo + 1
	s.Max = hi
	if first == 0 {
		s.Min = lo // open-ended low bin: MinInt64 stays
	}
}

// Rebin collapses the snapshot onto a coarser set of edges (the paper's §4:
// "a post-processing script could easily compress ranges back into powers of
// two"). Every source bin must nest inside a destination bin, i.e. each new
// edge must be one of the old edges; Rebin panics otherwise because
// splitting a bin is impossible after the fact.
func (s *Snapshot) Rebin(edges []int64) *Snapshot {
	out := &Snapshot{
		Name:   s.Name,
		Unit:   s.Unit,
		Edges:  append([]int64(nil), edges...),
		Counts: make([]int64, len(edges)+1),
		Total:  s.Total,
		Sum:    s.Sum,
		Min:    s.Min,
		Max:    s.Max,
	}
	j := 0 // index into new edges
	for i, c := range s.Counts {
		if i < len(s.Edges) {
			for j < len(edges) && edges[j] < s.Edges[i] {
				j++
			}
			if j < len(edges) && i > 0 && edges[j] >= s.Edges[i] {
				// Verify nesting: the previous new edge must not split
				// this source bin.
				if j > 0 && edges[j-1] > s.Edges[i-1] && edges[j-1] < s.Edges[i] {
					panic("histogram: Rebin edge splits a source bin")
				}
			}
			if j < len(edges) {
				out.Counts[j] += c
			} else {
				out.Counts[len(edges)] += c
			}
		} else {
			out.Counts[len(edges)] += c
		}
	}
	return out
}

// PowerOfTwoEdges returns ascending powers of two covering [lo, hi],
// e.g. PowerOfTwoEdges(512, 4096) = [512 1024 2048 4096].
func PowerOfTwoEdges(lo, hi int64) []int64 {
	var edges []int64
	for v := lo; v <= hi && v > 0; v *= 2 {
		edges = append(edges, v)
	}
	return edges
}
