package histogram

import (
	"encoding/binary"
	"math/bits"
	"sort"
	"sync"
)

// Bin lookup tables. The paper's bin layouts are fixed at build time and
// deliberately irregular (4095 and 4096 are distinct edges), so the per-insert
// binary search over them is pure overhead: the same mapping can be
// precomputed once per edge set and answered with one or two array loads.
//
// The table is two-level:
//
//   - an exact small-value table answers |v| < lutSmallSpan directly — one
//     bounds check plus one byte load. This covers the outstanding-I/Os bins
//     entirely and the hot low end of the latency, inter-arrival and seek
//     histograms (sequential streams cluster at seek distances 0–2).
//   - a log₂-indexed coarse table answers everything else: bits.Len64 of the
//     magnitude selects an entry holding the bin of the range's smallest
//     value plus the (at most two or three, for the paper's layouts) edges
//     that fall inside the range, scanned linearly.
//
// Layouts with more than 255 bins fall back to binary search (lutFor returns
// nil); uint8 bin indices keep the small tables one cache line per 64 values.
//
// LUTs are immutable and cached per edge set, so the 19 histograms a
// collector allocates per Enable/Reset share one table per layout and
// construction stays off the fast path.

// lutSmallSpan is the exact-table coverage: values in (-lutSmallSpan,
// lutSmallSpan) resolve with a single indexed load.
const lutSmallSpan = 1024

// binLUT answers "which bin does v land in" for one fixed edge set.
type binLUT struct {
	// smallPos[v] is the bin for v in [0, lutSmallSpan).
	smallPos []uint8
	// smallNeg[i] is the bin for v = -1-i, i in [0, lutSmallSpan).
	smallNeg []uint8
	// pos[k] covers positive v with bits.Len64(v) == k; neg[k] covers
	// negative v with bits.Len64(-v) == k (k == 64 is MinInt64 alone).
	pos [64]lutRange
	neg [65]lutRange
}

// lutRange is one coarse entry: the bin of the range's smallest value and
// the edges inside the range, in ascending order. For v in the range, the
// bin is first plus the number of in-range edges smaller than v.
type lutRange struct {
	first uint8
	split []int64
}

func (c *lutRange) find(v int64) int {
	b := int(c.first)
	for _, e := range c.split {
		if v <= e {
			return b
		}
		b++
	}
	return b
}

// lookup returns the bin index for v: the first edge >= v, or len(edges) for
// values beyond every edge. It is exactly equivalent to the binary search it
// replaces (pinned by TestLUTMatchesBinarySearch).
func (l *binLUT) lookup(v int64) int {
	if v >= 0 {
		if v < lutSmallSpan {
			return int(l.smallPos[v])
		}
		return l.pos[bits.Len64(uint64(v))].find(v)
	}
	if i := int64(-1) - v; i < lutSmallSpan {
		return int(l.smallNeg[i])
	}
	return l.neg[bits.Len64(-uint64(v))].find(v)
}

// newBinLUT precomputes the table for one edge set, or returns nil when the
// layout has too many bins for uint8 indices.
func newBinLUT(edges []int64) *binLUT {
	if len(edges) >= 255 {
		return nil
	}
	search := func(v int64) uint8 {
		return uint8(sort.Search(len(edges), func(i int) bool { return edges[i] >= v }))
	}
	// edgesIn collects the edges in [lo, hi), the points where the bin
	// changes inside a coarse range whose values span [lo, hi].
	edgesIn := func(lo, hi int64) []int64 {
		var out []int64
		for _, e := range edges {
			if e >= lo && e < hi {
				out = append(out, e)
			}
		}
		return out
	}
	l := &binLUT{
		smallPos: make([]uint8, lutSmallSpan),
		smallNeg: make([]uint8, lutSmallSpan),
	}
	for i := range l.smallPos {
		l.smallPos[i] = search(int64(i))
		l.smallNeg[i] = search(int64(-1 - i))
	}
	l.pos[0] = lutRange{first: search(0)}
	l.neg[0] = lutRange{first: search(0)}
	for k := 1; k <= 63; k++ {
		lo := int64(1) << (k - 1)
		hi := (lo - 1) + lo // k = 63: 2^63-1 = MaxInt64, no overflow
		l.pos[k] = lutRange{first: search(lo), split: edgesIn(lo, hi)}
		nlo, nhi := -hi, -lo
		l.neg[k] = lutRange{first: search(nlo), split: edgesIn(nlo, nhi)}
	}
	// bits.Len64(-MinInt64 as uint64) == 64; the range is that one value.
	l.neg[64] = lutRange{first: 0}
	return l
}

// lutCache shares one immutable LUT per distinct edge set.
var lutCache sync.Map // string(edge bytes) -> *binLUT

func lutFor(edges []int64) *binLUT {
	key := make([]byte, 8*len(edges))
	for i, e := range edges {
		binary.LittleEndian.PutUint64(key[8*i:], uint64(e))
	}
	if v, ok := lutCache.Load(string(key)); ok {
		return v.(*binLUT)
	}
	l := newBinLUT(edges)
	if l == nil {
		return nil
	}
	v, _ := lutCache.LoadOrStore(string(key), l)
	return v.(*binLUT)
}
