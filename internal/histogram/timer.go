package histogram

import "time"

// Timer measures one interval and records its duration, in
// nanoseconds, into the Histogram that started it. The zero Timer is
// inert: Stop returns 0 and records nothing, so callers can thread a
// Timer through code paths where instrumentation may be disabled
// without branching at every site.
//
// Timers are values; starting one is a single time.Now() call and
// stopping one is time.Since plus a striped Insert, so the helper is
// safe on hot paths (pair it with sampling when even that is too
// much).
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing an interval against h. A nil receiver
// yields an inert Timer.
func (h *Histogram) StartTimer() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time since StartTimer into the histogram
// and returns it. Stopping an inert (zero) Timer is a no-op.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Insert(int64(d))
	return d
}

// Running reports whether the timer will record on Stop.
func (t Timer) Running() bool { return t.h != nil }

// ObserveSince records time elapsed since start into h (in
// nanoseconds) and returns it. A nil histogram records nothing but
// still returns the elapsed time, so call sites can use the duration
// for event payloads regardless of whether the histogram is wired.
func (h *Histogram) ObserveSince(start time.Time) time.Duration {
	d := time.Since(start)
	if h != nil {
		h.Insert(int64(d))
	}
	return d
}

// ObserveDuration records an already-measured duration into h. A nil
// histogram records nothing.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Insert(int64(d))
	}
}
