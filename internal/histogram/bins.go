package histogram

// Standard bin sets, replicated from the paper's figures. The length bins
// are deliberately irregular: "certain block sizes are really special since
// the underlying storage subsystems may optimize for them" (§4) — 4095 and
// 4096 are distinct bins so that an exactly-4KB I/O is distinguishable from
// anything else in (2KB, 4KB).

// IOLengthEdges are the I/O length bin upper edges in bytes
// (Figures 2–5 (a)/(b): 512 … 524288, overflow ">524288").
func IOLengthEdges() []int64 {
	return []int64{512, 1024, 2048, 4095, 4096, 8191, 8192,
		16383, 16384, 32768, 49152, 65535, 65536,
		81920, 131072, 262144, 524288}
}

// SeekDistanceEdges are the signed seek-distance bin upper edges in sectors
// (Figures 2–5: −500000 … −2, 0, 2 … 500000, overflow ">500000"). The bin
// with upper edge 0 holds repeated accesses to the same block; the bin with
// upper edge 2 holds distances 1–2 and is where sequential streams peak.
func SeekDistanceEdges() []int64 {
	return []int64{-500000, -50000, -5000, -500, -64, -16, -6, -2,
		0, 2, 6, 16, 64, 500, 5000, 50000, 500000}
}

// LatencyEdges are the device latency bin upper edges in microseconds
// (Figures 5(a), 6: 1 … 100000, overflow ">100000").
func LatencyEdges() []int64 {
	return []int64{1, 10, 100, 500, 1000, 5000, 15000, 30000, 50000, 100000}
}

// InterarrivalEdges are the I/O inter-arrival time bin upper edges in
// microseconds (§3.2; same scale as the latency histogram).
func InterarrivalEdges() []int64 {
	return []int64{1, 10, 100, 500, 1000, 5000, 15000, 30000, 50000, 100000}
}

// OutstandingEdges are the queue-depth-at-arrival bin upper edges
// (Figure 4(c)/(d): 1 … 64, overflow ">64").
func OutstandingEdges() []int64 {
	return []int64{1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 64}
}

// NewIOLength returns an empty I/O length histogram with the paper's bins.
func NewIOLength(name string) *Histogram { return New(name, "bytes", IOLengthEdges()) }

// NewSeekDistance returns an empty seek distance histogram with the paper's
// bins.
func NewSeekDistance(name string) *Histogram { return New(name, "sectors", SeekDistanceEdges()) }

// NewLatency returns an empty latency histogram with the paper's bins.
func NewLatency(name string) *Histogram { return New(name, "microseconds", LatencyEdges()) }

// NewInterarrival returns an empty inter-arrival histogram.
func NewInterarrival(name string) *Histogram { return New(name, "microseconds", InterarrivalEdges()) }

// NewOutstanding returns an empty outstanding-I/Os histogram with the
// paper's bins.
func NewOutstanding(name string) *Histogram { return New(name, "I/Os", OutstandingEdges()) }
