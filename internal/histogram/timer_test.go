package histogram

import (
	"testing"
	"time"
)

func TestTimerRecords(t *testing.T) {
	h := New("timer_test", "ns", PowerOfTwoEdges(256, 1<<30))
	tm := h.StartTimer()
	if !tm.Running() {
		t.Fatal("timer from live histogram not running")
	}
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("Stop returned %v, want >= 1ms", d)
	}
	if got := h.Total(); got != 1 {
		t.Fatalf("Total = %d after one Stop, want 1", got)
	}
}

func TestTimerNilHistogramInert(t *testing.T) {
	var h *Histogram
	tm := h.StartTimer()
	if tm.Running() {
		t.Fatal("timer from nil histogram claims to be running")
	}
	if d := tm.Stop(); d != 0 {
		t.Fatalf("inert Stop = %v, want 0", d)
	}
	// Zero value behaves the same.
	var zero Timer
	if zero.Stop() != 0 {
		t.Fatal("zero Timer Stop != 0")
	}
}

func TestObserveSince(t *testing.T) {
	h := New("observe_test", "ns", PowerOfTwoEdges(256, 1<<30))
	start := time.Now().Add(-time.Millisecond)
	d := h.ObserveSince(start)
	if d < time.Millisecond {
		t.Fatalf("ObserveSince = %v, want >= 1ms", d)
	}
	if h.Total() != 1 {
		t.Fatalf("Total = %d, want 1", h.Total())
	}

	// Nil histogram still reports elapsed time.
	var nilH *Histogram
	if d := nilH.ObserveSince(start); d < time.Millisecond {
		t.Fatalf("nil ObserveSince = %v, want elapsed time", d)
	}
}

func TestObserveDuration(t *testing.T) {
	h := New("observe_dur_test", "ns", PowerOfTwoEdges(256, 1<<30))
	h.ObserveDuration(42 * time.Microsecond)
	h.ObserveDuration(7 * time.Second)
	if h.Total() != 2 {
		t.Fatalf("Total = %d, want 2", h.Total())
	}
	var nilH *Histogram
	nilH.ObserveDuration(time.Second) // must not panic
}
