package scsi

import "fmt"

// SenseKey is the coarse error class carried in sense data.
type SenseKey byte

// Sense keys used by the emulation.
const (
	SenseNone           SenseKey = 0x0
	SenseNotReady       SenseKey = 0x2
	SenseMediumError    SenseKey = 0x3
	SenseHardwareError  SenseKey = 0x4
	SenseIllegalRequest SenseKey = 0x5
	SenseUnitAttention  SenseKey = 0x6
	SenseAbortedCommand SenseKey = 0xB
)

// String names the sense key.
func (k SenseKey) String() string {
	switch k {
	case SenseNone:
		return "NO SENSE"
	case SenseNotReady:
		return "NOT READY"
	case SenseMediumError:
		return "MEDIUM ERROR"
	case SenseHardwareError:
		return "HARDWARE ERROR"
	case SenseIllegalRequest:
		return "ILLEGAL REQUEST"
	case SenseUnitAttention:
		return "UNIT ATTENTION"
	case SenseAbortedCommand:
		return "ABORTED COMMAND"
	default:
		return fmt.Sprintf("SENSE(0x%X)", byte(k))
	}
}

// Sense is decoded sense data: key plus additional sense code/qualifier.
type Sense struct {
	Key  SenseKey
	ASC  byte // additional sense code
	ASCQ byte // additional sense code qualifier
}

// Common ASC/ASCQ pairs.
var (
	SenseInvalidOpcode   = Sense{Key: SenseIllegalRequest, ASC: 0x20, ASCQ: 0x00}
	SenseLBAOutOfRange   = Sense{Key: SenseIllegalRequest, ASC: 0x21, ASCQ: 0x00}
	SenseInvalidFieldCDB = Sense{Key: SenseIllegalRequest, ASC: 0x24, ASCQ: 0x00}
	SenseUnrecoveredRead = Sense{Key: SenseMediumError, ASC: 0x11, ASCQ: 0x00}
	SenseWriteFault      = Sense{Key: SenseMediumError, ASC: 0x03, ASCQ: 0x00}
	SensePowerOnReset    = Sense{Key: SenseUnitAttention, ASC: 0x29, ASCQ: 0x00}
)

// String renders the sense triple.
func (s Sense) String() string {
	return fmt.Sprintf("%s asc=%02Xh ascq=%02Xh", s.Key, s.ASC, s.ASCQ)
}

// IsZero reports whether s carries no error.
func (s Sense) IsZero() bool { return s == Sense{} }

// fixedSenseLen is the length of fixed-format sense data we emit.
const fixedSenseLen = 18

// EncodeFixed renders s as fixed-format sense data (response code 70h).
func (s Sense) EncodeFixed() []byte {
	b := make([]byte, fixedSenseLen)
	b[0] = 0x70 // current errors, fixed format
	b[2] = byte(s.Key) & 0x0F
	b[7] = fixedSenseLen - 8 // additional sense length
	b[12] = s.ASC
	b[13] = s.ASCQ
	return b
}

// DecodeFixed parses fixed-format sense data.
func DecodeFixed(b []byte) (Sense, error) {
	if len(b) < 14 {
		return Sense{}, fmt.Errorf("scsi: sense data too short (%d bytes)", len(b))
	}
	if b[0]&0x7F != 0x70 && b[0]&0x7F != 0x71 {
		return Sense{}, fmt.Errorf("scsi: unknown sense response code 0x%02X", b[0])
	}
	return Sense{Key: SenseKey(b[2] & 0x0F), ASC: b[12], ASCQ: b[13]}, nil
}
