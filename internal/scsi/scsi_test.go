package scsi

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDecodeRead10(t *testing.T) {
	cdb := []byte{0x28, 0, 0x00, 0x00, 0x10, 0x00, 0, 0x00, 0x08, 0}
	c, err := Decode(cdb)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != OpRead10 || c.LBA != 0x1000 || c.Blocks != 8 {
		t.Errorf("got %+v", c)
	}
	if !c.Op.IsRead() || c.Op.IsWrite() || !c.Op.IsBlockIO() {
		t.Error("classification wrong for READ(10)")
	}
	if c.Bytes() != 8*512 {
		t.Errorf("Bytes = %d", c.Bytes())
	}
	if c.LastLBA() != 0x1007 {
		t.Errorf("LastLBA = %d", c.LastLBA())
	}
}

func TestDecodeRead6ZeroMeans256(t *testing.T) {
	cdb := []byte{0x08, 0x01, 0x02, 0x03, 0x00, 0}
	c, err := Decode(cdb)
	if err != nil {
		t.Fatal(err)
	}
	if c.LBA != 0x010203 || c.Blocks != 256 {
		t.Errorf("got %+v", c)
	}
}

func TestDecodeRead6MasksLBAHighBits(t *testing.T) {
	// Top 3 bits of byte 1 are reserved/LUN in the 6-byte form.
	cdb := []byte{0x08, 0xFF, 0xFF, 0xFF, 0x01, 0}
	c, err := Decode(cdb)
	if err != nil {
		t.Fatal(err)
	}
	if c.LBA != 0x1FFFFF {
		t.Errorf("LBA = %#x, want 0x1FFFFF", c.LBA)
	}
}

func TestDecodeWrite16(t *testing.T) {
	cdb := make([]byte, 16)
	cdb[0] = byte(OpWrite16)
	cdb[2], cdb[9] = 0x01, 0xFF // LBA = 0x01000000_000000FF
	cdb[13] = 0x40
	c, err := Decode(cdb)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != OpWrite16 || c.LBA != 0x01000000000000FF || c.Blocks != 0x40 {
		t.Errorf("got %+v", c)
	}
	if !c.Op.IsWrite() {
		t.Error("WRITE(16) not classified as write")
	}
}

func TestDecodeNonIO(t *testing.T) {
	for _, op := range []OpCode{OpTestUnitReady, OpInquiry, OpReportLuns, OpReadCapacity10} {
		cdb, err := Encode(Command{Op: op})
		if err != nil {
			t.Fatalf("Encode(%v): %v", op, err)
		}
		c, err := Decode(cdb)
		if err != nil {
			t.Fatalf("Decode(%v): %v", op, err)
		}
		if c.Op != op || c.Op.IsBlockIO() {
			t.Errorf("non-I/O op decoded as %+v", c)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShortCDB) {
		t.Errorf("empty CDB: %v", err)
	}
	if _, err := Decode([]byte{0x28, 0, 0}); !errors.Is(err, ErrShortCDB) {
		t.Errorf("truncated READ(10): %v", err)
	}
	if _, err := Decode([]byte{0xEE, 0, 0, 0, 0, 0}); !errors.Is(err, ErrUnsupportedOp) {
		t.Errorf("unknown opcode: %v", err)
	}
}

func TestEncodePicksSmallestForm(t *testing.T) {
	cases := []struct {
		lba    uint64
		blocks uint32
		want   int
	}{
		{0, 8, 6},
		{0x1FFFFF, 256, 6},
		{0x200000, 8, 10},
		{0, 257, 10},
		{0xFFFFFFFF, 0xFFFF, 10},
		{0x100000000, 8, 16},
		{0, 0x10000, 16},
		{0, 0, 10}, // zero-length can't use the 6-byte form (0 means 256)
	}
	for _, c := range cases {
		cdb, err := Encode(Read(c.lba, c.blocks))
		if err != nil {
			t.Fatalf("Encode(lba=%d,blocks=%d): %v", c.lba, c.blocks, err)
		}
		if len(cdb) != c.want {
			t.Errorf("Encode(lba=%#x blocks=%d) -> %d-byte CDB, want %d",
				c.lba, c.blocks, len(cdb), c.want)
		}
	}
}

// Property: Decode(Encode(cmd)) is the identity for block I/O commands with
// a nonzero transfer length (the opcode may legitimately change form).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(lba uint64, blocks uint32, read bool) bool {
		lba %= 1 << 40
		blocks = blocks%0x20000 + 1
		var cmd Command
		if read {
			cmd = Read(lba, blocks)
		} else {
			cmd = Write(lba, blocks)
		}
		cdb, err := Encode(cmd)
		if err != nil {
			return false
		}
		got, err := Decode(cdb)
		if err != nil {
			return false
		}
		return got.LBA == lba && got.Blocks == blocks &&
			got.Op.IsRead() == read && got.Op.IsWrite() == !read
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSynchronizeCacheRoundTrip(t *testing.T) {
	cdb, err := Encode(Command{Op: OpSynchronizeCache10, LBA: 0x1234, Blocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Decode(cdb)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != OpSynchronizeCache10 || c.LBA != 0x1234 || c.Blocks != 16 {
		t.Errorf("got %+v", c)
	}
	if c.Op.IsBlockIO() {
		t.Error("SYNCHRONIZE CACHE must not count as block I/O")
	}
}

func TestEncodeUnsupportedOp(t *testing.T) {
	if _, err := Encode(Command{Op: OpCode(0xEE)}); !errors.Is(err, ErrUnsupportedOp) {
		t.Errorf("got %v", err)
	}
}

func TestOpCodeStrings(t *testing.T) {
	if OpRead10.String() != "READ(10)" {
		t.Errorf("got %q", OpRead10)
	}
	if OpCode(0xEE).String() != "OPCODE(0xEE)" {
		t.Errorf("got %q", OpCode(0xEE))
	}
	if StatusGood.String() != "GOOD" || StatusCheckCondition.String() != "CHECK CONDITION" {
		t.Error("status names wrong")
	}
	if Status(0x77).String() != "STATUS(0x77)" {
		t.Errorf("got %q", Status(0x77))
	}
}

func TestCommandString(t *testing.T) {
	if got := Read(100, 8).String(); got != "READ(10) lba=100 blocks=8" {
		t.Errorf("got %q", got)
	}
	if got := (Command{Op: OpInquiry}).String(); got != "INQUIRY" {
		t.Errorf("got %q", got)
	}
}

func TestSenseRoundTrip(t *testing.T) {
	for _, s := range []Sense{SenseInvalidOpcode, SenseLBAOutOfRange, SenseUnrecoveredRead, SensePowerOnReset} {
		got, err := DecodeFixed(s.EncodeFixed())
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
}

func TestSenseDecodeErrors(t *testing.T) {
	if _, err := DecodeFixed([]byte{0x70}); err == nil {
		t.Error("short sense should fail")
	}
	bad := SenseInvalidOpcode.EncodeFixed()
	bad[0] = 0x33
	if _, err := DecodeFixed(bad); err == nil {
		t.Error("bad response code should fail")
	}
}

func TestSenseStrings(t *testing.T) {
	if !(Sense{}).IsZero() {
		t.Error("zero sense should be zero")
	}
	if SenseInvalidOpcode.IsZero() {
		t.Error("nonzero sense reported zero")
	}
	if SenseIllegalRequest.String() != "ILLEGAL REQUEST" {
		t.Errorf("got %q", SenseIllegalRequest)
	}
	if SenseKey(0xF).String() != "SENSE(0xF)" {
		t.Errorf("got %q", SenseKey(0xF))
	}
}

func TestLastLBAZeroBlocks(t *testing.T) {
	c := Command{Op: OpRead10, LBA: 50, Blocks: 0}
	if c.LastLBA() != 50 {
		t.Errorf("LastLBA = %d, want 50", c.LastLBA())
	}
}

func BenchmarkDecodeRead10(b *testing.B) {
	cdb := []byte{0x28, 0, 0x00, 0x00, 0x10, 0x00, 0, 0x00, 0x08, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(cdb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(Read(uint64(i), 8)); err != nil {
			b.Fatal(err)
		}
	}
}
