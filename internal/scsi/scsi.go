// Package scsi implements the subset of the SCSI block command set that the
// virtual SCSI layer emulates: command descriptor block (CDB) encoding and
// decoding for the 6/10/12/16-byte read/write forms plus the common
// non-I/O commands, sense data, and status codes.
//
// The paper's technique observes guest I/O at the hypervisor's SCSI
// emulation layer; this package is that layer's wire vocabulary. ("For the
// purposes of this paper we deal with the SCSI protocol but the technique is
// not exclusive to SCSI.")
package scsi

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SectorSize is the logical block size in bytes. The paper: "A logical block
// is a unit of space (512 bytes)."
const SectorSize = 512

// OpCode is a SCSI operation code (first CDB byte).
type OpCode byte

// Operation codes used by the emulation.
const (
	OpTestUnitReady      OpCode = 0x00
	OpRequestSense       OpCode = 0x03
	OpRead6              OpCode = 0x08
	OpWrite6             OpCode = 0x0A
	OpInquiry            OpCode = 0x12
	OpModeSense6         OpCode = 0x1A
	OpReadCapacity10     OpCode = 0x25
	OpRead10             OpCode = 0x28
	OpWrite10            OpCode = 0x2A
	OpSynchronizeCache10 OpCode = 0x35
	OpModeSense10        OpCode = 0x5A
	OpRead16             OpCode = 0x88
	OpWrite16            OpCode = 0x8A
	OpReadCapacity16     OpCode = 0x9E
	OpReportLuns         OpCode = 0xA0
	OpRead12             OpCode = 0xA8
	OpWrite12            OpCode = 0xAA
)

var opNames = map[OpCode]string{
	OpTestUnitReady:      "TEST UNIT READY",
	OpRequestSense:       "REQUEST SENSE",
	OpRead6:              "READ(6)",
	OpWrite6:             "WRITE(6)",
	OpInquiry:            "INQUIRY",
	OpModeSense6:         "MODE SENSE(6)",
	OpReadCapacity10:     "READ CAPACITY(10)",
	OpRead10:             "READ(10)",
	OpWrite10:            "WRITE(10)",
	OpSynchronizeCache10: "SYNCHRONIZE CACHE(10)",
	OpModeSense10:        "MODE SENSE(10)",
	OpRead16:             "READ(16)",
	OpWrite16:            "WRITE(16)",
	OpReadCapacity16:     "READ CAPACITY(16)",
	OpReportLuns:         "REPORT LUNS",
	OpRead12:             "READ(12)",
	OpWrite12:            "WRITE(12)",
}

// String returns the T10 name of the opcode, or a hex form if unknown.
func (op OpCode) String() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("OPCODE(0x%02X)", byte(op))
}

// IsRead reports whether op is a data-in block read.
func (op OpCode) IsRead() bool {
	return op == OpRead6 || op == OpRead10 || op == OpRead12 || op == OpRead16
}

// IsWrite reports whether op is a data-out block write.
func (op OpCode) IsWrite() bool {
	return op == OpWrite6 || op == OpWrite10 || op == OpWrite12 || op == OpWrite16
}

// IsBlockIO reports whether op transfers logical blocks (a read or write).
// Only these commands feed the workload histograms.
func (op OpCode) IsBlockIO() bool { return op.IsRead() || op.IsWrite() }

// Status is a SCSI status byte returned at command completion.
type Status byte

// Status codes.
const (
	StatusGood           Status = 0x00
	StatusCheckCondition Status = 0x02
	StatusBusy           Status = 0x08
	StatusTaskSetFull    Status = 0x28
)

// String names the status code.
func (s Status) String() string {
	switch s {
	case StatusGood:
		return "GOOD"
	case StatusCheckCondition:
		return "CHECK CONDITION"
	case StatusBusy:
		return "BUSY"
	case StatusTaskSetFull:
		return "TASK SET FULL"
	default:
		return fmt.Sprintf("STATUS(0x%02X)", byte(s))
	}
}

// Command is a decoded CDB: operation, starting LBA and transfer length in
// logical blocks. Non-I/O commands have LBA and Blocks of zero (except
// READ CAPACITY(16), which ignores them too).
type Command struct {
	Op     OpCode
	LBA    uint64
	Blocks uint32
}

// Bytes returns the transfer length in bytes.
func (c Command) Bytes() int64 { return int64(c.Blocks) * SectorSize }

// LastLBA returns the last logical block touched by the command. For
// zero-length commands it returns the starting LBA.
func (c Command) LastLBA() uint64 {
	if c.Blocks == 0 {
		return c.LBA
	}
	return c.LBA + uint64(c.Blocks) - 1
}

// String renders the command for traces and logs.
func (c Command) String() string {
	if c.Op.IsBlockIO() {
		return fmt.Sprintf("%s lba=%d blocks=%d", c.Op, c.LBA, c.Blocks)
	}
	return c.Op.String()
}

// Errors returned by the codec.
var (
	ErrShortCDB      = errors.New("scsi: CDB shorter than its opcode requires")
	ErrUnsupportedOp = errors.New("scsi: unsupported opcode")
	ErrLBAOutOfRange = errors.New("scsi: LBA does not fit the CDB form")
)

func cdbLen(op OpCode) int {
	switch b := byte(op); {
	case b < 0x20:
		return 6
	case b < 0x60:
		return 10
	case b >= 0x80 && b < 0xA0:
		return 16
	case b >= 0xA0 && b < 0xC0:
		return 12
	default:
		return 10
	}
}

// Decode parses a raw CDB into a Command. It accepts every opcode this
// package names; unknown opcodes return ErrUnsupportedOp so the emulation
// can fail them with CHECK CONDITION / INVALID COMMAND.
func Decode(cdb []byte) (Command, error) {
	if len(cdb) == 0 {
		return Command{}, ErrShortCDB
	}
	op := OpCode(cdb[0])
	if _, ok := opNames[op]; !ok {
		return Command{}, fmt.Errorf("%w: 0x%02X", ErrUnsupportedOp, cdb[0])
	}
	if len(cdb) < cdbLen(op) {
		return Command{}, fmt.Errorf("%w: %s needs %d bytes, got %d",
			ErrShortCDB, op, cdbLen(op), len(cdb))
	}
	c := Command{Op: op}
	switch op {
	case OpRead6, OpWrite6:
		c.LBA = uint64(cdb[1]&0x1F)<<16 | uint64(cdb[2])<<8 | uint64(cdb[3])
		c.Blocks = uint32(cdb[4])
		if c.Blocks == 0 {
			// SBC: a transfer length of 0 in the 6-byte form means 256.
			c.Blocks = 256
		}
	case OpRead10, OpWrite10, OpSynchronizeCache10:
		c.LBA = uint64(binary.BigEndian.Uint32(cdb[2:6]))
		c.Blocks = uint32(binary.BigEndian.Uint16(cdb[7:9]))
	case OpRead12, OpWrite12:
		c.LBA = uint64(binary.BigEndian.Uint32(cdb[2:6]))
		c.Blocks = binary.BigEndian.Uint32(cdb[6:10])
	case OpRead16, OpWrite16:
		c.LBA = binary.BigEndian.Uint64(cdb[2:10])
		c.Blocks = binary.BigEndian.Uint32(cdb[10:14])
	default:
		// Non-I/O command: no LBA/length of interest.
	}
	return c, nil
}

// Encode builds the smallest standard CDB form that can express the command,
// the way guest drivers do. I/O commands choose among the 6/10/16-byte
// forms; non-I/O commands use their fixed form.
func Encode(c Command) ([]byte, error) {
	switch {
	case c.Op.IsBlockIO():
		return encodeIO(c)
	case c.Op == OpSynchronizeCache10:
		cdb := make([]byte, 10)
		cdb[0] = byte(c.Op)
		if c.LBA > 0xFFFFFFFF {
			return nil, ErrLBAOutOfRange
		}
		binary.BigEndian.PutUint32(cdb[2:6], uint32(c.LBA))
		if c.Blocks > 0xFFFF {
			return nil, ErrLBAOutOfRange
		}
		binary.BigEndian.PutUint16(cdb[7:9], uint16(c.Blocks))
		return cdb, nil
	default:
		if _, ok := opNames[c.Op]; !ok {
			return nil, fmt.Errorf("%w: 0x%02X", ErrUnsupportedOp, byte(c.Op))
		}
		cdb := make([]byte, cdbLen(c.Op))
		cdb[0] = byte(c.Op)
		return cdb, nil
	}
}

func encodeIO(c Command) ([]byte, error) {
	read := c.Op.IsRead()
	switch {
	case c.LBA <= 0x1FFFFF && c.Blocks <= 256 && c.Blocks > 0:
		cdb := make([]byte, 6)
		if read {
			cdb[0] = byte(OpRead6)
		} else {
			cdb[0] = byte(OpWrite6)
		}
		cdb[1] = byte(c.LBA >> 16 & 0x1F)
		cdb[2] = byte(c.LBA >> 8)
		cdb[3] = byte(c.LBA)
		cdb[4] = byte(c.Blocks) // 256 wraps to 0, the SBC encoding
		return cdb, nil
	case c.LBA <= 0xFFFFFFFF && c.Blocks <= 0xFFFF:
		cdb := make([]byte, 10)
		if read {
			cdb[0] = byte(OpRead10)
		} else {
			cdb[0] = byte(OpWrite10)
		}
		binary.BigEndian.PutUint32(cdb[2:6], uint32(c.LBA))
		binary.BigEndian.PutUint16(cdb[7:9], uint16(c.Blocks))
		return cdb, nil
	default:
		cdb := make([]byte, 16)
		if read {
			cdb[0] = byte(OpRead16)
		} else {
			cdb[0] = byte(OpWrite16)
		}
		binary.BigEndian.PutUint64(cdb[2:10], c.LBA)
		binary.BigEndian.PutUint32(cdb[10:14], c.Blocks)
		return cdb, nil
	}
}

// Read returns a read command for the given extent.
func Read(lba uint64, blocks uint32) Command { return Command{Op: OpRead10, LBA: lba, Blocks: blocks} }

// Write returns a write command for the given extent.
func Write(lba uint64, blocks uint32) Command {
	return Command{Op: OpWrite10, LBA: lba, Blocks: blocks}
}
