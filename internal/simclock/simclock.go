// Package simclock provides a deterministic discrete-event simulation
// engine with a virtual nanosecond clock.
//
// Every experiment scenario in this repository runs on an Engine: workload
// generators, filesystem models and storage device models schedule callbacks
// at virtual times, and the engine dispatches them in time order. Two runs
// with the same seeds produce bit-identical results, which is what makes the
// paper's figures reproducible.
package simclock

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated time has
// no epoch and never touches the wall clock.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Micros reports t in whole microseconds (the unit used by the paper's
// latency and inter-arrival histograms).
func (t Time) Micros() int64 { return int64(t) / int64(Microsecond) }

// Seconds reports t in floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration, e.g. "1.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// Event is a callback scheduled on the engine.
type Event func(now Time)

type scheduled struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fn    Event
	index int
	dead  bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ s *scheduled }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (h Handle) Cancel() {
	if h.s != nil {
		h.s.dead = true
	}
}

type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	s := x.(*scheduled)
	s.index = len(*q)
	*q = append(*q, s)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return s
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all components of a simulation run on the engine's
// goroutine via scheduled events.
type Engine struct {
	now        Time
	queue      eventQueue
	seq        uint64
	dispatched uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events waiting to fire (including cancelled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched reports the total number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", at, e.now))
	}
	s := &scheduled{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, s)
	return Handle{s}
}

// After schedules fn to run d nanoseconds from now. Negative delays are
// clamped to zero.
func (e *Engine) After(d Time, fn Event) Handle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step dispatches the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		s := heap.Pop(&e.queue).(*scheduled)
		if s.dead {
			continue
		}
		e.now = s.at
		e.dispatched++
		s.fn(e.now)
		return true
	}
	return false
}

// Run dispatches events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// NewRand returns a deterministic pseudo-random source for a simulation
// component. Components should derive their RNGs from distinct seeds so that
// adding one component does not perturb another's stream.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Ticker invokes fn every interval until the returned stop function is
// called or the engine drains. The first tick fires one interval from now.
type Ticker struct {
	stop bool
}

// Stop prevents future ticks.
func (t *Ticker) Stop() { t.stop = true }

// NewTicker schedules fn(now) every interval on e.
func NewTicker(e *Engine, interval Time, fn Event) *Ticker {
	if interval <= 0 {
		panic("simclock: ticker interval must be positive")
	}
	t := &Ticker{}
	var tick Event
	tick = func(now Time) {
		if t.stop {
			return
		}
		fn(now)
		if !t.stop {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
	return t
}
