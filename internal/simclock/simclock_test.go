package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func(Time) { got = append(got, 3) })
	e.At(10, func(Time) { got = append(got, 1) })
	e.At(20, func(Time) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestEngineAfterRelativeToNow(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { fired = now })
	})
	e.Run()
	if fired != 150 {
		t.Errorf("After fired at %v, want 150", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling before now")
		}
	}()
	e.At(50, func(Time) {})
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(10, func(Time) {
		e.After(-5, func(now Time) {
			fired = true
			if now != 10 {
				t.Errorf("clamped event at %v, want 10", now)
			}
		})
	})
	e.Run()
	if !fired {
		t.Fatal("clamped event never fired")
	}
}

func TestCancelPreventsDispatch(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func(Time) { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Dispatched() != 0 {
		t.Errorf("Dispatched = %d, want 0", e.Dispatched())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	h := e.At(1, func(Time) {})
	e.Run()
	h.Cancel() // must not panic
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want deadline 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("remaining events lost: fired %v", fired)
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Errorf("Now() = %v, want 1000", e.Now())
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := NewTicker(e, 10, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			// Stop from inside the callback.
			return
		}
	})
	e.RunUntil(35)
	tk.Stop()
	e.Run()
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = NewTicker(e, 10, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 2 {
		t.Errorf("ticker fired %d times after Stop, want 2", n)
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero interval")
		}
	}()
	NewTicker(NewEngine(), 0, func(Time) {})
}

func TestTimeMicros(t *testing.T) {
	cases := []struct {
		t    Time
		want int64
	}{
		{0, 0},
		{999, 0},
		{1000, 1},
		{1_500_000, 1500},
		{Second, 1_000_000},
	}
	for _, c := range cases {
		if got := c.t.Micros(); got != c.want {
			t.Errorf("(%d).Micros() = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(3*time.Millisecond) != 3*Millisecond {
		t.Error("Duration(3ms) mismatch")
	}
	if got := (2500 * Microsecond).Seconds(); got != 0.0025 {
		t.Errorf("Seconds() = %v, want 0.0025", got)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != c.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order and the final clock equals the max offset.
func TestEngineDispatchOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		var max Time
		for _, off := range offsets {
			at := Time(off)
			if at > max {
				max = at
			}
			e.At(at, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || e.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}
