package core

import (
	"sync"
	"testing"

	"vscsistats/internal/simclock"
)

// TestSelfStatsCounts verifies the observation counter, the 1-in-64 sample
// rate and the snapshot counter.
func TestSelfStatsCounts(t *testing.T) {
	c := NewCollector("vm", "disk")
	if s := c.SelfStats(); s.Observations != 0 || s.ObserveNs == nil {
		t.Fatalf("fresh self stats: %+v", s)
	}
	c.Enable()
	const cmds = 1024
	for i := 0; i < cmds; i++ {
		r := issueReq(i, uint64(i*8%(1<<20)), simclock.Time(i)*simclock.Microsecond)
		c.OnIssue(r)
		c.OnComplete(completeReq(r, simclock.Millisecond))
	}
	s := c.SelfStats()
	if s.VM != "vm" || s.Disk != "disk" {
		t.Errorf("identity: %q/%q", s.VM, s.Disk)
	}
	if want := int64(2 * cmds); s.Observations != want {
		t.Errorf("observations = %d, want %d (issue+complete)", s.Observations, want)
	}
	if want := int64(2 * cmds / 64); s.Sampled != want {
		t.Errorf("sampled = %d, want %d (1-in-64)", s.Sampled, want)
	}
	if s.ObserveNs.Total != s.Sampled {
		t.Errorf("observe histogram total %d != sampled %d", s.ObserveNs.Total, s.Sampled)
	}
	if s.Dropped != 0 {
		t.Errorf("dropped = %d on an uncontended run", s.Dropped)
	}
	if mean := s.MeanObserveNanos(); mean <= 0 {
		t.Errorf("mean observe cost %v ns, want > 0", mean)
	}
	if s.Snapshots != 0 {
		t.Errorf("SelfStats must not count as a snapshot, got %d", s.Snapshots)
	}

	before := s.LastSnapshotUnixNano
	if c.Snapshot() == nil {
		t.Fatal("snapshot nil")
	}
	s = c.SelfStats()
	if s.Snapshots != 1 {
		t.Errorf("snapshots = %d after one Snapshot", s.Snapshots)
	}
	if s.LastSnapshotUnixNano <= before {
		t.Errorf("last snapshot time not advanced: %d -> %d", before, s.LastSnapshotUnixNano)
	}
}

// TestSelfStatsDisabledFree: a disabled collector's fast path must record
// nothing — the "free when off" claim extends to the self-telemetry.
func TestSelfStatsDisabledFree(t *testing.T) {
	c := NewCollector("vm", "disk")
	for i := 0; i < 100; i++ {
		r := issueReq(i, 0, 0)
		c.OnIssue(r)
		c.OnComplete(completeReq(r, simclock.Millisecond))
	}
	if s := c.SelfStats(); s.Observations != 0 || s.Sampled != 0 {
		t.Errorf("disabled collector self-observed: %+v", s)
	}
}

// TestSelfStatsSurvivesReset: Reset discards guest data, not the service's
// own cost history.
func TestSelfStatsSurvivesReset(t *testing.T) {
	c := NewCollector("vm", "disk")
	c.Enable()
	for i := 0; i < 128; i++ {
		c.OnIssue(issueReq(i, uint64(i*8), simclock.Time(i)*simclock.Microsecond))
	}
	before := c.SelfStats()
	c.Reset()
	after := c.SelfStats()
	if after.Observations != before.Observations || after.Sampled != before.Sampled {
		t.Errorf("Reset discarded self stats: %+v -> %+v", before, after)
	}
	if s := c.Snapshot(); s.Commands != 0 {
		t.Errorf("Reset left %d commands", s.Commands)
	}
}

// TestSelfStatsContention drives one collector from many goroutines and
// expects the stream-mutex contention counter to fire at least once.
func TestSelfStatsContention(t *testing.T) {
	c := NewCollector("vm", "disk")
	c.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				c.OnIssue(issueReq(g*5000+i, uint64(i*8%(1<<20)), simclock.Time(i)*simclock.Microsecond))
			}
		}(g)
	}
	wg.Wait()
	s := c.SelfStats()
	if s.Observations != 8*5000 {
		t.Errorf("observations = %d, want %d", s.Observations, 8*5000)
	}
	// Contention is probabilistic but with 8 spinning goroutines on one
	// mutex it is effectively certain; log rather than fail on zero so a
	// single-core runner cannot flake this test.
	if s.Contended == 0 {
		t.Logf("no contention observed (single-core runner?)")
	} else {
		t.Logf("contended %d of %d observations", s.Contended, s.Observations)
	}
}
