package core

import (
	"sync/atomic"
	"time"

	"vscsistats/internal/histogram"
)

// Self-telemetry: the characterization service instrumenting itself. The
// paper proves the service cheap with an offline benchmark (Table 2); these
// counters make the same overhead a live metric that an always-on deployment
// can watch from the outside (the /metrics exporter in internal/telemetry).
//
// Design constraints mirror the fast path they observe: counters are single
// atomic adds, and the wall-clock ns/observe histogram is sampled 1-in-64 so
// the act of measuring does not distort the O(1) cost being measured.

// selfSampleMask selects one in every 64 fast-path observations for
// wall-clock timing (observation count & mask == 0).
const selfSampleMask = 63

// observeNsEdges are the bin upper edges for the sampled fast-path cost
// histogram, in nanoseconds. The expected cost is a few hundred ns; the
// range leaves room for contention spikes and cold caches.
func observeNsEdges() []int64 {
	return []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192,
		16384, 32768, 65536, 131072, 262144}
}

// selfStats is the per-collector self-instrumentation state. Unlike the
// workload histograms it is allocated eagerly (it is a few words plus one
// small histogram) and survives Reset: the service's own cost history is
// independent of the guest data's lifecycle.
type selfStats struct {
	// observations counts block-I/O fast-path calls (OnIssue and
	// OnComplete each count one) while the service was enabled.
	observations atomic.Int64
	// contended counts OnIssue calls that found the per-collector stream
	// mutex held by another issuing goroutine — the only blocking point
	// on the fast path.
	contended atomic.Int64
	// dropped counts observations that arrived in the Enable race window
	// (enabled flag set, histogram set not yet published) and recorded
	// nothing.
	dropped atomic.Int64
	// snapshots counts Snapshot() calls that returned data;
	// lastSnapshotNanos is the wall-clock time of the most recent one,
	// from which the exporter derives snapshot staleness.
	snapshots         atomic.Int64
	lastSnapshotNanos atomic.Int64
	// observeNs is the sampled wall-clock cost of one fast-path call.
	observeNs *histogram.Histogram
}

func newSelfStats() *selfStats {
	return &selfStats{
		observeNs: histogram.New("Fast-Path Observe Cost", "nanoseconds", observeNsEdges()),
	}
}

// SelfSnapshot is an immutable copy of a collector's self-telemetry: what
// the characterization service itself cost, live.
type SelfSnapshot struct {
	VM, Disk string

	// Observations counts enabled fast-path calls (issue + complete).
	Observations int64 `json:"observations"`
	// Sampled is how many observations were wall-clock timed (1-in-64).
	Sampled int64 `json:"sampled"`
	// Contended counts stream-mutex collisions between issuing goroutines.
	Contended int64 `json:"contended"`
	// Dropped counts observations lost to the Enable race window.
	Dropped int64 `json:"dropped"`
	// Snapshots counts successful Snapshot() calls;
	// LastSnapshotUnixNano is the wall-clock time of the latest.
	Snapshots            int64 `json:"snapshots"`
	LastSnapshotUnixNano int64 `json:"lastSnapshotUnixNano"`
	// ObserveNs is the sampled per-call cost histogram in nanoseconds.
	ObserveNs *histogram.Snapshot `json:"observeNs"`
}

// MeanObserveNanos is the sampled mean wall-clock cost of one fast-path
// call in nanoseconds — the live analogue of Table 2's CPU row. Zero until
// a sample lands.
func (s *SelfSnapshot) MeanObserveNanos() float64 { return s.ObserveNs.Mean() }

// SelfStats copies the collector's self-telemetry. Unlike Snapshot it never
// returns nil and does not itself count as a snapshot: reading the service's
// own overhead must not perturb the staleness signal it reports.
func (c *Collector) SelfStats() *SelfSnapshot {
	obs := c.self.observeNs.Snapshot()
	return &SelfSnapshot{
		VM:                   c.vm,
		Disk:                 c.disk,
		Observations:         c.self.observations.Load(),
		Sampled:              obs.Total,
		Contended:            c.self.contended.Load(),
		Dropped:              c.self.dropped.Load(),
		Snapshots:            c.self.snapshots.Load(),
		LastSnapshotUnixNano: c.self.lastSnapshotNanos.Load(),
		ObserveNs:            obs,
	}
}

// noteSnapshot records a successful Snapshot() for the staleness gauge.
func (s *selfStats) noteSnapshot() {
	s.snapshots.Add(1)
	s.lastSnapshotNanos.Store(time.Now().UnixNano())
}
