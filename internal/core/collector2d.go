package core

import (
	"sync"

	"vscsistats/internal/histogram"
	"vscsistats/internal/scsi"
	"vscsistats/internal/vscsi"
)

// Collector2D is the online 2-D extension the paper sketches in §3.6:
// "Such correlations are possible using online techniques including with
// the use of 2d histograms. Our current work only deals with 1d histograms
// so we cannot answer those questions." This observer answers them online:
// it correlates each command's seek distance with its completion latency in
// O(mx*my) space, no trace required.
//
// It is a separate opt-in observer rather than part of Collector because
// the grid costs ~18x11 cells per disk and one extra map lookup per
// completion — cheap, but not free, and the paper's default service stays
// 1-D.
//
// Like Collector, it is safe for concurrent use; the in-flight seek map and
// stream state are guarded by a mutex (the map rules out a lock-free path).
type Collector2D struct {
	vm, disk string

	mu       sync.Mutex
	enabled  bool
	grid     *histogram.Hist2D
	lastEnd  uint64
	haveLast bool
	// seekOf remembers each in-flight command's arrival-time seek distance
	// until its completion supplies the latency.
	seekOf map[uint64]int64
}

// NewCollector2D creates a disabled seek-distance x latency collector.
func NewCollector2D(vm, disk string) *Collector2D {
	return &Collector2D{vm: vm, disk: disk}
}

// Enable starts recording, allocating the grid on first use.
func (c *Collector2D) Enable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.grid == nil {
		c.grid = histogram.New2D("Seek Distance vs Latency",
			"seek (sectors)", histogram.SeekDistanceEdges(),
			"latency (us)", histogram.LatencyEdges())
		c.seekOf = make(map[uint64]int64)
	}
	c.enabled = true
}

// Disable stops recording; accumulated data is retained.
func (c *Collector2D) Disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = false
}

// Enabled reports the recording state.
func (c *Collector2D) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

var _ vscsi.Observer = (*Collector2D)(nil)

// OnIssue records the arrival-side seek distance keyed by request ID.
func (c *Collector2D) OnIssue(r *vscsi.Request) {
	if !r.Cmd.Op.IsBlockIO() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	if c.haveLast {
		c.seekOf[r.ID] = int64(r.Cmd.LBA) - int64(c.lastEnd)
	}
	c.lastEnd = r.Cmd.LastLBA()
	c.haveLast = true
}

// OnComplete joins the stored seek distance with the observed latency.
func (c *Collector2D) OnComplete(r *vscsi.Request) {
	if !r.Cmd.Op.IsBlockIO() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.grid == nil {
		return
	}
	seek, ok := c.seekOf[r.ID]
	if !ok {
		return
	}
	delete(c.seekOf, r.ID)
	if !c.enabled || r.Status != scsi.StatusGood {
		return
	}
	c.grid.Insert(seek, r.Latency().Micros())
}

// Snapshot copies the grid; nil if never enabled. The grid pointer never
// changes once allocated, and its cells are atomics, so the copy may be
// taken outside the lock.
func (c *Collector2D) Snapshot() *histogram.Snapshot2D {
	c.mu.Lock()
	grid := c.grid
	c.mu.Unlock()
	if grid == nil {
		return nil
	}
	return grid.Snapshot()
}
