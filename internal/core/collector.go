// Package core implements the paper's primary contribution: the online disk
// I/O workload characterization service. A Collector attaches to one virtual
// disk's vSCSI fast path and maintains the full set of histograms from the
// paper — I/O length, seek distance (plus the windowed variant that
// disentangles interleaved sequential streams), outstanding I/Os, device
// latency and inter-arrival time — each broken down by all/reads/writes,
// in O(1) time and O(m) space per command (§3).
package core

import (
	"sync/atomic"

	"vscsistats/internal/histogram"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// DefaultWindow is the look-behind window for the windowed seek-distance
// histogram. "The parameter N is set to 16 by default." (§3.1)
const DefaultWindow = 16

// Collector gathers online histograms for a single virtual disk. It
// implements vscsi.Observer; attach it with Disk.AddObserver.
//
// A disabled collector costs one predictable branch per command ("the
// processor's branch predictor ensures that they don't create overhead when
// turned off") and holds no histogram memory ("our histogram data structures
// are dynamically created as needed").
type Collector struct {
	vm, disk string
	window   int
	enabled  atomic.Bool
	h        *histSet
}

// histSet is the dynamically allocated state, created on first Enable.
type histSet struct {
	ioLength     [3]*histogram.Histogram // indexed by opClass
	seekDistance [3]*histogram.Histogram
	seekWindowed *histogram.Histogram
	outstanding  [3]*histogram.Histogram
	latency      [3]*histogram.Histogram
	interarrival [3]*histogram.Histogram

	// lastEnd is the last logical block of the previous I/O (§3.1: "an
	// unsigned 64-bit memory location per virtual disk").
	lastEnd  uint64
	haveLast bool
	// recent is the circular array of the last-window request end blocks
	// used for the windowed seek-distance histogram.
	recent    []uint64
	recentLen int
	recentPos int
	// lastArrival is the issue time of the previous command (§3.2: "we
	// record the processor cycle counter value at the time of every
	// received I/O").
	lastArrival simclock.Time
	haveArrival bool

	commands   atomic.Int64
	reads      atomic.Int64
	writes     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	errors     atomic.Int64
}

// op classes index the per-metric histogram triples.
const (
	classAll = iota
	classRead
	classWrite
)

// NewCollector creates a disabled collector for the named disk with the
// default look-behind window.
func NewCollector(vm, disk string) *Collector {
	return NewCollectorWindow(vm, disk, DefaultWindow)
}

// NewCollectorWindow creates a disabled collector with an explicit windowed
// seek-distance look-behind of n (n >= 1).
func NewCollectorWindow(vm, disk string, n int) *Collector {
	if n < 1 {
		panic("core: window must be >= 1")
	}
	return &Collector{vm: vm, disk: disk, window: n}
}

// VM and Disk identify the virtual disk being characterized.
func (c *Collector) VM() string   { return c.vm }
func (c *Collector) Disk() string { return c.disk }

// Window returns the windowed seek-distance look-behind size.
func (c *Collector) Window() int { return c.window }

// Enabled reports whether the service is currently recording.
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// Enable turns the service on, allocating histograms on first use.
// Histograms persist across Disable/Enable cycles until Reset.
func (c *Collector) Enable() {
	if c.h == nil {
		c.h = newHistSet(c.window)
	}
	c.enabled.Store(true)
}

// Disable stops recording without discarding accumulated data.
func (c *Collector) Disable() { c.enabled.Store(false) }

// Reset discards all accumulated data and per-stream state.
func (c *Collector) Reset() {
	if c.h != nil {
		c.h = newHistSet(c.window)
	}
}

func newHistSet(window int) *histSet {
	h := &histSet{recent: make([]uint64, window)}
	for class, suffix := range [...]string{"", " (Reads)", " (Writes)"} {
		h.ioLength[class] = histogram.NewIOLength("I/O Length Histogram" + suffix)
		h.seekDistance[class] = histogram.NewSeekDistance("Seek Distance Histogram" + suffix)
		h.outstanding[class] = histogram.NewOutstanding("Outstanding I/Os Histogram" + suffix)
		h.latency[class] = histogram.NewLatency("I/O Latency Histogram" + suffix)
		h.interarrival[class] = histogram.NewInterarrival("I/O Interarrival Histogram" + suffix)
	}
	h.seekWindowed = histogram.NewSeekDistance("Seek Distance Histogram (Windowed)")
	return h
}

var _ vscsi.Observer = (*Collector)(nil)

// OnIssue records the arrival-side metrics: length, seek distance (plain and
// windowed), outstanding I/Os and inter-arrival time. Non-I/O SCSI commands
// (INQUIRY, TEST UNIT READY, …) are invisible to the workload histograms.
func (c *Collector) OnIssue(r *vscsi.Request) {
	if !c.enabled.Load() {
		return
	}
	cmd := r.Cmd
	if !cmd.Op.IsBlockIO() {
		return
	}
	h := c.h
	class := classRead
	if cmd.Op.IsWrite() {
		class = classWrite
	}
	h.commands.Add(1)
	if class == classRead {
		h.reads.Add(1)
		h.readBytes.Add(cmd.Bytes())
	} else {
		h.writes.Add(1)
		h.writeBytes.Add(cmd.Bytes())
	}

	// I/O length (§3.2).
	h.ioLength[classAll].Insert(cmd.Bytes())
	h.ioLength[class].Insert(cmd.Bytes())

	// Outstanding I/Os at arrival (§3.3).
	oio := int64(r.OutstandingAtIssue)
	h.outstanding[classAll].Insert(oio)
	h.outstanding[class].Insert(oio)

	// Seek distance: first block of this I/O minus last block of the
	// previous I/O, preserved signed to expose reverse scans (§3.1).
	if h.haveLast {
		d := int64(cmd.LBA) - int64(h.lastEnd)
		h.seekDistance[classAll].Insert(d)
		h.seekDistance[class].Insert(d)
	}
	// Windowed variant: minimum-magnitude distance to any of the last N
	// I/Os, sign preserved (§3.1).
	if h.recentLen > 0 {
		var best int64
		have := false
		for i := 0; i < h.recentLen; i++ {
			d := int64(cmd.LBA) - int64(h.recent[i])
			if !have || abs64(d) < abs64(best) {
				best, have = d, true
			}
		}
		h.seekWindowed.Insert(best)
	}
	h.lastEnd = cmd.LastLBA()
	h.haveLast = true
	h.recent[h.recentPos] = cmd.LastLBA()
	h.recentPos = (h.recentPos + 1) % len(h.recent)
	if h.recentLen < len(h.recent) {
		h.recentLen++
	}

	// Inter-arrival time in microseconds (§3.2).
	if h.haveArrival {
		h.interarrival[classAll].Insert((r.IssueTime - h.lastArrival).Micros())
		h.interarrival[class].Insert((r.IssueTime - h.lastArrival).Micros())
	}
	h.lastArrival = r.IssueTime
	h.haveArrival = true
}

// OnComplete records device latency (§3.5) and error counts.
func (c *Collector) OnComplete(r *vscsi.Request) {
	if !c.enabled.Load() {
		return
	}
	if !r.Cmd.Op.IsBlockIO() {
		return
	}
	h := c.h
	if r.Status != scsi.StatusGood {
		h.errors.Add(1)
		return
	}
	lat := r.Latency().Micros()
	h.latency[classAll].Insert(lat)
	if r.Cmd.Op.IsWrite() {
		h.latency[classWrite].Insert(lat)
	} else {
		h.latency[classRead].Insert(lat)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
