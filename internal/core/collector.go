// Package core implements the paper's primary contribution: the online disk
// I/O workload characterization service. A Collector attaches to one virtual
// disk's vSCSI fast path and maintains the full set of histograms from the
// paper — I/O length, seek distance (plus the windowed variant that
// disentangles interleaved sequential streams), outstanding I/Os, device
// latency and inter-arrival time — each broken down by all/reads/writes,
// in O(1) time and O(m) space per command (§3).
//
// Every Collector method is safe for concurrent use: OnIssue/OnComplete may
// run from several issuing goroutines while other goroutines call Snapshot,
// Enable, Disable and Reset. Histogram inserts and counters are lock-free
// atomics; only the stream-correlated state (previous command's end block,
// the windowed-seek ring, previous arrival time) takes a short per-collector
// mutex, so the fast path stays O(1) with one uncontended lock per command.
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"vscsistats/internal/histogram"
	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// DefaultWindow is the look-behind window for the windowed seek-distance
// histogram. "The parameter N is set to 16 by default." (§3.1)
const DefaultWindow = 16

// Collector gathers online histograms for a single virtual disk. It
// implements vscsi.Observer; attach it with Disk.AddObserver.
//
// A disabled collector costs one predictable branch per command ("the
// processor's branch predictor ensures that they don't create overhead when
// turned off") and holds no histogram memory ("our histogram data structures
// are dynamically created as needed").
type Collector struct {
	vm, disk string
	window   int
	enabled  atomic.Bool
	// h is the live histogram set. It is swapped atomically by Enable
	// (nil -> fresh) and Reset (old -> fresh), so an OnIssue or Snapshot
	// that loaded the pointer keeps working against a consistent set even
	// if a Reset lands mid-command.
	h atomic.Pointer[histSet]
	// self is the collector's self-telemetry (see selfstats.go): counters
	// and a sampled ns/observe histogram that make the paper's Table 2
	// overhead a live metric. It survives Reset.
	self *selfStats
}

// histSet is the dynamically allocated state, created on first Enable.
type histSet struct {
	ioLength     [3]*histogram.Histogram // indexed by opClass
	seekDistance [3]*histogram.Histogram
	seekWindowed *histogram.Histogram
	outstanding  [3]*histogram.Histogram
	latency      [3]*histogram.Histogram
	interarrival [3]*histogram.Histogram

	// streamMu guards the stream-correlated fields below (and only those):
	// they relate consecutive commands, so two issuing goroutines must
	// observe each other's updates in a consistent order. Histogram inserts
	// and the counters stay lock-free.
	streamMu sync.Mutex
	// lastEnd is the last logical block of the previous I/O (§3.1: "an
	// unsigned 64-bit memory location per virtual disk").
	lastEnd  uint64
	haveLast bool
	// recent is the circular array of the last-window request end blocks
	// used for the windowed seek-distance histogram.
	recent    []uint64
	recentLen int
	recentPos int
	// lastArrival is the issue time of the previous command (§3.2: "we
	// record the processor cycle counter value at the time of every
	// received I/O").
	lastArrival simclock.Time
	haveArrival bool

	commands   atomic.Int64
	reads      atomic.Int64
	writes     atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
	errors     atomic.Int64
}

// op classes index the per-metric histogram triples.
const (
	classAll = iota
	classRead
	classWrite
)

// NewCollector creates a disabled collector for the named disk with the
// default look-behind window.
func NewCollector(vm, disk string) *Collector {
	return NewCollectorWindow(vm, disk, DefaultWindow)
}

// NewCollectorWindow creates a disabled collector with an explicit windowed
// seek-distance look-behind of n (n >= 1).
func NewCollectorWindow(vm, disk string, n int) *Collector {
	if n < 1 {
		panic("core: window must be >= 1")
	}
	return &Collector{vm: vm, disk: disk, window: n, self: newSelfStats()}
}

// VM and Disk identify the virtual disk being characterized.
func (c *Collector) VM() string   { return c.vm }
func (c *Collector) Disk() string { return c.disk }

// Window returns the windowed seek-distance look-behind size.
func (c *Collector) Window() int { return c.window }

// Enabled reports whether the service is currently recording.
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// Enable turns the service on, allocating histograms on first use.
// Histograms persist across Disable/Enable cycles until Reset. Enable is
// idempotent under concurrent calls: when two goroutines race on the first
// allocation, exactly one histSet wins and the loser's is discarded, so no
// accumulated data is ever dropped by a duplicate Enable.
func (c *Collector) Enable() {
	if c.h.Load() == nil {
		c.h.CompareAndSwap(nil, newHistSet(c.window))
	}
	c.enabled.Store(true)
}

// Disable stops recording without discarding accumulated data.
func (c *Collector) Disable() { c.enabled.Store(false) }

// Reset discards all accumulated data and per-stream state. The swap is
// atomic: in-flight OnIssue/OnComplete calls that already loaded the old set
// finish against it (their samples vanish with it), and snapshot readers see
// either the complete old set or the fresh one — never a half-built set.
func (c *Collector) Reset() {
	for {
		old := c.h.Load()
		if old == nil {
			return
		}
		if c.h.CompareAndSwap(old, newHistSet(c.window)) {
			return
		}
	}
}

// BreakStream forgets the stream-correlated state — the previous command's
// end block, the windowed-seek ring and the previous arrival time — without
// touching any histogram. It marks a discontinuity in the command stream: a
// virtual disk handed off between hosts (vMotion), a collector adopted by a
// new owner, or two per-host substreams being compared against one merged
// stream. The next command contributes no seek, windowed-seek or
// inter-arrival sample, exactly as a fresh collector's first command does,
// which is what makes Aggregate over per-host snapshots bin-exact against
// one collector observing the concatenated stream.
func (c *Collector) BreakStream() {
	h := c.h.Load()
	if h == nil {
		return
	}
	h.streamMu.Lock()
	h.haveLast = false
	h.recentLen = 0
	h.recentPos = 0
	h.haveArrival = false
	h.streamMu.Unlock()
}

func newHistSet(window int) *histSet {
	h := &histSet{recent: make([]uint64, window)}
	for class, suffix := range [...]string{"", " (Reads)", " (Writes)"} {
		h.ioLength[class] = histogram.NewIOLength("I/O Length Histogram" + suffix)
		h.seekDistance[class] = histogram.NewSeekDistance("Seek Distance Histogram" + suffix)
		h.outstanding[class] = histogram.NewOutstanding("Outstanding I/Os Histogram" + suffix)
		h.latency[class] = histogram.NewLatency("I/O Latency Histogram" + suffix)
		h.interarrival[class] = histogram.NewInterarrival("I/O Interarrival Histogram" + suffix)
	}
	h.seekWindowed = histogram.NewSeekDistance("Seek Distance Histogram (Windowed)")
	return h
}

var (
	_ vscsi.Observer      = (*Collector)(nil)
	_ vscsi.BatchObserver = (*Collector)(nil)
)

// OnIssue records the arrival-side metrics: length, seek distance (plain and
// windowed), outstanding I/Os and inter-arrival time. Non-I/O SCSI commands
// (INQUIRY, TEST UNIT READY, …) are invisible to the workload histograms.
func (c *Collector) OnIssue(r *vscsi.Request) {
	if !c.enabled.Load() {
		return
	}
	cmd := r.Cmd
	if !cmd.Op.IsBlockIO() {
		return
	}
	n := c.self.observations.Add(1)
	sampled := n&selfSampleMask == 0
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	h := c.h.Load()
	if h == nil {
		c.self.dropped.Add(1)
		return
	}
	class := classRead
	if cmd.Op.IsWrite() {
		class = classWrite
	}
	h.commands.Add(1)
	if class == classRead {
		h.reads.Add(1)
		h.readBytes.Add(cmd.Bytes())
	} else {
		h.writes.Add(1)
		h.writeBytes.Add(cmd.Bytes())
	}

	// I/O length (§3.2).
	h.ioLength[classAll].Insert(cmd.Bytes())
	h.ioLength[class].Insert(cmd.Bytes())

	// Outstanding I/Os at arrival (§3.3).
	oio := int64(r.OutstandingAtIssue)
	h.outstanding[classAll].Insert(oio)
	h.outstanding[class].Insert(oio)

	// The stream-correlated metrics relate this command to its predecessors,
	// so their state updates form one critical section; the derived samples
	// are inserted after release to keep it short. TryLock first so a
	// collision between issuing goroutines — the fast path's only blocking
	// point — shows up in the self-telemetry.
	if !h.streamMu.TryLock() {
		c.self.contended.Add(1)
		h.streamMu.Lock()
	}
	// Seek distance: first block of this I/O minus last block of the
	// previous I/O, preserved signed to expose reverse scans (§3.1).
	seek, haveSeek := int64(0), h.haveLast
	if haveSeek {
		seek = int64(cmd.LBA) - int64(h.lastEnd)
	}
	// Windowed variant: minimum-magnitude distance to any of the last N
	// I/Os, sign preserved (§3.1).
	wseek, haveWseek := int64(0), h.recentLen > 0
	for i := 0; i < h.recentLen; i++ {
		d := int64(cmd.LBA) - int64(h.recent[i])
		if i == 0 || abs64(d) < abs64(wseek) {
			wseek = d
		}
	}
	h.lastEnd = cmd.LastLBA()
	h.haveLast = true
	h.recent[h.recentPos] = cmd.LastLBA()
	h.recentPos = (h.recentPos + 1) % len(h.recent)
	if h.recentLen < len(h.recent) {
		h.recentLen++
	}
	// Inter-arrival time in microseconds (§3.2).
	inter, haveInter := int64(0), h.haveArrival
	if haveInter {
		inter = (r.IssueTime - h.lastArrival).Micros()
	}
	h.lastArrival = r.IssueTime
	h.haveArrival = true
	h.streamMu.Unlock()

	if haveSeek {
		h.seekDistance[classAll].Insert(seek)
		h.seekDistance[class].Insert(seek)
	}
	if haveWseek {
		h.seekWindowed.Insert(wseek)
	}
	if haveInter {
		h.interarrival[classAll].Insert(inter)
		h.interarrival[class].Insert(inter)
	}

	if sampled {
		c.self.observeNs.Insert(time.Since(t0).Nanoseconds())
	}
}

// batchStack is the burst size OnIssueBatch handles without heap
// allocation; larger bursts spill to a heap buffer.
const batchStack = 64

// streamSample is one command's stream-correlated samples, computed under
// the stream mutex and inserted after release.
type streamSample struct {
	seek, wseek, inter          int64
	haveSeek, haveWseek, haveInter bool
	class                       int
}

// OnIssueBatch records the arrival-side metrics for a burst of commands
// issued at one instant (vscsi.BatchObserver). It is sample-for-sample
// equivalent to calling OnIssue once per request in order — the property
// the bit-exactness tests pin — but amortizes the per-command overheads
// across the burst: the counters become one atomic add per counter, the
// observer dispatch is one call, and the stream mutex (the fast path's only
// blocking point) is taken once instead of once per command.
func (c *Collector) OnIssueBatch(rs []*vscsi.Request) {
	if !c.enabled.Load() {
		return
	}
	var nBlock int64
	for _, r := range rs {
		if r.Cmd.Op.IsBlockIO() {
			nBlock++
		}
	}
	if nBlock == 0 {
		return
	}
	obs := c.self.observations.Add(nBlock)
	// Time the burst when it crosses a 1-in-64 observation boundary,
	// recording the burst's mean cost per command — the same sampling
	// rate as the per-command path.
	sampled := obs>>6 != (obs-nBlock)>>6
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	h := c.h.Load()
	if h == nil {
		c.self.dropped.Add(nBlock)
		return
	}

	var commands, reads, writes, readBytes, writeBytes int64
	for _, r := range rs {
		cmd := r.Cmd
		if !cmd.Op.IsBlockIO() {
			continue
		}
		class := classRead
		if cmd.Op.IsWrite() {
			class = classWrite
		}
		commands++
		if class == classRead {
			reads++
			readBytes += cmd.Bytes()
		} else {
			writes++
			writeBytes += cmd.Bytes()
		}
		h.ioLength[classAll].Insert(cmd.Bytes())
		h.ioLength[class].Insert(cmd.Bytes())
		oio := int64(r.OutstandingAtIssue)
		h.outstanding[classAll].Insert(oio)
		h.outstanding[class].Insert(oio)
	}
	h.commands.Add(commands)
	if reads > 0 {
		h.reads.Add(reads)
		h.readBytes.Add(readBytes)
	}
	if writes > 0 {
		h.writes.Add(writes)
		h.writeBytes.Add(writeBytes)
	}

	// One critical section for the whole burst: compute every command's
	// stream-correlated samples in issue order, then insert after release.
	var buf [batchStack]streamSample
	samples := buf[:0]
	if nBlock > batchStack {
		samples = make([]streamSample, 0, nBlock)
	}
	if !h.streamMu.TryLock() {
		c.self.contended.Add(1)
		h.streamMu.Lock()
	}
	for _, r := range rs {
		cmd := r.Cmd
		if !cmd.Op.IsBlockIO() {
			continue
		}
		var s streamSample
		s.class = classRead
		if cmd.Op.IsWrite() {
			s.class = classWrite
		}
		if h.haveLast {
			s.haveSeek = true
			s.seek = int64(cmd.LBA) - int64(h.lastEnd)
		}
		if h.recentLen > 0 {
			s.haveWseek = true
			for i := 0; i < h.recentLen; i++ {
				d := int64(cmd.LBA) - int64(h.recent[i])
				if i == 0 || abs64(d) < abs64(s.wseek) {
					s.wseek = d
				}
			}
		}
		h.lastEnd = cmd.LastLBA()
		h.haveLast = true
		h.recent[h.recentPos] = cmd.LastLBA()
		h.recentPos = (h.recentPos + 1) % len(h.recent)
		if h.recentLen < len(h.recent) {
			h.recentLen++
		}
		if h.haveArrival {
			s.haveInter = true
			s.inter = (r.IssueTime - h.lastArrival).Micros()
		}
		h.lastArrival = r.IssueTime
		h.haveArrival = true
		samples = append(samples, s)
	}
	h.streamMu.Unlock()

	for i := range samples {
		s := &samples[i]
		if s.haveSeek {
			h.seekDistance[classAll].Insert(s.seek)
			h.seekDistance[s.class].Insert(s.seek)
		}
		if s.haveWseek {
			h.seekWindowed.Insert(s.wseek)
		}
		if s.haveInter {
			h.interarrival[classAll].Insert(s.inter)
			h.interarrival[s.class].Insert(s.inter)
		}
	}

	if sampled {
		c.self.observeNs.Insert(time.Since(t0).Nanoseconds() / nBlock)
	}
}

// OnComplete records device latency (§3.5) and error counts.
func (c *Collector) OnComplete(r *vscsi.Request) {
	if !c.enabled.Load() {
		return
	}
	if !r.Cmd.Op.IsBlockIO() {
		return
	}
	n := c.self.observations.Add(1)
	sampled := n&selfSampleMask == 0
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	h := c.h.Load()
	if h == nil {
		c.self.dropped.Add(1)
		return
	}
	if r.Status != scsi.StatusGood {
		h.errors.Add(1)
	} else {
		lat := r.Latency().Micros()
		h.latency[classAll].Insert(lat)
		if r.Cmd.Op.IsWrite() {
			h.latency[classWrite].Insert(lat)
		} else {
			h.latency[classRead].Insert(lat)
		}
	}
	if sampled {
		c.self.observeNs.Insert(time.Since(t0).Nanoseconds())
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
