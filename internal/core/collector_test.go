package core

import (
	"strings"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// rig wires a collector to a virtual disk over a fixed-latency backend.
type rig struct {
	eng *simclock.Engine
	d   *vscsi.Disk
	col *Collector
}

func newRig(t *testing.T, latency simclock.Time) *rig {
	t.Helper()
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(latency, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{
		VM: "vm1", Name: "scsi0:0", CapacitySectors: 1 << 30,
	})
	col := NewCollector("vm1", "scsi0:0")
	col.Enable()
	d.AddObserver(col)
	return &rig{eng, d, col}
}

// issueAt issues cmd at virtual time at and runs the engine to drain.
func (r *rig) issueSeq(t *testing.T, gap simclock.Time, cmds ...scsi.Command) {
	t.Helper()
	at := r.eng.Now()
	for _, cmd := range cmds {
		cmd := cmd
		r.eng.At(at, func(simclock.Time) {
			if _, err := r.d.Issue(cmd, nil); err != nil {
				t.Errorf("issue: %v", err)
			}
		})
		at += gap
	}
	r.eng.Run()
}

func TestDisabledCollectorRecordsNothing(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.col.Disable()
	r.issueSeq(t, simclock.Millisecond, scsi.Read(0, 8))
	s := r.col.Snapshot()
	if s.Commands != 0 || s.IOLength[All].Total != 0 {
		t.Errorf("disabled collector recorded data: %+v", s)
	}
}

func TestNeverEnabledSnapshotNil(t *testing.T) {
	c := NewCollector("v", "d")
	if c.Snapshot() != nil {
		t.Error("never-enabled collector should have nil snapshot (no data structures)")
	}
	if c.Enabled() {
		t.Error("new collector should be disabled")
	}
}

func TestIOLengthAndReadWriteBreakdown(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond,
		scsi.Read(0, 8),     // 4096 B
		scsi.Write(100, 16), // 8192 B
		scsi.Read(200, 8),
	)
	s := r.col.Snapshot()
	if s.Commands != 3 || s.NumReads != 2 || s.NumWrites != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.ReadBytes != 8192 || s.WriteBytes != 8192 {
		t.Errorf("bytes: read=%d write=%d", s.ReadBytes, s.WriteBytes)
	}
	if got := s.ReadFraction(); got < 0.66 || got > 0.67 {
		t.Errorf("ReadFraction = %v", got)
	}
	all, reads, writes := s.IOLength[All], s.IOLength[Reads], s.IOLength[Writes]
	if all.Total != 3 || reads.Total != 2 || writes.Total != 1 {
		t.Errorf("length totals: %d/%d/%d", all.Total, reads.Total, writes.Total)
	}
	// 4096 must land exactly in the "4096" bin.
	idx := -1
	for i := range reads.Counts {
		if reads.BinLabel(i) == "4096" {
			idx = i
		}
	}
	if reads.Counts[idx] != 2 {
		t.Errorf("reads in 4096 bin = %d, want 2", reads.Counts[idx])
	}
}

func TestSeekDistanceSequentialPeaksNearOne(t *testing.T) {
	r := newRig(t, simclock.Microsecond)
	// Three perfectly sequential 8-sector reads: LBA 0, 8, 16.
	r.issueSeq(t, simclock.Millisecond,
		scsi.Read(0, 8), scsi.Read(8, 8), scsi.Read(16, 8))
	s := r.col.Snapshot()
	sd := s.SeekDistance[All]
	if sd.Total != 2 { // first I/O has no predecessor
		t.Fatalf("seek samples = %d, want 2", sd.Total)
	}
	// distance = 8 - 7 = 1 -> bin "2"
	for i, c := range sd.Counts {
		if c > 0 && sd.BinLabel(i) != "2" {
			t.Errorf("sequential seeks landed in bin %s", sd.BinLabel(i))
		}
	}
	if sd.Min != 1 || sd.Max != 1 {
		t.Errorf("seek min/max = %d/%d, want 1/1", sd.Min, sd.Max)
	}
}

func TestSeekDistanceReverseScanNegative(t *testing.T) {
	r := newRig(t, simclock.Microsecond)
	r.issueSeq(t, simclock.Millisecond,
		scsi.Read(100000, 8), scsi.Read(50000, 8))
	s := r.col.Snapshot()
	sd := s.SeekDistance[All]
	if sd.Min >= 0 {
		t.Errorf("reverse scan not negative: min=%d", sd.Min)
	}
	// 50000 - 100007 = -50007 -> first edge >= -50007 is -50000? No:
	// -50007 <= -50000, so bin edge -50000 (bin 1).
	if sd.Counts[1] != 1 {
		t.Errorf("reverse scan bin counts: %v", sd.Counts)
	}
}

func TestSeekDistanceSameBlockZero(t *testing.T) {
	r := newRig(t, simclock.Microsecond)
	// Repeatedly accessing the same block: distance = LBA - LastLBA.
	// For single-sector I/Os at the same LBA the distance is 0.
	r.issueSeq(t, simclock.Millisecond,
		scsi.Read(500, 1), scsi.Read(500, 1), scsi.Read(500, 1))
	s := r.col.Snapshot()
	sd := s.SeekDistance[All]
	for i, c := range sd.Counts {
		if c > 0 && sd.BinLabel(i) != "0" {
			t.Errorf("same-block access in bin %s", sd.BinLabel(i))
		}
	}
	if sd.Total != 2 {
		t.Errorf("Total = %d", sd.Total)
	}
}

func TestWindowedSeekDisentanglesTwoStreams(t *testing.T) {
	// Two interleaved sequential streams far apart: the plain histogram
	// sees huge alternating jumps, the windowed histogram sees distance 1.
	r := newRig(t, simclock.Microsecond)
	var cmds []scsi.Command
	base2 := uint64(10_000_000)
	for i := uint64(0); i < 20; i++ {
		cmds = append(cmds, scsi.Read(i*8, 8), scsi.Read(base2+i*8, 8))
	}
	r.issueSeq(t, simclock.Millisecond, cmds...)
	s := r.col.Snapshot()

	plain, windowed := s.SeekDistance[All], s.SeekWindowed
	// Plain: nearly all samples beyond +/-500000.
	farPlain := plain.Counts[0] + plain.Counts[len(plain.Counts)-1]
	if float64(farPlain)/float64(plain.Total) < 0.9 {
		t.Errorf("plain histogram should be dominated by far seeks: %v", plain.Counts)
	}
	// Windowed: dominated by the sequential bin "2" (distance 1).
	var seq int64
	for i, c := range windowed.Counts {
		if windowed.BinLabel(i) == "2" {
			seq = c
		}
	}
	if float64(seq)/float64(windowed.Total) < 0.9 {
		t.Errorf("windowed histogram should peak at 1: %v (total %d)", windowed.Counts, windowed.Total)
	}
}

func TestWindowedSeekRespectsWindowSize(t *testing.T) {
	// With window 1 the windowed histogram degenerates to the plain one.
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusGood, scsi.Sense{})
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 30})
	col := NewCollectorWindow("v", "d", 1)
	col.Enable()
	d.AddObserver(col)
	for i := uint64(0); i < 10; i++ {
		d.Issue(scsi.Read(i*8, 8), nil)
		d.Issue(scsi.Read(5_000_000+i*8, 8), nil)
	}
	eng.Run()
	s := col.Snapshot()
	for i := range s.SeekDistance[All].Counts {
		if s.SeekDistance[All].Counts[i] != s.SeekWindowed.Counts[i] {
			t.Fatalf("window=1 should equal plain:\nplain   %v\nwindowed %v",
				s.SeekDistance[All].Counts, s.SeekWindowed.Counts)
		}
	}
}

func TestInterarrivalRecorded(t *testing.T) {
	r := newRig(t, simclock.Microsecond)
	r.issueSeq(t, 500*simclock.Microsecond,
		scsi.Read(0, 8), scsi.Read(8, 8), scsi.Read(16, 8))
	s := r.col.Snapshot()
	ia := s.Interarrival[All]
	if ia.Total != 2 {
		t.Fatalf("interarrival samples = %d", ia.Total)
	}
	if ia.Min != 500 || ia.Max != 500 {
		t.Errorf("interarrival min/max = %d/%d us, want 500", ia.Min, ia.Max)
	}
}

func TestLatencyRecordedOnCompletion(t *testing.T) {
	r := newRig(t, 5*simclock.Millisecond)
	r.issueSeq(t, 10*simclock.Millisecond, scsi.Read(0, 8), scsi.Write(100, 8))
	s := r.col.Snapshot()
	if s.Latency[All].Total != 2 || s.Latency[Reads].Total != 1 || s.Latency[Writes].Total != 1 {
		t.Fatalf("latency totals: %d/%d/%d",
			s.Latency[All].Total, s.Latency[Reads].Total, s.Latency[Writes].Total)
	}
	if s.Latency[All].Min != 5000 {
		t.Errorf("latency = %d us, want 5000", s.Latency[All].Min)
	}
}

func TestOutstandingIOsAtArrival(t *testing.T) {
	r := newRig(t, 10*simclock.Millisecond)
	// Issue 4 commands at the same instant: depths 0,1,2,3.
	for i := 0; i < 4; i++ {
		r.d.Issue(scsi.Read(uint64(i*8), 8), nil)
	}
	r.eng.Run()
	s := r.col.Snapshot()
	oio := s.Outstanding[All]
	if oio.Total != 4 {
		t.Fatalf("oio samples = %d", oio.Total)
	}
	if oio.Min != 0 || oio.Max != 3 {
		t.Errorf("oio min/max = %d/%d", oio.Min, oio.Max)
	}
}

func TestErrorsCountedNotTimed(t *testing.T) {
	eng := simclock.NewEngine()
	backend := vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		done(scsi.StatusCheckCondition, scsi.SenseUnrecoveredRead)
	})
	d := vscsi.NewDisk(eng, backend, vscsi.DiskConfig{VM: "v", Name: "d", CapacitySectors: 1 << 20})
	col := NewCollector("v", "d")
	col.Enable()
	d.AddObserver(col)
	d.Issue(scsi.Read(0, 8), nil)
	eng.Run()
	s := col.Snapshot()
	if s.Errors != 1 {
		t.Errorf("Errors = %d", s.Errors)
	}
	if s.Latency[All].Total != 0 {
		t.Error("failed command must not contribute a latency sample")
	}
	// Arrival-side metrics were still recorded.
	if s.IOLength[All].Total != 1 {
		t.Error("arrival metrics missing for failed command")
	}
}

func TestNonIOCommandsInvisible(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond,
		scsi.Command{Op: scsi.OpTestUnitReady},
		scsi.Command{Op: scsi.OpInquiry},
		scsi.Read(0, 8))
	s := r.col.Snapshot()
	if s.Commands != 1 {
		t.Errorf("Commands = %d, want 1 (non-I/O invisible)", s.Commands)
	}
}

func TestDisableEnablePreservesData(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond, scsi.Read(0, 8))
	r.col.Disable()
	r.issueSeq(t, simclock.Millisecond, scsi.Read(8, 8), scsi.Read(16, 8))
	r.col.Enable()
	r.issueSeq(t, simclock.Millisecond, scsi.Read(24, 8))
	s := r.col.Snapshot()
	if s.Commands != 2 {
		t.Errorf("Commands = %d, want 2 (1 before + 1 after disable window)", s.Commands)
	}
}

func TestResetClearsEverything(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond, scsi.Read(0, 8), scsi.Read(8, 8))
	r.col.Reset()
	s := r.col.Snapshot()
	if s.Commands != 0 || s.IOLength[All].Total != 0 || s.SeekDistance[All].Total != 0 {
		t.Errorf("Reset incomplete: %+v", s)
	}
	// Per-stream state must also clear: the next I/O has no predecessor.
	r.issueSeq(t, simclock.Millisecond, scsi.Read(16, 8))
	if got := r.col.Snapshot().SeekDistance[All].Total; got != 0 {
		t.Errorf("seek recorded against pre-reset predecessor: %d", got)
	}
}

func TestSnapshotSubIsInterval(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond, scsi.Read(0, 8))
	s1 := r.col.Snapshot()
	r.issueSeq(t, simclock.Millisecond, scsi.Write(100, 16), scsi.Write(200, 16))
	s2 := r.col.Snapshot()
	d := s2.Sub(s1)
	if d.Commands != 2 || d.NumWrites != 2 || d.NumReads != 0 {
		t.Errorf("interval: %+v", d)
	}
	if d.IOLength[Writes].Total != 2 {
		t.Errorf("interval write lengths: %d", d.IOLength[Writes].Total)
	}
}

func TestHistogramAccessorCoversAllMetrics(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond, scsi.Read(0, 8), scsi.Read(8, 8))
	s := r.col.Snapshot()
	for _, m := range Metrics() {
		for _, cl := range []Class{All, Reads, Writes} {
			if s.Histogram(m, cl) == nil {
				t.Errorf("Histogram(%s, %s) = nil", m, cl)
			}
		}
	}
	if s.Histogram(Metric("bogus"), All) != nil {
		t.Error("unknown metric should return nil")
	}
}

func TestSummaryRenders(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	r.issueSeq(t, simclock.Millisecond, scsi.Read(0, 8), scsi.Write(64, 8))
	sum := r.col.Snapshot().Summary()
	for _, want := range []string{"vm1", "scsi0:0", "2 commands", "ioLength"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
	if out := r.col.Snapshot().Render(Metrics(), All); !strings.Contains(out, "I/O Length Histogram") {
		t.Errorf("Render missing length histogram:\n%s", out)
	}
}

func TestCollectorWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window 0 should panic")
		}
	}()
	NewCollectorWindow("v", "d", 0)
}

func BenchmarkCollectorOnIssueEnabled(b *testing.B) {
	col := NewCollector("v", "d")
	col.Enable()
	r := &vscsi.Request{Cmd: scsi.Read(0, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Cmd.LBA = uint64(i) * 8 % (1 << 30)
		r.IssueTime = simclock.Time(i) * simclock.Microsecond
		r.OutstandingAtIssue = i % 32
		col.OnIssue(r)
	}
}

func BenchmarkCollectorOnIssueDisabled(b *testing.B) {
	col := NewCollector("v", "d")
	r := &vscsi.Request{Cmd: scsi.Read(0, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col.OnIssue(r)
	}
}
