package core

import (
	"math/rand"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// deltaFeed drives n randomized commands through col, exercising every
// histogram family (reads/writes, seeks both directions, queue depths,
// latencies, the occasional error).
func deltaFeed(t *testing.T, rng *rand.Rand, col *Collector, n int) {
	t.Helper()
	lba := uint64(rng.Intn(1 << 20))
	now := simclock.Time(rng.Intn(1000)) * simclock.Millisecond
	for i := 0; i < n; i++ {
		var cmd scsi.Command
		if rng.Intn(2) == 0 {
			cmd = scsi.Read(lba, uint32(1+rng.Intn(64)))
		} else {
			cmd = scsi.Write(lba, uint32(1+rng.Intn(64)))
		}
		r := &vscsi.Request{
			Cmd:                cmd,
			IssueTime:          now,
			CompleteTime:       now + simclock.Time(50+rng.Intn(3000))*simclock.Microsecond,
			OutstandingAtIssue: rng.Intn(32),
			Status:             scsi.StatusGood,
		}
		if rng.Intn(23) == 0 {
			r.Status = scsi.StatusCheckCondition
		}
		col.OnIssue(r)
		col.OnComplete(r)
		lba = uint64(int64(lba) + rng.Int63n(1<<16) - 1<<15)
		now += simclock.Time(rng.Intn(900)+10) * simclock.Microsecond
	}
}

// TestApplyDeltaReconstructsExactly is the randomized property test for the
// delta identity the fleet push protocol depends on: for any chain of
// snapshots s0, s1, ..., sk of one collector,
//
//	sk == s0.ApplyDelta(s1.Sub(s0)).ApplyDelta(s2.Sub(s1))...
//
// bin-exactly across all six metrics and all three classes — full state
// equals the sum of its deltas.
func TestApplyDeltaReconstructsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		col := NewCollector("vm", "disk")
		col.Enable()
		deltaFeed(t, rng, col, rng.Intn(300))
		state := col.Snapshot()
		prev := state
		for round := 0; round < 5; round++ {
			deltaFeed(t, rng, col, rng.Intn(200))
			cur := col.Snapshot()
			state = state.ApplyDelta(cur.Sub(prev))
			prev = cur
			if !state.StateEquals(cur) {
				t.Fatalf("trial %d round %d: delta-reassembled state diverged from the live snapshot", trial, round)
			}
		}
	}
}

// TestApplyDeltaEmptyIntervalIsIdentity pins the degenerate case: a delta
// between two identical snapshots reapplies to exactly the same state,
// extrema included.
func TestApplyDeltaEmptyIntervalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := NewCollector("vm", "disk")
	col.Enable()
	deltaFeed(t, rng, col, 150)
	a := col.Snapshot()
	b := col.Snapshot()
	d := b.Sub(a)
	if d.Commands != 0 {
		t.Fatalf("empty interval has %d commands", d.Commands)
	}
	if got := a.ApplyDelta(d); !got.StateEquals(a) {
		t.Fatal("identity delta changed the state")
	}
	if !a.StateEquals(b) {
		t.Fatal("two back-to-back snapshots of an idle collector differ")
	}
}

// TestStateEqualsDetectsAnyChange feeds one extra command and asserts
// StateEquals flips — the guard that lets the agent omit only genuinely
// unchanged disks from delta batches.
func TestStateEqualsDetectsAnyChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	col := NewCollector("vm", "disk")
	col.Enable()
	deltaFeed(t, rng, col, 100)
	before := col.Snapshot()
	deltaFeed(t, rng, col, 1)
	after := col.Snapshot()
	if before.StateEquals(after) {
		t.Fatal("StateEquals missed a one-command change")
	}
	if !after.StateEquals(after) {
		t.Fatal("StateEquals is not reflexive")
	}
}
