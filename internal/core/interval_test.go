package core

import (
	"strings"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func TestIntervalRecorderDeltas(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	rec := NewIntervalRecorder(r.eng, r.col, 6*simclock.Second)
	// 1 I/O per second for 18 seconds (offset half a second to avoid
	// same-instant ties with the ticks): three 6-second intervals of 6.
	for i := 0; i < 18; i++ {
		i := i
		r.eng.At(simclock.Time(i)*simclock.Second+500*simclock.Millisecond, func(simclock.Time) {
			r.d.Issue(scsi.Read(uint64(i*8), 8), nil)
		})
	}
	r.eng.RunUntil(18*simclock.Second + 1)
	rec.Stop()
	if len(rec.Intervals) != 3 {
		t.Fatalf("intervals = %d, want 3", len(rec.Intervals))
	}
	for i, s := range rec.Intervals {
		if s.Commands != 6 {
			t.Errorf("interval %d commands = %d, want 6", i, s.Commands)
		}
	}
	rates := rec.Rates()
	if len(rates) != 3 || rates[0] != 6 {
		t.Errorf("Rates = %v", rates)
	}
}

func TestIntervalRecorderSeries(t *testing.T) {
	r := newRig(t, simclock.Millisecond)
	rec := NewIntervalRecorder(r.eng, r.col, simclock.Second)
	// Interval 1: shallow queue. Interval 2: deep queue.
	r.eng.At(100*simclock.Millisecond, func(simclock.Time) {
		r.d.Issue(scsi.Read(0, 8), nil)
	})
	r.eng.At(1100*simclock.Millisecond, func(simclock.Time) {
		for i := 0; i < 8; i++ {
			r.d.Issue(scsi.Read(uint64(i*8), 8), nil)
		}
	})
	r.eng.RunUntil(2*simclock.Second + 1)
	rec.Stop()
	ts := rec.Series(MetricOutstanding, All)
	if ts.Len() != 2 {
		t.Fatalf("series len = %d", ts.Len())
	}
	if ts.Snaps[0].Total != 1 || ts.Snaps[1].Total != 8 {
		t.Errorf("series totals: %d, %d", ts.Snaps[0].Total, ts.Snaps[1].Total)
	}
	if ts.Snaps[1].Max != 7 {
		t.Errorf("interval 2 max OIO = %d, want 7", ts.Snaps[1].Max)
	}
	if !strings.Contains(ts.CSV(), "S1,S2") {
		t.Errorf("series CSV:\n%s", ts.CSV())
	}
}

func TestIntervalRecorderNeedsEnabledCollector(t *testing.T) {
	eng := simclock.NewEngine()
	col := NewCollector("v", "d")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for disabled collector")
		}
	}()
	NewIntervalRecorder(eng, col, simclock.Second)
}

func TestRegistryRegisterLookupList(t *testing.T) {
	reg := NewRegistry()
	a := NewCollector("vmB", "scsi0:0")
	b := NewCollector("vmA", "scsi0:1")
	c := NewCollector("vmA", "scsi0:0")
	reg.Register(a)
	reg.Register(b)
	reg.Register(c)
	if reg.Lookup("vmB", "scsi0:0") != a {
		t.Error("Lookup failed")
	}
	if reg.Lookup("nope", "x") != nil {
		t.Error("Lookup of unknown should be nil")
	}
	list := reg.List()
	if len(list) != 3 || list[0] != c || list[1] != b || list[2] != a {
		t.Errorf("List order wrong: %v", list)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Register(NewCollector("v", "d"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	reg.Register(NewCollector("v", "d"))
}

func TestRegistryEnableDisableResetAll(t *testing.T) {
	reg := NewRegistry()
	a := NewCollector("v", "d1")
	b := NewCollector("v", "d2")
	reg.Register(a)
	reg.Register(b)
	reg.EnableAll()
	if !a.Enabled() || !b.Enabled() {
		t.Fatal("EnableAll failed")
	}
	if n := len(reg.Snapshots()); n != 2 {
		t.Errorf("Snapshots = %d, want 2", n)
	}
	reg.DisableAll()
	if a.Enabled() || b.Enabled() {
		t.Fatal("DisableAll failed")
	}
	// ResetAll must not panic on enabled-then-disabled collectors.
	reg.ResetAll()
}

func TestRegistrySnapshotsSkipNeverEnabled(t *testing.T) {
	reg := NewRegistry()
	reg.Register(NewCollector("v", "d"))
	if got := reg.Snapshots(); len(got) != 0 {
		t.Errorf("Snapshots = %d, want 0", len(got))
	}
}

func issueMany(t *testing.T, r *rig, cmds []scsi.Command, gap simclock.Time) *Snapshot {
	t.Helper()
	r.issueSeq(t, gap, cmds...)
	return r.col.Snapshot()
}

func TestFingerprintSequentialRead(t *testing.T) {
	r := newRig(t, 200*simclock.Microsecond)
	var cmds []scsi.Command
	for i := uint64(0); i < 200; i++ {
		cmds = append(cmds, scsi.Read(i*128, 128)) // 64 KB sequential
	}
	f := FingerprintOf(issueMany(t, r, cmds, simclock.Millisecond))
	if f.AccessPattern != PatternSequential {
		t.Errorf("pattern = %s, want sequential (%+v)", f.AccessPattern, f)
	}
	if f.ReadFraction != 1 {
		t.Errorf("ReadFraction = %v", f.ReadFraction)
	}
	if f.DominantIOBytes != 65536 {
		t.Errorf("DominantIOBytes = %d, want 65536", f.DominantIOBytes)
	}
	recs := f.Recommendations()
	if len(recs) == 0 || !strings.Contains(strings.Join(recs, "\n"), "read-ahead") {
		t.Errorf("recommendations: %v", recs)
	}
}

func TestFingerprintRandomWrite(t *testing.T) {
	r := newRig(t, 200*simclock.Microsecond)
	rng := simclock.NewRand(7)
	var cmds []scsi.Command
	for i := 0; i < 500; i++ {
		cmds = append(cmds, scsi.Write(uint64(rng.Int63n(1<<28)), 16))
	}
	f := FingerprintOf(issueMany(t, r, cmds, simclock.Millisecond))
	if f.AccessPattern != PatternRandom {
		t.Errorf("pattern = %s, want random", f.AccessPattern)
	}
	if f.ReadFraction != 0 {
		t.Errorf("ReadFraction = %v", f.ReadFraction)
	}
	report := f.Report()
	if !strings.Contains(report, "write-back cache") {
		t.Errorf("write-heavy advice missing:\n%s", report)
	}
}

func TestFingerprintReverseScan(t *testing.T) {
	r := newRig(t, 100*simclock.Microsecond)
	var cmds []scsi.Command
	for i := 400; i > 0; i-- {
		cmds = append(cmds, scsi.Read(uint64(i)*100000, 8))
	}
	f := FingerprintOf(issueMany(t, r, cmds, simclock.Millisecond))
	if f.ReverseScanFraction < 0.9 {
		t.Errorf("ReverseScanFraction = %v, want ~1", f.ReverseScanFraction)
	}
	if !strings.Contains(strings.Join(f.Recommendations(), "\n"), "reverse scans") {
		t.Error("reverse-scan advice missing")
	}
}

func TestFingerprintEmpty(t *testing.T) {
	var zero Fingerprint
	if got := FingerprintOf(nil); got != zero {
		t.Errorf("FingerprintOf(nil) = %+v", got)
	}
	c := NewCollector("v", "d")
	c.Enable()
	if got := FingerprintOf(c.Snapshot()); got != zero {
		t.Errorf("FingerprintOf(empty) = %+v", got)
	}
}

func TestFingerprintString(t *testing.T) {
	f := Fingerprint{AccessPattern: PatternMixed, SequentialFraction: 0.5,
		ReadFraction: 0.25, DominantIOBytes: 8192, MeanOutstanding: 3.2}
	s := f.String()
	for _, want := range []string{"mixed", "50% local", "25% reads", "8192B"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func vscsiBackend(eng *simclock.Engine) vscsi.Backend {
	return vscsi.BackendFunc(func(r *vscsi.Request, done func(scsi.Status, scsi.Sense)) {
		eng.After(simclock.Millisecond, func(simclock.Time) { done(scsi.StatusGood, scsi.Sense{}) })
	})
}

func vscsiDisk(eng *simclock.Engine, b vscsi.Backend, vm, disk string) *vscsi.Disk {
	return vscsi.NewDisk(eng, b, vscsi.DiskConfig{VM: vm, Name: disk, CapacitySectors: 1 << 20})
}

func TestAggregateAndVMSnapshot(t *testing.T) {
	mk := func(vm, disk string, reads int) *Collector {
		eng := simclock.NewEngine()
		backend := vscsiBackend(eng)
		d := vscsiDisk(eng, backend, vm, disk)
		c := NewCollector(vm, disk)
		c.Enable()
		d.AddObserver(c)
		for i := 0; i < reads; i++ {
			d.Issue(scsi.Read(uint64(i*8), 8), nil)
		}
		eng.Run()
		return c
	}
	reg := NewRegistry()
	a := mk("vm1", "d0", 3)
	b := mk("vm1", "d1", 5)
	c := mk("vm2", "d0", 7)
	reg.Register(a)
	reg.Register(b)
	reg.Register(c)

	vmAgg := reg.VMSnapshot("vm1")
	if vmAgg.Commands != 8 || vmAgg.NumReads != 8 {
		t.Errorf("vm1 aggregate: %+v", vmAgg.Commands)
	}
	if vmAgg.IOLength[All].Total != 8 {
		t.Errorf("vm1 length total = %d", vmAgg.IOLength[All].Total)
	}
	host := reg.HostSnapshot()
	if host.Commands != 15 {
		t.Errorf("host aggregate: %d", host.Commands)
	}
	if Aggregate("x", "y") != nil {
		t.Error("empty aggregate should be nil")
	}
	// Aggregation must not mutate the inputs.
	if a.Snapshot().Commands != 3 {
		t.Error("aggregate mutated a source snapshot")
	}
	if reg.VMSnapshot("ghost") != nil {
		t.Error("unknown VM should aggregate to nil")
	}
}
