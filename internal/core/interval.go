package core

import (
	"vscsistats/internal/histogram"
	"vscsistats/internal/simclock"
)

// IntervalRecorder periodically snapshots a collector and keeps the
// per-interval deltas, producing the paper's "histogram over time" views
// (Figure 4(d) and Figure 6(c) use 6-second intervals).
type IntervalRecorder struct {
	col      *Collector
	interval simclock.Time
	last     *Snapshot
	ticker   *simclock.Ticker
	// Intervals holds one delta snapshot per elapsed interval.
	Intervals []*Snapshot
}

// NewIntervalRecorder starts recording col every interval on eng. The
// collector must already be enabled (it must have data structures).
func NewIntervalRecorder(eng *simclock.Engine, col *Collector, interval simclock.Time) *IntervalRecorder {
	r := &IntervalRecorder{col: col, interval: interval, last: col.Snapshot()}
	if r.last == nil {
		panic("core: IntervalRecorder needs an enabled collector")
	}
	r.ticker = simclock.NewTicker(eng, interval, func(simclock.Time) { r.tick() })
	return r
}

func (r *IntervalRecorder) tick() {
	cur := r.col.Snapshot()
	r.Intervals = append(r.Intervals, cur.Sub(r.last))
	r.last = cur
}

// Stop ends recording.
func (r *IntervalRecorder) Stop() { r.ticker.Stop() }

// Series extracts the time series of one histogram family.
func (r *IntervalRecorder) Series(m Metric, cl Class) *histogram.Series {
	ts := &histogram.Series{IntervalMicros: r.interval.Micros()}
	for _, s := range r.Intervals {
		ts.Append(s.Histogram(m, cl))
	}
	return ts
}

// Rates returns the per-interval block-I/O command counts — the view behind
// the paper's observation that DBT-2's I/O rate varies "by as much as 15%
// over a 2 min period" (§4.2).
func (r *IntervalRecorder) Rates() []int64 {
	out := make([]int64, len(r.Intervals))
	for i, s := range r.Intervals {
		out[i] = s.Commands
	}
	return out
}
