package core

import (
	"fmt"
	"strings"
)

// Fingerprint is a compact workload classification derived from a snapshot.
// The paper's §7 proposes "automatic categorization of workloads and
// generation of recommendations for virtual disk placement and storage
// subsystem optimization" as future work; this implements that proposal on
// top of the environment-independent metrics (§3.7: spatial locality,
// request size, outstanding I/Os, read/write ratio).
type Fingerprint struct {
	// AccessPattern is Sequential, Random or Mixed, judged from the
	// windowed seek-distance histogram (robust to interleaved streams).
	AccessPattern Pattern
	// SequentialFraction is the share of I/Os within ±16 sectors of a
	// recent I/O.
	SequentialFraction float64
	// ReverseScanFraction is the share of strictly negative seek
	// distances beyond the near field — the reverse scans §3.1 calls out
	// as "really important" to detect.
	ReverseScanFraction float64
	// ReadFraction is reads / all block I/Os.
	ReadFraction float64
	// DominantIOBytes is the upper edge of the modal I/O length bin.
	DominantIOBytes int64
	// MeanOutstanding is the average queue depth at arrival.
	MeanOutstanding float64
	// Bursty reports high inter-arrival variance (P95 >> mean).
	Bursty bool
}

// Pattern classifies spatial locality.
type Pattern string

// Access patterns.
const (
	PatternSequential Pattern = "sequential"
	PatternRandom     Pattern = "random"
	PatternMixed      Pattern = "mixed"
)

// nearFieldSectors bounds the seek distance considered "local": 16 sectors
// covers the paper's central histogram bins (−16 … 16).
const nearFieldSectors = 16

// FingerprintOf classifies a snapshot. It returns the zero Fingerprint if
// the snapshot holds no block I/Os.
func FingerprintOf(s *Snapshot) Fingerprint {
	var f Fingerprint
	if s == nil || s.Commands == 0 {
		return f
	}
	f.ReadFraction = s.ReadFraction()

	seek := s.SeekWindowed
	if seek.Total == 0 {
		seek = s.SeekDistance[All]
	}
	if seek.Total > 0 {
		var near, reverse int64
		for i, c := range seek.Counts {
			lo, hi := seek.BinRange(i)
			if lo >= -nearFieldSectors-1 && hi <= nearFieldSectors {
				near += c
			}
			if hi < -nearFieldSectors {
				reverse += c
			}
		}
		f.SequentialFraction = float64(near) / float64(seek.Total)
		f.ReverseScanFraction = float64(reverse) / float64(seek.Total)
	}
	switch {
	case f.SequentialFraction >= 0.7:
		f.AccessPattern = PatternSequential
	case f.SequentialFraction <= 0.3:
		f.AccessPattern = PatternRandom
	default:
		f.AccessPattern = PatternMixed
	}

	if lh := s.IOLength[All]; lh.Total > 0 {
		mode, modeCount := 0, int64(-1)
		for i, c := range lh.Counts {
			if c > modeCount {
				mode, modeCount = i, c
			}
		}
		if mode < len(lh.Edges) {
			f.DominantIOBytes = lh.Edges[mode]
		} else {
			f.DominantIOBytes = lh.Max
		}
	}
	f.MeanOutstanding = s.Outstanding[All].Mean()
	if ia := s.Interarrival[All]; ia.Total > 4 && ia.Mean() > 0 {
		f.Bursty = float64(ia.Percentile(95)) > 8*ia.Mean()
	}
	return f
}

// String renders the fingerprint on one line.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%s (%.0f%% local), %.0f%% reads, dominant %dB, mean OIO %.1f, bursty=%v",
		f.AccessPattern, 100*f.SequentialFraction, 100*f.ReadFraction,
		f.DominantIOBytes, f.MeanOutstanding, f.Bursty)
}

// Recommendations derives storage-placement advice from the fingerprint, in
// the spirit of the paper's §7 and its striping citation ([1]: "optimizing
// RAID stripe size for a particular application requires the knowledge of
// the size distribution of I/Os").
func (f Fingerprint) Recommendations() []string {
	var recs []string
	if f.DominantIOBytes > 0 {
		recs = append(recs, fmt.Sprintf(
			"set RAID stripe unit to at least %d bytes so a typical I/O touches one disk", f.DominantIOBytes))
	}
	switch f.AccessPattern {
	case PatternSequential:
		recs = append(recs, "sequential stream: keep this virtual disk on a contiguous extent and enable array read-ahead")
	case PatternRandom:
		recs = append(recs, "random access: favor more spindles / SSD tier over read-ahead; read-ahead will not help")
	case PatternMixed:
		recs = append(recs, "mixed pattern: consider splitting the workload across virtual disks to separate its sequential and random parts (§3.6)")
	}
	if f.ReverseScanFraction > 0.1 {
		recs = append(recs, "frequent reverse scans detected: review the application's data layout (§3.1)")
	}
	if f.MeanOutstanding >= 16 {
		recs = append(recs, "deep queues: ensure the array target queue depth exceeds the observed mean outstanding I/Os")
	} else if f.MeanOutstanding > 0 && f.MeanOutstanding < 2 && f.AccessPattern != PatternSequential {
		recs = append(recs, "single-threaded random I/O: latency, not bandwidth, bounds this workload")
	}
	if f.ReadFraction < 0.3 {
		recs = append(recs, "write-heavy: verify write-back cache capacity and destage policy (§3.4)")
	}
	if f.Bursty {
		recs = append(recs, "bursty arrivals: provision for peak, not mean, throughput")
	}
	return recs
}

// Report renders the fingerprint and recommendations as a small block of
// text.
func (f Fingerprint) Report() string {
	var b strings.Builder
	b.WriteString("fingerprint: " + f.String() + "\n")
	for _, r := range f.Recommendations() {
		b.WriteString("  - " + r + "\n")
	}
	return b.String()
}
