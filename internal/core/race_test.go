package core

// Lifecycle and fast-path concurrency tests. Run with -race: on the
// pre-fix code every one of these produced a data-race report (plain c.h
// pointer swaps in Enable/Reset, unsynchronized per-stream fields in
// OnIssue).

import (
	"sync"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

func issueReq(id int, lba uint64, at simclock.Time) *vscsi.Request {
	return &vscsi.Request{
		ID:        uint64(id),
		Cmd:       scsi.Read(lba, 8),
		IssueTime: at,
	}
}

func completeReq(r *vscsi.Request, lat simclock.Time) *vscsi.Request {
	r.CompleteTime = r.IssueTime + lat
	r.Status = scsi.StatusGood
	return r
}

// TestCollectorConcurrentStress hammers one collector from N issuing
// goroutines while one goroutine polls snapshots and another toggles
// enable/disable/reset — the mix the acceptance criteria name.
func TestCollectorConcurrentStress(t *testing.T) {
	const (
		issuers = 8
		perG    = 2000
	)
	c := NewCollector("vm", "disk")
	c.Enable()

	var issuerWG, monitorWG sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < issuers; g++ {
		issuerWG.Add(1)
		go func(g int) {
			defer issuerWG.Done()
			for i := 0; i < perG; i++ {
				r := issueReq(g*perG+i, uint64((g*perG+i)*977%(1<<20)), simclock.Time(i)*simclock.Microsecond)
				c.OnIssue(r)
				c.OnComplete(completeReq(r, 500*simclock.Microsecond))
			}
		}(g)
	}

	monitorWG.Add(1)
	go func() { // snapshot poller
		defer monitorWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := c.Snapshot(); s != nil && s.Commands < 0 {
				t.Error("torn snapshot: negative command count")
				return
			}
		}
	}()
	monitorWG.Add(1)
	go func() { // lifecycle toggler
		defer monitorWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				c.Disable()
			case 1:
				c.Enable()
			case 2:
				c.Reset()
			default:
				c.Enable()
			}
		}
	}()

	issuerWG.Wait()
	close(stop)
	monitorWG.Wait()

	c.Enable()
	s := c.Snapshot()
	if s == nil {
		t.Fatal("enabled collector returned nil snapshot")
	}
	if s.Commands < 0 || s.Commands > issuers*perG {
		t.Errorf("command count %d outside [0, %d]", s.Commands, issuers*perG)
	}
	// Whatever survived the resets must be internally consistent.
	if s.Commands != s.NumReads+s.NumWrites {
		t.Errorf("commands=%d != reads+writes=%d", s.Commands, s.NumReads+s.NumWrites)
	}
}

// TestEnableConcurrentIdempotent is the regression test for the
// check-then-act race in Enable: when many goroutines race the first
// Enable, exactly one histSet may win, and later Enables must never
// replace it (that would silently drop accumulated samples).
func TestEnableConcurrentIdempotent(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		c := NewCollector("vm", "disk")
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				c.Enable()
			}()
		}
		close(start)
		wg.Wait()

		won := c.h.Load()
		if won == nil {
			t.Fatal("no histSet after concurrent Enable")
		}
		r := issueReq(1, 0, 0)
		c.OnIssue(r)
		c.Enable() // must not reallocate
		if c.h.Load() != won {
			t.Fatal("redundant Enable replaced the live histSet")
		}
		if s := c.Snapshot(); s.Commands != 1 {
			t.Fatalf("sample lost across redundant Enable: commands=%d", s.Commands)
		}
	}
}

// TestResetSwapsAtomically is the regression test for Reset replacing the
// histogram set mid-command: a snapshot taken at any moment sees either
// the old set or the fresh one, and after the dust settles a Reset leaves
// exactly the samples issued after it.
func TestResetSwapsAtomically(t *testing.T) {
	c := NewCollector("vm", "disk")
	c.Enable()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // issuer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			r := issueReq(i, uint64(i*8%(1<<20)), simclock.Time(i)*simclock.Microsecond)
			c.OnIssue(r)
			c.OnComplete(completeReq(r, simclock.Millisecond))
		}
	}()
	for i := 0; i < 200; i++ {
		c.Reset()
		if s := c.Snapshot(); s == nil {
			t.Error("Reset made an enabled collector's snapshot nil")
			break
		}
	}
	close(done)
	wg.Wait()

	// Deterministic tail: with no concurrent writers, Reset leaves a
	// completely clean slate (stream state included).
	c.Reset()
	r := issueReq(1, 4096, simclock.Second)
	c.OnIssue(r)
	s := c.Snapshot()
	if s.Commands != 1 {
		t.Errorf("post-reset commands = %d, want 1", s.Commands)
	}
	// First command after reset: no predecessor, so no seek or
	// inter-arrival samples may leak from before the reset.
	if tot := s.SeekDistance[All].Total; tot != 0 {
		t.Errorf("seek histogram kept %d samples across Reset", tot)
	}
	if tot := s.Interarrival[All].Total; tot != 0 {
		t.Errorf("interarrival histogram kept %d samples across Reset", tot)
	}
}

// TestResetNeverEnabled stays a no-op.
func TestResetNeverEnabled(t *testing.T) {
	c := NewCollector("vm", "disk")
	c.Reset()
	if s := c.Snapshot(); s != nil {
		t.Fatalf("Reset allocated state for a never-enabled collector: %+v", s)
	}
}

// TestCollector2DConcurrent drives the opt-in 2-D collector from several
// goroutines with interleaved toggles; its in-flight map made the seed
// version racy even between OnIssue and OnComplete.
func TestCollector2DConcurrent(t *testing.T) {
	c := NewCollector2D("vm", "disk")
	c.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r := issueReq(g*2000+i, uint64(i*16%(1<<20)), simclock.Time(i)*simclock.Microsecond)
				c.OnIssue(r)
				c.OnComplete(completeReq(r, simclock.Millisecond))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.Snapshot()
			c.Disable()
			c.Enable()
		}
	}()
	wg.Wait()
	if s := c.Snapshot(); s == nil {
		t.Fatal("enabled 2-D collector returned nil snapshot")
	}
}
