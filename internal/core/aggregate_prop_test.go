package core

import (
	"math/rand"
	"reflect"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// randRequests generates n random requests with a private time base:
// a mix of reads, writes and non-I/O commands, random seeks, queue
// depths, latencies, gaps and an occasional error status.
func randRequests(rng *rand.Rand, n int) []*vscsi.Request {
	out := make([]*vscsi.Request, 0, n)
	lba := uint64(rng.Intn(1 << 20))
	t := simclock.Time(rng.Intn(1000)) * simclock.Millisecond
	for i := 0; i < n; i++ {
		var cmd scsi.Command
		switch rng.Intn(10) {
		case 0:
			cmd = scsi.Command{Op: scsi.OpInquiry} // invisible to the histograms
		case 1, 2, 3, 4:
			cmd = scsi.Write(lba, uint32(1+rng.Intn(64)))
		default:
			cmd = scsi.Read(lba, uint32(1+rng.Intn(64)))
		}
		r := &vscsi.Request{
			Cmd:                cmd,
			IssueTime:          t,
			CompleteTime:       t + simclock.Time(100+rng.Intn(20000))*simclock.Microsecond,
			OutstandingAtIssue: rng.Intn(64),
			Status:             scsi.StatusGood,
		}
		if rng.Intn(23) == 0 {
			r.Status = scsi.StatusCheckCondition
		}
		out = append(out, r)
		// Random walk over the disk: mostly near-sequential, sometimes far.
		lba = uint64(int64(lba) + int64(rng.Intn(1<<14)) - 1<<13)
		if rng.Intn(8) == 0 {
			lba = uint64(rng.Intn(1 << 20))
		}
		t += simclock.Time(1+rng.Intn(5000)) * simclock.Microsecond
	}
	return out
}

func drive(col *Collector, reqs []*vscsi.Request) {
	for _, r := range reqs {
		col.OnIssue(r)
		col.OnComplete(r)
	}
}

// TestAggregatePropertyMatchesConcatenatedStream is the merge correctness
// property the fleet aggregator relies on: feeding K per-host collectors
// their own command segments and merging the snapshots with Aggregate
// yields exactly — bin for bin, across all six metrics and all three
// classes — what one collector sees when fed the concatenated stream with
// BreakStream marking each segment boundary (the disk changing hands, as
// in a vMotion).
func TestAggregatePropertyMatchesConcatenatedStream(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
		numSegs := 2 + rng.Intn(4)
		combined := NewCollector("combined", "scsi0:0")
		combined.Enable()
		var perHost []*Snapshot
		for seg := 0; seg < numSegs; seg++ {
			n := rng.Intn(400)
			if seg == 1 && trial%3 == 0 {
				n = 0 // an idle host must not perturb the merge
			}
			reqs := randRequests(rng, n)
			host := NewCollector("combined", "scsi0:0")
			host.Enable()
			drive(host, reqs)
			perHost = append(perHost, host.Snapshot())
			if seg > 0 {
				combined.BreakStream()
			}
			drive(combined, reqs)
		}
		got := Aggregate("host", "*", combined.Snapshot())
		want := Aggregate("host", "*", perHost...)
		if !reflect.DeepEqual(got, want) {
			reportSnapshotDiff(t, trial, got, want)
		}
	}
}

// reportSnapshotDiff narrows a DeepEqual failure down to the first
// counter or histogram that diverged.
func reportSnapshotDiff(t *testing.T, trial int, got, want *Snapshot) {
	t.Helper()
	if got.Commands != want.Commands || got.NumReads != want.NumReads ||
		got.NumWrites != want.NumWrites || got.ReadBytes != want.ReadBytes ||
		got.WriteBytes != want.WriteBytes || got.Errors != want.Errors {
		t.Errorf("trial %d: counters diverged: got %+v", trial, got)
		return
	}
	for _, m := range Metrics() {
		for _, cl := range []Class{All, Reads, Writes} {
			hg, hw := got.Histogram(m, cl), want.Histogram(m, cl)
			if !reflect.DeepEqual(hg, hw) {
				t.Errorf("trial %d: %s/%s diverged:\n got:  total=%d sum=%d counts=%v\n want: total=%d sum=%d counts=%v",
					trial, m, cl, hg.Total, hg.Sum, hg.Counts, hw.Total, hw.Sum, hw.Counts)
				return
			}
		}
	}
	t.Errorf("trial %d: snapshots diverged outside counters and histograms", trial)
}

// TestBreakStreamIsRequiredForTheProperty documents why BreakStream
// exists: without it the concatenated stream manufactures seek and
// interarrival samples across the segment boundary that no per-host
// collector ever saw, so the merge cannot be exact.
func TestBreakStreamIsRequiredForTheProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	segA := randRequests(rng, 200)
	segB := randRequests(rng, 200)

	hostA := NewCollector("vm", "d")
	hostA.Enable()
	drive(hostA, segA)
	hostB := NewCollector("vm", "d")
	hostB.Enable()
	drive(hostB, segB)
	merged := Aggregate("vm", "d", hostA.Snapshot(), hostB.Snapshot())

	noBreak := NewCollector("vm", "d")
	noBreak.Enable()
	drive(noBreak, segA)
	drive(noBreak, segB)
	plain := noBreak.Snapshot()

	// The concatenated collector records exactly one extra seek sample —
	// the phantom hop from segA's last block to segB's first.
	if extra := plain.SeekDistance[All].Total - merged.SeekDistance[All].Total; extra != 1 {
		t.Errorf("expected exactly 1 phantom boundary seek sample, got %d", extra)
	}

	// And with BreakStream the phantom disappears.
	withBreak := NewCollector("vm", "d")
	withBreak.Enable()
	drive(withBreak, segA)
	withBreak.BreakStream()
	drive(withBreak, segB)
	if got := withBreak.Snapshot().SeekDistance[All].Total; got != merged.SeekDistance[All].Total {
		t.Errorf("BreakStream left %d seek samples, want %d", got, merged.SeekDistance[All].Total)
	}
}

// TestBreakStreamKeepsHistograms pins BreakStream's contract: it clears
// only the cross-command correlation state, never accumulated data.
func TestBreakStreamKeepsHistograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	col := NewCollector("vm", "d")
	col.Enable()
	drive(col, randRequests(rng, 300))
	before := col.Snapshot()
	col.BreakStream()
	after := col.Snapshot()
	if !reflect.DeepEqual(before, after) {
		t.Error("BreakStream changed the snapshot")
	}
	// Safe on a never-enabled collector too.
	NewCollector("vm", "d").BreakStream()
}
