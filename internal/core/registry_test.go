package core

import (
	"testing"
)

// TestRegistryDeterministicOrder: List and Snapshots must iterate in sorted
// (vm, disk) order regardless of registration order — the Prometheus
// exporter and the SSE streamer rely on stable iteration for diffable
// output, and Go map order would scramble it.
func TestRegistryDeterministicOrder(t *testing.T) {
	// Registration order deliberately scrambled, with names that sort
	// differently than they insert (vm10 < vm2 lexically).
	pairs := [][2]string{
		{"vm2", "scsi0:1"},
		{"vm10", "scsi0:0"},
		{"vm2", "scsi0:0"},
		{"alpha", "z"},
		{"vm10", "scsi0:1"},
		{"alpha", "a"},
	}
	want := [][2]string{
		{"alpha", "a"},
		{"alpha", "z"},
		{"vm10", "scsi0:0"},
		{"vm10", "scsi0:1"},
		{"vm2", "scsi0:0"},
		{"vm2", "scsi0:1"},
	}

	for trial := 0; trial < 3; trial++ {
		r := NewRegistry()
		// Rotate registration order across trials; map iteration inside
		// the registry must never leak into the listing order.
		for i := range pairs {
			p := pairs[(i+trial*2)%len(pairs)]
			r.Register(NewCollector(p[0], p[1]))
		}
		list := r.List()
		if len(list) != len(want) {
			t.Fatalf("trial %d: %d collectors listed, want %d", trial, len(list), len(want))
		}
		for i, c := range list {
			if c.VM() != want[i][0] || c.Disk() != want[i][1] {
				t.Errorf("trial %d: List()[%d] = %s/%s, want %s/%s",
					trial, i, c.VM(), c.Disk(), want[i][0], want[i][1])
			}
		}
		for _, c := range list {
			c.Enable()
		}
		snaps := r.Snapshots()
		if len(snaps) != len(want) {
			t.Fatalf("trial %d: %d snapshots, want %d", trial, len(snaps), len(want))
		}
		for i, s := range snaps {
			if s.VM != want[i][0] || s.Disk != want[i][1] {
				t.Errorf("trial %d: Snapshots()[%d] = %s/%s, want %s/%s",
					trial, i, s.VM, s.Disk, want[i][0], want[i][1])
			}
		}
	}
}

