package core

// Aggregate merges snapshots into one combined view — the per-VM and
// per-host rollups an administrator reads before drilling into a single
// virtual disk. Counters add; histograms add bin-wise (identical layouts by
// construction). Per-stream metrics (seek distance, inter-arrival) remain
// per-disk quantities: the merged histogram is the union of the disks'
// distributions, not the pattern of some interleaved stream, which is
// exactly how the paper treats per-disk locality (§3.6).
//
// Aggregate returns nil if no snapshot is given.
func Aggregate(vm, disk string, snaps ...*Snapshot) *Snapshot {
	if len(snaps) == 0 {
		return nil
	}
	out := &Snapshot{
		VM:           vm,
		Disk:         disk,
		SeekWindowed: snaps[0].SeekWindowed.Clone(),
		Commands:     snaps[0].Commands,
		NumReads:     snaps[0].NumReads,
		NumWrites:    snaps[0].NumWrites,
		ReadBytes:    snaps[0].ReadBytes,
		WriteBytes:   snaps[0].WriteBytes,
		Errors:       snaps[0].Errors,
	}
	for class := 0; class < 3; class++ {
		out.IOLength[class] = snaps[0].IOLength[class].Clone()
		out.SeekDistance[class] = snaps[0].SeekDistance[class].Clone()
		out.Outstanding[class] = snaps[0].Outstanding[class].Clone()
		out.Latency[class] = snaps[0].Latency[class].Clone()
		out.Interarrival[class] = snaps[0].Interarrival[class].Clone()
	}
	for _, s := range snaps[1:] {
		out.SeekWindowed.Add(s.SeekWindowed)
		out.Commands += s.Commands
		out.NumReads += s.NumReads
		out.NumWrites += s.NumWrites
		out.ReadBytes += s.ReadBytes
		out.WriteBytes += s.WriteBytes
		out.Errors += s.Errors
		for class := 0; class < 3; class++ {
			out.IOLength[class].Add(s.IOLength[class])
			out.SeekDistance[class].Add(s.SeekDistance[class])
			out.Outstanding[class].Add(s.Outstanding[class])
			out.Latency[class].Add(s.Latency[class])
			out.Interarrival[class].Add(s.Interarrival[class])
		}
	}
	return out
}

// VMSnapshot merges every enabled collector of the named VM.
func (r *Registry) VMSnapshot(vm string) *Snapshot {
	var snaps []*Snapshot
	for _, c := range r.List() {
		if c.VM() != vm {
			continue
		}
		if s := c.Snapshot(); s != nil {
			snaps = append(snaps, s)
		}
	}
	return Aggregate(vm, "*", snaps...)
}

// HostSnapshot merges every enabled collector on the host.
func (r *Registry) HostSnapshot() *Snapshot {
	return Aggregate("*", "*", r.Snapshots()...)
}
