package core

import (
	"math/rand"
	"sync"
	"testing"

	"vscsistats/internal/scsi"
	"vscsistats/internal/simclock"
	"vscsistats/internal/vscsi"
)

// randomBurst builds a burst of block-I/O requests (with the occasional
// non-I/O command mixed in) with coherent issue times and outstanding
// counts.
func randomBurst(rng *rand.Rand, now simclock.Time, n int) []*vscsi.Request {
	rs := make([]*vscsi.Request, n)
	for i := range rs {
		var cmd scsi.Command
		switch rng.Intn(10) {
		case 0:
			cmd = scsi.Command{Op: scsi.OpTestUnitReady}
		case 1, 2, 3:
			cmd = scsi.Write(uint64(rng.Intn(1<<20))*8, uint32(8*(1+rng.Intn(4))))
		default:
			cmd = scsi.Read(uint64(rng.Intn(1<<20))*8, uint32(8*(1+rng.Intn(4))))
		}
		rs[i] = &vscsi.Request{
			ID: uint64(i), VM: "vm", Disk: "d", Cmd: cmd,
			IssueTime:          now,
			OutstandingAtIssue: i,
		}
	}
	return rs
}

// TestOnIssueBatchMatchesSequential pins the batch observation path to the
// per-command path: feeding the same bursts through OnIssueBatch and through
// sequential OnIssue calls must produce bin-identical snapshots across every
// metric and class — the proof the amortization is behavior-preserving.
func TestOnIssueBatchMatchesSequential(t *testing.T) {
	seq := NewCollector("vm", "d")
	bat := NewCollector("vm", "d")
	seq.Enable()
	bat.Enable()
	rngA := rand.New(rand.NewSource(7))
	now := simclock.Time(0)
	for burst := 0; burst < 50; burst++ {
		n := 1 + rngA.Intn(100) // exercise both the stack and spill paths
		rs := randomBurst(rngA, now, n)
		for _, r := range rs {
			seq.OnIssue(r)
		}
		bat.OnIssueBatch(rs)
		now += simclock.Time(rngA.Intn(5000)) * simclock.Microsecond
	}
	ss, bs := seq.Snapshot(), bat.Snapshot()
	if ss.Commands != bs.Commands || ss.NumReads != bs.NumReads ||
		ss.NumWrites != bs.NumWrites || ss.ReadBytes != bs.ReadBytes ||
		ss.WriteBytes != bs.WriteBytes {
		t.Fatalf("counters differ: seq %+v batch %+v", ss, bs)
	}
	for _, m := range Metrics() {
		for _, cl := range []Class{All, Reads, Writes} {
			hs, hb := ss.Histogram(m, cl), bs.Histogram(m, cl)
			if hs.Total != hb.Total || hs.Sum != hb.Sum {
				t.Errorf("%s/%s: total/sum differ: %d/%d vs %d/%d",
					m, cl, hs.Total, hs.Sum, hb.Total, hb.Sum)
			}
			for i := range hs.Counts {
				if hs.Counts[i] != hb.Counts[i] {
					t.Errorf("%s/%s bin %d: seq %d, batch %d",
						m, cl, i, hs.Counts[i], hb.Counts[i])
				}
			}
			if hs.Min != hb.Min || hs.Max != hb.Max {
				t.Errorf("%s/%s: min/max differ: %d/%d vs %d/%d",
					m, cl, hs.Min, hs.Max, hb.Min, hb.Max)
			}
		}
	}
}

// TestOnIssueBatchDisabledAndUnpublished covers the guard paths: a disabled
// collector ignores bursts, and the Enable race window (enabled flag set,
// histogram set not yet visible) counts drops, like the per-command path.
func TestOnIssueBatchDisabledAndUnpublished(t *testing.T) {
	c := NewCollector("vm", "d")
	rs := randomBurst(rand.New(rand.NewSource(1)), 0, 8)
	c.OnIssueBatch(rs) // disabled: no-op
	if c.Snapshot() != nil {
		t.Fatal("disabled collector recorded a burst")
	}
	if got := c.SelfStats().Observations; got != 0 {
		t.Fatalf("disabled collector counted %d observations", got)
	}
}

// TestOnIssueBatchConcurrent hammers one collector with concurrent bursts,
// single-command issues and snapshots under -race, and then checks no
// sample was lost: the commands counter must equal the ioLength totals.
func TestOnIssueBatchConcurrent(t *testing.T) {
	c := NewCollector("vm", "d")
	c.Enable()
	const issuers = 4
	const bursts = 200
	var wg sync.WaitGroup
	for g := 0; g < issuers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			now := simclock.Time(0)
			for i := 0; i < bursts; i++ {
				rs := randomBurst(rng, now, 1+rng.Intn(32))
				if rng.Intn(2) == 0 {
					c.OnIssueBatch(rs)
				} else {
					for _, r := range rs {
						c.OnIssue(r)
					}
				}
				now += simclock.Millisecond
			}
		}(int64(g))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if s := c.Snapshot(); s != nil {
				h := s.Histogram(MetricIOLength, All)
				var sum int64
				for _, n := range h.Counts {
					sum += n
				}
				if h.Total != sum {
					t.Errorf("snapshot %d: ioLength total %d != bin sum %d", i, h.Total, sum)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	s := c.Snapshot()
	if s.Commands == 0 {
		t.Fatal("no commands recorded")
	}
	if got := s.Histogram(MetricIOLength, All).Total; got != s.Commands {
		t.Fatalf("ioLength total %d != commands %d", got, s.Commands)
	}
}
